// fixture-path: crates/hamiltonian/src/quad_fixture.rs
//! Non-kernel quadrature helper: the per-file hot-path rule does not
//! apply here, but the allocation is reachable from the kernel library's
//! width ladder and must be reported back at the kernel call sites.

/// Allocates a staging buffer per call — legal here, hot through the
/// width-ladder dispatch.
pub fn quad_scratch(n: usize) -> f64 {
    let scratch: Vec<f64> = (0..n).map(|_| 0.5).collect();
    scratch.iter().sum()
}
