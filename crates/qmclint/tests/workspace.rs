//! The workspace itself must lint clean: `cargo test -p qmclint` is a
//! second enforcement point for the CI gate, so a regression fails the
//! test suite even when nobody runs the `qmclint` binary directly.

use std::path::Path;

#[test]
fn repository_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = qmclint::lint_workspace(&root);
    assert!(
        report.files_scanned > 40,
        "suspiciously few files scanned ({}) — exemption config drift?",
        report.files_scanned
    );
    let rendered: Vec<String> = report
        .diagnostics
        .iter()
        .map(qmclint::Diagnostic::render_human)
        .collect();
    assert!(
        report.diagnostics.is_empty(),
        "workspace has {} unsuppressed qmclint diagnostics:\n{}",
        report.diagnostics.len(),
        rendered.join("\n")
    );
}

/// Every crate without real `unsafe` must carry `#![forbid(unsafe_code)]`,
/// and the set of crates that do use `unsafe` must not silently grow.
/// (`shims/` is outside the scan — `config::SKIP_DIRS` excludes it, so the
/// vendored stand-ins are audited by eye, not by this test.)
#[test]
fn unsafe_audit_forbids_everywhere_it_can() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let classified: Vec<(String, String, qmclint::FileClass)> = qmclint::collect_sources(&root)
        .into_iter()
        .map(|(path, src)| {
            let class = qmclint::classify(&path);
            (path, src, class)
        })
        .collect();
    let model = qmclint::WorkspaceModel::build(&classified);

    let missing = model.missing_forbid_unsafe();
    assert!(
        missing.is_empty(),
        "crates with no `unsafe` but no `#![forbid(unsafe_code)]`: {missing:?}"
    );

    let mut unsafe_crates: Vec<&str> = model
        .files
        .iter()
        .filter(|f| f.has_unsafe && !f.path.contains("/tests/"))
        .map(|f| f.crate_key.as_str())
        .collect();
    unsafe_crates.sort_unstable();
    unsafe_crates.dedup();
    assert_eq!(
        unsafe_crates,
        ["crates/containers/", "crates/instrument/"],
        "the set of crates using `unsafe` changed — update this audit \
         deliberately, not by accident"
    );
}
