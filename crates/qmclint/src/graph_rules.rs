//! The qmclint v2 workspace rules, run over the [`crate::model`] call
//! graph:
//!
//! 1. **hot-path-call** — allocation / panic machinery anywhere in the
//!    transitive callee set of a kernel entry point. The per-file
//!    `hot-path` rule owns sites *inside* kernel modules; this rule owns
//!    the sites a kernel reaches in non-kernel helpers, and prints the
//!    call chain so the report is actionable.
//! 2. **precision-flow** — an `f32`-typed local (or the result of an
//!    `f32`-returning call) folded into an `f64` accumulator without a
//!    designated promotion site (`f64::from`, `.to_f64()`, `T::from_f64`).
//! 3. **lock-order** — two lock names acquired in opposite orders by
//!    functions reachable from the crowd scheduler (deadlock risk under
//!    the lock-step drivers).
//!
//! All three honour the same `// qmclint: allow(<rule>) — <why>` markers
//! as the lexical rules, at the anchor site of the diagnostic.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::LOCK_ROOTS;
use crate::diag::{Diagnostic, Rule};
use crate::model::WorkspaceModel;

/// Depth cap for every graph traversal: deep enough for any real chain in
/// this workspace, finite under lexically-misresolved recursion.
const MAX_DEPTH: usize = 8;

/// Runs all three graph rules.
pub fn check_graph(model: &WorkspaceModel, diags: &mut Vec<Diagnostic>) {
    check_hot_path_graph(model, diags);
    check_precision_flow(model, diags);
    check_lock_order(model, diags);
}

fn hop(model: &WorkspaceModel, id: (usize, usize), line: u32) -> String {
    format!(
        "{} ({}:{line})",
        model.func(id).name,
        model.files[id.0].path
    )
}

/// Rule: hot-path-call. Walks the transitive callee set of every kernel
/// entry point; an allocation or panic site in a non-kernel callee is
/// reported at the entry's call site, with the chain attached.
pub fn check_hot_path_graph(model: &WorkspaceModel, diags: &mut Vec<Diagnostic>) {
    for (fi, file) in model.files.iter().enumerate() {
        if !file.class.kernel {
            continue;
        }
        for (ei, entry) in file.fns.iter().enumerate() {
            if entry.cold || entry.in_test {
                continue;
            }
            // One report per (entry, leaf site); cycles cut by `visited`.
            let mut reported: BTreeSet<(usize, u32)> = BTreeSet::new();
            for call in &entry.calls {
                let Some(callee) = model.resolve(fi, &call.callee, call.method) else {
                    continue;
                };
                let chain = vec![hop(model, (fi, ei), call.line)];
                let mut visited: BTreeSet<(usize, usize)> = BTreeSet::new();
                walk_hot(
                    model,
                    callee,
                    (fi, ei),
                    call.line,
                    &chain,
                    1,
                    &mut visited,
                    &mut reported,
                    diags,
                );
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn walk_hot(
    model: &WorkspaceModel,
    id: (usize, usize),
    entry: (usize, usize),
    anchor_line: u32,
    chain: &[String],
    depth: usize,
    visited: &mut BTreeSet<(usize, usize)>,
    reported: &mut BTreeSet<(usize, u32)>,
    diags: &mut Vec<Diagnostic>,
) {
    if depth > MAX_DEPTH || !visited.insert(id) {
        return;
    }
    let f = model.func(id);
    if f.cold || f.in_test {
        return;
    }
    let file = &model.files[id.0];
    // Kernel-class files own their own sites via the per-file rule.
    if !file.class.kernel {
        for site in &f.hots {
            if file.allows.allowed(Rule::HotPathCall, site.line)
                || model.files[entry.0]
                    .allows
                    .allowed(Rule::HotPathCall, anchor_line)
                || !reported.insert((id.0, site.line))
            {
                continue;
            }
            let entry_fn = &model.func(entry).name;
            let verb = if site.panic {
                "can panic/abort mid-sweep"
            } else {
                "allocates"
            };
            let mut full_chain = chain.to_vec();
            full_chain.push(hop(model, id, site.line));
            diags.push(Diagnostic {
                file: model.files[entry.0].path.clone(),
                line: anchor_line,
                rule: Rule::HotPathCall,
                message: format!(
                    "`{}` in `{}` {verb}, reached from hot kernel fn `{entry_fn}`",
                    site.what, f.name
                ),
                suggestion: "hoist the work out of the kernel's reach, mark the callee \
                             `// qmclint: cold — <why>` if it is setup, or justify with \
                             `// qmclint: allow(hot-path-call) — <why>` at the call site"
                    .into(),
                chain: full_chain,
            });
        }
    }
    for call in &f.calls {
        let Some(next) = model.resolve(id.0, &call.callee, call.method) else {
            continue;
        };
        let mut next_chain = chain.to_vec();
        next_chain.push(hop(model, next, call.line));
        walk_hot(
            model,
            next,
            entry,
            anchor_line,
            &next_chain,
            depth + 1,
            visited,
            reported,
            diags,
        );
    }
}

/// Rule: precision-flow. Per physics function: a local carrying an `f32`
/// value (typed `: f32`, or bound to an `f32`-returning call without a
/// promotion) that appears in the RHS of a compound assignment onto an
/// `f64`-typed local, with no promotion in the RHS.
pub fn check_precision_flow(model: &WorkspaceModel, diags: &mut Vec<Diagnostic>) {
    for (fi, file) in model.files.iter().enumerate() {
        if !file.class.physics || file.class.mixed_precision {
            continue;
        }
        for f in &file.fns {
            if f.in_test {
                continue;
            }
            // Locals known to carry f32 values, with provenance.
            let mut f32_locals: BTreeMap<&str, String> = BTreeMap::new();
            for (name, line) in &f.f32_lets {
                f32_locals.insert(name, format!("`{name}` declared `: f32` at line {line}"));
            }
            for lc in &f.let_calls {
                if lc.promoted {
                    continue;
                }
                for c in &lc.calls {
                    // Conservative (method-grade) resolution: same file /
                    // unique-in-crate only.
                    let Some(id) = model.resolve(fi, c, true) else {
                        continue;
                    };
                    if model.func(id).ret_f32 {
                        f32_locals.insert(
                            &lc.name,
                            format!("`{}` bound from f32-returning `{}`", lc.name, c),
                        );
                    }
                }
            }
            for acc in &f.accumulates {
                if acc.promoted
                    || !f.f64_lets.contains(&acc.target)
                    || file.allows.allowed(Rule::PrecisionFlow, acc.line)
                {
                    continue;
                }
                let ident_src = acc
                    .rhs_idents
                    .iter()
                    .find_map(|n| f32_locals.get(n.as_str()).cloned());
                let call_src = acc.rhs_calls.iter().find_map(|c| {
                    let id = model.resolve(fi, c, true)?;
                    model
                        .func(id)
                        .ret_f32
                        .then(|| format!("f32-returning call `{c}`"))
                });
                let Some(source) = ident_src.or(call_src) else {
                    continue;
                };
                diags.push(Diagnostic {
                    file: file.path.clone(),
                    line: acc.line,
                    rule: Rule::PrecisionFlow,
                    message: format!(
                        "f32 value flows into f64 accumulator `{}` in fn `{}` without a \
                         promotion site ({source})",
                        acc.target, f.name
                    ),
                    suggestion: "promote explicitly (`f64::from(..)` / `.to_f64()`) so the \
                                 widening is a reviewed decision, or justify with \
                                 `// qmclint: allow(precision-flow) — <why>`"
                        .into(),
                    chain: vec![format!("{} ({}:{})", f.name, file.path, f.line), source],
                });
            }
        }
    }
}

/// Rule: lock-order. Collects `first -> second` acquisition constraints
/// from every function reachable from the crowd scheduler (intra-function
/// and through calls made while a guard is held); opposite orders for the
/// same pair of lock names are a deadlock risk and get reported with both
/// sites.
pub fn check_lock_order(model: &WorkspaceModel, diags: &mut Vec<Diagnostic>) {
    // Reachable set, seeded with every fn in the lock-root modules.
    let mut queue: Vec<(usize, usize)> = Vec::new();
    for (fi, file) in model.files.iter().enumerate() {
        if LOCK_ROOTS.iter().any(|r| file.path.starts_with(r)) {
            for (fni, f) in file.fns.iter().enumerate() {
                if !f.in_test {
                    queue.push((fi, fni));
                }
            }
        }
    }
    let mut reachable: BTreeSet<(usize, usize)> = queue.iter().copied().collect();
    while let Some(id) = queue.pop() {
        for call in &model.func(id).calls {
            if let Some(next) = model.resolve(id.0, &call.callee, call.method) {
                if reachable.insert(next) {
                    queue.push(next);
                }
            }
        }
    }

    // Ordered-pair constraints: (first, second) -> first witnessing site.
    type Site = (String, u32, Vec<String>);
    let mut edges: BTreeMap<(String, String), Site> = BTreeMap::new();
    let mut memo: BTreeMap<(usize, usize), BTreeSet<String>> = BTreeMap::new();
    for &id in &reachable {
        let f = model.func(id);
        let path = &model.files[id.0].path;
        for acq in &f.locks {
            for h in &acq.held {
                edges
                    .entry((h.clone(), acq.name.clone()))
                    .or_insert_with(|| (path.clone(), acq.line, vec![hop(model, id, acq.line)]));
            }
        }
        for call in &f.calls {
            if call.held.is_empty() {
                continue;
            }
            let Some(callee) = model.resolve(id.0, &call.callee, call.method) else {
                continue;
            };
            let mut seen = BTreeSet::new();
            let taken = transitive_locks(model, callee, 0, &mut seen, &mut memo);
            for l in &taken {
                for h in &call.held {
                    if h != l {
                        edges.entry((h.clone(), l.clone())).or_insert_with(|| {
                            (
                                path.clone(),
                                call.line,
                                vec![
                                    hop(model, id, call.line),
                                    hop(model, callee, model.func(callee).line),
                                ],
                            )
                        });
                    }
                }
            }
        }
    }

    // Contradictions: both (a, b) and (b, a) present.
    for ((a, b), (file_ab, line_ab, chain_ab)) in &edges {
        if a >= b {
            continue;
        }
        let Some((file_ba, line_ba, _)) = edges.get(&(b.clone(), a.clone())) else {
            continue;
        };
        let allowed = model.files.iter().any(|f| {
            (&f.path == file_ab && f.allows.allowed(Rule::LockOrder, *line_ab))
                || (&f.path == file_ba && f.allows.allowed(Rule::LockOrder, *line_ba))
        });
        if allowed {
            continue;
        }
        diags.push(Diagnostic {
            file: file_ab.clone(),
            line: *line_ab,
            rule: Rule::LockOrder,
            message: format!(
                "inconsistent lock order reachable from the crowd scheduler: `{a}` is taken \
                 before `{b}` here, but `{b}` before `{a}` at {file_ba}:{line_ba}"
            ),
            suggestion: "pick one acquisition order for this lock pair everywhere (the crowd \
                         convention is documented in DESIGN.md), or justify with \
                         `// qmclint: allow(lock-order) — <why>`"
                .into(),
            chain: chain_ab.clone(),
        });
    }
}

/// Lock names acquired by `id` or any of its (resolved) transitive
/// callees, depth-capped and memoized.
fn transitive_locks(
    model: &WorkspaceModel,
    id: (usize, usize),
    depth: usize,
    seen: &mut BTreeSet<(usize, usize)>,
    memo: &mut BTreeMap<(usize, usize), BTreeSet<String>>,
) -> BTreeSet<String> {
    if let Some(cached) = memo.get(&id) {
        return cached.clone();
    }
    if depth > MAX_DEPTH || !seen.insert(id) {
        return BTreeSet::new();
    }
    let f = model.func(id);
    let mut out: BTreeSet<String> = f.locks.iter().map(|l| l.name.clone()).collect();
    for call in &f.calls {
        if let Some(next) = model.resolve(id.0, &call.callee, call.method) {
            out.extend(transitive_locks(model, next, depth + 1, seen, memo));
        }
    }
    memo.insert(id, out.clone());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FileClass;

    const KERNEL: FileClass = FileClass {
        exempt: false,
        mixed_precision: false,
        kernel: true,
        physics: true,
    };
    const PHYS: FileClass = FileClass {
        exempt: false,
        mixed_precision: false,
        kernel: false,
        physics: true,
    };

    fn run(files: &[(&str, &str, FileClass)]) -> Vec<Diagnostic> {
        let owned: Vec<(String, String, FileClass)> = files
            .iter()
            .map(|(p, s, c)| ((*p).to_string(), (*s).to_string(), *c))
            .collect();
        let model = WorkspaceModel::build(&owned);
        let mut diags = Vec::new();
        check_graph(&model, &mut diags);
        diags
    }

    #[test]
    fn hot_path_call_crosses_files_with_chain() {
        let d = run(&[
            (
                "crates/wavefunction/src/jastrow/entry.rs",
                "pub fn evaluate_chain(n: usize) { helper_accum(n); }",
                KERNEL,
            ),
            (
                "crates/wavefunction/src/util.rs",
                "pub fn helper_accum(n: usize) -> Vec<u64> { (0..n as u64).collect() }",
                PHYS,
            ),
        ]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].rule, Rule::HotPathCall);
        assert_eq!(d[0].file, "crates/wavefunction/src/jastrow/entry.rs");
        assert_eq!(d[0].line, 1);
        assert_eq!(d[0].chain.len(), 2);
        assert!(d[0].chain[1].contains("helper_accum"));
    }

    #[test]
    fn hot_path_call_respects_cold_callees_and_allow() {
        // Cold callee: not traversed.
        let d = run(&[
            (
                "crates/wavefunction/src/jastrow/entry.rs",
                "pub fn evaluate_chain(n: usize) { build_table(n); }",
                KERNEL,
            ),
            (
                "crates/wavefunction/src/util.rs",
                "pub fn build_table(n: usize) -> Vec<u64> { (0..n as u64).collect() }",
                PHYS,
            ),
        ]);
        assert!(d.is_empty(), "{d:#?}");
        // Allow marker at the call site suppresses.
        let d = run(&[
            (
                "crates/wavefunction/src/jastrow/entry.rs",
                "pub fn evaluate_chain(n: usize) {\n    // qmclint: allow(hot-path-call) — bounded one-shot refill\n    helper_accum(n);\n}",
                KERNEL,
            ),
            (
                "crates/wavefunction/src/util.rs",
                "pub fn helper_accum(n: usize) -> Vec<u64> { (0..n as u64).collect() }",
                PHYS,
            ),
        ]);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn precision_flow_fires_and_promotion_silences() {
        let src = "fn cheap() -> f32 { 0.5 }\n\
                   fn accumulate() {\n    let e = cheap();\n    let mut total: f64 = 0.0;\n    total += e;\n}\n";
        let d = run(&[("crates/drivers/src/acc.rs", src, PHYS)]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].rule, Rule::PrecisionFlow);
        assert_eq!(d[0].line, 5);

        let promoted = "fn cheap() -> f32 { 0.5 }\n\
                        fn accumulate() {\n    let e = cheap();\n    let mut total: f64 = 0.0;\n    total += f64::from(e);\n}\n";
        assert!(run(&[("crates/drivers/src/acc.rs", promoted, PHYS)]).is_empty());
    }

    #[test]
    fn lock_order_contradiction_is_reported() {
        let src = "fn forward(&self) {\n    let a = self.alpha.lock();\n    self.beta.lock().touch();\n}\n\
                   fn backward(&self) {\n    let b = self.beta.lock();\n    self.alpha.lock().touch();\n}\n";
        let d = run(&[("crates/crowd/src/pair.rs", src, PHYS)]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].rule, Rule::LockOrder);
        assert!(d[0].message.contains("alpha") && d[0].message.contains("beta"));
    }

    #[test]
    fn lock_order_consistent_usage_is_silent() {
        let src = "fn one(&self) {\n    let a = self.counts.lock();\n    self.profile.lock().touch();\n}\n\
                   fn two(&self) {\n    let a = self.counts.lock();\n    self.profile.lock().touch();\n}\n";
        assert!(run(&[("crates/crowd/src/ok.rs", src, PHYS)]).is_empty());
    }

    #[test]
    fn lock_order_propagates_through_calls() {
        let a =
            "pub fn generation(&self) {\n    let g = self.counts.lock();\n    finish(self);\n}\n";
        let b = "pub fn finish(s: &S) {\n    s.profile.lock().touch();\n}\n\
                 pub fn other(s: &S) {\n    let p = s.profile.lock();\n    s.counts.lock().touch();\n}\n";
        let d = run(&[
            ("crates/crowd/src/sched.rs", a, PHYS),
            ("crates/crowd/src/helpers.rs", b, PHYS),
        ]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].rule, Rule::LockOrder);
    }
}
