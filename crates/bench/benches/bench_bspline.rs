//! Criterion bench: 3D multi-spline SPO evaluation across layouts
//! (spline-outer ref vs spline-innermost SoA) and precisions — the
//! `Bspline-v` / `Bspline-vgh` kernels of Figs. 2 and 7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qmc_bspline::MultiBspline3D;
use qmc_containers::Real;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn bench_precision<T: Real>(c: &mut Criterion, tag: &str) {
    let ns = 128;
    let table = MultiBspline3D::<T>::random([32, 32, 32], ns, 11);
    let mut rng = StdRng::seed_from_u64(5);
    let points: Vec<[T; 3]> = (0..64)
        .map(|_| {
            [
                T::from_f64(rng.random::<f64>()),
                T::from_f64(rng.random::<f64>()),
                T::from_f64(rng.random::<f64>()),
            ]
        })
        .collect();
    let mut psi = vec![T::ZERO; ns];
    let mut grad = vec![T::ZERO; 3 * ns];
    let mut hess = vec![T::ZERO; 6 * ns];

    let mut group = c.benchmark_group(format!("bspline_{tag}_ns{ns}"));
    let mut idx = 0usize;
    group.bench_function(BenchmarkId::new("v", "ref"), |b| {
        b.iter(|| {
            idx = (idx + 1) % points.len();
            table.evaluate_v_ref(points[idx], &mut psi);
            black_box(&psi);
        });
    });
    group.bench_function(BenchmarkId::new("v", "soa"), |b| {
        b.iter(|| {
            idx = (idx + 1) % points.len();
            table.evaluate_v(points[idx], &mut psi);
            black_box(&psi);
        });
    });
    group.bench_function(BenchmarkId::new("vgh", "ref"), |b| {
        b.iter(|| {
            idx = (idx + 1) % points.len();
            table.evaluate_vgh_ref(points[idx], &mut psi, &mut grad, &mut hess);
            black_box(&psi);
        });
    });
    group.bench_function(BenchmarkId::new("vgh", "soa"), |b| {
        b.iter(|| {
            idx = (idx + 1) % points.len();
            table.evaluate_vgh(points[idx], &mut psi, &mut grad, &mut hess);
            black_box(&psi);
        });
    });
    group.finish();
}

fn bench_bspline(c: &mut Criterion) {
    bench_precision::<f64>(c, "f64");
    bench_precision::<f32>(c, "f32");
}

criterion_group!(benches, bench_bspline);
criterion_main!(benches);
