//! # qmc-instrument
//!
//! Measurement infrastructure replacing the paper's tooling stack:
//!
//! * [`timer`] — per-kernel scoped timers for the hot-spot profiles of
//!   Fig. 2 / Fig. 7 (QMCPACK timer framework / Intel VTune).
//! * FLOP/byte counters on the same profile for the roofline's arithmetic
//!   intensity axis (Intel Advisor).
//! * [`roofline`] — a microbenchmark probe of the host's compute and
//!   bandwidth ceilings.
//! * [`memory`] — an allocation ledger plus process RSS for the footprint
//!   studies of Fig. 8 / Fig. 9.
//! * [`energy`] — the constant-power energy model for Fig. 10.
//! * [`span`] — scoped per-thread/per-crowd/per-block spans exportable as
//!   Chrome `trace_event` JSON.
//! * [`report`] — the [`report::RunReport`] aggregate every front-end
//!   serializes (hand-rolled JSON via [`json`]).
//! * [`stream`] — newline-delimited streaming telemetry
//!   (`qmc-run-report-stream/1`): per-block deltas, trace spans and
//!   checkpoint markers appended live as a run progresses.

// Indexed loops over multiple parallel slices are the deliberate idiom in
// the SIMD kernels (mirrors the paper's C++ and keeps the auto-vectorizer's
// job obvious); iterator zips would obscure them.
#![allow(clippy::needless_range_loop)]

pub mod energy;
pub mod ftz;
pub mod json;
pub mod memory;
pub mod report;
pub mod roofline;
pub mod sanitize;
pub mod span;
pub mod stream;
pub mod timer;

pub use energy::{EnergyModel, Phase, DEFAULT_DMC_WATTS, DEFAULT_INIT_WATTS};
pub use ftz::enable_ftz;
pub use memory::{current_rss_bytes, MemoryLedger};
pub use report::{
    record_refresh_drift, take_drift_stats, DriftStats, RunReport, RUN_REPORT_SCHEMA,
};
pub use roofline::{probe_machine, RooflineMachine};
pub use sanitize::{
    check_drift, check_finite, sanitizer_enabled, sanitizer_stats, set_drift_tolerance,
    take_sanitizer_stats, CheckKind, SanitizerStats, ALL_CHECKS, NUM_CHECKS,
};
pub use span::{
    chrome_trace_json, enable_tracing, span, span_lazy, take_trace_events, tracing_enabled, Span,
    TraceEvent,
};
pub use stream::{BlockEvent, StreamWriter, RUN_STREAM_SCHEMA};
pub use timer::{
    add_flops_bytes, drain_thread_profile, time_kernel, Kernel, KernelStats, Profile, ProfileSet,
    ALL_KERNELS, NUM_KERNELS,
};
