//! [`CrowdScheduler`]: maps crowds onto the thread crew.
//!
//! Mirrors the per-walker crew of `qmc_drivers::parallel`: one worker
//! thread per crowd, contiguous walker chunks per thread, and walkers
//! streamed through each crowd in crowd-sized lock-step blocks. The
//! chunking and the deterministic walker-order energy reduction
//! (`qmc_drivers::det_sum_by`) are identical to the per-walker path, so
//! the branch controller sees bit-identical input for any thread count
//! and crowd size.

use crate::crowd::Crowd;
use parking_lot::Mutex;
use qmc_containers::Real;
use qmc_drivers::{chunks_mut, det_sum_by, BranchController, QmcEngine, Walker};
use qmc_instrument::{drain_thread_profile, span, span_lazy, ProfileSet};

/// Builds crowds for a thread crew and runs lock-step DMC generations
/// over them.
#[derive(Clone, Copy, Debug)]
pub struct CrowdScheduler {
    threads: usize,
    crowd_size: usize,
    fused_refresh: bool,
}

impl CrowdScheduler {
    /// A scheduler for `threads` crowds of `crowd_size` walkers each
    /// (both floored at 1).
    pub fn new(threads: usize, crowd_size: usize) -> Self {
        Self {
            threads: threads.max(1),
            crowd_size: crowd_size.max(1),
            fused_refresh: false,
        }
    }

    /// Routes block-boundary refreshes through the fused batched
    /// wavefunction path (`Crowd::refresh_block` with fusion on), driving
    /// the multi-walker SPO kernel. Off by default: the fused spline
    /// kernel regroups floating point, so enabling it gives up bitwise
    /// parity with the per-walker drivers.
    pub fn with_fused_refresh(mut self, fused: bool) -> Self {
        self.fused_refresh = fused;
        self
    }

    /// Worker threads (one crowd each).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Walkers per lock-step block.
    pub fn crowd_size(&self) -> usize {
        self.crowd_size
    }

    /// Total engines the crew will own.
    pub fn num_engines(&self) -> usize {
        self.threads * self.crowd_size
    }

    /// Instantiates one crowd per thread from an engine factory.
    pub fn build_crowds<T: Real>(
        &self,
        mut factory: impl FnMut() -> QmcEngine<T>,
    ) -> Vec<Crowd<T>> {
        (0..self.threads)
            .map(|_| {
                let mut crowd = Crowd::new((0..self.crowd_size).map(|_| factory()).collect());
                crowd.set_fused_refresh(self.fused_refresh);
                crowd
            })
            .collect()
    }

    /// One DMC generation: each thread streams its contiguous walker
    /// chunk through its crowd in lock-step blocks (sweep, then measure /
    /// reweight / store in slot order). Returns
    /// `(sum w*E, sum w, accepted, attempted)` with the energy sums
    /// reduced after the parallel section through
    /// [`qmc_drivers::det_sum_by`] over walker order — the same
    /// fixed-shape tree as `qmc_drivers::parallel_generation`, so the
    /// result is bit-identical to the per-walker drive for any thread
    /// count, crowd size or task schedule. Kernel time drains into
    /// per-crowd groups of `profile` (group index = crowd index).
    pub fn generation<T: Real>(
        crowds: &mut [Crowd<T>],
        walkers: &mut [Walker<T>],
        tau: f64,
        refresh: bool,
        branch: &BranchController,
        profile: &Mutex<ProfileSet>,
    ) -> (f64, f64, usize, usize) {
        if walkers.is_empty() {
            return (0.0, 0.0, 0, 0);
        }
        let counts = Mutex::new((0usize, 0usize));
        rayon::scope(|scope| {
            let chunks = chunks_mut(walkers, crowds.len());
            for (c, (crowd, chunk)) in crowds.iter_mut().zip(chunks).enumerate() {
                let counts = &counts;
                let profile = &profile;
                scope.spawn(move || {
                    qmc_instrument::enable_ftz();
                    let _span = span("crowd generation", c as u64);
                    let (mut acc, mut att) = (0usize, 0usize);
                    let cs = crowd.size();
                    for (b, block) in chunk.chunks_mut(cs).enumerate() {
                        let _block_span = span_lazy(c as u64, || format!("block {b}"));
                        for (s, w) in block.iter_mut().enumerate() {
                            crowd.slot_mut(s).load_walker(w);
                        }
                        if refresh {
                            // Per-slot scalar refresh unless the crowd has
                            // fusion enabled (see `Crowd::refresh_block`).
                            crowd.refresh_block(block.len());
                        }
                        let stats = crowd.sweep(block, tau);
                        for (s, w) in block.iter_mut().enumerate() {
                            acc += stats[s].accepted;
                            att += stats[s].attempted;
                            let e = crowd.slot_mut(s);
                            let el = e.measure(&mut w.rng).total();
                            qmc_instrument::check_finite(
                                qmc_instrument::CheckKind::LocalEnergy,
                                el,
                            );
                            let factor = branch.weight_factor(w.e_local, el);
                            w.weight *= factor;
                            w.age = if stats[s].accepted == 0 { w.age + 1 } else { 0 };
                            w.e_local = el;
                            e.store_walker(w);
                        }
                    }
                    let mut counts = counts.lock();
                    counts.0 += acc;
                    counts.1 += att;
                    profile.lock().merge_group(c, &drain_thread_profile());
                });
            }
        });
        let (acc, att) = counts.into_inner();
        let esum = det_sum_by(walkers.len(), |i| walkers[i].weight * walkers[i].e_local);
        let wsum = det_sum_by(walkers.len(), |i| walkers[i].weight);
        (esum, wsum, acc, att)
    }
}
