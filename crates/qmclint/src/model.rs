//! Workspace model for qmclint v2: a function table and call graph built
//! from the token-tree parse of every non-exempt file.
//!
//! The per-file rules in [`crate::rules`] see one file at a time; the
//! invariants they cannot check are the *inter-procedural* ones — an
//! allocation two calls away from a kernel entry point, an `f32` value
//! laundered through a helper's return type, two functions taking the
//! same pair of locks in opposite orders. This module builds the shared
//! substrate those rules (in [`crate::graph_rules`]) run on: for every
//! function, its resolved outgoing calls, its allocation/panic sites, its
//! lock-acquisition sequence and its precision-relevant locals.
//!
//! Resolution is deliberately conservative (same file, then unique within
//! the crate, then — for free functions only — unique in the workspace);
//! an unresolved call simply ends the walk on that edge. The model stays
//! lexical like the rest of qmclint: no types, no macro expansion.

use std::collections::BTreeMap;

use crate::config::FileClass;
use crate::lexer::{lex, Tok, TokKind};
use crate::rules::{fn_spans, hot_site, parse_markers, test_mask, Allows};

/// One outgoing call site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// Callee name as written (method or free-function name).
    pub callee: String,
    /// 1-based line of the call.
    pub line: u32,
    /// True for `.name(...)` method calls (resolved more conservatively).
    pub method: bool,
    /// Lock guards (by lock name) lexically held at the call site.
    pub held: Vec<String>,
}

/// One allocation / panic site inside a function body.
#[derive(Debug)]
pub struct HotSite {
    /// Offending name (`collect`, `unwrap`, `vec`, ...).
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// True for panic machinery, false for allocation.
    pub panic: bool,
}

/// One `.lock()` acquisition inside a function body.
#[derive(Debug)]
pub struct LockAcq {
    /// Lock name (last path segment of the receiver: `self.profile.lock()`
    /// records `profile`).
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// Lock guards held when this one is acquired (intra-function order
    /// constraints `held -> name`).
    pub held: Vec<String>,
}

/// A compound assignment (`target += rhs;` / `target -= rhs;`) — the
/// accumulator pattern the precision-flow rule inspects.
#[derive(Debug)]
pub struct Accumulate {
    /// Assignment target (a plain identifier).
    pub target: String,
    /// 1-based line of the assignment.
    pub line: u32,
    /// Identifiers appearing in the right-hand side.
    pub rhs_idents: Vec<String>,
    /// Call names appearing in the right-hand side.
    pub rhs_calls: Vec<String>,
    /// True when the RHS contains a designated promotion site
    /// (`f64::from`, `.to_f64()`, `T::from_f64`, `.into()`).
    pub promoted: bool,
}

/// A `let` binding initialised from a call (`let x = helper();`).
#[derive(Debug)]
pub struct LetCall {
    /// Bound name.
    pub name: String,
    /// Call names in the initialiser.
    pub calls: Vec<String>,
    /// True when the initialiser contains a promotion site.
    pub promoted: bool,
}

/// One function in the table.
#[derive(Debug)]
pub struct FnModel {
    /// Function name.
    pub name: String,
    /// Index of the owning file in [`WorkspaceModel::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Cold by name (constructor/setup) or by `qmclint: cold` marker:
    /// excluded from hot-path traversal.
    pub cold: bool,
    /// Inside a `#[cfg(test)]` item: excluded from every graph rule.
    pub in_test: bool,
    /// Declared return type is exactly `f32`.
    pub ret_f32: bool,
    /// Outgoing call sites.
    pub calls: Vec<CallSite>,
    /// Allocation / panic sites.
    pub hots: Vec<HotSite>,
    /// Lock acquisitions, in body order.
    pub locks: Vec<LockAcq>,
    /// Locals declared `: f32`.
    pub f32_lets: Vec<(String, u32)>,
    /// Locals declared `: f64`.
    pub f64_lets: Vec<String>,
    /// Compound assignments (accumulator sites).
    pub accumulates: Vec<Accumulate>,
    /// Call-initialised `let` bindings.
    pub let_calls: Vec<LetCall>,
}

/// One file in the model.
#[derive(Debug)]
pub struct FileModel {
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// Classification from [`crate::config::classify`] (or a fixture
    /// header).
    pub class: FileClass,
    /// Crate key: the first two path segments (`crates/drivers/`).
    pub crate_key: String,
    /// Functions defined in the file.
    pub fns: Vec<FnModel>,
    /// True when the file contains an `unsafe` token outside strings and
    /// comments (drives the `forbid(unsafe_code)` audit).
    pub has_unsafe: bool,
    /// True when the file carries `#![forbid(unsafe_code)]`.
    pub forbids_unsafe: bool,
    /// Parsed `qmclint:` markers (graph rules honour allow markers the
    /// same way the lexical rules do).
    pub(crate) allows: Allows,
}

/// The whole-workspace function table and call graph.
#[derive(Debug, Default)]
pub struct WorkspaceModel {
    /// Per-file models, in input order.
    pub files: Vec<FileModel>,
    /// Function name -> list of `(file index, fn index)` definitions.
    pub by_name: BTreeMap<String, Vec<(usize, usize)>>,
}

const KEYWORDS: [&str; 28] = [
    "if", "while", "for", "match", "return", "fn", "let", "loop", "move", "in", "as", "mut", "ref",
    "unsafe", "use", "pub", "impl", "where", "else", "break", "continue", "struct", "enum",
    "trait", "type", "const", "static", "mod",
];

fn crate_key(path: &str) -> String {
    let mut it = path.split('/');
    match (it.next(), it.next()) {
        (Some(a), Some(b)) => format!("{a}/{b}/"),
        _ => String::new(),
    }
}

/// Walks back from token `i` to the start of the enclosing statement and
/// reports whether it begins with `let`.
fn stmt_is_let(tokens: &[Tok], i: usize, lo: usize) -> bool {
    let mut j = i;
    while j > lo {
        j -= 1;
        if let TokKind::Punct(';' | '{' | '}') = tokens[j].kind {
            return tokens.get(j + 1).is_some_and(|t| t.is_ident("let"));
        }
    }
    tokens.get(lo).is_some_and(|t| t.is_ident("let"))
}

fn is_promotion(name: &str) -> bool {
    matches!(name, "from" | "from_f64" | "to_f64" | "into")
}

impl WorkspaceModel {
    /// Builds the model from `(path, source, class)` triples. Exempt files
    /// must be filtered out by the caller (they are not part of the
    /// analyzed workspace), with one exception: files may be included
    /// purely for the unsafe audit by passing `class.exempt = true`; they
    /// contribute `has_unsafe`/`forbids_unsafe` but no functions.
    pub fn build(files: &[(String, String, FileClass)]) -> Self {
        let mut model = WorkspaceModel::default();
        for (path, src, class) in files {
            let lexed = lex(src);
            let tokens = &lexed.tokens;
            let mut throwaway = Vec::new();
            let allows = parse_markers(path, &lexed, &mut throwaway);
            let has_unsafe = tokens.iter().any(|t| t.is_ident("unsafe"));
            let forbids_unsafe = src.contains("#![forbid(unsafe_code)]");
            let fi = model.files.len();
            let mut file = FileModel {
                path: path.clone(),
                class: *class,
                crate_key: crate_key(path),
                fns: Vec::new(),
                has_unsafe,
                forbids_unsafe,
                allows,
            };
            if !class.exempt {
                let mask = test_mask(tokens);
                for span in fn_spans(tokens) {
                    let Some((b0, b1)) = span.body else { continue };
                    let mut f = FnModel {
                        name: span.name.clone(),
                        file: fi,
                        line: span.line,
                        cold: crate::config::is_cold_fn_name(&span.name)
                            || file.allows.cold_near(span.line),
                        in_test: mask[b0],
                        ret_f32: ret_is_f32(tokens, span.sig, b0),
                        calls: Vec::new(),
                        hots: Vec::new(),
                        locks: Vec::new(),
                        f32_lets: Vec::new(),
                        f64_lets: Vec::new(),
                        accumulates: Vec::new(),
                        let_calls: Vec::new(),
                    };
                    scan_body(tokens, b0, b1, &mut f);
                    model
                        .by_name
                        .entry(f.name.clone())
                        .or_default()
                        .push((fi, file.fns.len()));
                    file.fns.push(f);
                }
            }
            model.files.push(file);
        }
        model
    }

    /// Resolves a call by name: same file first, then a unique definition
    /// within the same crate, then (free functions only) a unique
    /// definition across the workspace. Ambiguity resolves to `None` —
    /// the walk stops rather than guessing.
    pub fn resolve(&self, from_file: usize, callee: &str, method: bool) -> Option<(usize, usize)> {
        let defs = self.by_name.get(callee)?;
        if let Some(&d) = defs.iter().find(|(fi, _)| *fi == from_file) {
            return Some(d);
        }
        let ck = &self.files[from_file].crate_key;
        let in_crate: Vec<&(usize, usize)> = defs
            .iter()
            .filter(|(fi, _)| &self.files[*fi].crate_key == ck)
            .collect();
        if in_crate.len() == 1 {
            return Some(*in_crate[0]);
        }
        if !method && in_crate.is_empty() && defs.len() == 1 {
            return Some(defs[0]);
        }
        None
    }

    /// Shorthand: the function at `(file, fn)` indices.
    pub fn func(&self, id: (usize, usize)) -> &FnModel {
        &self.files[id.0].fns[id.1]
    }

    /// Crates (by crate key) whose analyzed sources contain no `unsafe`
    /// token but whose `src/lib.rs` does not carry
    /// `#![forbid(unsafe_code)]` — the audit behind the satellite sweep.
    pub fn missing_forbid_unsafe(&self) -> Vec<String> {
        let mut by_crate: BTreeMap<&str, (bool, Option<bool>)> = BTreeMap::new();
        for f in &self.files {
            if f.crate_key.is_empty() || f.path.contains("/tests/") {
                continue;
            }
            let entry = by_crate
                .entry(f.crate_key.as_str())
                .or_insert((false, None));
            entry.0 |= f.has_unsafe;
            if f.path == format!("{}src/lib.rs", f.crate_key) {
                entry.1 = Some(f.forbids_unsafe);
            }
        }
        by_crate
            .into_iter()
            .filter(|&(_, (has_unsafe, forbids))| !has_unsafe && forbids == Some(false))
            .map(|(ck, _)| ck.to_string())
            .collect()
    }
}

/// True when the signature `[sig, body)` declares `-> f32`.
fn ret_is_f32(tokens: &[Tok], sig: usize, body: usize) -> bool {
    let mut j = sig;
    while j + 2 < body.min(tokens.len()) {
        if tokens[j].is_punct('-') && tokens[j + 1].is_punct('>') {
            return tokens[j + 2].is_ident("f32");
        }
        j += 1;
    }
    false
}

/// Single pass over a function body collecting calls, hot sites, lock
/// acquisitions and precision-relevant locals.
#[allow(clippy::too_many_lines)]
fn scan_body(tokens: &[Tok], b0: usize, b1: usize, f: &mut FnModel) {
    let mut depth = 0u32;
    // Let-bound lock guards in scope: (block depth at acquisition, name).
    let mut held: Vec<(u32, String)> = Vec::new();
    let mut i = b0;
    while i <= b1 {
        let t = &tokens[i];
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                held.retain(|(d, _)| *d <= depth);
            }
            TokKind::Ident => {
                // `.lock()` acquisition.
                if t.text == "lock"
                    && i > 0
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && tokens.get(i + 2).is_some_and(|n| n.is_punct(')'))
                {
                    if i >= 2 && tokens[i - 2].kind == TokKind::Ident {
                        let name = tokens[i - 2].text.clone();
                        let held_now: Vec<String> = held
                            .iter()
                            .map(|(_, n)| n.clone())
                            .filter(|n| n != &name)
                            .collect();
                        f.locks.push(LockAcq {
                            name: name.clone(),
                            line: t.line,
                            held: held_now,
                        });
                        if stmt_is_let(tokens, i, b0) {
                            held.push((depth, name));
                        }
                    }
                    i += 3;
                    continue;
                }
                // Hot (allocation / panic) site.
                if let Some((what, panic)) = hot_site(tokens, i) {
                    f.hots.push(HotSite {
                        what: what.to_string(),
                        line: t.line,
                        panic,
                    });
                }
                // `let` bindings: typed precision locals and call inits.
                if t.text == "let" {
                    scan_let(tokens, i, b1, f);
                }
                // Compound assignment accumulator: `x += ...;` / `x -= ...;`.
                if tokens
                    .get(i + 1)
                    .is_some_and(|n| n.is_punct('+') || n.is_punct('-'))
                    && tokens.get(i + 2).is_some_and(|n| n.is_punct('='))
                    && (i == b0 || !tokens[i - 1].is_punct('.'))
                {
                    scan_accumulate(tokens, i, b1, f);
                }
                // Call site.
                if let Some(callee) = call_at(tokens, i) {
                    f.calls.push(CallSite {
                        callee,
                        line: t.line,
                        method: tokens[i - 1].is_punct('.'),
                        held: held.iter().map(|(_, n)| n.clone()).collect(),
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Identifies token `i` as a call site and returns the callee name.
/// Skips keywords, declarations, capitalised names (tuple structs / enum
/// variants) and foreign path calls (`std::mem::take`), but keeps
/// `self::`/`Self::` paths and method calls.
fn call_at(tokens: &[Tok], i: usize) -> Option<String> {
    let t = &tokens[i];
    if !tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
        return None;
    }
    if KEYWORDS.contains(&t.text.as_str()) {
        return None;
    }
    if t.text.chars().next().is_some_and(char::is_uppercase) {
        return None;
    }
    if i == 0 {
        return Some(t.text.clone());
    }
    let prev = &tokens[i - 1];
    if prev.is_ident("fn") {
        return None; // declaration
    }
    if prev.is_punct(':') {
        // Path call `Q::name(` — only `self::`/`Self::` resolve locally.
        let qualifier =
            (i >= 3 && tokens[i - 2].is_punct(':') && tokens[i - 3].kind == TokKind::Ident)
                .then(|| tokens[i - 3].text.as_str());
        return match qualifier {
            Some("self" | "Self") => Some(t.text.clone()),
            _ => None,
        };
    }
    Some(t.text.clone())
}

/// Parses a `let` statement at token `i` for precision tracking.
fn scan_let(tokens: &[Tok], i: usize, b1: usize, f: &mut FnModel) {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let Some(name_tok) = tokens.get(j).filter(|t| t.kind == TokKind::Ident) else {
        return;
    };
    let name = name_tok.text.clone();
    let line = name_tok.line;
    // Typed binding: `let x: f32` / `let x: f64`.
    if tokens.get(j + 1).is_some_and(|t| t.is_punct(':')) {
        if let Some(ty) = tokens.get(j + 2) {
            if ty.is_ident("f32") {
                f.f32_lets.push((name, line));
                return;
            }
            if ty.is_ident("f64") {
                f.f64_lets.push(name);
                return;
            }
        }
        return;
    }
    // Call-initialised binding: `let x = helper(...);`.
    if !tokens.get(j + 1).is_some_and(|t| t.is_punct('=')) {
        return;
    }
    let mut calls = Vec::new();
    let mut promoted = false;
    let mut k = j + 2;
    let mut pdepth = 0i32;
    while k <= b1 {
        match tokens[k].kind {
            TokKind::Punct('(' | '[') => pdepth += 1,
            TokKind::Punct(')' | ']') => pdepth -= 1,
            TokKind::Punct(';' | '{') if pdepth <= 0 => break,
            TokKind::Ident => {
                if is_promotion(&tokens[k].text) {
                    promoted = true;
                }
                if let Some(c) = call_at(tokens, k) {
                    calls.push(c);
                }
            }
            _ => {}
        }
        k += 1;
    }
    if !calls.is_empty() {
        f.let_calls.push(LetCall {
            name,
            calls,
            promoted,
        });
    }
}

/// Parses a compound assignment `target op= rhs;` at token `i`.
fn scan_accumulate(tokens: &[Tok], i: usize, b1: usize, f: &mut FnModel) {
    let target = tokens[i].text.clone();
    let mut rhs_idents = Vec::new();
    let mut rhs_calls = Vec::new();
    let mut promoted = false;
    let mut k = i + 3;
    let mut pdepth = 0i32;
    while k <= b1 {
        match tokens[k].kind {
            TokKind::Punct('(' | '[') => pdepth += 1,
            TokKind::Punct(')' | ']') => pdepth -= 1,
            TokKind::Punct(';') if pdepth <= 0 => break,
            TokKind::Ident => {
                if is_promotion(&tokens[k].text) {
                    promoted = true;
                }
                if let Some(c) = call_at(tokens, k) {
                    rhs_calls.push(c);
                } else {
                    rhs_idents.push(tokens[k].text.clone());
                }
            }
            _ => {}
        }
        k += 1;
    }
    f.accumulates.push(Accumulate {
        target,
        line: tokens[i].line,
        rhs_idents,
        rhs_calls,
        promoted,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn physics() -> FileClass {
        FileClass {
            exempt: false,
            mixed_precision: false,
            kernel: false,
            physics: true,
        }
    }

    fn build_one(src: &str) -> WorkspaceModel {
        WorkspaceModel::build(&[("crates/demo/src/a.rs".into(), src.into(), physics())])
    }

    #[test]
    fn calls_and_hots_are_recorded() {
        let m = build_one(
            "fn outer(n: usize) { helper(n); }\n\
             fn helper(n: usize) -> Vec<u8> { (0..n).collect() }\n",
        );
        let outer = &m.files[0].fns[0];
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].callee, "helper");
        let helper = &m.files[0].fns[1];
        assert_eq!(helper.hots.len(), 1);
        assert_eq!(helper.hots[0].what, "collect");
        assert!(!helper.hots[0].panic);
        assert_eq!(m.resolve(0, "helper", false), Some((0, 1)));
    }

    #[test]
    fn ret_f32_and_precision_locals() {
        let m = build_one(
            "fn cheap() -> f32 { 0.5 }\n\
             fn accumulate() {\n    let e = cheap();\n    let mut total: f64 = 0.0;\n    total += e;\n}\n",
        );
        assert!(m.files[0].fns[0].ret_f32);
        let acc = &m.files[0].fns[1];
        assert_eq!(acc.let_calls.len(), 1);
        assert_eq!(acc.let_calls[0].calls, vec!["cheap".to_string()]);
        assert_eq!(acc.f64_lets, vec!["total".to_string()]);
        assert_eq!(acc.accumulates.len(), 1);
        assert_eq!(acc.accumulates[0].target, "total");
        assert!(acc.accumulates[0].rhs_idents.contains(&"e".to_string()));
    }

    #[test]
    fn lock_sequences_track_held_guards() {
        let m = build_one(
            "fn generation(&self) {\n    let mut c = self.counts.lock();\n    self.profile.lock().merge();\n}\n",
        );
        let f = &m.files[0].fns[0];
        assert_eq!(f.locks.len(), 2);
        assert_eq!(f.locks[0].name, "counts");
        assert!(f.locks[0].held.is_empty());
        assert_eq!(f.locks[1].name, "profile");
        assert_eq!(f.locks[1].held, vec!["counts".to_string()]);
    }

    #[test]
    fn inline_guard_does_not_stay_held_and_blocks_scope_guards() {
        let m = build_one(
            "fn a(&self) {\n    self.alpha.lock().touch();\n    self.beta.lock().touch();\n    {\n        let g = self.gamma.lock();\n    }\n    self.delta.lock().touch();\n}\n",
        );
        let f = &m.files[0].fns[0];
        // alpha/beta inline: neither held at the next acquisition.
        assert!(f.locks[1].held.is_empty());
        // gamma let-bound in an inner block: released before delta.
        assert_eq!(f.locks[2].name, "gamma");
        assert!(f.locks[3].held.is_empty(), "{:?}", f.locks[3]);
    }

    #[test]
    fn foreign_paths_and_variants_are_not_calls() {
        let m = build_one(
            "fn f() { std::mem::take(&mut 0); Some(1); Self::helper(); }\nfn helper() {}\n",
        );
        let calls: Vec<&str> = m.files[0].fns[0]
            .calls
            .iter()
            .map(|c| c.callee.as_str())
            .collect();
        assert_eq!(calls, vec!["helper"]);
    }

    #[test]
    fn method_calls_do_not_resolve_globally() {
        let files = [
            (
                "crates/a/src/lib.rs".to_string(),
                "fn f(x: &X) { x.evaluate(); }".to_string(),
                physics(),
            ),
            (
                "crates/b/src/lib.rs".to_string(),
                "pub fn evaluate() {}".to_string(),
                physics(),
            ),
        ];
        let m = WorkspaceModel::build(&files);
        assert_eq!(m.resolve(0, "evaluate", true), None);
        // A free call *does* resolve via the unique-global fallback.
        assert_eq!(m.resolve(0, "evaluate", false), Some((1, 0)));
    }

    #[test]
    fn unsafe_audit_flags_missing_forbid() {
        let files = [
            (
                "crates/a/src/lib.rs".to_string(),
                "#![forbid(unsafe_code)]\npub fn f() {}".to_string(),
                physics(),
            ),
            (
                "crates/b/src/lib.rs".to_string(),
                "pub fn g() {}".to_string(),
                physics(),
            ),
            (
                "crates/c/src/lib.rs".to_string(),
                "pub unsafe fn h() {}".to_string(),
                physics(),
            ),
        ];
        let m = WorkspaceModel::build(&files);
        assert_eq!(m.missing_forbid_unsafe(), vec!["crates/b/".to_string()]);
    }
}
