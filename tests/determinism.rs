//! Determinism and schedule-independence: per-walker RNG streams make
//! trajectories reproducible regardless of seed reuse or thread count.

use qmc::prelude::*;

fn cfg(threads: usize) -> RunConfig {
    RunConfig {
        threads,
        walkers: 4,
        steps: 5,
        warmup: 1,
        tau: 0.003,
        seed: 99,
        ..Default::default()
    }
}

#[test]
fn identical_seeds_give_identical_energies() {
    let w = Workload::new(Benchmark::Graphite, Size::Scaled, 99);
    let a = run_dmc_benchmark(&w, CodeVersion::Current, &cfg(1));
    let b = run_dmc_benchmark(&w, CodeVersion::Current, &cfg(1));
    assert_eq!(a.energy.0, b.energy.0, "single-thread runs must be bitwise");
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.final_population, b.final_population);
}

#[test]
fn thread_count_does_not_change_the_markov_chains() {
    // Walkers carry their own RNG streams, branching is serialized, and
    // the energy reduction runs in walker order after the parallel
    // section — so results are bitwise identical across crew sizes.
    let w = Workload::new(Benchmark::Graphite, Size::Scaled, 99);
    let a = run_dmc_benchmark(&w, CodeVersion::Current, &cfg(1));
    let b = run_dmc_benchmark(&w, CodeVersion::Current, &cfg(3));
    assert_eq!(
        a.energy.0, b.energy.0,
        "1 thread vs 3 threads must be bitwise"
    );
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.final_population, b.final_population);
}

#[test]
fn crowd_batching_does_not_change_the_markov_chains() {
    // The crowd drive executes the same per-walker floating-point op
    // sequence in lock-step batches, so VMC/DMC scalars are bitwise
    // identical to the per-walker drive for every crowd size.
    let w = Workload::new(Benchmark::Graphite, Size::Scaled, 99);
    let reference = run_dmc_benchmark(&w, CodeVersion::Current, &cfg(1));
    for crowd in [1usize, 4, 32] {
        let mut c = cfg(1);
        c.batching = Batching::Crowd(crowd);
        let out = run_dmc_benchmark(&w, CodeVersion::Current, &c);
        assert_eq!(
            reference.energy.0, out.energy.0,
            "per-walker vs crowd({crowd}) energy must be bitwise"
        );
        assert_eq!(reference.energy.1, out.energy.1, "crowd({crowd}) error");
        assert_eq!(reference.samples, out.samples, "crowd({crowd}) samples");
        assert_eq!(
            reference.final_population, out.final_population,
            "crowd({crowd}) population"
        );
    }
}

#[test]
fn crowd_batching_is_thread_invariant_too() {
    let w = Workload::new(Benchmark::Graphite, Size::Scaled, 99);
    let mut c1 = cfg(1);
    c1.batching = Batching::Crowd(4);
    let mut c4 = cfg(4);
    c4.batching = Batching::Crowd(4);
    let a = run_dmc_benchmark(&w, CodeVersion::Current, &c1);
    let b = run_dmc_benchmark(&w, CodeVersion::Current, &c4);
    assert_eq!(a.energy.0, b.energy.0, "crowd(4): 1 vs 4 threads");
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.final_population, b.final_population);
}

#[test]
fn different_seeds_decorrelate() {
    let w1 = Workload::new(Benchmark::Graphite, Size::Scaled, 1);
    let w2 = Workload::new(Benchmark::Graphite, Size::Scaled, 1);
    let mut c1 = cfg(1);
    c1.seed = 1;
    let mut c2 = cfg(1);
    c2.seed = 2;
    let a = run_dmc_benchmark(&w1, CodeVersion::Current, &c1);
    let b = run_dmc_benchmark(&w2, CodeVersion::Current, &c2);
    assert_ne!(a.energy.0, b.energy.0);
}
