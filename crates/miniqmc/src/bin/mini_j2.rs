//! Two-body Jastrow miniapp (§7.1): compares the baseline
//! store-everything J2 (`5 N^2` scalars per walker, row+column updates)
//! against the compute-on-the-fly SoA J2 (`5 N`) over realistic PbyP move
//! cycles, reporting time and per-walker memory.
//!
//! ```text
//! mini_j2 --nel 384 --iters 20 --l 15.8
//! ```

use miniqmc::Options;
use qmc_bspline::CubicBspline1D;
use qmc_containers::TinyVector;
use qmc_particles::{random_positions_in_cell, CrystalLattice, Layout, ParticleSet, Species};
use qmc_wavefunction::{traits::WaveFunctionComponent, J2Ref, J2Soa, PairFunctors};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

fn electrons(n: usize, l: f64, layout: Layout, seed: u64) -> (ParticleSet<f64>, usize) {
    let lat = CrystalLattice::cubic(l);
    let mut rng = StdRng::seed_from_u64(seed);
    let pos = random_positions_in_cell(&lat, n, &mut rng);
    let half = n / 2;
    let mut p = ParticleSet::new(
        "e",
        lat,
        vec![
            (
                Species {
                    name: "u".into(),
                    charge: -1.0,
                },
                pos[..half].to_vec(),
            ),
            (
                Species {
                    name: "d".into(),
                    charge: -1.0,
                },
                pos[half..].to_vec(),
            ),
        ],
    );
    let h = p.add_table_aa(layout);
    (p, h)
}

fn functors(rc: f64) -> PairFunctors<f64> {
    PairFunctors::new(2, |a, b| {
        let (amp, cusp) = if a == b { (0.35, -0.25) } else { (0.5, -0.5) };
        CubicBspline1D::fit(
            move |r| amp * (1.0 - r / rc).powi(3) / (1.0 + 0.4 * r),
            cusp,
            rc,
            10,
        )
    })
}

fn cycle(
    p: &mut ParticleSet<f64>,
    j2: &mut dyn WaveFunctionComponent<f64>,
    iters: usize,
    _l: f64,
    seed: u64,
) -> f64 {
    let n = p.len();
    let mut rng = StdRng::seed_from_u64(seed);
    p.update_tables();
    j2.evaluate_log(p);
    let t0 = Instant::now();
    for _ in 0..iters {
        for iat in 0..n {
            p.prepare_move(iat);
            let _ = j2.eval_grad(p, iat);
            let newpos = p.pos(iat)
                + TinyVector([
                    0.5 * (rng.random::<f64>() - 0.5),
                    0.5 * (rng.random::<f64>() - 0.5),
                    0.5 * (rng.random::<f64>() - 0.5),
                ]);
            p.make_move(iat, newpos);
            let mut g = TinyVector::zero();
            let _ratio = j2.ratio_grad(p, iat, &mut g);
            if rng.random::<f64>() < 0.5 {
                j2.accept_move(p, iat);
                p.accept_move(iat);
            } else {
                j2.restore(iat);
                p.reject_move(iat);
            }
        }
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    let opts = Options::from_env();
    let n = opts.get("nel", 384usize);
    let iters = opts.get("iters", 20usize);
    let l = opts.get("l", 15.8f64);
    let seed = opts.get("seed", 1u64);
    let rc = (l / 2.0 * 0.99).min(3.9);

    println!("mini_j2: N = {n}, iters = {iters}, L = {l}, r_cut = {rc:.2}");
    let moves = (n * iters) as f64;

    let (mut p, h) = electrons(n, l, Layout::Aos, seed);
    let mut jref = J2Ref::new(&p, h, functors(rc));
    let t_ref = cycle(&mut p, &mut jref, iters, l, seed);
    println!(
        "J2-ref  (5N^2 store) : {:>8.3} s  ({:>8.1} ns/move)  {:>8.2} MiB/walker",
        t_ref,
        t_ref / moves * 1e9,
        jref.bytes() as f64 / (1 << 20) as f64
    );
    let log_ref = jref.log_value();

    let (mut p, h) = electrons(n, l, Layout::Soa, seed);
    let mut jsoa = J2Soa::new(&p, h, functors(rc));
    let t_soa = cycle(&mut p, &mut jsoa, iters, l, seed);
    println!(
        "J2-soa  (5N  fly)    : {:>8.3} s  ({:>8.1} ns/move)  {:>8.2} MiB/walker",
        t_soa,
        t_soa / moves * 1e9,
        jsoa.bytes() as f64 / (1 << 20) as f64
    );
    println!("speedup              : {:>8.2}x", t_ref / t_soa);
    println!(
        "memory reduction     : {:>8.1}x",
        jref.bytes() as f64 / jsoa.bytes() as f64
    );
    let log_soa = jsoa.log_value();
    println!("log check |ref - soa| = {:.2e}", (log_ref - log_soa).abs());
    assert!(
        (log_ref - log_soa).abs() < 1e-6 * (1.0 + log_ref.abs()),
        "J2 implementations disagree"
    );
}
