//! Machine-readable benchmark snapshot for CI.
//!
//! Runs the graphite workload under the Ref and Current code versions
//! (per-walker batching) plus Current under a lock-step crowd — the crowd
//! run drives the batched `Bspline-mw-vgl` kernel, so that column is live
//! in the snapshot rather than permanently zero — then sweeps the Current
//! code across the explicit kernel backends (`reference` and `simd`, in
//! both batching modes), so the snapshot carries a per-backend timing
//! matrix. One `qmc-bench-snapshot/2` JSON document goes to stdout: wall
//! time, throughput, and per-kernel seconds for every kernel category. CI
//! redirects this into `BENCH_pr<N>.json` so successive PRs leave
//! comparable timing artifacts next to the test logs; `bench_compare`
//! gates the series (runs matched by code/batching/backend).
//!
//! Knobs are the shared harness flags (`--walkers`, `--steps`,
//! `--threads`, `--seed`, `--reps`, `--full`); defaults are smoke-sized.

use qmc_bench::{run_report_batched, HarnessConfig};
use qmc_instrument::json::JsonWriter;
use qmc_instrument::ALL_KERNELS;
use qmc_kernels::{set_backend, Backend};
use qmc_workloads::{Batching, Benchmark, CodeVersion};

fn main() {
    let cfg = HarnessConfig::from_env();
    let w = cfg.workload(Benchmark::Graphite);
    let crowd = cfg.walkers.clamp(1, 4);

    let mut j = JsonWriter::new();
    j.begin_obj();
    j.key("schema").str_val("qmc-bench-snapshot/2");
    j.key("benchmark").str_val(w.spec.name);
    j.key("electrons").u64_val(w.num_electrons() as u64);
    j.key("threads").u64_val(cfg.threads as u64);
    j.key("walkers").u64_val(cfg.walkers as u64);
    j.key("steps").u64_val(cfg.steps as u64);
    j.key("seed").u64_val(cfg.seed);
    j.key("runs").begin_arr();
    // The first three runs keep the historical series (session-default
    // backend); the explicit-backend sweep follows. Engines capture the
    // backend at construction, so `set_backend` before each run is enough.
    let runs = [
        (CodeVersion::Ref, Batching::PerWalker, "per-walker", None),
        (
            CodeVersion::Current,
            Batching::PerWalker,
            "per-walker",
            None,
        ),
        (CodeVersion::Current, Batching::Crowd(crowd), "crowd", None),
        (
            CodeVersion::Current,
            Batching::PerWalker,
            "per-walker",
            Some(Backend::Reference),
        ),
        (
            CodeVersion::Current,
            Batching::PerWalker,
            "per-walker",
            Some(Backend::Simd),
        ),
        (
            CodeVersion::Current,
            Batching::Crowd(crowd),
            "crowd",
            Some(Backend::Reference),
        ),
        (
            CodeVersion::Current,
            Batching::Crowd(crowd),
            "crowd",
            Some(Backend::Simd),
        ),
    ];
    let session_backend = Backend::current();
    for (code, batching, batch_label, backend) in runs {
        set_backend(backend.unwrap_or(session_backend));
        let report = run_report_batched(&w, code, &cfg, batching);
        j.begin_obj();
        j.key("code").str_val(&report.code);
        j.key("batching").str_val(batch_label);
        j.key("kernel_backend").str_val(&report.kernel_backend);
        j.key("seconds").f64_val(report.seconds);
        j.key("samples").u64_val(report.samples);
        j.key("throughput_samples_per_s")
            .f64_val(report.throughput());
        j.key("kernels").begin_obj();
        for &k in &ALL_KERNELS {
            j.key(k.label()).f64_val(report.profile.get(k).seconds());
        }
        j.end_obj();
        j.end_obj();
    }
    j.end_arr();
    j.end_obj();
    println!("{}", j.finish());
}
