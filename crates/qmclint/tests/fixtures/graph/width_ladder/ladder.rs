// fixture-path: crates/kernels/src/ladder_fixture.rs
//! Width-ladder dispatch miniature of the SIMD kernel library: an 8-wide
//! f64 rung and a 16-wide f32 rung hang off one width dispatcher, and the
//! multi-point value-only batch entry (the `mw_evaluate_v` shape) loops
//! the dispatcher. Every one of these — dispatcher, both monomorphized
//! rungs, and the batch wrapper — lives in a kernel file and is therefore
//! a hot root of its own; an allocation reached from the 16-wide rung
//! must fire at each kernel call site along the chain.

/// Miniature of `wide_f32`: picks the 16-wide rung.
fn is_wide() -> bool {
    true
}

/// Width dispatcher: both rungs are hot roots in a kernel file.
pub fn value_row(x: &mut [f64]) -> f64 {
    if is_wide() {
        row_w16(x) //~ hot-path-call
    } else {
        row_w8(x)
    }
}

/// 8-wide rung: tight loop, no allocation — must stay silent.
fn row_w8(x: &mut [f64]) -> f64 {
    let mut acc = 0.0;
    for v in x.iter_mut() {
        *v *= 0.5;
        acc += *v;
    }
    acc
}

/// 16-wide rung: stages through a non-kernel helper that allocates; as a
/// hot root of its own, its call site fires too.
fn row_w16(x: &mut [f64]) -> f64 {
    let pad = quad_scratch(x.len()); //~ hot-path-call
    pad + x.iter().sum::<f64>()
}

/// Multi-point value-only batch entry (the NLPP quadrature shape): a
/// kernel root that reaches the allocation through the dispatcher, and —
/// being a batched `mw_*` kernel entry — one that must also carry a
/// `Kernel::*` timer (or a justified allow) like the real entry points do.
pub fn mw_value_rows(xs: &mut [f64]) -> f64 { //~ timer-coverage
    value_row(xs) //~ hot-path-call
}
