// fixture-path: crates/drivers/src/walker.rs
//! Seeded bug: a field added to the checkpointed `Walker` without
//! extending the codec. `rng` is carried by the decoder, the digest and
//! the clone carrier, but the serializer never mentions it — restarted
//! walkers would come back with fresh streams. The state-coverage rule
//! must flag the struct definition naming the missing field and carrier.

//~v state-coverage
pub struct Walker {
    pub weight: f64,
    pub age: u32,
    pub rng: StdRng,
}

/// Serialize carrier: weight and age only — `rng` is the gap.
pub fn serialize_walker(w: &Walker) -> Vec<u8> {
    let mut out = w.weight.to_le_bytes().to_vec();
    out.extend(w.age.to_le_bytes());
    out
}

/// Deserialize carrier: covers every field (rng via `rng_state`).
pub fn decode_walker(weight: f64, age: u32, rng_state: [u64; 4]) -> Walker {
    Walker {
        weight,
        age,
        rng: StdRng::from_state(rng_state),
    }
}

/// Digest carrier: covers every field.
pub fn walker_digest_full(w: &Walker) -> u64 {
    w.weight.to_bits() ^ u64::from(w.age) ^ w.rng.state()[0]
}

/// Clone carrier: covers every field.
pub fn branch_copy(w: &Walker) -> Walker {
    Walker {
        weight: w.weight,
        age: w.age,
        rng: w.rng.split_stream(),
    }
}
