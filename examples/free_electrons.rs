//! Physics validation example: free electrons in a periodic box.
//!
//! A Slater determinant of plane-wave-like cosine orbitals is an exact
//! eigenstate of the kinetic operator, so VMC and DMC must both produce
//! `E = sum_s |k_s|^2 / 2` with zero variance — a stringent end-to-end
//! check of tables, ratios, drift, branching and estimators, and a
//! demonstration of using the library outside the bundled benchmark
//! workloads.
//!
//! ```text
//! cargo run --release --example free_electrons
//! ```

use qmc::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let l = 6.0;
    let n = 7;
    let lat = CrystalLattice::cubic(l);
    let mut rng = StdRng::seed_from_u64(11);
    let pos: Vec<Pos<f64>> = (0..n)
        .map(|_| {
            TinyVector([
                rng.random::<f64>() * l,
                rng.random::<f64>() * l,
                rng.random::<f64>() * l,
            ])
        })
        .collect();

    let mut pset = ParticleSet::new(
        "e",
        lat,
        vec![(
            Species {
                name: "u".into(),
                charge: -1.0,
            },
            pos.clone(),
        )],
    );
    pset.add_table_aa(Layout::Soa);

    let spo = CosineSpo::<f64>::new(n, [l, l, l]);
    let mut psi = TrialWaveFunction::new();
    psi.add(Box::new(DiracDeterminant::new(
        Box::new(spo),
        0,
        n,
        DetUpdateMode::ShermanMorrison,
    )));

    let mut engine = QmcEngine::new(pset, psi, HamiltonianSet::kinetic_only());
    let mut walkers = initial_population::<f64>(&pos, 8, 3);

    println!("free-electron determinant, N = {n}, L = {l}\n");

    let vmc = run_vmc(
        &mut engine,
        &mut walkers,
        &VmcParams {
            blocks: 4,
            steps_per_block: 15,
            tau: 0.3,
            measure_every: 1,
            ..Default::default()
        },
    );
    let (e_vmc, _, _) = vmc.energy.blocking();
    println!(
        "VMC : E = {:.10}  variance = {:.2e}  acceptance = {:.2}",
        e_vmc,
        vmc.energy.variance(),
        vmc.acceptance
    );

    let dmc = run_dmc(
        &mut engine,
        &mut walkers,
        &DmcParams {
            steps: 40,
            warmup: 5,
            tau: 0.02,
            target_population: 8,
            recompute_every: 10,
            seed: 77,
            ..Default::default()
        },
    );
    let (e_dmc, err, tau_corr) = dmc.energy.blocking();
    println!(
        "DMC : E = {:.10} +- {:.1e}  tau_corr = {:.1}  final population = {}",
        e_dmc,
        err,
        tau_corr,
        dmc.population.last().unwrap()
    );

    // The exact eigenvalue, from the same deterministic k enumeration.
    use std::f64::consts::TAU;
    let mut exact = 0.0;
    let mut count = 0;
    'outer: for shell in 0i64.. {
        for ix in -shell..=shell {
            for iy in -shell..=shell {
                for iz in -shell..=shell {
                    if ix.abs().max(iy.abs()).max(iz.abs()) != shell {
                        continue;
                    }
                    let k2 = (TAU * ix as f64 / l).powi(2)
                        + (TAU * iy as f64 / l).powi(2)
                        + (TAU * iz as f64 / l).powi(2);
                    exact += 0.5 * k2;
                    count += 1;
                    if count == n {
                        break 'outer;
                    }
                }
            }
        }
    }
    println!("exact eigenstate energy: {exact:.10}");
    assert!((e_vmc - exact).abs() < 1e-7, "VMC off eigenvalue");
    assert!((e_dmc - exact).abs() < 1e-7, "DMC off eigenvalue");
    println!("\nzero-variance check passed: both drivers reproduce the eigenvalue.");
}
