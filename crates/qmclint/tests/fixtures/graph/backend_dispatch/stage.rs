// fixture-path: crates/workloads/src/stage_fixture.rs
//! Non-kernel physics helper: the per-file hot-path rule does not apply
//! here, but the allocation is reachable from the kernel library's
//! dispatch chain and must be reported back at the kernel call sites.

/// Allocates a staging buffer per call — legal here, hot through the
/// backend dispatch.
pub fn stage_scratch(n: usize) -> f64 {
    let scratch: Vec<f64> = (0..n).map(|_| 1.0).collect();
    scratch.iter().sum()
}
