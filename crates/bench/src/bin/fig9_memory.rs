//! Figure 9: memory usage of all four benchmarks, Ref vs Current.
//!
//! The paper shows O(N^2) memory savings up to 3.8x (36 GB for NiO-64),
//! letting every benchmark fit KNL's 16 GB MCDRAM. We report the same
//! node-memory model (table + N_th engines + N_w walker buffers) for both
//! versions, plus the measured process RSS as a cross-check.

use qmc_bench::{mib, run_best, HarnessConfig};
use qmc_instrument::current_rss_bytes;
use qmc_workloads::{Benchmark, CodeVersion};

fn main() {
    let cfg = HarnessConfig::from_env();
    println!(
        "== Fig 9: memory usage (model: table + {} engines + {} walkers) ==\n",
        cfg.threads, cfg.walkers
    );
    println!(
        "{:<10} {:>6} {:>14} {:>14} {:>10}",
        "workload", "N", "Ref MiB", "Current MiB", "reduction"
    );

    for b in Benchmark::all() {
        let w = cfg.workload(b);
        let r = run_best(&w, CodeVersion::Ref, &cfg);
        let c = run_best(&w, CodeVersion::Current, &cfg);
        let mr = r.total_bytes(cfg.threads, cfg.walkers);
        let mc = c.total_bytes(cfg.threads, cfg.walkers);
        println!(
            "{:<10} {:>6} {:>14.1} {:>14.1} {:>9.2}x",
            w.spec.name,
            w.num_electrons(),
            mib(mr),
            mib(mc),
            mr as f64 / mc as f64
        );
    }
    if let Some(rss) = current_rss_bytes() {
        println!("\nprocess RSS after all runs: {:.1} MiB", mib(rss as usize));
    }
    println!(
        "\n(expected shape per the paper: up to ~3.8x reduction, growing with\n\
         N; NiO-64's Current footprint fits the 16 GB MCDRAM budget.)"
    );
}
