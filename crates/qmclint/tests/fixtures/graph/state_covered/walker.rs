// fixture-path: crates/drivers/src/walker.rs
// fixture-silences: state-coverage
//! Silence witness: a checkpointed `Walker` whose every field appears in
//! all four carriers — serializer, decoder, digest, and clone — so the
//! field-set diff is empty and state-coverage stays quiet.

pub struct Walker {
    pub weight: f64,
    pub age: u32,
}

/// Serialize carrier: both fields on the wire.
pub fn serialize_walker(w: &Walker) -> Vec<u8> {
    let mut out = w.weight.to_le_bytes().to_vec();
    out.extend(w.age.to_le_bytes());
    out
}

/// Deserialize carrier: both fields as parameters.
pub fn decode_walker(weight: f64, age: u32) -> Walker {
    Walker { weight, age }
}

/// Digest carrier: both fields folded in.
pub fn walker_digest_full(w: &Walker) -> u64 {
    w.weight.to_bits() ^ u64::from(w.age)
}

/// Clone carrier: both fields copied.
pub fn branch_copy(w: &Walker) -> Walker {
    Walker {
        weight: w.weight,
        age: w.age,
    }
}
