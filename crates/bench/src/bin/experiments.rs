//! Runs the entire evaluation suite (every figure and table harness) in
//! sequence, the one-command reproduction of §8. Pass `--full` for
//! paper-sized problems (slow); default is the scaled suite.

use std::process::Command;

fn main() {
    let pass_through: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "table1_workloads",
        "fig3_jastrow_functors",
        "fig2_hotspots",
        "fig7_roofline",
        "fig8_speedup_memory",
        "fig9_memory",
        "fig10_energy",
        "table2_speedups",
        "fig1_strong_scaling",
        "hyperthreading_study",
        "ablation",
    ];
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(std::path::Path::to_path_buf))
        .expect("cannot locate binary directory");

    let mut failed = Vec::new();
    for bin in bins {
        println!("\n############################################################");
        println!("## {bin}");
        println!("############################################################");
        let status = Command::new(exe_dir.join(bin)).args(&pass_through).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failed.push(bin);
            }
            Err(e) => {
                eprintln!("{bin} failed to launch: {e}");
                failed.push(bin);
            }
        }
    }
    println!("\n############################################################");
    if failed.is_empty() {
        println!("## all {} experiments completed", bins.len());
    } else {
        println!("## FAILED: {failed:?}");
        std::process::exit(1);
    }
}
