//! Property tests for the checkpoint surface of the vendored RNG, plus
//! the linter-side mirror of its draw-method inventory.
//!
//! The checkpoint/restart contract (PR 7) leans on `StdRng::state()` /
//! `StdRng::from_state()` being a bitwise resume — not a re-seed. The
//! property below drives that from arbitrary seeds and warm-up depths
//! instead of the handful of fixed seeds in the unit tests.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `state()` → `from_state()` resumes the stream bitwise: from any
    /// seed and any warm-up depth, the restored generator reproduces the
    /// identical next-N `u64` draws.
    #[test]
    fn state_roundtrip_preserves_next_draws(seed in any::<u64>(), warmup in 0usize..257) {
        let mut original = StdRng::seed_from_u64(seed);
        for _ in 0..warmup {
            original.next_u64();
        }
        let snap = original.state();
        let mut restored = StdRng::from_state(snap);
        prop_assert_eq!(restored.state(), snap);
        for _ in 0..64 {
            prop_assert_eq!(original.next_u64(), restored.next_u64());
        }
    }

    /// Restoring must not perturb the donor: interleaving draws between
    /// the original and the restored copy keeps them in lockstep.
    #[test]
    fn restored_stream_stays_in_lockstep(seed in any::<u64>()) {
        let mut original = StdRng::seed_from_u64(seed);
        let mut restored = StdRng::from_state(original.state());
        for _ in 0..32 {
            prop_assert_eq!(original.next_u64(), restored.next_u64());
            prop_assert_eq!(original.random_range(0usize..1024), restored.random_range(0usize..1024));
        }
    }
}

/// Mirror of `qmclint::config::RNG_DRAW_METHODS`: the linter recognizes
/// draw sites lexically by method name (the shim itself is exempt from
/// linting), so extending the shim's draw API means extending that list.
/// Each entry is exercised against the shim here so a stale name in
/// either inventory fails loudly.
#[test]
fn draw_method_inventory_mirrors_the_linter() {
    let shim_draw_surface = ["random", "random_range", "random_bool", "next_u64"];

    let mut rng = StdRng::seed_from_u64(1);
    let _: f64 = rng.random();
    let _ = rng.random_range(0usize..4);
    let _ = rng.random_bool(0.5);
    let _ = rng.next_u64();

    assert_eq!(
        shim_draw_surface,
        qmclint::config::RNG_DRAW_METHODS,
        "shim draw surface and linter RNG_DRAW_METHODS diverged"
    );
}
