//! Cache-line/SIMD-aligned storage.
//!
//! The paper's `VectorSoaContainer` relies on cache-aligned allocation (it
//! uses the TBB cache-aligned allocator) so that each SoA slab starts on a
//! SIMD-friendly boundary and rows of padded matrices are aligned. We obtain
//! the same guarantee by backing storage with 64-byte-aligned blocks.

use std::ops::{Deref, DerefMut};

/// Alignment in bytes of every slab handed out by [`AlignedVec`]. 64 bytes
/// covers an AVX-512 vector and an x86 cache line.
pub const QMC_SIMD_ALIGN: usize = 64;

/// A 64-byte-aligned, 64-byte-sized block. Allocating a `Vec<Block64>` gives
/// us aligned backing storage without hand-rolled `alloc`/`dealloc`.
#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct Block64([u8; QMC_SIMD_ALIGN]);

/// Number of `T` lanes that fit one SIMD alignment unit.
#[inline]
pub const fn lanes_per_align<T>() -> usize {
    QMC_SIMD_ALIGN / std::mem::size_of::<T>()
}

/// Rounds `n` elements of `T` up to a multiple of the SIMD width, the padded
/// length `Np` the paper uses for SoA slabs and matrix row strides.
#[inline]
pub const fn padded_len<T>(n: usize) -> usize {
    let w = lanes_per_align::<T>();
    n.div_ceil(w) * w
}

/// A fixed-capacity, 64-byte-aligned vector of plain-old-data scalars.
///
/// Unlike `Vec<T>`, the first element is guaranteed to sit on a
/// [`QMC_SIMD_ALIGN`] boundary, which lets compilers emit aligned loads for
/// the innermost kernel loops. Only `Copy` element types are supported; the
/// container zero-initializes its storage.
pub struct AlignedVec<T: Copy + Default> {
    blocks: Vec<Block64>,
    len: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Copy + Default> AlignedVec<T> {
    /// Creates a vector of `len` default-initialized (zero for floats)
    /// elements.
    pub fn zeros(len: usize) -> Self {
        assert!(
            QMC_SIMD_ALIGN.is_multiple_of(std::mem::size_of::<T>()),
            "element size must divide the alignment"
        );
        let bytes = len * std::mem::size_of::<T>();
        let nblocks = bytes.div_ceil(QMC_SIMD_ALIGN);
        let mut v = Self {
            blocks: vec![Block64([0u8; QMC_SIMD_ALIGN]); nblocks],
            len,
            _marker: std::marker::PhantomData,
        };
        // Default may not be all-zero bits for exotic T; fill explicitly.
        for x in v.iter_mut() {
            *x = T::default();
        }
        v
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Immutable view of all elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: blocks provide at least len*size_of::<T>() bytes with
        // alignment >= align_of::<T>() and T is plain old data.
        unsafe { std::slice::from_raw_parts(self.blocks.as_ptr().cast::<T>(), self.len) }
    }

    /// Mutable view of all elements.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: as in `as_slice`; &mut self guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.blocks.as_mut_ptr().cast::<T>(), self.len) }
    }

    /// Fills every element with `value`.
    pub fn fill(&mut self, value: T) {
        self.as_mut_slice().fill(value);
    }
}

impl<T: Copy + Default> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        Self {
            blocks: self.blocks.clone(),
            len: self.len,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Copy + Default> Deref for AlignedVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default> DerefMut for AlignedVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

// Indexing (by usize and by ranges) comes through `Deref`/`DerefMut` to
// slices; no explicit `Index` impls so range indexing resolves naturally.

impl<T: Copy + Default + std::fmt::Debug> std::fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_of_first_element() {
        for n in [1usize, 3, 17, 64, 1000] {
            let v = AlignedVec::<f32>::zeros(n);
            assert_eq!(v.as_slice().as_ptr() as usize % QMC_SIMD_ALIGN, 0);
            let v = AlignedVec::<f64>::zeros(n);
            assert_eq!(v.as_slice().as_ptr() as usize % QMC_SIMD_ALIGN, 0);
        }
    }

    #[test]
    fn zero_initialized_and_writable() {
        let mut v = AlignedVec::<f64>::zeros(10);
        assert!(v.iter().all(|&x| x == 0.0));
        v[3] = 7.5;
        assert_eq!(v[3], 7.5);
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn padded_len_rounds_to_simd_width() {
        assert_eq!(padded_len::<f32>(1), 16);
        assert_eq!(padded_len::<f32>(16), 16);
        assert_eq!(padded_len::<f32>(17), 32);
        assert_eq!(padded_len::<f64>(1), 8);
        assert_eq!(padded_len::<f64>(8), 8);
        assert_eq!(padded_len::<f64>(9), 16);
        assert_eq!(padded_len::<f64>(0), 0);
    }

    #[test]
    fn empty_vector() {
        let v = AlignedVec::<f32>::zeros(0);
        assert!(v.is_empty());
        assert_eq!(v.as_slice().len(), 0);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = AlignedVec::<f64>::zeros(5);
        a[0] = 1.0;
        let b = a.clone();
        a[0] = 2.0;
        assert_eq!(b[0], 1.0);
        assert_eq!(a[0], 2.0);
    }

    #[test]
    fn fill_sets_every_lane() {
        let mut v = AlignedVec::<f32>::zeros(33);
        v.fill(3.5);
        assert!(v.iter().all(|&x| x == 3.5));
    }
}
