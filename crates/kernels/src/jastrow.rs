//! Two-body Jastrow accumulation kernels behind the [`Backend`] seam.
//!
//! The functor evaluations (`u(r)`, `u'(r)/r`, Laplacian terms) stay in
//! `qmc-wavefunction` — they carry the cutoff branch and the group
//! dispatch. What lives here are the hot row reductions and forward-update
//! slab passes that `J2Soa` runs per electron: contract a finished
//! functor row against the displacement rows into the per-electron
//! accumulators (value, gradient, Laplacian of `log psi`).
//!
//! Verification contract: `reference` and `soa` keep every reduction in
//! the same partner order (`j = 0..n`) and are **bitwise identical**;
//! `simd` splits reductions across [`WideLane`]s and re-associates the
//! sum, so it is guaranteed only **within tolerance** (a few ULP times
//! the row length). Slab (elementwise) updates are bitwise on all three
//! backends. Lane width follows the mixed-precision ladder
//! ([`wide_f32`]): `f64` reduces 8-wide, `f32` takes the 16-wide rung.
//!
//! * `reference` — the interleaved per-partner loops moved from
//!   `J2Soa::{evaluate_log, ratio, ratio_grad, accept_move}`.
//! * `soa` — each accumulator gets its own contiguous pass (slab updates
//!   and reductions separated), the auto-vectorizer-friendly layout.
//! * `simd` — explicit lane blocks: elementwise slab updates plus
//!   lane-split reductions folded with [`Lane::hsum`], scalar tail last.

use crate::lanes::{wide_f32, WideLane};
use crate::Backend;
use qmc_containers::Real;

/// Per-electron accumulator contributions of one Jastrow row: value sum,
/// gradient of `log psi`, and the (unnegated) Laplacian sum.
#[derive(Clone, Copy, Debug)]
pub struct J2RowVgl<T: Real> {
    /// `sum_j u(r_j)`.
    pub v: T,
    /// `sum_j u'(r_j)/r_j * dr_j`, per Cartesian component.
    pub g: [T; 3],
    /// `sum_j lap_j` (caller negates for the `log psi` convention).
    pub l: T,
}

/// Contracts a functor VGL row (`u`, `dud = u'/r`, `lap`) against the
/// displacement rows into value/gradient/Laplacian sums.
pub fn j2_row_vgl<T: Real>(
    backend: Backend,
    u: &[T],
    dud: &[T],
    lap: &[T],
    dx: &[T],
    dy: &[T],
    dz: &[T],
    n: usize,
) -> J2RowVgl<T> {
    assert!(
        u.len() >= n
            && dud.len() >= n
            && lap.len() >= n
            && dx.len() >= n
            && dy.len() >= n
            && dz.len() >= n
    );
    match backend {
        Backend::Reference => {
            // Interleaved per-partner loop (moved from J2Soa::evaluate_log).
            let (mut v, mut gx, mut gy, mut gz, mut l) =
                (T::ZERO, T::ZERO, T::ZERO, T::ZERO, T::ZERO);
            for j in 0..n {
                v += u[j];
                gx = dud[j].mul_add(dx[j], gx);
                gy = dud[j].mul_add(dy[j], gy);
                gz = dud[j].mul_add(dz[j], gz);
                l += lap[j];
            }
            J2RowVgl {
                v,
                g: [gx, gy, gz],
                l,
            }
        }
        Backend::Soa => {
            // One contiguous pass per accumulator, same per-accumulator
            // partner order as reference — bitwise identical.
            let v = sum_scalar(u, n);
            let gx = dot_scalar(dud, dx, n);
            let gy = dot_scalar(dud, dy, n);
            let gz = dot_scalar(dud, dz, n);
            let l = sum_scalar(lap, n);
            J2RowVgl {
                v,
                g: [gx, gy, gz],
                l,
            }
        }
        Backend::Simd => {
            let v = sum_lanes(u, n);
            let gx = dot_lanes(dud, dx, n);
            let gy = dot_lanes(dud, dy, n);
            let gz = dot_lanes(dud, dz, n);
            let l = sum_lanes(lap, n);
            J2RowVgl {
                v,
                g: [gx, gy, gz],
                l,
            }
        }
    }
}

/// Value + gradient contraction of a candidate row (the `ratio_grad`
/// inner loop; no Laplacian term).
pub fn j2_row_vg<T: Real>(
    backend: Backend,
    u: &[T],
    dud: &[T],
    dx: &[T],
    dy: &[T],
    dz: &[T],
    n: usize,
) -> (T, [T; 3]) {
    assert!(u.len() >= n && dud.len() >= n && dx.len() >= n && dy.len() >= n && dz.len() >= n);
    match backend {
        Backend::Reference => {
            let (mut v, mut gx, mut gy, mut gz) = (T::ZERO, T::ZERO, T::ZERO, T::ZERO);
            for j in 0..n {
                v += u[j];
                gx = dud[j].mul_add(dx[j], gx);
                gy = dud[j].mul_add(dy[j], gy);
                gz = dud[j].mul_add(dz[j], gz);
            }
            (v, [gx, gy, gz])
        }
        Backend::Soa => (
            sum_scalar(u, n),
            [
                dot_scalar(dud, dx, n),
                dot_scalar(dud, dy, n),
                dot_scalar(dud, dz, n),
            ],
        ),
        Backend::Simd => (
            sum_lanes(u, n),
            [
                dot_lanes(dud, dx, n),
                dot_lanes(dud, dy, n),
                dot_lanes(dud, dz, n),
            ],
        ),
    }
}

/// Sum of a functor value row (the `ratio` inner loop).
pub fn j2_row_sum<T: Real>(backend: Backend, u: &[T], n: usize) -> T {
    assert!(u.len() >= n);
    match backend {
        Backend::Reference | Backend::Soa => sum_scalar(u, n),
        Backend::Simd => sum_lanes(u, n),
    }
}

/// Forward update of the value/Laplacian accumulators on move acceptance:
/// `vat[j] += cu[j] - ou[j]`, `lat[j] += ol[j] - cl[j]`, returning the
/// moved electron's new sums `(kv = sum cu, kl = sum cl)`. The slab
/// updates are bitwise on every backend; the returned sums follow the
/// reduction contract (`simd` within tolerance).
pub fn j2_accept_value_rows<T: Real>(
    backend: Backend,
    cu: &[T],
    ou: &[T],
    cl: &[T],
    ol: &[T],
    vat: &mut [T],
    lat: &mut [T],
    n: usize,
) -> (T, T) {
    assert!(cu.len() >= n && ou.len() >= n && cl.len() >= n && ol.len() >= n);
    assert!(vat.len() >= n && lat.len() >= n);
    match backend {
        Backend::Reference => {
            // Moved from J2Soa::accept_move: interleaved update+reduce,
            // then the separate Laplacian slab pass.
            let (mut kv, mut kl) = (T::ZERO, T::ZERO);
            for j in 0..n {
                vat[j] += cu[j] - ou[j];
                kv += cu[j];
                kl += cl[j];
            }
            for j in 0..n {
                lat[j] += ol[j] - cl[j];
            }
            (kv, kl)
        }
        Backend::Soa => {
            for j in 0..n {
                vat[j] += cu[j] - ou[j];
            }
            for j in 0..n {
                lat[j] += ol[j] - cl[j];
            }
            (sum_scalar(cu, n), sum_scalar(cl, n))
        }
        Backend::Simd => {
            slab_add_diff_lanes(cu, ou, vat, n);
            slab_add_diff_lanes(ol, cl, lat, n);
            (sum_lanes(cu, n), sum_lanes(cl, n))
        }
    }
}

/// Forward update of one gradient component on move acceptance:
/// `g[j] += od[j] * oldd[j] - cd[j] * newd[j]`, returning the moved
/// electron's component `k = sum_j cd[j] * newd[j]`.
pub fn j2_accept_grad_row<T: Real>(
    backend: Backend,
    od: &[T],
    oldd: &[T],
    cd: &[T],
    newd: &[T],
    g: &mut [T],
    n: usize,
) -> T {
    assert!(od.len() >= n && oldd.len() >= n && cd.len() >= n && newd.len() >= n && g.len() >= n);
    match backend {
        Backend::Reference => {
            // Moved from J2Soa::accept_move per-dimension loop.
            let mut k = T::ZERO;
            for j in 0..n {
                g[j] += od[j] * oldd[j] - cd[j] * newd[j];
                k = cd[j].mul_add(newd[j], k);
            }
            k
        }
        Backend::Soa => {
            for j in 0..n {
                g[j] += od[j] * oldd[j] - cd[j] * newd[j];
            }
            dot_scalar(cd, newd, n)
        }
        Backend::Simd => {
            if wide_f32::<T>() {
                accept_grad_slab_lanes_w::<T, 16>(od, oldd, cd, newd, g, n);
            } else {
                accept_grad_slab_lanes_w::<T, 8>(od, oldd, cd, newd, g, n);
            }
            dot_lanes(cd, newd, n)
        }
    }
}

// -- shared scalar reductions (reference/soa order) -------------------------

#[inline(always)]
fn sum_scalar<T: Real>(x: &[T], n: usize) -> T {
    let mut acc = T::ZERO;
    for j in 0..n {
        acc += x[j];
    }
    acc
}

#[inline(always)]
fn dot_scalar<T: Real>(a: &[T], b: &[T], n: usize) -> T {
    let mut acc = T::ZERO;
    for j in 0..n {
        acc = a[j].mul_add(b[j], acc);
    }
    acc
}

// -- lane-split reductions (simd: tolerance contract) -----------------------
//
// Each reduction has a width-generic body plus a [`wide_f32`] dispatcher
// so `f32` rows run the 16-wide rung of the precision ladder.

#[inline(always)]
fn sum_lanes<T: Real>(x: &[T], n: usize) -> T {
    if wide_f32::<T>() {
        sum_lanes_w::<T, 16>(x, n)
    } else {
        sum_lanes_w::<T, 8>(x, n)
    }
}

#[inline(always)]
fn sum_lanes_w<T: Real, const W: usize>(x: &[T], n: usize) -> T {
    let mut acc = WideLane::<T, W>::zero();
    let mut j0 = 0;
    while j0 + W <= n {
        acc = acc.add(WideLane::load(&x[j0..]));
        j0 += W;
    }
    let mut out = acc.hsum();
    for j in j0..n {
        out += x[j];
    }
    out
}

#[inline(always)]
fn dot_lanes<T: Real>(a: &[T], b: &[T], n: usize) -> T {
    if wide_f32::<T>() {
        dot_lanes_w::<T, 16>(a, b, n)
    } else {
        dot_lanes_w::<T, 8>(a, b, n)
    }
}

#[inline(always)]
fn dot_lanes_w<T: Real, const W: usize>(a: &[T], b: &[T], n: usize) -> T {
    let mut acc = WideLane::<T, W>::zero();
    let mut j0 = 0;
    while j0 + W <= n {
        acc = acc.fma(WideLane::load(&a[j0..]), WideLane::load(&b[j0..]));
        j0 += W;
    }
    let mut out = acc.hsum();
    for j in j0..n {
        out = a[j].mul_add(b[j], out);
    }
    out
}

/// Lane slab update `dst[j] += a[j] - b[j]` (elementwise: bitwise safe).
#[inline(always)]
fn slab_add_diff_lanes<T: Real>(a: &[T], b: &[T], dst: &mut [T], n: usize) {
    if wide_f32::<T>() {
        slab_add_diff_lanes_w::<T, 16>(a, b, dst, n);
    } else {
        slab_add_diff_lanes_w::<T, 8>(a, b, dst, n);
    }
}

#[inline(always)]
fn slab_add_diff_lanes_w<T: Real, const W: usize>(a: &[T], b: &[T], dst: &mut [T], n: usize) {
    let mut j0 = 0;
    while j0 + W <= n {
        let upd = WideLane::<T, W>::load(&a[j0..]).sub(WideLane::load(&b[j0..]));
        WideLane::<T, W>::load(&dst[j0..])
            .add(upd)
            .store(&mut dst[j0..]);
        j0 += W;
    }
    for j in j0..n {
        dst[j] += a[j] - b[j];
    }
}

/// Lane slab update of one gradient component on acceptance:
/// `g[j] += od[j]*oldd[j] - cd[j]*newd[j]` (elementwise: bitwise safe).
#[inline(always)]
fn accept_grad_slab_lanes_w<T: Real, const W: usize>(
    od: &[T],
    oldd: &[T],
    cd: &[T],
    newd: &[T],
    g: &mut [T],
    n: usize,
) {
    let mut j0 = 0;
    while j0 + W <= n {
        let upd = WideLane::<T, W>::load(&od[j0..])
            .mul(WideLane::load(&oldd[j0..]))
            .sub(WideLane::<T, W>::load(&cd[j0..]).mul(WideLane::load(&newd[j0..])));
        WideLane::<T, W>::load(&g[j0..])
            .add(upd)
            .store(&mut g[j0..]);
        j0 += W;
    }
    for j in j0..n {
        g[j] += od[j] * oldd[j] - cd[j] * newd[j];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.max(1);
        (0..n)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn reference_and_soa_bitwise_identical() {
        let n = 21; // exercises the lane tail too
        let (u, dud, lap) = (row(n, 1), row(n, 2), row(n, 3));
        let (dx, dy, dz) = (row(n, 4), row(n, 5), row(n, 6));
        let a = j2_row_vgl(Backend::Reference, &u, &dud, &lap, &dx, &dy, &dz, n);
        let b = j2_row_vgl(Backend::Soa, &u, &dud, &lap, &dx, &dy, &dz, n);
        assert_eq!(a.v, b.v);
        assert_eq!(a.g, b.g);
        assert_eq!(a.l, b.l);
        assert_eq!(
            j2_row_sum(Backend::Reference, &u, n),
            j2_row_sum(Backend::Soa, &u, n)
        );
    }

    #[test]
    fn simd_within_tolerance() {
        let n = 37;
        let (u, dud, lap) = (row(n, 7), row(n, 8), row(n, 9));
        let (dx, dy, dz) = (row(n, 10), row(n, 11), row(n, 12));
        let a = j2_row_vgl(Backend::Reference, &u, &dud, &lap, &dx, &dy, &dz, n);
        let c = j2_row_vgl(Backend::Simd, &u, &dud, &lap, &dx, &dy, &dz, n);
        let tol = 1e-12 * n as f64;
        assert!((a.v - c.v).abs() < tol);
        assert!((a.l - c.l).abs() < tol);
        for d in 0..3 {
            assert!((a.g[d] - c.g[d]).abs() < tol, "component {d}");
        }
    }

    #[test]
    fn accept_updates_match_across_backends() {
        let n = 19;
        let (cu, ou, cl, ol) = (row(n, 13), row(n, 14), row(n, 15), row(n, 16));
        let mut results = Vec::new();
        for b in Backend::ALL {
            let mut vat = row(n, 17);
            let mut lat = row(n, 18);
            let (kv, kl) = j2_accept_value_rows(b, &cu, &ou, &cl, &ol, &mut vat, &mut lat, n);
            results.push((vat, lat, kv, kl));
        }
        // Slab updates bitwise on all backends.
        assert_eq!(results[0].0, results[1].0);
        assert_eq!(results[0].0, results[2].0);
        assert_eq!(results[0].1, results[2].1);
        // Reductions: reference == soa bitwise, simd within tolerance.
        assert_eq!(results[0].2, results[1].2);
        assert_eq!(results[0].3, results[1].3);
        assert!((results[0].2 - results[2].2).abs() < 1e-12 * n as f64);

        let (od, oldd, cd, newd) = (row(n, 19), row(n, 20), row(n, 21), row(n, 22));
        let mut gs = Vec::new();
        for b in Backend::ALL {
            let mut g = row(n, 23);
            let k = j2_accept_grad_row(b, &od, &oldd, &cd, &newd, &mut g, n);
            gs.push((g, k));
        }
        assert_eq!(gs[0].0, gs[1].0);
        assert_eq!(gs[0].0, gs[2].0);
        assert_eq!(gs[0].1, gs[1].1);
        assert!((gs[0].1 - gs[2].1).abs() < 1e-12 * n as f64);
    }
}
