//! Batched (multi-walker) wavefunction-component APIs.
//!
//! QMCPACK's performance-portable drivers execute the PbyP protocol in
//! lock-step across a *crowd* of walkers so that leaf kernels see batches
//! of work (`mw_*` methods on `WaveFunctionComponent`). This module is the
//! analogous surface here: [`BatchedWaveFunctionComponent`] extends the
//! scalar [`WaveFunctionComponent`] protocol with multi-walker entry
//! points whose defaults loop the scalar methods — bit-identical to
//! per-walker execution by construction, because each walker's
//! floating-point op sequence is unchanged and walkers are independent.
//!
//! The blanket impl makes every component batchable immediately; leaf
//! batching (shared-coefficient SPO tables, distance-row staging) lives
//! below the component layer in [`crate::spo::SpoSet::mw_evaluate_vgl`]
//! and `qmc_particles::mw_candidate_rows`.

use crate::traits::WaveFunctionComponent;
use qmc_containers::{Pos, Real};
use qmc_particles::ParticleSet;

/// Multi-walker extension of the PbyP component protocol.
///
/// All methods are associated functions over parallel slices: entry `w` of
/// `batch` is walker `w`'s component instance and `psets[w]` its particle
/// set. Outputs *accumulate* (`+=` for gradients and log values, `*=` for
/// ratios) exactly like the scalar protocol composes across components, so
/// a trial wavefunction can fold several components into the same output
/// slices. Callers zero/one-initialize the outputs.
pub trait BatchedWaveFunctionComponent<T: Real>: WaveFunctionComponent<T> {
    /// Batched full evaluation: adds each walker's `log |psi_c|` into
    /// `logs[w]`. Particle sets must already have fresh distance tables
    /// and zeroed G/L accumulators (the trial wavefunction does this once
    /// per walker, not once per component).
    // qmclint: allow(timer-coverage) — this default fans out to the
    // per-walker scalar methods, each timed under its own Kernel::*
    // category; a wrapper timer here would double-count.
    fn mw_evaluate_log(
        batch: &mut [&mut Self],
        psets: &mut [&mut ParticleSet<T>],
        logs: &mut [f64],
    ) {
        for ((c, p), log) in batch.iter_mut().zip(psets.iter_mut()).zip(logs.iter_mut()) {
            *log += c.evaluate_log(p);
        }
    }

    /// Batched gradient at the current position: accumulates each walker's
    /// component gradient into `grads[w]`.
    // qmclint: allow(timer-coverage) — this default fans out to the
    // per-walker scalar methods, each timed under its own Kernel::*
    // category; a wrapper timer here would double-count.
    fn mw_eval_grad(
        batch: &mut [&mut Self],
        psets: &[&ParticleSet<T>],
        iat: usize,
        grads: &mut [Pos<f64>],
    ) {
        for ((c, p), g) in batch.iter_mut().zip(psets.iter()).zip(grads.iter_mut()) {
            *g += c.eval_grad(p, iat);
        }
    }

    /// Batched ratio+gradient for the active move of particle `iat`:
    /// multiplies each walker's component ratio into `ratios[w]` and
    /// accumulates the gradient at the proposed position into `grads[w]`.
    // qmclint: allow(timer-coverage) — this default fans out to the
    // per-walker scalar methods, each timed under its own Kernel::*
    // category; a wrapper timer here would double-count.
    fn mw_ratio_grad(
        batch: &mut [&mut Self],
        psets: &[&ParticleSet<T>],
        iat: usize,
        ratios: &mut [f64],
        grads: &mut [Pos<f64>],
    ) {
        for (((c, p), r), g) in batch
            .iter_mut()
            .zip(psets.iter())
            .zip(ratios.iter_mut())
            .zip(grads.iter_mut())
        {
            *r *= c.ratio_grad(p, iat, g);
        }
    }

    /// Batched accept/reject resolution: commits walker `w`'s active move
    /// when `accept[w]`, otherwise restores the pre-move state.
    // qmclint: allow(timer-coverage) — this default fans out to the
    // per-walker scalar methods, each timed under its own Kernel::*
    // category; a wrapper timer here would double-count.
    fn mw_accept_restore(
        batch: &mut [&mut Self],
        psets: &[&ParticleSet<T>],
        iat: usize,
        accept: &[bool],
    ) {
        for ((c, p), &acc) in batch.iter_mut().zip(psets.iter()).zip(accept.iter()) {
            if acc {
                c.accept_move(p, iat);
            } else {
                c.restore(iat);
            }
        }
    }
}

// Every component is batchable out of the box via the scalar loop
// defaults (including trait objects, so `TrialWaveFunction` can batch its
// boxed components without knowing their concrete types).
impl<T: Real, C: WaveFunctionComponent<T> + ?Sized> BatchedWaveFunctionComponent<T> for C {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jastrow::{J2Soa, PairFunctors};
    use qmc_bspline::CubicBspline1D;
    use qmc_containers::TinyVector;
    use qmc_particles::{CrystalLattice, Layout, Species};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    const L: f64 = 7.0;

    fn electrons(n: usize, seed: u64) -> ParticleSet<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let lat = CrystalLattice::cubic(L);
        let pos: Vec<Pos<f64>> = (0..n)
            .map(|_| {
                TinyVector([
                    rng.random::<f64>() * L,
                    rng.random::<f64>() * L,
                    rng.random::<f64>() * L,
                ])
            })
            .collect();
        let sp = Species {
            name: "u".into(),
            charge: -1.0,
        };
        ParticleSet::new("e", lat, vec![(sp, pos)])
    }

    fn j2(p: &ParticleSet<f64>, table: usize) -> J2Soa<f64> {
        let functors = PairFunctors::new(1, |_, _| {
            CubicBspline1D::fit(
                |r| -0.4 * (1.0 - r / 3.0).powi(2) * (-r).exp(),
                -0.25,
                3.0,
                8,
            )
        });
        J2Soa::new(p, table, functors)
    }

    /// The default `mw_*` loops must be bitwise identical to driving each
    /// walker through the scalar protocol independently.
    #[test]
    fn default_mw_protocol_is_bitwise_scalar() {
        let n = 6;
        let build = |seed: u64| {
            let mut p = electrons(n, seed);
            let t = p.add_table_aa(Layout::Soa);
            let c = j2(&p, t);
            (p, c)
        };
        // Batched walkers and an identically-seeded scalar twin set.
        let (mut pa, mut ca) = build(11);
        let (mut pb, mut cb) = build(22);
        let (mut pa2, mut ca2) = build(11);
        let (mut pb2, mut cb2) = build(22);

        let mut logs = [0.0; 2];
        {
            let mut batch: Vec<&mut J2Soa<f64>> = vec![&mut ca, &mut cb];
            let mut psets: Vec<&mut ParticleSet<f64>> = vec![&mut pa, &mut pb];
            for p in &mut psets {
                p.update_tables();
                p.reset_gl();
            }
            BatchedWaveFunctionComponent::mw_evaluate_log(&mut batch, &mut psets, &mut logs);
        }
        for p in [&mut pa2, &mut pb2] {
            p.update_tables();
            p.reset_gl();
        }
        assert_eq!(logs[0], ca2.evaluate_log(&mut pa2));
        assert_eq!(logs[1], cb2.evaluate_log(&mut pb2));

        // Propose the same move on every walker; compare ratio/grad and
        // the post-accept gradient bitwise.
        let iat = 2;
        let newpos = |p: &ParticleSet<f64>| -> Pos<f64> {
            let mut q = p.pos(iat);
            q[0] += 0.31;
            q[1] -= 0.17;
            q[2] += 0.08;
            q
        };
        let (na, nb) = (newpos(&pa), newpos(&pb));
        for p in [&mut pa, &mut pb, &mut pa2, &mut pb2] {
            p.prepare_move(iat);
        }
        pa.make_move(iat, na);
        pb.make_move(iat, nb);
        pa2.make_move(iat, na);
        pb2.make_move(iat, nb);

        let mut ratios = [1.0; 2];
        let mut grads = [TinyVector::zero(); 2];
        {
            let mut batch: Vec<&mut J2Soa<f64>> = vec![&mut ca, &mut cb];
            let psets: Vec<&ParticleSet<f64>> = vec![&pa, &pb];
            BatchedWaveFunctionComponent::mw_ratio_grad(
                &mut batch,
                &psets,
                iat,
                &mut ratios,
                &mut grads,
            );
        }
        let mut ga2 = TinyVector::zero();
        let ra2 = ca2.ratio_grad(&pa2, iat, &mut ga2);
        let mut gb2 = TinyVector::zero();
        let rb2 = cb2.ratio_grad(&pb2, iat, &mut gb2);
        assert_eq!(ratios[0], ra2);
        assert_eq!(ratios[1], rb2);
        assert_eq!(grads[0].0, ga2.0);
        assert_eq!(grads[1].0, gb2.0);

        // Mixed accept/reject in one batched call.
        {
            let mut batch: Vec<&mut J2Soa<f64>> = vec![&mut ca, &mut cb];
            let psets: Vec<&ParticleSet<f64>> = vec![&pa, &pb];
            BatchedWaveFunctionComponent::mw_accept_restore(
                &mut batch,
                &psets,
                iat,
                &[true, false],
            );
        }
        ca2.accept_move(&pa2, iat);
        cb2.restore(iat);
        pa.accept_move(iat);
        pb.reject_move(iat);
        pa2.accept_move(iat);
        pb2.reject_move(iat);

        let mut g = [TinyVector::zero(); 2];
        {
            let mut batch: Vec<&mut J2Soa<f64>> = vec![&mut ca, &mut cb];
            let psets: Vec<&ParticleSet<f64>> = vec![&pa, &pb];
            BatchedWaveFunctionComponent::mw_eval_grad(&mut batch, &psets, iat, &mut g);
        }
        assert_eq!(g[0].0, ca2.eval_grad(&pa2, iat).0);
        assert_eq!(g[1].0, cb2.eval_grad(&pb2, iat).0);
    }
}
