//! # qmc-particles
//!
//! Particle-simulation substrate: periodic [`CrystalLattice`]s, the
//! [`ParticleSet`] abstraction with coherent AoS + SoA position storage
//! (§7.3, Fig. 5 of the paper), and the distance tables at the heart of the
//! paper's optimization story — baseline packed-triangle AoS tables versus
//! SoA tables with forward update and compute-on-the-fly rows (§7.4-7.5,
//! Fig. 6).

#![forbid(unsafe_code)]
// Indexed loops over multiple parallel slices are the deliberate idiom in
// the SIMD kernels (mirrors the paper's C++ and keeps the auto-vectorizer's
// job obvious); iterator zips would obscure them.
#![allow(clippy::needless_range_loop)]

pub mod dtable;
pub mod lattice;
pub mod particle_set;
pub mod random;

pub use dtable::{
    mw_candidate_rows, DistTableAARef, DistTableAASoA, DistTableABRef, DistTableABSoA, Layout,
    MwRowStage,
};
pub use lattice::CrystalLattice;
pub use particle_set::{DistTable, ParticleSet, Species};
pub use random::{gaussian, gaussian_pos, random_positions_in_cell};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use qmc_containers::TinyVector;

    proptest! {
        /// Fast min-image equals the exact 27-image search for orthorhombic
        /// cells, for any displacement.
        #[test]
        fn min_image_exact_orthorhombic(
            x in -30.0f64..30.0, y in -30.0f64..30.0, z in -30.0f64..30.0,
            lx in 2.0f64..12.0, ly in 2.0f64..12.0, lz in 2.0f64..12.0,
        ) {
            let lat = CrystalLattice::<f64>::orthorhombic([lx, ly, lz]);
            let dr = TinyVector([x, y, z]);
            let fast = lat.min_image(dr);
            let exact = lat.min_image_exact(dr);
            prop_assert!((fast.norm() - exact.norm()).abs() < 1e-9,
                "fast {} vs exact {}", fast.norm(), exact.norm());
            // Components bounded by half cell.
            prop_assert!(fast[0].abs() <= lx / 2.0 + 1e-9);
            prop_assert!(fast[1].abs() <= ly / 2.0 + 1e-9);
            prop_assert!(fast[2].abs() <= lz / 2.0 + 1e-9);
        }

        /// AA ref and SoA tables agree after arbitrary accepted moves.
        #[test]
        fn tables_agree_after_random_moves(seed in 0u64..1000) {
            use rand::{RngExt, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let l = 6.0;
            let lat = CrystalLattice::<f64>::cubic(l);
            let n = 8;
            let r0 = random_positions_in_cell(&lat, n, &mut rng);
            let sp = Species { name: "u".into(), charge: -1.0 };
            let mut p = ParticleSet::<f64>::new("e", lat.clone(), vec![(sp, r0)]);
            let href = p.add_table_aa(Layout::Aos);
            let hsoa = p.add_table_aa(Layout::Soa);
            for _ in 0..5 {
                let iat = rng.random_range(0..n);
                let newpos = TinyVector([
                    rng.random::<f64>() * l,
                    rng.random::<f64>() * l,
                    rng.random::<f64>() * l,
                ]);
                p.prepare_move(iat);
                p.make_move(iat, newpos);
                // Candidate rows must agree between layouts.
                let tr = p.table(href).as_aa_ref();
                let ts = p.table(hsoa).as_aa_soa();
                for j in 0..n {
                    if j == iat { continue; }
                    prop_assert!((tr.temp_dist()[j] - ts.temp_dist()[j]).abs() < 1e-10);
                }
                if rng.random::<f64>() < 0.7 {
                    p.accept_move(iat);
                } else {
                    p.reject_move(iat);
                }
            }
            // After the sweep, refresh rows and compare all pairs.
            for i in 0..n {
                p.prepare_move(i);
                let tr = p.table(href).as_aa_ref();
                let ts = p.table(hsoa).as_aa_soa();
                for j in 0..n {
                    if i == j { continue; }
                    prop_assert!((tr.dist(i, j) - ts.dist_row(i)[j]).abs() < 1e-10,
                        "({i},{j}): {} vs {}", tr.dist(i, j), ts.dist_row(i)[j]);
                }
            }
        }
    }
}
