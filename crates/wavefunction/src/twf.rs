//! [`TrialWaveFunction`]: the Slater–Jastrow product (Eq. 2).
//!
//! Composes wavefunction components multiplicatively: ratios multiply,
//! log values and gradients add. This is the object the QMC drivers talk
//! to, mirroring `TrialWaveFunction` in Fig. 4.

use crate::batched::BatchedWaveFunctionComponent;
use crate::traits::WaveFunctionComponent;
use qmc_containers::{Pos, Real, TinyVector};
use qmc_particles::ParticleSet;

/// Product trial wavefunction `Psi_T = prod_c psi_c`.
pub struct TrialWaveFunction<T: Real> {
    components: Vec<Box<dyn WaveFunctionComponent<T>>>,
    log_value: f64,
}

impl<T: Real> TrialWaveFunction<T> {
    /// Empty wavefunction (components added with [`Self::add`]).
    pub fn new() -> Self {
        Self {
            components: Vec::new(),
            log_value: 0.0,
        }
    }

    /// Adds a component factor.
    pub fn add(&mut self, c: Box<dyn WaveFunctionComponent<T>>) {
        self.components.push(c);
    }

    /// Number of component factors.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Mutable access to a component (used by harnesses for
    /// determinant-specific operations).
    pub fn component_mut(&mut self, i: usize) -> &mut dyn WaveFunctionComponent<T> {
        self.components[i].as_mut()
    }

    /// Full evaluation: zeroes the particle set's G/L accumulators, sums
    /// `log |psi_c|` over components, and fills `p.g`/`p.l` with the
    /// gradient and Laplacian of `log Psi_T`.
    pub fn evaluate_log(&mut self, p: &mut ParticleSet<T>) -> f64 {
        // Forward updates deliberately leave SoA distance-table rows stale
        // (compute-on-the-fly, §7.5); a full evaluation must rebuild them,
        // as QMCPACK's drivers do with `P.update()` before `evaluateLog`.
        p.update_tables();
        p.reset_gl();
        let mut log = 0.0;
        for c in &mut self.components {
            log += c.evaluate_log(p);
        }
        self.log_value = log;
        log
    }

    /// Measurement-path G/L refresh: accumulates gradient/Laplacian of
    /// `log Psi_T` from each component's *stored* state (O(N^2); no orbital
    /// re-evaluation, no re-inversion). Distance tables are rebuilt first
    /// because the Coulomb/NLPP terms of the Hamiltonian read them.
    pub fn update_gl(&mut self, p: &mut ParticleSet<T>) -> f64 {
        p.update_tables();
        p.reset_gl();
        for c in &mut self.components {
            c.accumulate_gl(p);
        }
        self.log_value = self.components.iter().map(|c| c.log_value()).sum();
        self.log_value
    }

    /// `Psi_T(R') / Psi_T(R)` for the active move (Eq. 4).
    pub fn calc_ratio(&mut self, p: &ParticleSet<T>, iat: usize) -> f64 {
        let mut ratio = 1.0;
        for c in &mut self.components {
            ratio *= c.ratio(p, iat);
        }
        ratio
    }

    /// Value-only ratios `Psi_T(.., r_q, ..) / Psi_T(R)` for particle
    /// `iat` moved to each of `positions` — the NLPP quadrature inner
    /// loop. Components with a batched value-only path (determinants)
    /// evaluate every point in one dispatch; the rest fall back to one
    /// `make_move` + [`WaveFunctionComponent::ratio`] + restore pass per
    /// point. `p` comes back with no active move.
    ///
    /// Products are bitwise identical to the per-point
    /// [`Self::calc_ratio`] reference loop: each per-point factor is
    /// bitwise identical by the `ratios_value_only` contract, and the
    /// engines compose determinants before Jastrows, so the f64 factor
    /// order is preserved (two-factor products commute bitwise anyway).
    pub fn calc_ratios_v(
        &mut self,
        p: &mut ParticleSet<T>,
        iat: usize,
        positions: &[Pos<T>],
        ratios: &mut [f64],
    ) {
        let nq = positions.len();
        assert!(ratios.len() >= nq);
        debug_assert!(self.components.len() <= 64);
        for r in &mut ratios[..nq] {
            *r = 1.0;
        }
        // Deferred components tracked by bitmask: no per-call allocation.
        let mut deferred: u64 = 0;
        for (ci, c) in self.components.iter_mut().enumerate() {
            if !c.ratios_value_only(p, iat, positions, &mut ratios[..nq]) {
                deferred |= 1 << ci;
            }
        }
        if deferred != 0 {
            for (q, &pos) in positions.iter().enumerate() {
                p.make_move(iat, pos);
                for (ci, c) in self.components.iter_mut().enumerate() {
                    if deferred & (1 << ci) != 0 {
                        ratios[q] *= c.ratio(p, iat);
                    }
                }
                for (ci, c) in self.components.iter_mut().enumerate() {
                    if deferred & (1 << ci) != 0 {
                        c.restore(iat);
                    }
                }
                p.reject_move(iat);
            }
        }
    }

    /// Ratio together with the gradient of `log Psi_T` at the proposed
    /// position (for the drift term of the importance-sampled move).
    pub fn calc_ratio_grad(&mut self, p: &ParticleSet<T>, iat: usize) -> (f64, Pos<f64>) {
        let mut ratio = 1.0;
        let mut grad = TinyVector::zero();
        for c in &mut self.components {
            ratio *= c.ratio_grad(p, iat, &mut grad);
        }
        (ratio, grad)
    }

    /// Gradient of `log Psi_T` for particle `iat` at its current position.
    pub fn eval_grad(&mut self, p: &ParticleSet<T>, iat: usize) -> Pos<f64> {
        let mut g = TinyVector::zero();
        for c in &mut self.components {
            g += c.eval_grad(p, iat);
        }
        g
    }

    /// Commits the active move in every component (call before
    /// `ParticleSet::accept_move`).
    pub fn accept_move(&mut self, p: &ParticleSet<T>, iat: usize) {
        for c in &mut self.components {
            c.accept_move(p, iat);
        }
    }

    /// Discards candidate state in every component.
    pub fn reject_move(&mut self, iat: usize) {
        for c in &mut self.components {
            c.restore(iat);
        }
    }

    /// Current `log |Psi_T|` from the incrementally maintained component
    /// values.
    pub fn log_value(&self) -> f64 {
        self.components.iter().map(|c| c.log_value()).sum()
    }

    /// Per-walker internal storage across components (memory ledger).
    pub fn bytes(&self) -> usize {
        self.components.iter().map(|c| c.bytes()).sum()
    }

    /// Writes every component's PbyP state into a walker buffer
    /// (QMCPACK's `updateBuffer`). The buffer is cleared first.
    pub fn save_state(&mut self, buf: &mut crate::buffer::WalkerBuffer<T>) {
        buf.clear();
        for c in &mut self.components {
            c.save_state(buf);
        }
    }

    /// Restores every component's PbyP state from a walker buffer
    /// (QMCPACK's `copyFromBuffer`). Positions and distance tables must
    /// already reflect the walker. Panics if the buffer layout mismatches.
    pub fn load_state(&mut self, buf: &mut crate::buffer::WalkerBuffer<T>) {
        buf.rewind();
        for c in &mut self.components {
            c.load_state(buf);
        }
        assert!(buf.fully_consumed(), "walker buffer layout mismatch");
        self.log_value = self.components.iter().map(|c| c.log_value()).sum();
    }

    /// Batched full evaluation over a crowd of walkers. Entry `w` of each
    /// slice belongs to walker `w`; `logs[w]` receives `log |Psi_T|`.
    ///
    /// Each component batches via
    /// [`WaveFunctionComponent::mw_evaluate_log_batched`]: Jastrows take
    /// the default scalar loop (bit-identical to [`Self::evaluate_log`]
    /// per walker), while the determinant fuses orbital rows through
    /// [`crate::spo::SpoSet::mw_evaluate_vgl`] — for spline SPOs that
    /// kernel regroups floating point, so this entry point is only wired
    /// into opt-in batched drivers (`fused_refresh`), never the default
    /// lock-step crowd.
    pub fn mw_evaluate_log(
        batch: &mut [&mut Self],
        psets: &mut [&mut ParticleSet<T>],
        logs: &mut [f64],
    ) {
        for p in psets.iter_mut() {
            p.update_tables();
            p.reset_gl();
        }
        logs.fill(0.0);
        let nc = batch.first().map_or(0, |t| t.components.len());
        for ci in 0..nc {
            let mut comps: Vec<&mut (dyn WaveFunctionComponent<T> + '_)> = batch
                .iter_mut()
                .map(|t| t.components[ci].as_mut())
                .collect();
            // Walker 0's instance leads and may fuse its siblings (e.g. the
            // determinant routing orbital rows through the multi-walker SPO
            // kernel); the default loops the scalar path bit-identically.
            let (leader, rest) = comps.split_first_mut().expect("non-empty crowd");
            leader.mw_evaluate_log_batched(rest, psets, logs);
        }
        for (t, &log) in batch.iter_mut().zip(logs.iter()) {
            t.log_value = log;
        }
    }

    /// Batched [`Self::calc_ratio_grad`] for the active move of particle
    /// `iat` on every walker. `ratios`/`grads` are overwritten.
    pub fn mw_ratio_grad(
        batch: &mut [&mut Self],
        psets: &[&ParticleSet<T>],
        iat: usize,
        ratios: &mut [f64],
        grads: &mut [Pos<f64>],
    ) {
        ratios.fill(1.0);
        for g in grads.iter_mut() {
            *g = TinyVector::zero();
        }
        let nc = batch.first().map_or(0, |t| t.components.len());
        for ci in 0..nc {
            let mut comps: Vec<&mut dyn WaveFunctionComponent<T>> = batch
                .iter_mut()
                .map(|t| t.components[ci].as_mut())
                .collect();
            BatchedWaveFunctionComponent::mw_ratio_grad(&mut comps, psets, iat, ratios, grads);
        }
    }

    /// Batched [`Self::eval_grad`]: `grads[w]` is overwritten with the
    /// gradient of `log Psi_T` for walker `w`'s particle `iat`.
    pub fn mw_eval_grad(
        batch: &mut [&mut Self],
        psets: &[&ParticleSet<T>],
        iat: usize,
        grads: &mut [Pos<f64>],
    ) {
        for g in grads.iter_mut() {
            *g = TinyVector::zero();
        }
        let nc = batch.first().map_or(0, |t| t.components.len());
        for ci in 0..nc {
            let mut comps: Vec<&mut dyn WaveFunctionComponent<T>> = batch
                .iter_mut()
                .map(|t| t.components[ci].as_mut())
                .collect();
            BatchedWaveFunctionComponent::mw_eval_grad(&mut comps, psets, iat, grads);
        }
    }

    /// Batched accept/reject resolution: commits walker `w`'s move when
    /// `accept[w]`, otherwise discards it (call before resolving the
    /// particle sets themselves).
    pub fn mw_accept_restore(
        batch: &mut [&mut Self],
        psets: &[&ParticleSet<T>],
        iat: usize,
        accept: &[bool],
    ) {
        let nc = batch.first().map_or(0, |t| t.components.len());
        for ci in 0..nc {
            let mut comps: Vec<&mut dyn WaveFunctionComponent<T>> = batch
                .iter_mut()
                .map(|t| t.components[ci].as_mut())
                .collect();
            BatchedWaveFunctionComponent::mw_accept_restore(&mut comps, psets, iat, accept);
        }
    }

    /// Component names joined for reports.
    pub fn describe(&self) -> String {
        self.components
            .iter()
            .map(|c| c.name())
            .collect::<Vec<_>>()
            .join(" * ")
    }
}

impl<T: Real> Default for TrialWaveFunction<T> {
    fn default() -> Self {
        Self::new()
    }
}
