//! Quickstart: run the paper's headline comparison in a dozen lines.
//!
//! Builds the NiO-32 benchmark workload (scaled to laptop size), runs a
//! short diffusion Monte Carlo calculation with the baseline (`Ref`) and
//! optimized (`Current`) code versions, and prints the throughput speedup
//! and memory reduction — the two quantities the paper is about.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qmc::prelude::*;
use qmc::simulation::Simulation;

fn main() {
    println!("QMC quickstart: NiO-32 (scaled), Ref vs Current\n");

    let run = |code: CodeVersion| {
        Simulation::new(Benchmark::NiO32)
            .code(code)
            .threads(1)
            .walkers(4)
            .steps(6)
            .warmup(1)
            .tau(0.005)
            .seed(7)
            .run()
    };

    let base = run(CodeVersion::Ref);
    let best = run(CodeVersion::Current);

    println!(
        "{:<10} {:>12} {:>14} {:>12}",
        "version", "samples/s", "E (hartree)", "walker MiB"
    );
    for out in [&base, &best] {
        println!(
            "{:<10} {:>12.1} {:>14.3} {:>12.2}",
            out.label,
            out.throughput(),
            out.energy.0,
            out.walker_bytes as f64 / (1 << 20) as f64
        );
    }
    println!(
        "\nspeedup {:.2}x, walker memory reduction {:.1}x",
        best.throughput() / base.throughput(),
        base.walker_bytes as f64 / best.walker_bytes as f64
    );
    println!("\nhot-spot profile of the optimized run:");
    print!("{}", best.profile.to_table());
}
