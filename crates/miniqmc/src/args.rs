//! Minimal command-line option parsing shared by the miniapps
//! ("Command-line options are used to change the problems for fast
//! prototyping, debugging and analysis" — §7.1).

use std::collections::BTreeMap;

/// Parsed command-line options: flags with values plus positional args.
#[derive(Clone, Debug, Default)]
pub struct Options {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
    /// The binary name (`argv[0]`).
    pub program: String,
}

impl Options {
    /// Parses `--key value`, `--key=value`, `-k value` and bare `--flag`
    /// arguments from an iterator (usually `std::env::args()`).
    pub fn parse(mut args: impl Iterator<Item = String>) -> Self {
        let program = args.next().unwrap_or_default();
        let mut out = Self {
            program,
            ..Self::default()
        };
        let rest: Vec<String> = args.collect();
        let mut i = 0;
        while i < rest.len() {
            let a = &rest[i];
            if let Some(stripped) = a.strip_prefix('-') {
                let key = stripped.trim_start_matches('-').to_string();
                if let Some((k, v)) = key.split_once('=') {
                    out.values.insert(k.to_string(), v.to_string());
                } else if i + 1 < rest.len() && !rest[i + 1].starts_with('-') {
                    out.values.insert(key, rest[i + 1].clone());
                    i += 1;
                } else {
                    out.flags.push(key);
                }
            }
            i += 1;
        }
        out
    }

    /// Convenience constructor from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args())
    }

    /// Value of `key` parsed as `T`, or `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Raw string value of `key`.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(std::string::String::as_str)
    }

    /// True when the bare flag was given.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Options {
        Options::parse(
            std::iter::once("prog".to_string())
                .chain(args.iter().map(std::string::ToString::to_string)),
        )
    }

    #[test]
    fn long_short_and_equals_forms() {
        let o = parse(&["--nel", "64", "-i=10", "--verbose", "--layout", "soa"]);
        assert_eq!(o.get("nel", 0usize), 64);
        assert_eq!(o.get("i", 0usize), 10);
        assert!(o.has_flag("verbose"));
        assert_eq!(o.get_str("layout"), Some("soa"));
        assert_eq!(o.program, "prog");
    }

    #[test]
    fn defaults_apply() {
        let o = parse(&[]);
        assert_eq!(o.get("nel", 48usize), 48);
        assert_eq!(o.get("tau", 0.01f64), 0.01);
        assert!(!o.has_flag("verbose"));
    }

    #[test]
    fn negative_numbers_are_not_eaten_as_flags() {
        // `--shift -1.5`: the value starts with '-', so it becomes a flag;
        // the documented way is `--shift=-1.5`.
        let o = parse(&["--shift=-1.5"]);
        assert_eq!(o.get("shift", 0.0f64), -1.5);
    }
}
