//! High-level simulation builder: benchmark runs in a few lines.
//!
//! ```
//! use qmc_core::simulation::Simulation;
//! use qmc_core::prelude::*;
//!
//! let result = Simulation::new(Benchmark::NiO32)
//!     .code(CodeVersion::Current)
//!     .threads(2)
//!     .walkers(4)
//!     .steps(4)
//!     .run();
//! assert!(result.throughput() > 0.0);
//! ```

use qmc_workloads::{
    run_dmc_benchmark, Benchmark, CodeVersion, RunConfig, RunOutcome, Size, Workload,
};

/// Fluent builder around [`run_dmc_benchmark`].
pub struct Simulation {
    benchmark: Benchmark,
    size: Size,
    code: CodeVersion,
    cfg: RunConfig,
}

impl Simulation {
    /// Starts a simulation of the given paper benchmark at scaled size
    /// with the `Current` code version.
    pub fn new(benchmark: Benchmark) -> Self {
        Self {
            benchmark,
            size: Size::Scaled,
            code: CodeVersion::Current,
            cfg: RunConfig::default(),
        }
    }

    /// Selects the code version (Ref / Ref+MP / Current / ...).
    pub fn code(mut self, code: CodeVersion) -> Self {
        self.code = code;
        self
    }

    /// Full (paper-sized) problem instead of the scaled default.
    pub fn full_size(mut self) -> Self {
        self.size = Size::Full;
        self
    }

    /// Number of worker threads.
    pub fn threads(mut self, t: usize) -> Self {
        self.cfg.threads = t;
        self
    }

    /// Target walker population.
    pub fn walkers(mut self, w: usize) -> Self {
        self.cfg.walkers = w;
        self
    }

    /// DMC generations.
    pub fn steps(mut self, s: usize) -> Self {
        self.cfg.steps = s;
        self
    }

    /// Warmup generations excluded from statistics.
    pub fn warmup(mut self, w: usize) -> Self {
        self.cfg.warmup = w;
        self
    }

    /// Imaginary time step.
    pub fn tau(mut self, tau: f64) -> Self {
        self.cfg.tau = tau;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Builds the workload and runs DMC, returning the outcome.
    pub fn run(self) -> RunOutcome {
        let workload = Workload::new(self.benchmark, self.size, self.cfg.seed);
        run_dmc_benchmark(&workload, self.code, &self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_settings() {
        let s = Simulation::new(Benchmark::Graphite)
            .code(CodeVersion::Ref)
            .threads(2)
            .walkers(3)
            .steps(4)
            .warmup(1)
            .tau(0.003)
            .seed(9);
        assert_eq!(s.cfg.threads, 2);
        assert_eq!(s.cfg.walkers, 3);
        assert_eq!(s.cfg.steps, 4);
        assert_eq!(s.cfg.warmup, 1);
        assert_eq!(s.cfg.seed, 9);
        assert_eq!(s.code, CodeVersion::Ref);
    }
}
