//! The [`Real`] trait: the precision abstraction used throughout the QMC
//! kernels.
//!
//! The paper's central mixed-precision (MP) strategy is to run walker-sized
//! kernels in `f32` while accumulating per-walker and ensemble quantities in
//! `f64`. Every compute kernel in this workspace is generic over `T: Real`,
//! and the driver instantiates `f64` for the *Ref* code path and `f32` for
//! the *Ref+MP* / *Current* paths.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point scalar used by QMC kernels (`f32` or `f64`).
///
/// The trait deliberately exposes only the operations the kernels need, so
/// the two instantiations stay trivially interchangeable. Accumulations that
/// must stay in double precision use `to_f64`/`from_f64` at the boundary.
pub trait Real:
    Copy
    + Default
    + Debug
    + Display
    + PartialOrd
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// One half, used pervasively by kinetic-energy and spline stencils.
    const HALF: Self;
    /// Machine epsilon of the concrete type.
    const EPSILON: Self;

    /// Lossy conversion from `f64` (the only way constants enter kernels).
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64` (the only way results leave kernels).
    fn to_f64(self) -> f64;
    /// Conversion from a count.
    fn from_usize(n: usize) -> Self {
        Self::from_f64(n as f64)
    }

    /// Square root.
    fn sqrt(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Sine.
    fn sin(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Largest integer value not greater than `self`.
    fn floor(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Fused multiply-add `self * a + b`; maps to hardware FMA in release
    /// builds, which matters for the spline stencils.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Elementwise minimum.
    fn min(self, other: Self) -> Self;
    /// Elementwise maximum.
    fn max(self, other: Self) -> Self;
    /// `self^i` for small integer exponents.
    fn powi(self, i: i32) -> Self;
    /// True when the value is finite (not NaN/inf).
    fn is_finite(self) -> bool;
}

macro_rules! impl_real {
    ($t:ty) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const HALF: Self = 0.5;
            const EPSILON: Self = <$t>::EPSILON;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline(always)]
            fn exp(self) -> Self {
                self.exp()
            }
            #[inline(always)]
            fn ln(self) -> Self {
                self.ln()
            }
            #[inline(always)]
            fn sin(self) -> Self {
                self.sin()
            }
            #[inline(always)]
            fn cos(self) -> Self {
                self.cos()
            }
            #[inline(always)]
            fn floor(self) -> Self {
                self.floor()
            }
            #[inline(always)]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                self.mul_add(a, b)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn powi(self, i: i32) -> Self {
                <$t>::powi(self, i)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_real!(f32);
impl_real!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Real>() {
        assert_eq!(T::from_f64(2.5).to_f64(), 2.5);
        assert_eq!(T::from_usize(7).to_f64(), 7.0);
        assert!((T::from_f64(2.0).sqrt().to_f64() - std::f64::consts::SQRT_2).abs() < 1e-6);
        assert!(T::from_f64(1.0).is_finite());
        assert!(!(T::from_f64(1.0) / T::ZERO).is_finite());
    }

    #[test]
    fn f32_ops() {
        roundtrip::<f32>();
    }

    #[test]
    fn f64_ops() {
        roundtrip::<f64>();
    }

    #[test]
    fn fma_matches_mul_add() {
        let x: f64 = 3.0;
        assert_eq!(x.mul_add(2.0, 1.0), 7.0);
        assert_eq!(Real::mul_add(3.0f32, 2.0, 1.0), 7.0);
    }

    #[test]
    fn constants() {
        assert_eq!(f64::HALF + f64::HALF, f64::ONE);
        assert_eq!(f32::ZERO + f32::ONE, 1.0);
    }
}
