//! Structured run reports.
//!
//! One [`RunReport`] aggregates everything a run produces — per-kernel
//! wall time / call counts / modeled FLOPs+bytes, accept ratio, the
//! population and trial-energy trajectories, memory footprint, and
//! mixed-precision drift counters — into a single value that serializes to
//! JSON (hand-rolled, see [`crate::json`]) for `miniqmc --profile json`
//! and the bench binaries, or renders as the Fig. 2-style summary table.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::JsonWriter;
use crate::timer::{KernelStats, Profile, ALL_KERNELS};

/// Schema tag embedded in every report so downstream tooling can detect
/// format changes.
pub const RUN_REPORT_SCHEMA: &str = "qmc-run-report/1";

// ---------------------------------------------------------------------------
// Mixed-precision drift counters
// ---------------------------------------------------------------------------

/// Accumulated |Δ log ψ| statistics from from-scratch recomputes: how far
/// the incrementally-updated (mixed-precision) wavefunction log had
/// drifted from the freshly evaluated value. Large values mean the
/// `recompute_every` hygiene interval is too long for the precision mix.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DriftStats {
    /// Number of refreshes that measured a drift.
    pub refreshes: u64,
    /// Sum of |Δ log ψ| over those refreshes.
    pub sum_abs: f64,
    /// Largest single |Δ log ψ| observed.
    pub max_abs: f64,
}

impl DriftStats {
    /// Mean |Δ log ψ| per refresh (0 when none recorded).
    pub fn mean_abs(&self) -> f64 {
        if self.refreshes > 0 {
            self.sum_abs / self.refreshes as f64
        } else {
            0.0
        }
    }
}

static DRIFT_REFRESHES: AtomicU64 = AtomicU64::new(0);
static DRIFT_SUM_BITS: AtomicU64 = AtomicU64::new(0); // f64 bits
static DRIFT_MAX_BITS: AtomicU64 = AtomicU64::new(0); // f64 bits

/// Records one from-scratch refresh's |Δ log ψ|. Called from the engines'
/// recompute path on any thread; lock-free.
pub fn record_refresh_drift(abs_delta: f64) {
    // Sanitizer boundary: a from-scratch recompute is exactly where
    // mixed-precision corruption becomes observable, so the drift-bound
    // check lives here (no-op without the `checked` feature).
    crate::sanitize::check_drift(abs_delta);
    if !abs_delta.is_finite() {
        return;
    }
    DRIFT_REFRESHES.fetch_add(1, Ordering::Relaxed);
    // f64 accumulation via CAS on the bit pattern.
    let mut cur = DRIFT_SUM_BITS.load(Ordering::Relaxed);
    loop {
        let new = (f64::from_bits(cur) + abs_delta).to_bits();
        match DRIFT_SUM_BITS.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(c) => cur = c,
        }
    }
    // Non-negative f64 bit patterns order like the floats themselves.
    DRIFT_MAX_BITS.fetch_max(abs_delta.to_bits(), Ordering::Relaxed);
}

/// Takes and resets the global drift counters. Drivers call this before a
/// run (reset) and after it (capture).
pub fn take_drift_stats() -> DriftStats {
    DriftStats {
        refreshes: DRIFT_REFRESHES.swap(0, Ordering::Relaxed),
        sum_abs: f64::from_bits(DRIFT_SUM_BITS.swap(0, Ordering::Relaxed)),
        max_abs: f64::from_bits(DRIFT_MAX_BITS.swap(0, Ordering::Relaxed)),
    }
}

// ---------------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------------

/// Everything one run produced, in one serializable value.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Workload name (e.g. `graphite-2x1x1`).
    pub benchmark: String,
    /// Code-version label (optimization-ladder rung).
    pub code: String,
    /// Kernel backend label the run executed with (`reference` / `soa` /
    /// `simd`; empty when the front-end predates the backend seam).
    pub kernel_backend: String,
    /// Electron count.
    pub electrons: usize,
    /// Ion count.
    pub ions: usize,
    /// Worker thread / crowd count.
    pub threads: usize,
    /// Walker count at start.
    pub walkers: usize,
    /// Measured DMC/VMC steps (after warmup).
    pub steps: usize,
    /// Crowd size (0 for the per-walker drive).
    pub crowd_size: usize,
    /// Total wall-clock seconds for the run loop.
    pub seconds: f64,
    /// Monte Carlo samples generated after warmup.
    pub samples: u64,
    /// Overall acceptance ratio of proposed single-particle moves.
    pub acceptance: f64,
    /// Local-energy mean (Ha).
    pub energy_mean: f64,
    /// Statistical error of the mean (Ha).
    pub energy_err: f64,
    /// Estimated autocorrelation time (steps).
    pub energy_tau: f64,
    /// Final trial energy after population feedback.
    pub e_trial: f64,
    /// Walker population after each step.
    pub population: Vec<usize>,
    /// Trial energy after each step's feedback update.
    pub e_trial_trace: Vec<f64>,
    /// Aggregate per-kernel profile.
    pub profile: Profile,
    /// Per-crowd / per-worker profiles, in chunk order (may be empty).
    pub crowd_profiles: Vec<Profile>,
    /// Mixed-precision log ψ drift observed at from-scratch refreshes.
    pub drift: DriftStats,
    /// Runtime invariant sanitizer counters (all zero unless the build
    /// carries the `checked` feature).
    pub sanitizer: crate::sanitize::SanitizerStats,
    /// Bytes per walker (positions + buffers), model-counted.
    pub walker_bytes: u64,
    /// Bytes for the shared engine state (spline table excluded).
    pub engine_bytes: u64,
    /// Bytes for the read-only B-spline table.
    pub table_bytes: u64,
}

fn write_kernel_stats(w: &mut JsonWriter, s: &KernelStats) {
    w.begin_obj();
    w.key("seconds").f64_val(s.seconds());
    w.key("calls").u64_val(s.calls);
    w.key("flops").u64_val(s.flops);
    w.key("bytes").u64_val(s.bytes);
    w.end_obj();
}

fn write_profile(w: &mut JsonWriter, p: &Profile) {
    w.begin_obj();
    for &k in &ALL_KERNELS {
        w.key(k.label());
        write_kernel_stats(w, p.get(k));
    }
    w.end_obj();
}

impl RunReport {
    /// Throughput `P = samples / seconds` (§6.2 figure of merit).
    pub fn throughput(&self) -> f64 {
        if self.seconds > 0.0 {
            self.samples as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Serializes the full report as a JSON object. Every kernel category
    /// appears under `"kernels"`, including ones with zero time, so
    /// consumers can rely on the key set.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("schema").str_val(RUN_REPORT_SCHEMA);
        w.key("benchmark").str_val(&self.benchmark);
        w.key("code").str_val(&self.code);
        w.key("kernel_backend").str_val(&self.kernel_backend);
        w.key("electrons").u64_val(self.electrons as u64);
        w.key("ions").u64_val(self.ions as u64);
        w.key("threads").u64_val(self.threads as u64);
        w.key("walkers").u64_val(self.walkers as u64);
        w.key("steps").u64_val(self.steps as u64);
        w.key("crowd_size").u64_val(self.crowd_size as u64);
        w.key("seconds").f64_val(self.seconds);
        w.key("samples").u64_val(self.samples);
        w.key("throughput_samples_per_s")
            .f64_val(if self.seconds > 0.0 {
                self.samples as f64 / self.seconds
            } else {
                0.0
            });
        w.key("acceptance").f64_val(self.acceptance);
        w.key("energy");
        w.begin_obj();
        w.key("mean").f64_val(self.energy_mean);
        w.key("err").f64_val(self.energy_err);
        w.key("tau").f64_val(self.energy_tau);
        w.end_obj();
        w.key("e_trial").f64_val(self.e_trial);
        w.key("population");
        w.begin_arr();
        for &p in &self.population {
            w.u64_val(p as u64);
        }
        w.end_arr();
        w.key("e_trial_trace");
        w.begin_arr();
        for &e in &self.e_trial_trace {
            w.f64_val(e);
        }
        w.end_arr();
        w.key("kernels");
        write_profile(&mut w, &self.profile);
        w.key("crowd_kernels");
        w.begin_arr();
        for p in &self.crowd_profiles {
            write_profile(&mut w, p);
        }
        w.end_arr();
        w.key("mp_drift");
        w.begin_obj();
        w.key("refreshes").u64_val(self.drift.refreshes);
        w.key("mean_abs_dlogpsi").f64_val(self.drift.mean_abs());
        w.key("max_abs_dlogpsi").f64_val(self.drift.max_abs);
        w.end_obj();
        w.key("sanitizer");
        w.begin_obj();
        w.key("enabled")
            .bool_val(crate::sanitize::sanitizer_enabled());
        w.key("total_checks").u64_val(self.sanitizer.total_checks());
        w.key("total_violations")
            .u64_val(self.sanitizer.total_violations());
        w.key("checks");
        w.begin_obj();
        for &k in &crate::sanitize::ALL_CHECKS {
            w.key(k.label());
            w.begin_obj();
            w.key("run").u64_val(self.sanitizer.checks_run[k as usize]);
            w.key("violations")
                .u64_val(self.sanitizer.violations[k as usize]);
            w.end_obj();
        }
        w.end_obj();
        w.end_obj();
        w.key("memory");
        w.begin_obj();
        w.key("walker_bytes").u64_val(self.walker_bytes);
        w.key("engine_bytes").u64_val(self.engine_bytes);
        w.key("table_bytes").u64_val(self.table_bytes);
        w.end_obj();
        w.end_obj();
        w.finish()
    }

    /// Renders the human-readable summary: run header, energy line, and
    /// the Fig. 2-style hot-spot table.
    pub fn to_summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run: {} [{}{}]  e={} i={}  threads={} walkers={} steps={}{}",
            self.benchmark,
            self.code,
            if self.kernel_backend.is_empty() {
                String::new()
            } else {
                format!(", backend={}", self.kernel_backend)
            },
            self.electrons,
            self.ions,
            self.threads,
            self.walkers,
            self.steps,
            if self.crowd_size > 0 {
                format!(" crowd={}", self.crowd_size)
            } else {
                String::new()
            }
        );
        let _ = writeln!(
            out,
            "energy: {:.6} +/- {:.6} Ha (tau={:.2})  e_trial={:.6}  acceptance={:.4}",
            self.energy_mean, self.energy_err, self.energy_tau, self.e_trial, self.acceptance
        );
        let _ = writeln!(
            out,
            "time: {:.3} s  samples: {}  throughput: {:.1}/s",
            self.seconds,
            self.samples,
            if self.seconds > 0.0 {
                self.samples as f64 / self.seconds
            } else {
                0.0
            }
        );
        if let (Some(&first), Some(&last)) = (self.population.first(), self.population.last()) {
            let _ = writeln!(out, "population: {first} -> {last}");
        }
        if self.drift.refreshes > 0 {
            let _ = writeln!(
                out,
                "mp drift: mean |dlogpsi| = {:.3e}, max = {:.3e} over {} refreshes",
                self.drift.mean_abs(),
                self.drift.max_abs,
                self.drift.refreshes
            );
        }
        if self.sanitizer.total_checks() > 0 {
            let _ = writeln!(
                out,
                "sanitizer: {} checks, {} violations",
                self.sanitizer.total_checks(),
                self.sanitizer.total_violations()
            );
        }
        out.push_str(&self.profile.to_table());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::timer::Kernel;

    fn sample_report() -> RunReport {
        let mut profile = Profile::default();
        profile.get_mut(Kernel::BsplineVGH).nanos = 2_000_000;
        profile.get_mut(Kernel::BsplineVGH).calls = 20;
        profile.get_mut(Kernel::J2).nanos = 1_000_000;
        profile.get_mut(Kernel::J2).calls = 10;
        RunReport {
            benchmark: "graphite-1x1x1".into(),
            code: "current".into(),
            kernel_backend: "soa".into(),
            electrons: 16,
            ions: 4,
            threads: 2,
            walkers: 8,
            steps: 4,
            crowd_size: 4,
            seconds: 0.5,
            samples: 32,
            acceptance: 0.61,
            energy_mean: -1.25,
            energy_err: 0.01,
            energy_tau: 1.5,
            e_trial: -1.3,
            population: vec![8, 9, 8, 8],
            e_trial_trace: vec![-1.26, -1.28, -1.29, -1.3],
            profile,
            crowd_profiles: vec![Profile::default(), Profile::default()],
            drift: DriftStats {
                refreshes: 2,
                sum_abs: 2e-6,
                max_abs: 1.5e-6,
            },
            sanitizer: crate::sanitize::SanitizerStats::default(),
            walker_bytes: 1024,
            engine_bytes: 4096,
            table_bytes: 65536,
        }
    }

    #[test]
    fn json_report_covers_every_kernel() {
        let r = sample_report();
        let v = json::parse(&r.to_json()).expect("report is valid JSON");
        assert_eq!(v.get("schema").unwrap().as_str(), Some(RUN_REPORT_SCHEMA));
        let kernels = v.get("kernels").unwrap();
        for &k in &ALL_KERNELS {
            let s = kernels
                .get(k.label())
                .unwrap_or_else(|| panic!("kernel {} missing", k.label()));
            assert!(s.get("seconds").unwrap().as_f64().is_some());
            assert!(s.get("calls").unwrap().as_f64().is_some());
        }
        assert_eq!(
            v.get("population").unwrap().as_arr().unwrap().len(),
            4,
            "population trajectory serialized"
        );
        assert_eq!(v.get("crowd_kernels").unwrap().as_arr().unwrap().len(), 2);
        let drift = v.get("mp_drift").unwrap();
        assert_eq!(drift.get("refreshes").unwrap().as_f64(), Some(2.0));
        let san = v.get("sanitizer").unwrap();
        assert_eq!(san.get("total_violations").unwrap().as_f64(), Some(0.0));
        for k in crate::sanitize::ALL_CHECKS {
            assert!(
                san.get("checks").unwrap().get(k.label()).is_some(),
                "sanitizer category {} missing from JSON",
                k.label()
            );
        }
    }

    #[test]
    fn summary_contains_hotspots_and_energy() {
        let r = sample_report();
        let s = r.to_summary();
        assert!(s.contains("graphite-1x1x1"));
        assert!(s.contains("Bspline-vgh"));
        assert!(s.contains("-1.25"));
        assert!(s.contains("mp drift"));
    }

    #[test]
    fn drift_counters_accumulate_and_reset() {
        take_drift_stats();
        record_refresh_drift(1e-7);
        record_refresh_drift(3e-7);
        record_refresh_drift(f64::NAN); // ignored
        let d = take_drift_stats();
        assert_eq!(d.refreshes, 2);
        assert!((d.sum_abs - 4e-7).abs() < 1e-20);
        assert!((d.max_abs - 3e-7).abs() < 1e-20);
        assert!((d.mean_abs() - 2e-7).abs() < 1e-20);
        assert_eq!(take_drift_stats(), DriftStats::default());
    }
}
