//! Figure 7: hot-spot profile and roofline analysis of NiO-32, Ref vs
//! Current.
//!
//! The roofline (Williams et al.) locates each kernel at its arithmetic
//! intensity (model-counted FLOPs / bytes) and achieved GFLOP/s, against
//! machine ceilings measured by a microbenchmark probe (substitute for
//! Intel Advisor; see DESIGN.md). The paper's observation: the SoA +
//! mixed-precision transformation moves DistTable, J2, Bspline-vgh and
//! SPO-vgl up and to the right.

use qmc_bench::{run_best, HarnessConfig};
use qmc_instrument::{probe_machine, Kernel};
use qmc_workloads::{Benchmark, CodeVersion};

const ROOFLINE_KERNELS: [Kernel; 6] = [
    Kernel::DistTableAA,
    Kernel::J1,
    Kernel::J2,
    Kernel::BsplineV,
    Kernel::BsplineVGH,
    Kernel::SpoVGL,
];

fn main() {
    let cfg = HarnessConfig::from_env();
    let w = cfg.workload(Benchmark::NiO32);
    println!(
        "== Fig 7: roofline + hot spots, {} ({} electrons) ==",
        w.spec.name,
        w.num_electrons()
    );

    println!("probing machine ceilings (single thread)...");
    let machine = probe_machine();
    println!(
        "peak (scalar-FMA probe): {:.2} SP GFLOP/s, {:.2} DP GFLOP/s; stream {:.1} GB/s",
        machine.peak_sp_gflops, machine.peak_dp_gflops, machine.bandwidth_gbs
    );
    println!(
        "ridge points: SP {:.3} F/B, DP {:.3} F/B\n",
        machine.ridge(true),
        machine.ridge(false)
    );

    let ref_out = run_best(&w, CodeVersion::Ref, &cfg);
    let cur_out = run_best(&w, CodeVersion::Current, &cfg);

    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "kernel", "Ref AI", "Ref GF/s", "Cur AI", "Cur GF/s", "AI gain", "GF gain"
    );
    for &k in &ROOFLINE_KERNELS {
        let r = ref_out.profile.get(k);
        let c = cur_out.profile.get(k);
        let (rai, rgf) = (
            r.arithmetic_intensity().unwrap_or(0.0),
            r.gflops().unwrap_or(0.0),
        );
        let (cai, cgf) = (
            c.arithmetic_intensity().unwrap_or(0.0),
            c.gflops().unwrap_or(0.0),
        );
        println!(
            "{:<14} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>9.2}x {:>9.2}x",
            k.label(),
            rai,
            rgf,
            cai,
            cgf,
            if rai > 0.0 { cai / rai } else { 0.0 },
            if rgf > 0.0 { cgf / rgf } else { 0.0 },
        );
    }

    println!("\nattainable GFLOP/s at each kernel's AI (Current, SP ceiling):");
    for &k in &ROOFLINE_KERNELS {
        let c = cur_out.profile.get(k);
        if let (Some(ai), Some(gf)) = (c.arithmetic_intensity(), c.gflops()) {
            let att = machine.attainable(ai, true);
            println!(
                "  {:<14} AI {:>6.2}  achieved {:>7.2}  attainable {:>7.2}  ({:>4.0}% of roof)",
                k.label(),
                ai,
                gf,
                att,
                gf / att * 100.0
            );
        }
    }

    println!(
        "\nkernel speedups Ref -> Current (paper: DistTable 5x, J2 8x, vgh 1.7x, v 1.3x on BDW):"
    );
    for &k in &ROOFLINE_KERNELS {
        let sr = ref_out.profile.get(k).seconds();
        let sc = cur_out.profile.get(k).seconds();
        if sr > 1e-6 && sc > 1e-6 {
            println!("  {:<14} {:>6.2}x", k.label(), sr / sc);
        }
    }
}
