//! Minimal offline stand-in for the `rand` crate.
//!
//! The workspace must build in air-gapped environments, so instead of the
//! registry crate this shim provides exactly the surface the QMC code uses:
//! `Rng` / `RngExt` (`.random::<T>()`, `.random_range(..)`), `SeedableRng`
//! (`seed_from_u64`), and `rngs::StdRng`.
//!
//! `StdRng` is xoshiro256** seeded through SplitMix64 — a well-studied,
//! deterministic generator with 2^256-1 period. Determinism across
//! platforms and versions is a hard requirement here (walker RNG streams
//! are part of the reproducibility contract), which an in-tree generator
//! guarantees better than a registry dependency ever could.

#![forbid(unsafe_code)]
// Vendored stand-in: the API shape (names, signatures, by-value arguments)
// mirrors the external crate verbatim, so pedantic style lints don't apply.
#![allow(clippy::pedantic)]

/// Core entropy source: everything derives from `next_u64`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;
}

/// Sampling conveniences layered over any [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly distributed value of `T` (for floats: in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in the given range (end-exclusive).
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types samplable uniformly from raw 64-bit entropy.
pub trait Standard {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// 53 random mantissa bits in `[0, 1)` — the classic `u64 >> 11` map.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                // Lemire-style unbiased bounded sampling via 128-bit multiply.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                self.start + ((m >> 64) as u64) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** (Blackman & Vigna) seeded through SplitMix64.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The raw xoshiro256** state words, for bitwise checkpointing.
        ///
        /// [`StdRng::from_state`] reconstructs a generator that continues
        /// the stream exactly where this one stands — unlike re-seeding,
        /// which starts a fresh (decorrelated) stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from raw state words captured by
        /// [`StdRng::state`].
        ///
        /// The all-zero state is a fixed point of xoshiro256** (the stream
        /// would be constant zero) and is unreachable from any seeded
        /// generator, so it can only come from corrupt input; it is mapped
        /// to the seed-0 generator instead of being honored.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return <Self as SeedableRng>::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn bounded_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut hits = [0usize; 7];
        for _ in 0..7000 {
            hits[rng.random_range(0usize..7)] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!(h > 700, "bucket {i} starved: {h}");
        }
    }

    #[test]
    fn state_roundtrip_continues_stream_exactly() {
        let mut a = StdRng::seed_from_u64(0xC0FFEE);
        for _ in 0..17 {
            a.next_raw();
        }
        let snap = a.state();
        let mut b = StdRng::from_state(snap);
        assert_eq!(b.state(), snap);
        for _ in 0..1000 {
            assert_eq!(a.next_raw(), b.next_raw(), "restored stream diverged");
        }
    }

    #[test]
    fn all_zero_state_is_not_honored() {
        // The zero state is a fixed point of xoshiro; from_state must not
        // produce a dead generator from corrupt input.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.state(), [0; 4]);
        assert_ne!(z.next_raw(), z.next_raw());
    }

    trait Raw {
        fn next_raw(&mut self) -> u64;
    }
    impl Raw for StdRng {
        fn next_raw(&mut self) -> u64 {
            use super::Rng;
            self.next_u64()
        }
    }
}
