// fixture-class: kernel,physics
// fixture-silences: timer-coverage
// The three ways an `mw_*` entry point satisfies timer coverage: wrapping
// its body in a `Kernel::*` timer, visibly delegating to another `mw_*`
// kernel, or carrying a justified allow marker.

pub struct Engine {
    inner: Inner,
}

pub struct Inner;

impl Inner {
    pub fn mw_evaluate_impl(&mut self, n: usize) -> f64 {
        time_kernel(Kernel::J2, || {
            let mut acc = 0.0;
            for _ in 0..n {
                acc += 1.0;
            }
            acc
        })
    }
}

impl Engine {
    pub fn mw_evaluate(&mut self, n: usize) -> f64 {
        self.inner.mw_evaluate_impl(n)
    }

    // qmclint: allow(timer-coverage) — fixture: fans out to per-component
    // methods that are each timed under their own Kernel category.
    pub fn mw_fan_out(&mut self, n: usize) -> usize {
        n
    }
}
