//! The workspace itself must lint clean: `cargo test -p qmclint` is a
//! second enforcement point for the CI gate, so a regression fails the
//! test suite even when nobody runs the `qmclint` binary directly.

use std::path::Path;

#[test]
fn repository_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = qmclint::lint_workspace(&root);
    assert!(
        report.files_scanned > 40,
        "suspiciously few files scanned ({}) — exemption config drift?",
        report.files_scanned
    );
    let rendered: Vec<String> = report
        .diagnostics
        .iter()
        .map(qmclint::Diagnostic::render_human)
        .collect();
    assert!(
        report.diagnostics.is_empty(),
        "workspace has {} unsuppressed qmclint diagnostics:\n{}",
        report.diagnostics.len(),
        rendered.join("\n")
    );
}
