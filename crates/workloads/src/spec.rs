//! Benchmark workload specifications (Table 1 of the paper).
//!
//! Four benchmarks: a graphite throughput benchmark (CORAL), beryllium
//! (same electron count, no pseudopotentials), and 32/64-atom NiO
//! supercells. The `paper_*` fields reproduce Table 1 verbatim; the
//! geometric fields define the synthetic systems we actually construct
//! (orthorhombic supercells — see DESIGN.md substitutions).

/// The four paper benchmarks.
// qmclint: allow-file(precision-cast) — problem-spec arithmetic (particle counts, cell
// edges, tilings) is exact integer-to-f64 conversion at setup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Benchmark {
    /// Crystalline graphite (C, 256 electrons, CORAL throughput benchmark).
    Graphite,
    /// Beryllium, 64 atoms — all-electron (no pseudopotential).
    Be64,
    /// 32-atom NiO supercell (384 electrons).
    NiO32,
    /// 64-atom NiO supercell (768 electrons).
    NiO64,
}

/// Problem size selector: the paper-sized problem or a laptop-scaled one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Size {
    /// Paper-sized (Table 1 electron counts).
    Full,
    /// Scaled-down for quick runs (¼ to ⅓ of the electrons).
    Scaled,
}

/// One ion species in a workload.
#[derive(Clone, Debug)]
pub struct IonSpec {
    /// Species label.
    pub name: &'static str,
    /// Valence charge `Z*` (Table 1).
    pub z: f64,
    /// Fractional positions within the unit cell.
    pub frac_in_cell: Vec<[f64; 3]>,
    /// True when the species carries a non-local pseudopotential.
    pub has_pp: bool,
}

/// Full workload specification.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Benchmark identity.
    pub benchmark: Benchmark,
    /// Display name.
    pub name: &'static str,
    /// Orthorhombic unit-cell edges in bohr.
    pub cell: [f64; 3],
    /// Ion species and their in-cell positions.
    pub species: Vec<IonSpec>,
    /// Supercell tiling (full size).
    pub tiling_full: [usize; 3],
    /// Supercell tiling (scaled size).
    pub tiling_scaled: [usize; 3],
    /// Spline grid at full size (per supercell).
    pub grid_full: [usize; 3],
    /// Spline grid at scaled size.
    pub grid_scaled: [usize; 3],
    // ---- Table 1 metadata (paper values, reproduced verbatim) ----
    /// Electrons, `N` (Table 1).
    pub paper_n: usize,
    /// Ions, `N_ion` (Table 1).
    pub paper_nion: usize,
    /// Ions per unit cell (Table 1).
    pub paper_ions_per_cell: usize,
    /// Number of unit cells (Table 1).
    pub paper_num_cells: usize,
    /// Ion types with `Z*` (Table 1).
    pub paper_ion_types: &'static str,
    /// Unique SPOs (Table 1).
    pub paper_unique_spos: usize,
    /// FFT grid (Table 1).
    pub paper_fft_grid: &'static str,
    /// B-spline table size in GB (Table 1).
    pub paper_bspline_gb: f64,
}

impl Benchmark {
    /// All four benchmarks in Table 1 order.
    pub fn all() -> [Benchmark; 4] {
        [
            Benchmark::Graphite,
            Benchmark::Be64,
            Benchmark::NiO32,
            Benchmark::NiO64,
        ]
    }

    /// The workload specification for this benchmark.
    pub fn spec(self) -> WorkloadSpec {
        match self {
            Benchmark::Graphite => WorkloadSpec {
                benchmark: self,
                name: "Graphite",
                // Orthorhombic 4-atom graphite-like cell (a, sqrt(3) a, c).
                cell: [4.65, 8.054, 12.68],
                species: vec![IonSpec {
                    name: "C",
                    z: 4.0,
                    frac_in_cell: vec![
                        [0.0, 0.0, 0.25],
                        [0.5, 0.5, 0.25],
                        [0.0, 1.0 / 3.0, 0.75],
                        [0.5, 5.0 / 6.0, 0.75],
                    ],
                    has_pp: true,
                }],
                tiling_full: [4, 2, 2],
                tiling_scaled: [2, 2, 1],
                grid_full: [28, 28, 80],
                grid_scaled: [14, 14, 40],
                paper_n: 256,
                paper_nion: 64,
                paper_ions_per_cell: 4,
                paper_num_cells: 16,
                paper_ion_types: "C (4)",
                paper_unique_spos: 80,
                paper_fft_grid: "28x28x80",
                paper_bspline_gb: 0.1,
            },
            Benchmark::Be64 => WorkloadSpec {
                benchmark: self,
                name: "Be-64",
                // Orthorhombic 2-atom hcp-like beryllium cell.
                cell: [4.33, 7.49, 6.78],
                species: vec![IonSpec {
                    name: "Be",
                    z: 4.0,
                    frac_in_cell: vec![[0.0, 0.0, 0.0], [0.5, 1.0 / 3.0, 0.5]],
                    // All-electron benchmark: no pseudopotential (§4.1).
                    has_pp: false,
                }],
                tiling_full: [4, 4, 2],
                tiling_scaled: [2, 2, 2],
                grid_full: [84, 84, 144],
                grid_scaled: [28, 28, 48],
                paper_n: 256,
                paper_nion: 64,
                paper_ions_per_cell: 2,
                paper_num_cells: 32,
                paper_ion_types: "Be (4)",
                paper_unique_spos: 81,
                paper_fft_grid: "84x84x144",
                paper_bspline_gb: 1.4,
            },
            Benchmark::NiO32 => {
                nio_spec(self, "NiO-32", [2, 2, 1], [1, 1, 1], 384, 32, 8, 144, 1.3)
            }
            Benchmark::NiO64 => {
                nio_spec(self, "NiO-64", [2, 2, 2], [2, 1, 1], 768, 64, 16, 240, 2.1)
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn nio_spec(
    benchmark: Benchmark,
    name: &'static str,
    tiling_full: [usize; 3],
    tiling_scaled: [usize; 3],
    paper_n: usize,
    paper_nion: usize,
    paper_num_cells: usize,
    paper_unique_spos: usize,
    paper_bspline_gb: f64,
) -> WorkloadSpec {
    // Rock-salt NiO, cubic cell a0 = 7.8885 bohr, 4 Ni + 4 O per cube.
    let a = 7.8885;
    WorkloadSpec {
        benchmark,
        name,
        cell: [a, a, a],
        species: vec![
            IonSpec {
                name: "Ni",
                z: 18.0,
                frac_in_cell: vec![
                    [0.0, 0.0, 0.0],
                    [0.5, 0.5, 0.0],
                    [0.5, 0.0, 0.5],
                    [0.0, 0.5, 0.5],
                ],
                has_pp: true,
            },
            IonSpec {
                name: "O",
                z: 6.0,
                frac_in_cell: vec![
                    [0.5, 0.0, 0.0],
                    [0.0, 0.5, 0.0],
                    [0.0, 0.0, 0.5],
                    [0.5, 0.5, 0.5],
                ],
                has_pp: true,
            },
        ],
        tiling_full,
        tiling_scaled,
        grid_full: [80, 80, 80],
        grid_scaled: [24, 24, 24],
        paper_n,
        paper_nion,
        paper_ions_per_cell: 4,
        paper_num_cells,
        paper_ion_types: "Ni(18), O(6)",
        paper_unique_spos,
        paper_fft_grid: "80x80x80",
        paper_bspline_gb,
    }
}

impl WorkloadSpec {
    /// Tiling for the given size.
    pub fn tiling(&self, size: Size) -> [usize; 3] {
        match size {
            Size::Full => self.tiling_full,
            Size::Scaled => self.tiling_scaled,
        }
    }

    /// Spline grid for the given size.
    pub fn grid(&self, size: Size) -> [usize; 3] {
        match size {
            Size::Full => self.grid_full,
            Size::Scaled => self.grid_scaled,
        }
    }

    /// Number of ions the constructed supercell contains at `size`.
    pub fn num_ions(&self, size: Size) -> usize {
        let t = self.tiling(size);
        let per_cell: usize = self.species.iter().map(|s| s.frac_in_cell.len()).sum();
        per_cell * t[0] * t[1] * t[2]
    }

    /// Number of electrons at `size` (sum of valences).
    pub fn num_electrons(&self, size: Size) -> usize {
        let t = self.tiling(size);
        let per_cell: f64 = self
            .species
            .iter()
            .map(|s| s.z * s.frac_in_cell.len() as f64)
            .sum();
        (per_cell * (t[0] * t[1] * t[2]) as f64) as usize
    }

    /// Supercell edges in bohr at `size`.
    pub fn supercell(&self, size: Size) -> [f64; 3] {
        let t = self.tiling(size);
        [
            self.cell[0] * t[0] as f64,
            self.cell[1] * t[1] as f64,
            self.cell[2] * t[2] as f64,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_electron_counts_match_paper_at_full_size() {
        for b in Benchmark::all() {
            let s = b.spec();
            assert_eq!(
                s.num_electrons(Size::Full),
                s.paper_n,
                "{}: electrons",
                s.name
            );
            assert_eq!(s.num_ions(Size::Full), s.paper_nion, "{}: ions", s.name);
        }
    }

    #[test]
    fn scaled_sizes_are_smaller() {
        for b in Benchmark::all() {
            let s = b.spec();
            assert!(s.num_electrons(Size::Scaled) < s.num_electrons(Size::Full));
            assert!(s.num_electrons(Size::Scaled) >= 64, "{}", s.name);
            // Even electron counts so spins split evenly.
            assert_eq!(s.num_electrons(Size::Scaled) % 2, 0);
            assert_eq!(s.num_electrons(Size::Full) % 2, 0);
        }
    }

    #[test]
    fn nio_charge_balance() {
        let s = Benchmark::NiO32.spec();
        // 16 Ni * 18 + 16 O * 6 = 384.
        assert_eq!(s.num_electrons(Size::Full), 384);
        let s = Benchmark::NiO64.spec();
        assert_eq!(s.num_electrons(Size::Full), 768);
    }

    #[test]
    fn be64_has_no_pseudopotential() {
        let s = Benchmark::Be64.spec();
        assert!(s.species.iter().all(|sp| !sp.has_pp));
        let g = Benchmark::Graphite.spec();
        assert!(g.species.iter().all(|sp| sp.has_pp));
    }
}
