//! Figure 10: energy usage of the NiO-32 benchmark, Ref vs Current.
//!
//! The paper measures package+DRAM power with turbostat at 5 s intervals
//! and finds it flat (210-215 W) during the DMC phase for both versions,
//! concluding that the energy reduction equals the speedup. We model
//! exactly that: measured wall times (init + DMC phases are real) at the
//! paper's constant wattage, then print the turbostat-style power trace
//! and the energy ratio next to the speedup (see DESIGN.md substitution).

use qmc_bench::HarnessConfig;
use qmc_instrument::{EnergyModel, DEFAULT_DMC_WATTS, DEFAULT_INIT_WATTS};
use qmc_workloads::{run_dmc_benchmark, Benchmark, CodeVersion, Workload};

fn run_with_phases(w: &Workload, code: CodeVersion, cfg: &HarnessConfig) -> (EnergyModel, f64) {
    // Init phase: engine construction + walker initialization is inside
    // run_dmc_benchmark; approximate the split by timing table build
    // separately (the dominant init cost).
    let t0 = std::time::Instant::now();
    let _ = w.table_bytes(code.single_precision());
    let init_s = t0.elapsed().as_secs_f64().max(1e-3);
    let out = run_dmc_benchmark(w, code, &cfg.run_config());
    let mut m = EnergyModel::new();
    m.add_phase("init", init_s, DEFAULT_INIT_WATTS);
    m.add_phase("DMC", out.seconds, DEFAULT_DMC_WATTS);
    (m, out.seconds)
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let w = cfg.workload(Benchmark::NiO32);
    println!(
        "== Fig 10: energy model, {} ({} electrons) ==",
        w.spec.name,
        w.num_electrons()
    );
    println!(
        "modeled power: init {DEFAULT_INIT_WATTS} W, DMC {DEFAULT_DMC_WATTS} W (paper: flat 210-215 W)\n"
    );

    let (m_ref, t_ref) = run_with_phases(&w, CodeVersion::Ref, &cfg);
    let (m_cur, t_cur) = run_with_phases(&w, CodeVersion::Current, &cfg);

    // Turbostat-style 5-second-equivalent trace (scaled interval for short
    // runs: 20 samples across the longer trace).
    let interval = (m_ref.total_seconds() / 20.0).max(1e-3);
    println!("power trace (t_s, watts) at {interval:.3}s sampling:");
    println!("{:>10} {:>10} {:>10}", "t(s)", "Ref W", "Current W");
    let tr = m_ref.power_trace(interval);
    let tc = m_cur.power_trace(interval);
    for i in 0..tr.len().max(tc.len()) {
        let (t, wr) = tr.get(i).copied().unwrap_or((i as f64 * interval, 0.0));
        let wc = tc.get(i).map_or(0.0, |x| x.1);
        println!("{t:>10.3} {wr:>10.0} {wc:>10.0}");
    }

    let e_ref = m_ref.joules_excluding(&["init"]);
    let e_cur = m_cur.joules_excluding(&["init"]);
    println!("\nDMC-phase energy: Ref {e_ref:.1} J, Current {e_cur:.1} J");
    println!(
        "energy ratio {:.2}x  vs  speedup {:.2}x  (paper: 'energy reduction is\n\
         roughly equal to the speedup' at flat power)",
        e_ref / e_cur,
        t_ref / t_cur
    );
    assert!(
        ((e_ref / e_cur) - (t_ref / t_cur)).abs() < 1e-9,
        "constant-power model: ratios must match exactly"
    );
}
