//! Flush-to-zero / denormals-are-zero control.
//!
//! The paper's builds used the Intel compilers with `-O3`, which enable
//! FTZ+DAZ by default — subnormal numbers never occur on their hardware
//! runs. Rust (LLVM) keeps IEEE subnormals, and the single-precision
//! Slater inverses produced by Sherman-Morrison chains can wander into the
//! subnormal range, where x86 takes ~100-cycle microcode assists and the
//! `DetUpdate` kernel falls off a cliff. Calling [`enable_ftz`] at the
//! start of every compute thread reproduces the paper's floating-point
//! environment.

/// Enables flush-to-zero (FTZ) and denormals-are-zero (DAZ) in the
/// calling thread's MXCSR. No-op on non-x86_64 targets.
pub fn enable_ftz() {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        // SAFETY: stmxcsr/ldmxcsr write to / read from a valid, aligned
        // u32 on the stack and only toggle the FTZ/DAZ bits of the calling
        // thread's MXCSR. Changing those bits alters rounding of
        // subnormals (the whole point) but cannot violate memory safety,
        // and the register is thread-local so no other thread observes it.
        let mut mxcsr: u32 = 0;
        std::arch::asm!("stmxcsr [{}]", in(reg) &raw mut mxcsr, options(nostack));
        mxcsr |= (1 << 15) | (1 << 6); // FTZ | DAZ
        std::arch::asm!("ldmxcsr [{}]", in(reg) &raw const mxcsr, options(nostack));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ftz_flushes_subnormals() {
        enable_ftz();
        let tiny = f32::MIN_POSITIVE / 2.0; // subnormal
        let result = std::hint::black_box(tiny) * std::hint::black_box(0.5f32);
        #[cfg(target_arch = "x86_64")]
        assert_eq!(result, 0.0, "FTZ should flush subnormal products");
        #[cfg(not(target_arch = "x86_64"))]
        let _ = result;
    }
}
