// fixture-path: crates/hamiltonian/src/sampling.rs
//! Seeded bug: a Hamiltonian helper owning its own randomness. The draw
//! site is outside the sanctioned driver/branch/move territory and
//! nothing sanctioned reaches it, so walker streams sampled through it
//! would desynchronize across restarts and migration.

/// Rogue draw: physics code must receive randomness from the drivers.
pub fn thermal_noise(rng: &mut StdRng) -> f64 {
    rng.random() //~ rng-discipline
}
