//! CI helper: reads JSON from stdin, validates it with the in-tree
//! parser, and exits nonzero (with a message) when it is empty or
//! malformed. Used by `ci.sh` to smoke-test `miniqmc --profile json`
//! and the qmclint report.
//!
//! ```text
//! miniqmc --benchmark graphite --profile json | json_check
//! json_check < QMCLINT.json
//! ```

use std::io::Read;

/// Schema-specific checks for qmclint reports. `qmclint/1` (lexical +
/// graph rules only), `qmclint/2` (adds the `effects` block) and
/// `qmclint/3` (adds the `par` concurrency block) are all accepted; any
/// other version is a hard error so a silent format bump cannot sail
/// through CI.
fn check_qmclint(schema: &str, v: &qmc_instrument::json::JsonValue) {
    if schema != "qmclint/1" && schema != "qmclint/2" && schema != "qmclint/3" {
        eprintln!("json_check: unknown qmclint schema `{schema}`");
        std::process::exit(1);
    }
    for key in ["files_scanned", "diagnostics_total", "by_rule"] {
        if v.get(key).is_none() {
            eprintln!("json_check: {schema} report missing `{key}`");
            std::process::exit(1);
        }
    }
    if schema == "qmclint/2" || schema == "qmclint/3" {
        let Some(effects) = v.get("effects") else {
            eprintln!("json_check: {schema} report missing `effects` block");
            std::process::exit(1);
        };
        for key in [
            "pure_roots",
            "rng_draw_sites",
            "checkpointed_structs",
            "rules",
        ] {
            if effects.get(key).is_none() {
                eprintln!("json_check: {schema} `effects` block missing `{key}`");
                std::process::exit(1);
            }
        }
    }
    if schema == "qmclint/3" {
        let Some(par) = v.get("par") else {
            eprintln!("json_check: qmclint/3 report missing `par` block");
            std::process::exit(1);
        };
        for key in [
            "spawn_sites",
            "parallel_fns",
            "sched_cases",
            "det_reduce_calls",
            "rules",
        ] {
            if par.get(key).is_none() {
                eprintln!("json_check: qmclint/3 `par` block missing `{key}`");
                std::process::exit(1);
            }
        }
    }
}

fn main() {
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("json_check: cannot read stdin: {e}");
        std::process::exit(1);
    }
    if input.trim().is_empty() {
        eprintln!("json_check: empty input");
        std::process::exit(1);
    }
    match qmc_instrument::json::parse(&input) {
        Ok(v) => {
            // A run report must at least carry its schema tag; plain JSON
            // from other producers (e.g. Chrome traces) just passes.
            if let Some(schema) = v.get("schema").and_then(|s| s.as_str()) {
                if schema.starts_with("qmclint/") {
                    check_qmclint(schema, &v);
                }
                // Gate on the runtime sanitizer: a `checked` build that
                // observed non-finite accumulator values or out-of-bound
                // drift must fail CI, not just note it in the report.
                let violations = v
                    .get("sanitizer")
                    .and_then(|s| s.get("total_violations"))
                    .and_then(qmc_instrument::json::JsonValue::as_f64)
                    .unwrap_or(0.0);
                if violations > 0.0 {
                    eprintln!("json_check: sanitizer reported {violations} invariant violation(s)");
                    std::process::exit(1);
                }
                println!("json_check: ok (schema {schema})");
            } else {
                println!("json_check: ok");
            }
        }
        Err(e) => {
            eprintln!("json_check: invalid JSON: {e}");
            std::process::exit(1);
        }
    }
}
