// fixture-path: crates/drivers/src/fingerprint.rs
//! Seeded bug (PR 7, bug b): the full-state digest reads the walker
//! buffer through its consuming cursor API and leaves the cursor dirty —
//! the digest "succeeds" but the next engine load resumes mid-buffer.
//! `buffer_contents` is the mutation carrier; the diagnostic must land on
//! the consuming read, chained from the `walker_digest_full` pure root.

/// Pure root by name: `*digest*` under `crates/drivers/`.
pub fn walker_digest_full(w: &mut Walker) -> u64 {
    let mut h = seed_hash();
    h ^= buffer_contents(w);
    h
}

/// FNV offset basis, fixed.
fn seed_hash() -> u64 {
    14_695_981_039_346_656_037
}

/// The dirty read: `get_f64` advances the buffer cursor.
fn buffer_contents(w: &mut Walker) -> u64 {
    let first = w.buffer.get_f64(); //~ serialization-purity
    first.to_bits()
}
