//! The per-thread compute engine: `ParticleSet` + `TrialWaveFunction` +
//! Hamiltonian, with the drift-diffusion particle-by-particle sweep of
//! Algorithm 1 (L4-L10) and the local-energy measurement (L11).
//!
//! Engines are created once per thread (`E_th`, `Psi_th` in Fig. 4) and
//! walkers are swapped through them via `load_walker`/`store_walker`.

use crate::walker::Walker;
use qmc_containers::{Pos, Real};
use qmc_hamiltonian::{
    ion_ion_energy, kinetic_energy, CoulombEE, CoulombEI, LocalEnergy, NonLocalPP,
};
use qmc_particles::{gaussian_pos, ParticleSet};
use qmc_wavefunction::TrialWaveFunction;
use rand::rngs::StdRng;

/// The potential-energy terms evaluated at measurement time.
pub struct HamiltonianSet {
    /// Electron-electron Coulomb (AA table handle inside).
    pub ee: Option<CoulombEE>,
    /// Electron-ion Coulomb.
    pub ei: Option<CoulombEI>,
    /// Constant ion-ion energy.
    pub ii: f64,
    /// Non-local pseudopotential.
    pub nlpp: Option<NonLocalPP>,
}

impl HamiltonianSet {
    /// A Hamiltonian with only the kinetic term (useful for tests).
    pub fn kinetic_only() -> Self {
        Self {
            ee: None,
            ei: None,
            ii: 0.0,
            nlpp: None,
        }
    }

    /// Full Hamiltonian from optional parts; `ions` supplies the constant
    /// ion-ion term when present.
    pub fn new<T: Real>(
        ee: Option<CoulombEE>,
        ei: Option<CoulombEI>,
        ions: Option<&ParticleSet<T>>,
        nlpp: Option<NonLocalPP>,
    ) -> Self {
        Self {
            ee,
            ei,
            ii: ions.map_or(0.0, ion_ion_energy),
            nlpp,
        }
    }
}

/// Outcome of one PbyP sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepStats {
    /// Accepted single-particle moves.
    pub accepted: usize,
    /// Attempted single-particle moves.
    pub attempted: usize,
}

impl SweepStats {
    /// Acceptance ratio.
    pub fn acceptance(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            // qmclint: allow(precision-cast) — walker/step counts convert exactly to f64 for statistics.
            self.accepted as f64 / self.attempted as f64
        }
    }
}

/// Umrigar-style drift limiting: `v_eff = v * (-1 + sqrt(1 + 2 v^2 tau)) /
/// (v^2 tau)`, which tends to `v` for small drift and caps the step for
/// large gradients near nodes.
#[inline]
pub fn limited_drift(g: Pos<f64>, tau: f64) -> Pos<f64> {
    let v2 = g.norm2();
    if v2 * tau < 1e-12 {
        return g * tau;
    }
    let scale = (-1.0 + (1.0 + 2.0 * v2 * tau).sqrt()) / v2;
    g * scale
}

/// A per-thread QMC compute engine.
pub struct QmcEngine<T: Real> {
    /// Electron particle set (owns the distance tables).
    pub pset: ParticleSet<T>,
    /// Trial wavefunction.
    pub psi: TrialWaveFunction<T>,
    /// Hamiltonian terms.
    pub ham: HamiltonianSet,
}

impl<T: Real> QmcEngine<T> {
    /// Bundles the parts into an engine.
    pub fn new(pset: ParticleSet<T>, psi: TrialWaveFunction<T>, ham: HamiltonianSet) -> Self {
        Self { pset, psi, ham }
    }

    /// Initializes a walker: loads its positions, computes the wavefunction
    /// from scratch, measures the local energy and fills the buffer.
    pub fn init_walker(&mut self, w: &mut Walker<T>) {
        self.pset.load_positions(&w.r);
        w.log_psi = self.psi.evaluate_log(&mut self.pset);
        let el = self.measure_after_fresh_gl(&mut w.rng);
        w.e_local = el.total();
        qmc_instrument::check_finite(qmc_instrument::CheckKind::LogPsi, w.log_psi);
        qmc_instrument::check_finite(qmc_instrument::CheckKind::LocalEnergy, w.e_local);
        self.psi.save_state(&mut w.buffer);
    }

    /// Loads a walker into the engine (positions, tables, buffer state).
    pub fn load_walker(&mut self, w: &mut Walker<T>) {
        self.pset.load_positions(&w.r);
        self.psi.load_state(&mut w.buffer);
    }

    /// Stores the engine state back into the walker.
    pub fn store_walker(&mut self, w: &mut Walker<T>) {
        self.pset.store_positions(&mut w.r);
        self.psi.save_state(&mut w.buffer);
        w.log_psi = self.psi.log_value();
    }

    /// Recomputes the wavefunction from scratch at the current positions —
    /// the periodic mixed-precision hygiene step (§7.2). Records how far
    /// the incrementally-updated `log psi` had drifted from the fresh
    /// value into the global drift counters (the `mp_drift` block of the
    /// run report).
    pub fn refresh_from_scratch(&mut self) {
        let before = self.psi.log_value();
        let after = self.psi.evaluate_log(&mut self.pset);
        qmc_instrument::check_finite(qmc_instrument::CheckKind::LogPsi, after);
        if before.is_finite() && after.is_finite() {
            qmc_instrument::record_refresh_drift((after - before).abs());
        }
    }

    /// One importance-sampled drift-diffusion PbyP sweep over all
    /// electrons (Algorithm 1, L4-L10).
    pub fn sweep(&mut self, tau: f64, rng: &mut StdRng) -> SweepStats {
        let n = self.pset.len();
        let sqrt_tau = tau.sqrt();
        let mut stats = SweepStats::default();
        for iat in 0..n {
            self.pset.prepare_move(iat);
            let g_old = self.psi.eval_grad(&self.pset, iat);
            let drift_old = limited_drift(g_old, tau);
            let chi = gaussian_pos(rng) * sqrt_tau;
            let oldpos: Pos<f64> = self.pset.pos(iat).cast();
            let newpos64 = oldpos + drift_old + chi;
            let newpos: Pos<T> = newpos64.cast();
            stats.attempted += 1;

            self.pset.make_move(iat, newpos);
            let (ratio, g_new) = self.psi.calc_ratio_grad(&self.pset, iat);
            if ratio <= 0.0 || !ratio.is_finite() {
                // Fixed-node rejection (node crossing) or numerical trouble.
                self.psi.reject_move(iat);
                self.pset.reject_move(iat);
                continue;
            }
            // Detailed balance with the drifted Gaussian Green's function.
            let drift_new = limited_drift(g_new, tau);
            let forward = chi.norm2();
            let backward = (oldpos - newpos64 - drift_new).norm2();
            let log_gf_ratio = (forward - backward) / (2.0 * tau);
            let p_acc = (ratio * ratio * log_gf_ratio.exp()).min(1.0);
            if rng.random::<f64>() < p_acc {
                self.psi.accept_move(&self.pset, iat);
                self.pset.accept_move(iat);
                stats.accepted += 1;
            } else {
                self.psi.reject_move(iat);
                self.pset.reject_move(iat);
            }
        }
        stats
    }

    /// Measures the local energy at the current configuration using the
    /// stored-state O(N^2) path (Eq. 7).
    pub fn measure(&mut self, rng: &mut StdRng) -> LocalEnergy {
        self.psi.update_gl(&mut self.pset);
        self.measure_terms(rng)
    }

    fn measure_after_fresh_gl(&mut self, rng: &mut StdRng) -> LocalEnergy {
        // G/L already fresh from evaluate_log.
        self.measure_terms(rng)
    }

    fn measure_terms(&mut self, rng: &mut StdRng) -> LocalEnergy {
        let kinetic = kinetic_energy(&self.pset);
        let ee = self.ham.ee.as_ref().map_or(0.0, |c| c.evaluate(&self.pset));
        let ei = self.ham.ei.as_ref().map_or(0.0, |c| c.evaluate(&self.pset));
        let nlpp = self
            .ham
            .nlpp
            .as_ref()
            .map_or(0.0, |c| c.evaluate(&mut self.pset, &mut self.psi, rng));
        LocalEnergy {
            kinetic,
            ee,
            ei,
            ii: self.ham.ii,
            nlpp,
        }
    }

    /// Per-walker state bytes (wavefunction internals + tables), for the
    /// memory studies.
    pub fn bytes(&self) -> usize {
        self.pset.bytes() + self.psi.bytes()
    }
}

use rand::RngExt;

#[cfg(test)]
mod tests {
    use super::*;

    use qmc_containers::TinyVector;

    #[test]
    fn limited_drift_small_gradient_is_linear() {
        let g = TinyVector([0.01, 0.0, 0.0]);
        let d = limited_drift(g, 0.01);
        assert!((d[0] - 0.0001).abs() < 1e-8);
    }

    #[test]
    fn limited_drift_caps_large_gradient() {
        let g = TinyVector([1000.0, 0.0, 0.0]);
        let tau = 0.01;
        let d = limited_drift(g, tau);
        // Unlimited drift would be 10; limited is ~sqrt(2 tau).
        assert!(d[0] < 1.0, "drift = {}", d[0]);
        assert!(d[0] > 0.0);
    }

    #[test]
    fn sweep_stats_acceptance() {
        let s = SweepStats {
            accepted: 3,
            attempted: 4,
        };
        assert!((s.acceptance() - 0.75).abs() < 1e-15);
        assert_eq!(SweepStats::default().acceptance(), 0.0);
    }
}
