//! # miniqmc
//!
//! The paper's miniapps (§7.1): small binaries that "reproduce the
//! computational patterns, memory use, data access and thread-level
//! parallelism of the production QMC code as realistically as possible"
//! and are used to prototype optimizations before full integration.
//!
//! Binaries:
//! * `miniqmc` — the full miniapp: DMC with PbyP updates and NLPP on a
//!   benchmark workload, any code version, with hot-spot profile output.
//! * `mini_dist` — distance-table kernel miniapp (AoS vs SoA).
//! * `mini_j2` — two-body Jastrow miniapp (stored vs compute-on-the-fly).
//! * `mini_bspline` — 3D spline miniapp (layouts x precisions).
//! * `check_wfc` — full-wavefunction correctness checker (Ref vs Current).
//! * `check_spo` — SPO evaluator correctness checker.

#![forbid(unsafe_code)]

pub mod args;

pub use args::Options;
