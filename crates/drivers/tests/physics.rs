//! End-to-end physics validation of the drivers.
//!
//! A Slater determinant of kinetic-operator eigenstates (cosine orbitals)
//! has *exactly constant* local energy `E = sum_s |k_s|^2 / 2`, so VMC and
//! DMC through the full move/measure/branch machinery must reproduce that
//! number with (near) zero variance — any bookkeeping error in tables,
//! ratios, buffers or branching shows up immediately.

use qmc_containers::{Pos, TinyVector};
use qmc_drivers::{
    initial_population, run_dmc, run_dmc_parallel, run_vmc, DmcParams, HamiltonianSet, QmcEngine,
    VmcParams,
};
use qmc_particles::{CrystalLattice, Layout, ParticleSet, Species};
use qmc_wavefunction::{CosineSpo, DetUpdateMode, DiracDeterminant, TrialWaveFunction};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const L: f64 = 6.0;

fn free_engine(n: usize, layout: Layout, mode: DetUpdateMode) -> (QmcEngine<f64>, f64) {
    let lat = CrystalLattice::cubic(L);
    let mut rng = StdRng::seed_from_u64(7);
    let pos: Vec<Pos<f64>> = (0..n)
        .map(|_| {
            TinyVector([
                rng.random::<f64>() * L,
                rng.random::<f64>() * L,
                rng.random::<f64>() * L,
            ])
        })
        .collect();
    let mut pset = ParticleSet::new(
        "e",
        lat,
        vec![(
            Species {
                name: "u".into(),
                charge: -1.0,
            },
            pos,
        )],
    );
    pset.add_table_aa(layout);

    let spo = CosineSpo::<f64>::new(n, [L, L, L]);
    // Exact total energy: sum over occupied orbitals of |k|^2/2.
    let mut psi_probe = vec![0.0; n];
    let _ = &mut psi_probe;
    let exact = exact_energy(n);

    let mut psi = TrialWaveFunction::new();
    psi.add(Box::new(DiracDeterminant::new(Box::new(spo), 0, n, mode)));
    let engine = QmcEngine::new(pset, psi, HamiltonianSet::kinetic_only());
    (engine, exact)
}

/// Well-spread (non-degenerate) starting positions: collinear starts make
/// the Slater matrix near-singular and Sherman-Morrison legitimately
/// inaccurate.
fn spread_positions(n: usize, seed: u64) -> Vec<Pos<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            TinyVector([
                rng.random::<f64>() * L,
                rng.random::<f64>() * L,
                rng.random::<f64>() * L,
            ])
        })
        .collect()
}

fn exact_energy(n: usize) -> f64 {
    use std::f64::consts::TAU;
    // Mirror CosineSpo's deterministic shell enumeration.
    let mut ks: Vec<[f64; 3]> = Vec::new();
    'outer: for shell in 0i64.. {
        for ix in -shell..=shell {
            for iy in -shell..=shell {
                for iz in -shell..=shell {
                    if ix.abs().max(iy.abs()).max(iz.abs()) != shell {
                        continue;
                    }
                    ks.push([
                        TAU * ix as f64 / L,
                        TAU * iy as f64 / L,
                        TAU * iz as f64 / L,
                    ]);
                    if ks.len() == n {
                        break 'outer;
                    }
                }
            }
        }
    }
    ks.iter()
        .map(|k| 0.5 * (k[0] * k[0] + k[1] * k[1] + k[2] * k[2]))
        .sum()
}

#[test]
fn vmc_eigenstate_energy_is_exact() {
    let n = 5;
    let (mut engine, exact) = free_engine(n, Layout::Soa, DetUpdateMode::ShermanMorrison);
    let mut walkers = initial_population::<f64>(&spread_positions(n, 101), 4, 11);
    let params = VmcParams {
        blocks: 3,
        steps_per_block: 10,
        tau: 0.3,
        measure_every: 1,
        ..Default::default()
    };
    let res = run_vmc(&mut engine, &mut walkers, &params);
    let (mean, _, _) = res.energy.blocking();
    assert!(
        (mean - exact).abs() < 1e-7,
        "VMC energy {mean} vs exact {exact}"
    );
    // Eigenstate: zero-variance principle.
    assert!(
        res.energy.variance() < 1e-12,
        "variance {}",
        res.energy.variance()
    );
    assert!(res.acceptance > 0.3 && res.acceptance <= 1.0);
}

#[test]
fn dmc_eigenstate_energy_and_population_stable() {
    let n = 4;
    let (mut engine, exact) = free_engine(n, Layout::Soa, DetUpdateMode::ShermanMorrison);
    let mut walkers = initial_population::<f64>(&spread_positions(n, 102), 12, 13);
    let params = DmcParams {
        steps: 40,
        warmup: 5,
        tau: 0.02,
        target_population: 12,
        recompute_every: 10,
        seed: 99,
        ..Default::default()
    };
    let res = run_dmc(&mut engine, &mut walkers, &params);
    let (mean, _, _) = res.energy.blocking();
    assert!((mean - exact).abs() < 1e-7, "DMC {mean} vs {exact}");
    // Population bounded around target.
    let max_pop = *res.population.iter().max().unwrap();
    let min_pop = *res.population.iter().min().unwrap();
    assert!(
        min_pop >= 4 && max_pop <= 48,
        "pop range {min_pop}..{max_pop}"
    );
    assert!(res.samples > 0);
}

#[test]
fn dmc_delayed_updates_match_exact_energy() {
    let n = 6;
    let (mut engine, exact) = free_engine(n, Layout::Soa, DetUpdateMode::Delayed(4));
    let mut walkers = initial_population::<f64>(&spread_positions(n, 103), 6, 17);
    let params = DmcParams {
        steps: 20,
        warmup: 2,
        tau: 0.02,
        target_population: 6,
        recompute_every: 8,
        seed: 23,
        ..Default::default()
    };
    let res = run_dmc(&mut engine, &mut walkers, &params);
    let (mean, _, _) = res.energy.blocking();
    assert!((mean - exact).abs() < 1e-7, "delayed DMC {mean} vs {exact}");
}

#[test]
fn parallel_dmc_matches_exact_energy_and_merges_profile() {
    let n = 4;
    let nthreads = 3;
    let mut engines: Vec<QmcEngine<f64>> = (0..nthreads)
        .map(|_| free_engine(n, Layout::Soa, DetUpdateMode::ShermanMorrison).0)
        .collect();
    let exact = exact_energy(n);
    let mut walkers = initial_population::<f64>(&spread_positions(n, 104), 9, 31);
    let params = DmcParams {
        steps: 15,
        warmup: 3,
        tau: 0.02,
        target_population: 9,
        recompute_every: 5,
        seed: 41,
        ..Default::default()
    };
    let (res, profile) = run_dmc_parallel(&mut engines, &mut walkers, &params);
    let (mean, _, _) = res.energy.blocking();
    assert!(
        (mean - exact).abs() < 1e-7,
        "parallel DMC {mean} vs {exact}"
    );
    // The merged profile must have seen the hot kernels.
    assert!(profile.total.get(qmc_instrument::Kernel::DetUpdate).calls > 0);
    assert!(profile.total.get(qmc_instrument::Kernel::DistTableAA).calls > 0);
}

#[test]
fn walker_buffer_roundtrip_is_stable() {
    // store -> load -> store must be idempotent (same buffer bytes, same
    // log psi), proving the anonymous buffer captures the full state.
    let n = 4;
    let (mut engine, _) = free_engine(n, Layout::Soa, DetUpdateMode::ShermanMorrison);
    let mut walkers = initial_population::<f64>(&spread_positions(n, 105), 1, 53);
    let w = &mut walkers[0];
    engine.init_walker(w);
    let log0 = w.log_psi;
    let bytes0 = w.buffer.bytes();
    engine.load_walker(w);
    engine.store_walker(w);
    assert_eq!(w.buffer.bytes(), bytes0);
    assert!((w.log_psi - log0).abs() < 1e-12);

    // A sweep then reload must keep the incremental log consistent with a
    // fresh evaluation.
    engine.load_walker(w);
    engine.sweep(0.05, &mut w.rng);
    engine.store_walker(w);
    let incremental = w.log_psi;
    engine.pset.load_positions(&w.r);
    let fresh = engine.psi.evaluate_log(&mut engine.pset);
    assert!(
        (incremental - fresh).abs() < 1e-8,
        "incremental {incremental} vs fresh {fresh}"
    );
}
