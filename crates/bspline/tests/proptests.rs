//! Property-based tests for the B-spline engine.

use proptest::prelude::*;
use qmc_bspline::{solve_cyclic_tridiagonal, CubicBspline1D, MultiBspline3D};

proptest! {
    /// The cyclic tridiagonal solver satisfies A x = rhs for arbitrary
    /// diagonally dominant stencils and right-hand sides.
    #[test]
    fn cyclic_solver_residual(
        rhs in prop::collection::vec(-10.0f64..10.0, 4..40),
        a in 0.05f64..0.3,
    ) {
        let b = 1.0 - 2.0 * a + 0.5; // keep diagonally dominant
        let n = rhs.len();
        let x = solve_cyclic_tridiagonal(a, b, &rhs);
        for i in 0..n {
            let lhs = a * x[(i + n - 1) % n] + b * x[i] + a * x[(i + 1) % n];
            prop_assert!((lhs - rhs[i]).abs() < 1e-8, "row {i}: {lhs} vs {}", rhs[i]);
        }
    }

    /// Fitted 1D functors interpolate their target at every knot and
    /// vanish identically beyond the cutoff, for arbitrary shapes.
    #[test]
    fn functor_fit_interpolates(
        amp in 0.05f64..2.0,
        decay in 0.1f64..2.0,
        rcut in 1.0f64..6.0,
        nknots in 6usize..20,
    ) {
        let f = move |r: f64| amp * (-decay * r).exp();
        let sp = CubicBspline1D::<f64>::fit(f, -0.5, rcut, nknots);
        let h = rcut / (nknots as f64 - 1.0);
        for j in 0..nknots - 1 {
            let r = j as f64 * h;
            prop_assert!((sp.evaluate(r) - f(r)).abs() < 1e-8, "knot {j}");
        }
        prop_assert_eq!(sp.evaluate(rcut), 0.0);
        prop_assert_eq!(sp.evaluate(rcut * 1.5), 0.0);
        // No panic just below the cutoff (reduced-precision clamp path).
        let eps = rcut * (1.0 - 1e-12);
        let _ = sp.evaluate(eps);
        let sp32: CubicBspline1D<f32> = sp.cast();
        let _ = sp32.evaluate((rcut as f32) * (1.0 - f32::EPSILON));
    }

    /// 3D spline evaluation is periodic: shifting the fractional
    /// coordinate by any integer leaves values unchanged.
    #[test]
    fn spline3d_periodicity(
        ux in 0.0f64..1.0, uy in 0.0f64..1.0, uz in 0.0f64..1.0,
        sx in -3i32..3, sy in -3i32..3, sz in -3i32..3,
    ) {
        let t = MultiBspline3D::<f64>::random([5, 6, 7], 3, 99);
        let mut a = vec![0.0; 3];
        let mut b = vec![0.0; 3];
        t.evaluate_v([ux, uy, uz], &mut a);
        t.evaluate_v(
            [ux + sx as f64, uy + sy as f64, uz + sz as f64],
            &mut b,
        );
        for s in 0..3 {
            prop_assert!((a[s] - b[s]).abs() < 1e-10, "spline {s}");
        }
    }

    /// Ref and SoA loop orders agree at arbitrary points.
    #[test]
    fn spline3d_layouts_agree(
        ux in 0.0f64..1.0, uy in 0.0f64..1.0, uz in 0.0f64..1.0,
    ) {
        let ns = 5;
        let t = MultiBspline3D::<f64>::random([6, 6, 6], ns, 3);
        let (mut a, mut b) = (vec![0.0; ns], vec![0.0; ns]);
        t.evaluate_v([ux, uy, uz], &mut a);
        t.evaluate_v_ref([ux, uy, uz], &mut b);
        for s in 0..ns {
            prop_assert!((a[s] - b[s]).abs() < 1e-12);
        }
    }
}
