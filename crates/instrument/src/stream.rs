//! Streaming run telemetry: `qmc-run-report-stream/1`.
//!
//! The end-of-run [`crate::RunReport`] is useless to a supervisor watching
//! a long production job — by the time it exists, the job is over. This
//! module streams the same observability data incrementally: one JSON
//! record per line (NDJSON), appended and flushed as each driver
//! block/generation completes, so `tail -f` (or the supervisor that
//! decides when to kill and resume a job) sees progress live.
//!
//! Record kinds, discriminated by the `"event"` key:
//!
//! * `start` — run identity: driver, benchmark, code, backend, shape, and
//!   the step a resumed run continues from. Carries the schema tag.
//! * `block` — one completed block/generation: the [`BlockEvent`] delta.
//! * `trace` — one Chrome-style span ([`TraceEvent`]), when tracing is on.
//! * `checkpoint` — a checkpoint file was written at this step.
//! * `end` — final scalars (the run-report headline numbers) plus the
//!   FNV-1a population hash the resume-parity gates compare.
//!
//! Every line is a complete JSON object; a reader can join a stream at
//! any point and resynchronize at the next newline.

use crate::json::JsonWriter;
use crate::span::TraceEvent;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};

/// Schema tag carried by the `start` record of every stream.
pub const RUN_STREAM_SCHEMA: &str = "qmc-run-report-stream/1";

/// Per-block delta a driver reports as the block completes. Cumulative
/// counters (samples, accepted/attempted) let a reader that joined late
/// still compute rates; NaN-valued fields (e.g. `e_trial` for VMC, which
/// has no trial energy) serialize as `null`.
#[derive(Clone, Copy, Debug)]
pub struct BlockEvent {
    /// Driver kind: `"vmc"` or `"dmc"`.
    pub driver: &'static str,
    /// Completed steps/blocks so far (this event reports step `step - 1`).
    pub step: u64,
    /// Total steps/blocks the run will execute.
    pub steps_total: u64,
    /// Walker population after this block's branching.
    pub population: u64,
    /// Cumulative Monte Carlo samples (post-warmup).
    pub samples: u64,
    /// Cumulative accepted single-particle moves.
    pub accepted: u64,
    /// Cumulative attempted single-particle moves.
    pub attempted: u64,
    /// This block's energy estimate.
    pub e_block: f64,
    /// Trial energy after this block's feedback update (NaN for VMC).
    pub e_trial: f64,
    /// This block's total statistical weight (NaN for VMC).
    pub weight: f64,
}

/// Newline-delimited JSON sink for streaming run telemetry. Every record
/// is written and flushed immediately — the cost is negligible next to a
/// DMC generation, and it is what makes the stream watchable live.
pub struct StreamWriter {
    out: BufWriter<File>,
}

impl StreamWriter {
    /// Creates (truncating) a stream at `path` — a fresh run.
    pub fn create(path: &str) -> std::io::Result<Self> {
        Ok(Self {
            out: BufWriter::new(File::create(path)?),
        })
    }

    /// Opens `path` for append — a resumed run continues its stream.
    pub fn append(path: &str) -> std::io::Result<Self> {
        Ok(Self {
            out: BufWriter::new(OpenOptions::new().create(true).append(true).open(path)?),
        })
    }

    fn emit(&mut self, line: &str) -> std::io::Result<()> {
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()
    }

    /// Writes the `start` record identifying the run.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        &mut self,
        driver: &str,
        benchmark: &str,
        code: &str,
        backend: &str,
        threads: usize,
        walkers: usize,
        steps: usize,
        resumed_from_step: Option<u64>,
    ) -> std::io::Result<()> {
        let mut j = JsonWriter::new();
        j.begin_obj();
        j.key("schema").str_val(RUN_STREAM_SCHEMA);
        j.key("event").str_val("start");
        j.key("driver").str_val(driver);
        j.key("benchmark").str_val(benchmark);
        j.key("code").str_val(code);
        j.key("kernel_backend").str_val(backend);
        j.key("threads").u64_val(threads as u64);
        j.key("walkers").u64_val(walkers as u64);
        j.key("steps").u64_val(steps as u64);
        if let Some(step) = resumed_from_step {
            j.key("resumed_from_step").u64_val(step);
        }
        j.end_obj();
        self.emit(&j.finish())
    }

    /// Writes one `block` record.
    pub fn block(&mut self, ev: &BlockEvent) -> std::io::Result<()> {
        let mut j = JsonWriter::new();
        j.begin_obj();
        j.key("event").str_val("block");
        j.key("driver").str_val(ev.driver);
        j.key("step").u64_val(ev.step);
        j.key("steps_total").u64_val(ev.steps_total);
        j.key("population").u64_val(ev.population);
        j.key("samples").u64_val(ev.samples);
        j.key("accepted").u64_val(ev.accepted);
        j.key("attempted").u64_val(ev.attempted);
        j.key("e_block").f64_val(ev.e_block);
        j.key("e_trial").f64_val(ev.e_trial);
        j.key("weight").f64_val(ev.weight);
        j.end_obj();
        self.emit(&j.finish())
    }

    /// Writes one `trace` record per span (same fields as the Chrome
    /// trace export, microsecond units).
    pub fn trace_events(&mut self, events: &[TraceEvent]) -> std::io::Result<()> {
        for ev in events {
            let mut j = JsonWriter::new();
            j.begin_obj();
            j.key("event").str_val("trace");
            j.key("name").str_val(&ev.name);
            j.key("lane").u64_val(ev.lane);
            j.key("ts_us").f64_val(ev.start_ns as f64 / 1000.0);
            j.key("dur_us").f64_val(ev.dur_ns as f64 / 1000.0);
            j.end_obj();
            self.emit(&j.finish())?;
        }
        Ok(())
    }

    /// Writes a `checkpoint` record: a checkpoint landed at `step`.
    pub fn checkpoint(&mut self, step: u64, path: &str) -> std::io::Result<()> {
        let mut j = JsonWriter::new();
        j.begin_obj();
        j.key("event").str_val("checkpoint");
        j.key("step").u64_val(step);
        j.key("path").str_val(path);
        j.end_obj();
        self.emit(&j.finish())
    }

    /// Writes the `end` record with the run's headline scalars and the
    /// final population hash.
    #[allow(clippy::too_many_arguments)]
    pub fn end(
        &mut self,
        seconds: f64,
        samples: u64,
        energy_mean: f64,
        energy_err: f64,
        acceptance: f64,
        walker_hash: u64,
    ) -> std::io::Result<()> {
        let mut j = JsonWriter::new();
        j.begin_obj();
        j.key("event").str_val("end");
        j.key("seconds").f64_val(seconds);
        j.key("samples").u64_val(samples);
        j.key("energy_mean").f64_val(energy_mean);
        j.key("energy_err").f64_val(energy_err);
        j.key("acceptance").f64_val(acceptance);
        j.key("walker_hash").str_val(&format!("{walker_hash:016x}"));
        j.end_obj();
        self.emit(&j.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn stream_lines_are_valid_json_records() {
        let dir = std::env::temp_dir();
        let path = dir.join("qmc_stream_test.ndjson");
        let path = path.to_str().expect("utf-8 temp path").to_string();
        let mut s = StreamWriter::create(&path).expect("create stream");
        s.start("dmc", "graphite", "current", "soa", 2, 4, 6, None)
            .expect("start");
        s.block(&BlockEvent {
            driver: "dmc",
            step: 1,
            steps_total: 6,
            population: 4,
            samples: 0,
            accepted: 10,
            attempted: 12,
            e_block: -1.5,
            e_trial: -1.4,
            weight: 4.0,
        })
        .expect("block");
        s.checkpoint(1, "ck.qmc").expect("checkpoint");
        s.end(0.25, 16, -1.5, 0.01, 0.9, 0xDEAD_BEEF).expect("end");
        drop(s);

        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let events: Vec<String> = lines
            .iter()
            .map(|l| {
                let v = parse(l).expect("line parses");
                v.get("event")
                    .and_then(|e| e.as_str())
                    .expect("has event")
                    .to_string()
            })
            .collect();
        assert_eq!(events, ["start", "block", "checkpoint", "end"]);
        let first = parse(lines[0]).expect("start parses");
        assert_eq!(
            first.get("schema").and_then(|s| s.as_str()),
            Some(RUN_STREAM_SCHEMA)
        );
        let last = parse(lines[3]).expect("end parses");
        assert_eq!(
            last.get("walker_hash").and_then(|s| s.as_str()),
            Some("00000000deadbeef")
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn vmc_nan_fields_serialize_as_null() {
        let dir = std::env::temp_dir();
        let path = dir.join("qmc_stream_nan_test.ndjson");
        let path = path.to_str().expect("utf-8 temp path").to_string();
        let mut s = StreamWriter::create(&path).expect("create stream");
        s.block(&BlockEvent {
            driver: "vmc",
            step: 1,
            steps_total: 2,
            population: 3,
            samples: 9,
            accepted: 1,
            attempted: 2,
            e_block: -0.5,
            e_trial: f64::NAN,
            weight: f64::NAN,
        })
        .expect("block");
        drop(s);
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.contains("\"e_trial\":null"), "{text}");
        parse(text.trim()).expect("null fields still parse");
        std::fs::remove_file(&path).ok();
    }
}
