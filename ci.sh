#!/usr/bin/env bash
# Full local CI gate: formatting, lints, release build, workspace tests
# and a smoke pass over the crowd kernel bench. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== qmclint (lexical + call-graph invariants, JSON gate) =="
cargo run --release -q -p qmclint -- --root . --json > QMCLINT.json
# Belt and braces: the exit code above already gates, but also refuse a
# report with any nonzero per-rule count, so a new diagnostic class can
# never slip through at nonzero volume.
grep -q '"diagnostics_total":0' QMCLINT.json
! grep -o '"by_rule":{[^}]*}' QMCLINT.json | grep -q ':[1-9]'
rm -f QMCLINT.json

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q --workspace

echo "== sanitizer tests (checked feature) =="
cargo test -q -p qmc-drivers --features checked

echo "== qmcsched (deterministic schedule parity, VMC + DMC) =="
cargo run --release -q -p qmcsched > /dev/null

echo "== bench snapshot (BENCH_pr5.json) =="
cargo run --release -q -p qmc-bench --bin bench_snapshot -- \
    --threads 2 --walkers 4 --steps 4 --reps 1 > BENCH_pr5.json
grep -q '"schema":"qmc-bench-snapshot/1"' BENCH_pr5.json

echo "== bench smoke (crowd kernels) =="
cargo bench -p qmc-bench --bench bench_crowd -- --test

echo "== run-report smoke (miniqmc --profile json) =="
./target/release/miniqmc --benchmark graphite --threads 1 --walkers 2 \
    --steps 4 --warmup 1 --profile json | ./target/release/json_check

echo "== run-report smoke (checked build: sanitizer live) =="
# Rebuild with the runtime invariant sanitizer compiled in; json_check
# exits nonzero if the report carries any sanitizer violations.
cargo build --release -q -p miniqmc --features checked
./target/release/miniqmc --benchmark graphite --threads 1 --walkers 2 \
    --steps 4 --warmup 1 --profile json | ./target/release/json_check

echo "CI OK"
