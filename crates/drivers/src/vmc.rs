//! Variational Monte Carlo driver (importance-sampled PbyP Metropolis).
//!
//! Used for equilibration, for validating the wavefunction machinery
//! against analytic systems, and as the lightweight counterpart of the DMC
//! driver in the benchmarks. Like DMC, the between-block state is factored
//! into [`VmcState`] so a run can checkpoint at a block boundary and
//! resume bitwise.

use crate::batching::Batching;
use crate::checkpoint::RunControl;
use crate::engine::QmcEngine;
use crate::estimator::ScalarEstimator;
use crate::walker::Walker;
use qmc_containers::Real;

/// VMC run parameters.
#[derive(Clone, Copy, Debug)]
pub struct VmcParams {
    /// Number of blocks (a from-scratch recompute happens per block).
    pub blocks: usize,
    /// PbyP sweeps per block per walker.
    pub steps_per_block: usize,
    /// Time step of the drifted Gaussian proposal.
    pub tau: f64,
    /// Measure the local energy every `measure_every` sweeps.
    pub measure_every: usize,
    /// Walker batching strategy (the crowd drive lives in `qmc-crowd`;
    /// [`run_vmc`] itself always executes per-walker).
    pub batching: Batching,
}

impl Default for VmcParams {
    fn default() -> Self {
        Self {
            blocks: 10,
            steps_per_block: 20,
            tau: 0.3,
            measure_every: 1,
            batching: Batching::PerWalker,
        }
    }
}

/// VMC run outcome.
pub struct VmcResult {
    /// Local-energy samples (one per measurement).
    pub energy: ScalarEstimator,
    /// Overall move acceptance ratio.
    pub acceptance: f64,
    /// Monte Carlo samples generated (walker-sweeps).
    pub samples: u64,
}

/// The complete between-block state of a VMC run — what
/// `qmc-checkpoint/1` serializes for the VMC driver (plus the walkers).
#[derive(Clone, Debug, Default)]
pub struct VmcState {
    /// Accumulated local-energy samples.
    pub energy: ScalarEstimator,
    /// Accepted single-particle moves so far.
    pub accepted: usize,
    /// Attempted single-particle moves so far.
    pub attempted: usize,
    /// Walker-sweeps so far.
    pub samples: u64,
    /// Completed blocks (the next block to execute).
    pub block: usize,
}

impl VmcState {
    /// Fresh state for a run starting at block 0.
    pub fn fresh() -> Self {
        Self::default()
    }

    /// Final result of the run this state accumulated.
    pub fn into_result(self) -> VmcResult {
        VmcResult {
            energy: self.energy,
            acceptance: if self.attempted > 0 {
                // qmclint: allow(precision-cast) — walker/step counts convert exactly to f64 for statistics.
                self.accepted as f64 / self.attempted as f64
            } else {
                0.0
            },
            samples: self.samples,
        }
    }
}

/// Runs VMC on one engine over a set of walkers.
pub fn run_vmc<T: Real>(
    engine: &mut QmcEngine<T>,
    walkers: &mut [Walker<T>],
    params: &VmcParams,
) -> VmcResult {
    run_vmc_controlled(engine, walkers, params, None, &mut RunControl::none())
}

/// [`run_vmc`] with checkpoint/resume control. When `resume` is `Some`,
/// walker initialization is skipped (the restored walkers carry their
/// buffers and RNG streams) and the block loop continues from
/// `state.block`, bitwise identical to an uninterrupted run.
pub fn run_vmc_controlled<T: Real>(
    engine: &mut QmcEngine<T>,
    walkers: &mut [Walker<T>],
    params: &VmcParams,
    resume: Option<VmcState>,
    control: &mut RunControl<'_>,
) -> VmcResult {
    qmc_instrument::enable_ftz();
    let mut state = if let Some(state) = resume {
        state
    } else {
        for w in walkers.iter_mut() {
            engine.init_walker(w);
        }
        VmcState::fresh()
    };

    while state.block < params.blocks {
        let block = state.block;
        let _block_span = qmc_instrument::span_lazy(0, || format!("vmc block {block}"));
        let samples_before = state.energy.len();
        for w in walkers.iter_mut() {
            engine.load_walker(w);
            // Per-block mixed-precision hygiene: recompute from scratch.
            engine.refresh_from_scratch();
            for step in 0..params.steps_per_block {
                let stats = engine.sweep(params.tau, &mut w.rng);
                state.accepted += stats.accepted;
                state.attempted += stats.attempted;
                state.samples += 1;
                if step % params.measure_every == 0 {
                    let el = engine.measure(&mut w.rng);
                    w.e_local = el.total();
                    qmc_instrument::check_finite(qmc_instrument::CheckKind::LocalEnergy, w.e_local);
                    state.energy.push(w.e_local, 1.0);
                }
            }
            engine.store_walker(w);
        }
        state.block += 1;
        control.after_vmc_block(&state, walkers, params, samples_before);
    }

    state.into_result()
}
