//! Diffusion Monte Carlo driver (Algorithm 1 of the paper).
//!
//! Particle-by-particle drift-diffusion sweeps, local-energy measurement,
//! walker reweighting, birth/death branching and trial-energy feedback.
//! [`run_dmc`] drives a single engine; the multithreaded version lives in
//! [`crate::parallel`].
//!
//! All driver variants (single-engine, thread crew, lock-step crowd) share
//! [`DmcState`]: the complete between-generation state of a run. A
//! checkpoint is nothing but a serialized `DmcState` plus the walker
//! population, and resuming is entering the generation loop with a
//! restored state instead of a fresh one — the same code path either way,
//! which is what makes restore bitwise rather than merely statistical.

use crate::batching::Batching;
use crate::branch::BranchController;
use crate::checkpoint::RunControl;
use crate::engine::QmcEngine;
use crate::estimator::ScalarEstimator;
use crate::reduce;
use crate::walker::Walker;
use qmc_containers::Real;

/// DMC run parameters.
#[derive(Clone, Copy, Debug)]
pub struct DmcParams {
    /// Monte Carlo generations (`M` in Algorithm 1).
    pub steps: usize,
    /// Generations discarded before statistics are taken.
    pub warmup: usize,
    /// Imaginary time step.
    pub tau: f64,
    /// Target walker population.
    pub target_population: usize,
    /// From-scratch wavefunction recompute cadence in generations
    /// (mixed-precision hygiene; 0 disables).
    pub recompute_every: usize,
    /// Master seed for the branching stream.
    pub seed: u64,
    /// Walker batching strategy (the crowd drive lives in `qmc-crowd`;
    /// [`run_dmc`] and [`crate::parallel::run_dmc_parallel`] themselves
    /// always execute per-walker).
    pub batching: Batching,
}

impl Default for DmcParams {
    fn default() -> Self {
        Self {
            steps: 100,
            warmup: 10,
            tau: 0.01,
            target_population: 16,
            recompute_every: 20,
            seed: 0xD31C,
            batching: Batching::PerWalker,
        }
    }
}

/// DMC run outcome.
pub struct DmcResult {
    /// Per-generation weighted mixed estimator of the energy.
    pub energy: ScalarEstimator,
    /// Population trace per generation.
    pub population: Vec<usize>,
    /// Overall acceptance ratio of single-particle moves.
    pub acceptance: f64,
    /// Monte Carlo samples generated (sum of populations over measured
    /// generations) — the numerator of the paper's throughput metric.
    pub samples: u64,
    /// Final trial energy.
    pub e_trial: f64,
    /// Trial energy after each generation's feedback update (the
    /// trajectory the run report serializes alongside `population`).
    pub e_trial_trace: Vec<f64>,
}

/// The complete between-generation state of a DMC run: everything besides
/// the walker population itself that the next generation depends on. This
/// is exactly what `qmc-checkpoint/1` serializes for the DMC driver.
#[derive(Clone, Debug)]
pub struct DmcState {
    /// Population controller (trial energy, feedback, private RNG).
    pub branch: BranchController,
    /// Accumulated per-generation energy estimator.
    pub energy: ScalarEstimator,
    /// Population trace per generation so far.
    pub population: Vec<usize>,
    /// Trial-energy trace per generation so far.
    pub e_trial_trace: Vec<f64>,
    /// Accepted single-particle moves so far.
    pub accepted: usize,
    /// Attempted single-particle moves so far.
    pub attempted: usize,
    /// Monte Carlo samples (post-warmup) so far.
    pub samples: u64,
    /// Completed generations (the next generation to execute).
    pub step: usize,
    /// Initial energy estimate (the `wsum <= 0` fallback, fixed at init).
    pub e0: f64,
}

impl DmcState {
    /// Fresh state for a run starting at generation 0 with initial energy
    /// estimate `e0` (the mean walker local energy after init).
    pub fn fresh(e0: f64, params: &DmcParams) -> Self {
        Self {
            branch: BranchController::new(params.target_population, e0, params.tau, params.seed),
            energy: ScalarEstimator::new(),
            population: Vec::with_capacity(params.steps),
            e_trial_trace: Vec::with_capacity(params.steps),
            accepted: 0,
            attempted: 0,
            samples: 0,
            step: 0,
            e0,
        }
    }

    /// Completes one generation: accumulates statistics, branches the
    /// population and applies the trial-energy feedback. This is the
    /// shared tail of every DMC driver variant (single-engine, parallel,
    /// crowd) — they must stay bitwise identical, so the logic lives once.
    /// Returns this generation's energy estimate.
    pub fn finish_generation<T: Real>(
        &mut self,
        walkers: &mut Vec<Walker<T>>,
        warmup: usize,
        esum: f64,
        wsum: f64,
        acc: usize,
        att: usize,
    ) -> f64 {
        self.accepted += acc;
        self.attempted += att;
        let e_avg = if wsum > 0.0 { esum / wsum } else { self.e0 };
        if self.step >= warmup {
            self.energy.push(e_avg, wsum);
            self.samples += walkers.len() as u64;
        }
        self.population.push(walkers.len());
        self.branch.branch(walkers);
        self.branch.update_trial_energy(e_avg, walkers.len());
        self.e_trial_trace.push(self.branch.e_trial);
        self.step += 1;
        e_avg
    }

    /// Final result of the run this state accumulated.
    pub fn into_result(self) -> DmcResult {
        DmcResult {
            energy: self.energy,
            population: self.population,
            acceptance: if self.attempted > 0 {
                // qmclint: allow(precision-cast) — walker/step counts convert exactly to f64 for statistics.
                self.accepted as f64 / self.attempted as f64
            } else {
                0.0
            },
            samples: self.samples,
            e_trial: self.branch.e_trial,
            e_trial_trace: self.e_trial_trace,
        }
    }
}

/// Runs DMC on one engine. `walkers` is consumed/regenerated by branching.
pub fn run_dmc<T: Real>(
    engine: &mut QmcEngine<T>,
    walkers: &mut Vec<Walker<T>>,
    params: &DmcParams,
) -> DmcResult {
    run_dmc_controlled(engine, walkers, params, None, &mut RunControl::none())
}

/// [`run_dmc`] with checkpoint/resume control. When `resume` is `Some`,
/// walker initialization is skipped entirely (the restored walkers carry
/// their buffers and RNG streams) and the generation loop continues from
/// `state.step`; the run is bitwise identical to one that never stopped.
pub fn run_dmc_controlled<T: Real>(
    engine: &mut QmcEngine<T>,
    walkers: &mut Vec<Walker<T>>,
    params: &DmcParams,
    resume: Option<DmcState>,
    control: &mut RunControl<'_>,
) -> DmcResult {
    qmc_instrument::enable_ftz();
    let mut state = if let Some(state) = resume {
        state
    } else {
        // Initialize fresh walkers and the trial energy.
        let mut e0_acc = 0.0;
        for w in walkers.iter_mut() {
            engine.init_walker(w);
            e0_acc += w.e_local;
        }
        let e0 = if walkers.is_empty() {
            0.0
        } else {
            // qmclint: allow(precision-cast) — walker/step counts convert exactly to f64 for statistics.
            e0_acc / walkers.len() as f64
        };
        DmcState::fresh(e0, params)
    };

    while state.step < params.steps {
        let step = state.step;
        let (mut acc, mut att) = (0usize, 0usize);
        for w in walkers.iter_mut() {
            engine.load_walker(w);
            if params.recompute_every > 0 && step % params.recompute_every == 0 {
                engine.refresh_from_scratch();
            }
            let stats = engine.sweep(params.tau, &mut w.rng);
            acc += stats.accepted;
            att += stats.attempted;
            let el = engine.measure(&mut w.rng).total();
            qmc_instrument::check_finite(qmc_instrument::CheckKind::LocalEnergy, el);
            let factor = state.branch.weight_factor(w.e_local, el);
            w.weight *= factor;
            w.age = if stats.accepted == 0 { w.age + 1 } else { 0 };
            w.e_local = el;
            engine.store_walker(w);
        }
        // Deterministic generation merge from the stored per-walker fields
        // — the same tree shape as every parallel driver variant, so the
        // branch controller sees bit-identical input across all of them.
        let esum = reduce::det_sum_by(walkers.len(), |i| walkers[i].weight * walkers[i].e_local);
        let wsum = reduce::det_sum_by(walkers.len(), |i| walkers[i].weight);
        let e_avg = state.finish_generation(walkers, params.warmup, esum, wsum, acc, att);
        control.after_dmc_generation(&state, walkers, params, e_avg, wsum);
    }

    state.into_result()
}
