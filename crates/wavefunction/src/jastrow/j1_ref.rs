//! Baseline one-body Jastrow: store-everything policy over the AB table.

// qmclint: allow-file(precision-cast) — the reference (AoS) Jastrow accumulates G/L in
// f64 by the paper's mixed-precision design: double accumulators over T-valued terms.
use crate::buffer::WalkerBuffer;
use crate::traits::WaveFunctionComponent;
use qmc_bspline::CubicBspline1D;
use qmc_containers::{Matrix, Pos, Real, TinyVector};
use qmc_instrument::{add_flops_bytes, time_kernel, Kernel};
use qmc_particles::ParticleSet;

/// Reference (AoS, stored) one-body Jastrow factor
/// `log psi = -sum_i sum_I u_{sp(I)}(|r_I - r_i|)`.
pub struct J1Ref<T: Real> {
    table: usize,
    /// Functor per ion group.
    functors: Vec<CubicBspline1D<T>>,
    /// `[start, end)` electron-table column range per ion group.
    ion_groups: Vec<std::ops::Range<usize>>,
    n: usize,
    nion: usize,
    u: Matrix<T>,
    du: Vec<Pos<T>>,
    d2u: Matrix<T>,
    cur_u: Vec<T>,
    cur_du: Vec<Pos<T>>,
    cur_d2u: Vec<T>,
    cur_delta: f64,
    log_value: f64,
}

impl<T: Real> J1Ref<T> {
    /// Builds the factor over AB table `table` (AoS layout) with one
    /// functor per ion group of `ions`.
    pub fn new(
        p: &ParticleSet<T>,
        ions: &ParticleSet<T>,
        table: usize,
        functors: Vec<CubicBspline1D<T>>,
    ) -> Self {
        assert_eq!(functors.len(), ions.num_groups());
        let n = p.len();
        let nion = ions.len();
        let ion_groups = (0..ions.num_groups())
            .map(|g| ions.group_range(g))
            .collect();
        Self {
            table,
            functors,
            ion_groups,
            n,
            nion,
            u: Matrix::zeros_unpadded(n, nion),
            du: vec![TinyVector::zero(); n * nion],
            d2u: Matrix::zeros_unpadded(n, nion),
            cur_u: vec![T::ZERO; nion],
            cur_du: vec![TinyVector::zero(); nion],
            cur_d2u: vec![T::ZERO; nion],
            cur_delta: 0.0,
            log_value: 0.0,
        }
    }

    fn functor_of_ion(&self, ion: usize) -> &CubicBspline1D<T> {
        for (g, r) in self.ion_groups.iter().enumerate() {
            if r.contains(&ion) {
                return &self.functors[g];
            }
        }
        unreachable!("ion index out of range")
    }

    fn compute_candidate(&mut self, p: &ParticleSet<T>, iat: usize) {
        let t = p.table(self.table).as_ab_ref();
        let dists = t.temp_dist();
        let disps = t.temp_displ();
        let mut delta = 0.0f64;
        for a in 0..self.nion {
            let f = self.functor_of_ion(a);
            let d = dists[a];
            if d < f.r_cut() {
                let (v, dv, d2v) = f.evaluate_vgl(d);
                let inv_d = T::ONE / d;
                self.cur_u[a] = v;
                self.cur_du[a] = -(disps[a] * (dv * inv_d));
                self.cur_d2u[a] = d2v + T::from_f64(2.0) * dv * inv_d;
            } else {
                self.cur_u[a] = T::ZERO;
                self.cur_du[a] = TinyVector::zero();
                self.cur_d2u[a] = T::ZERO;
            }
            delta += (self.cur_u[a] - self.u[(iat, a)]).to_f64();
        }
        self.cur_delta = delta;
    }
}

impl<T: Real> WaveFunctionComponent<T> for J1Ref<T> {
    fn name(&self) -> &'static str {
        "J1-ref"
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn evaluate_log(&mut self, p: &mut ParticleSet<T>) -> f64 {
        time_kernel(Kernel::J1, || {
            // qmclint: allow(hot-path) — reference-layout baseline allocates its G/L
            // staging per refresh; the SoA implementation is the allocation-free
            // production path.
            let mut gl = vec![(TinyVector::<f64, 3>::zero(), 0.0f64); self.n];
            let t = p.table(self.table).as_ab_ref();
            let mut logpsi = 0.0f64;
            for i in 0..self.n {
                let mut g = TinyVector::<f64, 3>::zero();
                let mut l = 0.0f64;
                for a in 0..self.nion {
                    let f = self.functor_of_ion(a);
                    let d = t.dist(i, a);
                    let (v, dv, d2v) = if d < f.r_cut() {
                        f.evaluate_vgl(d)
                    } else {
                        (T::ZERO, T::ZERO, T::ZERO)
                    };
                    let inv_d = T::ONE / d;
                    let lapt = d2v + T::from_f64(2.0) * dv * inv_d;
                    self.u[(i, a)] = v;
                    let grad_u = -(t.displ(i, a) * (dv * inv_d));
                    self.du[i * self.nion + a] = grad_u;
                    self.d2u[(i, a)] = lapt;
                    logpsi -= v.to_f64();
                    let gu: Pos<f64> = grad_u.cast();
                    g -= gu;
                    l -= lapt.to_f64();
                }
                gl[i] = (g, l);
            }
            for (i, (g, l)) in gl.into_iter().enumerate() {
                p.g[i] += g;
                p.l[i] += l;
            }
            self.log_value = logpsi;
            logpsi
        })
    }

    fn ratio(&mut self, p: &ParticleSet<T>, iat: usize) -> f64 {
        time_kernel(Kernel::J1, || {
            self.compute_candidate(p, iat);
            add_flops_bytes(
                Kernel::J1,
                (self.nion * 20) as u64,
                (self.nion * 10 * std::mem::size_of::<T>()) as u64,
            );
            (-self.cur_delta).exp()
        })
    }

    fn ratio_grad(&mut self, p: &ParticleSet<T>, iat: usize, grad: &mut Pos<f64>) -> f64 {
        time_kernel(Kernel::J1, || {
            self.compute_candidate(p, iat);
            let mut g = TinyVector::<f64, 3>::zero();
            for a in 0..self.nion {
                let d: Pos<f64> = self.cur_du[a].cast();
                g -= d;
            }
            *grad += g;
            (-self.cur_delta).exp()
        })
    }

    fn eval_grad(&mut self, _p: &ParticleSet<T>, iat: usize) -> Pos<f64> {
        let mut g = TinyVector::<f64, 3>::zero();
        for a in 0..self.nion {
            let d: Pos<f64> = self.du[iat * self.nion + a].cast();
            g -= d;
        }
        g
    }

    fn accept_move(&mut self, _p: &ParticleSet<T>, iat: usize) {
        time_kernel(Kernel::J1, || {
            self.log_value -= self.cur_delta;
            for a in 0..self.nion {
                self.u[(iat, a)] = self.cur_u[a];
                self.du[iat * self.nion + a] = self.cur_du[a];
                self.d2u[(iat, a)] = self.cur_d2u[a];
            }
        });
    }

    fn restore(&mut self, _iat: usize) {}

    fn accumulate_gl(&mut self, p: &mut ParticleSet<T>) {
        for i in 0..self.n {
            let mut g = TinyVector::<f64, 3>::zero();
            let mut l = 0.0f64;
            for a in 0..self.nion {
                let dia: Pos<f64> = self.du[i * self.nion + a].cast();
                g -= dia;
                l -= self.d2u[(i, a)].to_f64();
            }
            p.g[i] += g;
            p.l[i] += l;
        }
    }

    fn save_state(&mut self, buf: &mut WalkerBuffer<T>) {
        buf.put_matrix(&self.u);
        for d in 0..3 {
            for p in &self.du {
                buf.put_slice(&[p[d]]);
            }
        }
        buf.put_matrix(&self.d2u);
        buf.put_f64(self.log_value);
    }

    fn load_state(&mut self, buf: &mut WalkerBuffer<T>) {
        buf.get_matrix(&mut self.u);
        let mut x = [T::ZERO; 1];
        for d in 0..3 {
            for p in &mut self.du {
                buf.get_slice(&mut x);
                p[d] = x[0];
            }
        }
        buf.get_matrix(&mut self.d2u);
        self.log_value = buf.get_f64();
    }

    fn log_value(&self) -> f64 {
        self.log_value
    }

    fn bytes(&self) -> usize {
        self.u.bytes() + self.du.len() * std::mem::size_of::<Pos<T>>() + self.d2u.bytes()
    }
}
