//! AoSoA-tiled multi-spline tables: the paper's §8.4 future-work proposal.
//!
//! "Our previous work \[8\] demonstrated that tiling of the big B-spline
//! table and parallel execution over the array-of-SoA (AoSoA) objects can
//! reduce the time to complete a QMC step. We propose to extend those
//! ideas to full QMCPACK."
//!
//! A [`TiledMultiBspline3D`] splits the orbital dimension into fixed-width
//! tiles, each stored as its own contiguous [`MultiBspline3D`]. Two gains:
//!
//! * **Locality** — an evaluation walks 64 grid points per tile before
//!   moving on, so the working set per tile is `64 x tile_width` instead
//!   of `64 x num_splines`, keeping the stencil's coefficients in cache
//!   when the orbital count is large.
//! * **Parallelism** — tiles are independent, so one walker's SPO
//!   evaluation can fan out across threads ("fat loops over the electrons
//!   and ions are ideally suited to parallelize the computations for each
//!   walker"). [`TiledMultiBspline3D::evaluate_v_parallel`] does exactly
//!   that with rayon.

use crate::spline3d::MultiBspline3D;
use qmc_containers::Real;
use rayon::prelude::*;

/// A multi-spline table split into orbital tiles (AoSoA layout).
#[derive(Clone)]
pub struct TiledMultiBspline3D<T: Real> {
    tiles: Vec<MultiBspline3D<T>>,
    tile_width: usize,
    num_splines: usize,
    /// Tile-local gradient scratch (3 slabs of `tile_width`), reused across
    /// [`Self::evaluate_vgh`] calls so the per-step path stays allocation-free.
    scratch_tg: Vec<T>,
    /// Tile-local Hessian scratch (6 slabs of `tile_width`).
    scratch_th: Vec<T>,
}

impl<T: Real> TiledMultiBspline3D<T> {
    /// Builds a tiled table with seeded random coefficients; tile `t`
    /// holds orbitals `[t*w, min((t+1)*w, ns))`.
    pub fn random(grid: [usize; 3], num_splines: usize, tile_width: usize, seed: u64) -> Self {
        assert!(tile_width >= 1);
        let mut tiles = Vec::new();
        let mut first = 0;
        while first < num_splines {
            let w = tile_width.min(num_splines - first);
            tiles.push(MultiBspline3D::random(grid, w, seed ^ (first as u64)));
            first += w;
        }
        Self {
            tiles,
            tile_width,
            num_splines,
            scratch_tg: vec![T::ZERO; 3 * tile_width],
            scratch_th: vec![T::ZERO; 6 * tile_width],
        }
    }

    /// Builds a tiled view carrying the same values as a monolithic table
    /// filled from the same closure.
    pub fn from_fn(
        grid: [usize; 3],
        num_splines: usize,
        tile_width: usize,
        f: impl Fn(usize, usize, usize, usize) -> f64 + Sync + Copy,
    ) -> Self {
        assert!(tile_width >= 1);
        let mut tiles = Vec::new();
        let mut first = 0;
        while first < num_splines {
            let w = tile_width.min(num_splines - first);
            let mut t = MultiBspline3D::zeros(grid, w);
            t.set_control_points(move |ix, iy, iz, s| f(ix, iy, iz, first + s));
            tiles.push(t);
            first += w;
        }
        Self {
            tiles,
            tile_width,
            num_splines,
            scratch_tg: vec![T::ZERO; 3 * tile_width],
            scratch_th: vec![T::ZERO; 6 * tile_width],
        }
    }

    /// Number of orbitals.
    pub fn num_splines(&self) -> usize {
        self.num_splines
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Bytes of coefficient storage across tiles.
    pub fn bytes(&self) -> usize {
        self.tiles
            .iter()
            .map(super::spline3d::MultiBspline3D::bytes)
            .sum()
    }

    /// Serial tiled value evaluation: same result as the monolithic
    /// `evaluate_v`, different traversal order (tile-by-tile).
    pub fn evaluate_v(&self, u: [T; 3], psi: &mut [T]) {
        assert!(psi.len() >= self.num_splines);
        let mut first = 0;
        for tile in &self.tiles {
            let w = tile.num_splines();
            tile.evaluate_v(u, &mut psi[first..first + w]);
            first += w;
        }
    }

    /// Parallel tiled value evaluation: tiles fan out over the rayon pool
    /// (the AoSoA parallel execution of the paper's ref. 8).
    pub fn evaluate_v_parallel(&self, u: [T; 3], psi: &mut [T]) {
        assert!(psi.len() >= self.num_splines);
        let tile_width = self.tile_width;
        psi[..self.num_splines]
            .par_chunks_mut(tile_width)
            .zip(self.tiles.par_iter())
            .for_each(|(out, tile)| {
                tile.evaluate_v(u, out);
            });
    }

    /// Serial tiled VGH evaluation (slab strides follow the *caller's*
    /// `num_splines`, matching the monolithic convention).
    pub fn evaluate_vgh(&mut self, u: [T; 3], psi: &mut [T], grad: &mut [T], hess: &mut [T]) {
        let ns = self.num_splines;
        assert!(psi.len() >= ns && grad.len() >= 3 * ns && hess.len() >= 6 * ns);
        let mut first = 0;
        // Per-tile scratch (preallocated, tile-local slab strides), then
        // scatter into the caller's monolithic slabs.
        let Self {
            tiles,
            scratch_tg: tg,
            scratch_th: th,
            ..
        } = self;
        for tile in tiles.iter() {
            let w = tile.num_splines();
            tile.evaluate_vgh(
                u,
                &mut psi[first..first + w],
                &mut tg[..3 * w],
                &mut th[..6 * w],
            );
            for d in 0..3 {
                grad[d * ns + first..d * ns + first + w].copy_from_slice(&tg[d * w..(d + 1) * w]);
            }
            for h in 0..6 {
                hess[h * ns + first..h * ns + first + w].copy_from_slice(&th[h * w..(h + 1) * w]);
            }
            first += w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(ix: usize, iy: usize, iz: usize, s: usize) -> f64 {
        (ix as f64 * 0.3 + iy as f64 * 0.7 - iz as f64 * 0.2).sin() + 0.1 * s as f64
    }

    #[test]
    fn tiled_matches_monolithic_values() {
        let grid = [6, 6, 6];
        let ns = 10;
        let mut mono = MultiBspline3D::<f64>::zeros(grid, ns);
        mono.set_control_points(field);
        let tiled = TiledMultiBspline3D::<f64>::from_fn(grid, ns, 4, field);
        assert_eq!(tiled.num_tiles(), 3); // 4 + 4 + 2

        let (mut a, mut b, mut c) = (vec![0.0; ns], vec![0.0; ns], vec![0.0; ns]);
        for &u in &[[0.1, 0.5, 0.9], [0.77, 0.33, 0.21]] {
            mono.evaluate_v(u, &mut a);
            tiled.evaluate_v(u, &mut b);
            tiled.evaluate_v_parallel(u, &mut c);
            for s in 0..ns {
                assert!((a[s] - b[s]).abs() < 1e-13, "serial tile s={s}");
                assert!((a[s] - c[s]).abs() < 1e-13, "parallel tile s={s}");
            }
        }
    }

    #[test]
    fn tiled_vgh_matches_monolithic() {
        let grid = [5, 5, 5];
        let ns = 7;
        let mut mono = MultiBspline3D::<f64>::zeros(grid, ns);
        mono.set_control_points(field);
        let mut tiled = TiledMultiBspline3D::<f64>::from_fn(grid, ns, 3, field);

        let u = [0.4, 0.6, 0.8];
        let (mut pa, mut pb) = (vec![0.0; ns], vec![0.0; ns]);
        let (mut ga, mut gb) = (vec![0.0; 3 * ns], vec![0.0; 3 * ns]);
        let (mut ha, mut hb) = (vec![0.0; 6 * ns], vec![0.0; 6 * ns]);
        mono.evaluate_vgh(u, &mut pa, &mut ga, &mut ha);
        tiled.evaluate_vgh(u, &mut pb, &mut gb, &mut hb);
        for i in 0..ns {
            assert!((pa[i] - pb[i]).abs() < 1e-13);
        }
        for i in 0..3 * ns {
            assert!((ga[i] - gb[i]).abs() < 1e-12, "grad {i}");
        }
        for i in 0..6 * ns {
            assert!((ha[i] - hb[i]).abs() < 1e-11, "hess {i}");
        }
    }

    #[test]
    fn bytes_scale_with_tiles() {
        let t = TiledMultiBspline3D::<f32>::random([8, 8, 8], 20, 8, 1);
        assert_eq!(t.num_tiles(), 3);
        assert_eq!(t.num_splines(), 20);
        assert!(t.bytes() > 0);
    }
}
