//! Determinism and schedule-independence: per-walker RNG streams make
//! trajectories reproducible regardless of seed reuse or thread count.

use qmc::prelude::*;

fn cfg(threads: usize) -> RunConfig {
    RunConfig {
        threads,
        walkers: 4,
        steps: 5,
        warmup: 1,
        tau: 0.003,
        seed: 99,
    }
}

#[test]
fn identical_seeds_give_identical_energies() {
    let w = Workload::new(Benchmark::Graphite, Size::Scaled, 99);
    let a = run_dmc_benchmark(&w, CodeVersion::Current, &cfg(1));
    let b = run_dmc_benchmark(&w, CodeVersion::Current, &cfg(1));
    assert_eq!(a.energy.0, b.energy.0, "single-thread runs must be bitwise");
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.final_population, b.final_population);
}

#[test]
fn thread_count_does_not_change_the_markov_chains() {
    // Walkers carry their own RNG streams and branching is serialized, so
    // the trajectories are identical across crew sizes; only floating
    // accumulation order differs.
    let w = Workload::new(Benchmark::Graphite, Size::Scaled, 99);
    let a = run_dmc_benchmark(&w, CodeVersion::Current, &cfg(1));
    let b = run_dmc_benchmark(&w, CodeVersion::Current, &cfg(3));
    assert!(
        (a.energy.0 - b.energy.0).abs() < 1e-6 * (1.0 + a.energy.0.abs()),
        "1 thread {} vs 3 threads {}",
        a.energy.0,
        b.energy.0
    );
    assert_eq!(a.final_population, b.final_population);
}

#[test]
fn different_seeds_decorrelate() {
    let w1 = Workload::new(Benchmark::Graphite, Size::Scaled, 1);
    let w2 = Workload::new(Benchmark::Graphite, Size::Scaled, 1);
    let mut c1 = cfg(1);
    c1.seed = 1;
    let mut c2 = cfg(1);
    c2.seed = 2;
    let a = run_dmc_benchmark(&w1, CodeVersion::Current, &c1);
    let b = run_dmc_benchmark(&w2, CodeVersion::Current, &c2);
    assert_ne!(a.energy.0, b.energy.0);
}
