//! Runtime invariant sanitizer (the `checked` cargo feature).
//!
//! The static analyzer (`qmclint`) pins down *where* precision may be
//! narrowed and which paths must stay allocation-free; this module guards
//! the complementary *runtime* invariants: the numbers crossing the
//! physics accumulator boundaries — local energies, `log ψ`, branch
//! weights, the trial energy — must be finite, and the mixed-precision
//! `|Δ log ψ|` measured at from-scratch recomputes must stay under a
//! tolerance.
//!
//! The check functions are always compiled so call sites need no `cfg`
//! gates; without the `checked` feature they collapse to constant-true
//! no-ops the optimizer deletes. With the feature on, every check bumps a
//! lock-free counter pair (checks run / violations) that the drivers
//! capture into [`crate::RunReport`] — `json_check` fails CI when a run
//! reports violations.

use std::sync::atomic::{AtomicU64, Ordering};

/// The accumulator boundaries the sanitizer watches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckKind {
    /// Local energy `E_L` entering an estimator or reweighting factor.
    LocalEnergy = 0,
    /// `log ψ` from a fresh or incremental wavefunction evaluation.
    LogPsi = 1,
    /// DMC branch weight / reweighting factor.
    BranchWeight = 2,
    /// Trial energy after population feedback.
    TrialEnergy = 3,
    /// `|Δ log ψ|` at a from-scratch recompute exceeding the drift bound.
    Drift = 4,
}

/// Number of [`CheckKind`] categories.
pub const NUM_CHECKS: usize = 5;

/// Every category, in serialization order.
pub const ALL_CHECKS: [CheckKind; NUM_CHECKS] = [
    CheckKind::LocalEnergy,
    CheckKind::LogPsi,
    CheckKind::BranchWeight,
    CheckKind::TrialEnergy,
    CheckKind::Drift,
];

impl CheckKind {
    /// Stable label used in the run-report JSON.
    pub fn label(self) -> &'static str {
        match self {
            CheckKind::LocalEnergy => "local_energy",
            CheckKind::LogPsi => "log_psi",
            CheckKind::BranchWeight => "branch_weight",
            CheckKind::TrialEnergy => "trial_energy",
            CheckKind::Drift => "drift",
        }
    }
}

static CHECKS_RUN: [AtomicU64; NUM_CHECKS] = [const { AtomicU64::new(0) }; NUM_CHECKS];
static VIOLATIONS: [AtomicU64; NUM_CHECKS] = [const { AtomicU64::new(0) }; NUM_CHECKS];
// +inf bits: drift checking is off until a tolerance is set.
static DRIFT_TOL_BITS: AtomicU64 = AtomicU64::new(0x7FF0_0000_0000_0000);

/// True when this build carries the `checked` feature (the sanitizer
/// actually counts); false when every check is a no-op.
#[inline]
pub fn sanitizer_enabled() -> bool {
    cfg!(feature = "checked")
}

/// Asserts `value` is finite at an accumulator boundary. Returns whether
/// the value passed; always `true` (and does nothing) without the
/// `checked` feature.
#[inline]
pub fn check_finite(kind: CheckKind, value: f64) -> bool {
    if !cfg!(feature = "checked") {
        return true;
    }
    CHECKS_RUN[kind as usize].fetch_add(1, Ordering::Relaxed);
    if value.is_finite() {
        true
    } else {
        VIOLATIONS[kind as usize].fetch_add(1, Ordering::Relaxed);
        false
    }
}

/// Sets the `|Δ log ψ|` bound for [`check_drift`]. Pass
/// `f64::INFINITY` to disable (the default). Active even without the
/// `checked` feature so tests can configure before enabling a run.
pub fn set_drift_tolerance(tol: f64) {
    DRIFT_TOL_BITS.store(tol.to_bits(), Ordering::Relaxed);
}

/// Checks one from-scratch recompute's `|Δ log ψ|` against the configured
/// tolerance. A non-finite drift always violates. Returns whether the
/// value passed; always `true` without the `checked` feature.
#[inline]
pub fn check_drift(abs_delta: f64) -> bool {
    if !cfg!(feature = "checked") {
        return true;
    }
    CHECKS_RUN[CheckKind::Drift as usize].fetch_add(1, Ordering::Relaxed);
    let tol = f64::from_bits(DRIFT_TOL_BITS.load(Ordering::Relaxed));
    if abs_delta.is_finite() && abs_delta <= tol {
        true
    } else {
        VIOLATIONS[CheckKind::Drift as usize].fetch_add(1, Ordering::Relaxed);
        false
    }
}

/// Per-category sanitizer counters captured into the run report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SanitizerStats {
    /// Checks executed, indexed by `CheckKind as usize`.
    pub checks_run: [u64; NUM_CHECKS],
    /// Violations observed, same indexing.
    pub violations: [u64; NUM_CHECKS],
}

impl SanitizerStats {
    /// Total checks across every category.
    pub fn total_checks(&self) -> u64 {
        self.checks_run.iter().sum()
    }

    /// Total violations across every category.
    pub fn total_violations(&self) -> u64 {
        self.violations.iter().sum()
    }
}

/// Reads the counters without resetting them.
pub fn sanitizer_stats() -> SanitizerStats {
    let mut s = SanitizerStats::default();
    for k in 0..NUM_CHECKS {
        s.checks_run[k] = CHECKS_RUN[k].load(Ordering::Relaxed);
        s.violations[k] = VIOLATIONS[k].load(Ordering::Relaxed);
    }
    s
}

/// Takes and resets the counters. Drivers call this before a run (reset)
/// and after it (capture), mirroring [`crate::take_drift_stats`].
pub fn take_sanitizer_stats() -> SanitizerStats {
    let mut s = SanitizerStats::default();
    for k in 0..NUM_CHECKS {
        s.checks_run[k] = CHECKS_RUN[k].swap(0, Ordering::Relaxed);
        s.violations[k] = VIOLATIONS[k].swap(0, Ordering::Relaxed);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // The counters are process-global, so each test takes a snapshot
    // delta rather than assuming a clean slate.

    #[test]
    fn finite_values_never_violate() {
        let before = sanitizer_stats();
        assert!(check_finite(CheckKind::LocalEnergy, -14.5));
        assert!(check_finite(CheckKind::LogPsi, 3.0));
        let after = sanitizer_stats();
        assert_eq!(after.total_violations(), before.total_violations());
    }

    #[test]
    #[cfg(feature = "checked")]
    fn non_finite_values_are_counted() {
        let before = sanitizer_stats();
        assert!(!check_finite(CheckKind::BranchWeight, f64::NAN));
        assert!(!check_finite(CheckKind::TrialEnergy, f64::INFINITY));
        let after = sanitizer_stats();
        assert_eq!(
            after.violations[CheckKind::BranchWeight as usize]
                - before.violations[CheckKind::BranchWeight as usize],
            1
        );
        assert_eq!(
            after.violations[CheckKind::TrialEnergy as usize]
                - before.violations[CheckKind::TrialEnergy as usize],
            1
        );
    }

    #[test]
    #[cfg(feature = "checked")]
    fn drift_tolerance_gates_violations() {
        set_drift_tolerance(1e-6);
        let before = sanitizer_stats();
        assert!(check_drift(1e-9));
        assert!(!check_drift(1e-3));
        assert!(!check_drift(f64::NAN));
        set_drift_tolerance(f64::INFINITY);
        let after = sanitizer_stats();
        assert_eq!(
            after.violations[CheckKind::Drift as usize]
                - before.violations[CheckKind::Drift as usize],
            2
        );
    }

    #[test]
    #[cfg(not(feature = "checked"))]
    fn disabled_sanitizer_is_inert() {
        assert!(!sanitizer_enabled());
        assert!(check_finite(CheckKind::LocalEnergy, f64::NAN));
        assert!(check_drift(f64::INFINITY));
        assert_eq!(sanitizer_stats().total_checks(), 0);
    }
}
