//! `qmcsched` CLI: explores the schedule set and reports parity.
//!
//! ```text
//! qmcsched [--threads N] [--walkers N] [--steps N] [--seed N]
//! ```
//!
//! Prints the `qmcsched/1` JSON report on stdout and a one-line summary
//! per driver on stderr. Exit codes: 0 parity holds everywhere, 1 a
//! schedule changed some bit of some walker, 2 bad usage.

#![forbid(unsafe_code)]

fn main() {
    let mut cfg = qmcsched::HarnessConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> usize {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("qmcsched: {name} requires a number");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--threads" => cfg.threads = num("--threads").max(1),
            "--walkers" => cfg.walkers = num("--walkers").max(1),
            "--steps" => cfg.steps = num("--steps").max(1),
            "--seed" => cfg.seed = num("--seed") as u64,
            "--help" | "-h" => {
                eprintln!("usage: qmcsched [--threads N] [--walkers N] [--steps N] [--seed N]");
                std::process::exit(0);
            }
            other => {
                eprintln!("qmcsched: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    let results = qmcsched::explore_all(&cfg);
    println!("{}", qmcsched::render_json(&results));
    let mut ok = true;
    let simd_case = qmcsched::explore_simd_tolerance(&cfg);
    let simd_ok = simd_case.within_tolerance();
    ok &= simd_ok;
    eprintln!(
        "qmcsched: vmc-simd-tolerance: |{:+.6} - {:+.6}| <= {:.2e}: {}",
        simd_case.reference_energy,
        simd_case.simd_energy,
        simd_case.tolerance,
        if simd_ok { "OK" } else { "BROKEN" }
    );
    for r in &results {
        let parity = r.parity();
        ok &= parity;
        eprintln!(
            "qmcsched: {}: {} schedules explored, parity {}",
            r.driver,
            r.runs.len(),
            if parity { "OK" } else { "BROKEN" }
        );
        if !parity {
            for run in &r.runs {
                eprintln!(
                    "  {}: {} walkers, scalars {:016x}",
                    run.schedule,
                    run.walkers.len(),
                    run.scalars
                );
            }
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
