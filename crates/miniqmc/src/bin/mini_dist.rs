//! Distance-table kernel miniapp (§7.1): isolates the paper's top hot spot
//! and compares the baseline packed-triangle AoS table against the SoA
//! table with forward update + compute-on-the-fly rows, over a full
//! particle-by-particle move cycle.
//!
//! ```text
//! mini_dist --nel 384 --iters 100 --l 15.8
//! ```

use miniqmc::Options;
use qmc_containers::TinyVector;
use qmc_particles::{random_positions_in_cell, CrystalLattice, Layout, ParticleSet, Species};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

fn build(n: usize, l: f64, layout: Layout, seed: u64) -> (ParticleSet<f64>, usize) {
    let lat = CrystalLattice::cubic(l);
    let mut rng = StdRng::seed_from_u64(seed);
    let pos = random_positions_in_cell(&lat, n, &mut rng);
    let mut p = ParticleSet::new(
        "e",
        lat,
        vec![(
            Species {
                name: "u".into(),
                charge: -1.0,
            },
            pos,
        )],
    );
    let h = p.add_table_aa(layout);
    (p, h)
}

fn run_cycle(p: &mut ParticleSet<f64>, iters: usize, l: f64, seed: u64) -> f64 {
    let n = p.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let t0 = Instant::now();
    for _ in 0..iters {
        for iat in 0..n {
            p.prepare_move(iat);
            let newpos = TinyVector([
                rng.random::<f64>() * l,
                rng.random::<f64>() * l,
                rng.random::<f64>() * l,
            ]);
            p.make_move(iat, newpos);
            if rng.random::<f64>() < 0.5 {
                p.accept_move(iat);
            } else {
                p.reject_move(iat);
            }
        }
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    let opts = Options::from_env();
    let n = opts.get("nel", 384usize);
    let iters = opts.get("iters", 50usize);
    let l = opts.get("l", 15.8f64);
    let seed = opts.get("seed", 1u64);

    println!("mini_dist: N = {n}, iters = {iters}, cubic cell L = {l}");
    let moves = (n * iters) as f64;

    let (mut p_aos, _) = build(n, l, Layout::Aos, seed);
    let t_aos = run_cycle(&mut p_aos, iters, l, seed);
    println!(
        "AoS packed triangle  : {:>8.3} s  ({:>8.1} ns/move)",
        t_aos,
        t_aos / moves * 1e9
    );

    let (mut p_soa, _) = build(n, l, Layout::Soa, seed);
    let t_soa = run_cycle(&mut p_soa, iters, l, seed);
    println!(
        "SoA forward update   : {:>8.3} s  ({:>8.1} ns/move)",
        t_soa,
        t_soa / moves * 1e9
    );
    println!("speedup              : {:>8.2}x", t_aos / t_soa);

    // Correctness cross-check on a few pairs after identical move streams.
    let (mut a, ha) = build(n, l, Layout::Aos, seed + 9);
    let (mut s, hs) = build(n, l, Layout::Soa, seed + 9);
    run_cycle(&mut a, 1, l, 77);
    run_cycle(&mut s, 1, l, 77);
    let mut max_diff = 0.0f64;
    for i in 0..n.min(16) {
        s.prepare_move(i);
        let tr = a.table(ha).as_aa_ref();
        let ts = s.table(hs).as_aa_soa();
        for j in 0..n {
            if i != j {
                max_diff = max_diff.max((tr.dist(i, j) - ts.dist_row(i)[j]).abs());
            }
        }
    }
    println!("cross-check max |d_aos - d_soa| = {max_diff:.2e}");
    assert!(max_diff < 1e-9, "layout mismatch");
}
