//! Minimal offline stand-in for `rayon`.
//!
//! Provides the tiny slice-parallelism surface the workspace uses
//! (`par_chunks_mut().enumerate().for_each`, `par_chunks_mut().zip(par_iter())
//! .for_each`) plus the scoped task API (`scope(|s| s.spawn(...))`) on top
//! of `std::thread::scope`. Work is split into one contiguous block per
//! hardware thread; closures must be `Sync` exactly as with real rayon, so
//! swapping the registry crate back in is a one-line manifest change.
//!
//! Unlike real rayon, every parallel construct routes its task set through
//! [`schedule::run_tasks`], so the `qmcsched` harness can replace the free
//! OS interleaving with explicitly enumerated deterministic schedules (see
//! [`schedule`]).

// Vendored stand-in: the API shape (names, signatures, by-value arguments)
// mirrors the external crate verbatim, so pedantic style lints don't apply.
#![allow(clippy::pedantic)]
#![forbid(unsafe_code)]

pub mod schedule;

/// The scoped-spawn entry points this shim exposes, re-stated as data.
/// `qmclint`'s spawn-site scanner recognizes parallel closures lexically
/// (this crate is lint-exempt), so its `config::SPAWN_METHODS` list must
/// mirror the real API surface — the mirror test below pins the two
/// together. Extending the spawn API without extending both lists is a
/// test failure, not a silent analysis gap.
pub const SPAWN_METHODS: [&str; 1] = ["spawn"];

/// The parallel-iterator adapters this shim exposes, mirrored by
/// `qmclint`'s `config::PAR_ITER_METHODS` the same way.
pub const PAR_ITER_METHODS: [&str; 2] = ["par_chunks_mut", "par_iter"];

/// A scoped task set, after `rayon::Scope`: tasks spawned here are
/// guaranteed to complete before [`scope`] returns.
///
/// Tasks are collected and launched together when the scope closure
/// returns, so the active [`schedule::Schedule`] sees the whole task set at
/// once (real rayon starts them eagerly; none of our call sites observe the
/// difference — the spawning loop does no other work).
pub struct Scope<'scope> {
    tasks: std::cell::RefCell<Vec<Box<dyn FnOnce() + Send + 'scope>>>,
}

impl<'scope> Scope<'scope> {
    /// Queues `body` for execution within this scope.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.tasks.borrow_mut().push(Box::new(body));
    }
}

/// Creates a scope for spawning borrowing tasks; all spawned tasks finish
/// before the call returns. Mirrors `rayon::scope` for the no-argument
/// closure shape the workspace uses.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let s = Scope {
        tasks: std::cell::RefCell::new(Vec::new()),
    };
    let r = f(&s);
    schedule::run_tasks(s.tasks.into_inner());
    r
}

/// An eagerly collected "parallel iterator": items are distributed over a
/// scoped thread crew at the terminal `for_each`.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn zip<J: Send>(self, other: ParIter<J>) -> ParIter<(I, J)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        let n = self.items.len();
        let threads = std::thread::available_parallelism()
            .map_or(1, std::num::NonZero::get)
            .min(n.max(1));
        if threads <= 1 {
            for item in self.items {
                f(item);
            }
            return;
        }
        let block = n.div_ceil(threads);
        let mut blocks: Vec<Vec<I>> = Vec::with_capacity(threads);
        let mut items = self.items;
        while !items.is_empty() {
            let tail = items.split_off(items.len().min(block));
            blocks.push(std::mem::replace(&mut items, tail));
        }
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = blocks
            .into_iter()
            .map(|block| {
                Box::new(move || {
                    for item in block {
                        f(item);
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        schedule::run_tasks(tasks);
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

pub trait IntoParallelRefIterator<'data> {
    type Item: Send + 'data;
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn spawn_api_mirrors_qmclint_config() {
        // The linter models spawn sites lexically; this is the pin that
        // keeps its method lists equal to the API this shim actually
        // exposes.
        assert_eq!(crate::SPAWN_METHODS, qmclint::config::SPAWN_METHODS);
        assert_eq!(crate::PAR_ITER_METHODS, qmclint::config::PAR_ITER_METHODS);
    }

    #[test]
    fn chunked_fill_covers_everything() {
        let mut data = vec![0u64; 1013];
        data.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 64 + j) as u64;
            }
        });
        for (k, &v) in data.iter().enumerate() {
            assert_eq!(v, k as u64);
        }
    }

    #[test]
    fn zip_pairs_in_order() {
        let tags: Vec<usize> = (0..10).collect();
        let mut out = vec![0usize; 40];
        out.par_chunks_mut(4)
            .zip(tags.par_iter())
            .for_each(|(chunk, &tag)| {
                for v in chunk.iter_mut() {
                    *v = tag;
                }
            });
        for (k, &v) in out.iter().enumerate() {
            assert_eq!(v, k / 4);
        }
    }
}
