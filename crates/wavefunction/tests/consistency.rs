//! Cross-implementation consistency tests: every optimized (SoA,
//! compute-on-the-fly, mixed-precision, delayed-update) component must
//! reproduce its reference twin, and analytic derivatives must match finite
//! differences of the log wavefunction.

use qmc_bspline::CubicBspline1D;
use qmc_containers::{Pos, TinyVector};
use qmc_particles::{CrystalLattice, Layout, ParticleSet, Species};
use qmc_wavefunction::{
    traits::WaveFunctionComponent, CosineSpo, DetUpdateMode, DiracDeterminant, J1Ref, J1Soa, J2Ref,
    J2Soa, PairFunctors, TrialWaveFunction,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const L: f64 = 8.0;

fn functor(cusp: f64, rcut: f64) -> CubicBspline1D<f64> {
    CubicBspline1D::fit(
        move |r| -cusp * rcut / 3.0 * (1.0 - r / rcut).powi(2) * (-0.6 * r).exp(),
        cusp,
        rcut,
        10,
    )
}

fn pair_functors() -> PairFunctors<f64> {
    PairFunctors::new(2, |a, b| functor(if a == b { -0.25 } else { -0.5 }, 3.5))
}

fn ion_functors() -> Vec<CubicBspline1D<f64>> {
    vec![functor(-1.2, 3.0), functor(-0.7, 2.5)]
}

fn make_electrons(n: usize, seed: u64) -> ParticleSet<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let lat = CrystalLattice::cubic(L);
    let mut pos = |k: usize| -> Vec<Pos<f64>> {
        (0..k)
            .map(|_| {
                TinyVector([
                    rng.random::<f64>() * L,
                    rng.random::<f64>() * L,
                    rng.random::<f64>() * L,
                ])
            })
            .collect()
    };
    let up = pos(n / 2);
    let dn = pos(n - n / 2);
    ParticleSet::new(
        "e",
        lat,
        vec![
            (
                Species {
                    name: "u".into(),
                    charge: -1.0,
                },
                up,
            ),
            (
                Species {
                    name: "d".into(),
                    charge: -1.0,
                },
                dn,
            ),
        ],
    )
}

fn make_ions() -> ParticleSet<f64> {
    let lat = CrystalLattice::cubic(L);
    ParticleSet::new(
        "ion0",
        lat,
        vec![
            (
                Species {
                    name: "Ni".into(),
                    charge: 18.0,
                },
                vec![
                    TinyVector([0.5, 0.5, 0.5]),
                    TinyVector([L / 2.0, L / 2.0, 0.7]),
                ],
            ),
            (
                Species {
                    name: "O".into(),
                    charge: 6.0,
                },
                vec![TinyVector([L / 2.0, 0.3, L / 2.0])],
            ),
        ],
    )
}

/// Runs a full PbyP sweep with mixed accept/reject on two component stacks
/// attached to the same particle set and asserts ratio/gradient parity.
fn parity_sweep(
    p: &mut ParticleSet<f64>,
    a: &mut dyn WaveFunctionComponent<f64>,
    b: &mut dyn WaveFunctionComponent<f64>,
    tol: f64,
    seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let log_a = a.evaluate_log(p);
    {
        // separate scope: evaluate_log needs &mut p
    }
    let log_b = b.evaluate_log(p);
    assert!(
        (log_a - log_b).abs() < tol,
        "evaluate_log: {log_a} vs {log_b}"
    );
    let n = p.len();
    for sweep in 0..2 {
        for iat in 0..n {
            let ga = a.eval_grad(p, iat);
            let gb = b.eval_grad(p, iat);
            assert!(
                (ga - gb).norm() < tol * 10.0,
                "sweep {sweep} eval_grad[{iat}]: {ga:?} vs {gb:?}"
            );
            let newpos = p.pos(iat)
                + TinyVector([
                    0.6 * (rng.random::<f64>() - 0.5),
                    0.6 * (rng.random::<f64>() - 0.5),
                    0.6 * (rng.random::<f64>() - 0.5),
                ]);
            p.prepare_move(iat);
            p.make_move(iat, newpos);
            let mut grad_a = TinyVector::zero();
            let mut grad_b = TinyVector::zero();
            let ra = a.ratio_grad(p, iat, &mut grad_a);
            let rb = b.ratio_grad(p, iat, &mut grad_b);
            assert!(
                (ra - rb).abs() < tol * (1.0 + ra.abs()),
                "sweep {sweep} ratio[{iat}]: {ra} vs {rb}"
            );
            assert!(
                (grad_a - grad_b).norm() < tol * 10.0,
                "sweep {sweep} ratio_grad[{iat}]"
            );
            if rng.random::<f64>() < 0.6 {
                a.accept_move(p, iat);
                b.accept_move(p, iat);
                p.accept_move(iat);
            } else {
                a.restore(iat);
                b.restore(iat);
                p.reject_move(iat);
            }
        }
    }
    // Incrementally maintained log values agree with each other and with a
    // fresh evaluation.
    let la = a.log_value();
    let lb = b.log_value();
    assert!((la - lb).abs() < tol * 100.0, "final logs: {la} vs {lb}");
    p.update_tables();
    let fresh = a.evaluate_log(p);
    let fresh_b = b.evaluate_log(p);
    assert!((fresh - fresh_b).abs() < tol * 100.0);
    assert!(
        (la - fresh).abs() < tol * 100.0,
        "incremental {la} vs fresh {fresh}"
    );
}

#[test]
fn j2_ref_and_soa_agree_through_sweeps() {
    let mut p = make_electrons(10, 3);
    let h_aos = p.add_table_aa(Layout::Aos);
    let h_soa = p.add_table_aa(Layout::Soa);
    let mut jref = J2Ref::new(&p, h_aos, pair_functors());
    let mut jsoa = J2Soa::new(&p, h_soa, pair_functors());
    parity_sweep(&mut p, &mut jref, &mut jsoa, 1e-9, 17);
}

#[test]
fn j1_ref_and_soa_agree_through_sweeps() {
    let ions = make_ions();
    let mut p = make_electrons(8, 5);
    let h_aos = p.add_table_ab(&ions, Layout::Aos);
    let h_soa = p.add_table_ab(&ions, Layout::Soa);
    let mut jref = J1Ref::new(&p, &ions, h_aos, ion_functors());
    let mut jsoa = J1Soa::new(&p, &ions, h_soa, ion_functors());
    parity_sweep(&mut p, &mut jref, &mut jsoa, 1e-9, 29);
}

/// Finite-difference check of gradient and Laplacian accumulated by
/// `evaluate_log` for an arbitrary component constructor.
type ComponentBuilder = dyn Fn(&ParticleSet<f64>) -> Box<dyn WaveFunctionComponent<f64>>;

fn check_gl_finite_difference(
    build: &ComponentBuilder,
    attach: &dyn Fn(&mut ParticleSet<f64>),
    n: usize,
    tol_g: f64,
    tol_l: f64,
) {
    let mut p = make_electrons(n, 11);
    attach(&mut p);
    let mut c = build(&p);
    c.evaluate_log(&mut p);
    let g0 = p.g.clone();
    let l0 = p.l.clone();

    let logpsi_at = |positions: &[Pos<f64>]| -> f64 {
        let mut q = make_electrons(n, 11);
        attach(&mut q);
        q.load_positions(positions);
        let mut cc = build(&q);
        cc.evaluate_log(&mut q)
    };

    let mut base = vec![TinyVector::zero(); n];
    p.store_positions(&mut base);
    let eps = 1e-5;
    for iat in [0usize, n / 2, n - 1] {
        let mut lap_fd = 0.0;
        let f0 = logpsi_at(&base);
        for d in 0..3 {
            let mut rp = base.clone();
            rp[iat][d] += eps;
            let mut rm = base.clone();
            rm[iat][d] -= eps;
            let fp = logpsi_at(&rp);
            let fm = logpsi_at(&rm);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (g0[iat][d] - fd).abs() < tol_g * (1.0 + fd.abs()),
                "grad[{iat}][{d}]: {} vs {fd}",
                g0[iat][d]
            );
            lap_fd += (fp - 2.0 * f0 + fm) / (eps * eps);
        }
        assert!(
            (l0[iat] - lap_fd).abs() < tol_l * (1.0 + lap_fd.abs()),
            "lap[{iat}]: {} vs {lap_fd}",
            l0[iat]
        );
    }
}

#[test]
fn j2_soa_gradient_laplacian_finite_difference() {
    check_gl_finite_difference(
        &|p| Box::new(J2Soa::new(p, 0, pair_functors())),
        &|p| {
            p.add_table_aa(Layout::Soa);
        },
        8,
        1e-5,
        1e-3,
    );
}

#[test]
fn j1_soa_gradient_laplacian_finite_difference() {
    let ions = make_ions();
    let ions2 = make_ions();
    check_gl_finite_difference(
        &move |p| Box::new(J1Soa::new(p, &ions, 0, ion_functors())),
        &move |p| {
            p.add_table_ab(&ions2, Layout::Soa);
        },
        6,
        1e-5,
        1e-3,
    );
}

#[test]
fn determinant_gradient_laplacian_finite_difference() {
    check_gl_finite_difference(
        &|_p| {
            Box::new(DiracDeterminant::new(
                Box::new(CosineSpo::<f64>::new(4, [L, L, L])),
                0,
                4,
                DetUpdateMode::ShermanMorrison,
            ))
        },
        &|_p| {},
        8,
        1e-4,
        1e-2,
    );
}

#[test]
fn determinant_sm_and_delayed_agree() {
    let mut p = make_electrons(12, 7);
    p.add_table_aa(Layout::Soa); // keeps prepare_move exercised
    let spo = || Box::new(CosineSpo::<f64>::new(6, [L, L, L]));
    let mut d_sm = DiracDeterminant::new(spo(), 0, 6, DetUpdateMode::ShermanMorrison);
    let mut d_dl = DiracDeterminant::new(spo(), 0, 6, DetUpdateMode::Delayed(3));
    parity_sweep(&mut p, &mut d_sm, &mut d_dl, 1e-8, 43);
}

#[test]
fn determinant_ratio_matches_log_difference() {
    let n = 8;
    let mut p = make_electrons(n, 13);
    let spo = Box::new(CosineSpo::<f64>::new(4, [L, L, L]));
    let mut det = DiracDeterminant::new(spo, 0, 4, DetUpdateMode::ShermanMorrison);
    let log0 = det.evaluate_log(&mut p);
    let iat = 2;
    let newpos = p.pos(iat) + TinyVector([0.4, -0.3, 0.2]);
    p.make_move(iat, newpos);
    let ratio = det.ratio(&p, iat);
    det.accept_move(&p, iat);
    p.accept_move(iat);
    let log1 = det.evaluate_log(&mut p);
    assert!(
        (ratio.abs().ln() - (log1 - log0)).abs() < 1e-9,
        "ln|ratio| {} vs dlog {}",
        ratio.abs().ln(),
        log1 - log0
    );
}

#[test]
fn determinant_moves_outside_range_are_identity() {
    let n = 8;
    let mut p = make_electrons(n, 19);
    // Determinant covers only the "up" electrons 0..4.
    let spo = Box::new(CosineSpo::<f64>::new(4, [L, L, L]));
    let mut det = DiracDeterminant::new(spo, 0, 4, DetUpdateMode::ShermanMorrison);
    det.evaluate_log(&mut p);
    let log0 = det.log_value();
    let iat = 6; // a "down" electron
    p.make_move(iat, p.pos(iat) + TinyVector([0.5, 0.5, 0.5]));
    assert_eq!(det.ratio(&p, iat), 1.0);
    assert_eq!(det.eval_grad(&p, iat), TinyVector::zero());
    det.accept_move(&p, iat);
    p.accept_move(iat);
    assert_eq!(det.log_value(), log0);
}

#[test]
fn mixed_precision_tracks_double_through_sweep() {
    // f32 stack must track the f64 stack to single-precision accuracy.
    let n = 10;
    let mut p64 = make_electrons(n, 23);
    let h64 = p64.add_table_aa(Layout::Soa);
    let mut j64 = J2Soa::new(&p64, h64, pair_functors());

    let mut base = vec![TinyVector::zero(); n];
    p64.store_positions(&mut base);

    let lat32: CrystalLattice<f32> = CrystalLattice::cubic(L);
    let mut p32 = ParticleSet::<f32>::new(
        "e",
        lat32,
        vec![
            (
                Species {
                    name: "u".into(),
                    charge: -1.0,
                },
                base[..n / 2].to_vec(),
            ),
            (
                Species {
                    name: "d".into(),
                    charge: -1.0,
                },
                base[n / 2..].to_vec(),
            ),
        ],
    );
    let h32 = p32.add_table_aa(Layout::Soa);
    let pf32 = PairFunctors::new(2, |a, b| {
        functor(if a == b { -0.25 } else { -0.5 }, 3.5).cast::<f32>()
    });
    let mut j32 = J2Soa::new(&p32, h32, pf32);

    let l64 = j64.evaluate_log(&mut p64);
    let l32 = j32.evaluate_log(&mut p32);
    assert!((l64 - l32).abs() < 1e-3, "{l64} vs {l32}");

    let mut rng = StdRng::seed_from_u64(31);
    for iat in 0..n {
        let delta = TinyVector([
            0.4 * (rng.random::<f64>() - 0.5),
            0.4 * (rng.random::<f64>() - 0.5),
            0.4 * (rng.random::<f64>() - 0.5),
        ]);
        let np64 = p64.pos(iat) + delta;
        let np32: Pos<f32> = np64.cast();
        p64.prepare_move(iat);
        p64.make_move(iat, np64);
        p32.prepare_move(iat);
        p32.make_move(iat, np32);
        let r64 = j64.ratio(&p64, iat);
        let r32 = j32.ratio(&p32, iat);
        assert!(
            (r64 - r32).abs() < 1e-3 * (1.0 + r64.abs()),
            "{r64} vs {r32}"
        );
        j64.accept_move(&p64, iat);
        j32.accept_move(&p32, iat);
        p64.accept_move(iat);
        p32.accept_move(iat);
    }
    assert!((j64.log_value() - j32.log_value()).abs() < 1e-2);
}

#[test]
fn trial_wavefunction_composes_ratios_and_logs() {
    let ions = make_ions();
    let n = 8;
    let mut p = make_electrons(n, 37);
    let h_aa = p.add_table_aa(Layout::Soa);
    let h_ab = p.add_table_ab(&ions, Layout::Soa);

    let mut psi = TrialWaveFunction::new();
    psi.add(Box::new(J2Soa::new(&p, h_aa, pair_functors())));
    psi.add(Box::new(J1Soa::new(&p, &ions, h_ab, ion_functors())));
    psi.add(Box::new(DiracDeterminant::new(
        Box::new(CosineSpo::<f64>::new(n / 2, [L, L, L])),
        0,
        n / 2,
        DetUpdateMode::ShermanMorrison,
    )));
    psi.add(Box::new(DiracDeterminant::new(
        Box::new(CosineSpo::<f64>::new(n / 2, [L, L, L])),
        n / 2,
        n / 2,
        DetUpdateMode::ShermanMorrison,
    )));

    let log0 = psi.evaluate_log(&mut p);
    assert_eq!(psi.num_components(), 4);

    // Move one electron; the product ratio must match the full-log change.
    let iat = 3;
    let newpos = p.pos(iat) + TinyVector([0.3, 0.1, -0.2]);
    p.prepare_move(iat);
    p.make_move(iat, newpos);
    let (ratio, _grad) = psi.calc_ratio_grad(&p, iat);
    psi.accept_move(&p, iat);
    p.accept_move(iat);
    let log1 = psi.evaluate_log(&mut p);
    assert!(
        (ratio.abs().ln() - (log1 - log0)).abs() < 1e-8,
        "ln|ratio| {} vs dlog {}",
        ratio.abs().ln(),
        log1 - log0
    );
    // Incremental log matches fresh log.
    assert!((psi.log_value() - log1).abs() < 1e-8);
}
