//! [`Crowd`]: a batch of engines advancing walkers in lock-step.

use qmc_containers::{Pos, Real, TinyVector};
use qmc_drivers::{limited_drift, QmcEngine, SweepStats, Walker};
use qmc_particles::{gaussian_pos, ParticleSet};
use qmc_wavefunction::TrialWaveFunction;
use rand::RngExt;

/// A crowd: `crowd_size` compute engines that advance up to `crowd_size`
/// walkers through the PbyP sweep together, one electron at a time, so
/// every stage presents a multi-walker batch to the wavefunction layer
/// (`TrialWaveFunction::mw_*`) and, through it, to the batched leaf
/// kernels.
///
/// Each walker keeps its private RNG stream and its floating-point op
/// sequence is exactly that of [`QmcEngine::sweep`], so results are
/// bit-identical to per-walker execution for any crowd size.
pub struct Crowd<T: Real> {
    slots: Vec<QmcEngine<T>>,
    fused_refresh: bool,
}

impl<T: Real> Crowd<T> {
    /// Builds a crowd from its slot engines (one walker per slot).
    pub fn new(slots: Vec<QmcEngine<T>>) -> Self {
        assert!(!slots.is_empty(), "a crowd needs at least one engine");
        Self {
            slots,
            fused_refresh: false,
        }
    }

    /// Enables the fused block refresh: block-boundary recomputes go
    /// through [`TrialWaveFunction::mw_evaluate_log`], whose determinant
    /// stage drives the multi-walker SPO kernel (`Bspline-mw-vgl`). Off by
    /// default because the fused spline kernel regroups floating point, so
    /// it trades the crowd's bitwise parity with the per-walker drivers
    /// for batched throughput.
    pub fn set_fused_refresh(&mut self, fused: bool) {
        self.fused_refresh = fused;
    }

    /// Whether block refreshes use the fused batched path.
    pub fn fused_refresh(&self) -> bool {
        self.fused_refresh
    }

    /// Walkers this crowd advances per lock-step block.
    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// The engine of slot `s`.
    pub fn slot_mut(&mut self, s: usize) -> &mut QmcEngine<T> {
        &mut self.slots[s]
    }

    /// Per-walker internal storage of one slot engine (memory ledger).
    pub fn engine_bytes(&self) -> usize {
        self.slots[0].bytes()
    }

    /// Splits the first `nw` slots into parallel `mw_*` argument lists:
    /// walker `w`'s wavefunction and (shared) particle set.
    fn split_psi_pset(
        slots: &mut [QmcEngine<T>],
    ) -> (Vec<&mut TrialWaveFunction<T>>, Vec<&ParticleSet<T>>) {
        let mut psis = Vec::with_capacity(slots.len());
        let mut psets = Vec::with_capacity(slots.len());
        for e in slots.iter_mut() {
            let QmcEngine { pset, psi, .. } = e;
            psis.push(psi);
            psets.push(&*pset);
        }
        (psis, psets)
    }

    /// Block-boundary mixed-precision refresh for the first `nw` loaded
    /// slots: the batched analogue of calling
    /// [`QmcEngine::refresh_from_scratch`] per slot, with the same
    /// finiteness check and `mp_drift` bookkeeping per walker. With
    /// [`Self::set_fused_refresh`] enabled it reroutes the determinant's
    /// orbital rows through the multi-walker SPO kernel; otherwise it
    /// delegates to the bit-identical per-slot path.
    pub fn refresh_block(&mut self, nw: usize) {
        assert!(nw <= self.slots.len(), "more walkers than crowd slots");
        if !self.fused_refresh {
            for e in &mut self.slots[..nw] {
                e.refresh_from_scratch();
            }
            return;
        }
        let mut before = Vec::with_capacity(nw);
        let mut psis = Vec::with_capacity(nw);
        let mut psets = Vec::with_capacity(nw);
        for e in &mut self.slots[..nw] {
            before.push(e.psi.log_value());
            let QmcEngine { pset, psi, .. } = e;
            psis.push(psi);
            psets.push(pset);
        }
        let mut logs = vec![0.0; nw];
        TrialWaveFunction::mw_evaluate_log(&mut psis, &mut psets, &mut logs);
        for (&after, &bef) in logs.iter().zip(before.iter()) {
            qmc_instrument::check_finite(qmc_instrument::CheckKind::LogPsi, after);
            if bef.is_finite() && after.is_finite() {
                qmc_instrument::record_refresh_drift((after - bef).abs());
            }
        }
    }

    /// One lock-step drift-diffusion sweep over the loaded walkers
    /// (`walkers[s]` must be resident in slot `s`). Returns per-slot
    /// statistics, in slot order.
    ///
    /// The stage structure per electron `iat` is: batched gradient at the
    /// current position, per-slot drifted-Gaussian proposal (private RNG
    /// streams), batched ratio+gradient at the proposed position,
    /// per-slot Metropolis decision (fixed-node rejections draw no
    /// randoms, as in the scalar sweep), then batched component
    /// accept/restore followed by the particle-set resolutions.
    pub fn sweep(&mut self, walkers: &mut [Walker<T>], tau: f64) -> Vec<SweepStats> {
        let nw = walkers.len();
        assert!(nw <= self.slots.len(), "more walkers than crowd slots");
        let mut stats = vec![SweepStats::default(); nw];
        if nw == 0 {
            return stats;
        }
        let sqrt_tau = tau.sqrt();
        let n = self.slots[0].pset.len();

        let mut g: Vec<Pos<f64>> = vec![TinyVector::zero(); nw];
        let mut ratios: Vec<f64> = vec![1.0; nw];
        let mut oldpos: Vec<Pos<f64>> = vec![TinyVector::zero(); nw];
        let mut newpos: Vec<Pos<f64>> = vec![TinyVector::zero(); nw];
        let mut chi: Vec<Pos<f64>> = vec![TinyVector::zero(); nw];
        let mut npt: Vec<Pos<T>> = vec![TinyVector::zero(); nw];
        let mut accept = vec![false; nw];

        for iat in 0..n {
            // Stage A: batched row refresh + gradient at the current
            // position. The distance-table rows of the whole crowd are
            // refreshed back-to-back (one timer scope, bitwise identical per
            // walker) instead of interleaved with each walker's much larger
            // wavefunction working set — the source of the crowd-vs-
            // per-walker DistTable-AA regression.
            {
                let mut psets: Vec<&mut ParticleSet<T>> =
                    self.slots[..nw].iter_mut().map(|e| &mut e.pset).collect();
                ParticleSet::mw_prepare_moves(&mut psets, iat);
            }
            {
                let (mut psis, psets) = Self::split_psi_pset(&mut self.slots[..nw]);
                TrialWaveFunction::mw_eval_grad(&mut psis, &psets, iat, &mut g);
            }
            // Drifted Gaussian proposals, one per slot (private RNG streams
            // drawn in slot order, exactly as before), then all candidate
            // distance rows in one batched stage.
            for (s, w) in walkers.iter_mut().enumerate() {
                let drift_old = limited_drift(g[s], tau);
                chi[s] = gaussian_pos(&mut w.rng) * sqrt_tau;
                let op: Pos<f64> = self.slots[s].pset.pos(iat).cast();
                let np = op + drift_old + chi[s];
                oldpos[s] = op;
                newpos[s] = np;
                stats[s].attempted += 1;
                npt[s] = np.cast();
            }
            {
                let mut psets: Vec<&mut ParticleSet<T>> =
                    self.slots[..nw].iter_mut().map(|e| &mut e.pset).collect();
                ParticleSet::mw_make_moves(&mut psets, iat, &npt[..nw]);
            }
            // Stage B: batched ratio + gradient at the proposed position.
            {
                let (mut psis, psets) = Self::split_psi_pset(&mut self.slots[..nw]);
                TrialWaveFunction::mw_ratio_grad(&mut psis, &psets, iat, &mut ratios, &mut g);
            }
            // Metropolis decisions (same per-walker RNG draw pattern as
            // the scalar sweep: node crossings consume no uniform).
            for (s, w) in walkers.iter_mut().enumerate() {
                accept[s] = if ratios[s] <= 0.0 || !ratios[s].is_finite() {
                    false
                } else {
                    let drift_new = limited_drift(g[s], tau);
                    let forward = chi[s].norm2();
                    let backward = (oldpos[s] - newpos[s] - drift_new).norm2();
                    let log_gf_ratio = (forward - backward) / (2.0 * tau);
                    let p_acc = (ratios[s] * ratios[s] * log_gf_ratio.exp()).min(1.0);
                    w.rng.random::<f64>() < p_acc
                };
                stats[s].accepted += usize::from(accept[s]);
            }
            // Resolve components (batched), then the particle sets.
            {
                let (mut psis, psets) = Self::split_psi_pset(&mut self.slots[..nw]);
                TrialWaveFunction::mw_accept_restore(&mut psis, &psets, iat, &accept[..nw]);
            }
            for (s, &acc) in accept.iter().enumerate() {
                if acc {
                    self.slots[s].pset.accept_move(iat);
                } else {
                    self.slots[s].pset.reject_move(iat);
                }
            }
        }
        stats
    }
}
