//! The wavefunction-component protocol.
//!
//! Mirrors QMCPACK's `WaveFunctionComponent` virtual interface, which §7.5
//! of the paper redesigns "to clearly define the roles and requirements of
//! the virtual functions for move, accept/reject and measurement".
//!
//! Call order per particle-by-particle step of Algorithm 1 (driven by
//! `TrialWaveFunction`):
//!
//! 1. `ParticleSet::prepare_move(iat)` — compute-on-the-fly row refresh,
//! 2. `eval_grad(iat)` — gradient at the *current* position (drift),
//! 3. `ParticleSet::make_move(iat, r')` — candidate distance rows,
//! 4. `ratio(iat)` / `ratio_grad(iat)` — Eq. 4 factor per component,
//! 5. on accept: `accept_move(iat)` then `ParticleSet::accept_move`,
//!    on reject: `restore(iat)` then `ParticleSet::reject_move`.

use crate::buffer::WalkerBuffer;
use qmc_containers::{Pos, Real};
use qmc_particles::ParticleSet;

/// One multiplicative factor of the trial wavefunction (a Jastrow factor or
/// a Slater determinant).
pub trait WaveFunctionComponent<T: Real>: Send {
    /// Component name for reports.
    fn name(&self) -> &str;

    /// Recomputes the component from scratch for the particle set's current
    /// configuration. Returns `log |psi_c|` and *accumulates* the gradient
    /// and Laplacian of `log psi_c` into `p.g` / `p.l` (double precision,
    /// per the paper's mixed-precision rules).
    fn evaluate_log(&mut self, p: &mut ParticleSet<T>) -> f64;

    /// `psi_c(R') / psi_c(R)` for the active move of particle `iat`
    /// (`ParticleSet::make_move` must have been called).
    fn ratio(&mut self, p: &ParticleSet<T>, iat: usize) -> f64;

    /// Batched value-only ratios for the NLPP quadrature loop: multiplies
    /// `psi_c(.., r_q, ..) / psi_c(R)` for particle `iat` moved to each
    /// `positions[q]` into `ratios[q]`, *without* candidate distance rows
    /// (no `ParticleSet::make_move`). Returns `true` when handled.
    ///
    /// The default returns `false` untouched, telling the caller this
    /// component needs the per-point `make_move` + [`Self::ratio`]
    /// fallback (components whose ratio reads distance tables, e.g. the
    /// Jastrow factors). Implementations must produce each per-point
    /// factor **bitwise identical** to [`Self::ratio`] at the same
    /// position — the determinant override batches the orbital
    /// evaluations but keeps the same per-point contraction.
    fn ratios_value_only(
        &mut self,
        _p: &ParticleSet<T>,
        _iat: usize,
        _positions: &[Pos<T>],
        _ratios: &mut [f64],
    ) -> bool {
        false
    }

    /// Like [`Self::ratio`], additionally accumulating the gradient of
    /// `log psi_c` at the *proposed* position into `grad`.
    fn ratio_grad(&mut self, p: &ParticleSet<T>, iat: usize, grad: &mut Pos<f64>) -> f64;

    /// Gradient of `log psi_c` with respect to particle `iat` at its
    /// current position (used for the drift term before proposing).
    fn eval_grad(&mut self, p: &ParticleSet<T>, iat: usize) -> Pos<f64>;

    /// Commits internal state for the accepted move of `iat`. Called while
    /// the particle set still exposes the candidate rows.
    fn accept_move(&mut self, p: &ParticleSet<T>, iat: usize);

    /// Discards any candidate state for the rejected move of `iat`.
    fn restore(&mut self, iat: usize);

    /// Current `log |psi_c|` (kept incrementally up to date by accepts).
    fn log_value(&self) -> f64;

    /// Bytes of per-walker internal storage, for the memory ledger (this is
    /// where the paper's `5 N^2 sizeof(T)` versus `5 N sizeof(T)` shows up).
    fn bytes(&self) -> usize;

    /// Appends this component's internal PbyP state to the walker's
    /// anonymous buffer (QMCPACK's `updateBuffer`). Together with
    /// [`Self::load_state`] this lets a thread swap walkers without
    /// recomputing the wavefunction from scratch.
    fn save_state(&mut self, buf: &mut WalkerBuffer<T>);

    /// Accumulates the gradient/Laplacian of `log psi_c` into `p.g`/`p.l`
    /// from *stored* internal state, without re-evaluating orbitals or
    /// re-inverting matrices. This is the O(N^2) measurement path QMCPACK
    /// uses after each drift-diffusion sweep; [`Self::evaluate_log`] is the
    /// from-scratch variant used at block boundaries.
    fn accumulate_gl(&mut self, p: &mut ParticleSet<T>);

    /// Restores internal state previously written by [`Self::save_state`]
    /// (QMCPACK's `copyFromBuffer`). The particle set's positions and
    /// distance tables must already reflect the walker.
    fn load_state(&mut self, buf: &mut WalkerBuffer<T>);

    /// Escape hatch for crowd-level batching: lets a component recognize
    /// its siblings across walkers (e.g. a determinant downcasting the
    /// other walkers' determinants to fuse their orbital evaluations).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Crowd-batched from-scratch evaluation: `self` is walker 0's
    /// component, `rest[k]` is walker `k + 1`'s instance of the *same*
    /// component, and `psets`/`logs` are walker-aligned (length
    /// `rest.len() + 1`). Adds each walker's `log |psi_c|` into its `logs`
    /// slot and accumulates G/L into its particle set, exactly as
    /// [`Self::evaluate_log`] does.
    ///
    /// The default loops the scalar path and is bit-identical to it;
    /// overrides (the fused multi-walker determinant) may regroup floating
    /// point and are only reachable through opt-in batched drivers.
    // qmclint: allow(timer-coverage) — the default body is a pure loop over
    // `evaluate_log`, whose leaf kernels carry the timers; wrapping the loop
    // would double-count every scalar kernel under a second category.
    fn mw_evaluate_log_batched(
        &mut self,
        rest: &mut [&mut (dyn WaveFunctionComponent<T> + 'static)],
        psets: &mut [&mut ParticleSet<T>],
        logs: &mut [f64],
    ) {
        debug_assert_eq!(psets.len(), rest.len() + 1);
        debug_assert_eq!(logs.len(), rest.len() + 1);
        logs[0] += self.evaluate_log(psets[0]);
        for ((c, p), l) in rest
            .iter_mut()
            .zip(psets[1..].iter_mut())
            .zip(logs[1..].iter_mut())
        {
            *l += c.evaluate_log(p);
        }
    }
}
