//! Table 2: "Speedup of Current over Ref" for all four benchmarks.
//!
//! The paper reports three platforms (BG/Q, BDW, KNL); this reproduction
//! has one host, reported as a single row. The expected shape: speedups in
//! the 1.3-5x band, largest for the biggest problem (NiO-64), smallest for
//! the all-electron Be-64 / small problems.

use qmc_bench::{run_report, run_report_batched, HarnessConfig};
use qmc_workloads::{Batching, Benchmark, CodeVersion};

fn main() {
    let cfg = HarnessConfig::from_env();
    println!("== Table 2: speedup of Current over Ref ==\n");
    println!("paper values for reference:");
    println!(
        "{:<8} {:>10} {:>8} {:>8} {:>8}",
        "", "Graphite", "Be-64", "NiO-32", "NiO-64"
    );
    println!("{:<8} {:>10} {:>8} {:>8} {:>8}", "BG/Q", 1.6, 1.3, 1.3, 2.4);
    println!("{:<8} {:>10} {:>8} {:>8} {:>8}", "BDW", 2.9, 3.4, 2.6, 5.2);
    println!("{:<8} {:>10} {:>8} {:>8} {:>8}", "KNL", 2.2, 2.9, 2.4, 2.4);
    println!();

    let crowd = cfg.walkers.clamp(1, 4);
    print!("{:<8}", "host");
    let mut speedups = Vec::new();
    let mut crowd_speedups = Vec::new();
    for b in Benchmark::all() {
        let w = cfg.workload(b);
        let r = run_report(&w, CodeVersion::Ref, &cfg);
        let c = run_report(&w, CodeVersion::Current, &cfg);
        // Crowd batching drives the fused multi-walker SPO kernel
        // (`Bspline-mw-vgl`), so the table also reports the batched path.
        let cc = run_report_batched(&w, CodeVersion::Current, &cfg, Batching::Crowd(crowd));
        let s = c.throughput() / r.throughput();
        speedups.push((w.spec.name, s));
        crowd_speedups.push((w.spec.name, cc.throughput() / r.throughput()));
        print!("{s:>9.1}x");
    }
    println!();
    print!("{:<8}", "+crowd");
    for (_, s) in &crowd_speedups {
        print!("{s:>9.1}x");
    }
    println!();
    println!("\nmeasured (this host, {:?} size):", cfg.size());
    for (name, s) in &speedups {
        println!("  {name:<10} {s:.2}x");
    }
    let min = speedups
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nall speedups >= 1: {}",
        if min >= 1.0 {
            "yes"
        } else {
            "NO (investigate)"
        }
    );
}
