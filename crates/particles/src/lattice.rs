//! Crystal lattice with periodic boundary conditions.
//!
//! Supercells are defined by three lattice vectors; positions convert
//! between Cartesian and fractional coordinates, and displacements are
//! reduced to the minimum image. Distance kernels use the fast
//! orthorhombic path when the cell is diagonal (all bundled workloads use
//! orthorhombic supercells; see DESIGN.md substitutions) and the general
//! fractional-wrap path otherwise.

use qmc_containers::{Pos, Real, TinyVector};

/// A 3D periodic simulation cell.
#[derive(Clone, Debug)]
pub struct CrystalLattice<T: Real> {
    /// Rows are the lattice vectors a1, a2, a3 (Cartesian, bohr).
    a: [[T; 3]; 3],
    /// Inverse of `a` (columns map Cartesian to fractional).
    ainv: [[T; 3]; 3],
    /// Cell volume.
    volume: T,
    /// True when the cell matrix is diagonal.
    orthorhombic: bool,
}

impl<T: Real> CrystalLattice<T> {
    /// Builds a lattice from three Cartesian lattice vectors (rows).
    pub fn from_rows(a: [[f64; 3]; 3]) -> Self {
        let det = a[0][0] * (a[1][1] * a[2][2] - a[1][2] * a[2][1])
            - a[0][1] * (a[1][0] * a[2][2] - a[1][2] * a[2][0])
            + a[0][2] * (a[1][0] * a[2][1] - a[1][1] * a[2][0]);
        assert!(det.abs() > 1e-12, "degenerate cell");
        // Cofactor inverse.
        let inv = [
            [
                (a[1][1] * a[2][2] - a[1][2] * a[2][1]) / det,
                (a[0][2] * a[2][1] - a[0][1] * a[2][2]) / det,
                (a[0][1] * a[1][2] - a[0][2] * a[1][1]) / det,
            ],
            [
                (a[1][2] * a[2][0] - a[1][0] * a[2][2]) / det,
                (a[0][0] * a[2][2] - a[0][2] * a[2][0]) / det,
                (a[0][2] * a[1][0] - a[0][0] * a[1][2]) / det,
            ],
            [
                (a[1][0] * a[2][1] - a[1][1] * a[2][0]) / det,
                (a[0][1] * a[2][0] - a[0][0] * a[2][1]) / det,
                (a[0][0] * a[1][1] - a[0][1] * a[1][0]) / det,
            ],
        ];
        let orthorhombic = {
            let mut ortho = true;
            for i in 0..3 {
                for j in 0..3 {
                    if i != j && a[i][j].abs() > 1e-12 {
                        ortho = false;
                    }
                }
            }
            ortho
        };
        let cast3 = |m: [[f64; 3]; 3]| {
            [
                [
                    T::from_f64(m[0][0]),
                    T::from_f64(m[0][1]),
                    T::from_f64(m[0][2]),
                ],
                [
                    T::from_f64(m[1][0]),
                    T::from_f64(m[1][1]),
                    T::from_f64(m[1][2]),
                ],
                [
                    T::from_f64(m[2][0]),
                    T::from_f64(m[2][1]),
                    T::from_f64(m[2][2]),
                ],
            ]
        };
        Self {
            a: cast3(a),
            ainv: cast3(inv),
            volume: T::from_f64(det.abs()),
            orthorhombic,
        }
    }

    /// Orthorhombic box with edge lengths `l`.
    pub fn orthorhombic(l: [f64; 3]) -> Self {
        Self::from_rows([[l[0], 0.0, 0.0], [0.0, l[1], 0.0], [0.0, 0.0, l[2]]])
    }

    /// Cubic box with edge `l`.
    pub fn cubic(l: f64) -> Self {
        Self::orthorhombic([l, l, l])
    }

    /// Cell volume.
    #[inline]
    pub fn volume(&self) -> T {
        self.volume
    }

    /// True when the cell matrix is diagonal.
    #[inline]
    pub fn is_orthorhombic(&self) -> bool {
        self.orthorhombic
    }

    /// Lattice vector rows.
    #[inline]
    pub fn rows(&self) -> &[[T; 3]; 3] {
        &self.a
    }

    /// Diagonal edge lengths; panics for non-orthorhombic cells.
    pub fn edges(&self) -> [T; 3] {
        assert!(self.orthorhombic);
        [self.a[0][0], self.a[1][1], self.a[2][2]]
    }

    /// Cartesian -> fractional coordinates.
    #[inline]
    pub fn to_frac(&self, r: Pos<T>) -> Pos<T> {
        TinyVector([
            r[0] * self.ainv[0][0] + r[1] * self.ainv[1][0] + r[2] * self.ainv[2][0],
            r[0] * self.ainv[0][1] + r[1] * self.ainv[1][1] + r[2] * self.ainv[2][1],
            r[0] * self.ainv[0][2] + r[1] * self.ainv[1][2] + r[2] * self.ainv[2][2],
        ])
    }

    /// Fractional -> Cartesian coordinates.
    #[inline]
    pub fn to_cart(&self, f: Pos<T>) -> Pos<T> {
        TinyVector([
            f[0] * self.a[0][0] + f[1] * self.a[1][0] + f[2] * self.a[2][0],
            f[0] * self.a[0][1] + f[1] * self.a[1][1] + f[2] * self.a[2][1],
            f[0] * self.a[0][2] + f[1] * self.a[1][2] + f[2] * self.a[2][2],
        ])
    }

    /// Gradient transform: converts a gradient w.r.t. fractional
    /// coordinates to Cartesian (`g_cart = A^{-1} applied appropriately`).
    #[inline]
    pub fn frac_grad_to_cart(&self, g: Pos<T>) -> Pos<T> {
        // x_cart = f . A  =>  d/dx_cart = (A^{-1})_{cart,frac} d/df
        TinyVector([
            g[0] * self.ainv[0][0] + g[1] * self.ainv[0][1] + g[2] * self.ainv[0][2],
            g[0] * self.ainv[1][0] + g[1] * self.ainv[1][1] + g[2] * self.ainv[1][2],
            g[0] * self.ainv[2][0] + g[1] * self.ainv[2][1] + g[2] * self.ainv[2][2],
        ])
    }

    /// Laplacian transform: given the fractional-coordinate Hessian packed
    /// `[xx,xy,xz,yy,yz,zz]`, returns the Cartesian Laplacian
    /// `sum_c d^2/dx_c^2 = sum_{ab} (A^{-1} A^{-T})_{ab} H_frac[ab]`.
    #[inline]
    pub fn frac_hess_to_cart_laplacian(&self, h: [T; 6]) -> T {
        // metric[a][b] = sum_c ainv[a'][?]: d f_a / d x_c = ainv[c][a]
        let mut metric = [[T::ZERO; 3]; 3];
        for a in 0..3 {
            for b in 0..3 {
                let mut acc = T::ZERO;
                for c in 0..3 {
                    acc += self.ainv[c][a] * self.ainv[c][b];
                }
                metric[a][b] = acc;
            }
        }
        let hm = [[h[0], h[1], h[2]], [h[1], h[3], h[4]], [h[2], h[4], h[5]]];
        let mut lap = T::ZERO;
        for a in 0..3 {
            for b in 0..3 {
                lap += metric[a][b] * hm[a][b];
            }
        }
        lap
    }

    /// The fractional-to-Cartesian gradient transform as a dense matrix:
    /// `g_cart[d] = sum_e G[d][e] g_frac[e]`, i.e. exactly the contraction
    /// applied by [`Self::frac_grad_to_cart`]. Batched (multi-walker) SPO
    /// kernels precontract their per-node stencil weights with this matrix
    /// instead of transforming per-orbital outputs.
    #[inline]
    pub fn grad_transform(&self) -> [[T; 3]; 3] {
        self.ainv
    }

    /// The Laplacian metric contracted against a *packed* fractional
    /// Hessian `[xx,xy,xz,yy,yz,zz]`: `lap = sum_k M[k] h[k]` with the
    /// off-diagonal entries pre-doubled, so the result equals
    /// [`Self::frac_hess_to_cart_laplacian`] on the same packed Hessian.
    #[inline]
    pub fn laplacian_metric(&self) -> [T; 6] {
        let mut metric = [[T::ZERO; 3]; 3];
        for a in 0..3 {
            for b in 0..3 {
                let mut acc = T::ZERO;
                for c in 0..3 {
                    acc += self.ainv[c][a] * self.ainv[c][b];
                }
                metric[a][b] = acc;
            }
        }
        let two = T::from_f64(2.0);
        [
            metric[0][0],
            two * metric[0][1],
            two * metric[0][2],
            metric[1][1],
            two * metric[1][2],
            metric[2][2],
        ]
    }

    /// Minimum-image displacement of `dr` (fast fractional wrap). Exact for
    /// orthorhombic cells and for displacements within the inscribed sphere
    /// of general cells.
    #[inline]
    pub fn min_image(&self, dr: Pos<T>) -> Pos<T> {
        if self.orthorhombic {
            let mut out = dr;
            for d in 0..3 {
                let l = self.a[d][d];
                // round-to-nearest via floor(x + 0.5)
                let v = out[d];
                out[d] = v - l * (v / l + T::HALF).floor();
            }
            out
        } else {
            let mut f = self.to_frac(dr);
            for d in 0..3 {
                let v = f[d];
                f[d] = v - (v + T::HALF).floor();
            }
            self.to_cart(f)
        }
    }

    /// Exact minimum image via a 27-image search (reference for tests).
    pub fn min_image_exact(&self, dr: Pos<T>) -> Pos<T> {
        let base = self.min_image(dr);
        let mut best = base;
        let mut best_d = base.norm2();
        for i in -1i32..=1 {
            for j in -1i32..=1 {
                for k in -1i32..=1 {
                    let (fi, fj, fk) = (
                        T::from_f64(f64::from(i)),
                        T::from_f64(f64::from(j)),
                        T::from_f64(f64::from(k)),
                    );
                    let shift = TinyVector([
                        fi * self.a[0][0] + fj * self.a[1][0] + fk * self.a[2][0],
                        fi * self.a[0][1] + fj * self.a[1][1] + fk * self.a[2][1],
                        fi * self.a[0][2] + fj * self.a[1][2] + fk * self.a[2][2],
                    ]);
                    let cand = base + shift;
                    let d = cand.norm2();
                    if d < best_d {
                        best_d = d;
                        best = cand;
                    }
                }
            }
        }
        best
    }

    /// Wraps a position into the primary cell `[0, L)^3` (fractionally).
    pub fn wrap_into_cell(&self, r: Pos<T>) -> Pos<T> {
        let mut f = self.to_frac(r);
        for d in 0..3 {
            let v = f[d];
            f[d] = v - v.floor();
        }
        self.to_cart(f)
    }

    /// Largest cutoff radius guaranteed consistent with minimum image: half
    /// the smallest distance between opposite cell faces.
    pub fn simulation_cell_radius(&self) -> T {
        let mut rmin = f64::INFINITY;
        let a = self.a;
        for i in 0..3 {
            let j = (i + 1) % 3;
            let k = (i + 2) % 3;
            // |a_j x a_k|
            let cx = a[j][1].to_f64() * a[k][2].to_f64() - a[j][2].to_f64() * a[k][1].to_f64();
            let cy = a[j][2].to_f64() * a[k][0].to_f64() - a[j][0].to_f64() * a[k][2].to_f64();
            let cz = a[j][0].to_f64() * a[k][1].to_f64() - a[j][1].to_f64() * a[k][0].to_f64();
            let area = (cx * cx + cy * cy + cz * cz).sqrt();
            rmin = rmin.min(self.volume.to_f64() / area);
        }
        T::from_f64(0.5 * rmin)
    }

    /// Casts the lattice to another precision.
    pub fn cast<U: Real>(&self) -> CrystalLattice<U> {
        let rows = [
            [
                self.a[0][0].to_f64(),
                self.a[0][1].to_f64(),
                self.a[0][2].to_f64(),
            ],
            [
                self.a[1][0].to_f64(),
                self.a[1][1].to_f64(),
                self.a[1][2].to_f64(),
            ],
            [
                self.a[2][0].to_f64(),
                self.a[2][1].to_f64(),
                self.a[2][2].to_f64(),
            ],
        ];
        CrystalLattice::from_rows(rows)
    }
}

/// The lattice surface the `qmc-kernels` distance backends dispatch
/// through: fast diagonal-cell path when orthorhombic, the general
/// minimum-image wrap otherwise.
impl<T: Real> qmc_kernels::MinImageCell<T> for CrystalLattice<T> {
    #[inline]
    fn ortho_edges(&self) -> Option<[T; 3]> {
        if self.orthorhombic {
            Some([self.a[0][0], self.a[1][1], self.a[2][2]])
        } else {
            None
        }
    }

    #[inline]
    fn min_image3(&self, dr: [T; 3]) -> [T; 3] {
        self.min_image(TinyVector(dr)).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubic_roundtrip() {
        let lat = CrystalLattice::<f64>::cubic(10.0);
        assert!(lat.is_orthorhombic());
        assert_eq!(lat.volume(), 1000.0);
        let r = TinyVector([3.0, 7.5, 9.9]);
        let f = lat.to_frac(r);
        assert!((f[0] - 0.3).abs() < 1e-14);
        let back = lat.to_cart(f);
        assert!((back - r).norm() < 1e-12);
    }

    #[test]
    fn min_image_orthorhombic() {
        let lat = CrystalLattice::<f64>::orthorhombic([10.0, 8.0, 6.0]);
        let dr = TinyVector([9.0, -7.0, 3.5]);
        let mi = lat.min_image(dr);
        assert!((mi[0] - (-1.0)).abs() < 1e-12);
        assert!((mi[1] - 1.0).abs() < 1e-12);
        assert!((mi[2] - (-2.5)).abs() < 1e-12);
    }

    #[test]
    fn min_image_matches_exact_search_in_triclinic() {
        let lat =
            CrystalLattice::<f64>::from_rows([[8.0, 0.0, 0.0], [2.0, 7.0, 0.0], [1.0, 1.5, 9.0]]);
        // Displacements inside the inscribed sphere: wrap equals exact.
        let rc = lat.simulation_cell_radius();
        let dr = TinyVector([rc * 0.4, rc * 0.3, -rc * 0.2]);
        let a = lat.min_image(dr);
        let b = lat.min_image_exact(dr);
        assert!((a - b).norm() < 1e-10);
        assert!(a.norm() <= dr.norm() + 1e-12);
    }

    #[test]
    fn wrap_into_cell_bounds() {
        let lat = CrystalLattice::<f64>::cubic(5.0);
        let r = TinyVector([-1.0, 12.3, 4.9]);
        let w = lat.wrap_into_cell(r);
        for d in 0..3 {
            assert!(w[d] >= 0.0 && w[d] < 5.0, "w[{d}] = {}", w[d]);
        }
        // Same fractional part.
        assert!((w[0] - 4.0).abs() < 1e-12);
        assert!((w[1] - 2.3).abs() < 1e-12);
    }

    #[test]
    fn cell_radius_cubic() {
        let lat = CrystalLattice::<f64>::cubic(10.0);
        assert!((lat.simulation_cell_radius() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_transform_orthorhombic() {
        let lat = CrystalLattice::<f64>::orthorhombic([2.0, 4.0, 8.0]);
        // f = x/2 => df/dx = 1/2, so grad_frac (1,0,0) -> (0.5, 0, 0)
        let g = lat.frac_grad_to_cart(TinyVector([1.0, 0.0, 0.0]));
        assert!((g[0] - 0.5).abs() < 1e-14);
        assert_eq!(g[1], 0.0);
    }

    #[test]
    fn laplacian_transform_orthorhombic() {
        let lat = CrystalLattice::<f64>::orthorhombic([2.0, 4.0, 8.0]);
        // H_frac = diag(1,1,1) -> lap = 1/4 + 1/16 + 1/64
        let lap = lat.frac_hess_to_cart_laplacian([1.0, 0.0, 0.0, 1.0, 0.0, 1.0]);
        assert!((lap - (0.25 + 0.0625 + 0.015625)).abs() < 1e-14);
    }

    #[test]
    fn grad_transform_matches_elementwise() {
        let lat =
            CrystalLattice::<f64>::from_rows([[8.0, 0.0, 0.0], [2.0, 7.0, 0.0], [1.0, 1.5, 9.0]]);
        let g = TinyVector([0.3, -1.2, 0.7]);
        let expect = lat.frac_grad_to_cart(g);
        let m = lat.grad_transform();
        for d in 0..3 {
            let got = m[d][0] * g[0] + m[d][1] * g[1] + m[d][2] * g[2];
            assert!((got - expect[d]).abs() < 1e-14, "d={d}");
        }
    }

    #[test]
    fn laplacian_metric_matches_full_contraction() {
        let lat =
            CrystalLattice::<f64>::from_rows([[8.0, 0.0, 0.0], [2.0, 7.0, 0.0], [1.0, 1.5, 9.0]]);
        let h = [0.4, -0.3, 0.9, 1.1, 0.2, -0.8];
        let expect = lat.frac_hess_to_cart_laplacian(h);
        let m = lat.laplacian_metric();
        let got: f64 = (0..6).map(|k| m[k] * h[k]).sum();
        assert!((got - expect).abs() < 1e-13, "{got} vs {expect}");
    }

    #[test]
    fn f32_cast_consistent() {
        let lat = CrystalLattice::<f64>::orthorhombic([7.0, 9.0, 11.0]);
        let lat32: CrystalLattice<f32> = lat.cast();
        let dr64 = lat.min_image(TinyVector([6.5, -8.0, 5.0]));
        let dr32 = lat32.min_image(TinyVector([6.5f32, -8.0, 5.0]));
        for d in 0..3 {
            assert!((dr64[d] - dr32[d] as f64).abs() < 1e-5);
        }
    }
}
