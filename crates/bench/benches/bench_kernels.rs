//! Criterion bench: per-backend coverage of the `qmc-kernels` dispatch
//! points — every [`Backend`] times every extracted kernel family
//! (B-spline v/vgh/mw-vgl, the NLPP-sized value-only batch, distance
//! rows, J2 accumulation) plus the f32 rung of the lane-width ladder, so
//! a backend regression shows up in the same Criterion series the
//! cross-backend verifier gates for correctness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qmc_bspline::MultiBspline3D;
use qmc_kernels::bspline::{evaluate_v, evaluate_vgh, mw_evaluate_v, mw_evaluate_vgl};
use qmc_kernels::distance::distance_row;
use qmc_kernels::jastrow::j2_row_vgl;
use qmc_kernels::Backend;
use qmc_particles::CrystalLattice;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn bench_bspline_backends(c: &mut Criterion) {
    let ns = 128;
    let table = MultiBspline3D::<f64>::random([16, 16, 16], ns, 11);
    let view = table.view();
    let gmat = [[0.31, 0.0, 0.0], [0.02, 0.27, 0.0], [0.0, 0.01, 0.22]];
    let lapmet = [0.10, 0.09, 0.05, 0.01, 0.02, 0.005];
    let mut rng = StdRng::seed_from_u64(5);
    let points: Vec<[f64; 3]> = (0..16)
        .map(|_| [rng.random(), rng.random(), rng.random()])
        .collect();
    let nw = points.len();

    let mut group = c.benchmark_group(format!("kernels_bspline_ns{ns}"));
    for b in Backend::ALL {
        let mut psi = vec![0.0; ns];
        let mut idx = 0usize;
        group.bench_function(BenchmarkId::new("v", b.label()), |bench| {
            bench.iter(|| {
                idx = (idx + 1) % nw;
                evaluate_v(b, &view, points[idx], &mut psi);
                black_box(&psi);
            });
        });
        let (mut p, mut g, mut h) = (vec![0.0; ns], vec![0.0; 3 * ns], vec![0.0; 6 * ns]);
        group.bench_function(BenchmarkId::new("vgh", b.label()), |bench| {
            bench.iter(|| {
                idx = (idx + 1) % nw;
                evaluate_vgh(b, &view, points[idx], &mut p, &mut g, &mut h);
                black_box(&p);
            });
        });
        let (mut pw, mut gw, mut lw) = (
            vec![0.0; nw * ns],
            vec![0.0; 3 * nw * ns],
            vec![0.0; nw * ns],
        );
        group.bench_function(BenchmarkId::new("mw_vgl", b.label()), |bench| {
            bench.iter(|| {
                mw_evaluate_vgl(b, &view, &points, &gmat, &lapmet, &mut pw, &mut gw, &mut lw);
                black_box(&pw);
            });
        });
    }
    group.finish();
}

/// The NLPP quadrature inner loop: 12 value-only orbital evaluations per
/// (electron, ion) pair, batched through `mw_evaluate_v`. This is the
/// shape the `ratios_value_only` fast path dispatches.
fn bench_nlpp_v_backends(c: &mut Criterion) {
    let ns = 128;
    let nq = 12;
    let table = MultiBspline3D::<f64>::random([16, 16, 16], ns, 13);
    let view = table.view();
    let mut rng = StdRng::seed_from_u64(15);
    let quads: Vec<Vec<[f64; 3]>> = (0..8)
        .map(|_| {
            (0..nq)
                .map(|_| [rng.random(), rng.random(), rng.random()])
                .collect()
        })
        .collect();

    let mut group = c.benchmark_group(format!("kernels_nlpp_v_ns{ns}_nq{nq}"));
    for b in Backend::ALL {
        let mut psi = vec![0.0; nq * ns];
        let mut idx = 0usize;
        group.bench_function(BenchmarkId::new("mw_v", b.label()), |bench| {
            bench.iter(|| {
                idx = (idx + 1) % quads.len();
                mw_evaluate_v(b, &view, &quads[idx], &mut psi);
                black_box(&psi);
            });
        });
    }
    group.finish();
}

/// The f32 rung of the lane-width ladder: same kernels, 16-wide lanes.
fn bench_bspline_f32_backends(c: &mut Criterion) {
    let ns = 128;
    let table = MultiBspline3D::<f32>::random([16, 16, 16], ns, 11);
    let view = table.view();
    let mut rng = StdRng::seed_from_u64(5);
    let points: Vec<[f32; 3]> = (0..16)
        .map(|_| [rng.random(), rng.random(), rng.random()])
        .collect();
    let nw = points.len();

    let mut group = c.benchmark_group(format!("kernels_bspline_f32_ns{ns}"));
    for b in Backend::ALL {
        let mut psi = vec![0.0f32; ns];
        let mut idx = 0usize;
        group.bench_function(BenchmarkId::new("v", b.label()), |bench| {
            bench.iter(|| {
                idx = (idx + 1) % nw;
                evaluate_v(b, &view, points[idx], &mut psi);
                black_box(&psi);
            });
        });
        let (mut p, mut g, mut h) = (vec![0.0f32; ns], vec![0.0f32; 3 * ns], vec![0.0f32; 6 * ns]);
        group.bench_function(BenchmarkId::new("vgh", b.label()), |bench| {
            bench.iter(|| {
                idx = (idx + 1) % nw;
                evaluate_vgh(b, &view, points[idx], &mut p, &mut g, &mut h);
                black_box(&p);
            });
        });
    }
    group.finish();
}

fn bench_distance_backends(c: &mut Criterion) {
    let n = 256;
    let cell = CrystalLattice::<f64>::orthorhombic([6.0, 7.0, 8.0]);
    let mut rng = StdRng::seed_from_u64(7);
    let xs: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 6.0).collect();
    let ys: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 7.0).collect();
    let zs: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 8.0).collect();
    let pos = [1.2, 5.1, 3.3];

    let mut group = c.benchmark_group(format!("kernels_distance_n{n}"));
    for b in Backend::ALL {
        let mut dist = vec![0.0; n];
        let mut disp = [vec![0.0; n], vec![0.0; n], vec![0.0; n]];
        group.bench_function(BenchmarkId::new("row", b.label()), |bench| {
            bench.iter(|| {
                let [dx, dy, dz] = &mut disp;
                distance_row(b, &cell, &xs, &ys, &zs, pos, n, &mut dist, [dx, dy, dz]);
                black_box(&dist);
            });
        });
    }
    group.finish();
}

fn bench_jastrow_backends(c: &mut Criterion) {
    let n = 256;
    let mut rng = StdRng::seed_from_u64(9);
    let row =
        |rng: &mut StdRng| -> Vec<f64> { (0..n).map(|_| rng.random::<f64>() - 0.5).collect() };
    let (u, dud, lap) = (row(&mut rng), row(&mut rng), row(&mut rng));
    let (dx, dy, dz) = (row(&mut rng), row(&mut rng), row(&mut rng));

    let mut group = c.benchmark_group(format!("kernels_j2_n{n}"));
    for b in Backend::ALL {
        group.bench_function(BenchmarkId::new("row_vgl", b.label()), |bench| {
            bench.iter(|| {
                black_box(j2_row_vgl(b, &u, &dud, &lap, &dx, &dy, &dz, n));
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bspline_backends,
    bench_nlpp_v_backends,
    bench_bspline_f32_backends,
    bench_distance_backends,
    bench_jastrow_backends
);
criterion_main!(benches);
