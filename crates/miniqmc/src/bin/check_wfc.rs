//! Wavefunction correctness checker (miniQMC's `check_wfc` analogue):
//! drives the Ref (AoS, f64) and Current (SoA, f32) engines through the
//! *same* Monte Carlo move stream and reports the maximum deviations of
//! log values, ratios and gradients. Exits nonzero if tolerances fail.
//!
//! The two stacks share neither layout nor precision, so agreement here
//! exercises every kernel pair in the paper's ladder at once.

use miniqmc::Options;
use qmc_containers::{Pos, TinyVector};
use qmc_workloads::{Benchmark, CodeVersion, Size, Workload};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let opts = Options::from_env();
    let sweeps = opts.get("sweeps", 2usize);
    let seed = opts.get("seed", 42u64);
    let tol_ratio = opts.get("tol", 5e-3f64);

    let w = Workload::new(Benchmark::NiO32, Size::Scaled, seed);
    println!(
        "check_wfc: NiO-32 scaled, N = {}, comparing {} vs {}",
        w.num_electrons(),
        CodeVersion::Ref.label(),
        CodeVersion::Current.label()
    );

    let mut e64 = w.build_engine_f64(CodeVersion::Ref);
    let mut e32 = w.build_engine_f32(CodeVersion::Current);

    let log64 = e64.psi.evaluate_log(&mut e64.pset);
    let log32 = e32.psi.evaluate_log(&mut e32.pset);
    let dlog0 = (log64 - log32).abs();
    println!("evaluate_log: {log64:.6} vs {log32:.6}  |diff| = {dlog0:.2e}");

    let n = w.num_electrons();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let (mut max_ratio_diff, mut max_grad_diff) = (0.0f64, 0.0f64);
    let mut accepted = 0usize;
    for _sweep in 0..sweeps {
        for iat in 0..n {
            let delta = TinyVector([
                0.4 * (rng.random::<f64>() - 0.5),
                0.4 * (rng.random::<f64>() - 0.5),
                0.4 * (rng.random::<f64>() - 0.5),
            ]);
            let p64: Pos<f64> = e64.pset.pos(iat) + delta;
            let p32: Pos<f32> = p64.cast();

            e64.pset.prepare_move(iat);
            e64.pset.make_move(iat, p64);
            e32.pset.prepare_move(iat);
            e32.pset.make_move(iat, p32);

            let (r64, g64) = e64.psi.calc_ratio_grad(&e64.pset, iat);
            let (r32, g32) = e32.psi.calc_ratio_grad(&e32.pset, iat);
            max_ratio_diff = max_ratio_diff.max((r64 - r32).abs() / (1.0 + r64.abs()));
            max_grad_diff = max_grad_diff.max((g64 - g32).norm() / (1.0 + g64.norm()));

            // Accept based on the f64 ratio so both stacks stay in sync.
            if r64.abs() > 0.5 {
                e64.psi.accept_move(&e64.pset, iat);
                e64.pset.accept_move(iat);
                e32.psi.accept_move(&e32.pset, iat);
                e32.pset.accept_move(iat);
                accepted += 1;
            } else {
                e64.psi.reject_move(iat);
                e64.pset.reject_move(iat);
                e32.psi.reject_move(iat);
                e32.pset.reject_move(iat);
            }
        }
    }

    let l64 = e64.psi.log_value();
    let l32 = e32.psi.log_value();
    let dlog = (l64 - l32).abs() / (1.0 + l64.abs());
    println!("after {sweeps} sweeps ({accepted} accepts):");
    println!("  max relative ratio diff    = {max_ratio_diff:.2e}");
    println!("  max relative gradient diff = {max_grad_diff:.2e}");
    println!("  relative log diff          = {dlog:.2e}");

    let ok = max_ratio_diff < tol_ratio && max_grad_diff < tol_ratio * 10.0 && dlog < tol_ratio;
    if ok {
        println!("check_wfc PASSED (tolerance {tol_ratio:.0e})");
    } else {
        eprintln!("check_wfc FAILED");
        std::process::exit(1);
    }
}
