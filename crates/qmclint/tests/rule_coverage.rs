//! Meta-test over the fixture corpus: every rule — lexical, graph, and
//! effect — must be witnessed in both directions. A *firing* fixture
//! carries a `//~ <rule-id>` (or `//~v`) expectation for the rule; a
//! *silence* fixture exercises the rule's shape the legal way and
//! declares it with a `// fixture-silences: <rule-id>[, ...]` header.
//! Without the silence half, a rule that degenerates into "flag
//! everything" would still pass its violation fixtures.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use qmclint::{Rule, ALL_RULES, EFFECT_RULES, GRAPH_RULES, PAR_RULES};

/// The full rule inventory the corpus must cover.
fn every_rule() -> Vec<Rule> {
    let mut rules: Vec<Rule> = ALL_RULES.to_vec();
    rules.extend(GRAPH_RULES);
    rules.extend(EFFECT_RULES);
    rules.extend(PAR_RULES);
    rules.push(Rule::BadMarker);
    rules
}

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<_> = fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Rule ids named by `//~` / `//~v` expectation comments in one file.
fn expectation_ids(src: &str, path: &Path) -> BTreeSet<String> {
    let mut ids = BTreeSet::new();
    for line in src.lines() {
        let Some(pos) = line.find("//~") else {
            continue;
        };
        let rest = line[pos + 3..].trim_start_matches('v');
        let id = rest
            .split_whitespace()
            .next()
            .unwrap_or_else(|| panic!("{}: empty `//~` expectation", path.display()));
        assert!(
            Rule::from_id(id).is_some(),
            "{}: `//~` names unknown rule `{id}`",
            path.display()
        );
        ids.insert(id.to_string());
    }
    ids
}

/// Rule ids declared by a `// fixture-silences:` header in one file.
fn silence_ids(src: &str, path: &Path) -> BTreeSet<String> {
    let mut ids = BTreeSet::new();
    for line in src.lines() {
        let Some((_, rest)) = line.split_once("fixture-silences:") else {
            continue;
        };
        for id in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            assert!(
                Rule::from_id(id).is_some(),
                "{}: fixture-silences names unknown rule `{id}`",
                path.display()
            );
            ids.insert(id.to_string());
        }
    }
    ids
}

/// Every rule must have at least one firing fixture and at least one
/// declared silence fixture somewhere in the corpus.
#[test]
fn every_rule_has_a_firing_and_a_silence_fixture() {
    let mut files = Vec::new();
    collect_rs(&fixture_root(), &mut files);
    assert!(!files.is_empty(), "no fixtures found");

    let mut firing = BTreeSet::new();
    let mut silenced = BTreeSet::new();
    for path in &files {
        let src = fs::read_to_string(path).unwrap();
        firing.extend(expectation_ids(&src, path));
        silenced.extend(silence_ids(&src, path));
    }

    for rule in every_rule() {
        let id = rule.id();
        assert!(
            firing.contains(id),
            "rule `{id}` has no firing fixture (`//~ {id}` expectation)"
        );
        assert!(
            silenced.contains(id),
            "rule `{id}` has no silence fixture (`// fixture-silences: {id}` header)"
        );
    }
}

/// A case directory must not both declare a rule silent and expect it to
/// fire: that would make the silence declaration meaningless. Cases are
/// grouped by parent directory because graph cases span multiple files.
#[test]
fn silence_declarations_never_coexist_with_matching_expectations() {
    let mut files = Vec::new();
    collect_rs(&fixture_root(), &mut files);

    let mut case_dirs: BTreeSet<PathBuf> = BTreeSet::new();
    for path in &files {
        case_dirs.insert(path.parent().unwrap().to_path_buf());
    }

    for dir in case_dirs {
        let mut firing = BTreeSet::new();
        let mut silenced = BTreeSet::new();
        for path in files.iter().filter(|p| p.parent().unwrap() == dir) {
            let src = fs::read_to_string(path).unwrap();
            firing.extend(expectation_ids(&src, path));
            silenced.extend(silence_ids(&src, path));
        }
        let clash: Vec<_> = firing.intersection(&silenced).collect();
        assert!(
            clash.is_empty(),
            "{}: rules both expected and declared silent: {clash:?}",
            dir.display()
        );
    }
}
