//! # qmc-crowd
//!
//! Crowd-based batched walker execution, after the hierarchical
//! parallelism of QMCPACK's performance-portable drivers: a [`Crowd`] of
//! engines advances its walkers through the particle-by-particle
//! drift-diffusion sweep in lock-step, so every stage hands the
//! wavefunction layer a multi-walker batch (`TrialWaveFunction::mw_*`,
//! `SpoSet::mw_evaluate_vgl`, `qmc_particles::mw_candidate_rows`) instead
//! of one walker's worth of work.
//!
//! The [`CrowdScheduler`] maps crowds onto the thread crew exactly like
//! `qmc_drivers::parallel` maps single engines: contiguous walker chunks
//! per thread, walker-order energy reduction. Combined with per-walker
//! RNG streams and unchanged per-walker floating-point op sequences, the
//! crowd drivers [`run_vmc_crowd`] and [`run_dmc_crowd`] are bit-identical
//! to their per-walker counterparts for any crowd size and thread count —
//! batching is purely an execution-shape choice
//! (`qmc_drivers::Batching`).

#![forbid(unsafe_code)]

pub mod crowd;
pub mod dmc;
pub mod scheduler;
pub mod vmc;

pub use crowd::Crowd;
pub use dmc::{run_dmc_crowd, run_dmc_crowd_controlled};
pub use scheduler::CrowdScheduler;
pub use vmc::{run_vmc_crowd, run_vmc_crowd_controlled};
