// fixture-class: kernel,physics
// A batched `mw_*` entry point that neither wraps its body in a
// `Kernel::*` timer nor delegates to another `mw_*` kernel.

pub struct Engine {
    values: Vec<f64>,
}

impl Engine {
    pub fn mw_evaluate_bare(&mut self, n: usize) -> f64 { //~ timer-coverage
        let mut acc = 0.0;
        for i in 0..n.min(self.values.len()) {
            acc += self.values[i];
        }
        acc
    }
}
