//! Checkpoint/restart bitwise-parity matrix (the PR's acceptance bar):
//! for VMC and DMC, for both batching modes (crowd batching with the
//! fused block refresh both off and on) and all three kernel backends, a
//! run checkpointed at an interior generation and resumed from the file
//! must finish with per-walker full-state digests (walker buffers,
//! positions, weight, age AND raw RNG words) identical to the straight
//! run's — plus equal scalar outputs.
//!
//! All cases live in ONE `#[test]`: `qmc_kernels::set_backend` is
//! process-global, and cargo runs tests within a binary concurrently.

use qmc_crowd::{run_dmc_crowd_controlled, run_vmc_crowd_controlled, Crowd, CrowdScheduler};
use qmc_drivers::{
    initial_population, read_dmc_checkpoint, read_vmc_checkpoint, run_dmc_parallel_controlled,
    run_vmc_controlled, walker_digest_full, Batching, CheckpointSpec, DmcParams, QmcEngine,
    RunControl, VmcParams, Walker,
};
use qmc_kernels::Backend;
use qmc_workloads::{Benchmark, CodeVersion, Size, Workload};

const THREADS: usize = 3;
const WALKERS: usize = 6;
const STEPS: usize = 6;
const CUT: usize = 3; // interior checkpoint step — not the trivial final one
const SEED: u64 = 1234;

fn digests(walkers: &[Walker<f32>]) -> Vec<u64> {
    walkers.iter().map(walker_digest_full).collect()
}

fn scratch(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("qmc_ckpt_parity_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name).to_string_lossy().into_owned()
}

fn spec_at_cut(path: &str) -> CheckpointSpec {
    CheckpointSpec {
        path: path.to_string(),
        every: CUT,
    }
}

fn dmc_params(steps: usize, batching: Batching) -> DmcParams {
    DmcParams {
        steps,
        warmup: 1,
        tau: 0.003,
        target_population: WALKERS,
        recompute_every: 2,
        seed: SEED ^ 0xD00D,
        batching,
    }
}

fn vmc_params(blocks: usize, batching: Batching) -> VmcParams {
    VmcParams {
        blocks,
        steps_per_block: 3,
        tau: 0.3,
        measure_every: 1,
        batching,
    }
}

/// Straight DMC run of `STEPS` generations; returns per-walker digests
/// and the scalar triple.
fn dmc_straight(w: &Workload, batching: Batching, fused: bool) -> (Vec<u64>, (f64, f64, u64)) {
    let params = dmc_params(STEPS, batching);
    let mut walkers = initial_population(w.initial_positions(), WALKERS, SEED);
    let res = match batching {
        Batching::PerWalker => {
            let mut engines: Vec<QmcEngine<f32>> = (0..THREADS)
                .map(|_| w.build_engine_f32(CodeVersion::Current))
                .collect();
            let (res, _) = run_dmc_parallel_controlled(
                &mut engines,
                &mut walkers,
                &params,
                None,
                &mut RunControl::none(),
            );
            res
        }
        Batching::Crowd(c) => {
            let scheduler = CrowdScheduler::new(THREADS, c).with_fused_refresh(fused);
            let mut crowds = scheduler.build_crowds(|| w.build_engine_f32(CodeVersion::Current));
            let (res, _) = run_dmc_crowd_controlled(
                &mut crowds,
                &mut walkers,
                &params,
                None,
                &mut RunControl::none(),
            );
            res
        }
    };
    (
        digests(&walkers),
        (res.energy.mean(), res.e_trial, res.samples),
    )
}

/// DMC run killed after `CUT` generations (checkpoint written by the
/// periodic cadence), then resumed FROM THE FILE to `STEPS` with fresh
/// engines — the restart path a real job takes.
fn dmc_resumed(
    w: &Workload,
    batching: Batching,
    fused: bool,
    path: &str,
) -> (Vec<u64>, (f64, f64, u64)) {
    {
        let params = dmc_params(CUT, batching);
        let mut walkers = initial_population(w.initial_positions(), WALKERS, SEED);
        let mut ctl = RunControl {
            checkpoint: Some(spec_at_cut(path)),
            on_block: None,
        };
        match batching {
            Batching::PerWalker => {
                let mut engines: Vec<QmcEngine<f32>> = (0..THREADS)
                    .map(|_| w.build_engine_f32(CodeVersion::Current))
                    .collect();
                run_dmc_parallel_controlled(&mut engines, &mut walkers, &params, None, &mut ctl);
            }
            Batching::Crowd(c) => {
                let scheduler = CrowdScheduler::new(THREADS, c).with_fused_refresh(fused);
                let mut crowds =
                    scheduler.build_crowds(|| w.build_engine_f32(CodeVersion::Current));
                run_dmc_crowd_controlled(&mut crowds, &mut walkers, &params, None, &mut ctl);
            }
        }
    }
    let (state, mut walkers) = read_dmc_checkpoint::<f32>(path).expect("read DMC checkpoint");
    assert_eq!(state.step, CUT, "checkpoint captured the interior step");
    let params = dmc_params(STEPS, batching);
    let res = match batching {
        Batching::PerWalker => {
            let mut engines: Vec<QmcEngine<f32>> = (0..THREADS)
                .map(|_| w.build_engine_f32(CodeVersion::Current))
                .collect();
            let (res, _) = run_dmc_parallel_controlled(
                &mut engines,
                &mut walkers,
                &params,
                Some(state),
                &mut RunControl::none(),
            );
            res
        }
        Batching::Crowd(c) => {
            let scheduler = CrowdScheduler::new(THREADS, c).with_fused_refresh(fused);
            let mut crowds = scheduler.build_crowds(|| w.build_engine_f32(CodeVersion::Current));
            let (res, _) = run_dmc_crowd_controlled(
                &mut crowds,
                &mut walkers,
                &params,
                Some(state),
                &mut RunControl::none(),
            );
            res
        }
    };
    (
        digests(&walkers),
        (res.energy.mean(), res.e_trial, res.samples),
    )
}

/// Straight VMC run of `STEPS` blocks.
fn vmc_straight(w: &Workload, batching: Batching, fused: bool) -> (Vec<u64>, (f64, f64, u64)) {
    let params = vmc_params(STEPS, batching);
    let mut walkers = initial_population(w.initial_positions(), WALKERS, SEED);
    let res = match batching {
        Batching::PerWalker => {
            let mut engine = w.build_engine_f32(CodeVersion::Current);
            run_vmc_controlled(
                &mut engine,
                &mut walkers,
                &params,
                None,
                &mut RunControl::none(),
            )
        }
        Batching::Crowd(c) => {
            let slots = (0..c)
                .map(|_| w.build_engine_f32(CodeVersion::Current))
                .collect();
            let mut crowd = Crowd::new(slots);
            crowd.set_fused_refresh(fused);
            run_vmc_crowd_controlled(
                &mut crowd,
                &mut walkers,
                &params,
                None,
                &mut RunControl::none(),
            )
        }
    };
    (
        digests(&walkers),
        (res.energy.mean(), res.acceptance, res.samples),
    )
}

/// VMC killed after `CUT` blocks, resumed from the file to `STEPS`.
fn vmc_resumed(
    w: &Workload,
    batching: Batching,
    fused: bool,
    path: &str,
) -> (Vec<u64>, (f64, f64, u64)) {
    {
        let params = vmc_params(CUT, batching);
        let mut walkers = initial_population(w.initial_positions(), WALKERS, SEED);
        let mut ctl = RunControl {
            checkpoint: Some(spec_at_cut(path)),
            on_block: None,
        };
        match batching {
            Batching::PerWalker => {
                let mut engine = w.build_engine_f32(CodeVersion::Current);
                run_vmc_controlled(&mut engine, &mut walkers, &params, None, &mut ctl);
            }
            Batching::Crowd(c) => {
                let slots = (0..c)
                    .map(|_| w.build_engine_f32(CodeVersion::Current))
                    .collect();
                let mut crowd = Crowd::new(slots);
                crowd.set_fused_refresh(fused);
                run_vmc_crowd_controlled(&mut crowd, &mut walkers, &params, None, &mut ctl);
            }
        }
    }
    let (state, mut walkers) = read_vmc_checkpoint::<f32>(path).expect("read VMC checkpoint");
    assert_eq!(state.block, CUT, "checkpoint captured the interior block");
    let params = vmc_params(STEPS, batching);
    let res = match batching {
        Batching::PerWalker => {
            let mut engine = w.build_engine_f32(CodeVersion::Current);
            run_vmc_controlled(
                &mut engine,
                &mut walkers,
                &params,
                Some(state),
                &mut RunControl::none(),
            )
        }
        Batching::Crowd(c) => {
            let slots = (0..c)
                .map(|_| w.build_engine_f32(CodeVersion::Current))
                .collect();
            let mut crowd = Crowd::new(slots);
            crowd.set_fused_refresh(fused);
            run_vmc_crowd_controlled(
                &mut crowd,
                &mut walkers,
                &params,
                Some(state),
                &mut RunControl::none(),
            )
        }
    };
    (
        digests(&walkers),
        (res.energy.mean(), res.acceptance, res.samples),
    )
}

#[test]
fn checkpoint_resume_is_bitwise_across_drivers_batchings_and_backends() {
    let w = Workload::new(Benchmark::Graphite, Size::Scaled, SEED);
    let saved = Backend::current();
    for backend in [Backend::Reference, Backend::Soa, Backend::Simd] {
        qmc_kernels::set_backend(backend);
        for (batching, fused) in [
            (Batching::PerWalker, false),
            (Batching::Crowd(2), false),
            (Batching::Crowd(2), true),
        ] {
            let tag = format!("{backend:?}-{batching:?}-fused{fused}");

            let path = scratch(&format!("dmc-{tag}.qmc"));
            let (straight_w, straight_s) = dmc_straight(&w, batching, fused);
            let (resumed_w, resumed_s) = dmc_resumed(&w, batching, fused, &path);
            assert_eq!(
                straight_w, resumed_w,
                "DMC [{tag}]: per-walker full digests diverged after resume"
            );
            assert_eq!(
                straight_s, resumed_s,
                "DMC [{tag}]: scalar results diverged after resume"
            );

            let path = scratch(&format!("vmc-{tag}.qmc"));
            let (straight_w, straight_s) = vmc_straight(&w, batching, fused);
            let (resumed_w, resumed_s) = vmc_resumed(&w, batching, fused, &path);
            assert_eq!(
                straight_w, resumed_w,
                "VMC [{tag}]: per-walker full digests diverged after resume"
            );
            assert_eq!(
                straight_s, resumed_s,
                "VMC [{tag}]: scalar results diverged after resume"
            );
        }
    }
    qmc_kernels::set_backend(saved);
}

/// Cross-batching restart: a checkpoint written by the per-walker DMC
/// driver resumed under crowd batching (and vice versa) is ALSO bitwise —
/// the checkpoint pins physics state, not execution shape.
#[test]
fn dmc_checkpoint_resumes_bitwise_across_batching_modes() {
    let w = Workload::new(Benchmark::Graphite, Size::Scaled, SEED);
    let (straight_w, straight_s) = dmc_straight(&w, Batching::PerWalker, false);

    // Kill a per-walker job at CUT...
    let path = scratch("cross-batching.qmc");
    {
        let params = dmc_params(CUT, Batching::PerWalker);
        let mut engines: Vec<QmcEngine<f32>> = (0..THREADS)
            .map(|_| w.build_engine_f32(CodeVersion::Current))
            .collect();
        let mut walkers = initial_population(w.initial_positions(), WALKERS, SEED);
        let mut ctl = RunControl {
            checkpoint: Some(spec_at_cut(&path)),
            on_block: None,
        };
        run_dmc_parallel_controlled(&mut engines, &mut walkers, &params, None, &mut ctl);
    }

    // ...and restart it under crowd batching. Same answer, to the bit.
    let (state, mut walkers) = read_dmc_checkpoint::<f32>(&path).expect("read checkpoint");
    let params = dmc_params(STEPS, Batching::Crowd(2));
    let scheduler = CrowdScheduler::new(THREADS, 2);
    let mut crowds = scheduler.build_crowds(|| w.build_engine_f32(CodeVersion::Current));
    let (res, _) = run_dmc_crowd_controlled(
        &mut crowds,
        &mut walkers,
        &params,
        Some(state),
        &mut RunControl::none(),
    );

    assert_eq!(straight_w, digests(&walkers));
    assert_eq!(straight_s, (res.energy.mean(), res.e_trial, res.samples));
}
