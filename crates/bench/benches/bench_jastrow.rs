//! Criterion bench: two-body Jastrow, store-everything (ref) versus
//! compute-on-the-fly (SoA), for the ratio+gradient and accept operations
//! of the PbyP cycle — the kernels behind the paper's 8x J2 speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qmc_bspline::CubicBspline1D;
use qmc_containers::TinyVector;
use qmc_particles::{random_positions_in_cell, CrystalLattice, Layout, ParticleSet, Species};
use qmc_wavefunction::{traits::WaveFunctionComponent, J2Ref, J2Soa, PairFunctors};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn electrons(n: usize, layout: Layout) -> ParticleSet<f64> {
    let l = 15.8;
    let lat = CrystalLattice::cubic(l);
    let mut rng = StdRng::seed_from_u64(3);
    let pos = random_positions_in_cell(&lat, n, &mut rng);
    let half = n / 2;
    let mut p = ParticleSet::new(
        "e",
        lat,
        vec![
            (
                Species {
                    name: "u".into(),
                    charge: -1.0,
                },
                pos[..half].to_vec(),
            ),
            (
                Species {
                    name: "d".into(),
                    charge: -1.0,
                },
                pos[half..].to_vec(),
            ),
        ],
    );
    p.add_table_aa(layout);
    p
}

fn functors() -> PairFunctors<f64> {
    PairFunctors::new(2, |a, b| {
        let (amp, cusp) = if a == b { (0.35, -0.25) } else { (0.5, -0.5) };
        CubicBspline1D::fit(
            move |r| amp * (1.0 - r / 3.9).powi(3) / (1.0 + 0.4 * r),
            cusp,
            3.9,
            10,
        )
    })
}

fn bench_jastrow(c: &mut Criterion) {
    for &n in &[96usize, 384] {
        let mut group = c.benchmark_group(format!("j2_N{n}"));
        let variants: [(&str, Layout); 2] = [("ref", Layout::Aos), ("soa", Layout::Soa)];
        for (label, layout) in variants {
            let mut p = electrons(n, layout);
            let mut j2: Box<dyn WaveFunctionComponent<f64>> = match layout {
                Layout::Aos => Box::new(J2Ref::new(&p, 0, functors())),
                Layout::Soa => Box::new(J2Soa::new(&p, 0, functors())),
            };
            j2.evaluate_log(&mut p);
            let iat = n / 2;
            let newpos = p.pos(iat) + TinyVector([0.2, -0.1, 0.15]);

            group.bench_function(BenchmarkId::new("evaluate_log", label), |b| {
                b.iter(|| black_box(j2.evaluate_log(&mut p)));
            });
            group.bench_function(BenchmarkId::new("ratio_grad", label), |b| {
                p.prepare_move(iat);
                p.make_move(iat, newpos);
                b.iter(|| {
                    let mut g = TinyVector::zero();
                    black_box(j2.ratio_grad(&p, iat, &mut g))
                });
                p.reject_move(iat);
            });
            group.bench_function(BenchmarkId::new("move_accept", label), |b| {
                b.iter(|| {
                    p.prepare_move(iat);
                    p.make_move(iat, newpos);
                    let mut g = TinyVector::zero();
                    black_box(j2.ratio_grad(&p, iat, &mut g));
                    j2.accept_move(&p, iat);
                    p.accept_move(iat);
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_jastrow);
criterion_main!(benches);
