//! Minimal offline stand-in for `proptest`.
//!
//! Provides the `proptest!` macro, range/tuple/vec strategies, `any::<T>()`,
//! `prop_assert*` / `prop_assume!`, `ProptestConfig`, and `TestCaseError` —
//! the exact surface the workspace's property tests use. Cases are generated
//! from a deterministic per-test seed (hash of test name and case index), so
//! failures reproduce exactly on re-run; there is no shrinking, the failing
//! case's seed is printed instead.

#![forbid(unsafe_code)]
// Vendored stand-in: the API shape (names, signatures, by-value arguments)
// mirrors the external crate verbatim, so pedantic style lints don't apply.
#![allow(clippy::pedantic)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Why a test case did not pass: a hard failure or a filtered (rejected)
/// input from `prop_assume!`.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    /// 64 cases by default (env `PROPTEST_CASES` overrides): tier-1 runs the
    /// property suites in debug profile, so the default favors fast feedback.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values for one macro argument.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        self.start + (self.end - self.start) * rng.random::<f64>()
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        self.start + (self.end - self.start) * rng.random::<f32>()
    }
}

macro_rules! int_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $wide - self.start as $wide) as u64;
                let off = rng.random::<u64>() % span;
                (self.start as $wide + off as $wide) as $t
            }
        }
    )*};
}

int_strategy!(usize => u128, u64 => u128, u32 => u64, i32 => i64, i64 => i128);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random::<bool>()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.random::<u64>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.random::<f64>()
    }
}

pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::RngExt;

    /// Length specifications accepted by [`vec`]: an exact length or an
    /// end-exclusive range.
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            rng.random_range(self.start..self.end)
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-case seed: FNV-1a over the test identity, mixed with
/// the case index, so every test gets an independent reproducible stream.
fn case_seed(test: &str, file: &str, case: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test.bytes().chain(file.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Driver behind the `proptest!` macro: runs `config.cases` accepted cases,
/// skipping rejected inputs (with a global attempt cap) and panicking with a
/// reproducible case identifier on failure.
pub fn run_proptest<F>(config: ProptestConfig, test: &str, file: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let max_attempts = (config.cases as u64).saturating_mul(20).max(1000);
    let mut accepted = 0u32;
    let mut attempt = 0u64;
    while accepted < config.cases {
        assert!(
            attempt < max_attempts,
            "proptest '{test}': too many rejected inputs ({attempt} attempts for \
             {accepted}/{} cases)",
            config.cases
        );
        let seed = case_seed(test, file, attempt as u32);
        let mut rng = StdRng::seed_from_u64(seed);
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{test}' failed at case {attempt} (seed {seed:#x}): {msg}")
            }
        }
        attempt += 1;
    }
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::run_proptest(config, stringify!($name), file!(), |__rng| {
                    $( let $arg = $crate::Strategy::generate(&($strat), __rng); )+
                    #[allow(unused_mut)]
                    let mut __body = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    __body()
                });
            }
        )+
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!(
                $($fmt)+
            )));
        }
    };
}

pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges respect their bounds and tuples compose.
        #[test]
        fn ranges_in_bounds(
            x in -2.0f64..3.0,
            n in 1usize..10,
            pair in (0.0f64..1.0, -5i32..5),
        ) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(pair.0 >= 0.0 && pair.0 < 1.0);
            prop_assert!(pair.1 >= -5 && pair.1 < 5);
        }

        /// Vec strategies honor exact and ranged lengths.
        #[test]
        fn vec_lengths(
            exact in prop::collection::vec(0.0f64..1.0, 7),
            ranged in prop::collection::vec(any::<bool>(), 2..6),
        ) {
            prop_assert_eq!(exact.len(), 7);
            prop_assert!(ranged.len() >= 2 && ranged.len() < 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// prop_assume rejections are skipped, not failed.
        #[test]
        fn assume_filters(v in 0usize..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }
}
