//! Crowd VMC driver: the block/step loop of `run_vmc` with lock-step
//! crowd blocks in place of one-walker-at-a-time sweeps.

use crate::crowd::Crowd;
use qmc_containers::Real;
use qmc_drivers::{RunControl, VmcParams, VmcResult, VmcState, Walker};

/// Runs VMC on one crowd over a set of walkers. Walkers stream through
/// the crowd in crowd-sized blocks; within a block every step advances
/// all resident walkers in lock-step. Local-energy samples are buffered
/// per slot and pushed walker-major after the block's steps, so the
/// estimator ingests them in exactly the order of the per-walker driver —
/// the result is bit-identical to `run_vmc` for any crowd size (with the
/// default per-slot refresh; a crowd with fused refresh enabled trades
/// that parity for the batched SPO kernel).
pub fn run_vmc_crowd<T: Real>(
    crowd: &mut Crowd<T>,
    walkers: &mut [Walker<T>],
    params: &VmcParams,
) -> VmcResult {
    run_vmc_crowd_controlled(crowd, walkers, params, None, &mut RunControl::none())
}

/// [`run_vmc_crowd`] with checkpoint/resume control. Resume skips walker
/// initialization and continues the outer block loop from `state.block`;
/// because the crowd driver shares [`VmcState`] with the per-walker
/// driver, a VMC run checkpointed under one batching mode resumes bitwise
/// under the other.
pub fn run_vmc_crowd_controlled<T: Real>(
    crowd: &mut Crowd<T>,
    walkers: &mut [Walker<T>],
    params: &VmcParams,
    resume: Option<VmcState>,
    control: &mut RunControl<'_>,
) -> VmcResult {
    qmc_instrument::enable_ftz();
    let mut state = if let Some(state) = resume {
        state
    } else {
        for w in walkers.iter_mut() {
            crowd.slot_mut(0).init_walker(w);
        }
        VmcState::fresh()
    };

    let cs = crowd.size();
    let mut buffered: Vec<Vec<f64>> = vec![Vec::new(); cs];
    while state.block < params.blocks {
        let outer = state.block;
        let _block_span = qmc_instrument::span_lazy(0, || format!("vmc block {outer}"));
        let samples_before = state.energy.len();
        for block in walkers.chunks_mut(cs) {
            for (s, w) in block.iter_mut().enumerate() {
                crowd.slot_mut(s).load_walker(w);
                buffered[s].clear();
            }
            // Per-block mixed-precision hygiene, as in `run_vmc` (fused
            // across the block when the crowd opts in).
            crowd.refresh_block(block.len());
            for step in 0..params.steps_per_block {
                let stats = crowd.sweep(block, params.tau);
                for st in &stats {
                    state.accepted += st.accepted;
                    state.attempted += st.attempted;
                }
                state.samples += block.len() as u64;
                if step % params.measure_every == 0 {
                    for (s, w) in block.iter_mut().enumerate() {
                        let el = crowd.slot_mut(s).measure(&mut w.rng);
                        w.e_local = el.total();
                        qmc_instrument::check_finite(
                            qmc_instrument::CheckKind::LocalEnergy,
                            w.e_local,
                        );
                        buffered[s].push(w.e_local);
                    }
                }
            }
            for (s, w) in block.iter_mut().enumerate() {
                crowd.slot_mut(s).store_walker(w);
                for &e in &buffered[s] {
                    state.energy.push(e, 1.0);
                }
            }
        }
        state.block += 1;
        control.after_vmc_block(&state, walkers, params, samples_before);
    }

    state.into_result()
}
