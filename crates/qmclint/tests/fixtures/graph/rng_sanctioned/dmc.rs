// fixture-path: crates/drivers/src/dmc.rs
// fixture-silences: rng-discipline
//! Silence witness: randomness under sanctioned territory. The driver
//! draws directly, reaches a move helper that lives *outside* the
//! sanctioned path list (reachability extends the sanction to it), and
//! re-keys only through the `reseed_for_migration` marker.

/// Sanctioned direct draw plus a reachable helper draw.
pub fn advance_walker(w: &mut Walker) -> f64 {
    let step: f64 = w.rng.random();
    step + drift_kick(w)
}

/// Sanctioned re-key marker: the one place wholesale replacement is legal.
pub fn reseed_for_migration(w: &mut Walker, key: u64) {
    w.rng = StdRng::seed_from_u64(key);
}
