//! In-source project configuration: which files play which role.
//!
//! There is deliberately no `qmclint.toml` — the file classification is
//! part of the linter itself so that changing the set of mixed-precision
//! or kernel modules is a reviewed code change, not a config drive-by.
//! Paths are matched repo-relative with forward slashes.

/// How a file is treated by the rules.
// Not a state machine: the flags are orthogonal classification facts and
// every combination is meaningful (e.g. kernel + physics + mixed).
#[allow(clippy::struct_excessive_bools)]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FileClass {
    /// Skipped entirely (tests, benches, binaries, vendored shims, ...).
    pub exempt: bool,
    /// Designated mixed-precision module: raw `f32`/`f64` casts are legal.
    pub mixed_precision: bool,
    /// Hot kernel module: the hot-path and timer rules apply.
    pub kernel: bool,
    /// Physics crate: the determinism rule applies.
    pub physics: bool,
}

/// Paths (prefixes or substrings) that are never linted.
///
/// * `shims/` — vendored minimal API stubs for offline builds, not ours.
/// * test / bench / example / bin targets — CLI front-ends and test code
///   are allowed to allocate, unwrap and cast freely.
/// * `crates/qmclint/` — the linter itself (its fixtures are deliberate
///   violations; its sources are full of rule-name strings).
const EXEMPT_MARKERS: [&str; 8] = [
    "shims/",
    "/tests/",
    "/benches/",
    "/examples/",
    "/src/bin/",
    "crates/qmclint/",
    "crates/bench/",
    "target/",
];

/// Top-level (workspace-root) directories that are exempt as a whole.
const EXEMPT_PREFIXES: [&str; 2] = ["tests/", "examples/"];

/// Directory *names* the workspace walk never descends into. Part of the
/// reviewed configuration (like every other list here) rather than
/// hard-coded in the walker: `shims/` is vendored third-party API surface,
/// the rest is build/VCS noise. The walker also carries a visited set of
/// canonical paths, so symlink cycles terminate.
pub const SKIP_DIRS: [&str; 4] = ["target", ".git", "node_modules", "shims"];

/// Root modules of the lock-order rule: every function defined here (and
/// everything reachable from it through the call graph) must agree on one
/// acquisition order per lock pair. The crowd scheduler is the only place
/// the lock-step drivers hold more than one `parking_lot` lock at a time.
pub const LOCK_ROOTS: [&str; 1] = ["crates/crowd/"];

/// Designated mixed-precision modules (ISSUE rule 1): the only places a
/// raw `as f32`/`as f64` cast or suffixed float literal is legal without a
/// justification. Everything else must go through the `Real` trait
/// boundary (`T::from_f64` / `.to_f64()`) or carry an allow marker.
const MIXED_PRECISION: [&str; 3] = [
    "crates/containers/src/real.rs",
    "crates/bspline/src/",
    "crates/wavefunction/src/buffer.rs",
];

/// Hot kernel modules (ISSUE rule 2/4): distance tables, B-splines,
/// Jastrow factors, SPO/determinant kernels, the batched `mw_*` APIs and
/// the swappable-backend kernel library (every backend's entry points are
/// kernel roots, so a slow-path regression in any backend fires here).
const KERNEL_MODULES: [&str; 7] = [
    "crates/particles/src/dtable.rs",
    "crates/bspline/src/",
    "crates/wavefunction/src/jastrow/",
    "crates/wavefunction/src/spo.rs",
    "crates/wavefunction/src/batched.rs",
    "crates/linalg/src/",
    "crates/kernels/src/",
];

/// Physics crates (ISSUE rule 5): anything whose results enter the Monte
/// Carlo estimate. Observability (`instrument`), front-ends (`miniqmc`)
/// and the bench harness are excluded — wall-clock time there is fine.
const PHYSICS_CRATES: [&str; 11] = [
    "crates/core/",
    "crates/containers/",
    "crates/linalg/",
    "crates/bspline/",
    "crates/particles/",
    "crates/wavefunction/",
    "crates/hamiltonian/",
    "crates/drivers/",
    "crates/crowd/",
    "crates/workloads/",
    "crates/kernels/",
];

/// Classifies a repo-relative path (forward slashes).
pub fn classify(path: &str) -> FileClass {
    let p = path.trim_start_matches("./");
    if EXEMPT_MARKERS.iter().any(|m| p.contains(m))
        || EXEMPT_PREFIXES.iter().any(|m| p.starts_with(m))
    {
        return FileClass {
            exempt: true,
            ..FileClass::default()
        };
    }
    FileClass {
        exempt: false,
        mixed_precision: MIXED_PRECISION.iter().any(|m| p.starts_with(m)),
        kernel: KERNEL_MODULES.iter().any(|m| p.starts_with(m)),
        physics: PHYSICS_CRATES.iter().any(|m| p.starts_with(m)),
    }
}

/// Function names exempt from the hot-path rule: constructors and other
/// setup/conversion entry points that legitimately allocate. Hot functions
/// that must allocate for a good reason use a `// qmclint: cold — <why>`
/// marker instead.
pub fn is_cold_fn_name(name: &str) -> bool {
    matches!(
        name,
        "new" | "default" | "random" | "zeros" | "from_fn" | "clone" | "convert" | "bytes"
    ) || name.starts_with("from_")
        || name.starts_with("with_")
        || name.starts_with("build")
        || name.starts_with("set_")
        || name.starts_with("clone_")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_examples() {
        assert!(classify("shims/rand/src/lib.rs").exempt);
        assert!(classify("crates/drivers/tests/physics.rs").exempt);
        assert!(classify("crates/miniqmc/src/bin/miniqmc.rs").exempt);
        assert!(classify("tests/determinism.rs").exempt);
        assert!(classify("crates/qmclint/src/rules.rs").exempt);

        let spline = classify("crates/bspline/src/spline3d.rs");
        assert!(spline.mixed_precision && spline.kernel && spline.physics);

        let dtable = classify("crates/particles/src/dtable.rs");
        assert!(dtable.kernel && dtable.physics && !dtable.mixed_precision);

        let report = classify("crates/instrument/src/report.rs");
        assert!(!report.physics && !report.kernel && !report.exempt);

        let estimator = classify("crates/drivers/src/estimator.rs");
        assert!(estimator.physics && !estimator.kernel);

        // The kernel library: every backend file is a hot kernel root and
        // physics, but not a designated mixed-precision module.
        let kernels = classify("crates/kernels/src/bspline.rs");
        assert!(kernels.kernel && kernels.physics && !kernels.mixed_precision);
        assert!(classify("crates/kernels/src/bin/kernel_verify.rs").exempt);
    }

    #[test]
    fn cold_names() {
        assert!(is_cold_fn_name("new"));
        assert!(is_cold_fn_name("from_coefficients"));
        assert!(is_cold_fn_name("set_control_points"));
        assert!(!is_cold_fn_name("evaluate_vgl"));
        assert!(!is_cold_fn_name("mw_evaluate_vgl"));
    }
}
