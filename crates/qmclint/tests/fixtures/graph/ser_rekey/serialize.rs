// fixture-path: crates/drivers/src/serialize.rs
//! Seeded bug (PR 7, bug a): the checkpoint serializer takes `&mut` and
//! quietly refreshes the walker's RNG stream two hops down. The body of
//! `serialize_walker` looks innocent — only the interprocedural effect
//! walk can see the draw and the re-key in `migrate.rs`, and it must
//! report both at their exact lines with the chain from the pure root.

/// Pure root: checkpointing must be observationally pure.
pub fn serialize_walker(w: &mut Walker) -> Vec<u8> {
    let bytes = encode_scalars(w);
    refresh_stream(w);
    bytes
}

/// Reads only: weight bits into the wire buffer.
fn encode_scalars(w: &Walker) -> Vec<u8> {
    w.weight.to_le_bytes().to_vec()
}
