//! Cross-backend kernel verification and benchmark smoke runner (CI gate).
//!
//! Default mode verifies every [`Backend`] of every kernel family against
//! the reference backend over seeded random inputs and prints one
//! explicit log line per backend; CI greps for those lines so no backend
//! can be skipped silently. `--bench` times the dominant B-spline kernels
//! per backend and prints the simd-vs-reference speedups (run under
//! `--release`; debug timings are meaningless).

use qmc_containers::{padded_len, AlignedVec, Real};
use qmc_kernels::bspline::{evaluate_v, evaluate_vgh, mw_evaluate_v, mw_evaluate_vgl};
use qmc_kernels::distance::distance_row;
use qmc_kernels::jastrow::{j2_accept_value_rows, j2_row_vgl};
use qmc_kernels::{Backend, MinImageCell, SplineView};
use std::time::Instant;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> f64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

struct Table<T: Real> {
    grid: [usize; 3],
    ns: usize,
    ns_pad: usize,
    coefs: AlignedVec<T>,
}

impl<T: Real> Table<T> {
    fn random(grid: [usize; 3], ns: usize, seed: u64) -> Self {
        let ns_pad = padded_len::<T>(ns);
        let total = (grid[0] + 3) * (grid[1] + 3) * (grid[2] + 3) * ns_pad;
        let mut coefs = AlignedVec::<T>::zeros(total);
        let mut rng = Rng::new(seed);
        for x in coefs.as_mut_slice() {
            *x = T::from_f64(rng.next() - 0.5);
        }
        Self {
            grid,
            ns,
            ns_pad,
            coefs,
        }
    }

    fn view(&self) -> SplineView<'_, T> {
        SplineView {
            grid: self.grid,
            num_splines: self.ns,
            ns_pad: self.ns_pad,
            coefs: self.coefs.as_slice(),
        }
    }
}

struct OrthoCell {
    edges: [f64; 3],
}

impl MinImageCell<f64> for OrthoCell {
    fn ortho_edges(&self) -> Option<[f64; 3]> {
        Some(self.edges)
    }

    fn min_image3(&self, dr: [f64; 3]) -> [f64; 3] {
        let mut out = dr;
        for d in 0..3 {
            let l = self.edges[d];
            out[d] -= l * (out[d] / l + 0.5).floor();
        }
        out
    }
}

struct OrthoCell32 {
    edges: [f32; 3],
}

impl MinImageCell<f32> for OrthoCell32 {
    fn ortho_edges(&self) -> Option<[f32; 3]> {
        Some(self.edges)
    }

    fn min_image3(&self, dr: [f32; 3]) -> [f32; 3] {
        let mut out = dr;
        for d in 0..3 {
            let l = self.edges[d];
            out[d] -= l * (out[d] / l + 0.5).floor();
        }
        out
    }
}

/// Verifies one backend against precomputed reference outputs; returns the
/// number of scalar comparisons performed.
fn verify_backend(backend: Backend) -> usize {
    let mut checked = 0usize;

    // B-spline v / vgh / mw-vgl: bitwise against reference.
    let ns = 21; // two lane blocks + tail of 5
    let table = Table::<f64>::random([6, 5, 7], ns, 101);
    let t = table.view();
    let gmat = [[0.31, 0.0, 0.0], [0.02, 0.27, 0.0], [0.0, 0.01, 0.22]];
    let lapmet = [0.10, 0.09, 0.05, 0.01, 0.02, 0.005];
    let mut rng = Rng::new(202);
    let us: Vec<[f64; 3]> = (0..6)
        .map(|_| [rng.next(), rng.next(), rng.next()])
        .collect();
    for &u in &us {
        let mut psi_ref = vec![0.0; ns];
        evaluate_v(Backend::Reference, &t, u, &mut psi_ref);
        let mut psi = vec![0.0; ns];
        evaluate_v(backend, &t, u, &mut psi);
        assert_eq!(psi, psi_ref, "{backend}: bspline v mismatch");

        let (mut p0, mut g0, mut h0) = (vec![0.0; ns], vec![0.0; 3 * ns], vec![0.0; 6 * ns]);
        evaluate_vgh(Backend::Reference, &t, u, &mut p0, &mut g0, &mut h0);
        let (mut p1, mut g1, mut h1) = (vec![0.0; ns], vec![0.0; 3 * ns], vec![0.0; 6 * ns]);
        evaluate_vgh(backend, &t, u, &mut p1, &mut g1, &mut h1);
        assert!(
            p0 == p1 && g0 == g1 && h0 == h1,
            "{backend}: bspline vgh mismatch"
        );
        checked += 2 * ns + 10 * ns;
    }
    let nw = us.len();
    let (mut p0, mut g0, mut l0) = (
        vec![0.0; nw * ns],
        vec![0.0; 3 * nw * ns],
        vec![0.0; nw * ns],
    );
    mw_evaluate_vgl(
        Backend::Reference,
        &t,
        &us,
        &gmat,
        &lapmet,
        &mut p0,
        &mut g0,
        &mut l0,
    );
    let (mut p1, mut g1, mut l1) = (
        vec![0.0; nw * ns],
        vec![0.0; 3 * nw * ns],
        vec![0.0; nw * ns],
    );
    mw_evaluate_vgl(backend, &t, &us, &gmat, &lapmet, &mut p1, &mut g1, &mut l1);
    assert!(
        p0 == p1 && g0 == g1 && l0 == l1,
        "{backend}: bspline mw-vgl mismatch"
    );
    checked += 5 * nw * ns;

    // Value-only multi-point batch (the NLPP quadrature shape): bitwise
    // against a per-point reference loop.
    let mut psi_mw = vec![0.0; nw * ns];
    mw_evaluate_v(backend, &t, &us, &mut psi_mw);
    for (q, &u) in us.iter().enumerate() {
        let mut psi_ref = vec![0.0; ns];
        evaluate_v(Backend::Reference, &t, u, &mut psi_ref);
        assert_eq!(
            &psi_mw[q * ns..(q + 1) * ns],
            &psi_ref[..],
            "{backend}: bspline mw-v mismatch"
        );
    }
    checked += nw * ns;

    // f32 rung of the lane-width ladder: bitwise across backends (the
    // per-orbital op chain is width-independent) and tolerance-bounded
    // against an f64 shadow table holding the same coefficient values —
    // the mixed-precision drift contract.
    let table32 = Table::<f32>::random([6, 5, 7], ns, 101);
    let t32 = table32.view();
    let nodes = (6 + 3) * (5 + 3) * (7 + 3);
    let ns_pad64 = padded_len::<f64>(ns);
    let mut shadow = AlignedVec::<f64>::zeros(nodes * ns_pad64);
    for node in 0..nodes {
        for s in 0..ns {
            shadow.as_mut_slice()[node * ns_pad64 + s] =
                f64::from(table32.coefs.as_slice()[node * table32.ns_pad + s]);
        }
    }
    let t64 = SplineView {
        grid: [6, 5, 7],
        num_splines: ns,
        ns_pad: ns_pad64,
        coefs: shadow.as_slice(),
    };
    for &u in &us {
        let u32 = [u[0] as f32, u[1] as f32, u[2] as f32];
        let u64s = [f64::from(u32[0]), f64::from(u32[1]), f64::from(u32[2])];
        let mut psi32_ref = vec![0.0f32; ns];
        evaluate_v(Backend::Reference, &t32, u32, &mut psi32_ref);
        let mut psi32 = vec![0.0f32; ns];
        evaluate_v(backend, &t32, u32, &mut psi32);
        assert_eq!(psi32, psi32_ref, "{backend}: bspline f32 v mismatch");
        let mut psi64 = vec![0.0f64; ns];
        evaluate_v(Backend::Reference, &t64, u64s, &mut psi64);
        for (s, (&lo, &hi)) in psi32.iter().zip(psi64.iter()).enumerate() {
            assert!(
                (f64::from(lo) - hi).abs() < 1e-4,
                "{backend}: f32 ladder drift at spline {s}: {lo} vs {hi}"
            );
        }
        let (mut pa, mut ga, mut ha) =
            (vec![0.0f32; ns], vec![0.0f32; 3 * ns], vec![0.0f32; 6 * ns]);
        evaluate_vgh(Backend::Reference, &t32, u32, &mut pa, &mut ga, &mut ha);
        let (mut pb, mut gb, mut hb) =
            (vec![0.0f32; ns], vec![0.0f32; 3 * ns], vec![0.0f32; 6 * ns]);
        evaluate_vgh(backend, &t32, u32, &mut pb, &mut gb, &mut hb);
        assert!(
            pa == pb && ga == gb && ha == hb,
            "{backend}: bspline f32 vgh mismatch"
        );
        checked += 2 * ns + 10 * ns;
    }

    // Distance rows: bitwise against reference on an orthorhombic cell.
    let n = 37;
    let cell = OrthoCell {
        edges: [6.0, 7.0, 8.0],
    };
    let xs: Vec<f64> = (0..n).map(|_| rng.next() * 6.0).collect();
    let ys: Vec<f64> = (0..n).map(|_| rng.next() * 7.0).collect();
    let zs: Vec<f64> = (0..n).map(|_| rng.next() * 8.0).collect();
    let pos = [1.2, 5.1, 3.3];
    let run = |b: Backend| {
        let mut dist = vec![0.0; n];
        let mut disp = [vec![0.0; n], vec![0.0; n], vec![0.0; n]];
        let [a2, b2, c2] = &mut disp;
        distance_row(b, &cell, &xs, &ys, &zs, pos, n, &mut dist, [a2, b2, c2]);
        (dist, disp)
    };
    let (dist_ref, disp_ref) = run(Backend::Reference);
    let (dist, disp) = run(backend);
    assert!(
        dist == dist_ref && disp == disp_ref,
        "{backend}: distance row mismatch"
    );
    checked += 4 * n;

    // Distance rows, f32 rung: bitwise against the f32 reference (the
    // branch-free min-image arithmetic is identical per element at any
    // lane width).
    let cell32 = OrthoCell32 {
        edges: [6.0, 7.0, 8.0],
    };
    let xs32: Vec<f32> = xs.iter().map(|&x| x as f32).collect();
    let ys32: Vec<f32> = ys.iter().map(|&y| y as f32).collect();
    let zs32: Vec<f32> = zs.iter().map(|&z| z as f32).collect();
    let pos32 = [1.2f32, 5.1, 3.3];
    let run32 = |b: Backend| {
        let mut dist = vec![0.0f32; n];
        let mut disp = [vec![0.0f32; n], vec![0.0f32; n], vec![0.0f32; n]];
        let [a2, b2, c2] = &mut disp;
        distance_row(
            b,
            &cell32,
            &xs32,
            &ys32,
            &zs32,
            pos32,
            n,
            &mut dist,
            [a2, b2, c2],
        );
        (dist, disp)
    };
    let (dist_ref32, disp_ref32) = run32(Backend::Reference);
    let (dist32, disp32) = run32(backend);
    assert!(
        dist32 == dist_ref32 && disp32 == disp_ref32,
        "{backend}: f32 distance row mismatch"
    );
    checked += 4 * n;

    // J2 reductions: bitwise for soa, tolerance for simd; slabs bitwise.
    let row = |rng: &mut Rng| -> Vec<f64> { (0..n).map(|_| rng.next() - 0.5).collect() };
    let (u, dud, lap) = (row(&mut rng), row(&mut rng), row(&mut rng));
    let (dx, dy, dz) = (row(&mut rng), row(&mut rng), row(&mut rng));
    let r0 = j2_row_vgl(Backend::Reference, &u, &dud, &lap, &dx, &dy, &dz, n);
    let r1 = j2_row_vgl(backend, &u, &dud, &lap, &dx, &dy, &dz, n);
    let tol = 1e-12 * n as f64;
    match backend {
        Backend::Reference | Backend::Soa => {
            assert!(
                r0.v == r1.v && r0.g == r1.g && r0.l == r1.l,
                "{backend}: j2 row mismatch"
            );
        }
        Backend::Simd => {
            assert!(
                (r0.v - r1.v).abs() < tol
                    && (r0.l - r1.l).abs() < tol
                    && (0..3).all(|d| (r0.g[d] - r1.g[d]).abs() < tol),
                "{backend}: j2 row outside tolerance"
            );
        }
    }
    let (cu, ou, cl, ol) = (row(&mut rng), row(&mut rng), row(&mut rng), row(&mut rng));
    let base = row(&mut rng);
    let (mut vat0, mut lat0) = (base.clone(), base.clone());
    j2_accept_value_rows(
        Backend::Reference,
        &cu,
        &ou,
        &cl,
        &ol,
        &mut vat0,
        &mut lat0,
        n,
    );
    let (mut vat1, mut lat1) = (base.clone(), base);
    j2_accept_value_rows(backend, &cu, &ou, &cl, &ol, &mut vat1, &mut lat1, n);
    assert!(
        vat0 == vat1 && lat0 == lat1,
        "{backend}: j2 slab update mismatch"
    );
    checked += 7 * n;

    checked
}

/// Best-of-`reps` wall time of `f` in nanoseconds per call.
fn best_time(reps: usize, calls: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..calls {
            f();
        }
        let elapsed = start.elapsed().as_secs_f64() * 1e9 / calls as f64;
        if elapsed < best {
            best = elapsed;
        }
    }
    best
}

fn bench() {
    // Paper-scale orbital count: the dominant kernels stream ns-wide slabs.
    let ns = 128;
    let table = Table::<f64>::random([16, 16, 16], ns, 303);
    let t = table.view();
    let gmat = [[0.31, 0.0, 0.0], [0.02, 0.27, 0.0], [0.0, 0.01, 0.22]];
    let lapmet = [0.10, 0.09, 0.05, 0.01, 0.02, 0.005];
    let mut rng = Rng::new(404);
    let us: Vec<[f64; 3]> = (0..16)
        .map(|_| [rng.next(), rng.next(), rng.next()])
        .collect();

    let mut times = Vec::new();
    for b in Backend::ALL {
        let mut psi = vec![0.0; ns];
        let t_v = best_time(5, 2000, || {
            for &u in &us[..4] {
                evaluate_v(b, &t, u, &mut psi);
            }
        }) / 4.0;
        let (mut p, mut g, mut h) = (vec![0.0; ns], vec![0.0; 3 * ns], vec![0.0; 6 * ns]);
        let t_vgh = best_time(5, 1000, || {
            for &u in &us[..4] {
                evaluate_vgh(b, &t, u, &mut p, &mut g, &mut h);
            }
        }) / 4.0;
        let nw = us.len();
        let (mut pw, mut gw, mut lw) = (
            vec![0.0; nw * ns],
            vec![0.0; 3 * nw * ns],
            vec![0.0; nw * ns],
        );
        let t_mw = best_time(5, 200, || {
            mw_evaluate_vgl(b, &t, &us, &gmat, &lapmet, &mut pw, &mut gw, &mut lw);
        }) / nw as f64;
        println!(
            "kernel-bench: backend={b} ns={ns} v_ns={t_v:.0} vgh_ns={t_vgh:.0} mw_vgl_ns_per_walker={t_mw:.0}"
        );
        times.push((t_v, t_vgh, t_mw));
    }
    let speedup = |k: fn(&(f64, f64, f64)) -> f64| k(&times[0]) / k(&times[2]);
    println!(
        "kernel-bench: simd-vs-reference speedup v={:.2}x vgh={:.2}x mw_vgl={:.2}x",
        speedup(|t| t.0),
        speedup(|t| t.1),
        speedup(|t| t.2)
    );
}

fn main() {
    let bench_mode = std::env::args().any(|a| a == "--bench");
    for b in Backend::ALL {
        let checked = verify_backend(b);
        println!("kernel-verify: backend={b} families=bspline,bspline-mw-v,bspline-f32,distance,distance-f32,jastrow checked={checked} status=ok");
    }
    if bench_mode {
        bench();
    }
}
