//! Roofline machine probe (replaces Intel Advisor in Fig. 7).
//!
//! The paper's roofline analysis locates each kernel in the (arithmetic
//! intensity, GFLOP/s) plane against the machine's compute and bandwidth
//! ceilings. We measure the host's ceilings directly: a FMA-saturating
//! microkernel for peak FLOP/s (single and double precision) and a large
//! streaming triad for memory bandwidth.

use std::time::Instant;

/// Measured machine ceilings for the roofline plot.
#[derive(Clone, Copy, Debug)]
pub struct RooflineMachine {
    /// Peak single-precision GFLOP/s of one thread.
    pub peak_sp_gflops: f64,
    /// Peak double-precision GFLOP/s of one thread.
    pub peak_dp_gflops: f64,
    /// Streaming (triad) bandwidth in GB/s of one thread.
    pub bandwidth_gbs: f64,
}

impl RooflineMachine {
    /// Attainable GFLOP/s at arithmetic intensity `ai` (FLOP/byte) in the
    /// given precision: `min(peak, ai * bandwidth)`.
    pub fn attainable(&self, ai: f64, single_precision: bool) -> f64 {
        let peak = if single_precision {
            self.peak_sp_gflops
        } else {
            self.peak_dp_gflops
        };
        peak.min(ai * self.bandwidth_gbs)
    }

    /// Ridge point (AI where the machine turns compute bound).
    pub fn ridge(&self, single_precision: bool) -> f64 {
        let peak = if single_precision {
            self.peak_sp_gflops
        } else {
            self.peak_dp_gflops
        };
        peak / self.bandwidth_gbs
    }
}

#[inline(never)]
fn fma_loop_f32(iters: usize) -> f32 {
    // 8 independent accumulator chains to fill FMA pipelines.
    let mut acc = [1.0f32, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7];
    let a = 1.000_000_1f32;
    let b = 1e-9f32;
    for _ in 0..iters {
        for x in &mut acc {
            *x = x.mul_add(a, b);
        }
    }
    acc.iter().sum()
}

#[inline(never)]
fn fma_loop_f64(iters: usize) -> f64 {
    let mut acc = [1.0f64, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7];
    let a = 1.000_000_000_1f64;
    let b = 1e-15f64;
    for _ in 0..iters {
        for x in &mut acc {
            *x = x.mul_add(a, b);
        }
    }
    acc.iter().sum()
}

#[inline(never)]
fn triad(a: &mut [f64], b: &[f64], c: &[f64]) {
    for i in 0..a.len() {
        a[i] = b[i] + 0.5 * c[i];
    }
}

/// Probes the host machine's single-thread roofline ceilings. Takes a few
/// hundred milliseconds; run once per harness invocation.
pub fn probe_machine() -> RooflineMachine {
    // FLOP peaks: 2 FLOP per FMA, 8 chains.
    let iters = 4_000_000usize;
    let t = Instant::now();
    let s = fma_loop_f32(iters);
    let dt32 = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let d = fma_loop_f64(iters);
    let dt64 = t.elapsed().as_secs_f64();
    std::hint::black_box((s, d));
    let flops = (iters * 8 * 2) as f64;
    // Scalar loop measured; scale optimistically by assuming the vector
    // units widen it (we report the scalar measurement: a conservative
    // ceiling that still orders kernels correctly).
    let peak_sp = flops / dt32 / 1e9;
    let peak_dp = flops / dt64 / 1e9;

    // Bandwidth: triad over an array far larger than L3.
    let n = 1 << 24; // 16M doubles = 128 MiB per array
    let b = vec![1.0f64; n];
    let c = vec![2.0f64; n];
    let mut a = vec![0.0f64; n];
    triad(&mut a, &b, &c); // warm up / fault pages
    let t = Instant::now();
    triad(&mut a, &b, &c);
    let dt = t.elapsed().as_secs_f64();
    std::hint::black_box(a[n / 2]);
    // 3 arrays * 8 bytes moved per element (write-allocate ignored).
    let bw = (3 * n * 8) as f64 / dt / 1e9;

    RooflineMachine {
        peak_sp_gflops: peak_sp,
        peak_dp_gflops: peak_dp,
        bandwidth_gbs: bw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attainable_is_min_of_ceilings() {
        let m = RooflineMachine {
            peak_sp_gflops: 100.0,
            peak_dp_gflops: 50.0,
            bandwidth_gbs: 10.0,
        };
        assert_eq!(m.attainable(0.5, true), 5.0);
        assert_eq!(m.attainable(100.0, true), 100.0);
        assert_eq!(m.attainable(100.0, false), 50.0);
        assert_eq!(m.ridge(true), 10.0);
        assert_eq!(m.ridge(false), 5.0);
    }

    #[test]
    #[ignore = "slow hardware probe; run explicitly"]
    fn probe_returns_positive_ceilings() {
        let m = probe_machine();
        assert!(m.peak_sp_gflops > 0.1);
        assert!(m.peak_dp_gflops > 0.1);
        assert!(m.bandwidth_gbs > 0.1);
    }
}
