//! # qmc-core
//!
//! Umbrella crate for the QMC library: re-exports the full public API of
//! the workspace and provides the high-level [`simulation`] builder that
//! assembles a benchmark run in a few lines.
//!
//! The workspace reproduces *"Embracing a new era of highly efficient and
//! productive quantum Monte Carlo simulations"* (Mathuriya et al., SC'17):
//! a diffusion Monte Carlo engine with the paper's baseline (AoS, double
//! precision, store-everything) and optimized (SoA, mixed-precision,
//! forward-update, compute-on-the-fly) implementations side by side.

#![forbid(unsafe_code)]

pub use qmc_bspline as bspline;
pub use qmc_containers as containers;
pub use qmc_crowd as crowd;
pub use qmc_drivers as drivers;
pub use qmc_hamiltonian as hamiltonian;
pub use qmc_instrument as instrument;
pub use qmc_linalg as linalg;
pub use qmc_particles as particles;
pub use qmc_wavefunction as wavefunction;
pub use qmc_workloads as workloads;

/// Frequently used items in one import.
pub mod prelude {
    pub use qmc_containers::{Matrix, Pos, Real, TinyVector, VectorSoaContainer};
    pub use qmc_crowd::{run_dmc_crowd, run_vmc_crowd, Crowd, CrowdScheduler};
    pub use qmc_drivers::{
        initial_population, run_dmc, run_dmc_parallel, run_vmc, Batching, DmcParams, DmcResult,
        HamiltonianSet, QmcEngine, VmcParams, Walker,
    };
    pub use qmc_hamiltonian::{kinetic_energy, CoulombEE, CoulombEI, LocalEnergy, NonLocalPP};
    pub use qmc_instrument::{Kernel, Profile};
    pub use qmc_particles::{CrystalLattice, Layout, ParticleSet, Species};
    pub use qmc_wavefunction::{
        BsplineSpo, CosineSpo, DetUpdateMode, DiracDeterminant, J1Ref, J1Soa, J2Ref, J2Soa,
        PairFunctors, SpoLayout, TrialWaveFunction,
    };
    pub use qmc_workloads::{
        run_dmc_benchmark, Benchmark, CodeVersion, RunConfig, RunOutcome, Size, Workload,
    };
}

pub mod simulation;
