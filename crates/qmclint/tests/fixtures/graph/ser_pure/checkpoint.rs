// fixture-path: crates/drivers/src/checkpoint.rs
// fixture-silences: serialization-purity
//! Silence witness: a checkpoint path that only reads walker state. The
//! serializer, its encoding helper, and the digest all traverse tracked
//! fields read-only, so the interprocedural purity walk stays quiet.

/// Pure root: serializer delegating to read-only helpers.
pub fn serialize_walker(w: &Walker) -> Vec<u8> {
    let mut out = encode_weight(w);
    out.push(tag_byte());
    out
}

/// Reads `weight` without writing anything.
fn encode_weight(w: &Walker) -> Vec<u8> {
    w.weight.to_le_bytes().to_vec()
}

/// Wire-format tag, no state touched at all.
fn tag_byte() -> u8 {
    7
}

/// Pure root by name: reads the RNG words without drawing.
pub fn walker_digest_full(w: &Walker) -> u64 {
    w.weight.to_bits() ^ w.rng.state()[0]
}
