// fixture-path: crates/crowd/src/sched_fixture.rs
//! Seeded bug: the generation loop takes `counts` before `profile`...

/// Acquires `counts`, then `profile` while the first guard is held.
pub fn generation(s: &Shared) {
    let mut c = s.counts.lock();
    c.bump();
    s.profile.lock().merge(&c); //~ lock-order
}
