//! Walker-buffer state tests: `save_state`/`load_state` must capture the
//! complete PbyP state of every component — after restoring, ratios,
//! gradients and log values must be indistinguishable from the moment the
//! snapshot was taken, no matter what happened in between.

use qmc_bspline::CubicBspline1D;
use qmc_containers::{Pos, TinyVector};
use qmc_particles::{CrystalLattice, Layout, ParticleSet, Species};
use qmc_wavefunction::{
    traits::WaveFunctionComponent, CosineSpo, DetUpdateMode, DiracDeterminant, J1Ref, J1Soa, J2Ref,
    J2Soa, PairFunctors, WalkerBuffer,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const L: f64 = 7.0;

fn electrons(n: usize, seed: u64) -> ParticleSet<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let lat = CrystalLattice::cubic(L);
    let pos: Vec<Pos<f64>> = (0..n)
        .map(|_| {
            TinyVector([
                rng.random::<f64>() * L,
                rng.random::<f64>() * L,
                rng.random::<f64>() * L,
            ])
        })
        .collect();
    let half = n / 2;
    ParticleSet::new(
        "e",
        lat,
        vec![
            (
                Species {
                    name: "u".into(),
                    charge: -1.0,
                },
                pos[..half].to_vec(),
            ),
            (
                Species {
                    name: "d".into(),
                    charge: -1.0,
                },
                pos[half..].to_vec(),
            ),
        ],
    )
}

fn ions() -> ParticleSet<f64> {
    ParticleSet::new(
        "ion0",
        CrystalLattice::cubic(L),
        vec![(
            Species {
                name: "X".into(),
                charge: 4.0,
            },
            vec![TinyVector([1.0, 1.0, 1.0]), TinyVector([4.0, 4.0, 4.0])],
        )],
    )
}

fn functors() -> PairFunctors<f64> {
    PairFunctors::new(2, |a, b| {
        let (amp, cusp) = if a == b { (0.3, -0.25) } else { (0.45, -0.5) };
        CubicBspline1D::fit(move |r| amp * (1.0 - r / 3.0).powi(3), cusp, 3.0, 8)
    })
}

/// Snapshot, scramble with accepted moves, restore at the snapshot
/// positions, and verify observables match the snapshot.
fn roundtrip_under_scramble(
    p: &mut ParticleSet<f64>,
    c: &mut dyn WaveFunctionComponent<f64>,
    seed: u64,
) {
    let n = p.len();
    p.update_tables();
    c.evaluate_log(p);

    // Take the snapshot: positions + component state + observables.
    let mut snap_pos = vec![TinyVector::zero(); n];
    p.store_positions(&mut snap_pos);
    let mut buf = WalkerBuffer::new();
    c.save_state(&mut buf);
    let log0 = c.log_value();
    let grads0: Vec<Pos<f64>> = (0..n).map(|i| c.eval_grad(p, i)).collect();

    // Scramble: a sweep of accepted moves.
    let mut rng = StdRng::seed_from_u64(seed);
    for iat in 0..n {
        p.prepare_move(iat);
        let newpos = p.pos(iat)
            + TinyVector([
                rng.random::<f64>() - 0.5,
                rng.random::<f64>() - 0.5,
                rng.random::<f64>() - 0.5,
            ]);
        p.make_move(iat, newpos);
        let mut g = TinyVector::zero();
        c.ratio_grad(p, iat, &mut g);
        c.accept_move(p, iat);
        p.accept_move(iat);
    }
    assert!(
        (c.log_value() - log0).abs() > 1e-6,
        "scramble had no effect"
    );

    // Restore: positions back, tables rebuilt, state from buffer.
    p.load_positions(&snap_pos);
    buf.rewind();
    c.load_state(&mut buf);
    assert!(buf.fully_consumed(), "buffer layout mismatch");
    assert!(
        (c.log_value() - log0).abs() < 1e-12,
        "log after restore: {} vs {}",
        c.log_value(),
        log0
    );
    for (i, g0) in grads0.iter().enumerate() {
        let g = c.eval_grad(p, i);
        assert!(
            (g - *g0).norm() < 1e-9,
            "grad[{i}] after restore: {g:?} vs {g0:?}"
        );
    }
    // Ratios from the restored state match a fresh component built at the
    // same configuration (the ultimate consistency check).
    let fresh_log = c.evaluate_log(p);
    assert!(
        (fresh_log - log0).abs() < 1e-9,
        "fresh {fresh_log} vs snapshot {log0}"
    );
}

#[test]
fn j2_soa_state_roundtrip() {
    let mut p = electrons(8, 1);
    let h = p.add_table_aa(Layout::Soa);
    let mut c = J2Soa::new(&p, h, functors());
    roundtrip_under_scramble(&mut p, &mut c, 100);
}

#[test]
fn j2_ref_state_roundtrip() {
    let mut p = electrons(8, 2);
    let h = p.add_table_aa(Layout::Aos);
    let mut c = J2Ref::new(&p, h, functors());
    roundtrip_under_scramble(&mut p, &mut c, 200);
}

#[test]
fn j1_soa_state_roundtrip() {
    let ions = ions();
    let mut p = electrons(6, 3);
    p.add_table_aa(Layout::Soa);
    let h = p.add_table_ab(&ions, Layout::Soa);
    let fs = vec![CubicBspline1D::fit(
        |r| -0.4 * (1.0 - r / 2.5).powi(2),
        0.0,
        2.5,
        8,
    )];
    let mut c = J1Soa::new(&p, &ions, h, fs);
    roundtrip_under_scramble(&mut p, &mut c, 300);
}

#[test]
fn j1_ref_state_roundtrip() {
    let ions = ions();
    let mut p = electrons(6, 4);
    p.add_table_aa(Layout::Aos);
    let h = p.add_table_ab(&ions, Layout::Aos);
    let fs = vec![CubicBspline1D::fit(
        |r| -0.4 * (1.0 - r / 2.5).powi(2),
        0.0,
        2.5,
        8,
    )];
    let mut c = J1Ref::new(&p, &ions, h, fs);
    roundtrip_under_scramble(&mut p, &mut c, 400);
}

#[test]
fn determinant_state_roundtrip_sm() {
    let mut p = electrons(6, 5);
    p.add_table_aa(Layout::Soa);
    let mut c = DiracDeterminant::new(
        Box::new(CosineSpo::<f64>::new(6, [L, L, L])),
        0,
        6,
        DetUpdateMode::ShermanMorrison,
    );
    roundtrip_under_scramble(&mut p, &mut c, 500);
}

#[test]
fn determinant_state_roundtrip_delayed() {
    let mut p = electrons(6, 6);
    p.add_table_aa(Layout::Soa);
    let mut c = DiracDeterminant::new(
        Box::new(CosineSpo::<f64>::new(6, [L, L, L])),
        0,
        6,
        DetUpdateMode::Delayed(3),
    );
    roundtrip_under_scramble(&mut p, &mut c, 600);
}
