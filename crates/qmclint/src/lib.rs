//! # qmclint — QMC project-invariant analyzer
//!
//! The paper's three riskiest transformations — mixed precision (§7.2),
//! forward-update distance tables and compute-on-the-fly Jastrow factors —
//! trade stored state for recomputation and narrower types, so their
//! correctness rests on invariants the type system cannot see: where
//! `f32↔f64` casts are allowed, which paths must stay allocation- and
//! panic-free, and which kernels must feed the timer taxonomy the run
//! report is built from. `qmclint` enforces those invariants mechanically:
//!
//! 1. **precision-cast** — raw `as f32`/`as f64` casts and suffixed float
//!    literals in physics crates are only legal in designated
//!    mixed-precision modules.
//! 2. **hot-path** — kernel functions must not allocate or panic.
//! 3. **unsafe-comment** — every `unsafe` carries a `// SAFETY:` comment.
//! 4. **timer-coverage** — `mw_*` entry points are timed, and every
//!    `Kernel` variant is referenced by some instrumentation site.
//! 5. **determinism** — no wall clocks, OS entropy, or hash-map iteration
//!    in physics crates.
//!
//! Dependency-free by necessity (the registry is unreachable): the lexer
//! is hand-rolled, and the configuration lives in [`config`] rather than a
//! toml file. Exceptions are justified in-source via
//! `// qmclint: allow(<rule>) — <reason>` markers; a marker without a
//! reason is itself a diagnostic.

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use config::{classify, FileClass};
pub use diag::{render_json, Diagnostic, Rule, ALL_RULES};
pub use rules::{check_kernel_coverage, lint_source, KernelUsage};

/// Result of linting a whole workspace tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by (file, line).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files actually scanned (exempt files excluded).
    pub files_scanned: usize,
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | ".git" | "node_modules") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints every non-exempt `.rs` file under `root` (the repo checkout) and
/// runs the workspace-level kernel-coverage cross-check.
pub fn lint_workspace(root: &Path) -> LintReport {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);

    let mut report = LintReport::default();
    let mut usage = KernelUsage::default();
    let mut timer: Option<(String, String)> = None;

    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let class = classify(&rel);
        if class.exempt {
            continue;
        }
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        if rel == "crates/instrument/src/timer.rs" {
            timer = Some((rel.clone(), src.clone()));
        }
        report.files_scanned += 1;
        lint_source(&rel, &src, class, &mut report.diagnostics, &mut usage);
    }

    if let Some((rel, src)) = &timer {
        check_kernel_coverage(rel, src, &usage, &mut report.diagnostics);
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
}
