//! # qmc-kernels — the swappable-backend hot-kernel library
//!
//! Every hot kernel of the miniapp — tricubic B-spline SPO evaluation
//! (v / vgh / fused vgl, single- and multi-walker), SoA distance-row
//! updates and the two-body Jastrow accumulations — lives behind the
//! single dispatch seam in this crate. Each kernel family is implemented
//! by three [`Backend`]s:
//!
//! * [`Backend::Reference`] — the scalar loops moved verbatim from the
//!   physics crates (spline-outermost B-spline accumulation, per-element
//!   distance rows, scalar Jastrow reductions). The baseline every other
//!   backend is verified against.
//! * [`Backend::Soa`] — the auto-vectorized structure-of-arrays loops
//!   (spline-innermost slabs per arXiv:1611.02665): what the paper's
//!   "Current" code version ran before this crate existed.
//! * [`Backend::Simd`] — explicit vectorization with portable-SIMD-style
//!   lane structs ([`lanes::WideLane`]): fixed-width register blocks that
//!   keep all accumulators of a spline block in registers across the
//!   64-node stencil instead of streaming every output slab through
//!   memory once per node, with the 64 stencil weights precomputed
//!   through hoisted `(a, b)` prefactor products (the register
//!   blocking/tiling scheme of arXiv:1611.02665) and a cache-blocked
//!   multi-walker vgl variant that amortizes that prefactor work across
//!   the crowd. Lane width follows the mixed-precision ladder
//!   ([`lanes::wide_f32`]): `f64` kernels run 8 lanes, `f32` kernels run
//!   the 16-wide rung. Pure safe Rust — the audited unsafe surface of
//!   the workspace is unchanged.
//!
//! ## Verification contract
//!
//! The cross-backend harness in `tests/` (and `src/bin/kernel_verify.rs`,
//! which CI runs) pins the following equivalences over seeded random
//! inputs:
//!
//! * **B-spline v / vgh / vgl / mw-vgl**: all three backends are
//!   **bitwise identical** — every backend accumulates each orbital over
//!   the 64 stencil nodes in the same order with the same `mul_add`
//!   placement; the backends differ only in loop structure and memory
//!   traffic.
//! * **Distance rows**: all three backends are **bitwise identical** on
//!   orthorhombic cells (identical branch-free min-image arithmetic) and
//!   on general cells (all fall back to the same minimum-image wrap).
//! * **J2 accumulation**: `reference` and `soa` are **bitwise identical**
//!   (same reduction order); `simd` splits reductions across lanes and is
//!   therefore only guaranteed **within tolerance** (a few ULP times the
//!   row length).
//!
//! Trajectory-level consequence (checked by `qmcsched`): a full VMC/DMC
//! run is bitwise independent of the backend choice between `reference`
//! and `soa`; `simd` runs are statistically identical but may diverge
//! walker-by-walker once a Metropolis decision lands on the reduction
//! tolerance.
//!
//! ## Backend selection
//!
//! The process-wide backend is selected once at startup: the
//! `QMC_KERNEL_BACKEND` environment variable (`reference` / `soa` /
//! `simd`) sets the initial value, and the `--backend` flag of `miniqmc`
//! overrides it via [`set_backend`]. Engines capture
//! [`Backend::current`] when they are built, so a run never mixes
//! backends mid-flight.

#![forbid(unsafe_code)]
// Register-blocked micro-kernels live or die by guaranteed inlining: a
// missed inline on a `Lane` op or a stencil helper spills the whole
// accumulator block to the stack, which is the exact traffic the simd
// backend exists to remove.
#![allow(clippy::inline_always)]
// Kernel entry points take flat output slabs (psi/grad/lap/...) as
// separate slices on purpose — bundling them into structs would force the
// callers to allocate views per call on the hot path.
#![allow(clippy::too_many_arguments)]

pub mod bspline;
pub mod distance;
pub mod jastrow;
pub mod lanes;

pub use bspline::{bspline_weights, SplineView};
pub use distance::MinImageCell;

use std::sync::atomic::{AtomicU8, Ordering};

/// A kernel implementation strategy. See the crate docs for the
/// verification contract between backends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Scalar loops moved from the physics crates (spline-outermost).
    Reference,
    /// Auto-vectorized spline-innermost SoA slabs (the former "Current"
    /// code path).
    Soa,
    /// Explicit lane-struct vectorization with register blocking.
    Simd,
}

impl Backend {
    /// Every backend, in verification order (`Reference` is the baseline).
    pub const ALL: [Backend; 3] = [Backend::Reference, Backend::Soa, Backend::Simd];

    /// Stable lower-case label (CLI flag value, report field, log lines).
    pub fn label(self) -> &'static str {
        match self {
            Backend::Reference => "reference",
            Backend::Soa => "soa",
            Backend::Simd => "simd",
        }
    }

    /// Parses a CLI/env backend name.
    // qmclint: cold — CLI/env parsing, never on the Monte Carlo path.
    pub fn parse(s: &str) -> Result<Backend, String> {
        match s.to_ascii_lowercase().as_str() {
            "reference" | "ref" => Ok(Backend::Reference),
            "soa" => Ok(Backend::Soa),
            "simd" => Ok(Backend::Simd),
            other => Err(format!(
                "unknown kernel backend '{other}' (valid: reference, soa, simd)"
            )),
        }
    }

    /// The process-wide backend: the last [`set_backend`] value, else the
    /// `QMC_KERNEL_BACKEND` environment variable, else [`Backend::Soa`]
    /// (the pre-seam behavior of the optimized code path).
    pub fn current() -> Backend {
        match CURRENT.load(Ordering::Relaxed) {
            UNSET => {
                let b = Self::from_env().unwrap_or(Backend::Soa);
                // Another thread may race the first read; both resolve the
                // same env value, so last-write-wins is benign.
                CURRENT.store(b.tag(), Ordering::Relaxed);
                b
            }
            tag => Self::from_tag(tag),
        }
    }

    /// Reads `QMC_KERNEL_BACKEND`; `None` when unset. Panics loudly on an
    /// invalid value — a typoed backend must not silently benchmark the
    /// default.
    // qmclint: cold — env parsing at startup, never on the Monte Carlo path.
    pub fn from_env() -> Option<Backend> {
        let v = std::env::var("QMC_KERNEL_BACKEND").ok()?;
        if v.is_empty() {
            return None;
        }
        match Self::parse(&v) {
            Ok(b) => Some(b),
            Err(e) => panic!("QMC_KERNEL_BACKEND: {e}"),
        }
    }

    fn tag(self) -> u8 {
        match self {
            Backend::Reference => 0,
            Backend::Soa => 1,
            Backend::Simd => 2,
        }
    }

    fn from_tag(tag: u8) -> Backend {
        match tag {
            0 => Backend::Reference,
            1 => Backend::Soa,
            _ => Backend::Simd,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

const UNSET: u8 = u8::MAX;
static CURRENT: AtomicU8 = AtomicU8::new(UNSET);

/// Sets the process-wide backend (the `miniqmc --backend` flag). Engines
/// capture the value at construction, so call this before building them.
pub fn set_backend(b: Backend) {
    CURRENT.store(b.tag(), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip_through_parse() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.label()), Ok(b));
        }
        assert_eq!(Backend::parse("REF"), Ok(Backend::Reference));
        assert!(Backend::parse("avx512").is_err());
    }

    #[test]
    fn set_backend_wins_over_default() {
        set_backend(Backend::Simd);
        assert_eq!(Backend::current(), Backend::Simd);
        set_backend(Backend::Soa);
        assert_eq!(Backend::current(), Backend::Soa);
    }
}
