//! Diagnostics: the lint finding record plus human and JSON rendering.

use std::fmt;
use std::fmt::Write as _;

/// The five QMC invariant rule families (plus marker hygiene).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Raw `as f32`/`as f64` casts and suffixed float literals outside the
    /// designated mixed-precision modules.
    PrecisionCast,
    /// Allocation / panic machinery inside hot kernel functions.
    HotPath,
    /// `unsafe` without an adjacent `// SAFETY:` comment.
    UnsafeComment,
    /// `mw_*` kernel entry points not wrapped in a `Kernel::*` timer, and
    /// `Kernel` variants never timed anywhere.
    TimerCoverage,
    /// Non-deterministic constructs (`SystemTime`, `thread_rng`, hash-map
    /// iteration) in physics crates.
    Determinism,
    /// Allocation / panic machinery reachable from a hot kernel entry
    /// point through its transitive callee set (the inter-procedural half
    /// of [`Rule::HotPath`]; the diagnostic carries the call chain).
    HotPathCall,
    /// `f32`-typed locals or `f32`-returning calls flowing into an `f64`
    /// accumulator without a designated promotion site.
    PrecisionFlow,
    /// Inconsistent lock-acquisition order among functions reachable from
    /// the crowd scheduler (potential deadlock).
    LockOrder,
    /// Walker/RNG/buffer state mutated on a path reachable from a
    /// designated pure root (serializers, digests, estimator readers,
    /// `Clone` impls) — the PR-7 bug class, caught before it breaks
    /// bitwise restart parity. The diagnostic carries the call chain from
    /// the pure root to the mutation site.
    SerializationPurity,
    /// An RNG draw site outside the sanctioned driver/branch/move modules,
    /// or a stream re-key outside the explicit migration marker functions.
    RngDiscipline,
    /// A field of a registered checkpointed struct that does not appear in
    /// its serialize/deserialize/digest/clone carriers — adding a field
    /// without extending the `qmc-checkpoint/1` codec fails here instead
    /// of silently breaking restart parity.
    StateCoverage,
    /// A `&mut`/interior-mutable capture mutated from a parallel closure
    /// while aliased across concurrently-spawned siblings. Provably
    /// disjoint patterns (closure parameters from `par_chunks_mut`,
    /// per-iteration bindings, lock-guarded chains) are sanctioned.
    SharedMutableCapture,
    /// A bare `+=`/`-=` float accumulation inside (or merging after) a
    /// parallel section instead of the deterministic fixed-shape reduction
    /// (`qmc_drivers::reduce::det_sum*`) or the documented walker-order
    /// sequential merge — the schedule-dependent-bits bug class.
    ParallelReductionOrder,
    /// A single RNG borrow crossing a spawn boundary: a draw through a
    /// captured stream shared between parallel closures. Walkers own their
    /// streams; re-keying happens only in `reseed_for_migration`.
    RngCapture,
    /// A parallel entry point (a non-test function containing a spawn
    /// site) with no registered named `qmcsched` case exercising it, or a
    /// registry row gone stale (case missing, witness ident no longer
    /// reachable from the case).
    ScheduleCoverage,
    /// Malformed `qmclint:` marker (unknown rule, missing justification).
    BadMarker,
}

/// Every per-file lexical rule, in display order ([`Rule::BadMarker`] is
/// meta; the graph rules live in [`GRAPH_RULES`]).
pub const ALL_RULES: [Rule; 5] = [
    Rule::PrecisionCast,
    Rule::HotPath,
    Rule::UnsafeComment,
    Rule::TimerCoverage,
    Rule::Determinism,
];

/// The workspace-level rules that need the call-graph model (qmclint v2).
/// Exercised by the multi-file fixtures under `tests/fixtures/graph/`.
pub const GRAPH_RULES: [Rule; 3] = [Rule::HotPathCall, Rule::PrecisionFlow, Rule::LockOrder];

/// The mutation-effect rules layered on the call graph (qmclint v3). Like
/// the graph rules they are exercised by multi-file fixtures under
/// `tests/fixtures/graph/`.
pub const EFFECT_RULES: [Rule; 3] = [
    Rule::SerializationPurity,
    Rule::RngDiscipline,
    Rule::StateCoverage,
];

/// The concurrency-safety rules over the spawn-site model (qmclint v4),
/// run ahead of the sharded executor so every parallel construct lands
/// with its aliasing, reduction order and schedule coverage already
/// checked. Exercised by multi-file fixtures under `tests/fixtures/graph/`.
pub const PAR_RULES: [Rule; 4] = [
    Rule::SharedMutableCapture,
    Rule::ParallelReductionOrder,
    Rule::RngCapture,
    Rule::ScheduleCoverage,
];

impl Rule {
    /// Stable rule id used in diagnostics and allow markers.
    pub fn id(self) -> &'static str {
        match self {
            Rule::PrecisionCast => "precision-cast",
            Rule::HotPath => "hot-path",
            Rule::UnsafeComment => "unsafe-comment",
            Rule::TimerCoverage => "timer-coverage",
            Rule::Determinism => "determinism",
            Rule::HotPathCall => "hot-path-call",
            Rule::PrecisionFlow => "precision-flow",
            Rule::LockOrder => "lock-order",
            Rule::SerializationPurity => "serialization-purity",
            Rule::RngDiscipline => "rng-discipline",
            Rule::StateCoverage => "state-coverage",
            Rule::SharedMutableCapture => "shared-mutable-capture",
            Rule::ParallelReductionOrder => "parallel-reduction-order",
            Rule::RngCapture => "rng-capture",
            Rule::ScheduleCoverage => "schedule-coverage",
            Rule::BadMarker => "bad-marker",
        }
    }

    /// Parses a rule id as written in an allow marker.
    pub fn from_id(s: &str) -> Option<Rule> {
        match s {
            "precision-cast" => Some(Rule::PrecisionCast),
            "hot-path" => Some(Rule::HotPath),
            "unsafe-comment" => Some(Rule::UnsafeComment),
            "timer-coverage" => Some(Rule::TimerCoverage),
            "determinism" => Some(Rule::Determinism),
            "hot-path-call" => Some(Rule::HotPathCall),
            "precision-flow" => Some(Rule::PrecisionFlow),
            "lock-order" => Some(Rule::LockOrder),
            "serialization-purity" => Some(Rule::SerializationPurity),
            "rng-discipline" => Some(Rule::RngDiscipline),
            "state-coverage" => Some(Rule::StateCoverage),
            "shared-mutable-capture" => Some(Rule::SharedMutableCapture),
            "parallel-reduction-order" => Some(Rule::ParallelReductionOrder),
            "rng-capture" => Some(Rule::RngCapture),
            "schedule-coverage" => Some(Rule::ScheduleCoverage),
            "bad-marker" => Some(Rule::BadMarker),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// What is wrong.
    pub message: String,
    /// How to fix or justify it.
    pub suggestion: String,
    /// Call chain from the anchor site to the offending site (graph rules
    /// only; empty for the per-file lexical rules). Each entry is
    /// `fn_name (file:line)`.
    pub chain: Vec<String>,
}

impl Diagnostic {
    /// `file:line: [rule] message` followed by an indented help line (and,
    /// for graph rules, the call chain).
    pub fn render_human(&self) -> String {
        let mut out = format!(
            "{}:{}: [{}] {}\n    help: {}",
            self.file, self.line, self.rule, self.message, self.suggestion
        );
        if !self.chain.is_empty() {
            let _ = write!(out, "\n    via: {}", self.chain.join(" -> "));
        }
        out
    }
}

/// Escapes a string for JSON output (the linter is dependency-free, so the
/// writer is inlined here rather than borrowed from `qmc-instrument`).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Workspace-wide effect-inference inventory reported alongside the
/// diagnostics in the `qmclint/2` `effects` block. All counts are over the
/// analyzed model (test-masked items excluded), so CI can watch the
/// analysis surface itself — a pure-root inventory dropping to zero means
/// the serialization-purity rule silently stopped seeing its roots.
#[derive(Clone, Debug, Default)]
pub struct EffectsSummary {
    /// Functions matched by the pure-root predicate (serializers, digests,
    /// estimator readers, `Clone` impls).
    pub pure_roots: usize,
    /// RNG draw sites observed in the model (sanctioned or not).
    pub rng_draw_sites: usize,
    /// `(struct name, named field count)` for every registered
    /// checkpointed struct found in the workspace, sorted by name.
    pub checkpointed_structs: Vec<(String, usize)>,
}

/// Workspace-wide concurrency inventory reported alongside the diagnostics
/// in the `qmclint/3` `par` block. Like [`EffectsSummary`], the counts let
/// CI watch the analysis surface itself — `spawn_sites` dropping to zero
/// means the classifier silently stopped seeing the parallel sections.
#[derive(Clone, Debug, Default)]
pub struct ParSummary {
    /// Parallel-closure sites (`scope.spawn`, `par_chunks_mut`/`par_iter`
    /// `for_each`) in analyzed non-test functions.
    pub spawn_sites: usize,
    /// Non-test functions containing at least one spawn site — the
    /// parallel entry points the schedule-coverage rule tracks.
    pub parallel_fns: usize,
    /// Named `qmcsched` exploration cases found (`explore_*` functions in
    /// `crates/qmcsched/src/`).
    pub sched_cases: usize,
    /// Call sites to the deterministic reduction primitive
    /// (`det_sum` / `det_sum_by` / `det_weighted_mean`).
    pub det_reduce_calls: usize,
}

/// Renders a full report (`qmclint/3` schema) as machine-readable JSON.
///
/// Each schema bump has been purely additive. v2 added the `by_rule`
/// count object (every rule id at its count — the CI gate greps this to
/// fail on any diagnostic class going nonzero) and a per-diagnostic
/// `chain` array. The `qmclint/2` tag added the `effects` block:
/// per-effect-rule counts, the pure-root inventory and
/// per-checkpointed-struct field tallies from [`EffectsSummary`].
/// `qmclint/3` extends `by_rule` with the four concurrency rules and adds
/// the `par` block: the spawn-site / parallel-fn / sched-case /
/// det-reduce-call inventory from [`ParSummary`] plus per-par-rule counts.
pub fn render_json(
    diags: &[Diagnostic],
    files_scanned: usize,
    effects: &EffectsSummary,
    par: &ParSummary,
) -> String {
    let mut out = String::from("{\"schema\":\"qmclint/3\",");
    let _ = write!(out, "\"files_scanned\":{files_scanned},");
    let _ = write!(out, "\"diagnostics_total\":{},", diags.len());
    out.push_str("\"by_rule\":{");
    let all: Vec<Rule> = ALL_RULES
        .iter()
        .chain(GRAPH_RULES.iter())
        .chain(EFFECT_RULES.iter())
        .chain(PAR_RULES.iter())
        .copied()
        .chain([Rule::BadMarker])
        .collect();
    for (i, rule) in all.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let count = diags.iter().filter(|d| d.rule == *rule).count();
        let _ = write!(out, "\"{rule}\":{count}");
    }
    out.push_str("},\"effects\":{");
    let _ = write!(out, "\"pure_roots\":{},", effects.pure_roots);
    let _ = write!(out, "\"rng_draw_sites\":{},", effects.rng_draw_sites);
    out.push_str("\"checkpointed_structs\":{");
    for (i, (name, fields)) in effects.checkpointed_structs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(name), fields);
    }
    out.push_str("},\"rules\":{");
    for (i, rule) in EFFECT_RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let count = diags.iter().filter(|d| d.rule == *rule).count();
        let _ = write!(out, "\"{rule}\":{count}");
    }
    out.push_str("}},\"par\":{");
    let _ = write!(out, "\"spawn_sites\":{},", par.spawn_sites);
    let _ = write!(out, "\"parallel_fns\":{},", par.parallel_fns);
    let _ = write!(out, "\"sched_cases\":{},", par.sched_cases);
    let _ = write!(out, "\"det_reduce_calls\":{},", par.det_reduce_calls);
    out.push_str("\"rules\":{");
    for (i, rule) in PAR_RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let count = diags.iter().filter(|d| d.rule == *rule).count();
        let _ = write!(out, "\"{rule}\":{count}");
    }
    out.push_str("}},\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\",\"suggestion\":\"{}\"",
            json_escape(&d.file),
            d.line,
            d.rule,
            json_escape(&d.message),
            json_escape(&d.suggestion)
        );
        if !d.chain.is_empty() {
            out.push_str(",\"chain\":[");
            for (j, hop) in d.chain.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", json_escape(hop));
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_roundtrip() {
        for r in ALL_RULES
            .iter()
            .chain(&GRAPH_RULES)
            .chain(&EFFECT_RULES)
            .chain(&PAR_RULES)
        {
            assert_eq!(Rule::from_id(r.id()), Some(*r));
        }
        assert_eq!(Rule::from_id("nope"), None);
    }

    #[test]
    fn json_escapes_quotes() {
        let d = Diagnostic {
            file: "a.rs".into(),
            line: 3,
            rule: Rule::HotPath,
            message: "call to `unwrap()`".into(),
            suggestion: "don't".into(),
            chain: Vec::new(),
        };
        let j = render_json(&[d], 1, &EffectsSummary::default(), &ParSummary::default());
        assert!(j.contains("\\`unwrap()\\`") || j.contains("`unwrap()`"));
        assert!(j.contains("\"files_scanned\":1"));
        assert!(j.contains("\"rule\":\"hot-path\""));
        assert!(j.contains("\"by_rule\":{"));
        assert!(j.contains("\"hot-path\":1"));
        assert!(j.contains("\"lock-order\":0"));
        assert!(j.contains("\"serialization-purity\":0"));
        assert!(j.contains("\"shared-mutable-capture\":0"));
    }

    #[test]
    fn effects_block_renders_inventory_and_rule_counts() {
        let d = Diagnostic {
            file: "crates/drivers/src/serialize.rs".into(),
            line: 181,
            rule: Rule::SerializationPurity,
            message: "rng re-key on a pure path".into(),
            suggestion: "move it".into(),
            chain: vec!["serialize_walker (crates/drivers/src/serialize.rs:40)".into()],
        };
        let effects = EffectsSummary {
            pure_roots: 7,
            rng_draw_sites: 5,
            checkpointed_structs: vec![("DmcState".into(), 9), ("Walker".into(), 8)],
        };
        let j = render_json(&[d], 3, &effects, &ParSummary::default());
        assert!(j.starts_with("{\"schema\":\"qmclint/3\","));
        assert!(j.contains(
            "\"effects\":{\"pure_roots\":7,\"rng_draw_sites\":5,\
             \"checkpointed_structs\":{\"DmcState\":9,\"Walker\":8},\
             \"rules\":{\"serialization-purity\":1,\"rng-discipline\":0,\"state-coverage\":0}}"
        ));
        // The top-level by_rule object carries the effect rules too.
        assert!(j.contains("\"serialization-purity\":1"));
    }

    #[test]
    fn par_block_renders_inventory_and_rule_counts() {
        let d = Diagnostic {
            file: "crates/drivers/src/parallel.rs".into(),
            line: 90,
            rule: Rule::ParallelReductionOrder,
            message: "bare `esum += ..` merged after a parallel section".into(),
            suggestion: "reduce through qmc_drivers::reduce::det_sum_by".into(),
            chain: vec!["parallel_generation (crates/drivers/src/parallel.rs:60)".into()],
        };
        let par = ParSummary {
            spawn_sites: 9,
            parallel_fns: 8,
            sched_cases: 8,
            det_reduce_calls: 14,
        };
        let j = render_json(&[d], 4, &EffectsSummary::default(), &par);
        assert!(j.starts_with("{\"schema\":\"qmclint/3\","));
        assert!(j.contains(
            "\"par\":{\"spawn_sites\":9,\"parallel_fns\":8,\
             \"sched_cases\":8,\"det_reduce_calls\":14,\
             \"rules\":{\"shared-mutable-capture\":0,\"parallel-reduction-order\":1,\
             \"rng-capture\":0,\"schedule-coverage\":0}}"
        ));
        // The top-level by_rule object carries the par rules too.
        assert!(j.contains("\"parallel-reduction-order\":1"));
    }

    #[test]
    fn chain_renders_in_both_formats() {
        let d = Diagnostic {
            file: "a.rs".into(),
            line: 3,
            rule: Rule::HotPathCall,
            message: "reached alloc".into(),
            suggestion: "hoist".into(),
            chain: vec!["evaluate (a.rs:3)".into(), "helper (b.rs:9)".into()],
        };
        assert!(d
            .render_human()
            .contains("via: evaluate (a.rs:3) -> helper (b.rs:9)"));
        let j = render_json(&[d], 2, &EffectsSummary::default(), &ParSummary::default());
        assert!(j.contains("\"chain\":[\"evaluate (a.rs:3)\",\"helper (b.rs:9)\"]"));
        assert!(j.contains("\"hot-path-call\":1"));
    }
}
