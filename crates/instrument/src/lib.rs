//! # qmc-instrument
//!
//! Measurement infrastructure replacing the paper's tooling stack:
//!
//! * [`timer`] — per-kernel scoped timers for the hot-spot profiles of
//!   Fig. 2 / Fig. 7 (QMCPACK timer framework / Intel VTune).
//! * FLOP/byte counters on the same profile for the roofline's arithmetic
//!   intensity axis (Intel Advisor).
//! * [`roofline`] — a microbenchmark probe of the host's compute and
//!   bandwidth ceilings.
//! * [`memory`] — an allocation ledger plus process RSS for the footprint
//!   studies of Fig. 8 / Fig. 9.
//! * [`energy`] — the constant-power energy model for Fig. 10.

// Indexed loops over multiple parallel slices are the deliberate idiom in
// the SIMD kernels (mirrors the paper's C++ and keeps the auto-vectorizer's
// job obvious); iterator zips would obscure them.
#![allow(clippy::needless_range_loop)]

pub mod energy;
pub mod ftz;
pub mod memory;
pub mod roofline;
pub mod timer;

pub use energy::{EnergyModel, Phase, DEFAULT_DMC_WATTS, DEFAULT_INIT_WATTS};
pub use ftz::enable_ftz;
pub use memory::{current_rss_bytes, MemoryLedger};
pub use roofline::{probe_machine, RooflineMachine};
pub use timer::{
    add_flops_bytes, drain_thread_profile, time_kernel, Kernel, KernelStats, Profile, ALL_KERNELS,
    NUM_KERNELS,
};
