// fixture-class: physics
// Wall clocks, OS entropy, and hash-map iteration in a physics crate.

use std::collections::HashMap; //~ determinism
use std::collections::HashSet; //~ determinism

pub fn stamp() -> std::time::SystemTime { //~ determinism
    unreachable!()
}

pub fn sample() -> f64 {
    let mut rng = thread_rng(); //~ determinism
    rng.random()
}
