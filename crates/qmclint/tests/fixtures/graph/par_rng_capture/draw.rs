// fixture-path: crates/drivers/src/par_rng_fixture.rs
//! Seeded bug: one RNG stream borrowed across the spawn boundary. Every
//! task draws from the same captured generator, so the values each chunk
//! receives depend on task interleaving — and the stream desynchronizes
//! from the per-walker reseed discipline. Being an unregistered parallel
//! entry point in a physics crate, the fn also (correctly) trips the
//! schedule-coverage registry check.

/// Fills chunks with noise drawn from a shared stream.
pub fn fan_out_noise(chunks: Vec<Chunk>, rng: &mut StdRng) { //~ schedule-coverage
    rayon::scope(|scope| {
        for chunk in chunks {
            scope.spawn(move || {
                for x in chunk.iter_mut() {
                    *x = rng.random(); //~ rng-capture
                }
            });
        }
    });
}
