// fixture-path: crates/particles/src/moves.rs
//! Reachable helper: this file is not in the sanctioned path list, but
//! the sanctioned DMC driver calls `drift_kick`, so its draw inherits
//! the sanction through the call graph.

/// Uniform kick drawn from the walker's own stream.
pub fn drift_kick(w: &mut Walker) -> f64 {
    let u: f64 = w.rng.random();
    u - 0.5
}
