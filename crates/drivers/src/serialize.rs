//! Walker wire serialization.
//!
//! The paper's load balancing performs "send/recv of serialized Walker
//! objects" (§8), and one quantified win of the memory work is that "the
//! memory-reduction algorithms in Jastrow reduce the Walker message size by
//! 22.5 MB for the NiO-64 problem". This module provides that
//! serialization: a walker packs to a flat byte message (positions,
//! properties, anonymous buffer, RNG stream) and unpacks bit-exactly, so
//! the simulated ranks exchange exactly what MPI ranks would.

use crate::walker::Walker;
use qmc_containers::{Pos, Real, TinyVector};
use qmc_wavefunction::WalkerBuffer;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Serializes a walker into a flat byte message.
///
/// Layout: `n_particles, positions (f64), weight, multiplicity, age,
/// e_local, log_psi, rng_reseed, buffer reals (T), buffer doubles (f64)`.
/// The RNG stream is re-keyed on the wire (a fresh seed drawn from the
/// walker's stream) — the statistical contract MPI codes use, since raw
/// generator state is implementation-defined.
pub fn serialize_walker<T: Real>(w: &mut Walker<T>) -> Vec<u8> {
    let mut out = Vec::with_capacity(w.bytes() + 64);
    let push_u64 = |out: &mut Vec<u8>, x: u64| out.extend_from_slice(&x.to_le_bytes());
    let push_f64 = |out: &mut Vec<u8>, x: f64| out.extend_from_slice(&x.to_le_bytes());

    push_u64(&mut out, w.r.len() as u64);
    for p in &w.r {
        for d in 0..3 {
            push_f64(&mut out, p[d]);
        }
    }
    push_f64(&mut out, w.weight);
    push_f64(&mut out, w.multiplicity);
    push_u64(&mut out, w.age as u64);
    push_f64(&mut out, w.e_local);
    push_f64(&mut out, w.log_psi);
    // Re-key the RNG stream for the wire.
    use rand::RngExt;
    let reseed: u64 = w.rng.random();
    push_u64(&mut out, reseed);

    // Anonymous buffer: drain through the cursor API.
    let (reals, doubles) = buffer_contents(&mut w.buffer);
    push_u64(&mut out, reals.len() as u64);
    for x in &reals {
        push_f64(&mut out, x.to_f64());
    }
    push_u64(&mut out, doubles.len() as u64);
    for x in &doubles {
        push_f64(&mut out, *x);
    }
    out
}

/// Deserializes a walker from a byte message produced by
/// [`serialize_walker`].
pub fn deserialize_walker<T: Real>(msg: &[u8]) -> Walker<T> {
    let mut cur = 0usize;
    let take_u64 = |msg: &[u8], cur: &mut usize| -> u64 {
        let v = u64::from_le_bytes(msg[*cur..*cur + 8].try_into().unwrap());
        *cur += 8;
        v
    };
    let take_f64 = |msg: &[u8], cur: &mut usize| -> f64 {
        let v = f64::from_le_bytes(msg[*cur..*cur + 8].try_into().unwrap());
        *cur += 8;
        v
    };

    let n = take_u64(msg, &mut cur) as usize;
    let mut r: Vec<Pos<f64>> = Vec::with_capacity(n);
    for _ in 0..n {
        let x = take_f64(msg, &mut cur);
        let y = take_f64(msg, &mut cur);
        let z = take_f64(msg, &mut cur);
        r.push(TinyVector([x, y, z]));
    }
    let weight = take_f64(msg, &mut cur);
    let multiplicity = take_f64(msg, &mut cur);
    let age = take_u64(msg, &mut cur) as usize;
    let e_local = take_f64(msg, &mut cur);
    let log_psi = take_f64(msg, &mut cur);
    let reseed = take_u64(msg, &mut cur);

    let nr = take_u64(msg, &mut cur) as usize;
    let mut buffer = WalkerBuffer::new();
    let mut reals: Vec<T> = Vec::with_capacity(nr);
    for _ in 0..nr {
        reals.push(T::from_f64(take_f64(msg, &mut cur)));
    }
    buffer.put_slice(&reals);
    let nd = take_u64(msg, &mut cur) as usize;
    for _ in 0..nd {
        buffer.put_f64(take_f64(msg, &mut cur));
    }
    assert_eq!(cur, msg.len(), "walker message length mismatch");

    let mut w = Walker::new(r, reseed);
    w.weight = weight;
    w.multiplicity = multiplicity;
    w.age = age;
    w.e_local = e_local;
    w.log_psi = log_psi;
    w.rng = StdRng::seed_from_u64(reseed);
    w.buffer = buffer;
    w
}

/// Reads all buffer contents non-destructively via the cursor API.
fn buffer_contents<T: Real>(buf: &mut WalkerBuffer<T>) -> (Vec<T>, Vec<f64>) {
    buf.rewind();
    let mut reals = Vec::new();
    let mut one = [T::ZERO; 1];
    loop {
        if buf.fully_consumed_reals() {
            break;
        }
        buf.get_slice(&mut one);
        reals.push(one[0]);
    }
    let mut doubles = Vec::new();
    while !buf.fully_consumed() {
        doubles.push(buf.get_f64());
    }
    buf.rewind();
    (reals, doubles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walker::zero_positions;

    #[test]
    fn roundtrip_preserves_everything_but_rng_key() {
        let mut w = Walker::<f32>::new(
            vec![TinyVector([1.0, 2.0, 3.0]), TinyVector([-4.5, 0.25, 9.125])],
            7,
        );
        w.weight = 1.75;
        w.multiplicity = 2.0;
        w.age = 3;
        w.e_local = -12.5;
        w.log_psi = -3.25;
        w.buffer.put_slice(&[1.5f32, -2.5, 0.125]);
        w.buffer.put_f64(99.0);

        let msg = serialize_walker(&mut w);
        let mut back: Walker<f32> = deserialize_walker(&msg);
        assert_eq!(back.r, w.r);
        assert_eq!(back.weight, 1.75);
        assert_eq!(back.multiplicity, 2.0);
        assert_eq!(back.age, 3);
        assert_eq!(back.e_local, -12.5);
        assert_eq!(back.log_psi, -3.25);
        // Buffer contents bit-exact.
        back.buffer.rewind();
        let mut s = [0.0f32; 3];
        back.buffer.get_slice(&mut s);
        assert_eq!(s, [1.5, -2.5, 0.125]);
        assert_eq!(back.buffer.get_f64(), 99.0);
        assert!(back.buffer.fully_consumed());
    }

    #[test]
    fn message_size_tracks_buffer_precision_payload() {
        // The message is dominated by the buffer for realistic walkers:
        // this is the "22.5 MB smaller Walker message" effect in miniature
        // (note the wire format widens reals to f64, so the f32 advantage
        // on the wire comes from the 5N^2 -> 5N payload reduction).
        let mut small = Walker::<f32>::new(zero_positions(4), 1);
        small.buffer.put_slice(&vec![0.0f32; 100]);
        let mut big = Walker::<f32>::new(zero_positions(4), 1);
        big.buffer.put_slice(&vec![0.0f32; 10_000]);
        let m_small = serialize_walker(&mut small).len();
        let m_big = serialize_walker(&mut big).len();
        assert!(m_big > m_small + 9_000 * 8);
    }

    #[test]
    fn empty_buffer_roundtrip() {
        let mut w = Walker::<f64>::new(zero_positions(1), 3);
        let msg = serialize_walker(&mut w);
        let back: Walker<f64> = deserialize_walker(&msg);
        assert_eq!(back.r.len(), 1);
        assert_eq!(back.buffer.bytes(), 0);
    }
}
