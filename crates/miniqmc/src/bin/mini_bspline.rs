//! 3D B-spline SPO miniapp (§7.1, and the paper's precursor study, ref. 8):
//! measures value-only (`Bspline-v`) and value+gradient+Hessian
//! (`Bspline-vgh`) multi-spline evaluation in both loop orders and both
//! precisions at random positions — the access pattern of SPO evaluation
//! in QMC (random positions into a large read-only table).
//!
//! ```text
//! mini_bspline --grid 48 --splines 192 --evals 4000
//! ```

use miniqmc::Options;
use qmc_bspline::MultiBspline3D;
use qmc_containers::Real;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

struct Timing {
    v: f64,
    vgh: f64,
}

fn bench<T: Real>(grid: [usize; 3], ns: usize, evals: usize, seed: u64, soa: bool) -> Timing {
    let table = MultiBspline3D::<T>::random(grid, ns, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
    let points: Vec<[T; 3]> = (0..evals)
        .map(|_| {
            [
                T::from_f64(rng.random::<f64>()),
                T::from_f64(rng.random::<f64>()),
                T::from_f64(rng.random::<f64>()),
            ]
        })
        .collect();
    let mut psi = vec![T::ZERO; ns];
    let mut grad = vec![T::ZERO; 3 * ns];
    let mut hess = vec![T::ZERO; 6 * ns];

    let t0 = Instant::now();
    for &u in &points {
        if soa {
            table.evaluate_v(u, &mut psi);
        } else {
            table.evaluate_v_ref(u, &mut psi);
        }
    }
    let v = t0.elapsed().as_secs_f64();
    std::hint::black_box(&psi);

    let t0 = Instant::now();
    for &u in &points {
        if soa {
            table.evaluate_vgh(u, &mut psi, &mut grad, &mut hess);
        } else {
            table.evaluate_vgh_ref(u, &mut psi, &mut grad, &mut hess);
        }
    }
    let vgh = t0.elapsed().as_secs_f64();
    std::hint::black_box((&psi, &grad, &hess));
    Timing { v, vgh }
}

fn main() {
    let opts = Options::from_env();
    let g = opts.get("grid", 48usize);
    let ns = opts.get("splines", 192usize);
    let evals = opts.get("evals", 4000usize);
    let seed = opts.get("seed", 1u64);
    let grid = [g, g, g];

    println!("mini_bspline: grid {g}^3, {ns} splines, {evals} evaluations");
    println!(
        "table size: f64 {:.1} MiB / f32 {:.1} MiB",
        MultiBspline3D::<f64>::zeros(grid, ns).bytes() as f64 / (1 << 20) as f64,
        MultiBspline3D::<f32>::zeros(grid, ns).bytes() as f64 / (1 << 20) as f64,
    );
    let per = 1e6 / evals as f64;

    let r64 = bench::<f64>(grid, ns, evals, seed, false);
    println!(
        "f64 ref (spline-outer):  v {:>8.2} us/eval   vgh {:>8.2} us/eval",
        r64.v * per,
        r64.vgh * per
    );
    let s64 = bench::<f64>(grid, ns, evals, seed, true);
    println!(
        "f64 soa (spline-inner):  v {:>8.2} us/eval   vgh {:>8.2} us/eval",
        s64.v * per,
        s64.vgh * per
    );
    let r32 = bench::<f32>(grid, ns, evals, seed, false);
    println!(
        "f32 ref (spline-outer):  v {:>8.2} us/eval   vgh {:>8.2} us/eval",
        r32.v * per,
        r32.vgh * per
    );
    let s32 = bench::<f32>(grid, ns, evals, seed, true);
    println!(
        "f32 soa (spline-inner):  v {:>8.2} us/eval   vgh {:>8.2} us/eval",
        s32.v * per,
        s32.vgh * per
    );
    println!();
    println!(
        "speedup f64ref -> f32soa:  v {:>6.2}x   vgh {:>6.2}x",
        r64.v / s32.v,
        r64.vgh / s32.vgh
    );
}
