//! The paper's headline experiment as an example: a DMC study of the
//! NiO-32 supercell across the full optimization ladder, with per-kernel
//! hot-spot profiles and the node-memory model — Figs. 2, 8 and 9
//! condensed into one runnable walkthrough.
//!
//! ```text
//! cargo run --release --example nio_dmc            # scaled (laptop) size
//! cargo run --release --example nio_dmc -- --full  # paper-sized, slow
//! ```

use qmc::prelude::*;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let size = if full { Size::Full } else { Size::Scaled };
    let workload = Workload::new(Benchmark::NiO32, size, 42);
    println!(
        "NiO-32 at {:?} size: {} electrons, {} ions, {} orbitals/spin\n",
        size,
        workload.num_electrons(),
        workload.num_ions(),
        workload.num_orbitals()
    );

    let cfg = RunConfig {
        threads: 1,
        walkers: 4,
        steps: if full { 4 } else { 8 },
        warmup: 1,
        tau: 0.005,
        seed: 42,
        ..Default::default()
    };

    let ladder = [
        CodeVersion::Ref,
        CodeVersion::RefMp,
        CodeVersion::SoaDouble,
        CodeVersion::Current,
    ];
    let mut base = 0.0;
    for code in ladder {
        let out = run_dmc_benchmark(&workload, code, &cfg);
        let thr = out.throughput();
        if base == 0.0 {
            base = thr;
        }
        println!(
            "=== {} ===  {:.1} samples/s ({:.2}x), E = {:.3} +- {:.3}, walker {:.2} MiB",
            out.label,
            thr,
            thr / base,
            out.energy.0,
            out.energy.1,
            out.walker_bytes as f64 / (1 << 20) as f64
        );
        print!("{}", out.profile.to_table());
        println!();
    }
    println!(
        "expected shape (paper Fig. 8): each rung at least as fast as the\n\
         previous; DistTable and J2 shares collapse between Ref and Current."
    );
}
