//! Criterion bench: monolithic vs AoSoA-tiled multi-spline evaluation
//! (§8.4 future work, ref [8]). The tiled layout's locality advantage
//! appears as the orbital count grows beyond what one stencil's working
//! set can keep in cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qmc_bspline::{MultiBspline3D, TiledMultiBspline3D};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn bench_tiled(c: &mut Criterion) {
    for &ns in &[128usize, 512] {
        let grid = [24, 24, 24];
        let mono = MultiBspline3D::<f32>::random(grid, ns, 7);
        let mut rng = StdRng::seed_from_u64(3);
        let points: Vec<[f32; 3]> = (0..64)
            .map(|_| {
                [
                    rng.random::<f32>(),
                    rng.random::<f32>(),
                    rng.random::<f32>(),
                ]
            })
            .collect();
        let mut psi = vec![0.0f32; ns];
        let mut idx = 0usize;

        let mut group = c.benchmark_group(format!("tiled_spline_ns{ns}"));
        group.bench_function(BenchmarkId::new("v", "monolithic"), |b| {
            b.iter(|| {
                idx = (idx + 1) % points.len();
                mono.evaluate_v(points[idx], &mut psi);
                black_box(&psi);
            });
        });
        for &w in &[64usize, 128] {
            if w > ns {
                continue;
            }
            let tiled = TiledMultiBspline3D::<f32>::random(grid, ns, w, 7);
            group.bench_function(BenchmarkId::new("v", format!("tiled{w}")), |b| {
                b.iter(|| {
                    idx = (idx + 1) % points.len();
                    tiled.evaluate_v(points[idx], &mut psi);
                    black_box(&psi);
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_tiled);
criterion_main!(benches);
