// fixture-path: crates/kernels/src/dispatch_fixture.rs
//! Backend-dispatch chain through the kernel library: the enum match is
//! hot and clean, one arm stays inside the kernel file (clean — pinned
//! silent), the other reaches a non-kernel helper that allocates, so the
//! graph walk must fire at the dispatch arm *and* at the staging fn's own
//! call site (every fn in a kernel file is a hot root).

/// Kernel-library backend selector (miniature of `Backend`).
pub enum FixtureBackend {
    Reference,
    Soa,
}

/// Dispatch entry point: the hot root every backend body hangs off.
pub fn dispatch_row(backend: &FixtureBackend, x: &mut [f64]) -> f64 {
    match backend {
        FixtureBackend::Reference => reference_row(x),
        FixtureBackend::Soa => staged_row(x), //~ hot-path-call
    }
}

/// In-file backend body: tight loop, no allocation — the call chain
/// `dispatch_row -> reference_row` must stay silent.
fn reference_row(x: &mut [f64]) -> f64 {
    let mut acc = 0.0;
    for v in x.iter_mut() {
        *v *= 0.5;
        acc += *v;
    }
    acc
}

/// The other backend stages through a non-kernel helper that allocates;
/// as a hot root of its own, its call site fires too.
fn staged_row(x: &mut [f64]) -> f64 {
    let staged = stage_scratch(x.len()); //~ hot-path-call
    staged + x.iter().sum::<f64>()
}
