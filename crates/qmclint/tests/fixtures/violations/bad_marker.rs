// fixture-class: plain
// Suppression markers that fail the marker grammar: each is itself a
// diagnostic, and none of them actually suppresses anything.

//~v bad-marker (missing justification)
// qmclint: allow(precision-cast)
pub fn unjustified() {}

//~v bad-marker (unknown rule name)
// qmclint: allow(not-a-rule) — sincere but misspelled
pub fn misspelled() {}

//~v bad-marker (unknown directive)
// qmclint: suppress(hot-path) — wrong verb
pub fn wrong_verb() {}

//~v bad-marker (cold without justification)
// qmclint: cold
pub fn lazy_cold() {}
