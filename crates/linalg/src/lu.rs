//! LU factorization with partial pivoting.
//!
//! Used for the initial Slater-matrix inversion and for the periodic
//! recompute-from-scratch that bounds mixed-precision drift (§7.2 of the
//! paper, its ref. 13). The recompute always runs in `f64` regardless of the
//! kernel precision.

use qmc_containers::{Matrix, Real};

/// LU factorization `P A = L U` stored packed in a single matrix.
pub struct LuFactor<T: Real> {
    lu: Matrix<T>,
    piv: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0).
    perm_sign: f64,
}

/// Error returned when a matrix is numerically singular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrix;

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular to working precision")
    }
}

impl std::error::Error for SingularMatrix {}

impl<T: Real> LuFactor<T> {
    /// Factorizes a square matrix with partial (row) pivoting.
    pub fn new(a: &Matrix<T>) -> Result<Self, SingularMatrix> {
        assert_eq!(a.rows(), a.cols(), "LU needs a square matrix");
        let n = a.rows();
        let mut lu = a.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        let mut perm_sign: f64 = 1.0;

        for k in 0..n {
            // Pivot search on column k.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in k + 1..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax == T::ZERO || !pmax.is_finite() {
                return Err(SingularMatrix);
            }
            if p != k {
                let (a, b) = lu.two_rows_mut(k, p);
                a.swap_with_slice(b);
                piv.swap(k, p);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in k + 1..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                // Row elimination over trailing columns.
                let (rk, ri) = lu.two_rows_mut(k, i);
                for j in k + 1..n {
                    ri[j] = (-m).mul_add(rk[j], ri[j]);
                }
            }
        }
        Ok(Self { lu, piv, perm_sign })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.lu.rows()
    }

    /// `(log|det A|, sign(det A))`, accumulated in `f64`.
    pub fn log_abs_det(&self) -> (f64, f64) {
        let mut log: f64 = 0.0;
        let mut sign = self.perm_sign;
        for k in 0..self.n() {
            let d = self.lu[(k, k)].to_f64();
            log += d.abs().ln();
            if d < 0.0 {
                sign = -sign;
            }
        }
        (log, sign)
    }

    /// Solves `A x = b` in place; `b` enters as the right-hand side and
    /// leaves as the solution.
    // qmclint: cold — LU solves run on the from-scratch recompute path
    // (O(N^3) factorization dominates), never per accepted move.
    pub fn solve_in_place(&self, b: &mut [T]) {
        let n = self.n();
        assert_eq!(b.len(), n);
        // Apply permutation.
        let mut x: Vec<T> = (0..n).map(|i| b[self.piv[i]]).collect();
        // Forward substitution (L has unit diagonal).
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc = (-self.lu[(i, j)]).mul_add(x[j], acc);
            }
            x[i] = acc;
        }
        // Backward substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in i + 1..n {
                acc = (-self.lu[(i, j)]).mul_add(x[j], acc);
            }
            x[i] = acc / self.lu[(i, i)];
        }
        b.copy_from_slice(&x);
    }

    /// Dense inverse of the factorized matrix.
    // qmclint: cold — dense inversion is the periodic from-scratch
    // recompute, amortized over the recompute interval.
    pub fn inverse(&self) -> Matrix<T> {
        let n = self.n();
        let mut inv = Matrix::zeros(n, n);
        let mut col = vec![T::ZERO; n];
        for j in 0..n {
            col.fill(T::ZERO);
            col[j] = T::ONE;
            self.solve_in_place(&mut col);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        inv
    }
}

/// Convenience: inverse and `(log|det|, sign)` in one call.
pub fn invert_with_log_det<T: Real>(
    a: &Matrix<T>,
) -> Result<(Matrix<T>, f64, f64), SingularMatrix> {
    let lu = LuFactor::new(a)?;
    let (log, sign) = lu.log_abs_det();
    Ok((lu.inverse(), log, sign))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::gemm;

    fn mat(n: usize, vals: &[f64]) -> Matrix<f64> {
        Matrix::from_fn(n, n, |i, j| vals[i * n + j])
    }

    #[test]
    fn det_of_known_matrix() {
        let a = mat(2, &[3.0, 1.0, 4.0, 2.0]); // det = 2
        let lu = LuFactor::new(&a).unwrap();
        let (log, sign) = lu.log_abs_det();
        assert!((sign * log.exp() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn det_sign_negative() {
        let a = mat(2, &[0.0, 1.0, 1.0, 0.0]); // det = -1
        let (log, sign) = LuFactor::new(&a).unwrap().log_abs_det();
        assert!((log).abs() < 1e-12);
        assert_eq!(sign, -1.0);
    }

    #[test]
    fn solve_matches_known_solution() {
        let a = mat(3, &[2.0, 1.0, 1.0, 1.0, 3.0, 2.0, 1.0, 0.0, 0.0]);
        let mut b = [4.0, 5.0, 6.0];
        LuFactor::new(&a).unwrap().solve_in_place(&mut b);
        // A x = (4,5,6): x = (6, 15, -23) -- check by substitution.
        let x = b;
        assert!((2.0 * x[0] + x[1] + x[2] - 4.0).abs() < 1e-10);
        assert!((x[0] + 3.0 * x[1] + 2.0 * x[2] - 5.0).abs() < 1e-10);
        assert!((x[0] - 6.0).abs() < 1e-10);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let n = 8;
        // Deterministic well-conditioned test matrix.
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                4.0
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        let (inv, _, _) = invert_with_log_det(&a).unwrap();
        let mut prod = Matrix::<f64>::zeros(n, n);
        gemm(1.0, &a, &inv, 0.0, &mut prod);
        let eye = Matrix::<f64>::identity(n);
        assert!(prod.max_abs_diff(&eye) < 1e-10);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = mat(2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(LuFactor::new(&a).is_err());
    }

    #[test]
    fn f32_inverse_reasonable() {
        let n = 6;
        let a = Matrix::<f32>::from_fn(n, n, |i, j| {
            if i == j {
                3.0
            } else {
                0.5 / (1.0 + (i + j) as f32)
            }
        });
        let (inv, _, _) = invert_with_log_det(&a).unwrap();
        let mut prod = Matrix::<f32>::zeros(n, n);
        gemm(1.0, &a, &inv, 0.0, &mut prod);
        assert!(prod.max_abs_diff(&Matrix::<f32>::identity(n)) < 1e-5);
    }
}
