//! Constant-power energy model (substitute for turbostat RAPL, Fig. 10).
//!
//! The paper measures package+DRAM power with turbostat at 5 s intervals and
//! finds it *flat* (210-215 W on KNL) during the DMC phase for both Ref and
//! Current code — its conclusion is therefore "energy reduction equals the
//! speedup". Without RAPL access we model exactly that: a configurable
//! constant power per phase integrated over *measured* wall time. The time
//! axis is real; only the wattage is modeled.

/// A named execution phase with measured duration.
#[derive(Clone, Debug)]
pub struct Phase {
    /// Phase name (e.g. "init", "warmup", "DMC").
    pub name: String,
    /// Measured wall-clock duration in seconds.
    pub seconds: f64,
    /// Modeled average power draw in watts during this phase.
    pub watts: f64,
}

/// Energy model: an ordered list of phases.
#[derive(Clone, Debug, Default)]
pub struct EnergyModel {
    phases: Vec<Phase>,
}

/// Default modeled DMC-phase power in watts (paper: 210-215 W on KNL).
pub const DEFAULT_DMC_WATTS: f64 = 212.0;

/// Default modeled initialization-phase power in watts (lower activity).
pub const DEFAULT_INIT_WATTS: f64 = 150.0;

impl EnergyModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a phase with measured duration and modeled wattage.
    pub fn add_phase(&mut self, name: &str, seconds: f64, watts: f64) {
        self.phases.push(Phase {
            name: name.to_string(),
            seconds,
            watts,
        });
    }

    /// Total modeled energy in joules.
    pub fn total_joules(&self) -> f64 {
        self.phases.iter().map(|p| p.seconds * p.watts).sum()
    }

    /// Total wall time across phases in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.seconds).sum()
    }

    /// Energy in joules excluding phases whose names match `exclude` — the
    /// paper excludes init and warmup when comparing energy to speedup.
    pub fn joules_excluding(&self, exclude: &[&str]) -> f64 {
        self.phases
            .iter()
            .filter(|p| !exclude.contains(&p.name.as_str()))
            .map(|p| p.seconds * p.watts)
            .sum()
    }

    /// Sampled power trace `(time_s, watts)` at `interval` seconds,
    /// mimicking turbostat's 5-second sampling in Fig. 10.
    pub fn power_trace(&self, interval: f64) -> Vec<(f64, f64)> {
        assert!(interval > 0.0);
        let mut trace = Vec::new();
        let total = self.total_seconds();
        let mut t = 0.0;
        while t <= total {
            // Find the active phase at time t.
            let mut acc = 0.0;
            let mut watts = self.phases.last().map_or(0.0, |p| p.watts);
            for p in &self.phases {
                if t < acc + p.seconds {
                    watts = p.watts;
                    break;
                }
                acc += p.seconds;
            }
            trace.push((t, watts));
            t += interval;
        }
        trace
    }

    /// Phases recorded so far.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_integrates_phases() {
        let mut m = EnergyModel::new();
        m.add_phase("init", 10.0, 150.0);
        m.add_phase("DMC", 100.0, 212.0);
        assert!((m.total_joules() - (1500.0 + 21200.0)).abs() < 1e-9);
        assert!((m.joules_excluding(&["init"]) - 21200.0).abs() < 1e-9);
        assert_eq!(m.total_seconds(), 110.0);
    }

    #[test]
    fn energy_ratio_equals_time_ratio_at_constant_power() {
        // The paper's core observation: flat power makes energy ~ time.
        let mut fast = EnergyModel::new();
        fast.add_phase("DMC", 50.0, DEFAULT_DMC_WATTS);
        let mut slow = EnergyModel::new();
        slow.add_phase("DMC", 200.0, DEFAULT_DMC_WATTS);
        let speedup = 200.0 / 50.0;
        let energy_ratio = slow.total_joules() / fast.total_joules();
        assert!((energy_ratio - speedup).abs() < 1e-12);
    }

    #[test]
    fn trace_steps_between_phases() {
        let mut m = EnergyModel::new();
        m.add_phase("init", 10.0, 100.0);
        m.add_phase("DMC", 20.0, 200.0);
        let trace = m.power_trace(5.0);
        assert_eq!(trace[0], (0.0, 100.0));
        assert_eq!(trace[1], (5.0, 100.0));
        assert_eq!(trace[2], (10.0, 200.0));
        assert_eq!(trace.last().unwrap().1, 200.0);
        assert_eq!(trace.len(), 7); // t = 0,5,...,30
    }
}
