// fixture-class: kernel,physics
//! Lexer stress: nested block comments, raw strings and comment-lookalike
//! literals must neither leak tokens into the rules nor desync the line
//! counter — the two real violations below must land on exact lines.

/* outer /* nested block comment: unwrap() as f32 SystemTime */ spanning
   a second line, still inside the outer comment */
pub fn evaluate_edges(x: f64, flags: &[u64]) -> f64 {
    let raw = r#"as f32
        // qmclint: allow(precision-cast) — inert: raw strings are not comments
        "nested quotes" .unwrap() thread_rng"#;
    let hashed = r##"closes with "# only at two hashes // still string"##;
    let slash = '/';
    let double = "// not a comment, tokens must keep flowing after it";
    let narrowed = x as f32; //~ precision-cast
    let first = flags.first().unwrap(); //~ hot-path
    let _ = (raw, hashed, slash, double, first);
    f64::from(narrowed)
}
