//! Deterministic reduction primitives.
//!
//! Every parallel driver in this workspace ends a generation by reducing
//! per-walker quantities (weighted local energies, weights) into scalars.
//! Until PR 10 that invariant — "reduced sequentially in walker order" —
//! lived in comments; [`det_sum`] makes it a primitive the `qmclint`
//! `parallel-reduction-order` rule can point at.
//!
//! [`det_sum`] is a *fixed-shape pairwise tree*: the association pattern
//! of the floating-point additions depends only on the number of terms,
//! never on thread count, chunk boundaries or task completion order. The
//! drivers gather per-walker terms into walker-indexed storage inside the
//! parallel section (each worker writes disjoint slots) and reduce once,
//! after the join, with this primitive — so the result is bitwise
//! identical for 1, 2 or 4 threads and for any `qmcsched` schedule, which
//! the `explore_thread_sweep` case asserts end to end.
//!
//! Pairwise summation also grows rounding error as `O(log n)` instead of
//! the sequential fold's `O(n)`, so the determinism contract comes with a
//! (slightly) better-conditioned estimator for free.

/// Terms per leaf of the reduction tree. Leaves fold this many terms
/// sequentially; above it the range splits at the midpoint. The shape is
/// a pure function of `n`, which is what makes the reduction bitwise
/// schedule-invariant.
const LEAF: usize = 8;

/// Fixed-shape pairwise tree sum of `f(0), f(1), .., f(n-1)`.
///
/// The closure-indexed form lets the drivers reduce per-walker expressions
/// (`w.weight * w.e_local`) without materializing a temporary buffer in
/// the generation loop.
pub fn det_sum_by<F: Fn(usize) -> f64>(n: usize, f: F) -> f64 {
    pairwise(0, n, &f)
}

/// Fixed-shape pairwise tree sum of a slice. Bitwise equal to
/// [`det_sum_by`] over `|i| xs[i]`.
pub fn det_sum(xs: &[f64]) -> f64 {
    det_sum_by(xs.len(), |i| xs[i])
}

/// Weighted mean `sum(w*e) / sum(w)` over `(e, w)` pairs with both sums
/// taken through the deterministic tree; `fallback` when the weight sum is
/// not positive. The shared tail of the multi-rank energy aggregation.
pub fn det_weighted_mean(pairs: &[(f64, f64)], fallback: f64) -> f64 {
    let es = det_sum_by(pairs.len(), |i| pairs[i].0 * pairs[i].1);
    let ws = det_sum_by(pairs.len(), |i| pairs[i].1);
    if ws > 0.0 {
        es / ws
    } else {
        fallback
    }
}

fn pairwise<F: Fn(usize) -> f64>(lo: usize, hi: usize, f: &F) -> f64 {
    let n = hi - lo;
    if n <= LEAF {
        let mut acc = 0.0;
        for i in lo..hi {
            acc += f(i);
        }
        return acc;
    }
    let mid = lo + n / 2;
    pairwise(lo, mid, f) + pairwise(mid, hi, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize) -> Vec<f64> {
        // Mixed magnitudes so association order actually shows in the bits.
        (0..n)
            .map(|i| {
                let s = if i % 3 == 0 { -1.0 } else { 1.0 };
                s * (1.0 + i as f64 * 1e-3) * 10f64.powi(i32::try_from(i % 7).unwrap() - 3)
            })
            .collect()
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(det_sum(&[]), 0.0);
        assert_eq!(det_sum(&[42.5]), 42.5);
    }

    #[test]
    fn matches_sequential_fold_on_small_inputs() {
        // At or below the leaf width the tree *is* the sequential fold.
        let xs = series(LEAF);
        assert_eq!(det_sum(&xs), xs.iter().sum::<f64>());
    }

    #[test]
    fn closure_and_slice_forms_agree_bitwise() {
        for n in [0, 1, 7, 8, 9, 31, 64, 100, 257] {
            let xs = series(n);
            assert_eq!(det_sum(&xs).to_bits(), det_sum_by(n, |i| xs[i]).to_bits());
        }
    }

    #[test]
    fn shape_is_a_function_of_length_only() {
        // Same values gathered through any chunking (simulating worker
        // threads writing disjoint slot ranges in any completion order)
        // reduce to the same bits: det_sum only ever sees the final
        // walker-indexed buffer.
        let xs = series(101);
        let reference = det_sum(&xs).to_bits();
        for chunks in [1usize, 2, 3, 4, 7, 101] {
            let mut gathered = vec![0.0f64; xs.len()];
            let per = xs.len().div_ceil(chunks);
            // Fill chunks in reverse order — arrival order must not matter.
            for c in (0..chunks).rev() {
                let lo = c * per;
                let hi = ((c + 1) * per).min(xs.len());
                gathered[lo..hi].copy_from_slice(&xs[lo..hi]);
            }
            assert_eq!(det_sum(&gathered).to_bits(), reference);
        }
    }

    #[test]
    fn differs_from_chunk_order_merge() {
        // The failure mode the primitive exists to prevent: per-chunk
        // partial folds merged in chunk order give different bits for
        // different chunk counts. det_sum does not.
        let xs = series(1000);
        let merged: Vec<u64> = [1usize, 3, 4]
            .iter()
            .map(|&chunks| {
                let per = xs.len().div_ceil(chunks);
                xs.chunks(per)
                    .map(|c| c.iter().sum::<f64>())
                    .sum::<f64>()
                    .to_bits()
            })
            .collect();
        assert_ne!(merged[0], merged[2], "series too tame to detect reorder");
        let det: Vec<u64> = (0..3).map(|_| det_sum(&xs).to_bits()).collect();
        assert!(det.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn weighted_mean_fallback() {
        assert_eq!(det_weighted_mean(&[], -0.5), -0.5);
        assert_eq!(det_weighted_mean(&[(2.0, 0.0)], -0.5), -0.5);
        let pairs = [(1.0, 2.0), (3.0, 2.0)];
        assert_eq!(det_weighted_mean(&pairs, 0.0), 2.0);
    }
}
