//! Determinant ratios and Sherman–Morrison rank-1 inverse updates.
//!
//! Convention (same as QMCPACK): the Slater matrix is `A[i][j] = phi_j(r_i)`
//! (row per electron, column per orbital). The engine stores the *transposed
//! inverse* `M = (A^{-1})^T`, i.e. `M[k][j] = A^{-1}[j][k]`, so that both the
//! determinant ratio for moving electron `k` (Eq. 6 of the paper) and the
//! gradient ratio are contiguous dot products against row `k` of `M`.

use crate::blas::{axpy, dot, scal};
use qmc_containers::{Matrix, Real};

/// Determinant ratio `det A' / det A` when row `k` of `A` is replaced by the
/// orbital vector `v` (`v[j] = phi_j(r_k')`).
///
/// By the matrix determinant lemma this is `v . column_k(A^{-1})`, a single
/// contiguous dot product in the transposed-inverse storage.
#[inline]
pub fn det_ratio_row<T: Real>(minv_t: &Matrix<T>, k: usize, v: &[T]) -> T {
    dot(minv_t.row(k), v)
}

/// Sherman–Morrison update of the transposed inverse after *accepting* the
/// replacement of row `k` of `A` by `v`, with `ratio` the value returned by
/// [`det_ratio_row`] for this move.
///
/// Derivation in transposed storage: with `w = M v` (so `w[k] == ratio`),
/// `M'.row(j) = M.row(j) - (w[j]/ratio) M.row(k)` for `j != k` and
/// `M'.row(k) = M.row(k) / ratio`.
pub fn sherman_morrison_update<T: Real>(minv_t: &mut Matrix<T>, k: usize, v: &[T], ratio: T) {
    let n = minv_t.rows();
    debug_assert_eq!(v.len(), n);
    let inv_ratio = T::ONE / ratio;
    // Allocation-free: each w[j] = dot(M.row(j), v) is consumed immediately
    // after it is produced. Row j is only read before its own update and
    // row k stays untouched until the final scaling, so this is arithmetic-
    // identical to materializing w = M v up front.
    for j in 0..n {
        if j == k {
            continue;
        }
        let c = -dot(minv_t.row(j), v) * inv_ratio;
        let (rk, rj) = minv_t.two_rows_mut(k, j);
        axpy(c, rk, rj);
    }
    scal(inv_ratio, minv_t.row_mut(k));
}

/// Builds the transposed inverse `(A^{-1})^T` together with
/// `(log|det A|, sign)` via LU. This is the from-scratch path used at setup
/// and for the periodic mixed-precision recompute.
pub fn transposed_inverse_log_det<T: Real>(
    a: &Matrix<T>,
) -> Result<(Matrix<T>, f64, f64), crate::lu::SingularMatrix> {
    let (inv, log, sign) = crate::lu::invert_with_log_det(a)?;
    let n = a.rows();
    let minv_t = Matrix::from_fn(n, n, |i, j| inv[(j, i)]);
    Ok((minv_t, log, sign))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::LuFactor;

    fn test_matrix(n: usize, seed: u64) -> Matrix<f64> {
        // Simple deterministic LCG fill, diagonally dominated for conditioning.
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        Matrix::from_fn(n, n, |i, j| next() + if i == j { 3.0 } else { 0.0 })
    }

    #[test]
    fn ratio_matches_determinant_quotient() {
        let n = 7;
        let a = test_matrix(n, 1);
        let (minv_t, log, sign) = transposed_inverse_log_det(&a).unwrap();
        let k = 3;
        let v: Vec<f64> = (0..n)
            .map(|j| 0.3 * j as f64 + if j == k { 2.0 } else { 0.7 })
            .collect();

        let ratio = det_ratio_row(&minv_t, k, &v);

        let mut a2 = a.clone();
        a2.row_mut(k).copy_from_slice(&v);
        let (log2, sign2) = LuFactor::new(&a2).unwrap().log_abs_det();
        let expected = sign2 * sign * (log2 - log).exp();
        assert!(
            (ratio - expected).abs() < 1e-9 * expected.abs().max(1.0),
            "ratio {ratio} vs {expected}"
        );
    }

    #[test]
    fn sherman_morrison_matches_full_reinversion() {
        let n = 9;
        let mut a = test_matrix(n, 2);
        let (mut minv_t, _, _) = transposed_inverse_log_det(&a).unwrap();

        // Accept a chain of row replacements, as in a PbyP sweep.
        for k in [0usize, 4, 8, 2] {
            let v: Vec<f64> = (0..n)
                .map(|j| 0.1 * (j as f64 - k as f64) + if j == k { 2.5 } else { 0.4 })
                .collect();
            let ratio = det_ratio_row(&minv_t, k, &v);
            sherman_morrison_update(&mut minv_t, k, &v, ratio);
            a.row_mut(k).copy_from_slice(&v);
        }

        let (fresh, _, _) = transposed_inverse_log_det(&a).unwrap();
        assert!(minv_t.max_abs_diff(&fresh) < 1e-9);
    }

    #[test]
    fn unit_ratio_for_identical_row() {
        let n = 5;
        let a = test_matrix(n, 3);
        let (minv_t, _, _) = transposed_inverse_log_det(&a).unwrap();
        let v: Vec<f64> = a.row(2).to_vec();
        let ratio = det_ratio_row(&minv_t, 2, &v);
        assert!((ratio - 1.0).abs() < 1e-10);
    }
}
