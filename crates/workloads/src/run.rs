//! The benchmark runner shared by every figure/table harness: builds a
//! thread crew of engines for a (workload, code version) pair, runs DMC,
//! and reports the paper's figures of merit — throughput `P = M <N_w> /
//! T_CPU` (§6.2), the merged per-kernel profile, and memory accounting.

use crate::build::{CodeVersion, Workload};
use qmc_containers::Real;
use qmc_crowd::{run_dmc_crowd_controlled, CrowdScheduler};
use qmc_drivers::{
    initial_population, population_digest, read_dmc_checkpoint, run_dmc_parallel_controlled,
    Batching, CheckpointError, CheckpointSpec, DmcParams, DmcState, QmcEngine, RunControl, Walker,
};
use qmc_instrument::{
    take_drift_stats, take_sanitizer_stats, BlockEvent, DriftStats, Profile, RunReport,
    SanitizerStats,
};

/// Execution configuration for one benchmark run.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Worker threads (engines).
    pub threads: usize,
    /// Target walker population.
    pub walkers: usize,
    /// DMC generations.
    pub steps: usize,
    /// Generations excluded from statistics.
    pub warmup: usize,
    /// Imaginary time step.
    pub tau: f64,
    /// Master seed.
    pub seed: u64,
    /// Walker batching: per-walker engine streaming or lock-step crowds.
    pub batching: Batching,
    /// Fused block refreshes for crowd batching: recomputes route through
    /// the multi-walker SPO kernel (`Bspline-mw-vgl`) instead of the
    /// per-slot scalar path. Off by default — the fused spline kernel
    /// regroups floating point, so it gives up the crowd's bitwise parity
    /// with the per-walker drivers. Ignored for per-walker batching.
    pub fused_refresh: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            walkers: 8,
            steps: 12,
            warmup: 2,
            tau: 0.005,
            seed: 0xBE_EF,
            batching: Batching::PerWalker,
            fused_refresh: false,
        }
    }
}

/// Outcome of one benchmark run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Code version label.
    pub label: String,
    /// Wall-clock seconds of the DMC loop (excluding engine construction).
    pub seconds: f64,
    /// Monte Carlo samples generated after warmup.
    pub samples: u64,
    /// Per-kernel profile merged over all threads.
    pub profile: Profile,
    /// Per-thread / per-crowd kernel profiles, in chunk order.
    pub crowd_profiles: Vec<Profile>,
    /// `(mean, error, tau_corr)` of the mixed energy estimator.
    pub energy: (f64, f64, f64),
    /// Move acceptance ratio.
    pub acceptance: f64,
    /// Walker population after each generation.
    pub population: Vec<usize>,
    /// Trial energy after each generation's feedback update.
    pub e_trial_trace: Vec<f64>,
    /// Final trial energy.
    pub e_trial: f64,
    /// Mixed-precision log psi drift observed at from-scratch refreshes.
    pub drift: DriftStats,
    /// Runtime invariant sanitizer counters (all zero unless built with
    /// the `checked` feature).
    pub sanitizer: SanitizerStats,
    /// Bytes of one walker (positions + anonymous buffer).
    pub walker_bytes: usize,
    /// Bytes of one engine (wavefunction internals + distance tables).
    pub engine_bytes: usize,
    /// Bytes of the shared read-only spline table.
    pub table_bytes: usize,
    /// Final walker population.
    pub final_population: usize,
    /// FNV-1a digest of the final walker population (full per-walker
    /// state, RNG streams included) — what the checkpoint-resume parity
    /// gates compare.
    pub walker_hash: u64,
}

impl RunOutcome {
    /// Throughput `P = samples / seconds` (§6.2 figure of merit).
    pub fn throughput(&self) -> f64 {
        // qmclint: allow(precision-cast) — sample counts convert exactly to f64
        // for the throughput figure of merit.
        self.samples as f64 / self.seconds
    }

    /// DMC efficiency `kappa = 1 / (sigma^2 tau_corr T_MC)` (§3): the
    /// figure the paper's throughput gains translate into. Uses the
    /// blocking error's variance and autocorrelation estimates.
    pub fn kappa(&self) -> f64 {
        let (_, err, tau_corr) = self.energy;
        let sigma2 = err * err; // variance of the mean estimate
        if sigma2 > 0.0 && self.seconds > 0.0 {
            1.0 / (sigma2 * tau_corr.max(1.0) * self.seconds)
        } else {
            f64::INFINITY
        }
    }

    /// Total node memory model: shared table + per-thread engines +
    /// per-walker buffers (the paper's `gamma (N_th + N_w) N^2` plus the
    /// read-only table).
    pub fn total_bytes(&self, threads: usize, walkers: usize) -> usize {
        self.table_bytes + threads * self.engine_bytes + walkers * self.walker_bytes
    }

    /// Assembles the structured [`RunReport`] every front-end serializes
    /// (`miniqmc --profile json` and the bench binaries).
    pub fn report(&self, workload: &Workload, cfg: &RunConfig) -> RunReport {
        let (mean, err, tau_corr) = self.energy;
        RunReport {
            benchmark: workload.spec.name.to_string(),
            code: self.label.clone(),
            kernel_backend: qmc_kernels::Backend::current().label().to_string(),
            electrons: workload.num_electrons(),
            ions: workload.num_ions(),
            threads: cfg.threads,
            walkers: cfg.walkers,
            steps: cfg.steps,
            crowd_size: match cfg.batching {
                Batching::PerWalker => 0,
                Batching::Crowd(_) => cfg.batching.crowd_size(),
            },
            seconds: self.seconds,
            samples: self.samples,
            acceptance: self.acceptance,
            energy_mean: mean,
            energy_err: err,
            energy_tau: tau_corr,
            e_trial: self.e_trial,
            population: self.population.clone(),
            e_trial_trace: self.e_trial_trace.clone(),
            profile: self.profile.clone(),
            crowd_profiles: self.crowd_profiles.clone(),
            drift: self.drift,
            sanitizer: self.sanitizer,
            walker_bytes: self.walker_bytes as u64,
            engine_bytes: self.engine_bytes as u64,
            table_bytes: self.table_bytes as u64,
        }
    }
}

/// Checkpoint/resume/telemetry control for a benchmark run.
/// [`BenchControl::default`] is a plain uncontrolled run.
#[derive(Default)]
pub struct BenchControl<'a> {
    /// Resume from this `qmc-checkpoint/1` file instead of initializing
    /// fresh walkers.
    pub resume: Option<&'a str>,
    /// Periodic checkpointing during the run.
    pub checkpoint: Option<CheckpointSpec>,
    /// Per-generation observer (the streaming-telemetry sink).
    pub on_block: Option<&'a mut dyn FnMut(&BlockEvent)>,
}

/// Reads just the completed-step counter of a DMC checkpoint (for the
/// stream `start` record of a resumed run, before the run itself opens
/// the file).
pub fn checkpoint_step(path: &str, single_precision: bool) -> Result<u64, CheckpointError> {
    if single_precision {
        read_dmc_checkpoint::<f32>(path).map(|(s, _)| s.step as u64)
    } else {
        read_dmc_checkpoint::<f64>(path).map(|(s, _)| s.step as u64)
    }
}

fn run_generic<T: Real>(
    build_engine: impl FnMut() -> QmcEngine<T>,
    workload: &Workload,
    code: CodeVersion,
    cfg: &RunConfig,
) -> RunOutcome {
    run_generic_controlled(build_engine, workload, code, cfg, BenchControl::default())
        .expect("uncontrolled run reads no checkpoint and cannot fail")
}

fn run_generic_controlled<T: Real>(
    mut build_engine: impl FnMut() -> QmcEngine<T>,
    workload: &Workload,
    code: CodeVersion,
    cfg: &RunConfig,
    ctl: BenchControl<'_>,
) -> Result<RunOutcome, CheckpointError> {
    let (mut walkers, resume_state): (Vec<Walker<T>>, Option<DmcState>) = match ctl.resume {
        Some(path) => {
            let (state, walkers) = read_dmc_checkpoint::<T>(path)?;
            (walkers, Some(state))
        }
        None => (
            initial_population(workload.initial_positions(), cfg.walkers, cfg.seed),
            None,
        ),
    };
    let mut control = RunControl {
        checkpoint: ctl.checkpoint,
        on_block: ctl.on_block,
    };
    let params = DmcParams {
        steps: cfg.steps,
        warmup: cfg.warmup,
        tau: cfg.tau,
        target_population: cfg.walkers,
        recompute_every: 16,
        seed: cfg.seed ^ 0xD00D,
        batching: cfg.batching,
    };
    let threads = cfg.threads.max(1);
    // Reset the global drift and sanitizer counters so the run owns what
    // it reports.
    take_drift_stats();
    take_sanitizer_stats();
    let (res, profile, engine_bytes, seconds);
    match cfg.batching {
        Batching::PerWalker => {
            let mut engines: Vec<QmcEngine<T>> = (0..threads).map(|_| build_engine()).collect();
            let t0 = std::time::Instant::now();
            let (r, p) = run_dmc_parallel_controlled(
                &mut engines,
                &mut walkers,
                &params,
                resume_state,
                &mut control,
            );
            seconds = t0.elapsed().as_secs_f64();
            engine_bytes = engines.first().map_or(0, qmc_drivers::QmcEngine::bytes);
            res = r;
            profile = p;
        }
        Batching::Crowd(_) => {
            let sched = CrowdScheduler::new(threads, cfg.batching.crowd_size())
                .with_fused_refresh(cfg.fused_refresh);
            let mut crowds = sched.build_crowds(build_engine);
            let t0 = std::time::Instant::now();
            let (r, p) = run_dmc_crowd_controlled(
                &mut crowds,
                &mut walkers,
                &params,
                resume_state,
                &mut control,
            );
            seconds = t0.elapsed().as_secs_f64();
            engine_bytes = crowds.first().map_or(0, qmc_crowd::Crowd::engine_bytes);
            res = r;
            profile = p;
        }
    }

    Ok(RunOutcome {
        label: code.label(),
        seconds,
        samples: res.samples,
        profile: profile.total,
        crowd_profiles: profile.groups,
        energy: res.energy.blocking(),
        acceptance: res.acceptance,
        population: res.population,
        e_trial_trace: res.e_trial_trace,
        e_trial: res.e_trial,
        drift: take_drift_stats(),
        sanitizer: take_sanitizer_stats(),
        walker_bytes: walkers.first().map_or(0, qmc_drivers::Walker::bytes),
        engine_bytes,
        table_bytes: workload.table_bytes(code.single_precision()),
        final_population: walkers.len(),
        walker_hash: population_digest(&walkers),
    })
}

/// Runs a DMC benchmark for any code version, dispatching on precision
/// and on the walker-batching strategy.
pub fn run_dmc_benchmark(workload: &Workload, code: CodeVersion, cfg: &RunConfig) -> RunOutcome {
    if code.single_precision() {
        run_generic(|| workload.build_engine_f32(code), workload, code, cfg)
    } else {
        run_generic(|| workload.build_engine_f64(code), workload, code, cfg)
    }
}

/// [`run_dmc_benchmark`] with checkpoint/resume/telemetry control. The
/// only fallible path is reading the resume checkpoint (wrong precision
/// for the code version, corruption, truncation — all clean
/// [`CheckpointError`]s).
pub fn run_dmc_benchmark_controlled(
    workload: &Workload,
    code: CodeVersion,
    cfg: &RunConfig,
    ctl: BenchControl<'_>,
) -> Result<RunOutcome, CheckpointError> {
    if code.single_precision() {
        run_generic_controlled(|| workload.build_engine_f32(code), workload, code, cfg, ctl)
    } else {
        run_generic_controlled(|| workload.build_engine_f64(code), workload, code, cfg, ctl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Benchmark, Size};

    #[test]
    fn smoke_run_every_paper_version() {
        let w = Workload::new(Benchmark::NiO32, Size::Scaled, 9);
        let cfg = RunConfig {
            threads: 2,
            walkers: 2,
            steps: 3,
            warmup: 1,
            tau: 0.002,
            seed: 7,
            ..Default::default()
        };
        for code in CodeVersion::paper_ladder() {
            let out = run_dmc_benchmark(&w, code, &cfg);
            assert!(out.seconds > 0.0);
            assert!(out.samples > 0, "{}", out.label);
            assert!(out.energy.0.is_finite(), "{} energy", out.label);
            assert!(out.acceptance > 0.0 && out.acceptance <= 1.0);
            assert!(out.walker_bytes > 0 && out.engine_bytes > 0);
            assert!(out.throughput() > 0.0);
        }
    }

    #[test]
    fn fused_refresh_drives_the_mw_spo_kernel() {
        // The fused block refresh is the product path that keeps the
        // `Bspline-mw-vgl` column live; without it the batched SPO kernel
        // must stay silent (the crowd remains bitwise-per-walker).
        let w = Workload::new(Benchmark::Graphite, Size::Scaled, 5);
        let base = RunConfig {
            threads: 1,
            walkers: 2,
            steps: 3,
            warmup: 1,
            tau: 0.002,
            seed: 7,
            batching: Batching::Crowd(2),
            fused_refresh: false,
        };
        let fused_cfg = RunConfig {
            fused_refresh: true,
            ..base
        };
        let scalar = run_dmc_benchmark(&w, CodeVersion::Current, &base);
        let fused = run_dmc_benchmark(&w, CodeVersion::Current, &fused_cfg);
        let k = qmc_instrument::Kernel::BsplineMwVGL;
        assert_eq!(scalar.profile.get(k).calls, 0, "scalar crowd must not fuse");
        assert!(fused.profile.get(k).calls > 0, "fused crowd must batch SPO");
        assert_eq!(scalar.samples, fused.samples);
        assert!(fused.energy.0.is_finite());
        // Same physics to well under statistical noise: only the FP
        // regrouping of the fused spline kernel separates the runs.
        assert!(
            (scalar.energy.0 - fused.energy.0).abs() < 1e-3,
            "scalar {} vs fused {}",
            scalar.energy.0,
            fused.energy.0
        );
    }

    #[test]
    fn memory_ordering_ref_vs_current() {
        // The headline memory claim: Current walkers are dramatically
        // smaller than Ref walkers (5N^2 -> 5N Jastrow + f64 -> f32).
        let w = Workload::new(Benchmark::NiO32, Size::Scaled, 11);
        let cfg = RunConfig {
            threads: 1,
            walkers: 1,
            steps: 2,
            warmup: 0,
            tau: 0.002,
            seed: 3,
            ..Default::default()
        };
        let r = run_dmc_benchmark(&w, CodeVersion::Ref, &cfg);
        let c = run_dmc_benchmark(&w, CodeVersion::Current, &cfg);
        assert!(
            r.walker_bytes > 2 * c.walker_bytes,
            "Ref walker {} vs Current {}",
            r.walker_bytes,
            c.walker_bytes
        );
        assert!(r.table_bytes == 2 * c.table_bytes);
    }
}
