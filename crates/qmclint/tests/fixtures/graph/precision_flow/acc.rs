// fixture-path: crates/drivers/src/acc.rs
//! Seeded bug: an `f32`-returning helper feeding an `f64` ensemble
//! accumulator with no promotion site — exactly the mixed-precision
//! hazard of the paper's §7.2 the dataflow rule exists for.

/// Narrow-precision helper (designated `-> f32` return).
fn cheap_energy() -> f32 {
    0.5
}

/// The ensemble accumulator: `e` carries an f32 value into the f64 sum
/// without `f64::from` / `.to_f64()`.
pub fn accumulate(n: usize) -> f64 {
    let mut total: f64 = 0.0;
    for _ in 0..n {
        let e = cheap_energy();
        total += e; //~ precision-flow
    }
    total
}

/// A directly-typed f32 local flowing in is caught the same way.
pub fn accumulate_typed(es: &[f64]) -> f64 {
    let mut total: f64 = 0.0;
    for &x in es {
        let e: f32 = narrow(x);
        total += e; //~ precision-flow
    }
    total
}

fn narrow(x: f64) -> f32 {
    // qmclint: allow(precision-cast) — fixture helper, the cast is not
    // what this case is about.
    x as f32
}
