//! Cross-crate integration tests: every benchmark workload runs end to end
//! under every code version, with the physics, throughput and memory
//! orderings the paper's evaluation relies on.

use qmc::prelude::*;

fn quick_cfg(seed: u64) -> RunConfig {
    RunConfig {
        threads: 1,
        walkers: 2,
        steps: 3,
        warmup: 1,
        tau: 0.003,
        seed,
        ..Default::default()
    }
}

#[test]
fn every_benchmark_runs_under_every_code_version() {
    let cfg = quick_cfg(5);
    for b in Benchmark::all() {
        let w = Workload::new(b, Size::Scaled, 5);
        for code in [
            CodeVersion::Ref,
            CodeVersion::RefMp,
            CodeVersion::SoaDouble,
            CodeVersion::Current,
            CodeVersion::CurrentDelayed(8),
        ] {
            let out = run_dmc_benchmark(&w, code, &cfg);
            assert!(
                out.energy.0.is_finite(),
                "{} / {}: energy not finite",
                w.spec.name,
                out.label
            );
            assert!(out.samples > 0, "{} / {}", w.spec.name, out.label);
            assert!(
                out.acceptance > 0.05 && out.acceptance <= 1.0,
                "{} / {}: acceptance {}",
                w.spec.name,
                out.label,
                out.acceptance
            );
        }
    }
}

#[test]
fn code_versions_agree_on_the_physics() {
    // Same seed, same move stream lengths: the energy estimators of all
    // versions must agree to mixed-precision tolerance (they run the same
    // Monte Carlo with different kernels).
    let w = Workload::new(Benchmark::NiO32, Size::Scaled, 11);
    let cfg = quick_cfg(11);
    let e_ref = run_dmc_benchmark(&w, CodeVersion::Ref, &cfg).energy.0;
    let e_soa = run_dmc_benchmark(&w, CodeVersion::SoaDouble, &cfg).energy.0;
    let e_cur = run_dmc_benchmark(&w, CodeVersion::Current, &cfg).energy.0;
    // f64 layouts: near-exact agreement (same arithmetic, different order).
    assert!(
        (e_ref - e_soa).abs() < 5e-4 * (1.0 + e_ref.abs()),
        "Ref {e_ref} vs SoA(dp) {e_soa}"
    );
    // f32 kernels: single-precision tolerance.
    assert!(
        (e_ref - e_cur).abs() < 5e-3 * (1.0 + e_ref.abs()),
        "Ref {e_ref} vs Current {e_cur}"
    );
}

#[test]
fn memory_ordering_follows_the_ladder() {
    let w = Workload::new(Benchmark::NiO32, Size::Scaled, 13);
    let cfg = quick_cfg(13);
    let r = run_dmc_benchmark(&w, CodeVersion::Ref, &cfg);
    let m = run_dmc_benchmark(&w, CodeVersion::RefMp, &cfg);
    let c = run_dmc_benchmark(&w, CodeVersion::Current, &cfg);
    // MP halves the walker buffer; Current removes the 5N^2 Jastrow store.
    assert!(r.walker_bytes > m.walker_bytes);
    assert!(m.walker_bytes > c.walker_bytes);
    assert!(
        r.walker_bytes as f64 / c.walker_bytes as f64 > 3.0,
        "Ref {} vs Current {}",
        r.walker_bytes,
        c.walker_bytes
    );
    // Spline table halves with precision.
    assert_eq!(r.table_bytes, 2 * c.table_bytes);
}

#[test]
fn larger_problems_cost_more_per_sample() {
    let cfg = quick_cfg(17);
    let w32 = Workload::new(Benchmark::NiO32, Size::Scaled, 17);
    let w64 = Workload::new(Benchmark::NiO64, Size::Scaled, 17);
    let t32 = run_dmc_benchmark(&w32, CodeVersion::Current, &cfg);
    let t64 = run_dmc_benchmark(&w64, CodeVersion::Current, &cfg);
    // NiO-64 (192 e) must be slower per sample than NiO-32 (96 e).
    assert!(
        t64.throughput() < t32.throughput(),
        "t32 {} vs t64 {}",
        t32.throughput(),
        t64.throughput()
    );
}

#[test]
fn multi_rank_run_produces_consistent_energy() {
    use qmc::drivers::{run_multi_rank, MultiRankParams};
    let w = Workload::new(Benchmark::NiO32, Size::Scaled, 23);
    let params = MultiRankParams {
        ranks: 2,
        total_population: 4,
        steps: 4,
        warmup: 1,
        tau: 0.003,
        seed: 23,
    };
    let r = run_multi_rank(
        |_rank| w.build_engine_f32(CodeVersion::Current),
        w.initial_positions(),
        &params,
    );
    assert!(r.energy.is_finite());
    assert!(r.samples > 0);
    assert!(r.seconds > 0.0);
    // Energy consistent with the single-engine estimate.
    let single = run_dmc_benchmark(&w, CodeVersion::Current, &quick_cfg(23));
    assert!(
        (r.energy - single.energy.0).abs() < 0.2 * (1.0 + single.energy.0.abs()),
        "multi-rank {} vs single {}",
        r.energy,
        single.energy.0
    );
}

#[test]
fn table1_metadata_is_internally_consistent() {
    for b in Benchmark::all() {
        let s = b.spec();
        assert_eq!(s.num_electrons(Size::Full), s.paper_n);
        assert_eq!(s.num_ions(Size::Full), s.paper_nion);
        assert_eq!(
            s.paper_ions_per_cell * s.paper_num_cells,
            s.paper_nion,
            "{}",
            s.name
        );
    }
}
