// fixture-path: crates/wavefunction/src/jastrow/entry.rs
//! Seeded bug: a hot kernel entry with a clean body whose transitive
//! callee set (two hops, crossing into a non-kernel file) allocates.

/// Kernel entry point: nothing allocates *here*, so the per-file
/// `hot-path` rule stays silent — only the call-graph walk can see the
/// `collect` two frames down in `util.rs`.
pub fn evaluate_chain(n: usize) -> usize {
    let scratch = helper_accum(n); //~ hot-path-call
    scratch.len()
}
