// fixture-class: physics,mixed
// fixture-silences: precision-cast
// A designated mixed-precision module: raw casts and suffixed literals are
// the whole point here (the paper's f64-accumulate / f32-evaluate split),
// so the precision rule stays silent.

pub fn narrow(x: f64) -> f32 {
    x as f32
}

pub fn widen(x: f32) -> f64 {
    x as f64
}

pub fn epsilon_split() -> (f32, f64) {
    (1.0e-6f32, 1.0e-12f64)
}
