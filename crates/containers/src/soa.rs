//! [`VectorSoaContainer`]: the paper's central data-layout contribution.
//!
//! A `VectorSoaContainer<T, D>` (VSC, Fig. 5 of the paper) is the transposed,
//! structure-of-arrays form of a `Vec<TinyVector<T, D>>`: instead of
//! `R[N][D]` it stores `Rsoa[D][Np]` where `Np >= N` is padded to the SIMD
//! width and every slab is 64-byte aligned. Kernels then loop over
//! contiguous per-dimension slabs, which modern compilers auto-vectorize,
//! while high-level physics code keeps using the AoS access operators.

use crate::aligned::{padded_len, AlignedVec};
use crate::real::Real;
use crate::tiny::TinyVector;

/// Structure-of-arrays container for `n` D-dimensional points.
///
/// Mirrors the semantics of QMCPACK's `VectorSoaContainer<T,D>`:
/// - `operator[]` returns an AoS [`TinyVector`] view of one point,
/// - assignment from an AoS slice performs the AoS→SoA transpose in place,
/// - `dim(d)` exposes the contiguous padded slab for dimension `d`.
#[derive(Clone, Debug)]
pub struct VectorSoaContainer<T: Real, const D: usize> {
    data: AlignedVec<T>,
    n: usize,
    /// Padded per-dimension capacity (`Np` in the paper).
    stride: usize,
}

impl<T: Real, const D: usize> VectorSoaContainer<T, D> {
    /// Creates storage for `n` points, zero-initialized, with each of the D
    /// slabs padded to the SIMD width and individually aligned.
    pub fn new(n: usize) -> Self {
        let stride = padded_len::<T>(n);
        Self {
            data: AlignedVec::zeros(stride * D),
            n,
            stride,
        }
    }

    /// Number of logical points.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the container holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Padded per-dimension capacity (`Np`), a multiple of the SIMD width.
    #[inline]
    pub fn padded_len(&self) -> usize {
        self.stride
    }

    /// Contiguous slab of dimension `d`, including padding.
    #[inline]
    pub fn dim(&self, d: usize) -> &[T] {
        debug_assert!(d < D);
        &self.data[d * self.stride..(d + 1) * self.stride]
    }

    /// Mutable slab of dimension `d`, including padding.
    #[inline]
    pub fn dim_mut(&mut self, d: usize) -> &mut [T] {
        debug_assert!(d < D);
        &mut self.data.as_mut_slice()[d * self.stride..(d + 1) * self.stride]
    }

    /// AoS view of point `i` (gather across the D slabs).
    #[inline]
    pub fn get(&self, i: usize) -> TinyVector<T, D> {
        debug_assert!(i < self.n);
        TinyVector(std::array::from_fn(|d| self.data[d * self.stride + i]))
    }

    /// Stores `value` at point `i` (scatter across the D slabs). This is the
    /// "6 floats" update the paper performs on an accepted move.
    #[inline]
    pub fn set(&mut self, i: usize, value: TinyVector<T, D>) {
        debug_assert!(i < self.n);
        for d in 0..D {
            self.data[d * self.stride + i] = value[d];
        }
    }

    /// AoS→SoA assignment: transposes an AoS slice into this container,
    /// converting precision if the source scalar type differs. This is the
    /// `Rsoa = awalker.R` assignment in `loadWalker` (Fig. 5).
    pub fn copy_from_aos<U: Real>(&mut self, aos: &[TinyVector<U, D>]) {
        assert_eq!(aos.len(), self.n, "AoS length must match SoA length");
        for d in 0..D {
            let base = d * self.stride;
            for (i, p) in aos.iter().enumerate() {
                self.data[base + i] = T::from_f64(p[d].to_f64());
            }
        }
    }

    /// SoA→AoS copy, the inverse of [`Self::copy_from_aos`].
    pub fn copy_to_aos<U: Real>(&self, aos: &mut [TinyVector<U, D>]) {
        assert_eq!(aos.len(), self.n, "AoS length must match SoA length");
        for d in 0..D {
            let base = d * self.stride;
            for (i, p) in aos.iter_mut().enumerate() {
                p[d] = U::from_f64(self.data[base + i].to_f64());
            }
        }
    }

    /// Bytes of backing storage (used by the memory ledger).
    #[inline]
    pub fn bytes(&self) -> usize {
        self.stride * D * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aligned::QMC_SIMD_ALIGN;

    #[test]
    fn slabs_are_aligned_and_padded() {
        let c = VectorSoaContainer::<f32, 3>::new(17);
        assert_eq!(c.padded_len(), 32);
        for d in 0..3 {
            assert_eq!(c.dim(d).as_ptr() as usize % QMC_SIMD_ALIGN, 0);
            assert_eq!(c.dim(d).len(), 32);
        }
    }

    #[test]
    fn aos_roundtrip() {
        let n = 13;
        let aos: Vec<TinyVector<f64, 3>> = (0..n)
            .map(|i| TinyVector([i as f64, 10.0 + i as f64, -(i as f64)]))
            .collect();
        let mut c = VectorSoaContainer::<f64, 3>::new(n);
        c.copy_from_aos(&aos);
        for (i, p) in aos.iter().enumerate() {
            assert_eq!(c.get(i), *p);
        }
        let mut back = vec![TinyVector::<f64, 3>::zero(); n];
        c.copy_to_aos(&mut back);
        assert_eq!(back, aos);
    }

    #[test]
    fn cross_precision_transpose() {
        let aos: Vec<TinyVector<f64, 3>> = vec![TinyVector([1.5, 2.5, 3.5]); 4];
        let mut c = VectorSoaContainer::<f32, 3>::new(4);
        c.copy_from_aos(&aos);
        assert_eq!(c.get(2), TinyVector([1.5f32, 2.5, 3.5]));
    }

    #[test]
    fn set_updates_all_dims() {
        let mut c = VectorSoaContainer::<f64, 3>::new(5);
        c.set(3, TinyVector([7.0, 8.0, 9.0]));
        assert_eq!(c.get(3), TinyVector([7.0, 8.0, 9.0]));
        assert_eq!(c.dim(0)[3], 7.0);
        assert_eq!(c.dim(1)[3], 8.0);
        assert_eq!(c.dim(2)[3], 9.0);
    }

    #[test]
    fn padding_is_zero() {
        let c = VectorSoaContainer::<f64, 3>::new(3);
        for d in 0..3 {
            assert!(c.dim(d)[3..].iter().all(|&x| x == 0.0));
        }
    }
}
