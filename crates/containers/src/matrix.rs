//! Row-major dense matrix with SIMD-padded, aligned rows.
//!
//! Distance tables and determinant matrices in the optimized ("Current")
//! code store full `N x Np` rows (Fig. 6(b) of the paper): each row is
//! padded to the SIMD width and starts on an aligned boundary, so the
//! per-row kernel loops vectorize with aligned accesses.

use crate::aligned::{padded_len, AlignedVec};
use crate::real::Real;
use std::ops::{Index, IndexMut};

/// Dense `rows x cols` matrix whose rows are padded to stride `>= cols`.
#[derive(Clone, Debug)]
pub struct Matrix<T: Real> {
    data: AlignedVec<T>,
    rows: usize,
    cols: usize,
    stride: usize,
}

impl<T: Real> Matrix<T> {
    /// Zero matrix with SIMD-padded row stride.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let stride = padded_len::<T>(cols);
        Self {
            data: AlignedVec::zeros(rows * stride),
            rows,
            cols,
            stride,
        }
    }

    /// Zero matrix with exactly `stride == cols` (no padding). Used by the
    /// reference AoS code paths which do not align their data.
    pub fn zeros_unpadded(rows: usize, cols: usize) -> Self {
        Self {
            data: AlignedVec::zeros(rows * cols),
            rows,
            cols,
            stride: cols,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of logical columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row stride in elements (`>= cols`).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Immutable row `i`, logical columns only.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        debug_assert!(i < self.rows);
        &self.data[i * self.stride..i * self.stride + self.cols]
    }

    /// Mutable row `i`, logical columns only.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        debug_assert!(i < self.rows);
        let s = self.stride;
        let c = self.cols;
        &mut self.data.as_mut_slice()[i * s..i * s + c]
    }

    /// Immutable row `i` including padding (length `stride`).
    #[inline]
    pub fn row_padded(&self, i: usize) -> &[T] {
        debug_assert!(i < self.rows);
        &self.data[i * self.stride..(i + 1) * self.stride]
    }

    /// Mutable row `i` including padding.
    #[inline]
    pub fn row_padded_mut(&mut self, i: usize) -> &mut [T] {
        debug_assert!(i < self.rows);
        let s = self.stride;
        &mut self.data.as_mut_slice()[i * s..(i + 1) * s]
    }

    /// Two distinct mutable rows at once (for row swaps / rank-1 updates).
    pub fn two_rows_mut(&mut self, i: usize, j: usize) -> (&mut [T], &mut [T]) {
        assert!(i != j && i < self.rows && j < self.rows);
        let s = self.stride;
        let c = self.cols;
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let (head, tail) = self.data.as_mut_slice().split_at_mut(hi * s);
        let a = &mut head[lo * s..lo * s + c];
        let b = &mut tail[..c];
        if i < j {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Flat view of the backing storage (including padding).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat view of the backing storage (including padding).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.data.as_mut_slice()
    }

    /// Fills the logical region with `value` (padding untouched).
    pub fn fill(&mut self, value: T) {
        for i in 0..self.rows {
            self.row_mut(i).fill(value);
        }
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Identity matrix (must be square).
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |i, j| if i == j { T::ONE } else { T::ZERO })
    }

    /// Casts every logical element through `f64` into another precision.
    pub fn cast<U: Real>(&self) -> Matrix<U> {
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            U::from_f64(self[(i, j)].to_f64())
        })
    }

    /// Maximum absolute elementwise difference against `other`.
    pub fn max_abs_diff(&self, other: &Matrix<T>) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        let mut m: f64 = 0.0;
        for i in 0..self.rows {
            for j in 0..self.cols {
                m = m.max((self[(i, j)].to_f64() - other[(i, j)].to_f64()).abs());
            }
        }
        m
    }

    /// Bytes of backing storage (used by the memory ledger).
    #[inline]
    pub fn bytes(&self) -> usize {
        self.rows * self.stride * std::mem::size_of::<T>()
    }
}

impl<T: Real> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.stride + j]
    }
}

impl<T: Real> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data.as_mut_slice()[i * self.stride + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aligned::QMC_SIMD_ALIGN;

    #[test]
    fn padded_rows_are_aligned() {
        let m = Matrix::<f32>::zeros(5, 17);
        assert_eq!(m.stride(), 32);
        for i in 0..5 {
            assert_eq!(m.row_padded(i).as_ptr() as usize % QMC_SIMD_ALIGN, 0);
        }
    }

    #[test]
    fn unpadded_has_exact_stride() {
        let m = Matrix::<f64>::zeros_unpadded(3, 5);
        assert_eq!(m.stride(), 5);
        assert_eq!(m.bytes(), 3 * 5 * 8);
    }

    #[test]
    fn indexing_and_rows() {
        let mut m = Matrix::<f64>::zeros(3, 4);
        m[(1, 2)] = 5.0;
        assert_eq!(m.row(1)[2], 5.0);
        assert_eq!(m[(1, 2)], 5.0);
        m.row_mut(2).fill(1.0);
        assert_eq!(m.row(2), &[1.0; 4]);
    }

    #[test]
    fn two_rows_mut_disjoint() {
        let mut m = Matrix::<f64>::from_fn(4, 3, |i, _| i as f64);
        let (a, b) = m.two_rows_mut(3, 1);
        assert_eq!(a[0], 3.0);
        assert_eq!(b[0], 1.0);
        a[0] = -3.0;
        b[0] = -1.0;
        assert_eq!(m[(3, 0)], -3.0);
        assert_eq!(m[(1, 0)], -1.0);
    }

    #[test]
    fn identity_and_cast() {
        let i = Matrix::<f64>::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        let j: Matrix<f32> = i.cast();
        assert_eq!(j[(2, 2)], 1.0f32);
        assert_eq!(i.max_abs_diff(&j.cast()), 0.0);
    }

    #[test]
    fn from_fn_layout() {
        let m = Matrix::<f64>::from_fn(2, 3, |i, j| (10 * i + j) as f64);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }
}
