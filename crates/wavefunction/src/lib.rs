//! # qmc-wavefunction
//!
//! The Slater–Jastrow trial wavefunction of Eq. 2-3 in *Mathuriya et al.,
//! SC'17*, with each hot component implemented twice along the paper's
//! optimization ladder:
//!
//! * Jastrow factors ([`jastrow`]) — baseline store-everything (`5 N^2`
//!   scalars per walker) versus compute-on-the-fly SoA (`5 N`).
//! * Single-particle orbitals ([`spo`]) — B-spline tables with reference or
//!   SIMD-friendly loop orders, in `f32` or `f64`.
//! * Dirac determinants ([`determinant`]) — Sherman–Morrison or delayed
//!   Woodbury inverse updates, with periodic double-precision recomputes.
//!
//! [`TrialWaveFunction`] composes components behind the protocol defined in
//! [`traits`].

#![forbid(unsafe_code)]
// Indexed loops over multiple parallel slices are the deliberate idiom in
// the SIMD kernels (mirrors the paper's C++ and keeps the auto-vectorizer's
// job obvious); iterator zips would obscure them.
#![allow(clippy::needless_range_loop)]

pub mod batched;
pub mod buffer;
pub mod determinant;
pub mod jastrow;
pub mod spo;
pub mod traits;
pub mod twf;

pub use batched::BatchedWaveFunctionComponent;
pub use buffer::WalkerBuffer;
pub use determinant::{
    DetUpdateMode, DiracDeterminant, DEFAULT_RECOMPUTE_SWEEPS_DP, DEFAULT_RECOMPUTE_SWEEPS_SP,
};
pub use jastrow::{J1Ref, J1Soa, J2Ref, J2Soa, PairFunctors};
pub use spo::{BsplineSpo, CosineSpo, SpoLayout, SpoSet};
pub use traits::WaveFunctionComponent;
pub use twf::TrialWaveFunction;
