//! End-to-end proof that the `checked` sanitizer actually fires: inject
//! corruption at each guarded accumulator boundary and watch the
//! violation counters move, then run a clean driver and assert checks ran
//! with zero violations.
//!
//! The whole file is gated on the feature — without `--features checked`
//! there is nothing to test (the checks are no-ops).
#![cfg(feature = "checked")]

use qmc_drivers::{run_vmc, BranchController, VmcParams};
use qmc_instrument::{sanitizer_enabled, set_drift_tolerance, take_sanitizer_stats, CheckKind};
use std::sync::{Mutex, MutexGuard};

/// The sanitizer counters are process-global; serialize the tests in this
/// binary so a concurrent test's checks never bleed into another's delta.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

mod common {
    use qmc_containers::TinyVector;
    use qmc_drivers::{initial_population, HamiltonianSet, QmcEngine, Walker};
    use qmc_particles::{CrystalLattice, ParticleSet, Species};
    use qmc_wavefunction::TrialWaveFunction;

    /// A tiny free-particle engine: flat (componentless) wavefunction,
    /// kinetic-only Hamiltonian. Enough to drive real sweeps and
    /// measurements through the sanitized boundaries.
    pub fn engine_and_walkers(n: usize, nw: usize) -> (QmcEngine<f64>, Vec<Walker<f64>>) {
        let l = 6.0;
        let pos: Vec<_> = (0..n)
            .map(|i| {
                let x = (0.5 + i as f64 * 0.7) % l;
                TinyVector([x, (x * 1.3) % l, (x * 2.1) % l])
            })
            .collect();
        let pset = ParticleSet::new(
            "e",
            CrystalLattice::cubic(l),
            vec![(
                Species {
                    name: "u".into(),
                    charge: -1.0,
                },
                pos.clone(),
            )],
        );
        let psi = TrialWaveFunction::new();
        let engine = QmcEngine::new(pset, psi, HamiltonianSet::kinetic_only());
        let walkers = initial_population(&pos, nw, 42);
        (engine, walkers)
    }
}

#[test]
fn sanitizer_is_compiled_in() {
    assert!(sanitizer_enabled());
}

#[test]
fn corrupted_local_energy_fires_branch_weight_check() {
    let _g = serial();
    take_sanitizer_stats();
    let branch = BranchController::new(8, -1.0, 0.01, 7);
    // A NaN local energy survives the exponent clamp and must be caught
    // at the branch-weight boundary.
    let factor = branch.weight_factor(f64::NAN, -1.2);
    assert!(factor.is_nan());
    let stats = take_sanitizer_stats();
    assert_eq!(stats.violations[CheckKind::BranchWeight as usize], 1);
    assert_eq!(stats.checks_run[CheckKind::BranchWeight as usize], 1);
}

#[test]
fn corrupted_energy_estimate_fires_trial_energy_check() {
    let _g = serial();
    take_sanitizer_stats();
    let mut branch = BranchController::new(8, -1.0, 0.01, 7);
    branch.update_trial_energy(f64::INFINITY, 8);
    let stats = take_sanitizer_stats();
    assert_eq!(stats.violations[CheckKind::TrialEnergy as usize], 1);
}

#[test]
fn drift_bound_fires_on_injected_drift() {
    let _g = serial();
    take_sanitizer_stats();
    set_drift_tolerance(1e-6);
    // Simulate a from-scratch recompute whose |Δ log ψ| blew past the
    // bound — exactly what a broken mixed-precision kernel produces.
    qmc_instrument::record_refresh_drift(0.5);
    qmc_instrument::record_refresh_drift(1e-9);
    set_drift_tolerance(f64::INFINITY);
    let stats = take_sanitizer_stats();
    assert_eq!(stats.checks_run[CheckKind::Drift as usize], 2);
    assert_eq!(stats.violations[CheckKind::Drift as usize], 1);
}

#[test]
fn clean_vmc_run_checks_without_violations() {
    let _g = serial();
    take_sanitizer_stats();
    let (mut engine, mut walkers) = common::engine_and_walkers(4, 3);
    let params = VmcParams {
        blocks: 2,
        steps_per_block: 5,
        tau: 0.3,
        measure_every: 1,
        batching: qmc_drivers::Batching::PerWalker,
    };
    let res = run_vmc(&mut engine, &mut walkers, &params);
    assert!(res.samples > 0);
    let stats = take_sanitizer_stats();
    assert!(
        stats.checks_run[CheckKind::LocalEnergy as usize] > 0,
        "local-energy boundary was never checked: {stats:?}"
    );
    assert!(
        stats.checks_run[CheckKind::LogPsi as usize] > 0,
        "log-psi boundary was never checked: {stats:?}"
    );
    assert_eq!(
        stats.total_violations(),
        0,
        "clean run must not violate: {stats:?}"
    );
}

#[test]
fn corrupted_walker_energy_is_caught_by_the_dmc_loop() {
    let _g = serial();
    take_sanitizer_stats();
    let (mut engine, mut walkers) = common::engine_and_walkers(4, 3);
    for w in walkers.iter_mut() {
        engine.init_walker(w);
    }
    // Inject corruption the way a broken kernel would surface it: a
    // walker's cached local energy goes NaN between generations.
    walkers[0].e_local = f64::NAN;
    let branch = BranchController::new(3, -0.5, 0.01, 3);
    for w in walkers.iter() {
        let f = branch.weight_factor(w.e_local, -0.5);
        let _ = f;
    }
    let stats = take_sanitizer_stats();
    assert_eq!(
        stats.violations[CheckKind::BranchWeight as usize],
        1,
        "exactly the corrupted walker must trip the check: {stats:?}"
    );
    assert_eq!(stats.checks_run[CheckKind::BranchWeight as usize], 3);
}
