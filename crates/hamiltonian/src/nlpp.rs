//! Non-local pseudopotential (NLPP) via spherical quadrature of ratios.
//!
//! Following Fahy et al. (the paper's ref. 19) and §3 of the paper: the
//! angular integral of the non-local operator is approximated by a
//! quadrature on a spherical shell around each ion. For every electron `i`
//! inside the cutoff of ion `I` at radius `r`:
//!
//! ```text
//! dE = sum_l (2l+1) v_l(r) * (1/Nq) sum_q P_l(cos gamma_q)
//!                              * Psi(.., r'_q, ..) / Psi(.., r_i, ..)
//! ```
//!
//! with `r'_q` on the sphere of radius `r` around the ion and `gamma_q` the
//! angle between the old and new directions. The ratio evaluations go
//! through the value-only wavefunction path (the `Bspline-v` kernel of
//! Fig. 2). The quadrature grid is randomly rotated per evaluation to avoid
//! angular bias, as in QMCPACK.

// qmclint: allow-file(precision-cast) — quadrature-grid construction (Gauss weights,
// spherical angles) is tabulated in f64 once at setup.
use qmc_containers::{Pos, Real, TinyVector};
use qmc_instrument::{time_kernel, Kernel};
use qmc_particles::{DistTable, ParticleSet};
use qmc_wavefunction::TrialWaveFunction;
use rand::Rng;

/// One angular-momentum channel of a model semi-local pseudopotential:
/// `v_l(r) = v0 * exp(-alpha r^2)`.
#[derive(Clone, Copy, Debug)]
pub struct PpChannel {
    /// Angular momentum (0 or 1 supported).
    pub l: usize,
    /// Channel strength at `r = 0` (hartree).
    pub v0: f64,
    /// Gaussian decay of the radial channel function.
    pub alpha: f64,
}

impl PpChannel {
    /// Radial channel value `v_l(r)`.
    #[inline]
    pub fn value(&self, r: f64) -> f64 {
        self.v0 * (-self.alpha * r * r).exp()
    }
}

/// The non-local part of one ion species' pseudopotential.
#[derive(Clone, Debug)]
pub struct PseudoSpecies {
    /// Channels (at most `l = 1` in this model).
    pub channels: Vec<PpChannel>,
    /// Cutoff radius beyond which the non-local part vanishes.
    pub r_cut: f64,
}

/// The 12-vertex icosahedral quadrature grid (unit vectors, equal weights);
/// integrates spherical harmonics exactly through `l = 5`.
pub fn icosahedron_grid() -> Vec<Pos<f64>> {
    let phi = f64::midpoint(1.0, 5.0f64.sqrt());
    let norm = (1.0 + phi * phi).sqrt();
    let a = 1.0 / norm;
    let b = phi / norm;
    let mut pts = Vec::with_capacity(12);
    for &s1 in &[1.0f64, -1.0] {
        for &s2 in &[1.0f64, -1.0] {
            pts.push(TinyVector([0.0, s1 * a, s2 * b]));
            pts.push(TinyVector([s1 * a, s2 * b, 0.0]));
            pts.push(TinyVector([s1 * b, 0.0, s2 * a]));
        }
    }
    pts
}

/// Legendre polynomial `P_l(x)` for `l <= 2`.
#[inline]
pub fn legendre(l: usize, x: f64) -> f64 {
    match l {
        0 => 1.0,
        1 => x,
        2 => 1.5 * x * x - 0.5,
        _ => panic!("legendre: only l <= 2 supported"),
    }
}

/// Non-local pseudopotential evaluator over an AB (electron-ion) table.
pub struct NonLocalPP {
    table: usize,
    /// Per ion-group pseudopotential (one entry per species).
    species: Vec<PseudoSpecies>,
    /// Ion group of each ion index.
    ion_group: Vec<usize>,
    /// Ion positions (f64).
    ion_pos: Vec<Pos<f64>>,
    /// Quadrature directions (unit sphere).
    grid: Vec<Pos<f64>>,
}

impl NonLocalPP {
    /// Builds the evaluator over AB table `table` with one
    /// [`PseudoSpecies`] per ion group of `ions`.
    pub fn new<T: Real>(table: usize, ions: &ParticleSet<T>, species: Vec<PseudoSpecies>) -> Self {
        assert_eq!(species.len(), ions.num_groups());
        let ion_group = (0..ions.len()).map(|a| ions.group_of(a)).collect();
        let mut ion_pos = vec![TinyVector::zero(); ions.len()];
        ions.store_positions(&mut ion_pos);
        Self {
            table,
            species,
            ion_group,
            ion_pos,
            grid: icosahedron_grid(),
        }
    }

    /// Evaluates the NLPP contribution to the local energy for the current
    /// configuration. Performs trial moves (ratio evaluations) that are
    /// always rejected, leaving all state untouched.
    pub fn evaluate<T: Real, R: Rng + ?Sized>(
        &self,
        p: &mut ParticleSet<T>,
        psi: &mut TrialWaveFunction<T>,
        rng: &mut R,
    ) -> f64 {
        // Only the quadrature bookkeeping is attributed to the NLPP
        // category; the ratio evaluations inside attribute themselves to
        // Bspline-v / J1 / J2 / DistTable, matching the paper's
        // leaf-level (VTune) hot-spot accounting.
        let pairs = time_kernel(Kernel::Nlpp, || {
            let n = p.len();
            let nion = self.ion_pos.len();
            // Collect the (electron, ion, distance) pairs inside cutoffs
            // first, so the table borrow ends before we start moving.
            let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
            match p.table(self.table) {
                DistTable::AbRef(t) => {
                    for i in 0..n {
                        for a in 0..nion {
                            let d = t.dist(i, a).to_f64();
                            if d < self.species[self.ion_group[a]].r_cut {
                                pairs.push((i, a, d));
                            }
                        }
                    }
                }
                DistTable::AbSoa(t) => {
                    for i in 0..n {
                        let row = t.dist_row(i);
                        for a in 0..nion {
                            let d = row[a].to_f64();
                            if d < self.species[self.ion_group[a]].r_cut {
                                pairs.push((i, a, d));
                            }
                        }
                    }
                }
                _ => panic!("NonLocalPP needs an AB table"),
            }
            pairs
        });
        {
            let n = p.len();
            let nq = self.grid.len() as f64;
            let mut acc = 0.0f64;
            let mut epos = vec![TinyVector::<f64, 3>::zero(); n];
            p.store_positions(&mut epos);
            let lat64 = p.lattice.cast::<f64>();
            // Per-pair scratch, sized once by the fixed quadrature order.
            let npts = self.grid.len();
            let mut dirs = vec![TinyVector::<f64, 3>::zero(); npts];
            let mut newpos = vec![Pos::<T>::zero(); npts];
            let mut ratios = vec![0.0f64; npts];
            let mut channel_sums = [0.0f64; 4];
            for (i, a, r) in pairs {
                let sp = &self.species[self.ion_group[a]];
                debug_assert!(sp.channels.len() <= channel_sums.len());
                let rot = random_rotation(rng);
                // Old direction from ion to electron.
                let old_dir = lat64.min_image(epos[i] - self.ion_pos[a]);
                let old_hat = old_dir / old_dir.norm();
                // Rotate the whole grid first (RNG was drawn above, so the
                // stream is untouched by how the ratios are batched) ...
                for (k, q) in self.grid.iter().enumerate() {
                    dirs[k] = rotate(rot, *q);
                    newpos[k] = (self.ion_pos[a] + dirs[k] * r).cast();
                }
                // ... then evaluate every quadrature ratio through the
                // batched value-only path: determinants share one
                // Bspline-v dispatch and one inverse-row extraction for
                // all points, Jastrows fall back to per-point candidate
                // rows. Bitwise identical to the per-point
                // make_move/calc_ratio/reject loop.
                psi.calc_ratios_v(p, i, &newpos, &mut ratios);
                channel_sums[..sp.channels.len()].fill(0.0);
                for (k, dir) in dirs.iter().enumerate() {
                    let cosg = old_hat.dot(dir);
                    for (c, ch) in sp.channels.iter().enumerate() {
                        channel_sums[c] += legendre(ch.l, cosg) * ratios[k];
                    }
                }
                for (c, ch) in sp.channels.iter().enumerate() {
                    acc += (2.0 * ch.l as f64 + 1.0) * ch.value(r) * channel_sums[c] / nq;
                }
            }
            acc
        }
    }
}

/// A uniformly random rotation matrix (rows), via quaternion sampling.
fn random_rotation<R: Rng + ?Sized>(rng: &mut R) -> [[f64; 3]; 3] {
    use qmc_particles::gaussian;
    // Random unit quaternion.
    let (mut q0, mut q1, mut q2, mut q3);
    loop {
        q0 = gaussian(rng);
        q1 = gaussian(rng);
        q2 = gaussian(rng);
        q3 = gaussian(rng);
        let n = (q0 * q0 + q1 * q1 + q2 * q2 + q3 * q3).sqrt();
        if n > 1e-12 {
            q0 /= n;
            q1 /= n;
            q2 /= n;
            q3 /= n;
            break;
        }
    }
    [
        [
            1.0 - 2.0 * (q2 * q2 + q3 * q3),
            2.0 * (q1 * q2 - q0 * q3),
            2.0 * (q1 * q3 + q0 * q2),
        ],
        [
            2.0 * (q1 * q2 + q0 * q3),
            1.0 - 2.0 * (q1 * q1 + q3 * q3),
            2.0 * (q2 * q3 - q0 * q1),
        ],
        [
            2.0 * (q1 * q3 - q0 * q2),
            2.0 * (q2 * q3 + q0 * q1),
            1.0 - 2.0 * (q1 * q1 + q2 * q2),
        ],
    ]
}

#[inline]
fn rotate(m: [[f64; 3]; 3], v: Pos<f64>) -> Pos<f64> {
    TinyVector([
        m[0][0] * v[0] + m[0][1] * v[1] + m[0][2] * v[2],
        m[1][0] * v[0] + m[1][1] * v[1] + m[1][2] * v[2],
        m[2][0] * v[0] + m[2][1] * v[1] + m[2][2] * v[2],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_is_unit_and_balanced() {
        let g = icosahedron_grid();
        assert_eq!(g.len(), 12);
        let mut sum = TinyVector::<f64, 3>::zero();
        for q in &g {
            assert!((q.norm() - 1.0).abs() < 1e-12);
            sum += *q;
        }
        // Antipodal symmetry: vector sum vanishes => P_1 integrates to 0.
        assert!(sum.norm() < 1e-12);
    }

    #[test]
    fn grid_integrates_p2_exactly() {
        // Integral of P_2(cos theta) over the sphere vanishes; the
        // icosahedral rule reproduces that for any fixed axis.
        let g = icosahedron_grid();
        for axis in [
            TinyVector([0.0, 0.0, 1.0]),
            TinyVector([1.0, 0.0, 0.0]),
            TinyVector([0.6, 0.48, 0.64]),
        ] {
            let s: f64 = g.iter().map(|q| legendre(2, q.dot(&axis))).sum();
            assert!(s.abs() < 1e-10, "axis {axis:?}: {s}");
        }
    }

    #[test]
    fn rotation_preserves_norm_and_angles() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = random_rotation(&mut rng);
        let a = TinyVector([1.0, 2.0, 3.0]);
        let b = TinyVector([-0.5, 0.7, 0.1]);
        let ra = rotate(m, a);
        let rb = rotate(m, b);
        assert!((ra.norm() - a.norm()).abs() < 1e-12);
        assert!((ra.dot(&rb) - a.dot(&b)).abs() < 1e-12);
    }

    #[test]
    fn channel_value_decays() {
        let ch = PpChannel {
            l: 0,
            v0: 2.0,
            alpha: 1.5,
        };
        assert_eq!(ch.value(0.0), 2.0);
        assert!(ch.value(1.0) < 2.0);
        assert!(ch.value(3.0) < 1e-5);
    }

    #[test]
    fn legendre_values() {
        assert_eq!(legendre(0, 0.3), 1.0);
        assert_eq!(legendre(1, 0.3), 0.3);
        assert!((legendre(2, 1.0) - 1.0).abs() < 1e-15);
        assert!((legendre(2, 0.0) + 0.5).abs() < 1e-15);
    }
}
