//! Crowd DMC driver: the generation loop of `run_dmc_parallel` with
//! lock-step crowds in place of per-walker engine streaming.

use crate::crowd::Crowd;
use crate::scheduler::CrowdScheduler;
use parking_lot::Mutex;
use qmc_containers::Real;
use qmc_drivers::{chunks_mut, DmcParams, DmcResult, DmcState, RunControl, Walker};
use qmc_instrument::{drain_thread_profile, span, span_lazy, ProfileSet};

/// Runs DMC across a crew of crowds (one crowd per thread). Walker
/// initialization, branching, trial-energy feedback and the energy
/// reduction all follow the per-walker parallel driver exactly, so the
/// result is bit-identical to `run_dmc_parallel` for any crowd size.
/// Kernel time drains into one [`ProfileSet`] group per crowd.
pub fn run_dmc_crowd<T: Real>(
    crowds: &mut [Crowd<T>],
    walkers: &mut Vec<Walker<T>>,
    params: &DmcParams,
) -> (DmcResult, ProfileSet) {
    run_dmc_crowd_controlled(crowds, walkers, params, None, &mut RunControl::none())
}

/// [`run_dmc_crowd`] with checkpoint/resume control. Resume skips walker
/// initialization (restored walkers carry their buffers and RNG streams)
/// and continues from `state.step`; the shared
/// [`DmcState::finish_generation`] tail keeps the bookkeeping bit-identical
/// to every other DMC driver variant, so a run checkpointed under one
/// batching mode can resume under another and still match bitwise.
pub fn run_dmc_crowd_controlled<T: Real>(
    crowds: &mut [Crowd<T>],
    walkers: &mut Vec<Walker<T>>,
    params: &DmcParams,
    resume: Option<DmcState>,
    control: &mut RunControl<'_>,
) -> (DmcResult, ProfileSet) {
    assert!(!crowds.is_empty());
    let profile = Mutex::new(ProfileSet::with_groups(crowds.len()));

    let mut state = if let Some(state) = resume {
        state
    } else {
        // Parallel walker initialization over the same contiguous chunks.
        rayon::scope(|scope| {
            let chunks = chunks_mut(walkers, crowds.len());
            for (c, (crowd, chunk)) in crowds.iter_mut().zip(chunks).enumerate() {
                let profile = &profile;
                scope.spawn(move || {
                    qmc_instrument::enable_ftz();
                    let _span = span("init", c as u64);
                    for w in chunk.iter_mut() {
                        crowd.slot_mut(0).init_walker(w);
                    }
                    profile.lock().merge_group(c, &drain_thread_profile());
                });
            }
        });
        let e0 = if walkers.is_empty() {
            0.0
        } else {
            // qmclint: allow(precision-cast) — walker/step counts convert exactly to f64 for statistics.
            walkers.iter().map(|w| w.e_local).sum::<f64>() / walkers.len() as f64
        };
        DmcState::fresh(e0, params)
    };

    while state.step < params.steps {
        let step = state.step;
        // Driver-level step span on its own lane, above the crowd lanes.
        let _step_span = span_lazy(crowds.len() as u64, || format!("step {step}"));
        let refresh = params.recompute_every > 0 && step % params.recompute_every == 0;
        let (esum, wsum, acc, att) = CrowdScheduler::generation(
            crowds,
            walkers,
            params.tau,
            refresh,
            &state.branch,
            &profile,
        );
        let e_avg = state.finish_generation(walkers, params.warmup, esum, wsum, acc, att);
        control.after_dmc_generation(&state, walkers, params, e_avg, wsum);
    }

    // Fold the coordinator thread's own profile (branching etc.) into the
    // aggregate only — it belongs to no crowd.
    profile.lock().merge_total(&drain_thread_profile());

    (state.into_result(), profile.into_inner())
}
