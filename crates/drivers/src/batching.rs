//! Walker-batching strategy for the QMC drivers.
//!
//! [`Batching`] selects between the classic one-walker-at-a-time drive
//! (one engine sweeps each walker to completion before touching the next)
//! and crowd-based lock-step execution, where a crowd of walkers advances
//! through the PbyP sweep together so leaf kernels see multi-walker
//! batches (QMCPACK's performance-portable driver design). The crowd
//! drivers live in the `qmc-crowd` crate; this enum is the dial the
//! drivers, workloads and binaries share.

/// How walkers are mapped onto engines within a thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Batching {
    /// One walker at a time per thread (the classic miniQMC drive).
    #[default]
    PerWalker,
    /// Lock-step crowds of the given size (walkers per crowd). A crowd
    /// size of 1 exercises the crowd machinery with scalar-equivalent
    /// batches; results are bit-identical for every crowd size.
    Crowd(usize),
}

impl Batching {
    /// Walkers advanced in lock-step (1 for the per-walker drive).
    pub fn crowd_size(self) -> usize {
        match self {
            Batching::PerWalker => 1,
            Batching::Crowd(w) => w.max(1),
        }
    }

    /// True when the crowd scheduler should be used.
    pub fn is_crowd(self) -> bool {
        matches!(self, Batching::Crowd(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crowd_size_floors_at_one() {
        assert_eq!(Batching::PerWalker.crowd_size(), 1);
        assert_eq!(Batching::Crowd(0).crowd_size(), 1);
        assert_eq!(Batching::Crowd(32).crowd_size(), 32);
        assert!(!Batching::PerWalker.is_crowd());
        assert!(Batching::Crowd(4).is_crowd());
    }
}
