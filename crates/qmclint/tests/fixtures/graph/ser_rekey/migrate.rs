// fixture-path: crates/drivers/src/migrate.rs
//! The hidden mutation: a "stream refresh" helper that draws from the
//! walker's RNG and then re-keys it wholesale. Reachable from
//! `serialize_walker`, so both effects break serialization purity; the
//! re-key additionally violates RNG discipline because `refresh_stream`
//! is not one of the sanctioned re-key markers (the draw alone is fine
//! here — `crates/drivers/src/` is sanctioned territory).

/// NOT `reseed_for_migration`: re-keying here is the bug.
pub fn refresh_stream(w: &mut Walker) {
    let reseed: u64 = w.rng.random(); //~ serialization-purity
    //~v serialization-purity
    w.rng = StdRng::seed_from_u64(reseed); //~ rng-discipline
}
