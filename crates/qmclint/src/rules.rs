//! The five QMC invariant rule families, run over the lexed token stream.
//!
//! Rules are deliberately lexical: they see tokens and comments, not types.
//! That keeps the analyzer dependency-free and fast, at the cost of a small
//! amount of in-source annotation (`// qmclint: allow(<rule>) — <why>`,
//! `// qmclint: cold — <why>`) where the project knowingly deviates.

use crate::config::{is_cold_fn_name, FileClass};
use crate::diag::{Diagnostic, Rule};
use crate::lexer::{float_suffix, lex, Lexed, Tok, TokKind};

/// Marker grammar:
///
/// * `// qmclint: allow(rule[, rule]) — reason`       (this line, or the
///   next *code* line — intervening comment-only lines are skipped, so a
///   justification may wrap over several comment lines)
/// * `// qmclint: allow-file(rule[, rule]) — reason`  (whole file)
/// * `// qmclint: cold — reason`                      (next `fn` is setup)
///
/// The em-dash may also be spelled `--` or `-`. A missing or empty reason
/// is itself a diagnostic: every suppression must carry a justification.
#[derive(Debug, Default)]
pub(crate) struct Allows {
    file_rules: Vec<Rule>,
    /// (rule, marker line, first code line at/after the marker).
    line_rules: Vec<(Rule, u32, u32)>,
    cold_lines: Vec<u32>,
}

impl Allows {
    pub(crate) fn allowed(&self, rule: Rule, line: u32) -> bool {
        self.file_rules.contains(&rule)
            || self
                .line_rules
                .iter()
                .any(|&(r, l, tgt)| r == rule && (l == line || tgt == line))
    }

    pub(crate) fn cold_near(&self, fn_line: u32) -> bool {
        self.cold_lines
            .iter()
            .any(|&l| l <= fn_line && l + 3 >= fn_line)
    }
}

fn split_reason(rest: &str) -> Option<&str> {
    for sep in ["—", "--", "-"] {
        if let Some((_, reason)) = rest.split_once(sep) {
            let reason = reason.trim();
            if reason.chars().filter(|c| c.is_alphanumeric()).count() >= 3 {
                return Some(reason);
            }
        }
    }
    None
}

/// First line at or after `marker` that carries a code token (the line a
/// standalone marker comment applies to). Falls back to the marker line.
fn first_code_line(tokens: &[Tok], marker: u32) -> u32 {
    tokens
        .iter()
        .map(|t| t.line)
        .find(|&l| l >= marker)
        .unwrap_or(marker)
}

pub(crate) fn parse_markers(path: &str, lexed: &Lexed, diags: &mut Vec<Diagnostic>) -> Allows {
    let mut allows = Allows::default();
    for c in &lexed.comments {
        let Some(pos) = c.text.find("qmclint:") else {
            continue;
        };
        let directive = c.text[pos + "qmclint:".len()..].trim();
        let bad = |diags: &mut Vec<Diagnostic>, msg: String| {
            diags.push(Diagnostic {
                file: path.to_string(),
                line: c.line,
                rule: Rule::BadMarker,
                message: msg,
                suggestion: "write `qmclint: allow(<rule>) — <justification>` or \
                             `qmclint: cold — <justification>`"
                    .into(),
                chain: Vec::new(),
            });
        };
        if let Some(rest) = directive.strip_prefix("cold") {
            if split_reason(rest).is_none() {
                bad(
                    diags,
                    "`qmclint: cold` marker without a justification".into(),
                );
            } else {
                allows
                    .cold_lines
                    .push(first_code_line(&lexed.tokens, c.line));
            }
            continue;
        }
        let (file_scope, rest) = if let Some(r) = directive.strip_prefix("allow-file") {
            (true, r)
        } else if let Some(r) = directive.strip_prefix("allow") {
            (false, r)
        } else {
            bad(diags, format!("unknown qmclint directive `{directive}`"));
            continue;
        };
        let Some(open) = rest.find('(') else {
            bad(diags, "allow marker missing `(<rule>)`".into());
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad(diags, "allow marker missing closing `)`".into());
            continue;
        };
        if split_reason(&rest[close + 1..]).is_none() {
            bad(
                diags,
                "allow marker without a justification after the rule list".into(),
            );
            continue;
        }
        for raw in rest[open + 1..close].split(',') {
            let id = raw.trim();
            match Rule::from_id(id) {
                Some(rule) if file_scope => allows.file_rules.push(rule),
                Some(rule) => {
                    allows
                        .line_rules
                        .push((rule, c.line, first_code_line(&lexed.tokens, c.line)));
                }
                None => bad(diags, format!("unknown rule `{id}` in allow marker")),
            }
        }
    }
    allows
}

/// Per-token mask: true when the token sits inside a `#[cfg(test)] mod`
/// (or other `test`-attributed item) and should be ignored by every rule.
pub(crate) fn test_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            // Find the matching `]` and inspect the attribute tokens.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut has_test = false;
            let mut has_not = false;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokKind::Ident => {
                        if tokens[j].text == "test" {
                            has_test = true;
                        } else if tokens[j].text == "not" {
                            has_not = true;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if has_test && !has_not {
                // Skip any further attributes, then mask the next item's
                // body (mod/fn/impl ... { ... }).
                let mut k = j + 1;
                while k + 1 < tokens.len() && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[')
                {
                    let mut d = 0usize;
                    while k < tokens.len() {
                        if tokens[k].is_punct('[') {
                            d += 1;
                        } else if tokens[k].is_punct(']') {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    k += 1;
                }
                // Find the item's opening brace and mask to its close.
                let mut body = k;
                while body < tokens.len()
                    && !tokens[body].is_punct('{')
                    && !tokens[body].is_punct(';')
                {
                    body += 1;
                }
                if body < tokens.len() && tokens[body].is_punct('{') {
                    let mut d = 0usize;
                    let mut e = body;
                    while e < tokens.len() {
                        if tokens[e].is_punct('{') {
                            d += 1;
                        } else if tokens[e].is_punct('}') {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        e += 1;
                    }
                    for m in &mut mask[i..=e.min(tokens.len() - 1)] {
                        *m = true;
                    }
                    i = e + 1;
                    continue;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// A function span in the token stream.
#[derive(Debug)]
pub(crate) struct FnSpan {
    pub(crate) name: String,
    pub(crate) line: u32,
    /// Token index of the `fn` keyword (signature start).
    pub(crate) sig: usize,
    /// Token index of the opening `{` (body), if the fn has one.
    pub(crate) body: Option<(usize, usize)>,
}

pub(crate) fn fn_spans(tokens: &[Tok]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") && i + 1 < tokens.len() && tokens[i + 1].kind == TokKind::Ident
        {
            let name = tokens[i + 1].text.clone();
            let line = tokens[i].line;
            // Scan the signature for the body `{` (or `;` for a bare
            // trait-method declaration). Parens/brackets are balanced so a
            // closure default or array type cannot fool the scan.
            let mut j = i + 2;
            let mut depth = 0i32;
            let mut body = None;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokKind::Punct('(' | '[') => depth += 1,
                    TokKind::Punct(')' | ']') => depth -= 1,
                    TokKind::Punct('{') if depth == 0 => {
                        // Match braces to find the body end.
                        let mut d = 0i32;
                        let mut e = j;
                        while e < tokens.len() {
                            if tokens[e].is_punct('{') {
                                d += 1;
                            } else if tokens[e].is_punct('}') {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            e += 1;
                        }
                        body = Some((j, e.min(tokens.len() - 1)));
                        break;
                    }
                    TokKind::Punct(';') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            spans.push(FnSpan {
                name,
                line,
                sig: i,
                body,
            });
        }
        i += 1;
    }
    spans
}

/// Classifies token `i` as a hot-path violation site. Returns the
/// offending name and `true` when it is panic machinery (vs allocation).
/// Shared between the per-file hot-path rule and the call-graph model
/// (which records these sites in *every* function so the inter-procedural
/// rule can find them in transitive callees).
pub(crate) fn hot_site(tokens: &[Tok], i: usize) -> Option<(&str, bool)> {
    let t = &tokens[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    let prev_dot = i > 0 && tokens[i - 1].is_punct('.');
    let next_bang = tokens.get(i + 1).is_some_and(|n| n.is_punct('!'));
    let next_paren = tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
    let path_new = tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
        && tokens
            .get(i + 3)
            .is_some_and(|n| n.is_ident("new") || n.is_ident("with_capacity"));
    match t.text.as_str() {
        "unwrap" | "expect" if prev_dot && next_paren => Some((t.text.as_str(), true)),
        "panic" | "todo" | "unimplemented" if next_bang => Some((t.text.as_str(), true)),
        "format" | "vec" if next_bang => Some((t.text.as_str(), false)),
        "collect" | "push" | "clone" | "to_vec" | "to_string" if prev_dot && next_paren => {
            Some((t.text.as_str(), false))
        }
        "Vec" | "Box" | "String" if path_new => Some((t.text.as_str(), false)),
        _ => None,
    }
}

/// Kernel-enum usage collected across files for the timer cross-check.
#[derive(Debug, Default)]
pub struct KernelUsage {
    /// `Kernel::Variant` references seen outside `crates/instrument`.
    pub referenced: Vec<String>,
}

/// Lints one file's source. `path` is repo-relative (diagnostics + config
/// lookups); `class` normally comes from [`crate::config::classify`] but
/// tests inject synthetic classes to exercise rules on fixture files.
pub fn lint_source(
    path: &str,
    src: &str,
    class: FileClass,
    diags: &mut Vec<Diagnostic>,
    usage: &mut KernelUsage,
) {
    if class.exempt {
        return;
    }
    let lexed = lex(src);
    let tokens = &lexed.tokens;
    let allows = parse_markers(path, &lexed, diags);
    let mask = test_mask(tokens);
    let spans = fn_spans(tokens);

    let push = |diags: &mut Vec<Diagnostic>,
                rule: Rule,
                line: u32,
                message: String,
                suggestion: String| {
        if !allows.allowed(rule, line) {
            diags.push(Diagnostic {
                file: path.to_string(),
                line,
                rule,
                message,
                suggestion,
                chain: Vec::new(),
            });
        }
    };

    // Collect Kernel::Variant references (for the workspace cross-check).
    if !path.contains("crates/instrument/") {
        let mut i = 0usize;
        while i + 3 < tokens.len() {
            if tokens[i].is_ident("Kernel")
                && tokens[i + 1].is_punct(':')
                && tokens[i + 2].is_punct(':')
                && tokens[i + 3].kind == TokKind::Ident
            {
                usage.referenced.push(tokens[i + 3].text.clone());
            }
            i += 1;
        }
    }

    // Rule 1: precision hygiene. Scoped to physics crates: observability
    // code converts bytes and nanoseconds to f64 freely, but anything whose
    // numbers enter the Monte Carlo estimate must use the Real-trait
    // boundary outside the designated mixed-precision modules.
    if class.physics && !class.mixed_precision {
        for (i, t) in tokens.iter().enumerate() {
            if mask[i] {
                continue;
            }
            if t.is_ident("as") {
                if let Some(next) = tokens.get(i + 1) {
                    if next.is_ident("f32") || next.is_ident("f64") {
                        push(
                            diags,
                            Rule::PrecisionCast,
                            t.line,
                            format!(
                                "raw `as {}` cast outside a designated mixed-precision module",
                                next.text
                            ),
                            "convert at the Real-trait boundary (`T::from_f64` / `.to_f64()`) \
                             or justify with `// qmclint: allow(precision-cast) — <why>`"
                                .into(),
                        );
                    }
                }
            } else if t.kind == TokKind::Num {
                if let Some(sfx) = float_suffix(&t.text) {
                    push(
                        diags,
                        Rule::PrecisionCast,
                        t.line,
                        format!("`{sfx}`-suffixed float literal pins a concrete precision"),
                        "use `T::from_f64` (or an unsuffixed literal) so the kernel stays \
                         generic, or justify with `// qmclint: allow(precision-cast) — <why>`"
                            .into(),
                    );
                }
            }
        }
    }

    // Rule 2: hot-path hygiene (kernel modules only).
    if class.kernel {
        for span in &spans {
            let Some((b0, b1)) = span.body else { continue };
            if mask[b0] || is_cold_fn_name(&span.name) || allows.cold_near(span.line) {
                continue;
            }
            for i in b0..=b1 {
                let t = &tokens[i];
                if let Some((what, is_panic)) = hot_site(tokens, i) {
                    let (msg, help) = if is_panic {
                        (
                            format!(
                                "`{what}` in hot kernel fn `{}` can panic/abort mid-sweep",
                                span.name
                            ),
                            "handle the condition without unwinding, mark the fn \
                             `// qmclint: cold — <why>` if it is setup, or justify with \
                             `// qmclint: allow(hot-path) — <why>`"
                                .to_string(),
                        )
                    } else {
                        (
                            format!("`{what}` allocates inside hot kernel fn `{}`", span.name),
                            "hoist into a preallocated scratch buffer, mark the fn \
                             `// qmclint: cold — <why>` if it is setup, or justify with \
                             `// qmclint: allow(hot-path) — <why>`"
                                .to_string(),
                        )
                    };
                    push(diags, Rule::HotPath, t.line, msg, help);
                }
            }
        }
    }

    // Rule 3: unsafe audit.
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || !t.is_ident("unsafe") {
            continue;
        }
        let lo = t.line.saturating_sub(4);
        let hi = t.line + 2;
        if !lexed.comment_in_range_contains(lo, hi, "SAFETY:") {
            push(
                diags,
                Rule::UnsafeComment,
                t.line,
                "`unsafe` without an adjacent `// SAFETY:` comment".into(),
                "document the invariant that makes this sound in a `// SAFETY:` comment \
                 directly above (or just inside) the unsafe block"
                    .into(),
            );
        }
    }

    // Rule 4 (per-file half): every `mw_*` entry point is timed or
    // visibly delegates to another `mw_*` kernel.
    if class.kernel || class.physics {
        for span in &spans {
            if !span.name.starts_with("mw_") {
                continue;
            }
            let Some((b0, b1)) = span.body else { continue };
            if mask[b0] {
                continue;
            }
            let covered = tokens[b0..=b1].iter().any(|t| {
                t.is_ident("time_kernel") || (t.kind == TokKind::Ident && t.text.starts_with("mw_"))
            });
            if !covered {
                push(
                    diags,
                    Rule::TimerCoverage,
                    span.line,
                    format!(
                        "batched kernel entry `{}` is neither wrapped in a `Kernel::*` timer \
                         nor delegating to a timed `mw_*` kernel",
                        span.name
                    ),
                    "wrap the body in `time_kernel(Kernel::<variant>, || ...)` (profiles in \
                     the run report rely on it) or justify with \
                     `// qmclint: allow(timer-coverage) — <why>`"
                        .into(),
                );
            }
        }
    }

    // Rule 5: determinism (physics crates).
    if class.physics {
        for (i, t) in tokens.iter().enumerate() {
            if mask[i] || t.kind != TokKind::Ident {
                continue;
            }
            let bad = matches!(
                t.text.as_str(),
                "SystemTime" | "thread_rng" | "HashMap" | "HashSet"
            );
            if bad {
                let hint = match t.text.as_str() {
                    "SystemTime" => "wall-clock time must not enter physics results",
                    "thread_rng" => "RNG must flow through the seeded per-walker streams",
                    _ => "hash-map iteration order is nondeterministic across runs",
                };
                push(
                    diags,
                    Rule::Determinism,
                    t.line,
                    format!("nondeterministic `{}` in a physics crate — {hint}", t.text),
                    "use seeded `StdRng` streams, `BTreeMap`, or index-keyed `Vec`s; \
                     or justify with `// qmclint: allow(determinism) — <why>`"
                        .into(),
                );
            }
        }
    }
}

/// Rule 4 (workspace half): parses the `Kernel` enum out of
/// `crates/instrument/src/timer.rs` and reports variants that no
/// instrumentation site outside `crates/instrument` ever references —
/// a dead profile category silently renders the Fig. 2 tables incomplete.
pub fn check_kernel_coverage(
    timer_path: &str,
    timer_src: &str,
    usage: &KernelUsage,
    diags: &mut Vec<Diagnostic>,
) {
    let lexed = lex(timer_src);
    let tokens = &lexed.tokens;
    // Find `enum Kernel {`.
    let mut start = None;
    for i in 0..tokens.len() {
        if tokens[i].is_ident("enum")
            && tokens.get(i + 1).is_some_and(|t| t.is_ident("Kernel"))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('{'))
        {
            start = Some(i + 2);
            break;
        }
    }
    let Some(open) = start else {
        diags.push(Diagnostic {
            file: timer_path.to_string(),
            line: 1,
            rule: Rule::TimerCoverage,
            message: "could not locate `enum Kernel` for the coverage cross-check".into(),
            suggestion: "keep the kernel taxonomy in crates/instrument/src/timer.rs".into(),
            chain: Vec::new(),
        });
        return;
    };
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokKind::Ident if depth == 1 => {
                let next_closes = tokens
                    .get(i + 1)
                    .is_some_and(|t| t.is_punct(',') || t.is_punct('}'));
                let name = tokens[i].text.as_str();
                if next_closes && name != "Other" && !usage.referenced.iter().any(|r| r == name) {
                    diags.push(Diagnostic {
                        file: timer_path.to_string(),
                        line: tokens[i].line,
                        rule: Rule::TimerCoverage,
                        message: format!(
                            "`Kernel::{name}` is declared in ALL_KERNELS but never referenced \
                             by any instrumentation site outside crates/instrument"
                        ),
                        suggestion: "time the kernel somewhere (`time_kernel(Kernel::...)`) \
                                     or remove the dead profile category"
                            .into(),
                        chain: Vec::new(),
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FileClass;

    fn run(src: &str, class: FileClass) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let mut usage = KernelUsage::default();
        lint_source("test.rs", src, class, &mut diags, &mut usage);
        diags
    }

    const KERNEL: FileClass = FileClass {
        exempt: false,
        mixed_precision: false,
        kernel: true,
        physics: true,
    };
    const PLAIN: FileClass = FileClass {
        exempt: false,
        mixed_precision: false,
        kernel: false,
        physics: false,
    };
    const PHYS: FileClass = FileClass {
        exempt: false,
        mixed_precision: false,
        kernel: false,
        physics: true,
    };

    #[test]
    fn precision_cast_flagged_and_allowed() {
        let d = run("fn f(x: f64) -> f32 { x as f32 }", PHYS);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::PrecisionCast);

        let d = run(
            "fn f(x: f64) -> f32 {\n    // qmclint: allow(precision-cast) — test fixture\n    x as f32\n}",
            PHYS,
        );
        assert!(d.is_empty(), "{d:?}");

        // Observability code (non-physics) converts freely.
        assert!(run("fn f(x: f64) -> f32 { x as f32 }", PLAIN).is_empty());
    }

    #[test]
    fn test_mod_is_masked() {
        let d = run(
            "#[cfg(test)]\nmod tests {\n    fn f(x: f64) -> f32 { x as f32 }\n}\n",
            PHYS,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn marker_reaches_past_comment_continuation_lines() {
        let src = "// qmclint: allow(precision-cast) — the justification\n// wraps over a second comment line.\nfn f(x: f64) -> f32 { x as f32 }";
        assert!(run(src, PHYS).is_empty());
    }

    #[test]
    fn hot_path_alloc_and_cold_marker() {
        let src = "fn evaluate(n: usize) -> Vec<f64> { (0..n).map(|i| i as f64).collect() }";
        let d = run(src, KERNEL);
        assert!(d.iter().any(|d| d.rule == Rule::HotPath));

        let cold = "// qmclint: cold — table construction, not a kernel\nfn evaluate(n: usize) -> Vec<u8> { (0..n).map(|i| i as u8).collect() }";
        let d = run(cold, KERNEL);
        assert!(d.iter().all(|d| d.rule != Rule::HotPath), "{d:?}");
    }

    #[test]
    fn constructors_are_cold_by_name() {
        let d = run("fn new(n: usize) -> Vec<u8> { vec![0; n] }", KERNEL);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let d = run("fn f(p: *const u8) -> u8 { unsafe { *p } }", PLAIN);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::UnsafeComment);

        let ok = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}";
        assert!(run(ok, PLAIN).is_empty());
    }

    #[test]
    fn mw_requires_timer_or_delegation() {
        let bare = "pub fn mw_eval(&mut self, n: usize) { for _ in 0..n {} }";
        let d = run(bare, KERNEL);
        assert!(d.iter().any(|d| d.rule == Rule::TimerCoverage));

        let timed = "pub fn mw_eval(&mut self, n: usize) { time_kernel(Kernel::J2, || n); }";
        assert!(run(timed, KERNEL).is_empty());

        let delegating = "pub fn mw_eval(&mut self, n: usize) { self.inner.mw_eval_impl(n); }";
        assert!(run(delegating, KERNEL).is_empty());
    }

    #[test]
    fn determinism_flags_hash_and_clock() {
        let d = run(
            "use std::collections::HashMap;\nfn f() { let t = SystemTime::now(); }",
            KERNEL,
        );
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|d| d.rule == Rule::Determinism));
        // Not a physics crate: silent.
        assert!(run("use std::collections::HashMap;", PLAIN).is_empty());
    }

    #[test]
    fn marker_without_reason_is_flagged() {
        let d = run("// qmclint: allow(precision-cast)\nfn f() {}", PLAIN);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::BadMarker);

        let d = run("// qmclint: allow(not-a-rule) — because\nfn f() {}", PLAIN);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::BadMarker);
    }

    #[test]
    fn kernel_coverage_cross_check() {
        let timer = "pub enum Kernel { A, B, Other }";
        let mut usage = KernelUsage::default();
        usage.referenced.push("A".into());
        let mut diags = Vec::new();
        check_kernel_coverage("timer.rs", timer, &usage, &mut diags);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("Kernel::B"));
    }
}
