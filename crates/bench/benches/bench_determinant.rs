//! Criterion bench: determinant-inverse updates — Sherman–Morrison rank-1
//! (the baseline `DetUpdate` of §8.4) versus the delayed Woodbury engine
//! at several delay depths, measured over full N-move sweeps so the
//! delayed engine's blocked flush cost is amortized realistically.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qmc_containers::Matrix;
use qmc_linalg::{
    det_ratio_row, sherman_morrison_update, transposed_inverse_log_det, DelayedInverse,
};
use std::hint::black_box;

fn well_conditioned(n: usize, seed: u64) -> Matrix<f64> {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    Matrix::from_fn(n, n, |i, j| next() + if i == j { 4.0 } else { 0.0 })
}

fn new_row(n: usize, k: usize) -> Vec<f64> {
    (0..n)
        .map(|j| 0.05 * (j as f64 - k as f64) + if j == k { 3.5 } else { 0.2 })
        .collect()
}

fn bench_determinant(c: &mut Criterion) {
    for &n in &[48usize, 192] {
        let a = well_conditioned(n, 9);
        let (minv_t, _, _) = transposed_inverse_log_det(&a).unwrap();
        let rows: Vec<Vec<f64>> = (0..n).map(|k| new_row(n, k)).collect();

        let mut group = c.benchmark_group(format!("det_update_N{n}"));
        group.bench_function(BenchmarkId::new("sweep", "sherman_morrison"), |b| {
            b.iter(|| {
                let mut m = minv_t.clone();
                for (k, v) in rows.iter().enumerate() {
                    let r = det_ratio_row(&m, k, v);
                    sherman_morrison_update(&mut m, k, v, r);
                }
                black_box(&m);
            });
        });
        for &delay in &[4usize, 16, 32] {
            group.bench_function(BenchmarkId::new("sweep", format!("delayed{delay}")), |b| {
                b.iter(|| {
                    let mut d = DelayedInverse::new(minv_t.clone(), delay);
                    let mut inv_row = vec![0.0f64; n];
                    for (k, v) in rows.iter().enumerate() {
                        black_box(d.ratio_with_inv_row(k, v, &mut inv_row));
                        d.accept(k, v);
                    }
                    d.flush();
                    black_box(d.minv_t());
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_determinant);
criterion_main!(benches);
