//! Simulated multi-rank (MPI-like) DMC execution for the strong-scaling
//! study of Fig. 1.
//!
//! Each "rank" is a thread with its own engine and walker sub-population.
//! Per generation, ranks synchronize at a barrier, allreduce the weighted
//! energy and population (mirroring the paper's `allreduce` for `E_L`),
//! and rebalance walkers through a shared exchange pool (the `send/recv of
//! serialized Walker objects` in §8). The allreduce gathers rank-indexed
//! partials and reduces them with [`crate::reduce::det_sum_by`], so rank
//! arrival order cannot perturb the trial-energy bits. The paper's observation — that the
//! optimizations leave communication untouched and near-ideal scaling
//! intact — is what this module lets the harness demonstrate.

// qmclint: allow-file(precision-cast) — rank-aggregation statistics (means, weights,
// counts) are f64 by definition of the run report.
use crate::branch::BranchController;
use crate::engine::QmcEngine;
use crate::serialize::{deserialize_walker, reseed_for_migration, serialize_walker};
use parking_lot::Mutex;
use qmc_containers::Real;
use std::sync::Barrier;

/// Parameters for a simulated multi-rank DMC run.
#[derive(Clone, Copy, Debug)]
pub struct MultiRankParams {
    /// Number of simulated ranks (threads).
    pub ranks: usize,
    /// Total target population across ranks.
    pub total_population: usize,
    /// Generations to run.
    pub steps: usize,
    /// Generations discarded from statistics.
    pub warmup: usize,
    /// Imaginary time step.
    pub tau: f64,
    /// Master seed.
    pub seed: u64,
}

/// Outcome of a multi-rank run.
#[derive(Clone, Debug)]
pub struct MultiRankResult {
    /// Wall-clock seconds of the generation loop.
    pub seconds: f64,
    /// Monte Carlo samples generated after warmup (sum of populations).
    pub samples: u64,
    /// Mean energy over measured generations.
    pub energy: f64,
    /// Walkers exchanged between ranks (load-balance traffic).
    pub exchanged: u64,
    /// Bytes of serialized walker messages moved between ranks — the
    /// quantity the paper's Jastrow memory reduction shrinks by 22.5 MB
    /// per walker on NiO-64.
    pub bytes_exchanged: u64,
}

impl MultiRankResult {
    /// Throughput `P = samples / seconds`, the paper's figure of merit.
    pub fn throughput(&self) -> f64 {
        self.samples as f64 / self.seconds
    }
}

struct SharedGen {
    pops: usize,
    e_trial: f64,
    pool_moved: u64,
    bytes_moved: u64,
}

/// Runs DMC over `params.ranks` simulated ranks. `build_engine(rank)`
/// constructs each rank's engine; `initial_positions` seeds the walkers.
pub fn run_multi_rank<T, F>(
    build_engine: F,
    initial_positions: &[qmc_containers::Pos<f64>],
    params: &MultiRankParams,
) -> MultiRankResult
where
    T: Real,
    F: Fn(usize) -> QmcEngine<T> + Sync,
{
    let ranks = params.ranks.max(1);
    let per_rank = (params.total_population / ranks).max(1);
    let barrier = Barrier::new(ranks);
    let shared = Mutex::new(SharedGen {
        pops: 0,
        e_trial: 0.0,
        pool_moved: 0,
        bytes_moved: 0,
    });
    // Rank-indexed `(sum w*E, sum w)` partials for the allreduce: each
    // rank writes its own slot, so barrier arrival order cannot perturb
    // the deterministic rank-order reduction rank 0 performs.
    let slots: Mutex<Vec<(f64, f64)>> = Mutex::new(vec![(0.0, 0.0); ranks]);
    // The exchange pool holds *serialized* walker messages, exactly what
    // an MPI implementation would send/recv (§8).
    let pool: Mutex<Vec<Vec<u8>>> = Mutex::new(Vec::new());
    let energies = Mutex::new(Vec::<(f64, f64)>::new());
    let samples = Mutex::new(0u64);

    let t0 = std::time::Instant::now();
    std::thread::scope(|scope| {
        for rank in 0..ranks {
            let build_engine = &build_engine;
            let barrier = &barrier;
            let shared = &shared;
            let slots = &slots;
            let pool = &pool;
            let energies = &energies;
            let samples = &samples;
            scope.spawn(move || {
                qmc_instrument::enable_ftz();
                let mut engine = build_engine(rank);
                let mut walkers = crate::walker::initial_population::<T>(
                    initial_positions,
                    per_rank,
                    params.seed ^ (rank as u64).wrapping_mul(0x9E3779B97F4A7C15),
                );
                for w in &mut walkers {
                    engine.init_walker(w);
                }
                let e0 = walkers.iter().map(|w| w.e_local).sum::<f64>() / walkers.len() as f64;
                let mut branch = BranchController::new(
                    per_rank,
                    e0,
                    params.tau,
                    params.seed ^ 0xABCD ^ rank as u64,
                );

                for step in 0..params.steps {
                    // Drift-diffusion + measurement for the local block,
                    // then the deterministic walker-order partial for this
                    // rank's contribution to the allreduce.
                    for w in &mut walkers {
                        engine.load_walker(w);
                        engine.sweep(params.tau, &mut w.rng);
                        let el = engine.measure(&mut w.rng).total();
                        w.weight *= branch.weight_factor(w.e_local, el);
                        w.e_local = el;
                        engine.store_walker(w);
                    }
                    let esum = crate::reduce::det_sum_by(walkers.len(), |i| {
                        walkers[i].weight * walkers[i].e_local
                    });
                    let wsum = crate::reduce::det_sum_by(walkers.len(), |i| walkers[i].weight);
                    branch.branch(&mut walkers);

                    // --- allreduce of E_L and population ---
                    slots.lock()[rank] = (esum, wsum);
                    {
                        let mut s = shared.lock();
                        s.pops += walkers.len();
                    }
                    barrier.wait();
                    // Rank 0 reduces the rank-indexed partials in rank
                    // order (fixed tree shape — arrival order cannot
                    // change the bits) and computes the trial energy.
                    if rank == 0 {
                        let (g_esum, g_wsum) = {
                            let sl = slots.lock();
                            (
                                crate::reduce::det_sum_by(sl.len(), |r| sl[r].0),
                                crate::reduce::det_sum_by(sl.len(), |r| sl[r].1),
                            )
                        };
                        let mut s = shared.lock();
                        let e_avg = if g_wsum > 0.0 { g_esum / g_wsum } else { e0 };
                        let ratio = s.pops as f64 / params.total_population as f64;
                        s.e_trial = e_avg - (1.0 / params.tau) * ratio.ln().clamp(-1.0, 1.0);
                        if step >= params.warmup {
                            energies.lock().push((e_avg, g_wsum));
                            *samples.lock() += s.pops as u64;
                        }
                    }
                    barrier.wait();
                    branch.e_trial = shared.lock().e_trial;

                    // --- load balance: surplus ranks push, deficit pull ---
                    let avg = {
                        let mut s = shared.lock();
                        let avg = (s.pops / ranks).max(1);
                        let _ = &mut s;
                        avg
                    };
                    if walkers.len() > avg {
                        let surplus = walkers.len() - avg;
                        let mut msgs = Vec::with_capacity(surplus);
                        let mut bytes = 0u64;
                        for mut w in walkers.drain(walkers.len() - surplus..) {
                            // Migration policy: decorrelate the stream
                            // before the walker leaves this rank.
                            reseed_for_migration(&mut w);
                            let msg = serialize_walker(&w);
                            bytes += msg.len() as u64;
                            msgs.push(msg);
                        }
                        pool.lock().extend(msgs);
                        let mut s = shared.lock();
                        s.pool_moved += surplus as u64;
                        s.bytes_moved += bytes;
                    }
                    barrier.wait();
                    if walkers.len() < avg {
                        let mut p = pool.lock();
                        while walkers.len() < avg {
                            match p.pop() {
                                Some(msg) => walkers.push(deserialize_walker(&msg)),
                                None => break,
                            }
                        }
                    }
                    barrier.wait();
                    if rank == 0 {
                        shared.lock().pops = 0;
                    }
                    barrier.wait();
                }
            });
        }
    });
    let seconds = t0.elapsed().as_secs_f64();

    let energies = energies.into_inner();
    let shared = shared.into_inner();
    MultiRankResult {
        seconds,
        samples: samples.into_inner(),
        energy: crate::reduce::det_weighted_mean(&energies, 0.0),
        exchanged: shared.pool_moved,
        bytes_exchanged: shared.bytes_moved,
    }
}
