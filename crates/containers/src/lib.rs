//! # qmc-containers
//!
//! Data-layout foundation for the QMC workspace: the precision abstraction
//! ([`Real`]), SIMD-aligned storage ([`AlignedVec`]), the AoS physics vector
//! ([`TinyVector`]), the paper's structure-of-arrays container
//! ([`VectorSoaContainer`], Fig. 5) and a row-padded dense [`Matrix`].
//!
//! These reproduce the containers introduced in §7.3 of *Mathuriya et al.,
//! SC'17*: AoS objects (`Vector<TinyVector<T,D>>`) remain the high-level
//! physics abstraction, while SoA mirrors expose contiguous per-dimension
//! slabs that compilers auto-vectorize.

// Indexed loops over multiple parallel slices are the deliberate idiom in
// the SIMD kernels (mirrors the paper's C++ and keeps the auto-vectorizer's
// job obvious); iterator zips would obscure them.
#![allow(clippy::needless_range_loop)]

pub mod aligned;
pub mod matrix;
pub mod real;
pub mod soa;
pub mod tiny;

pub use aligned::{lanes_per_align, padded_len, AlignedVec, QMC_SIMD_ALIGN};
pub use matrix::Matrix;
pub use real::Real;
pub use soa::VectorSoaContainer;
pub use tiny::{Pos, TinyVector};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// AoS -> SoA -> AoS is the identity at matching precision.
        #[test]
        fn soa_roundtrip(v in prop::collection::vec((-1e6f64..1e6, -1e6f64..1e6, -1e6f64..1e6), 1..200)) {
            let aos: Vec<TinyVector<f64, 3>> = v.iter().map(|&(x, y, z)| TinyVector([x, y, z])).collect();
            let mut soa = VectorSoaContainer::<f64, 3>::new(aos.len());
            soa.copy_from_aos(&aos);
            let mut back = vec![TinyVector::<f64, 3>::zero(); aos.len()];
            soa.copy_to_aos(&mut back);
            prop_assert_eq!(back, aos);
        }

        /// The padded length is always >= n, a multiple of the lane count,
        /// and minimal.
        #[test]
        fn padding_minimal(n in 0usize..10_000) {
            let p32 = padded_len::<f32>(n);
            let p64 = padded_len::<f64>(n);
            prop_assert!(p32 >= n && p64 >= n);
            prop_assert_eq!(p32 % lanes_per_align::<f32>(), 0);
            prop_assert_eq!(p64 % lanes_per_align::<f64>(), 0);
            prop_assert!(p32 < n + lanes_per_align::<f32>());
            prop_assert!(p64 < n + lanes_per_align::<f64>());
        }

        /// Matrix indexing is consistent with row views for any shape.
        #[test]
        fn matrix_rows_consistent(rows in 1usize..20, cols in 1usize..40) {
            let m = Matrix::<f32>::from_fn(rows, cols, |i, j| (i * 1000 + j) as f32);
            for i in 0..rows {
                let r = m.row(i);
                prop_assert_eq!(r.len(), cols);
                for j in 0..cols {
                    prop_assert_eq!(r[j], m[(i, j)]);
                }
            }
        }

        /// TinyVector dot/norm identities.
        #[test]
        fn tiny_vector_identities(x in -1e3f64..1e3, y in -1e3f64..1e3, z in -1e3f64..1e3) {
            let a = TinyVector([x, y, z]);
            prop_assert!((a.norm2() - a.dot(&a)).abs() < 1e-9);
            let s = a * 2.0;
            prop_assert!((s.norm2() - 4.0 * a.norm2()).abs() < 1e-6 * (1.0 + a.norm2()));
        }
    }
}
