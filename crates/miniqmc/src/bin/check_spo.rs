//! SPO evaluator correctness checker (miniQMC's `check_spo` analogue):
//! verifies that the optimized (spline-innermost) evaluators agree with
//! the reference loop order and that single precision tracks double to
//! the expected accuracy, at random positions.

use miniqmc::Options;
use qmc_bspline::MultiBspline3D;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let opts = Options::from_env();
    let g = opts.get("grid", 24usize);
    let ns = opts.get("splines", 64usize);
    let evals = opts.get("evals", 200usize);
    let seed = opts.get("seed", 5u64);
    let grid = [g, g, g];

    println!("check_spo: grid {g}^3, {ns} splines, {evals} random points");
    let t64 = MultiBspline3D::<f64>::random(grid, ns, seed);
    let t32 = MultiBspline3D::<f32>::random(grid, ns, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABC);

    let (mut p_soa, mut p_ref) = (vec![0.0f64; ns], vec![0.0f64; ns]);
    let (mut g_soa, mut g_ref) = (vec![0.0f64; 3 * ns], vec![0.0f64; 3 * ns]);
    let (mut h_soa, mut h_ref) = (vec![0.0f64; 6 * ns], vec![0.0f64; 6 * ns]);
    let mut p32 = vec![0.0f32; ns];

    let (mut layout_v, mut layout_g, mut layout_h, mut prec_v) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for _ in 0..evals {
        let u = [
            rng.random::<f64>(),
            rng.random::<f64>(),
            rng.random::<f64>(),
        ];
        t64.evaluate_vgh(u, &mut p_soa, &mut g_soa, &mut h_soa);
        t64.evaluate_vgh_ref(u, &mut p_ref, &mut g_ref, &mut h_ref);
        for s in 0..ns {
            layout_v = layout_v.max((p_soa[s] - p_ref[s]).abs());
        }
        for i in 0..3 * ns {
            layout_g = layout_g.max((g_soa[i] - g_ref[i]).abs());
        }
        for i in 0..6 * ns {
            layout_h = layout_h.max((h_soa[i] - h_ref[i]).abs());
        }
        t32.evaluate_v([u[0] as f32, u[1] as f32, u[2] as f32], &mut p32);
        for s in 0..ns {
            prec_v = prec_v.max((p_soa[s] - p32[s] as f64).abs());
        }
    }

    println!("layout max |soa - ref|:  v {layout_v:.2e}  grad {layout_g:.2e}  hess {layout_h:.2e}");
    println!("precision max |f64 - f32| (values): {prec_v:.2e}");

    let ok = layout_v < 1e-12 && layout_g < 1e-10 && layout_h < 1e-9 && prec_v < 1e-4;
    if ok {
        println!("check_spo PASSED");
    } else {
        eprintln!("check_spo FAILED");
        std::process::exit(1);
    }
}
