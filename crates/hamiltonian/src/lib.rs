//! # qmc-hamiltonian
//!
//! Local-energy evaluation (Eq. 7 of the paper):
//!
//! `E_L = -(grad^2 Psi)/(2 Psi) + sum_{i<j} 1/r_ij + V_ei + V_II + V_NL`
//!
//! * [`kinetic_energy`] — bare kinetic term from the wavefunction's
//!   accumulated gradient/Laplacian of `log Psi`.
//! * [`CoulombEE`] / [`CoulombEI`] / [`ion_ion_energy`] — minimum-image
//!   Coulomb interactions over the distance tables (substitute for Ewald;
//!   see DESIGN.md).
//! * [`NonLocalPP`] — the non-local pseudopotential operator, approximated
//!   by a spherical quadrature of wavefunction *ratios* around each ion
//!   (Fahy et al., the paper's ref. 19) — the code path that makes the
//!   `Bspline-v` kernel hot.

#![forbid(unsafe_code)]
// Indexed loops over multiple parallel slices are the deliberate idiom in
// the SIMD kernels (mirrors the paper's C++ and keeps the auto-vectorizer's
// job obvious); iterator zips would obscure them.
#![allow(clippy::needless_range_loop)]

pub mod ewald;
pub mod nlpp;

pub use ewald::{erfc, Ewald};
pub use nlpp::{NonLocalPP, PpChannel, PseudoSpecies};

use qmc_containers::Real;
use qmc_instrument::{time_kernel, Kernel};
use qmc_particles::{DistTable, ParticleSet};

/// Local-energy breakdown for one configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct LocalEnergy {
    /// Kinetic term `-1/2 sum_i (lap_i + |grad_i|^2)`.
    pub kinetic: f64,
    /// Electron-electron Coulomb.
    pub ee: f64,
    /// Electron-ion Coulomb.
    pub ei: f64,
    /// Ion-ion Coulomb (constant per run).
    pub ii: f64,
    /// Non-local pseudopotential.
    pub nlpp: f64,
}

impl LocalEnergy {
    /// Total local energy.
    pub fn total(&self) -> f64 {
        self.kinetic + self.ee + self.ei + self.ii + self.nlpp
    }
}

/// Kinetic local energy from the accumulated `G = grad log Psi` and
/// `L = lap log Psi`: `-1/2 sum_i (L_i + |G_i|^2)`.
///
/// Requires `TrialWaveFunction::evaluate_log` to have filled `p.g`/`p.l`.
pub fn kinetic_energy<T: Real>(p: &ParticleSet<T>) -> f64 {
    let mut acc: f64 = 0.0;
    for i in 0..p.len() {
        acc += p.l[i] + p.g[i].norm2();
    }
    -0.5 * acc
}

/// Electron-electron Coulomb interaction over an AA distance table.
pub struct CoulombEE {
    table: usize,
}

impl CoulombEE {
    /// Uses the AA distance table `table` of the electron set.
    pub fn new(table: usize) -> Self {
        Self { table }
    }

    /// `sum_{i<j} 1/r_ij` under minimum image.
    pub fn evaluate<T: Real>(&self, p: &ParticleSet<T>) -> f64 {
        time_kernel(Kernel::Coulomb, || {
            let n = p.len();
            let mut acc: f64 = 0.0;
            match p.table(self.table) {
                DistTable::AaRef(t) => {
                    for i in 0..n {
                        for j in i + 1..n {
                            acc += 1.0 / t.dist(i, j).to_f64();
                        }
                    }
                }
                DistTable::AaSoa(t) => {
                    // Row sums double-count; halve at the end. The self
                    // entry holds a huge sentinel, contributing ~0, but we
                    // skip it explicitly for exactness.
                    for i in 0..n {
                        let row = t.dist_row(i);
                        let mut s = T::ZERO;
                        for (j, &d) in row.iter().enumerate() {
                            if j != i {
                                s += T::ONE / d;
                            }
                        }
                        acc += s.to_f64();
                    }
                    acc *= 0.5;
                }
                _ => panic!("CoulombEE needs an AA table"),
            }
            acc
        })
    }
}

/// Electron-ion Coulomb interaction over an AB distance table; ion charges
/// are captured at construction (electrons carry charge -1).
pub struct CoulombEI {
    table: usize,
    ion_charges: Vec<f64>,
}

impl CoulombEI {
    /// Uses AB table `table`; `ions` provides the per-ion charges.
    pub fn new<T: Real>(table: usize, ions: &ParticleSet<T>) -> Self {
        Self {
            table,
            ion_charges: (0..ions.len()).map(|a| ions.charge_of(a)).collect(),
        }
    }

    /// `sum_{i,I} (-Z_I) / r_iI` under minimum image.
    pub fn evaluate<T: Real>(&self, p: &ParticleSet<T>) -> f64 {
        time_kernel(Kernel::Coulomb, || {
            let n = p.len();
            let nion = self.ion_charges.len();
            let mut acc: f64 = 0.0;
            match p.table(self.table) {
                DistTable::AbRef(t) => {
                    for i in 0..n {
                        for a in 0..nion {
                            acc -= self.ion_charges[a] / t.dist(i, a).to_f64();
                        }
                    }
                }
                DistTable::AbSoa(t) => {
                    for i in 0..n {
                        let row = t.dist_row(i);
                        for a in 0..nion {
                            acc -= self.ion_charges[a] / row[a].to_f64();
                        }
                    }
                }
                _ => panic!("CoulombEI needs an AB table"),
            }
            acc
        })
    }
}

/// Constant ion-ion Coulomb energy under minimum image.
pub fn ion_ion_energy<T: Real>(ions: &ParticleSet<T>) -> f64 {
    let n = ions.len();
    let mut acc: f64 = 0.0;
    for i in 0..n {
        for j in i + 1..n {
            let dr = ions.lattice.min_image(ions.pos(j) - ions.pos(i));
            acc += ions.charge_of(i) * ions.charge_of(j) / dr.norm().to_f64();
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmc_containers::TinyVector;
    use qmc_particles::{CrystalLattice, Layout, Species};

    fn electrons(n: usize, l: f64, seed: u64) -> ParticleSet<f64> {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let lat = CrystalLattice::cubic(l);
        let pos: Vec<_> = (0..n)
            .map(|_| {
                TinyVector([
                    rng.random::<f64>() * l,
                    rng.random::<f64>() * l,
                    rng.random::<f64>() * l,
                ])
            })
            .collect();
        ParticleSet::new(
            "e",
            lat,
            vec![(
                Species {
                    name: "u".into(),
                    charge: -1.0,
                },
                pos,
            )],
        )
    }

    #[test]
    fn coulomb_ee_layouts_match_brute_force() {
        let l = 7.0;
        let mut p = electrons(9, l, 3);
        let h_aos = p.add_table_aa(Layout::Aos);
        let h_soa = p.add_table_aa(Layout::Soa);
        let lat = CrystalLattice::<f64>::cubic(l);
        let mut brute = 0.0;
        for i in 0..9 {
            for j in i + 1..9 {
                brute += 1.0 / lat.min_image(p.pos(j) - p.pos(i)).norm();
            }
        }
        let e_aos = CoulombEE::new(h_aos).evaluate(&p);
        let e_soa = CoulombEE::new(h_soa).evaluate(&p);
        assert!((e_aos - brute).abs() < 1e-12);
        assert!((e_soa - brute).abs() < 1e-10);
    }

    #[test]
    fn coulomb_ei_matches_brute_force() {
        let l = 7.0;
        let ions = ParticleSet::<f64>::new(
            "ion0",
            CrystalLattice::cubic(l),
            vec![(
                Species {
                    name: "C".into(),
                    charge: 4.0,
                },
                vec![TinyVector([1.0, 1.0, 1.0]), TinyVector([5.0, 4.0, 2.0])],
            )],
        );
        let mut p = electrons(6, l, 7);
        let h = p.add_table_ab(&ions, Layout::Soa);
        let lat = CrystalLattice::<f64>::cubic(l);
        let mut brute = 0.0;
        for i in 0..6 {
            for a in 0..2 {
                brute -= 4.0 / lat.min_image(ions.pos(a) - p.pos(i)).norm();
            }
        }
        let e = CoulombEI::new(h, &ions).evaluate(&p);
        assert!((e - brute).abs() < 1e-12);
    }

    #[test]
    fn ion_ion_is_symmetric_constant() {
        let l = 6.0;
        let ions = ParticleSet::<f64>::new(
            "ion0",
            CrystalLattice::cubic(l),
            vec![(
                Species {
                    name: "Be".into(),
                    charge: 2.0,
                },
                vec![TinyVector([0.0, 0.0, 0.0]), TinyVector([3.0, 0.0, 0.0])],
            )],
        );
        let e = ion_ion_energy(&ions);
        assert!((e - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kinetic_zero_for_flat_wavefunction() {
        let p = electrons(4, 5.0, 1);
        // G and L are zero-initialized: flat log psi.
        assert_eq!(kinetic_energy(&p), 0.0);
    }

    #[test]
    fn local_energy_totals() {
        let e = LocalEnergy {
            kinetic: 1.0,
            ee: 2.0,
            ei: -3.0,
            ii: 0.5,
            nlpp: 0.25,
        };
        assert!((e.total() - 0.75).abs() < 1e-15);
    }
}
