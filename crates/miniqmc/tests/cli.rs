//! End-to-end CLI tests for the `miniqmc` binary: bad-argument handling
//! (usage + nonzero exit instead of a panic backtrace) and the golden
//! `--profile json` / `--profile trace:PATH` report paths.

use qmc_instrument::{json, ALL_KERNELS};
use std::process::Command;

fn miniqmc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_miniqmc"))
}

/// Tiny graphite run on one thread: per-kernel scopes are non-nested leaf
/// timers, so with a single worker their times must sum to <= wall time.
fn tiny_args() -> [&'static str; 10] {
    [
        "--benchmark",
        "graphite",
        "--threads",
        "1",
        "--walkers",
        "2",
        "--steps",
        "4",
        "--warmup",
        "1",
    ]
}

#[test]
fn bad_benchmark_prints_usage_and_exits_nonzero() {
    let out = miniqmc()
        .args(["--benchmark", "no-such-material"])
        .output()
        .expect("spawn miniqmc");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown benchmark"), "{stderr}");
    // Usage must list the valid values.
    for valid in ["graphite", "be64", "nio32", "nio64"] {
        assert!(stderr.contains(valid), "usage missing '{valid}': {stderr}");
    }
    assert!(
        !stderr.contains("panicked"),
        "must not panic with a backtrace: {stderr}"
    );
}

#[test]
fn bad_code_version_prints_usage_and_exits_nonzero() {
    let out = miniqmc()
        .args(["--code", "turbo"])
        .output()
        .expect("spawn miniqmc");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown code version"), "{stderr}");
    for valid in ["ref", "refmp", "soa", "current"] {
        assert!(stderr.contains(valid), "usage missing '{valid}': {stderr}");
    }
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn bad_profile_mode_prints_usage_and_exits_nonzero() {
    let out = miniqmc()
        .args(["--profile", "xml"])
        .output()
        .expect("spawn miniqmc");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown profile mode"), "{stderr}");
}

#[test]
fn golden_json_report_covers_all_kernels_within_wall_time() {
    let out = miniqmc()
        .args(tiny_args())
        .args(["--profile", "json"])
        .output()
        .expect("spawn miniqmc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let v = json::parse(&stdout).expect("stdout is one valid JSON document");

    assert_eq!(
        v.get("schema").and_then(|s| s.as_str()),
        Some(qmc_instrument::RUN_REPORT_SCHEMA)
    );
    assert_eq!(
        v.get("benchmark").and_then(|s| s.as_str()),
        Some("Graphite")
    );

    // Every kernel category is present, and per-kernel times sum to no
    // more than the total wall time (single-threaded leaf timers).
    let kernels = v.get("kernels").expect("kernels object");
    let mut kernel_sum = 0.0;
    for &k in &ALL_KERNELS {
        let s = kernels
            .get(k.label())
            .unwrap_or_else(|| panic!("kernel '{}' missing from report", k.label()));
        kernel_sum += s.get("seconds").unwrap().as_f64().expect("seconds");
    }
    let wall = v.get("seconds").unwrap().as_f64().expect("wall seconds");
    assert!(wall > 0.0);
    assert!(
        kernel_sum <= wall,
        "kernel sum {kernel_sum} exceeds wall {wall}"
    );
    assert!(kernel_sum > 0.0, "profile must not be empty");

    // Accept ratio and population trajectory round out the report.
    let acc = v.get("acceptance").unwrap().as_f64().unwrap();
    assert!(acc > 0.0 && acc <= 1.0);
    let pop = v.get("population").unwrap().as_arr().unwrap();
    assert_eq!(pop.len(), 4, "one population entry per step");
    assert!(v.get("e_trial_trace").unwrap().as_arr().unwrap().len() == 4);
    // Per-worker profiles: one group for the single thread.
    assert_eq!(v.get("crowd_kernels").unwrap().as_arr().unwrap().len(), 1);
}

#[test]
fn json_report_with_crowds_has_per_crowd_profiles() {
    let out = miniqmc()
        .args([
            "--benchmark",
            "graphite",
            "--threads",
            "2",
            "--walkers",
            "4",
            "--steps",
            "3",
            "--warmup",
            "1",
            "--crowd",
            "2",
            "--profile",
            "json",
        ])
        .output()
        .expect("spawn miniqmc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v = json::parse(&String::from_utf8(out.stdout).unwrap()).expect("valid JSON");
    assert_eq!(v.get("crowd_size").unwrap().as_f64(), Some(2.0));
    let groups = v.get("crowd_kernels").unwrap().as_arr().unwrap();
    assert_eq!(groups.len(), 2, "one profile per crowd");
    // Each crowd did real work (SPO evaluations landed in its group).
    for g in groups {
        let calls = g
            .get("Bspline-vgh")
            .unwrap()
            .get("calls")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(calls > 0.0, "crowd profile recorded no SPO calls");
    }
}

#[test]
fn trace_mode_writes_chrome_trace_with_spans() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("miniqmc_trace_{}.json", std::process::id()));
    let path_arg = format!("trace:{}", path.display());
    let out = miniqmc()
        .args([
            "--benchmark",
            "graphite",
            "--threads",
            "2",
            "--walkers",
            "4",
            "--steps",
            "3",
            "--warmup",
            "1",
            "--crowd",
            "2",
            "--profile",
            &path_arg,
        ])
        .output()
        .expect("spawn miniqmc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    let v = json::parse(&text).expect("trace is valid JSON");
    let events = v.get("traceEvents").unwrap().as_arr().unwrap();
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .map(|e| e.get("name").unwrap().as_str().unwrap())
        .collect();
    assert!(!names.is_empty(), "trace has no spans");
    assert!(
        names.iter().any(|n| n.starts_with("crowd generation")),
        "per-crowd spans missing: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("block ")),
        "per-block spans missing: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("step ")),
        "driver step spans missing: {names:?}"
    );
    // Spans land on distinct lanes (tid = crowd index / driver lane).
    let mut tids: Vec<u64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .map(|e| e.get("tid").unwrap().as_f64().unwrap() as u64)
        .collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(tids.len() >= 2, "expected multiple lanes, got {tids:?}");
}

fn walker_hash_line(stdout: &[u8]) -> String {
    String::from_utf8_lossy(stdout)
        .lines()
        .find(|l| l.starts_with("walker-hash"))
        .expect("walker-hash line in summary")
        .to_string()
}

/// The PR's headline property, end to end through the binary: a job
/// checkpointed at an interior generation and restarted from the file
/// finishes with the same per-walker FNV-1a population hash as the job
/// that was never killed.
#[test]
fn checkpoint_then_resume_matches_straight_run_hash() {
    let dir = std::env::temp_dir();
    let ck = dir.join(format!("miniqmc_ck_{}.qmc", std::process::id()));
    let ck_arg = format!("{}:3", ck.display());
    let common = [
        "--benchmark",
        "graphite",
        "--threads",
        "2",
        "--walkers",
        "4",
        "--warmup",
        "1",
        "--seed",
        "11",
    ];

    let straight = miniqmc()
        .args(common)
        .args(["--steps", "6"])
        .output()
        .expect("spawn miniqmc");
    assert!(straight.status.success());

    // "Killed" job: runs only to step 3, leaving its checkpoint behind.
    let killed = miniqmc()
        .args(common)
        .args(["--steps", "3", "--checkpoint", &ck_arg])
        .output()
        .expect("spawn miniqmc");
    assert!(killed.status.success());

    // Restart from the file and run to the same total step count.
    let resumed = miniqmc()
        .args(common)
        .args(["--steps", "6", "--resume", &ck.display().to_string()])
        .output()
        .expect("spawn miniqmc");
    let _ = std::fs::remove_file(&ck);
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );

    let h_straight = walker_hash_line(&straight.stdout);
    let h_killed = walker_hash_line(&killed.stdout);
    let h_resumed = walker_hash_line(&resumed.stdout);
    assert_eq!(
        h_straight, h_resumed,
        "resumed run diverged from the straight run"
    );
    assert_ne!(
        h_straight, h_killed,
        "interior checkpoint must not equal the finished population (no-op trap)"
    );
}

/// `--stream` appends one NDJSON record per event: a start record with
/// the schema tag, one block record per generation (monotone steps), a
/// checkpoint record when the cadence fires, and an end record whose
/// walker_hash matches the summary line.
#[test]
fn stream_is_valid_ndjson_with_per_block_records() {
    let dir = std::env::temp_dir();
    let ck = dir.join(format!("miniqmc_stream_ck_{}.qmc", std::process::id()));
    let nd = dir.join(format!("miniqmc_stream_{}.ndjson", std::process::id()));
    let out = miniqmc()
        .args([
            "--benchmark",
            "graphite",
            "--threads",
            "2",
            "--walkers",
            "4",
            "--steps",
            "4",
            "--warmup",
            "1",
            "--seed",
            "11",
            "--checkpoint",
            &format!("{}:2", ck.display()),
            "--stream",
            &nd.display().to_string(),
        ])
        .output()
        .expect("spawn miniqmc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&nd).expect("stream written");
    let _ = std::fs::remove_file(&nd);
    let _ = std::fs::remove_file(&ck);

    let records: Vec<_> = text
        .lines()
        .map(|l| json::parse(l).unwrap_or_else(|e| panic!("bad NDJSON line: {e}: {l}")))
        .collect();
    let kind = |r: &json::JsonValue| r.get("event").unwrap().as_str().unwrap().to_string();

    assert_eq!(kind(&records[0]), "start");
    assert_eq!(
        records[0].get("schema").and_then(|s| s.as_str()),
        Some("qmc-run-report-stream/1")
    );
    assert_eq!(kind(records.last().unwrap()), "end");

    let steps: Vec<u64> = records
        .iter()
        .filter(|r| kind(r) == "block")
        .map(|r| r.get("step").unwrap().as_f64().unwrap() as u64)
        .collect();
    assert_eq!(steps, vec![1, 2, 3, 4], "one block record per generation");

    let checkpoints: Vec<u64> = records
        .iter()
        .filter(|r| kind(r) == "checkpoint")
        .map(|r| r.get("step").unwrap().as_f64().unwrap() as u64)
        .collect();
    assert_eq!(checkpoints, vec![2, 4], "cadence :2 fires at steps 2 and 4");

    // End-record hash agrees with the summary line.
    let end_hash = records
        .last()
        .unwrap()
        .get("walker_hash")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert!(
        walker_hash_line(&out.stdout).contains(&end_hash),
        "stream end hash {end_hash} not in summary"
    );
}

/// A corrupt (or plain-text) file handed to `--resume` must produce a
/// one-line diagnostic and exit code 1 — never a panic backtrace.
#[test]
fn corrupt_resume_file_fails_cleanly() {
    let dir = std::env::temp_dir();
    let bad = dir.join(format!("miniqmc_bad_ck_{}.qmc", std::process::id()));
    std::fs::write(&bad, b"this is not a checkpoint at all").expect("write corrupt file");
    let out = miniqmc()
        .args(["--benchmark", "graphite", "--walkers", "2", "--steps", "2"])
        .args(["--resume", &bad.display().to_string()])
        .output()
        .expect("spawn miniqmc");
    let _ = std::fs::remove_file(&bad);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot resume"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn profiling_modes_do_not_change_results() {
    // Determinism guard: the same seeded run must produce bitwise
    // identical physics with profiling off (summary), json, and tracing.
    let summary = miniqmc().args(tiny_args()).output().expect("spawn miniqmc");
    let json_out = miniqmc()
        .args(tiny_args())
        .args(["--profile", "json"])
        .output()
        .expect("spawn miniqmc");
    let dir = std::env::temp_dir();
    let path = dir.join(format!("miniqmc_det_{}.json", std::process::id()));
    let trace_out = miniqmc()
        .args(tiny_args())
        .args(["--profile", &format!("trace:{}", path.display())])
        .output()
        .expect("spawn miniqmc");
    let _ = std::fs::remove_file(&path);
    assert!(summary.status.success());
    assert!(json_out.status.success());
    assert!(trace_out.status.success());

    let energy_line = |s: &str| -> String {
        s.lines()
            .find(|l| l.starts_with("energy"))
            .expect("energy line")
            .to_string()
    };
    let e_summary = energy_line(&String::from_utf8_lossy(&summary.stdout));
    let e_trace = energy_line(&String::from_utf8_lossy(&trace_out.stdout));
    assert_eq!(e_summary, e_trace, "tracing changed the physics");

    let v = json::parse(&String::from_utf8(json_out.stdout).unwrap()).unwrap();
    let mean = v
        .get("energy")
        .unwrap()
        .get("mean")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(
        e_summary.contains(&format!("{mean:.4}")),
        "json mean {mean} not consistent with summary: {e_summary}"
    );
}
