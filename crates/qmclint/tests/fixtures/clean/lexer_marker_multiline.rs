// fixture-class: kernel,physics
//! An allow marker whose justification wraps over several comment lines
//! must still attach to the next code line, even with raw-string and
//! char-literal noise between other statements.

pub fn evaluate_wrapped(x: f64, ticks: &[u64]) -> f64 {
    let plan = r#"phase one // phase two
        phase three"#;
    // qmclint: allow(precision-cast) — the SIMD gather path needs a
    // concrete narrowing at this one site; the justification wraps
    // across three comment lines before the code it covers.
    let narrowed = x as f32;
    let sep = '/';
    // qmclint: allow(hot-path) — fixture: bounded lookup, never grows
    // beyond the preallocated tick table.
    let first = ticks.first().unwrap();
    let _ = (plan, sep, first);
    f64::from(narrowed)
}
