//! Scoped spans and Chrome `trace_event` export.
//!
//! Complements the flat per-kernel timers in [`crate::timer`] with a
//! timeline view: drivers open a span per generation/step, crowds and
//! worker threads open spans per walker block, and the whole run can be
//! dumped as a Chrome `trace_event` JSON loadable in `chrome://tracing` or
//! Perfetto. Collection is off by default behind a single relaxed atomic
//! load, so the disabled path costs one branch per span site and the
//! lock-step determinism of the crowd drivers is untouched (spans never
//! consume randomness or reorder work).
//!
//! Spans are coarse (per block / per generation, not per kernel call), so
//! they push into one global mutex-protected buffer. Worker threads in the
//! drivers are scoped and die each generation, which rules out
//! thread-local buffers drained at exit; the lock is touched only a few
//! times per generation per thread.

use parking_lot::Mutex;
use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::json::JsonWriter;

/// One completed span on a lane.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span name shown in the trace viewer.
    pub name: Cow<'static, str>,
    /// Lane (exported as `tid`): worker/crowd index, or the group count
    /// for driver-level spans.
    pub lane: u64,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Turns span collection on or off. Off (the default) reduces every span
/// site to one relaxed atomic load.
pub fn enable_tracing(on: bool) {
    if on {
        epoch(); // pin the epoch before the first span
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span collection is currently on.
#[inline]
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Takes and clears all collected events.
pub fn take_trace_events() -> Vec<TraceEvent> {
    std::mem::take(&mut *EVENTS.lock())
}

/// An open span; records itself on drop. Cheap no-op when tracing is off.
pub struct Span(Option<(Cow<'static, str>, u64, Instant)>);

impl Span {
    fn open(name: Cow<'static, str>, lane: u64) -> Self {
        Span(Some((name, lane, Instant::now())))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, lane, start)) = self.0.take() {
            let dur_ns = start.elapsed().as_nanos() as u64;
            let start_ns = start.duration_since(epoch()).as_nanos() as u64;
            EVENTS.lock().push(TraceEvent {
                name,
                lane,
                start_ns,
                dur_ns,
            });
        }
    }
}

/// Opens a span with a static name on `lane`. Returns a drop guard.
#[inline]
pub fn span(name: &'static str, lane: u64) -> Span {
    if tracing_enabled() {
        Span::open(Cow::Borrowed(name), lane)
    } else {
        Span(None)
    }
}

/// Opens a span whose name is built only when tracing is on (avoids
/// `format!` allocations on the disabled path).
#[inline]
pub fn span_lazy(lane: u64, name: impl FnOnce() -> String) -> Span {
    if tracing_enabled() {
        Span::open(Cow::Owned(name()), lane)
    } else {
        Span(None)
    }
}

/// Renders events as Chrome `trace_event` JSON (the "JSON Array Format"
/// wrapped in an object). Each span becomes a complete (`ph: "X"`) event;
/// lanes map to `tid` so each worker/crowd gets its own row.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("traceEvents");
    w.begin_arr();
    // Name the process once; viewers show it as the track group header.
    w.begin_obj();
    w.key("name").str_val("process_name");
    w.key("ph").str_val("M");
    w.key("pid").u64_val(1);
    w.key("tid").u64_val(0);
    w.key("args");
    w.begin_obj();
    w.key("name").str_val("qmc");
    w.end_obj();
    w.end_obj();
    for e in events {
        w.begin_obj();
        w.key("name").str_val(&e.name);
        w.key("cat").str_val("qmc");
        w.key("ph").str_val("X");
        // trace_event timestamps are microseconds (fractional allowed).
        w.key("ts").f64_val(e.start_ns as f64 / 1e3);
        w.key("dur").f64_val(e.dur_ns as f64 / 1e3);
        w.key("pid").u64_val(1);
        w.key("tid").u64_val(e.lane);
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn disabled_spans_record_nothing() {
        enable_tracing(false);
        take_trace_events();
        {
            let _s = span("should not appear", 0);
        }
        assert!(take_trace_events().is_empty());
    }

    #[test]
    fn enabled_spans_record_and_export() {
        enable_tracing(true);
        take_trace_events();
        {
            let _g = span("generation", 2);
            let _b = span_lazy(0, || format!("block {}", 7));
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        enable_tracing(false);
        let events = take_trace_events();
        assert_eq!(events.len(), 2);
        // Inner span drops first.
        assert_eq!(events[0].name, "block 7");
        assert_eq!(events[1].name, "generation");
        assert_eq!(events[1].lane, 2);
        assert!(events[1].dur_ns >= 500_000);

        let text = chrome_trace_json(&events);
        let v = json::parse(&text).expect("valid JSON");
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        // Metadata record + 2 spans.
        assert_eq!(evs.len(), 3);
        let gen = &evs[2];
        assert_eq!(gen.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(gen.get("tid").unwrap().as_f64(), Some(2.0));
        assert!(gen.get("dur").unwrap().as_f64().unwrap() >= 500.0);
    }
}
