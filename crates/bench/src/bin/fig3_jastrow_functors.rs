//! Figure 3: "Jastrow functors of Ni and O ions and up and down electron
//! spins for a 32-atom supercell of NiO."
//!
//! Prints the four functor curves `U(r)` (one-body Ni, one-body O,
//! two-body up-up, two-body up-down) as a CSV series, exactly the data the
//! paper's figure plots. The functors are the cubic-B-spline fits the
//! NiO workloads actually use, with the e-e cusp conditions.

use qmc_bspline::CubicBspline1D;

fn main() {
    // The same construction as qmc-workloads' NiO parameter set.
    let rc2 = 3.9; // two-body cutoff
    let uu = CubicBspline1D::<f64>::fit(
        |r| 0.35 * (1.0 - r / rc2).powi(3) / (1.0 + 0.4 * r),
        -0.25,
        rc2,
        10,
    );
    let ud = CubicBspline1D::<f64>::fit(
        |r| 0.5 * (1.0 - r / rc2).powi(3) / (1.0 + 0.4 * r),
        -0.5,
        rc2,
        10,
    );
    let rc_ni = 2.0 + 18.0 / 10.0;
    let ni = CubicBspline1D::<f64>::fit(
        |r| -0.08 * 18.0f64.sqrt() * (1.0 - r / rc_ni).powi(2),
        0.0,
        rc_ni,
        8,
    );
    let rc_o = 2.0 + 6.0 / 10.0;
    let o = CubicBspline1D::<f64>::fit(
        |r| -0.08 * 6.0f64.sqrt() * (1.0 - r / rc_o).powi(2),
        0.0,
        rc_o,
        8,
    );

    println!("== Fig 3: NiO Jastrow functors U(r) (CSV) ==");
    println!("r,J1_Ni,J1_O,J2_uu,J2_ud");
    let rmax = rc2;
    let points = 60;
    for i in 0..=points {
        let r = i as f64 / points as f64 * rmax;
        println!(
            "{:.4},{:.6},{:.6},{:.6},{:.6}",
            r,
            ni.evaluate(r),
            o.evaluate(r),
            uu.evaluate(r),
            ud.evaluate(r)
        );
    }
    eprintln!(
        "\nshape checks: J2 curves positive, monotone to 0 at r_cut = {rc2};\n\
         ud(0) > uu(0) (deeper antiparallel correlation); one-body wells\n\
         negative with Ni deeper than O; all vanish at their cutoffs."
    );
    // Machine-verifiable shape assertions (the 'figure' contract).
    assert!(ud.evaluate(0.0) > uu.evaluate(0.0));
    assert!(uu.evaluate(0.0) > 0.0);
    assert!(ni.evaluate(0.5) < o.evaluate(0.5));
    assert!(uu.evaluate(rc2) == 0.0 && ud.evaluate(rc2) == 0.0);
    assert!(uu.evaluate(1.0) > uu.evaluate(2.0));
}
