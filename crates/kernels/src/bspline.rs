//! Tricubic multi-B-spline SPO kernels: v / vgh / fused vgl, single- and
//! multi-walker, behind the [`Backend`] dispatch seam.
//!
//! The coefficient table itself (allocation, interpolation fits, ghost
//! layers) stays in `qmc-bspline`; this module operates on a borrowed
//! [`SplineView`] so the kernel library depends only on `qmc-containers`.
//!
//! All three backends accumulate each orbital over the 64 stencil nodes in
//! the same `(a, b, c)` order with the same `mul_add` placement, and every
//! per-node weight is produced by one shared `#[inline(always)]` helper —
//! so the backends are **bitwise identical** by construction and differ
//! only in loop structure:
//!
//! * `reference` — spline index outermost: per-orbital strided walks over
//!   the table (the baseline the paper's Fig. 8 speedups are against).
//! * `soa` — spline index innermost: contiguous auto-vectorized slabs
//!   streamed through memory once per stencil node (arXiv:1611.02665).
//! * `simd` — explicit lane-struct vectorization with the register
//!   blocking/tiling scheme of the B-spline companion paper (Mathuriya et
//!   al., arXiv:1611.02665): the 64 per-node weights are precomputed once
//!   with the `4x4` `(a, b)` prefactor products hoisted out of the `c`
//!   loop, the splines dimension is the vector loop over contiguous SoA
//!   coefficient rows, and each macro-tile of lane blocks keeps *all* of
//!   its accumulators in [`WideLane`] registers across the whole 64-node
//!   stencil — one store per output slab instead of one read-modify-write
//!   slab pass per node.
//!
//! Lane width follows the mixed-precision ladder ([`wide_f32`]): `f64`
//! runs 8-wide, `f32` runs 16-wide (one 512-bit register either way).
//! Widening never reorders a per-orbital accumulation, so the bitwise
//! contract holds on both rungs.

use crate::lanes::{wide_f32, WideLane};
use crate::Backend;
use qmc_containers::Real;

/// Cubic B-spline basis weights for parameter `u` in `[0, 1)`.
///
/// Returns `(w, dw, d2w)`: value, first and second derivative weights of the
/// four control points spanning the interval. (Moved from
/// `qmc-bspline::cubic1d`, which re-exports it; both the 1D Jastrow
/// functors and the tricubic kernels below share this stencil.)
#[inline]
pub fn bspline_weights<T: Real>(u: T) -> ([T; 4], [T; 4], [T; 4]) {
    let one = T::ONE;
    let half = T::HALF;
    let sixth = T::from_f64(1.0 / 6.0);
    let u2 = u * u;
    let u3 = u2 * u;
    let omu = one - u;
    let w = [
        sixth * omu * omu * omu,
        half * u3 - u2 + T::from_f64(2.0 / 3.0),
        -half * u3 + half * u2 + half * u + sixth,
        sixth * u3,
    ];
    let dw = [
        -half * omu * omu,
        T::from_f64(1.5) * u2 - u - u,
        T::from_f64(-1.5) * u2 + u + half,
        half * u2,
    ];
    let d2w = [
        omu,
        T::from_f64(3.0) * u - one - one,
        one - T::from_f64(3.0) * u,
        u,
    ];
    (w, dw, d2w)
}

/// A borrowed view of a periodic tricubic coefficient table
/// (`qmc_bspline::MultiBspline3D::view`). Layout: `[ix][iy][iz][spline]`
/// with each spatial index padded by +3 periodic ghost layers and the
/// spline index padded to `ns_pad` (a cacheline multiple, so every
/// [`LANES`]-wide block load of a live orbital stays in bounds).
#[derive(Clone, Copy)]
pub struct SplineView<'a, T: Real> {
    /// Logical periodic grid `(nx, ny, nz)`.
    pub grid: [usize; 3],
    /// Number of orbitals stored.
    pub num_splines: usize,
    /// Padded orbital count (innermost stride).
    pub ns_pad: usize,
    /// Coefficient storage, `(nx+3)(ny+3)(nz+3) * ns_pad` scalars.
    pub coefs: &'a [T],
}

impl<T: Real> SplineView<'_, T> {
    #[inline]
    fn idx(&self, ix: usize, iy: usize, iz: usize) -> usize {
        let [_, ny, nz] = self.grid;
        ((ix * (ny + 3) + iy) * (nz + 3) + iz) * self.ns_pad
    }
}

/// Maps a fractional coordinate to (stencil origin, intra-cell offset).
#[inline]
pub fn locate<T: Real>(u: T, n: usize) -> (usize, T) {
    // Wrap fractional coordinate into [0,1) then scale to grid units.
    let mut uf = u - u.floor();
    if uf >= T::ONE {
        uf = T::ZERO;
    }
    let t = uf * T::from_usize(n);
    let i = t.floor();
    let frac = t - i;
    let mut i = i.to_f64() as usize;
    if i >= n {
        i = n - 1; // guards the uf ~ 1.0 rounding edge
    }
    (i, frac)
}

/// The 64 coefficient-row offsets of the `4^3` stencil at `(ix, iy, iz)`,
/// in the canonical `(a, b, c)` node order every backend shares.
#[inline(always)]
fn stencil_bases<T: Real>(t: &SplineView<'_, T>, ix: usize, iy: usize, iz: usize) -> [usize; 64] {
    let mut bases = [0usize; 64];
    let mut k = 0;
    for a in 0..4 {
        for b in 0..4 {
            for c in 0..4 {
                bases[k] = t.idx(ix + a, iy + b, iz + c);
                k += 1;
            }
        }
    }
    bases
}

// ---------------------------------------------------------------------------
// value-only (v)
// ---------------------------------------------------------------------------

/// Value-only evaluation at fractional coordinates `u`, writing
/// `num_splines` values into `psi`. Bitwise identical across backends.
pub fn evaluate_v<T: Real>(backend: Backend, t: &SplineView<'_, T>, u: [T; 3], psi: &mut [T]) {
    match backend {
        Backend::Reference => v_reference(t, u, psi),
        Backend::Soa => v_soa(t, u, psi),
        Backend::Simd => v_simd(t, u, psi),
    }
}

#[inline(always)]
fn v_setup<T: Real>(t: &SplineView<'_, T>, u: [T; 3]) -> ([usize; 3], [[T; 4]; 3]) {
    let (ix, ux) = locate(u[0], t.grid[0]);
    let (iy, uy) = locate(u[1], t.grid[1]);
    let (iz, uz) = locate(u[2], t.grid[2]);
    let (wx, _, _) = bspline_weights(ux);
    let (wy, _, _) = bspline_weights(uy);
    let (wz, _, _) = bspline_weights(uz);
    ([ix, iy, iz], [wx, wy, wz])
}

/// Spline-outermost scalar loops (moved from `evaluate_v_ref`).
fn v_reference<T: Real>(t: &SplineView<'_, T>, u: [T; 3], psi: &mut [T]) {
    assert!(psi.len() >= t.num_splines);
    let ([ix, iy, iz], [wx, wy, wz]) = v_setup(t, u);
    for (s, out) in psi[..t.num_splines].iter_mut().enumerate() {
        let mut acc = T::ZERO;
        for a in 0..4 {
            for b in 0..4 {
                let wab = wx[a] * wy[b];
                for c in 0..4 {
                    let base = t.idx(ix + a, iy + b, iz + c);
                    acc = (wab * wz[c]).mul_add(t.coefs[base + s], acc);
                }
            }
        }
        *out = acc;
    }
}

/// Spline-innermost auto-vectorized slabs (moved from `evaluate_v`).
fn v_soa<T: Real>(t: &SplineView<'_, T>, u: [T; 3], psi: &mut [T]) {
    let ns = t.num_splines;
    assert!(psi.len() >= ns);
    let ([ix, iy, iz], [wx, wy, wz]) = v_setup(t, u);
    psi[..ns].fill(T::ZERO);
    for a in 0..4 {
        for b in 0..4 {
            let wab = wx[a] * wy[b];
            for c in 0..4 {
                let w = wab * wz[c];
                let base = t.idx(ix + a, iy + b, iz + c);
                let coefs = &t.coefs[base..base + ns];
                for (p, &cf) in psi[..ns].iter_mut().zip(coefs) {
                    *p = w.mul_add(cf, *p);
                }
            }
        }
    }
}

/// The 64 value weights with the `(a, b)` prefactor product hoisted out
/// of the `c` loop. Each product is the same left-associated
/// `(wx*wy)*wz` every backend computes, so the table is bitwise
/// identical to per-node evaluation.
#[inline(always)]
fn v_weight_table<T: Real>([wx, wy, wz]: &[[T; 4]; 3]) -> [T; 64] {
    let mut w = [T::ZERO; 64];
    let mut k = 0;
    for a in 0..4 {
        for b in 0..4 {
            let wab = wx[a] * wy[b];
            for c in 0..4 {
                w[k] = wab * wz[c];
                k += 1;
            }
        }
    }
    w
}

/// Width dispatch for the explicit-SIMD value kernel: `f32` takes the
/// 16-wide rung, `f64` the 8-wide one.
fn v_simd<T: Real>(t: &SplineView<'_, T>, u: [T; 3], psi: &mut [T]) {
    if wide_f32::<T>() {
        v_simd_w::<T, 16>(t, u, psi);
    } else {
        v_simd_w::<T, 8>(t, u, psi);
    }
}

/// Register-blocked lane evaluation (arXiv:1611.02665 tiling): the 64
/// node weights are computed once, then a 4-block macro-tile (`4*W`
/// orbitals) keeps four accumulator registers live across the whole
/// stencil — one store per block instead of one read-modify-write slab
/// pass per node, and four independent FMA chains per node to cover the
/// FMA latency.
fn v_simd_w<T: Real, const W: usize>(t: &SplineView<'_, T>, u: [T; 3], psi: &mut [T]) {
    let ns = t.num_splines;
    assert!(psi.len() >= ns);
    let ([ix, iy, iz], w3) = v_setup(t, u);
    let bases = stencil_bases(t, ix, iy, iz);
    let w = v_weight_table(&w3);
    let mut s0 = 0;
    while s0 + 4 * W <= ns {
        let mut a0 = WideLane::<T, W>::zero();
        let mut a1 = WideLane::<T, W>::zero();
        let mut a2 = WideLane::<T, W>::zero();
        let mut a3 = WideLane::<T, W>::zero();
        for k in 0..64 {
            let row = &t.coefs[bases[k] + s0..];
            a0 = a0.fma_scalar(w[k], WideLane::load(row));
            a1 = a1.fma_scalar(w[k], WideLane::load(&row[W..]));
            a2 = a2.fma_scalar(w[k], WideLane::load(&row[2 * W..]));
            a3 = a3.fma_scalar(w[k], WideLane::load(&row[3 * W..]));
        }
        a0.store(&mut psi[s0..]);
        a1.store(&mut psi[s0 + W..]);
        a2.store(&mut psi[s0 + 2 * W..]);
        a3.store(&mut psi[s0 + 3 * W..]);
        s0 += 4 * W;
    }
    while s0 + W <= ns {
        let mut acc = WideLane::<T, W>::zero();
        for k in 0..64 {
            acc = acc.fma_scalar(w[k], WideLane::load(&t.coefs[bases[k] + s0..]));
        }
        acc.store(&mut psi[s0..]);
        s0 += W;
    }
    // Scalar tail: same per-orbital node order as the blocks.
    for s in s0..ns {
        let mut acc = T::ZERO;
        for k in 0..64 {
            acc = w[k].mul_add(t.coefs[bases[k] + s], acc);
        }
        psi[s] = acc;
    }
}

/// Multi-point value-only evaluation, sized for the NLPP quadrature loop:
/// `us.len()` positions (one spherical-quadrature shell, typically 12)
/// against the shared table in one call. Outputs are point-major —
/// point `q` owns `psi[q*ns..(q+1)*ns]`. Per-point results are bitwise
/// identical to [`evaluate_v`] on every backend (each point is an
/// independent accumulation), so the fast path never perturbs the NLPP
/// energies.
// qmclint: allow(timer-coverage) — timed by the caller (BsplineSpo wraps
// the dispatch in Kernel::BsplineV); the kernel library itself stays
// free of instrumentation dependencies.
pub fn mw_evaluate_v<T: Real>(
    backend: Backend,
    t: &SplineView<'_, T>,
    us: &[[T; 3]],
    psi: &mut [T],
) {
    let ns = t.num_splines;
    assert!(psi.len() >= us.len() * ns);
    for (q, &u) in us.iter().enumerate() {
        evaluate_v(backend, t, u, &mut psi[q * ns..(q + 1) * ns]);
    }
}

// ---------------------------------------------------------------------------
// value + gradient + Hessian (vgh)
// ---------------------------------------------------------------------------

#[inline(always)]
fn vgh_setup<T: Real>(t: &SplineView<'_, T>, u: [T; 3]) -> ([usize; 3], [[T; 4]; 9]) {
    let (ix, ux) = locate(u[0], t.grid[0]);
    let (iy, uy) = locate(u[1], t.grid[1]);
    let (iz, uz) = locate(u[2], t.grid[2]);
    let (wx, dwx, d2wx) = bspline_weights(ux);
    let (wy, dwy, d2wy) = bspline_weights(uy);
    let (wz, dwz, d2wz) = bspline_weights(uz);
    ([ix, iy, iz], [wx, wy, wz, dwx, dwy, dwz, d2wx, d2wy, d2wz])
}

/// The ten per-node stencil weights `[v, gx, gy, gz, hxx, hxy, hxz, hyy,
/// hyz, hzz]` — the one definition every vgh backend shares.
#[inline(always)]
fn vgh_node_weights<T: Real>(w9: &[[T; 4]; 9], a: usize, b: usize, c: usize) -> [T; 10] {
    let [wx, wy, wz, dwx, dwy, dwz, d2wx, d2wy, d2wz] = w9;
    [
        wx[a] * wy[b] * wz[c],   // v
        dwx[a] * wy[b] * wz[c],  // gx
        wx[a] * dwy[b] * wz[c],  // gy
        wx[a] * wy[b] * dwz[c],  // gz
        d2wx[a] * wy[b] * wz[c], // hxx
        dwx[a] * dwy[b] * wz[c], // hxy
        dwx[a] * wy[b] * dwz[c], // hxz
        wx[a] * d2wy[b] * wz[c], // hyy
        wx[a] * dwy[b] * dwz[c], // hyz
        wx[a] * wy[b] * d2wz[c], // hzz
    ]
}

/// Converts grid-unit derivatives to fractional-coordinate derivatives.
#[inline]
fn scale_derivatives<T: Real>(grid: [usize; 3], ns: usize, grad: &mut [T], hess: &mut [T]) {
    let n = [
        T::from_usize(grid[0]),
        T::from_usize(grid[1]),
        T::from_usize(grid[2]),
    ];
    for d in 0..3 {
        let g = &mut grad[d * ns..(d + 1) * ns];
        for x in g.iter_mut() {
            *x *= n[d];
        }
    }
    // hess order: xx,xy,xz,yy,yz,zz
    let pairs = [(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)];
    for (h, (a, b)) in pairs.iter().enumerate() {
        let scale = n[*a] * n[*b];
        for x in &mut hess[h * ns..(h + 1) * ns] {
            *x *= scale;
        }
    }
}

/// Value + gradient + Hessian evaluation. Gradients are w.r.t. fractional
/// coordinates; the Hessian is packed `[xx,xy,xz,yy,yz,zz]` as six slabs
/// of `num_splines` values. Bitwise identical across backends.
pub fn evaluate_vgh<T: Real>(
    backend: Backend,
    t: &SplineView<'_, T>,
    u: [T; 3],
    psi: &mut [T],
    grad: &mut [T],
    hess: &mut [T],
) {
    let ns = t.num_splines;
    assert!(psi.len() >= ns && grad.len() >= 3 * ns && hess.len() >= 6 * ns);
    match backend {
        Backend::Reference => vgh_reference(t, u, psi, grad, hess),
        Backend::Soa => vgh_soa(t, u, psi, grad, hess),
        Backend::Simd => vgh_simd(t, u, psi, grad, hess),
    }
    scale_derivatives(t.grid, ns, grad, hess);
}

/// Spline-outermost scalar loops (moved from `evaluate_vgh_ref`).
fn vgh_reference<T: Real>(
    t: &SplineView<'_, T>,
    u: [T; 3],
    psi: &mut [T],
    grad: &mut [T],
    hess: &mut [T],
) {
    let ns = t.num_splines;
    let ([ix, iy, iz], w9) = vgh_setup(t, u);
    for s in 0..ns {
        let mut acc = [T::ZERO; 10];
        for a in 0..4 {
            for b in 0..4 {
                for c in 0..4 {
                    let base = t.idx(ix + a, iy + b, iz + c);
                    let cf = t.coefs[base + s];
                    let w = vgh_node_weights(&w9, a, b, c);
                    for q in 0..10 {
                        acc[q] = w[q].mul_add(cf, acc[q]);
                    }
                }
            }
        }
        psi[s] = acc[0];
        for d in 0..3 {
            grad[d * ns + s] = acc[1 + d];
        }
        for h in 0..6 {
            hess[h * ns + s] = acc[4 + h];
        }
    }
}

/// Spline-innermost auto-vectorized slabs (moved from `evaluate_vgh`).
fn vgh_soa<T: Real>(
    t: &SplineView<'_, T>,
    u: [T; 3],
    psi: &mut [T],
    grad: &mut [T],
    hess: &mut [T],
) {
    let ns = t.num_splines;
    let ([ix, iy, iz], w9) = vgh_setup(t, u);
    psi[..ns].fill(T::ZERO);
    grad[..3 * ns].fill(T::ZERO);
    hess[..6 * ns].fill(T::ZERO);
    for a in 0..4 {
        for b in 0..4 {
            for c in 0..4 {
                let w = vgh_node_weights(&w9, a, b, c);
                let base = t.idx(ix + a, iy + b, iz + c);
                let coefs = &t.coefs[base..base + ns];
                // value
                for (p, &cf) in psi[..ns].iter_mut().zip(coefs) {
                    *p = w[0].mul_add(cf, *p);
                }
                // gradient slabs
                for d in 0..3 {
                    let g = &mut grad[d * ns..(d + 1) * ns];
                    let wd = w[1 + d];
                    for (p, &cf) in g.iter_mut().zip(coefs) {
                        *p = wd.mul_add(cf, *p);
                    }
                }
                // hessian slabs
                for h in 0..6 {
                    let hsl = &mut hess[h * ns..(h + 1) * ns];
                    let wh = w[4 + h];
                    for (p, &cf) in hsl.iter_mut().zip(coefs) {
                        *p = wh.mul_add(cf, *p);
                    }
                }
            }
        }
    }
}

/// The 64x10 vgh weight table with the `4x4` `(a, b)` prefactor products
/// hoisted out of the `c` loop (arXiv:1611.02665): six partial products
/// per `(a, b)` pair, then four multiplies per node instead of the full
/// triple products. Every entry is the same left-associated product
/// [`vgh_node_weights`] computes — `(wx*wy)*wz == wx*wy*wz` as written —
/// so the hoisted table is **bitwise identical** to per-node evaluation
/// (pinned by the cross-backend tests).
#[inline(always)]
fn vgh_weight_table<T: Real>(w9: &[[T; 4]; 9]) -> [[T; 10]; 64] {
    let [wx, wy, wz, dwx, dwy, dwz, d2wx, d2wy, d2wz] = w9;
    let mut w = [[T::ZERO; 10]; 64];
    let mut k = 0;
    for a in 0..4 {
        for b in 0..4 {
            let ab_v = wx[a] * wy[b];
            let ab_gx = dwx[a] * wy[b];
            let ab_gy = wx[a] * dwy[b];
            let ab_hxx = d2wx[a] * wy[b];
            let ab_hxy = dwx[a] * dwy[b];
            let ab_hyy = wx[a] * d2wy[b];
            for c in 0..4 {
                w[k] = [
                    ab_v * wz[c],   // v
                    ab_gx * wz[c],  // gx
                    ab_gy * wz[c],  // gy
                    ab_v * dwz[c],  // gz
                    ab_hxx * wz[c], // hxx
                    ab_hxy * wz[c], // hxy
                    ab_gx * dwz[c], // hxz
                    ab_hyy * wz[c], // hyy
                    ab_gy * dwz[c], // hyz
                    ab_v * d2wz[c], // hzz
                ];
                k += 1;
            }
        }
    }
    w
}

/// Width dispatch for the explicit-SIMD vgh kernel.
fn vgh_simd<T: Real>(
    t: &SplineView<'_, T>,
    u: [T; 3],
    psi: &mut [T],
    grad: &mut [T],
    hess: &mut [T],
) {
    if wide_f32::<T>() {
        vgh_simd_w::<T, 16>(t, u, psi, grad, hess);
    } else {
        vgh_simd_w::<T, 8>(t, u, psi, grad, hess);
    }
}

/// Register-blocked lane evaluation: ten accumulators per lane block stay
/// live across the whole stencil; the ten output slabs are written once.
/// (A 2-block macro-tile was measured *slower* here — twenty live
/// accumulators spill — so vgh keeps one block per pass and takes its
/// tiling win from the hoisted [`vgh_weight_table`] alone.)
fn vgh_simd_w<T: Real, const W: usize>(
    t: &SplineView<'_, T>,
    u: [T; 3],
    psi: &mut [T],
    grad: &mut [T],
    hess: &mut [T],
) {
    let ns = t.num_splines;
    let ([ix, iy, iz], w9) = vgh_setup(t, u);
    let bases = stencil_bases(t, ix, iy, iz);
    let w = vgh_weight_table(&w9);
    let mut s0 = 0;
    while s0 + W <= ns {
        let mut acc = [WideLane::<T, W>::zero(); 10];
        for k in 0..64 {
            let cf = WideLane::load(&t.coefs[bases[k] + s0..]);
            for q in 0..10 {
                acc[q] = acc[q].fma_scalar(w[k][q], cf);
            }
        }
        acc[0].store(&mut psi[s0..]);
        for d in 0..3 {
            acc[1 + d].store(&mut grad[d * ns + s0..]);
        }
        for h in 0..6 {
            acc[4 + h].store(&mut hess[h * ns + s0..]);
        }
        s0 += W;
    }
    for s in s0..ns {
        let mut acc = [T::ZERO; 10];
        for k in 0..64 {
            let cf = t.coefs[bases[k] + s];
            for q in 0..10 {
                acc[q] = w[k][q].mul_add(cf, acc[q]);
            }
        }
        psi[s] = acc[0];
        for d in 0..3 {
            grad[d * ns + s] = acc[1 + d];
        }
        for h in 0..6 {
            hess[h * ns + s] = acc[4 + h];
        }
    }
}

// ---------------------------------------------------------------------------
// fused value + Cartesian gradient + Laplacian (vgl)
// ---------------------------------------------------------------------------

#[inline(always)]
fn vgl_setup<T: Real>(t: &SplineView<'_, T>, u: [T; 3]) -> ([usize; 3], [[T; 4]; 9]) {
    let (ix, ux) = locate(u[0], t.grid[0]);
    let (iy, uy) = locate(u[1], t.grid[1]);
    let (iz, uz) = locate(u[2], t.grid[2]);
    let (wx, mut dwx, mut d2wx) = bspline_weights(ux);
    let (wy, mut dwy, mut d2wy) = bspline_weights(uy);
    let (wz, mut dwz, mut d2wz) = bspline_weights(uz);
    // Fold grid-unit -> fractional derivative scaling into the 1D
    // weights (grad x n, hess x n^2 per differentiated axis).
    let n = [
        T::from_usize(t.grid[0]),
        T::from_usize(t.grid[1]),
        T::from_usize(t.grid[2]),
    ];
    for k in 0..4 {
        dwx[k] *= n[0];
        dwy[k] *= n[1];
        dwz[k] *= n[2];
        d2wx[k] *= n[0] * n[0];
        d2wy[k] *= n[1] * n[1];
        d2wz[k] *= n[2] * n[2];
    }
    ([ix, iy, iz], [wx, wy, wz, dwx, dwy, dwz, d2wx, d2wy, d2wz])
}

/// The five per-node fused-VGL weights `(value, Cartesian gradient x3,
/// Laplacian)` with the lattice transform precontracted — the one
/// definition every vgl backend shares.
#[inline(always)]
fn vgl_node_weights<T: Real>(
    w9: &[[T; 4]; 9],
    gmat: &[[T; 3]; 3],
    lapmet: &[T; 6],
    a: usize,
    b: usize,
    c: usize,
) -> (T, [T; 3], T) {
    let [wx, wy, wz, dwx, dwy, dwz, d2wx, d2wy, d2wz] = w9;
    let wv = wx[a] * wy[b] * wz[c];
    // Fractional gradient weights, grid scaling included.
    let gf = [
        dwx[a] * wy[b] * wz[c],
        wx[a] * dwy[b] * wz[c],
        wx[a] * wy[b] * dwz[c],
    ];
    // Precontracted Cartesian gradient weights.
    let cg = [
        gmat[0][0] * gf[0] + gmat[0][1] * gf[1] + gmat[0][2] * gf[2],
        gmat[1][0] * gf[0] + gmat[1][1] * gf[1] + gmat[1][2] * gf[2],
        gmat[2][0] * gf[0] + gmat[2][1] * gf[1] + gmat[2][2] * gf[2],
    ];
    // Laplacian weight: packed Hessian stencil contracted with the metric
    // (off-diagonals pre-doubled).
    let wl = lapmet[0] * (d2wx[a] * wy[b] * wz[c])
        + lapmet[1] * (dwx[a] * dwy[b] * wz[c])
        + lapmet[2] * (dwx[a] * wy[b] * dwz[c])
        + lapmet[3] * (wx[a] * d2wy[b] * wz[c])
        + lapmet[4] * (wx[a] * dwy[b] * dwz[c])
        + lapmet[5] * (wx[a] * wy[b] * d2wz[c]);
    (wv, cg, wl)
}

/// Fused value + *Cartesian* gradient + Laplacian evaluation: the lattice
/// transform (`gmat` = fractional-to-Cartesian gradient matrix, `lapmet` =
/// packed Laplacian metric with doubled off-diagonals) is precontracted
/// into the per-node stencil weights, so only five accumulation slabs
/// exist instead of ten plus a transform pass. Bitwise identical across
/// backends.
pub fn evaluate_vgl<T: Real>(
    backend: Backend,
    t: &SplineView<'_, T>,
    u: [T; 3],
    gmat: &[[T; 3]; 3],
    lapmet: &[T; 6],
    psi: &mut [T],
    grad: &mut [T],
    lap: &mut [T],
) {
    let ns = t.num_splines;
    assert!(psi.len() >= ns && grad.len() >= 3 * ns && lap.len() >= ns);
    match backend {
        Backend::Reference => vgl_reference(t, u, gmat, lapmet, psi, grad, lap),
        Backend::Soa => vgl_soa(t, u, gmat, lapmet, psi, grad, lap),
        Backend::Simd => vgl_simd(t, u, gmat, lapmet, psi, grad, lap),
    }
}

/// Spline-outermost scalar loops.
fn vgl_reference<T: Real>(
    t: &SplineView<'_, T>,
    u: [T; 3],
    gmat: &[[T; 3]; 3],
    lapmet: &[T; 6],
    psi: &mut [T],
    grad: &mut [T],
    lap: &mut [T],
) {
    let ns = t.num_splines;
    let ([ix, iy, iz], w9) = vgl_setup(t, u);
    for s in 0..ns {
        let mut av = T::ZERO;
        let mut ag = [T::ZERO; 3];
        let mut al = T::ZERO;
        for a in 0..4 {
            for b in 0..4 {
                for c in 0..4 {
                    let (wv, cg, wl) = vgl_node_weights(&w9, gmat, lapmet, a, b, c);
                    let base = t.idx(ix + a, iy + b, iz + c);
                    let cf = t.coefs[base + s];
                    av = wv.mul_add(cf, av);
                    for d in 0..3 {
                        ag[d] = cg[d].mul_add(cf, ag[d]);
                    }
                    al = wl.mul_add(cf, al);
                }
            }
        }
        psi[s] = av;
        for d in 0..3 {
            grad[d * ns + s] = ag[d];
        }
        lap[s] = al;
    }
}

/// Spline-innermost auto-vectorized slabs (moved from `evaluate_vgl`).
fn vgl_soa<T: Real>(
    t: &SplineView<'_, T>,
    u: [T; 3],
    gmat: &[[T; 3]; 3],
    lapmet: &[T; 6],
    psi: &mut [T],
    grad: &mut [T],
    lap: &mut [T],
) {
    let ns = t.num_splines;
    let ([ix, iy, iz], w9) = vgl_setup(t, u);
    psi[..ns].fill(T::ZERO);
    grad[..3 * ns].fill(T::ZERO);
    lap[..ns].fill(T::ZERO);
    for a in 0..4 {
        for b in 0..4 {
            for c in 0..4 {
                let (wv, cg, wl) = vgl_node_weights(&w9, gmat, lapmet, a, b, c);
                let base = t.idx(ix + a, iy + b, iz + c);
                let coefs = &t.coefs[base..base + ns];
                for (p, &cf) in psi[..ns].iter_mut().zip(coefs) {
                    *p = wv.mul_add(cf, *p);
                }
                for d in 0..3 {
                    let g = &mut grad[d * ns..(d + 1) * ns];
                    let wd = cg[d];
                    for (p, &cf) in g.iter_mut().zip(coefs) {
                        *p = wd.mul_add(cf, *p);
                    }
                }
                for (p, &cf) in lap[..ns].iter_mut().zip(coefs) {
                    *p = wl.mul_add(cf, *p);
                }
            }
        }
    }
}

/// The 64-node fused-VGL weight tables with the `(a, b)` prefactor
/// products hoisted out of the `c` loop (arXiv:1611.02665). Every entry
/// reproduces [`vgl_node_weights`]'s left-associated products bitwise:
/// `(wx*wy)*wz == wx*wy*wz` as Rust parses it, and the `cg`/`wl`
/// contractions keep the identical summation order.
#[inline(always)]
fn vgl_weight_table<T: Real>(
    w9: &[[T; 4]; 9],
    gmat: &[[T; 3]; 3],
    lapmet: &[T; 6],
) -> ([T; 64], [[T; 3]; 64], [T; 64]) {
    let [wx, wy, wz, dwx, dwy, dwz, d2wx, d2wy, d2wz] = w9;
    let mut wv = [T::ZERO; 64];
    let mut wg = [[T::ZERO; 3]; 64];
    let mut wl = [T::ZERO; 64];
    let mut k = 0;
    for a in 0..4 {
        for b in 0..4 {
            let ab_v = wx[a] * wy[b];
            let ab_gx = dwx[a] * wy[b];
            let ab_gy = wx[a] * dwy[b];
            let ab_hxx = d2wx[a] * wy[b];
            let ab_hxy = dwx[a] * dwy[b];
            let ab_hyy = wx[a] * d2wy[b];
            for c in 0..4 {
                wv[k] = ab_v * wz[c];
                let gf = [ab_gx * wz[c], ab_gy * wz[c], ab_v * dwz[c]];
                wg[k] = [
                    gmat[0][0] * gf[0] + gmat[0][1] * gf[1] + gmat[0][2] * gf[2],
                    gmat[1][0] * gf[0] + gmat[1][1] * gf[1] + gmat[1][2] * gf[2],
                    gmat[2][0] * gf[0] + gmat[2][1] * gf[1] + gmat[2][2] * gf[2],
                ];
                wl[k] = lapmet[0] * (ab_hxx * wz[c])
                    + lapmet[1] * (ab_hxy * wz[c])
                    + lapmet[2] * (ab_gx * dwz[c])
                    + lapmet[3] * (ab_hyy * wz[c])
                    + lapmet[4] * (ab_gy * dwz[c])
                    + lapmet[5] * (ab_v * d2wz[c]);
                k += 1;
            }
        }
    }
    (wv, wg, wl)
}

/// Width dispatch for the explicit-SIMD vgl kernel.
fn vgl_simd<T: Real>(
    t: &SplineView<'_, T>,
    u: [T; 3],
    gmat: &[[T; 3]; 3],
    lapmet: &[T; 6],
    psi: &mut [T],
    grad: &mut [T],
    lap: &mut [T],
) {
    if wide_f32::<T>() {
        vgl_simd_w::<T, 16>(t, u, gmat, lapmet, psi, grad, lap);
    } else {
        vgl_simd_w::<T, 8>(t, u, gmat, lapmet, psi, grad, lap);
    }
}

/// Register-blocked lane evaluation: a 2-block macro-tile keeps ten
/// accumulators (five per block) live across the stencil, one store per
/// output slab per block.
fn vgl_simd_w<T: Real, const W: usize>(
    t: &SplineView<'_, T>,
    u: [T; 3],
    gmat: &[[T; 3]; 3],
    lapmet: &[T; 6],
    psi: &mut [T],
    grad: &mut [T],
    lap: &mut [T],
) {
    let ns = t.num_splines;
    let ([ix, iy, iz], w9) = vgl_setup(t, u);
    let bases = stencil_bases(t, ix, iy, iz);
    let (wv, wg, wl) = vgl_weight_table(&w9, gmat, lapmet);
    let mut s0 = 0;
    while s0 + 2 * W <= ns {
        let mut av0 = WideLane::<T, W>::zero();
        let mut av1 = WideLane::<T, W>::zero();
        let mut ag0 = [WideLane::<T, W>::zero(); 3];
        let mut ag1 = [WideLane::<T, W>::zero(); 3];
        let mut al0 = WideLane::<T, W>::zero();
        let mut al1 = WideLane::<T, W>::zero();
        for k in 0..64 {
            let row = &t.coefs[bases[k] + s0..];
            let c0 = WideLane::load(row);
            let c1 = WideLane::load(&row[W..]);
            av0 = av0.fma_scalar(wv[k], c0);
            av1 = av1.fma_scalar(wv[k], c1);
            for d in 0..3 {
                ag0[d] = ag0[d].fma_scalar(wg[k][d], c0);
                ag1[d] = ag1[d].fma_scalar(wg[k][d], c1);
            }
            al0 = al0.fma_scalar(wl[k], c0);
            al1 = al1.fma_scalar(wl[k], c1);
        }
        av0.store(&mut psi[s0..]);
        av1.store(&mut psi[s0 + W..]);
        for d in 0..3 {
            ag0[d].store(&mut grad[d * ns + s0..]);
            ag1[d].store(&mut grad[d * ns + s0 + W..]);
        }
        al0.store(&mut lap[s0..]);
        al1.store(&mut lap[s0 + W..]);
        s0 += 2 * W;
    }
    while s0 + W <= ns {
        let mut av = WideLane::<T, W>::zero();
        let mut ag = [WideLane::<T, W>::zero(); 3];
        let mut al = WideLane::<T, W>::zero();
        for k in 0..64 {
            let cf = WideLane::load(&t.coefs[bases[k] + s0..]);
            av = av.fma_scalar(wv[k], cf);
            for d in 0..3 {
                ag[d] = ag[d].fma_scalar(wg[k][d], cf);
            }
            al = al.fma_scalar(wl[k], cf);
        }
        av.store(&mut psi[s0..]);
        for d in 0..3 {
            ag[d].store(&mut grad[d * ns + s0..]);
        }
        al.store(&mut lap[s0..]);
        s0 += W;
    }
    for s in s0..ns {
        let mut av = T::ZERO;
        let mut ag = [T::ZERO; 3];
        let mut al = T::ZERO;
        for k in 0..64 {
            let cf = t.coefs[bases[k] + s];
            av = wv[k].mul_add(cf, av);
            for d in 0..3 {
                ag[d] = wg[k][d].mul_add(cf, ag[d]);
            }
            al = wl[k].mul_add(cf, al);
        }
        psi[s] = av;
        for d in 0..3 {
            grad[d * ns + s] = ag[d];
        }
        lap[s] = al;
    }
}

/// Multi-walker fused VGL: evaluates `us.len()` positions against the
/// shared coefficient table in one call. Outputs are walker-major —
/// walker `w` owns `psi[w*ns..]`, `grad[w*3*ns..]`, `lap[w*ns..]`.
/// Per-walker results are bitwise identical to [`evaluate_vgl`] on the
/// same backend (each walker is an independent accumulation).
// qmclint: allow(timer-coverage) — timed by the caller: BsplineSpo wraps
// this dispatch in Kernel::BsplineMwVGL; the kernel library itself stays
// free of instrumentation dependencies.
pub fn mw_evaluate_vgl<T: Real>(
    backend: Backend,
    t: &SplineView<'_, T>,
    us: &[[T; 3]],
    gmat: &[[T; 3]; 3],
    lapmet: &[T; 6],
    psi: &mut [T],
    grad: &mut [T],
    lap: &mut [T],
) {
    let ns = t.num_splines;
    let nw = us.len();
    assert!(psi.len() >= nw * ns && grad.len() >= nw * 3 * ns && lap.len() >= nw * ns);
    if backend == Backend::Simd {
        if wide_f32::<T>() {
            mw_vgl_simd_w::<T, 16>(t, us, gmat, lapmet, psi, grad, lap);
        } else {
            mw_vgl_simd_w::<T, 8>(t, us, gmat, lapmet, psi, grad, lap);
        }
        return;
    }
    for (w, &u) in us.iter().enumerate() {
        evaluate_vgl(
            backend,
            t,
            u,
            gmat,
            lapmet,
            &mut psi[w * ns..(w + 1) * ns],
            &mut grad[w * 3 * ns..(w + 1) * 3 * ns],
            &mut lap[w * ns..(w + 1) * ns],
        );
    }
}

/// Walkers per cache block of the multi-walker Simd vgl kernel: stencil
/// bases and hoisted weight tables for `MW_CHUNK` walkers are computed
/// once up front (amortizing the prefactor work across the crowd,
/// arXiv:1611.02665), then the spline dimension is tiled with the walker
/// loop inside each tile so overlapping stencil rows stay cache-hot.
const MW_CHUNK: usize = 4;

/// Cache-blocked multi-walker fused VGL. Per-walker output is **bitwise
/// identical** to single-walker [`evaluate_vgl`] on the Simd backend:
/// for every orbital `s` the k = 0..64 accumulation chain uses the same
/// hoisted weights in the same order — only the iteration *interleaving*
/// across walkers and tiles differs, which lane-elementwise math cannot
/// observe.
// qmclint: allow(timer-coverage) — internal width-monomorphized body of
// `mw_evaluate_vgl`; the public entry is wrapped in
// `time_kernel(Kernel::BsplineMwVgl, ...)` by its callers (BsplineSpo),
// so timing here would double-count the same scope.
fn mw_vgl_simd_w<T: Real, const W: usize>(
    t: &SplineView<'_, T>,
    us: &[[T; 3]],
    gmat: &[[T; 3]; 3],
    lapmet: &[T; 6],
    psi: &mut [T],
    grad: &mut [T],
    lap: &mut [T],
) {
    let ns = t.num_splines;
    for (chunk_idx, chunk) in us.chunks(MW_CHUNK).enumerate() {
        let w0 = chunk_idx * MW_CHUNK;
        // Per-chunk precompute: one stencil locate + hoisted 64-node
        // weight table per walker, reused by every spline tile below.
        let mut bases = [[0usize; 64]; MW_CHUNK];
        let mut wv = [[T::ZERO; 64]; MW_CHUNK];
        let mut wg = [[[T::ZERO; 3]; 64]; MW_CHUNK];
        let mut wl = [[T::ZERO; 64]; MW_CHUNK];
        for (j, &u) in chunk.iter().enumerate() {
            let ([ix, iy, iz], w9) = vgl_setup(t, u);
            bases[j] = stencil_bases(t, ix, iy, iz);
            (wv[j], wg[j], wl[j]) = vgl_weight_table(&w9, gmat, lapmet);
        }
        // Spline tile outer, walker inner: each tile's coefficient rows
        // are touched back-to-back by all walkers in the chunk.
        let mut s0 = 0;
        while s0 + W <= ns {
            for (j, _) in chunk.iter().enumerate() {
                let w = w0 + j;
                let mut av = WideLane::<T, W>::zero();
                let mut ag = [WideLane::<T, W>::zero(); 3];
                let mut al = WideLane::<T, W>::zero();
                for k in 0..64 {
                    let cf = WideLane::load(&t.coefs[bases[j][k] + s0..]);
                    av = av.fma_scalar(wv[j][k], cf);
                    for d in 0..3 {
                        ag[d] = ag[d].fma_scalar(wg[j][k][d], cf);
                    }
                    al = al.fma_scalar(wl[j][k], cf);
                }
                av.store(&mut psi[w * ns + s0..]);
                for d in 0..3 {
                    ag[d].store(&mut grad[w * 3 * ns + d * ns + s0..]);
                }
                al.store(&mut lap[w * ns + s0..]);
            }
            s0 += W;
        }
        for s in s0..ns {
            for (j, _) in chunk.iter().enumerate() {
                let w = w0 + j;
                let mut av = T::ZERO;
                let mut ag = [T::ZERO; 3];
                let mut al = T::ZERO;
                for k in 0..64 {
                    let cf = t.coefs[bases[j][k] + s];
                    av = wv[j][k].mul_add(cf, av);
                    for d in 0..3 {
                        ag[d] = wg[j][k][d].mul_add(cf, ag[d]);
                    }
                    al = wl[j][k].mul_add(cf, al);
                }
                psi[w * ns + s] = av;
                for d in 0..3 {
                    grad[w * 3 * ns + d * ns + s] = ag[d];
                }
                lap[w * ns + s] = al;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmc_containers::padded_len;

    /// Builds a padded coefficient buffer with deterministic values and
    /// returns (storage, grid, ns). Ghost layers are filled too — the
    /// kernels never see the periodic replication logic, only the layout.
    fn table(grid: [usize; 3], ns: usize, seed: u64) -> (Vec<f64>, [usize; 3], usize) {
        let ns_pad = padded_len::<f64>(ns);
        let total = (grid[0] + 3) * (grid[1] + 3) * (grid[2] + 3) * ns_pad;
        let mut state = seed.wrapping_mul(2685821657736338717).max(1);
        let mut coefs = vec![0.0f64; total];
        for v in &mut coefs {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let bits = state.wrapping_mul(0x2545F4914F6CDD1D);
            *v = ((bits >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
        }
        (coefs, grid, ns)
    }

    fn view(coefs: &[f64], grid: [usize; 3], ns: usize) -> SplineView<'_, f64> {
        SplineView {
            grid,
            num_splines: ns,
            ns_pad: padded_len::<f64>(ns),
            coefs,
        }
    }

    #[test]
    fn weights_partition_of_unity() {
        for &u in &[0.0f64, 0.25, 0.5, 0.75, 0.999] {
            let (w, dw, d2w) = bspline_weights(u);
            let sw: f64 = w.iter().sum();
            assert!((sw - 1.0).abs() < 1e-14, "sum w = {sw}");
            assert!(dw.iter().sum::<f64>().abs() < 1e-14);
            assert!(d2w.iter().sum::<f64>().abs() < 1e-13);
        }
    }

    #[test]
    fn v_backends_bitwise_identical() {
        // ns = 11 exercises the simd scalar tail (11 = 8 + 3).
        let (coefs, grid, ns) = table([5, 6, 4], 11, 17);
        let t = view(&coefs, grid, ns);
        let u = [0.37, 0.81, 0.12];
        let mut base = vec![0.0; ns];
        evaluate_v(Backend::Reference, &t, u, &mut base);
        for b in [Backend::Soa, Backend::Simd] {
            let mut psi = vec![0.0; ns];
            evaluate_v(b, &t, u, &mut psi);
            assert_eq!(psi, base, "backend {b}");
        }
    }

    #[test]
    fn vgh_backends_bitwise_identical() {
        let (coefs, grid, ns) = table([6, 5, 7], 9, 42);
        let t = view(&coefs, grid, ns);
        let u = [0.9, 0.45, 0.63];
        let mk = || (vec![0.0; ns], vec![0.0; 3 * ns], vec![0.0; 6 * ns]);
        let (mut p0, mut g0, mut h0) = mk();
        evaluate_vgh(Backend::Reference, &t, u, &mut p0, &mut g0, &mut h0);
        for b in [Backend::Soa, Backend::Simd] {
            let (mut p, mut g, mut h) = mk();
            evaluate_vgh(b, &t, u, &mut p, &mut g, &mut h);
            assert_eq!(p, p0, "backend {b} psi");
            assert_eq!(g, g0, "backend {b} grad");
            assert_eq!(h, h0, "backend {b} hess");
        }
    }

    #[test]
    fn vgl_backends_bitwise_identical() {
        let (coefs, grid, ns) = table([5, 5, 5], 13, 7);
        let t = view(&coefs, grid, ns);
        let u = [0.311, 0.742, 0.568];
        let gmat = [[0.5, 0.0, 0.0], [0.0, 0.25, 0.0], [0.0, 0.0, 0.2]];
        let lapmet = [0.25, 0.0, 0.0, 0.0625, 0.0, 0.04];
        let mk = || (vec![0.0; ns], vec![0.0; 3 * ns], vec![0.0; ns]);
        let (mut p0, mut g0, mut l0) = mk();
        evaluate_vgl(
            Backend::Reference,
            &t,
            u,
            &gmat,
            &lapmet,
            &mut p0,
            &mut g0,
            &mut l0,
        );
        for b in [Backend::Soa, Backend::Simd] {
            let (mut p, mut g, mut l) = mk();
            evaluate_vgl(b, &t, u, &gmat, &lapmet, &mut p, &mut g, &mut l);
            assert_eq!(p, p0, "backend {b} psi");
            assert_eq!(g, g0, "backend {b} grad");
            assert_eq!(l, l0, "backend {b} lap");
        }
    }
}
