//! Single-particle orbital (SPO) sets.
//!
//! [`SpoSet`] produces the values / gradients / Laplacians of all orbitals
//! at a point. The production implementation is [`BsplineSpo`], wrapping the
//! tricubic multi-spline tables of `qmc-bspline` (with the paper's Ref and
//! Current loop orders and either precision); [`CosineSpo`] is an analytic
//! plane-wave-like set used for correctness tests where every derivative is
//! known in closed form.

use qmc_bspline::MultiBspline3D;
use qmc_containers::{Pos, Real, TinyVector};
use qmc_instrument::{add_flops_bytes, time_kernel, Kernel};
use qmc_kernels::Backend;
use qmc_particles::CrystalLattice;
use std::sync::Arc;

/// A set of single-particle orbitals evaluated at arbitrary positions.
///
/// Gradients and Laplacians are returned in Cartesian coordinates; scratch
/// slices are sized by [`SpoSet::size`].
pub trait SpoSet<T: Real>: Send + Sync {
    /// Number of orbitals.
    fn size(&self) -> usize;

    /// Values of all orbitals at `pos` (used for NLPP ratio evaluations;
    /// the paper's `Bspline-v` kernel).
    fn evaluate_v(&mut self, pos: Pos<T>, psi: &mut [T]);

    /// Values, Cartesian gradients (3 slabs of `size()`) and Laplacians of
    /// all orbitals at `pos` (the `Bspline-vgh` + `SPO-vgl` kernels).
    fn evaluate_vgl(&mut self, pos: Pos<T>, psi: &mut [T], grad: &mut [T], lap: &mut [T]);

    /// Batched (multi-walker) VGL: evaluates one position per walker in a
    /// single call. Outputs are walker-major — walker `w` owns
    /// `psi[w*ns..]`, `grad[w*3*ns..]`, `lap[w*ns..]` with `ns = size()`.
    ///
    /// The default loops the scalar [`Self::evaluate_vgl`] (bit-identical
    /// to per-walker evaluation by construction); table-backed sets
    /// override it with a fused one-pass kernel over the shared
    /// coefficients.
    // qmclint: allow(timer-coverage) — delegates to evaluate_vgl, which is
    // already timed under Kernel::BsplineVGH/SpoVGL; a wrapper timer here
    // would double-count.
    fn mw_evaluate_vgl(&mut self, pos: &[Pos<T>], psi: &mut [T], grad: &mut [T], lap: &mut [T]) {
        let ns = self.size();
        for (w, &p) in pos.iter().enumerate() {
            self.evaluate_vgl(
                p,
                &mut psi[w * ns..(w + 1) * ns],
                &mut grad[w * 3 * ns..(w + 1) * 3 * ns],
                &mut lap[w * ns..(w + 1) * ns],
            );
        }
    }

    /// Batched value-only evaluation: point `q` owns `psi[q*ns..]`.
    /// Per-point results are **bitwise identical** to [`Self::evaluate_v`]
    /// at the same position on every implementation — this is the NLPP
    /// quadrature fast path, where one electron's rotated quadrature
    /// positions share a single dispatch instead of one call (and one
    /// timer scope) per point.
    // qmclint: allow(timer-coverage) — delegates to evaluate_v, which is
    // already timed under Kernel::BsplineV; a wrapper timer here would
    // double-count.
    fn mw_evaluate_v(&mut self, pos: &[Pos<T>], psi: &mut [T]) {
        let ns = self.size();
        for (q, &p) in pos.iter().enumerate() {
            self.evaluate_v(p, &mut psi[q * ns..(q + 1) * ns]);
        }
    }
}

/// Evaluation strategy for [`BsplineSpo`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpoLayout {
    /// Baseline spline-outer loops (strided accesses).
    Ref,
    /// Optimized spline-innermost loops (contiguous SIMD slabs).
    Soa,
}

/// B-spline-backed SPO set on a periodic cell. The coefficient table is
/// shared (`Arc`) between all walkers/threads, as in QMCPACK where the
/// read-only table is the single biggest allocation (Table 1).
pub struct BsplineSpo<T: Real> {
    table: Arc<MultiBspline3D<T>>,
    lattice: CrystalLattice<T>,
    layout: SpoLayout,
    /// Kernel backend captured at construction: the `Ref` layout pins the
    /// scalar reference backend; the `Soa` layout takes the process-wide
    /// selection (`QMC_KERNEL_BACKEND` / `--backend`).
    backend: Backend,
    /// Precontracted fractional-to-Cartesian gradient matrix (fused
    /// batched-VGL path).
    gmat: [[T; 3]; 3],
    /// Precontracted packed Laplacian metric (off-diagonals doubled).
    lapmet: [T; 6],
    /// Scratch for fractional-space gradients (3 slabs).
    scratch_grad: Vec<T>,
    /// Scratch for fractional-space Hessians (6 slabs).
    scratch_hess: Vec<T>,
    /// Scratch for per-walker fractional coordinates (batched VGL path);
    /// grown once to the crowd size, then reused allocation-free.
    scratch_frac: Vec<[T; 3]>,
}

// Scratch is per-instance; instances are cloned per thread.
impl<T: Real> Clone for BsplineSpo<T> {
    fn clone(&self) -> Self {
        Self {
            table: Arc::clone(&self.table),
            lattice: self.lattice.clone(),
            layout: self.layout,
            backend: self.backend,
            gmat: self.gmat,
            lapmet: self.lapmet,
            scratch_grad: self.scratch_grad.clone(),
            scratch_hess: self.scratch_hess.clone(),
            scratch_frac: self.scratch_frac.clone(),
        }
    }
}

impl<T: Real> BsplineSpo<T> {
    /// Wraps a shared spline table for a given cell and loop order.
    pub fn new(
        table: Arc<MultiBspline3D<T>>,
        lattice: CrystalLattice<T>,
        layout: SpoLayout,
    ) -> Self {
        let ns = table.num_splines();
        let gmat = lattice.grad_transform();
        let lapmet = lattice.laplacian_metric();
        let backend = match layout {
            SpoLayout::Ref => Backend::Reference,
            SpoLayout::Soa => Backend::current(),
        };
        Self {
            table,
            lattice,
            layout,
            backend,
            gmat,
            lapmet,
            scratch_grad: vec![T::ZERO; 3 * ns],
            scratch_hess: vec![T::ZERO; 6 * ns],
            scratch_frac: Vec::new(),
        }
    }

    /// Bytes of the shared coefficient table.
    pub fn table_bytes(&self) -> usize {
        self.table.bytes()
    }

    fn to_frac(&self, pos: Pos<T>) -> [T; 3] {
        let f = self.lattice.to_frac(pos);
        [f[0], f[1], f[2]]
    }
}

impl<T: Real> SpoSet<T> for BsplineSpo<T> {
    fn size(&self) -> usize {
        self.table.num_splines()
    }

    fn evaluate_v(&mut self, pos: Pos<T>, psi: &mut [T]) {
        let u = self.to_frac(pos);
        let ns = self.size();
        time_kernel(Kernel::BsplineV, || {
            self.table.evaluate_v_backend(self.backend, u, psi);
        });
        add_flops_bytes(
            Kernel::BsplineV,
            (128 * ns) as u64,
            (64 * ns * std::mem::size_of::<T>()) as u64,
        );
    }

    fn evaluate_vgl(&mut self, pos: Pos<T>, psi: &mut [T], grad: &mut [T], lap: &mut [T]) {
        let u = self.to_frac(pos);
        let ns = self.size();
        assert!(grad.len() >= 3 * ns && lap.len() >= ns);
        let Self {
            table,
            lattice,
            backend,
            scratch_grad: fg,
            scratch_hess: fh,
            ..
        } = self;
        time_kernel(Kernel::BsplineVGH, || {
            table.evaluate_vgh_backend(*backend, u, psi, fg, fh);
        });
        add_flops_bytes(
            Kernel::BsplineVGH,
            (64 * 20 * ns) as u64,
            ((64 + 10) * ns * std::mem::size_of::<T>()) as u64,
        );
        // Transform fractional derivatives to Cartesian (SPO-vgl stage).
        time_kernel(Kernel::SpoVGL, || {
            for s in 0..ns {
                let gf = TinyVector([fg[s], fg[ns + s], fg[2 * ns + s]]);
                let gc = lattice.frac_grad_to_cart(gf);
                grad[s] = gc[0];
                grad[ns + s] = gc[1];
                grad[2 * ns + s] = gc[2];
                lap[s] = lattice.frac_hess_to_cart_laplacian([
                    fh[s],
                    fh[ns + s],
                    fh[2 * ns + s],
                    fh[3 * ns + s],
                    fh[4 * ns + s],
                    fh[5 * ns + s],
                ]);
            }
        });
        add_flops_bytes(
            Kernel::SpoVGL,
            (40 * ns) as u64,
            (10 * ns * std::mem::size_of::<T>()) as u64,
        );
    }

    /// Fused batched VGL: one pass over the shared coefficient table per
    /// walker with the fractional-to-Cartesian transform precontracted into
    /// the stencil weights — 5 accumulation slabs instead of 10 plus a
    /// transform pass. Not bit-identical to the scalar
    /// `vgh`-then-transform path, so it only backs the batched API.
    fn mw_evaluate_vgl(&mut self, pos: &[Pos<T>], psi: &mut [T], grad: &mut [T], lap: &mut [T]) {
        let ns = self.size();
        let nw = pos.len();
        assert!(psi.len() >= nw * ns && grad.len() >= 3 * nw * ns && lap.len() >= nw * ns);
        // Reuse the per-instance scratch: grows to the crowd size on the
        // first batch, then stays allocation-free on the steady-state path.
        let mut us = std::mem::take(&mut self.scratch_frac);
        if us.len() < nw {
            us.resize(nw, [T::ZERO; 3]);
        }
        for (u, &p) in us[..nw].iter_mut().zip(pos.iter()) {
            *u = self.to_frac(p);
        }
        time_kernel(Kernel::BsplineMwVGL, || {
            self.table.mw_evaluate_vgl_backend(
                self.backend,
                &us[..nw],
                &self.gmat,
                &self.lapmet,
                psi,
                grad,
                lap,
            );
        });
        self.scratch_frac = us;
        add_flops_bytes(
            Kernel::BsplineMwVGL,
            (64 * 14 * ns * nw) as u64,
            ((64 * 5 + 5) * ns * nw * std::mem::size_of::<T>()) as u64,
        );
    }

    /// Fused batched value-only path: one backend dispatch and one timer
    /// scope for the whole quadrature batch. Per-point results are bitwise
    /// identical to the scalar `evaluate_v` (same kernel, same backend).
    fn mw_evaluate_v(&mut self, pos: &[Pos<T>], psi: &mut [T]) {
        let ns = self.size();
        let nq = pos.len();
        assert!(psi.len() >= nq * ns);
        let mut us = std::mem::take(&mut self.scratch_frac);
        if us.len() < nq {
            us.resize(nq, [T::ZERO; 3]);
        }
        for (u, &p) in us[..nq].iter_mut().zip(pos.iter()) {
            *u = self.to_frac(p);
        }
        time_kernel(Kernel::BsplineV, || {
            self.table
                .mw_evaluate_v_backend(self.backend, &us[..nq], psi);
        });
        self.scratch_frac = us;
        add_flops_bytes(
            Kernel::BsplineV,
            (128 * ns * nq) as u64,
            (64 * ns * nq * std::mem::size_of::<T>()) as u64,
        );
    }
}

/// Analytic cosine ("plane-wave-like") orbitals for tests:
/// `phi_s(r) = cos(k_s . r + phase_s)`.
#[derive(Clone)]
pub struct CosineSpo<T: Real> {
    ks: Vec<Pos<f64>>,
    phases: Vec<f64>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Real> CosineSpo<T> {
    /// Builds `n` orbitals commensurate with an orthorhombic cell of edges
    /// `l` (so the orbitals are periodic on the cell).
    pub fn new(n: usize, l: [f64; 3]) -> Self {
        use std::f64::consts::TAU;
        let mut ks = Vec::with_capacity(n);
        let mut phases = Vec::with_capacity(n);
        // Enumerate small integer k-vectors deterministically.
        let mut m = 0i64;
        'outer: for shell in 0i64.. {
            for ix in -shell..=shell {
                for iy in -shell..=shell {
                    for iz in -shell..=shell {
                        if ix.abs().max(iy.abs()).max(iz.abs()) != shell {
                            continue;
                        }
                        // qmclint: allow(precision-cast) — analytic test
                        // SPO builds its k-table in f64 by design.
                        let k = |i: i64, edge: f64| TAU * i as f64 / edge;
                        ks.push(TinyVector([k(ix, l[0]), k(iy, l[1]), k(iz, l[2])]));
                        // qmclint: allow(precision-cast) — phase offsets are
                        // part of the same deliberate f64 reference table.
                        phases.push(0.4 + 0.3 * m as f64);
                        m += 1;
                        if ks.len() == n {
                            break 'outer;
                        }
                    }
                }
            }
        }
        Self {
            ks,
            phases,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Real> SpoSet<T> for CosineSpo<T> {
    fn size(&self) -> usize {
        self.ks.len()
    }

    fn evaluate_v(&mut self, pos: Pos<T>, psi: &mut [T]) {
        let p: Pos<f64> = pos.cast();
        for (s, out) in psi[..self.ks.len()].iter_mut().enumerate() {
            *out = T::from_f64((self.ks[s].dot(&p) + self.phases[s]).cos());
        }
    }

    fn evaluate_vgl(&mut self, pos: Pos<T>, psi: &mut [T], grad: &mut [T], lap: &mut [T]) {
        let p: Pos<f64> = pos.cast();
        let ns = self.ks.len();
        for s in 0..ns {
            let arg = self.ks[s].dot(&p) + self.phases[s];
            let (sin, cos) = arg.sin_cos();
            psi[s] = T::from_f64(cos);
            for d in 0..3 {
                grad[d * ns + s] = T::from_f64(-self.ks[s][d] * sin);
            }
            lap[s] = T::from_f64(-self.ks[s].norm2() * cos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_spo_derivatives_analytic() {
        let mut spo = CosineSpo::<f64>::new(5, [4.0, 5.0, 6.0]);
        let pos = TinyVector([1.1, 2.2, 0.7]);
        let ns = 5;
        let mut psi = vec![0.0; ns];
        let mut grad = vec![0.0; 3 * ns];
        let mut lap = vec![0.0; ns];
        spo.evaluate_vgl(pos, &mut psi, &mut grad, &mut lap);
        // Finite differences on evaluate_v.
        let eps = 1e-6;
        for d in 0..3 {
            let mut pp = pos;
            pp[d] += eps;
            let mut pm = pos;
            pm[d] -= eps;
            let (mut vp, mut vm) = (vec![0.0; ns], vec![0.0; ns]);
            spo.evaluate_v(pp, &mut vp);
            spo.evaluate_v(pm, &mut vm);
            for s in 0..ns {
                let fd = (vp[s] - vm[s]) / (2.0 * eps);
                assert!((grad[d * ns + s] - fd).abs() < 1e-8, "d={d} s={s}");
            }
        }
        // Laplacian via sum of second differences.
        let mut l_fd = vec![0.0; ns];
        for d in 0..3 {
            let mut pp = pos;
            pp[d] += eps;
            let mut pm = pos;
            pm[d] -= eps;
            let (mut vp, mut vm) = (vec![0.0; ns], vec![0.0; ns]);
            spo.evaluate_v(pp, &mut vp);
            spo.evaluate_v(pm, &mut vm);
            for s in 0..ns {
                l_fd[s] += (vp[s] - 2.0 * psi[s] + vm[s]) / (eps * eps);
            }
        }
        for s in 0..ns {
            assert!(
                (lap[s] - l_fd[s]).abs() < 1e-3 * (1.0 + l_fd[s].abs()),
                "s={s}"
            );
        }
    }

    #[test]
    fn bspline_spo_layouts_agree() {
        let lat = CrystalLattice::<f64>::orthorhombic([3.0, 4.0, 5.0]);
        let table = Arc::new(MultiBspline3D::<f64>::random([6, 6, 6], 7, 13));
        let mut spo_ref = BsplineSpo::new(Arc::clone(&table), lat.clone(), SpoLayout::Ref);
        let mut spo_soa = BsplineSpo::new(table, lat, SpoLayout::Soa);
        let pos = TinyVector([1.3, 0.4, 4.1]);
        let ns = 7;
        let (mut p1, mut p2) = (vec![0.0; ns], vec![0.0; ns]);
        spo_ref.evaluate_v(pos, &mut p1);
        spo_soa.evaluate_v(pos, &mut p2);
        for s in 0..ns {
            assert!((p1[s] - p2[s]).abs() < 1e-12);
        }
        let (mut g1, mut g2) = (vec![0.0; 3 * ns], vec![0.0; 3 * ns]);
        let (mut l1, mut l2) = (vec![0.0; ns], vec![0.0; ns]);
        spo_ref.evaluate_vgl(pos, &mut p1, &mut g1, &mut l1);
        spo_soa.evaluate_vgl(pos, &mut p2, &mut g2, &mut l2);
        for i in 0..3 * ns {
            assert!((g1[i] - g2[i]).abs() < 1e-10);
        }
        for s in 0..ns {
            assert!((l1[s] - l2[s]).abs() < 1e-9);
        }
    }

    #[test]
    fn bspline_mw_vgl_matches_scalar_loop() {
        let lat = CrystalLattice::<f64>::orthorhombic([3.0, 4.0, 5.0]);
        let table = Arc::new(MultiBspline3D::<f64>::random([6, 6, 6], 9, 31));
        let mut spo = BsplineSpo::new(table, lat, SpoLayout::Soa);
        let ns = 9;
        let pos = [
            TinyVector([1.3, 0.4, 4.1]),
            TinyVector([0.2, 3.7, 2.9]),
            TinyVector([2.8, 1.1, 0.6]),
            TinyVector([1.9, 2.5, 3.3]),
        ];
        let nw = pos.len();
        // Fused batched path.
        let mut psi_b = vec![0.0; nw * ns];
        let mut grad_b = vec![0.0; 3 * nw * ns];
        let mut lap_b = vec![0.0; nw * ns];
        spo.mw_evaluate_vgl(&pos, &mut psi_b, &mut grad_b, &mut lap_b);
        // Scalar loop reference.
        for (w, &p) in pos.iter().enumerate() {
            let mut psi = vec![0.0; ns];
            let mut grad = vec![0.0; 3 * ns];
            let mut lap = vec![0.0; ns];
            spo.evaluate_vgl(p, &mut psi, &mut grad, &mut lap);
            for s in 0..ns {
                assert!((psi_b[w * ns + s] - psi[s]).abs() < 1e-12, "w={w} s={s}");
                assert!(
                    (lap_b[w * ns + s] - lap[s]).abs() < 1e-9 * (1.0 + lap[s].abs()),
                    "w={w} s={s}"
                );
            }
            for i in 0..3 * ns {
                assert!(
                    (grad_b[w * 3 * ns + i] - grad[i]).abs() < 1e-10,
                    "w={w} i={i}"
                );
            }
        }
    }

    #[test]
    fn cosine_mw_vgl_default_is_bitwise_scalar_loop() {
        let mut spo = CosineSpo::<f64>::new(6, [4.0, 5.0, 6.0]);
        let ns = 6;
        let pos = [TinyVector([1.1, 2.2, 0.7]), TinyVector([3.0, 0.5, 4.4])];
        let nw = pos.len();
        let mut psi_b = vec![0.0; nw * ns];
        let mut grad_b = vec![0.0; 3 * nw * ns];
        let mut lap_b = vec![0.0; nw * ns];
        spo.mw_evaluate_vgl(&pos, &mut psi_b, &mut grad_b, &mut lap_b);
        for (w, &p) in pos.iter().enumerate() {
            let mut psi = vec![0.0; ns];
            let mut grad = vec![0.0; 3 * ns];
            let mut lap = vec![0.0; ns];
            spo.evaluate_vgl(p, &mut psi, &mut grad, &mut lap);
            assert_eq!(&psi_b[w * ns..(w + 1) * ns], &psi[..]);
            assert_eq!(&grad_b[w * 3 * ns..(w + 1) * 3 * ns], &grad[..]);
            assert_eq!(&lap_b[w * ns..(w + 1) * ns], &lap[..]);
        }
    }

    #[test]
    fn bspline_spo_gradient_finite_difference() {
        let lat = CrystalLattice::<f64>::orthorhombic([3.0, 3.0, 3.0]);
        let table = Arc::new(MultiBspline3D::<f64>::random([8, 8, 8], 3, 21));
        let mut spo = BsplineSpo::new(table, lat, SpoLayout::Soa);
        let pos = TinyVector([0.77, 1.93, 2.46]);
        let ns = 3;
        let mut psi = vec![0.0; ns];
        let mut grad = vec![0.0; 3 * ns];
        let mut lap = vec![0.0; ns];
        spo.evaluate_vgl(pos, &mut psi, &mut grad, &mut lap);
        let eps = 1e-6;
        for d in 0..3 {
            let mut pp = pos;
            pp[d] += eps;
            let mut pm = pos;
            pm[d] -= eps;
            let (mut vp, mut vm) = (vec![0.0; ns], vec![0.0; ns]);
            spo.evaluate_v(pp, &mut vp);
            spo.evaluate_v(pm, &mut vm);
            for s in 0..ns {
                let fd = (vp[s] - vm[s]) / (2.0 * eps);
                assert!(
                    (grad[d * ns + s] - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                    "d={d} s={s}: {} vs {fd}",
                    grad[d * ns + s]
                );
            }
        }
    }
}
