//! The full miniapp (§7.1): a DMC calculation with particle-by-particle
//! updates and non-local pseudopotentials on a benchmark workload, for any
//! code version of the paper's ladder. Prints throughput and the hot-spot
//! profile, or emits the structured run report / Chrome trace. Long runs
//! can checkpoint (`--checkpoint`), resume bitwise (`--resume`) and stream
//! telemetry (`--stream`).
//!
//! ```text
//! miniqmc --benchmark nio32 --size scaled --code current \
//!         --threads 4 --walkers 16 --steps 20 --tau 0.005 \
//!         --checkpoint ck.qmc:5 --stream run.ndjson --profile json
//! ```

use miniqmc::Options;
use qmc_crowd::{run_vmc_crowd_controlled, Crowd};
use qmc_drivers::{
    initial_population, population_digest, run_vmc_controlled, Batching, CheckpointSpec,
    RunControl, VmcParams,
};
use qmc_instrument::{
    chrome_trace_json, enable_tracing, take_trace_events, BlockEvent, StreamWriter,
};
use qmc_workloads::{
    checkpoint_step, run_dmc_benchmark_controlled, BenchControl, Benchmark, CodeVersion, RunConfig,
    Size, Workload,
};

const USAGE: &str = "miniqmc: full QMC miniapp (paper §7.1)\n\
     --benchmark graphite|be64|nio32|nio64 (default nio32)\n\
     --size scaled|full (default scaled)\n\
     --code ref|refmp|soa|current|delayedK (default current)\n\
     --backend reference|soa|simd   kernel backend (default: the\n\
         QMC_KERNEL_BACKEND environment variable, else soa)\n\
     --threads N --walkers N --steps N --warmup N --tau X --seed N\n\
     --crowd W   lock-step crowds of W walkers (0/absent: per-walker)\n\
     --fused-refresh   with --crowd: route block refreshes through the\n\
         fused multi-walker SPO kernel (Bspline-mw-vgl); trades bitwise\n\
         parity with the per-walker drive for batched throughput\n\
     --driver dmc|vmc (default dmc)\n\
     --checkpoint PATH[:EVERY]   write a qmc-checkpoint/1 file after\n\
         every EVERY completed generations/blocks (default 1); the file\n\
         is replaced atomically, so a killed job keeps its last one\n\
     --resume PATH   resume bitwise from a checkpoint (walker RNG\n\
         streams, estimator and branching state restore exactly);\n\
         --steps is the run's TOTAL step count, not additional steps\n\
     --stream PATH   append qmc-run-report-stream/1 NDJSON telemetry\n\
         (start/block/trace/checkpoint/end records) as blocks complete\n\
     --profile summary|json|trace:PATH (default summary)\n\
         summary     human-readable run report + hot-spot table\n\
         json        machine-readable RunReport JSON on stdout\n\
         trace:PATH  also write a Chrome trace_event file to PATH\n\
                     (open in chrome://tracing or ui.perfetto.dev)";

/// Prints the offending value and the usage text to stderr, then exits
/// nonzero (bad invocations must not panic with a backtrace).
fn fail_usage(msg: &str) -> ! {
    eprintln!("miniqmc: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// Prints a runtime error (I/O, corrupt checkpoint, ...) and exits 1 —
/// clean diagnostics, no panic backtrace.
fn fail_run(msg: &str) -> ! {
    eprintln!("miniqmc: {msg}");
    std::process::exit(1);
}

fn parse_benchmark(s: &str) -> Result<Benchmark, String> {
    match s.to_ascii_lowercase().as_str() {
        "graphite" => Ok(Benchmark::Graphite),
        "be64" | "be-64" => Ok(Benchmark::Be64),
        "nio32" | "nio-32" => Ok(Benchmark::NiO32),
        "nio64" | "nio-64" => Ok(Benchmark::NiO64),
        other => Err(format!(
            "unknown benchmark '{other}' (valid: graphite, be64, nio32, nio64)"
        )),
    }
}

fn parse_code(s: &str) -> Result<CodeVersion, String> {
    match s.to_ascii_lowercase().as_str() {
        "ref" => Ok(CodeVersion::Ref),
        "refmp" | "ref+mp" => Ok(CodeVersion::RefMp),
        "soadp" | "soa" => Ok(CodeVersion::SoaDouble),
        "current" => Ok(CodeVersion::Current),
        other => {
            if let Some(k) = other.strip_prefix("delayed") {
                Ok(CodeVersion::CurrentDelayed(k.parse().unwrap_or(16)))
            } else {
                Err(format!(
                    "unknown code version '{other}' (valid: ref, refmp, soa, current, delayedK)"
                ))
            }
        }
    }
}

/// Output mode of `--profile`.
enum ProfileMode {
    Summary,
    Json,
    Trace(String),
}

fn parse_profile(s: &str) -> Result<ProfileMode, String> {
    match s {
        "summary" => Ok(ProfileMode::Summary),
        "json" => Ok(ProfileMode::Json),
        other => {
            if let Some(path) = other.strip_prefix("trace:") {
                if path.is_empty() {
                    Err("trace mode needs a path: --profile trace:out.json".into())
                } else {
                    Ok(ProfileMode::Trace(path.to_string()))
                }
            } else {
                Err(format!(
                    "unknown profile mode '{other}' (valid: summary, json, trace:PATH)"
                ))
            }
        }
    }
}

fn main() {
    let opts = Options::from_env();
    if opts.has_flag("help") || opts.has_flag("h") {
        println!("{USAGE}");
        return;
    }
    let benchmark = parse_benchmark(opts.get_str("benchmark").unwrap_or("nio32"))
        .unwrap_or_else(|e| fail_usage(&e));
    let size = match opts.get_str("size").unwrap_or("scaled") {
        "full" => Size::Full,
        _ => Size::Scaled,
    };
    let code =
        parse_code(opts.get_str("code").unwrap_or("current")).unwrap_or_else(|e| fail_usage(&e));
    let mode = parse_profile(opts.get_str("profile").unwrap_or("summary"))
        .unwrap_or_else(|e| fail_usage(&e));
    // Pin the kernel backend before any engine/table is built — engines
    // capture it at construction.
    if let Some(b) = opts.get_str("backend") {
        let backend = qmc_kernels::Backend::parse(b).unwrap_or_else(|e| fail_usage(&e));
        qmc_kernels::set_backend(backend);
    }
    let crowd = opts.get("crowd", 0usize);
    let cfg = RunConfig {
        threads: opts.get("threads", 2usize),
        walkers: opts.get("walkers", 8usize),
        steps: opts.get("steps", 10usize),
        warmup: opts.get("warmup", 2usize),
        tau: opts.get("tau", 0.005f64),
        seed: opts.get("seed", 42u64),
        batching: if crowd > 0 {
            Batching::Crowd(crowd)
        } else {
            Batching::PerWalker
        },
        fused_refresh: opts.has_flag("fused-refresh"),
    };
    if cfg.fused_refresh && crowd == 0 {
        fail_usage("--fused-refresh requires --crowd W");
    }
    let checkpoint = opts
        .get_str("checkpoint")
        .map(|s| CheckpointSpec::parse(s).unwrap_or_else(|e| fail_usage(&e)));
    let resume = opts.get_str("resume");
    let stream_path = opts.get_str("stream");

    // In JSON mode stdout carries only the report; everything human goes
    // to stderr.
    let json_mode = matches!(mode, ProfileMode::Json);
    macro_rules! say {
        ($($arg:tt)*) => {
            if json_mode { eprintln!($($arg)*) } else { println!($($arg)*) }
        };
    }

    let workload = Workload::new(benchmark, size, cfg.seed);
    say!(
        "miniqmc: {} ({:?}), N = {} electrons, {} ions, {} orbitals/spin",
        workload.spec.name,
        size,
        workload.num_electrons(),
        workload.num_ions(),
        workload.num_orbitals()
    );
    say!(
        "code = {}, backend = {}, threads = {}, walkers = {}, steps = {} (+{} warmup), tau = {}, batching = {}",
        code.label(),
        qmc_kernels::Backend::current(),
        cfg.threads,
        cfg.walkers,
        cfg.steps,
        cfg.warmup,
        cfg.tau,
        match cfg.batching {
            Batching::PerWalker => "per-walker".to_string(),
            Batching::Crowd(w) => format!("crowd({w})"),
        }
    );

    if opts.get_str("driver") == Some("vmc") {
        if json_mode {
            fail_usage("--profile json is only available for the DMC driver");
        }
        run_vmc_mode(
            &workload,
            code,
            &cfg,
            &mode,
            checkpoint,
            resume,
            stream_path,
        );
        return;
    }

    let trace_file = matches!(mode, ProfileMode::Trace(_));
    if trace_file {
        enable_tracing(true);
    }
    // With a stream but no trace file, spans drain into the stream per
    // block; a requested trace file keeps them all for itself.
    let stream_trace = stream_path.is_some() && !trace_file;
    if stream_trace {
        enable_tracing(true);
    }

    let mut stream = open_stream(stream_path, resume.is_some());
    if let Some(s) = stream.as_mut() {
        let resumed_from = resume.map(|p| {
            checkpoint_step(p, code.single_precision())
                .unwrap_or_else(|e| fail_run(&format!("cannot resume from {p}: {e}")))
        });
        s.start(
            "dmc",
            workload.spec.name,
            &code.label(),
            qmc_kernels::Backend::current().label(),
            cfg.threads,
            cfg.walkers,
            cfg.steps,
            resumed_from,
        )
        .unwrap_or_else(|e| fail_run(&format!("cannot write stream: {e}")));
    }

    let spec_for_stream = checkpoint.clone();
    let mut on_block = |ev: &BlockEvent| {
        if let Some(s) = stream.as_mut() {
            s.block(ev).ok();
            if stream_trace {
                s.trace_events(&take_trace_events()).ok();
            }
            if let Some(spec) = spec_for_stream.as_ref() {
                if spec.due(ev.step as usize) {
                    s.checkpoint(ev.step, &spec.path).ok();
                }
            }
        }
    };
    let ctl = BenchControl {
        resume,
        checkpoint,
        on_block: if stream_path.is_some() {
            Some(&mut on_block)
        } else {
            None
        },
    };
    let out = run_dmc_benchmark_controlled(&workload, code, &cfg, ctl)
        .unwrap_or_else(|e| fail_run(&format!("cannot resume: {e}")));
    let report = out.report(&workload, &cfg);
    if let Some(s) = stream.as_mut() {
        s.end(
            out.seconds,
            out.samples,
            out.energy.0,
            out.energy.1,
            out.acceptance,
            out.walker_hash,
        )
        .ok();
    }

    match mode {
        ProfileMode::Json => {
            println!("{}", report.to_json());
        }
        ProfileMode::Summary | ProfileMode::Trace(_) => {
            println!();
            println!(
                "throughput       {:>12.2} samples/s   ({} samples in {:.3} s)",
                out.throughput(),
                out.samples,
                out.seconds
            );
            println!(
                "energy           {:>12.4} +- {:.4}  (tau_corr {:.1})",
                out.energy.0, out.energy.1, out.energy.2
            );
            println!("acceptance       {:>12.3}", out.acceptance);
            println!("walker-hash      {:016x}", out.walker_hash);
            println!(
                "DMC efficiency   {:>12.3e}  (kappa = 1/(sigma^2 tau_corr T_MC), §3)",
                out.kappa()
            );
            println!(
                "memory           walker {:.2} MiB, engine {:.2} MiB, spline table {:.2} MiB",
                out.walker_bytes as f64 / (1 << 20) as f64,
                out.engine_bytes as f64 / (1 << 20) as f64,
                out.table_bytes as f64 / (1 << 20) as f64
            );
            if report.drift.refreshes > 0 {
                println!(
                    "mp drift         mean |dlogpsi| {:.3e}, max {:.3e} over {} refreshes",
                    report.drift.mean_abs(),
                    report.drift.max_abs,
                    report.drift.refreshes
                );
            }
            println!();
            println!("hot-spot profile (merged over threads):");
            print!("{}", out.profile.to_table());
            if let ProfileMode::Trace(path) = mode {
                write_trace(&path);
            }
        }
    }
}

/// Opens the NDJSON telemetry stream: truncate for a fresh run, append
/// when resuming (the stream continues across restarts).
fn open_stream(path: Option<&str>, resuming: bool) -> Option<StreamWriter> {
    path.map(|p| {
        let s = if resuming {
            StreamWriter::append(p)
        } else {
            StreamWriter::create(p)
        };
        s.unwrap_or_else(|e| fail_run(&format!("cannot open stream {p}: {e}")))
    })
}

/// Drains collected spans and writes the Chrome trace file.
fn write_trace(path: &str) {
    enable_tracing(false);
    let events = take_trace_events();
    let json = chrome_trace_json(&events);
    match std::fs::write(path, &json) {
        Ok(()) => println!(
            "\ntrace: {} spans -> {path} (open in chrome://tracing or ui.perfetto.dev)",
            events.len()
        ),
        Err(e) => {
            eprintln!("miniqmc: cannot write trace to {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// VMC mode: a variational run with per-block recompute — one engine, or
/// one lock-step crowd when `--crowd W` is given (results are identical).
/// Checkpoint/resume/stream work exactly as in DMC mode, against VMC
/// checkpoints.
fn run_vmc_mode(
    workload: &Workload,
    code: CodeVersion,
    cfg: &RunConfig,
    mode: &ProfileMode,
    checkpoint: Option<CheckpointSpec>,
    resume: Option<&str>,
    stream_path: Option<&str>,
) {
    let params = VmcParams {
        blocks: (cfg.steps / 4).max(1),
        steps_per_block: 4,
        tau: cfg.tau.max(0.05),
        measure_every: 1,
        batching: cfg.batching,
    };
    println!(
        "driver = VMC: {} blocks x {} sweeps",
        params.blocks, params.steps_per_block
    );
    let trace_file = matches!(mode, ProfileMode::Trace(_));
    if trace_file {
        enable_tracing(true);
    }
    let stream_trace = stream_path.is_some() && !trace_file;
    if stream_trace {
        enable_tracing(true);
    }
    let mut stream = open_stream(stream_path, resume.is_some());
    macro_rules! go {
        ($build:expr) => {{
            let (mut walkers, resume_state) = match resume {
                Some(p) => match qmc_drivers::read_vmc_checkpoint(p) {
                    Ok((state, ws)) => (ws, Some(state)),
                    Err(e) => fail_run(&format!("cannot resume from {p}: {e}")),
                },
                None => (
                    initial_population(workload.initial_positions(), cfg.walkers, cfg.seed),
                    None,
                ),
            };
            if let Some(s) = stream.as_mut() {
                s.start(
                    "vmc",
                    workload.spec.name,
                    &code.label(),
                    qmc_kernels::Backend::current().label(),
                    1,
                    cfg.walkers,
                    params.blocks,
                    resume_state.as_ref().map(|st| st.block as u64),
                )
                .unwrap_or_else(|e| fail_run(&format!("cannot write stream: {e}")));
            }
            let spec_for_stream = checkpoint.clone();
            let stream_checkpoint = checkpoint;
            let mut on_block = |ev: &BlockEvent| {
                if let Some(s) = stream.as_mut() {
                    s.block(ev).ok();
                    if stream_trace {
                        s.trace_events(&take_trace_events()).ok();
                    }
                    if let Some(spec) = spec_for_stream.as_ref() {
                        if spec.due(ev.step as usize) {
                            s.checkpoint(ev.step, &spec.path).ok();
                        }
                    }
                }
            };
            let mut control = RunControl {
                checkpoint: stream_checkpoint,
                on_block: if stream_path.is_some() {
                    Some(&mut on_block)
                } else {
                    None
                },
            };
            let t0 = std::time::Instant::now();
            let res = match cfg.batching {
                Batching::PerWalker => {
                    let mut engine = $build;
                    run_vmc_controlled(
                        &mut engine,
                        &mut walkers,
                        &params,
                        resume_state,
                        &mut control,
                    )
                }
                Batching::Crowd(_) => {
                    let slots = (0..cfg.batching.crowd_size()).map(|_| $build).collect();
                    let mut crowd = Crowd::new(slots);
                    crowd.set_fused_refresh(cfg.fused_refresh);
                    run_vmc_crowd_controlled(
                        &mut crowd,
                        &mut walkers,
                        &params,
                        resume_state,
                        &mut control,
                    )
                }
            };
            let secs = t0.elapsed().as_secs_f64();
            let hash = population_digest(&walkers);
            let (e, err, tau_corr) = res.energy.blocking();
            println!(
                "VMC energy {:.4} +- {:.4} (tau_corr {:.1}), acceptance {:.3}",
                e, err, tau_corr, res.acceptance
            );
            println!("walker-hash      {:016x}", hash);
            println!(
                "throughput {:.2} sweeps/s ({} sweeps in {:.3} s)",
                res.samples as f64 / secs,
                res.samples,
                secs
            );
            if let Some(s) = stream.as_mut() {
                s.end(secs, res.samples, e, err, res.acceptance, hash).ok();
            }
        }};
    }
    if code.single_precision() {
        go!(workload.build_engine_f32(code));
    } else {
        go!(workload.build_engine_f64(code));
    }
    if let ProfileMode::Trace(path) = mode {
        write_trace(path);
    }
}
