//! Criterion bench: distance-table kernels (the paper's top hot spot).
//!
//! Compares the baseline packed-triangle AoS table against the SoA table
//! for the three operations of the PbyP cycle: full build, candidate-row
//! computation, and the accept-time update (strided scatter vs forward
//! row copy), at two problem sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qmc_containers::TinyVector;
use qmc_particles::{random_positions_in_cell, CrystalLattice, Layout, ParticleSet, Species};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn build(n: usize, layout: Layout) -> ParticleSet<f64> {
    let l = 15.8;
    let lat = CrystalLattice::cubic(l);
    let mut rng = StdRng::seed_from_u64(7);
    let pos = random_positions_in_cell(&lat, n, &mut rng);
    let mut p = ParticleSet::new(
        "e",
        lat,
        vec![(
            Species {
                name: "u".into(),
                charge: -1.0,
            },
            pos,
        )],
    );
    p.add_table_aa(layout);
    p
}

fn bench_distance(c: &mut Criterion) {
    for &n in &[96usize, 384] {
        let mut group = c.benchmark_group(format!("dist_table_N{n}"));
        for (label, layout) in [("aos", Layout::Aos), ("soa", Layout::Soa)] {
            let mut p = build(n, layout);
            group.bench_function(BenchmarkId::new("full_build", label), |b| {
                b.iter(|| {
                    p.update_tables();
                    black_box(&p);
                });
            });
            let newpos = TinyVector([1.234, 5.678, 9.012]);
            group.bench_function(BenchmarkId::new("candidate_row", label), |b| {
                b.iter(|| {
                    p.make_move(n / 2, newpos);
                    p.reject_move(n / 2);
                    black_box(&p);
                });
            });
            group.bench_function(BenchmarkId::new("move_accept", label), |b| {
                b.iter(|| {
                    p.prepare_move(n / 2);
                    p.make_move(n / 2, newpos);
                    p.accept_move(n / 2);
                    black_box(&p);
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_distance);
criterion_main!(benches);
