//! # qmc
//!
//! Top-level facade of the QMC workspace: a Rust reproduction of
//! *"Embracing a new era of highly efficient and productive quantum Monte
//! Carlo simulations"* (Mathuriya, Luo, Clay, Benali, Shulenburger, Kim —
//! SC 2017, arXiv:1708.02645).
//!
//! The library implements a full diffusion/variational quantum Monte Carlo
//! engine twice over, along the paper's optimization ladder:
//!
//! | version   | layout | precision | Jastrow storage | distance tables |
//! |-----------|--------|-----------|-----------------|-----------------|
//! | `Ref`     | AoS    | f64       | `5 N^2` stored  | packed triangle |
//! | `Ref+MP`  | AoS    | f32/f64   | `5 N^2` stored  | packed triangle |
//! | `Current` | SoA    | f32/f64   | `5 N` on-the-fly| padded rows + forward update |
//!
//! See the [`qmc_core::prelude`] (re-exported here as [`prelude`]) for the
//! main types, the `examples/` directory for runnable walkthroughs, and
//! the `qmc-bench` crate for the harnesses that regenerate every figure
//! and table of the paper's evaluation.

pub use qmc_core::prelude;
pub use qmc_core::*;
