//! Delayed determinant-inverse updates (Woodbury identity).
//!
//! §8.4 of the paper identifies `DetUpdate` as the emerging bottleneck and
//! points to delayed-update schemes (McDaniel et al., the paper's ref. 30) based on the
//! Woodbury matrix identity: accumulate up to `delay` accepted row
//! replacements and apply them to the inverse in one blocked (BLAS3-shaped)
//! flush, while answering ratio queries against the *virtually updated*
//! inverse in `O(delay * N)`.
//!
//! Derivation used here (transposed-inverse storage `M = (A^{-1})^T`, base
//! inverse kept unflushed): after accepting replacements of distinct rows
//! `k_a` by vectors `v_a` (a = 0..m), Woodbury gives for any row `r` of the
//! current transposed inverse
//!
//! ```text
//! M'.row(r) = M.row(r) - sum_a y[a] * M.row(k_a),   S y = c,
//! S[a][b]   = dot(M.row(k_b), v_a),
//! c[a]      = dot(M.row(r), v_a) - [k_a == r]
//! ```
//!
//! so a ratio costs one `O(mN)` correction plus a dot product, and the flush
//! applies the same correction to all rows with three `m x N` GEMMs.

use crate::blas::{axpy, dot};
use qmc_containers::{Matrix, Real};

/// Inverse of a Slater matrix with delayed (Woodbury) row updates.
pub struct DelayedInverse<T: Real> {
    /// Transposed inverse of the *base* matrix (excludes pending updates).
    minv_t: Matrix<T>,
    /// Maximum number of accepted updates buffered before a flush.
    delay: usize,
    /// Rows replaced in the current window (distinct by construction).
    ks: Vec<usize>,
    /// Accepted replacement rows, one per entry of `ks`.
    vs: Matrix<T>,
    /// Window Gram matrix `S[a][b] = dot(M.row(k_b), v_a)` in f64.
    s: Matrix<f64>,
    /// Scratch RHS/solution for the per-ratio window solve (<= delay).
    scratch_c: Vec<f64>,
    /// Scratch copy of the Gram matrix consumed by the in-place solves.
    scratch_s: Matrix<f64>,
    /// Flush scratch: the `m x N` correction block `W` (overwritten by
    /// `D = S^{-1} W` during the flush).
    scratch_w: Matrix<f64>,
    /// Flush scratch: copies of the replaced base rows.
    scratch_k: Matrix<T>,
}

/// Solves `S x = y` in place (the solution overwrites `y`) using Gaussian
/// elimination with partial pivoting on a scratch copy of the first
/// `y.len()` rows/cols of `s`. Allocation-free: this sits on the per-ratio
/// hot path of the delayed-update scheme.
fn solve_gauss_vec(scratch: &mut Matrix<f64>, s: &Matrix<f64>, y: &mut [f64]) {
    let m = y.len();
    if m == 1 {
        assert!(s[(0, 0)] != 0.0, "delayed-update window matrix singular");
        y[0] /= s[(0, 0)];
        return;
    }
    for a in 0..m {
        for b in 0..m {
            scratch[(a, b)] = s[(a, b)];
        }
    }
    for p in 0..m {
        let mut piv = p;
        for i in p + 1..m {
            if scratch[(i, p)].abs() > scratch[(piv, p)].abs() {
                piv = i;
            }
        }
        if piv != p {
            for j in 0..m {
                let t = scratch[(p, j)];
                scratch[(p, j)] = scratch[(piv, j)];
                scratch[(piv, j)] = t;
            }
            y.swap(p, piv);
        }
        let d = scratch[(p, p)];
        assert!(d != 0.0, "delayed-update window matrix singular");
        for i in p + 1..m {
            let f = scratch[(i, p)] / d;
            if f == 0.0 {
                continue;
            }
            for j in p + 1..m {
                scratch[(i, j)] -= f * scratch[(p, j)];
            }
            y[i] -= f * y[p];
        }
    }
    for p in (0..m).rev() {
        let mut acc = y[p];
        for q in p + 1..m {
            acc -= scratch[(p, q)] * y[q];
        }
        y[p] = acc / scratch[(p, p)];
    }
}

/// Solves `S X = B` in place over the first `m` rows of `b` (all `ncols`
/// columns at once — the blocked flush-path variant of [`solve_gauss_vec`]).
fn solve_gauss_block(
    scratch: &mut Matrix<f64>,
    s: &Matrix<f64>,
    b: &mut Matrix<f64>,
    m: usize,
    ncols: usize,
) {
    for a in 0..m {
        for q in 0..m {
            scratch[(a, q)] = s[(a, q)];
        }
    }
    for p in 0..m {
        let mut piv = p;
        for i in p + 1..m {
            if scratch[(i, p)].abs() > scratch[(piv, p)].abs() {
                piv = i;
            }
        }
        if piv != p {
            for j in 0..m {
                let t = scratch[(p, j)];
                scratch[(p, j)] = scratch[(piv, j)];
                scratch[(piv, j)] = t;
            }
            for j in 0..ncols {
                let t = b[(p, j)];
                b[(p, j)] = b[(piv, j)];
                b[(piv, j)] = t;
            }
        }
        let d = scratch[(p, p)];
        assert!(d != 0.0, "delayed-update window matrix singular");
        for i in p + 1..m {
            let f = scratch[(i, p)] / d;
            if f == 0.0 {
                continue;
            }
            for j in p + 1..m {
                scratch[(i, j)] -= f * scratch[(p, j)];
            }
            for j in 0..ncols {
                b[(i, j)] -= f * b[(p, j)];
            }
        }
    }
    for p in (0..m).rev() {
        let d = scratch[(p, p)];
        for j in 0..ncols {
            let mut acc = b[(p, j)];
            for q in p + 1..m {
                acc -= scratch[(p, q)] * b[(q, j)];
            }
            b[(p, j)] = acc / d;
        }
    }
}

impl<T: Real> DelayedInverse<T> {
    /// Wraps an existing transposed inverse with a delay window of `delay`
    /// accepted moves (`delay == 1` degenerates to rank-1 behaviour).
    pub fn new(minv_t: Matrix<T>, delay: usize) -> Self {
        assert!(delay >= 1, "delay must be at least 1");
        assert_eq!(minv_t.rows(), minv_t.cols());
        let n = minv_t.rows();
        Self {
            minv_t,
            delay,
            ks: Vec::with_capacity(delay),
            vs: Matrix::zeros(delay, n),
            s: Matrix::zeros(delay, delay),
            scratch_c: vec![0.0; delay],
            scratch_s: Matrix::zeros(delay, delay),
            scratch_w: Matrix::zeros(delay, n),
            scratch_k: Matrix::zeros(delay, n),
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.minv_t.rows()
    }

    /// Number of accepted-but-unflushed updates.
    pub fn pending(&self) -> usize {
        self.ks.len()
    }

    /// Computes row `r` of the *current* (virtually updated) transposed
    /// inverse into `out`. `O(pending * N)` and allocation-free: the window
    /// solve runs on preallocated scratch.
    pub fn inv_row(&mut self, r: usize, out: &mut [T]) {
        let n = self.n();
        assert_eq!(out.len(), n);
        out.copy_from_slice(self.minv_t.row(r));
        let m = self.ks.len();
        if m == 0 {
            return;
        }
        let mut c = std::mem::take(&mut self.scratch_c);
        c.resize(m, 0.0);
        for (a, ca) in c.iter_mut().enumerate() {
            *ca = dot(self.minv_t.row(r), self.vs.row(a)).to_f64();
            if self.ks[a] == r {
                *ca -= 1.0;
            }
        }
        solve_gauss_vec(&mut self.scratch_s, &self.s, &mut c);
        for (a, &ya) in c.iter().enumerate() {
            axpy(T::from_f64(-ya), self.minv_t.row(self.ks[a]), out);
        }
        self.scratch_c = c;
    }

    /// Determinant ratio for replacing row `r` with `v`, against the current
    /// virtually updated inverse. Also returns the inverse row so callers
    /// can compute gradient ratios without a second correction pass.
    pub fn ratio_with_inv_row(&mut self, r: usize, v: &[T], inv_row: &mut [T]) -> T {
        self.inv_row(r, inv_row);
        dot(inv_row, v)
    }

    /// Accepts the replacement of row `r` by `v`. Flushes automatically when
    /// the window fills or when `r` is already in the window (same-row
    /// updates cannot share a Woodbury window).
    pub fn accept(&mut self, r: usize, v: &[T]) {
        assert_eq!(v.len(), self.n());
        if self.ks.len() == self.delay || self.ks.contains(&r) {
            self.flush();
        }
        let m = self.ks.len();
        // Extend the Gram matrix: S[a][m] and S[m][b].
        for a in 0..m {
            self.s[(a, m)] = dot(self.minv_t.row(r), self.vs.row(a)).to_f64();
            self.s[(m, a)] = dot(self.minv_t.row(self.ks[a]), v).to_f64();
        }
        self.s[(m, m)] = dot(self.minv_t.row(r), v).to_f64();
        self.vs.row_mut(m).copy_from_slice(v);
        // qmclint: allow(hot-path) — push into a with_capacity(delay)
        // buffer; the flush above guarantees the window has room, so this
        // never reallocates.
        self.ks.push(r);
        if self.ks.len() == self.delay {
            self.flush();
        }
    }

    /// Applies all pending updates to the base inverse with blocked
    /// (GEMM-shaped) arithmetic and clears the window. Runs entirely on
    /// preallocated scratch.
    pub fn flush(&mut self) {
        let m = self.ks.len();
        if m == 0 {
            return;
        }
        let n = self.n();
        let Self {
            minv_t,
            ks,
            vs,
            s,
            scratch_s,
            scratch_w,
            scratch_k,
            ..
        } = self;

        // W[a][j] = dot(M.row(j), v_a) - [k_a == j]   (m x N)
        for a in 0..m {
            let va = vs.row(a);
            let wa = scratch_w.row_mut(a);
            for j in 0..n {
                wa[j] = dot(minv_t.row(j), va).to_f64();
            }
            wa[ks[a]] -= 1.0;
        }

        // D = S^{-1} W  (m x N), solved as one block; D overwrites W.
        solve_gauss_block(scratch_s, s, scratch_w, m, n);

        // K[a] = copy of base M.row(k_a) before modification.
        for a in 0..m {
            scratch_k.row_mut(a).copy_from_slice(minv_t.row(ks[a]));
        }

        // M.row(j) -= sum_a D[a][j] * K[a]
        for j in 0..n {
            let row = minv_t.row_mut(j);
            for a in 0..m {
                // Split borrow: `scratch_k` and `minv_t` are distinct.
                let coeff = T::from_f64(-scratch_w[(a, j)]);
                axpy(coeff, scratch_k.row(a), row);
            }
        }

        ks.clear();
    }

    /// Flushed transposed inverse. Panics if updates are pending; call
    /// [`Self::flush`] first.
    pub fn minv_t(&self) -> &Matrix<T> {
        assert!(self.ks.is_empty(), "pending delayed updates; flush first");
        &self.minv_t
    }

    /// Replaces the base inverse (e.g. after a from-scratch recompute) and
    /// discards any pending window.
    pub fn reset(&mut self, minv_t: Matrix<T>) {
        assert_eq!(minv_t.rows(), self.n());
        self.minv_t = minv_t;
        self.ks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::updates::{det_ratio_row, sherman_morrison_update, transposed_inverse_log_det};

    fn test_matrix(n: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        Matrix::from_fn(n, n, |i, j| next() + if i == j { 3.0 } else { 0.0 })
    }

    fn new_row(n: usize, k: usize, shift: f64) -> Vec<f64> {
        (0..n)
            .map(|j| 0.07 * (j as f64 + shift) + if j == k { 2.0 } else { 0.3 })
            .collect()
    }

    #[test]
    fn matches_sherman_morrison_through_window_boundaries() {
        let n = 12;
        let a = test_matrix(n, 7);
        let (minv_t, _, _) = transposed_inverse_log_det(&a).unwrap();
        let mut sm = minv_t.clone();
        let mut delayed = DelayedInverse::new(minv_t, 4);

        let mut inv_row = vec![0.0f64; n];
        // Sweep: move every electron once, accepting most; window flushes
        // inside the sweep (delay 4 < 12 moves).
        for k in 0..n {
            let v = new_row(n, k, k as f64);
            let r_sm = det_ratio_row(&sm, k, &v);
            let r_dl = delayed.ratio_with_inv_row(k, &v, &mut inv_row);
            assert!(
                (r_sm - r_dl).abs() < 1e-9 * r_sm.abs().max(1.0),
                "k={k}: {r_sm} vs {r_dl}"
            );
            if k % 3 != 2 {
                // accept
                sherman_morrison_update(&mut sm, k, &v, r_sm);
                delayed.accept(k, &v);
            }
        }
        delayed.flush();
        assert!(delayed.minv_t().max_abs_diff(&sm) < 1e-8);
    }

    #[test]
    fn inv_row_mid_window_matches_rank1_chain() {
        let n = 10;
        let a = test_matrix(n, 11);
        let (minv_t, _, _) = transposed_inverse_log_det(&a).unwrap();
        let mut sm = minv_t.clone();
        let mut delayed = DelayedInverse::new(minv_t, 8);

        for k in [1usize, 4, 6] {
            let v = new_row(n, k, 0.5);
            let r = det_ratio_row(&sm, k, &v);
            sherman_morrison_update(&mut sm, k, &v, r);
            delayed.accept(k, &v);
        }
        assert_eq!(delayed.pending(), 3);
        let mut row = vec![0.0f64; n];
        for r in 0..n {
            delayed.inv_row(r, &mut row);
            for j in 0..n {
                assert!(
                    (row[j] - sm[(r, j)]).abs() < 1e-9,
                    "row {r} col {j}: {} vs {}",
                    row[j],
                    sm[(r, j)]
                );
            }
        }
    }

    #[test]
    fn flush_against_lu_reinversion() {
        let n = 8;
        let mut a = test_matrix(n, 23);
        let (minv_t, _, _) = transposed_inverse_log_det(&a).unwrap();
        let mut delayed = DelayedInverse::new(minv_t, 3);
        for k in [0usize, 5, 2, 7, 3] {
            let v = new_row(n, k, 1.0 + k as f64);
            delayed.accept(k, &v);
            a.row_mut(k).copy_from_slice(&v);
        }
        delayed.flush();
        let (fresh, _, _) = transposed_inverse_log_det(&a).unwrap();
        assert!(delayed.minv_t().max_abs_diff(&fresh) < 1e-8);
    }

    #[test]
    fn same_row_twice_forces_flush() {
        let n = 6;
        let a = test_matrix(n, 31);
        let (minv_t, _, _) = transposed_inverse_log_det(&a).unwrap();
        let mut delayed = DelayedInverse::new(minv_t, 4);
        let v1 = new_row(n, 2, 0.0);
        let v2 = new_row(n, 2, 9.0);
        delayed.accept(2, &v1);
        assert_eq!(delayed.pending(), 1);
        delayed.accept(2, &v2); // must flush the first before buffering
        assert_eq!(delayed.pending(), 1);
        delayed.flush();

        let mut a2 = a.clone();
        a2.row_mut(2).copy_from_slice(&v2);
        let (fresh, _, _) = transposed_inverse_log_det(&a2).unwrap();
        assert!(delayed.minv_t().max_abs_diff(&fresh) < 1e-9);
    }

    #[test]
    fn delay_one_equals_immediate_updates() {
        let n = 5;
        let a = test_matrix(n, 41);
        let (minv_t, _, _) = transposed_inverse_log_det(&a).unwrap();
        let mut sm = minv_t.clone();
        let mut delayed = DelayedInverse::new(minv_t, 1);
        for k in 0..n {
            let v = new_row(n, k, k as f64 * 0.2);
            let r = det_ratio_row(&sm, k, &v);
            sherman_morrison_update(&mut sm, k, &v, r);
            delayed.accept(k, &v);
        }
        delayed.flush();
        assert!(delayed.minv_t().max_abs_diff(&sm) < 1e-10);
    }
}
