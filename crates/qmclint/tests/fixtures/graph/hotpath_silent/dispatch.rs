// fixture-path: crates/kernels/src/dispatch_silent.rs
// fixture-silences: hot-path-call
//! Silence witness for the transitive hot-path rule: a kernel entry
//! whose callee set is an in-file clean helper plus a cold builder
//! (`build_` prefix), which the walk does not traverse.

/// Hot kernel entry: clean body, clean reachable set.
pub fn apply_scale(x: &mut [f64]) -> f64 {
    let mut acc = 0.0;
    for v in x.iter_mut() {
        *v *= 0.5;
        acc += *v;
    }
    tail_sum(acc)
}

/// In-file helper on the hot path: arithmetic only.
fn tail_sum(acc: f64) -> f64 {
    acc + 1.0
}

/// Cold by naming convention: setup code may allocate freely.
pub fn build_scratch(n: usize) -> Vec<f64> {
    let mut scratch = Vec::with_capacity(n);
    scratch.resize(n, 0.0);
    scratch
}
