// fixture-class: physics
// Raw casts and suffixed literals in a physics crate, outside any
// designated mixed-precision module: every one must be flagged.

pub fn narrow(x: f64) -> f32 {
    x as f32 //~ precision-cast
}

pub fn widen(x: f32) -> f64 {
    x as f64 //~ precision-cast
}

pub fn pinned_literals() -> (f32, f64) {
    let a = 1.5f32; //~ precision-cast
    let b = 2.0f64; //~ precision-cast
    (a, b)
}
