//! Figure 1: strong scaling of the NiO-64 benchmark, Ref vs Current.
//!
//! The paper runs 32-1024 KNL nodes / BDW sockets with a fixed total DMC
//! population, finding near-ideal parallel efficiency (90% KNL / 98% BDW)
//! and a uniform 2-4.5x Current/Ref gap at every scale — because the
//! optimizations are on-node and leave communication untouched.
//!
//! This host exposes limited hardware parallelism, so ranks are *time-
//! shared* (oversubscribed threads running the full rank protocol:
//! allreduce barriers + walker exchange). With the total population fixed,
//! the serialized compute is constant across rank counts, so any wall-time
//! growth is synchronization/communication overhead — precisely the
//! quantity whose smallness the paper's near-ideal slopes demonstrate. We
//! report that overhead, the implied parallel efficiency
//! `T_1 / T_R` on an R-core machine, and the Ref/Current speedup per rank
//! count.

use qmc_bench::{multi_rank_throughput, HarnessConfig};
use qmc_workloads::{Benchmark, CodeVersion};

fn main() {
    let cfg = HarnessConfig::from_env();
    let workload = cfg.workload(Benchmark::NiO64);
    let ranks_list = [1usize, 2, 4, 8];
    let total_pop = 16; // fixed total population across all rank counts
    let steps = cfg.steps;

    println!(
        "== Fig 1: strong scaling (simulated ranks), NiO-64 ({} electrons), fixed population {} ==",
        workload.num_electrons(),
        total_pop
    );
    println!(
        "{:>6} {:>13} {:>13} {:>11} {:>11} {:>9} {:>10}",
        "ranks", "Ref ms/samp", "Cur ms/samp", "Ref ovh%", "Cur ovh%", "speedup", "impl.eff%"
    );

    // Populations drift per rank count, so the scale-invariant quantity is
    // the serialized time per Monte Carlo sample.
    let (mut t1_ref, mut t1_cur) = (0.0f64, 0.0f64);
    let mut msg_sizes = (0u64, 0u64, 0u64, 0u64); // (ref bytes, ref count, cur bytes, cur count)
    for &ranks in &ranks_list {
        let rr = multi_rank_throughput(
            &workload,
            CodeVersion::Ref,
            ranks,
            total_pop,
            steps,
            cfg.seed,
        );
        let rc2 = multi_rank_throughput(
            &workload,
            CodeVersion::Current,
            ranks,
            total_pop,
            steps,
            cfg.seed,
        );
        let (sec_ref, samp_ref) = (rr.seconds, rr.samples);
        let (sec_cur, samp_cur) = (rc2.seconds, rc2.samples);
        msg_sizes.0 += rr.bytes_exchanged;
        msg_sizes.1 += rr.exchanged;
        msg_sizes.2 += rc2.bytes_exchanged;
        msg_sizes.3 += rc2.exchanged;
        let per_ref = sec_ref / samp_ref.max(1) as f64 * 1e3;
        let per_cur = sec_cur / samp_cur.max(1) as f64 * 1e3;
        if ranks == 1 {
            t1_ref = per_ref;
            t1_cur = per_cur;
        }
        let ovh_ref = (per_ref / t1_ref - 1.0) * 100.0;
        let ovh_cur = (per_cur / t1_cur - 1.0) * 100.0;
        // With constant serialized per-sample work, an R-core machine would
        // take per_R / R per sample; efficiency vs ideal per_1 / R is
        // per_1 / per_R.
        let eff = t1_cur / per_cur * 100.0;
        println!(
            "{:>6} {:>13.2} {:>13.2} {:>10.1}% {:>10.1}% {:>8.2}x {:>9.1}%",
            ranks,
            per_ref,
            per_cur,
            ovh_ref,
            ovh_cur,
            per_ref / per_cur,
            eff
        );
    }
    if msg_sizes.1 > 0 && msg_sizes.3 > 0 {
        let ref_mb = msg_sizes.0 as f64 / msg_sizes.1 as f64 / 1e6;
        let cur_mb = msg_sizes.2 as f64 / msg_sizes.3 as f64 / 1e6;
        println!(
            "\nserialized walker message: Ref {ref_mb:.2} MB, Current {cur_mb:.2} MB \
             ({:.2} MB smaller; paper: 22.5 MB smaller for full NiO-64)",
            ref_mb - cur_mb
        );
    }
    println!(
        "\n(shape per the paper: overheads stay within a few percent of the\n\
         single-rank time -> near-ideal implied efficiency at every scale;\n\
         the Current/Ref speedup is uniform across rank counts because the\n\
         optimizations never touch the communication pattern.)"
    );
}
