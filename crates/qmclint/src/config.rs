//! In-source project configuration: which files play which role.
//!
//! There is deliberately no `qmclint.toml` — the file classification is
//! part of the linter itself so that changing the set of mixed-precision
//! or kernel modules is a reviewed code change, not a config drive-by.
//! Paths are matched repo-relative with forward slashes.

/// How a file is treated by the rules.
// Not a state machine: the flags are orthogonal classification facts and
// every combination is meaningful (e.g. kernel + physics + mixed).
#[allow(clippy::struct_excessive_bools)]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FileClass {
    /// Skipped entirely (tests, benches, binaries, vendored shims, ...).
    pub exempt: bool,
    /// Designated mixed-precision module: raw `f32`/`f64` casts are legal.
    pub mixed_precision: bool,
    /// Hot kernel module: the hot-path and timer rules apply.
    pub kernel: bool,
    /// Physics crate: the determinism rule applies.
    pub physics: bool,
}

/// Paths (prefixes or substrings) that are never linted.
///
/// * `shims/` — vendored minimal API stubs for offline builds, not ours.
/// * test / bench / example / bin targets — CLI front-ends and test code
///   are allowed to allocate, unwrap and cast freely.
/// * `crates/qmclint/` — the linter itself (its fixtures are deliberate
///   violations; its sources are full of rule-name strings).
const EXEMPT_MARKERS: [&str; 8] = [
    "shims/",
    "/tests/",
    "/benches/",
    "/examples/",
    "/src/bin/",
    "crates/qmclint/",
    "crates/bench/",
    "target/",
];

/// Top-level (workspace-root) directories that are exempt as a whole.
const EXEMPT_PREFIXES: [&str; 2] = ["tests/", "examples/"];

/// Directory *names* the workspace walk never descends into. Part of the
/// reviewed configuration (like every other list here) rather than
/// hard-coded in the walker: `shims/` is vendored third-party API surface,
/// the rest is build/VCS noise. The walker also carries a visited set of
/// canonical paths, so symlink cycles terminate.
pub const SKIP_DIRS: [&str; 4] = ["target", ".git", "node_modules", "shims"];

/// Root modules of the lock-order rule: every function defined here (and
/// everything reachable from it through the call graph) must agree on one
/// acquisition order per lock pair. The crowd scheduler is the only place
/// the lock-step drivers hold more than one `parking_lot` lock at a time.
pub const LOCK_ROOTS: [&str; 1] = ["crates/crowd/"];

/// Designated mixed-precision modules (ISSUE rule 1): the only places a
/// raw `as f32`/`as f64` cast or suffixed float literal is legal without a
/// justification. Everything else must go through the `Real` trait
/// boundary (`T::from_f64` / `.to_f64()`) or carry an allow marker.
const MIXED_PRECISION: [&str; 3] = [
    "crates/containers/src/real.rs",
    "crates/bspline/src/",
    "crates/wavefunction/src/buffer.rs",
];

/// Hot kernel modules (ISSUE rule 2/4): distance tables, B-splines,
/// Jastrow factors, SPO/determinant kernels, the batched `mw_*` APIs and
/// the swappable-backend kernel library (every backend's entry points are
/// kernel roots, so a slow-path regression in any backend fires here).
const KERNEL_MODULES: [&str; 7] = [
    "crates/particles/src/dtable.rs",
    "crates/bspline/src/",
    "crates/wavefunction/src/jastrow/",
    "crates/wavefunction/src/spo.rs",
    "crates/wavefunction/src/batched.rs",
    "crates/linalg/src/",
    "crates/kernels/src/",
];

/// Physics crates (ISSUE rule 5): anything whose results enter the Monte
/// Carlo estimate. Observability (`instrument`), front-ends (`miniqmc`)
/// and the bench harness are excluded — wall-clock time there is fine.
const PHYSICS_CRATES: [&str; 11] = [
    "crates/core/",
    "crates/containers/",
    "crates/linalg/",
    "crates/bspline/",
    "crates/particles/",
    "crates/wavefunction/",
    "crates/hamiltonian/",
    "crates/drivers/",
    "crates/crowd/",
    "crates/workloads/",
    "crates/kernels/",
];

/// Classifies a repo-relative path (forward slashes).
pub fn classify(path: &str) -> FileClass {
    let p = path.trim_start_matches("./");
    if EXEMPT_MARKERS.iter().any(|m| p.contains(m))
        || EXEMPT_PREFIXES.iter().any(|m| p.starts_with(m))
    {
        return FileClass {
            exempt: true,
            ..FileClass::default()
        };
    }
    FileClass {
        exempt: false,
        mixed_precision: MIXED_PRECISION.iter().any(|m| p.starts_with(m)),
        kernel: KERNEL_MODULES.iter().any(|m| p.starts_with(m)),
        physics: PHYSICS_CRATES.iter().any(|m| p.starts_with(m)),
    }
}

/// Function names exempt from the hot-path rule: constructors and other
/// setup/conversion entry points that legitimately allocate. Hot functions
/// that must allocate for a good reason use a `// qmclint: cold — <why>`
/// marker instead.
pub fn is_cold_fn_name(name: &str) -> bool {
    matches!(
        name,
        "new" | "default" | "random" | "zeros" | "from_fn" | "clone" | "convert" | "bytes"
    ) || name.starts_with("from_")
        || name.starts_with("with_")
        || name.starts_with("build")
        || name.starts_with("set_")
        || name.starts_with("clone_")
}

// ---------------------------------------------------------------------------
// Effect-system configuration (qmclint v3)
// ---------------------------------------------------------------------------

/// RNG draw methods on the vendored `shims/rand` `StdRng` (and the `Rng`
/// trait it implements). The shim itself is exempt from linting, so the
/// effect model recognizes draw *sites* lexically: a method call spelled
/// with one of these names advances the caller's RNG stream. The list is
/// the reviewed annotation surface for the shim — extending the shim's
/// draw API without extending this list is caught by the shim-side
/// `DRAW_METHODS` mirror test.
pub const RNG_DRAW_METHODS: [&str; 4] = ["random", "random_range", "random_bool", "next_u64"];

/// Methods of `WalkerBuffer` that mutate buffer contents or cursors. A
/// call to one of these through a receiver named `buffer` is a
/// buffer-mutation effect; the read-only accessors (`reals`, `doubles`,
/// `cursors`, `bytes`, `fully_consumed*`) are deliberately absent.
pub const BUFFER_MUT_METHODS: [&str; 9] = [
    "clear",
    "rewind",
    "put_slice",
    "put_matrix",
    "put_f64",
    "get_slice",
    "get_matrix",
    "get_f64",
    "set_cursors",
];

/// Walker-state fields whose assignment (`.field = ...`, `.field op= ...`)
/// is a tracked mutation effect for the serialization-purity rule.
pub const TRACKED_STATE_FIELDS: [&str; 8] = [
    "r",
    "buffer",
    "weight",
    "multiplicity",
    "age",
    "e_local",
    "log_psi",
    "rng",
];

/// Sanctioned RNG territory: files (path prefixes) whose functions may
/// draw from an RNG stream, and from which a draw site may be reached.
/// These are the driver/branch/move roots of the ISSUE — the DMC/VMC
/// drivers and serializer, the crowd drive, the particle move machinery
/// and workload/population construction. A draw site in any other
/// non-test function, or one reachable only from outside this set, is an
/// `rng-discipline` diagnostic.
pub const SANCTIONED_RNG_PATHS: [&str; 4] = [
    "crates/drivers/src/",
    "crates/crowd/src/",
    "crates/particles/src/random.rs",
    "crates/workloads/src/",
];

/// The only functions allowed to re-key an RNG stream (`.rng = ...`):
/// the explicit migration re-seed marker and the checkpoint decoder that
/// installs the restored stream. A re-key anywhere else is exactly the
/// PR-7 `serialize_walker` bug and fires `rng-discipline`.
pub const SANCTIONED_REKEY_FNS: [&str; 2] = ["reseed_for_migration", "decode_walker"];

/// Is `name`, defined in `path`, a pure root for the serialization-purity
/// rule? Pure roots are the observational read paths of checkpointing:
/// the walker/driver serializers, the fingerprint digests, the estimator
/// readers and `Clone` impls. Everything transitively reachable from one
/// must have an empty walker/RNG/buffer mutation-effect set.
pub fn is_pure_root(path: &str, name: &str) -> bool {
    if name == "clone" {
        // `impl Clone` methods anywhere: cloning must never perturb state.
        return true;
    }
    if !path.contains("crates/drivers/src/") {
        return false;
    }
    name.starts_with("serialize_")
        || (name.starts_with("write_") && name.ends_with("_checkpoint"))
        || name.contains("digest")
        || (path.ends_with("estimator.rs")
            && matches!(
                name,
                "samples" | "weights" | "mean" | "variance" | "blocking" | "len" | "is_empty"
            ))
}

/// One registered checkpointed struct: its name plus the carrier
/// functions that must each mention every named field. `digest` and
/// `clone` are optional: `None` for `digest` means no fingerprint covers
/// the struct (it is digested only through its serialized bytes), `None`
/// for `clone` means a `#[derive(Clone)]` on the struct definition is
/// required instead of a hand-written carrier.
pub struct CheckpointedStruct {
    /// Struct name as written at its definition.
    pub name: &'static str,
    /// Serializer carrier function name.
    pub serialize: &'static str,
    /// Deserializer carrier function name.
    pub deserialize: &'static str,
    /// Fingerprint carrier, if the struct has one.
    pub digest: Option<&'static str>,
    /// Hand-written clone carrier; `None` requires `#[derive(Clone)]`.
    pub clone: Option<&'static str>,
}

/// The `qmc-checkpoint/1` struct registry for the state-coverage rule:
/// every named field of each of these structs must appear in its
/// serialize, deserialize, digest and clone carriers. `Walker` clones
/// through `branch_copy` (deliberately not a `Clone` impl — it re-keys
/// the child RNG); the driver states derive `Clone` and are digested via
/// their serialized bytes.
pub const CHECKPOINTED_STRUCTS: [CheckpointedStruct; 5] = [
    CheckpointedStruct {
        name: "Walker",
        serialize: "serialize_walker",
        deserialize: "decode_walker",
        digest: Some("walker_digest_full"),
        clone: Some("branch_copy"),
    },
    CheckpointedStruct {
        name: "BranchController",
        serialize: "write_dmc_checkpoint",
        deserialize: "read_dmc_checkpoint",
        digest: None,
        clone: None,
    },
    CheckpointedStruct {
        name: "ScalarEstimator",
        serialize: "write_dmc_checkpoint",
        deserialize: "read_dmc_checkpoint",
        digest: None,
        clone: None,
    },
    CheckpointedStruct {
        name: "DmcState",
        serialize: "write_dmc_checkpoint",
        deserialize: "read_dmc_checkpoint",
        digest: None,
        clone: None,
    },
    CheckpointedStruct {
        name: "VmcState",
        serialize: "write_vmc_checkpoint",
        deserialize: "read_vmc_checkpoint",
        digest: None,
        clone: None,
    },
];

// ---------------------------------------------------------------------------
// Concurrency-safety configuration (qmclint v4)
// ---------------------------------------------------------------------------

/// Methods that introduce a concurrently-executed closure on the vendored
/// `shims/rayon` scope (and `std::thread::scope`, which spells the spawn
/// identically). Like [`RNG_DRAW_METHODS`], the shim itself is exempt from
/// linting, so spawn *sites* are recognized lexically; the shim-side
/// `SPAWN_METHODS` mirror test keeps this list honest.
pub const SPAWN_METHODS: [&str; 1] = ["spawn"];

/// Parallel-iterator adapters of the rayon shim: a `.for_each(|..| ..)`
/// whose receiver chain passes through one of these is a parallel closure
/// site. `par_chunks_mut` is the provably-disjoint pattern — its closure
/// parameters are per-chunk exclusive borrows and therefore sanctioned
/// mutation targets.
pub const PAR_ITER_METHODS: [&str; 2] = ["par_chunks_mut", "par_iter"];

/// Interior-mutability methods whose call on a captured receiver counts as
/// a mutation for the shared-mutable-capture rule even without an `=`.
pub const INTERIOR_MUT_METHODS: [&str; 6] = [
    "store",
    "fetch_add",
    "fetch_sub",
    "borrow_mut",
    "replace",
    "set",
];

/// The deterministic reduction primitive: an accumulation whose right-hand
/// side flows through one of these is ordered by construction (fixed-shape
/// pairwise tree, bitwise invariant to thread count and chunking) and is
/// exempt from the parallel-reduction-order rule.
pub const DET_REDUCE_FNS: [&str; 3] = ["det_sum", "det_sum_by", "det_weighted_mean"];

/// Where the named schedule-exploration cases live. Only non-test
/// functions named `explore_*` defined under this prefix satisfy the
/// schedule-coverage rule.
pub const SCHED_CASE_PATH: &str = "crates/qmcsched/src/";

/// One row of the schedule-coverage registry: a parallel entry point, the
/// named `qmcsched` case that exercises it, and a witness identifier that
/// must appear in the case's transitive identifier surface. The witness is
/// the reviewed annotation (like the timer-coverage `Kernel` variants);
/// the identifier cross-check is what keeps the row from going stale when
/// the case is refactored away from the entry point.
pub struct SchedRoot {
    /// Parallel entry point: a non-test function containing a spawn site.
    pub entry: &'static str,
    /// The `explore_*` case in [`SCHED_CASE_PATH`] exercising it.
    pub case: &'static str,
    /// Identifier that must be transitively reachable from the case.
    pub via: &'static str,
}

/// The schedule-coverage registry: every non-test parallel entry point in
/// a physics crate must have a row here, and every row must point at a
/// live case that still (transitively) mentions the witness identifier.
/// `run_multi_rank` spawns OS threads directly (`std::thread::scope` —
/// barrier synchronization would deadlock under the shim's serial
/// schedules), so its case exercises it without a schedule sweep.
pub const SCHED_ROOTS: [SchedRoot; 8] = [
    SchedRoot {
        entry: "parallel_generation",
        case: "explore_dmc_parallel",
        via: "run_dmc_parallel",
    },
    SchedRoot {
        entry: "run_vmc_parallel",
        case: "explore_vmc",
        via: "run_vmc_parallel",
    },
    SchedRoot {
        entry: "run_dmc_parallel_controlled",
        case: "explore_dmc_parallel",
        via: "run_dmc_parallel",
    },
    SchedRoot {
        entry: "generation",
        case: "explore_dmc_crowd",
        via: "run_dmc_crowd",
    },
    SchedRoot {
        entry: "run_dmc_crowd_controlled",
        case: "explore_dmc_crowd",
        via: "run_dmc_crowd",
    },
    SchedRoot {
        entry: "run_multi_rank",
        case: "explore_multi_rank",
        via: "run_multi_rank",
    },
    SchedRoot {
        entry: "set_control_points",
        case: "explore_vmc",
        via: "build_engine_f32",
    },
    SchedRoot {
        entry: "evaluate_v_parallel",
        case: "explore_tiled_spline",
        via: "evaluate_v_parallel",
    },
];

/// Looks up the registry row for a parallel entry point.
pub fn sched_root(entry: &str) -> Option<&'static SchedRoot> {
    SCHED_ROOTS.iter().find(|r| r.entry == entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_examples() {
        assert!(classify("shims/rand/src/lib.rs").exempt);
        assert!(classify("crates/drivers/tests/physics.rs").exempt);
        assert!(classify("crates/miniqmc/src/bin/miniqmc.rs").exempt);
        assert!(classify("tests/determinism.rs").exempt);
        assert!(classify("crates/qmclint/src/rules.rs").exempt);

        let spline = classify("crates/bspline/src/spline3d.rs");
        assert!(spline.mixed_precision && spline.kernel && spline.physics);

        let dtable = classify("crates/particles/src/dtable.rs");
        assert!(dtable.kernel && dtable.physics && !dtable.mixed_precision);

        let report = classify("crates/instrument/src/report.rs");
        assert!(!report.physics && !report.kernel && !report.exempt);

        let estimator = classify("crates/drivers/src/estimator.rs");
        assert!(estimator.physics && !estimator.kernel);

        // The kernel library: every backend file is a hot kernel root and
        // physics, but not a designated mixed-precision module.
        let kernels = classify("crates/kernels/src/bspline.rs");
        assert!(kernels.kernel && kernels.physics && !kernels.mixed_precision);
        assert!(classify("crates/kernels/src/bin/kernel_verify.rs").exempt);
    }

    #[test]
    fn pure_root_examples() {
        assert!(is_pure_root(
            "crates/drivers/src/serialize.rs",
            "serialize_walker"
        ));
        assert!(is_pure_root(
            "crates/drivers/src/checkpoint.rs",
            "write_dmc_checkpoint"
        ));
        assert!(is_pure_root(
            "crates/drivers/src/fingerprint.rs",
            "walker_digest_full"
        ));
        assert!(is_pure_root(
            "crates/drivers/src/fingerprint.rs",
            "population_digest"
        ));
        assert!(is_pure_root("crates/drivers/src/estimator.rs", "mean"));
        assert!(is_pure_root("crates/wavefunction/src/spo.rs", "clone"));
        // Readers outside the estimator module and the checkpoint *readers*
        // are not roots: restore legitimately installs state.
        assert!(!is_pure_root("crates/drivers/src/branch.rs", "mean"));
        assert!(!is_pure_root(
            "crates/drivers/src/checkpoint.rs",
            "read_dmc_checkpoint"
        ));
        assert!(!is_pure_root("crates/drivers/src/walker.rs", "branch_copy"));
    }

    #[test]
    fn sched_registry_shape() {
        // Rows are keyed by entry name; duplicates would shadow silently.
        for (i, a) in SCHED_ROOTS.iter().enumerate() {
            assert!(a.case.starts_with("explore_"), "case {}", a.case);
            assert!(!a.via.is_empty());
            for b in &SCHED_ROOTS[i + 1..] {
                assert_ne!(a.entry, b.entry, "duplicate registry entry");
            }
        }
        assert_eq!(
            sched_root("parallel_generation").map(|r| r.case),
            Some("explore_dmc_parallel")
        );
        assert!(sched_root("not_a_parallel_entry").is_none());
    }

    #[test]
    fn cold_names() {
        assert!(is_cold_fn_name("new"));
        assert!(is_cold_fn_name("from_coefficients"));
        assert!(is_cold_fn_name("set_control_points"));
        assert!(!is_cold_fn_name("evaluate_vgl"));
        assert!(!is_cold_fn_name("mw_evaluate_vgl"));
    }
}
