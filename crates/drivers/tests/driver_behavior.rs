//! Behavioural tests of the Monte Carlo drivers: acceptance limits,
//! population control dynamics, and estimator plumbing.

use qmc_containers::{Pos, TinyVector};
use qmc_drivers::{
    initial_population, run_dmc, run_vmc, DmcParams, HamiltonianSet, QmcEngine, VmcParams,
};
use qmc_particles::{CrystalLattice, Layout, ParticleSet, Species};
use qmc_wavefunction::{CosineSpo, DetUpdateMode, DiracDeterminant, TrialWaveFunction};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const L: f64 = 6.0;

fn engine(n: usize, seed: u64) -> (QmcEngine<f64>, Vec<Pos<f64>>) {
    let lat = CrystalLattice::cubic(L);
    let mut rng = StdRng::seed_from_u64(seed);
    let pos: Vec<Pos<f64>> = (0..n)
        .map(|_| {
            TinyVector([
                rng.random::<f64>() * L,
                rng.random::<f64>() * L,
                rng.random::<f64>() * L,
            ])
        })
        .collect();
    let mut pset = ParticleSet::new(
        "e",
        lat,
        vec![(
            Species {
                name: "u".into(),
                charge: -1.0,
            },
            pos.clone(),
        )],
    );
    pset.add_table_aa(Layout::Soa);
    let mut psi = TrialWaveFunction::new();
    psi.add(Box::new(DiracDeterminant::new(
        Box::new(CosineSpo::<f64>::new(n, [L, L, L])),
        0,
        n,
        DetUpdateMode::ShermanMorrison,
    )));
    (
        QmcEngine::new(pset, psi, HamiltonianSet::kinetic_only()),
        pos,
    )
}

#[test]
fn acceptance_approaches_one_as_tau_vanishes() {
    // For tau -> 0 the drifted Gaussian proposal is tiny and detailed
    // balance accepts almost everything.
    let (mut eng, pos) = engine(4, 1);
    let mut walkers = initial_population::<f64>(&pos, 2, 5);
    let res = run_vmc(
        &mut eng,
        &mut walkers,
        &VmcParams {
            blocks: 1,
            steps_per_block: 10,
            tau: 1e-6,
            measure_every: 5,
            ..Default::default()
        },
    );
    assert!(res.acceptance > 0.99, "acceptance {}", res.acceptance);
}

#[test]
fn acceptance_drops_for_large_tau() {
    let (mut eng, pos) = engine(4, 2);
    let small = {
        let mut walkers = initial_population::<f64>(&pos, 2, 7);
        run_vmc(
            &mut eng,
            &mut walkers,
            &VmcParams {
                blocks: 1,
                steps_per_block: 10,
                tau: 0.05,
                measure_every: 5,
                ..Default::default()
            },
        )
        .acceptance
    };
    let (mut eng2, pos2) = engine(4, 2);
    let large = {
        let mut walkers = initial_population::<f64>(&pos2, 2, 7);
        run_vmc(
            &mut eng2,
            &mut walkers,
            &VmcParams {
                blocks: 1,
                steps_per_block: 10,
                tau: 2.0,
                measure_every: 5,
                ..Default::default()
            },
        )
        .acceptance
    };
    assert!(
        large < small,
        "large-tau acceptance {large} should be below small-tau {small}"
    );
}

#[test]
fn dmc_population_feedback_recovers_from_overpopulation() {
    let (mut eng, pos) = engine(4, 3);
    // Start with 3x the target population: feedback must shrink it toward
    // the target without extinction.
    let mut walkers = initial_population::<f64>(&pos, 24, 11);
    let res = run_dmc(
        &mut eng,
        &mut walkers,
        &DmcParams {
            steps: 30,
            warmup: 5,
            tau: 0.02,
            target_population: 8,
            recompute_every: 10,
            seed: 13,
            ..Default::default()
        },
    );
    let final_pop = *res.population.last().unwrap();
    assert!(
        (4..=16).contains(&final_pop),
        "population {final_pop} should converge near target 8"
    );
}

#[test]
fn vmc_samples_counted_correctly() {
    let (mut eng, pos) = engine(3, 4);
    let mut walkers = initial_population::<f64>(&pos, 3, 17);
    let params = VmcParams {
        blocks: 2,
        steps_per_block: 5,
        tau: 0.2,
        measure_every: 1,
        ..Default::default()
    };
    let res = run_vmc(&mut eng, &mut walkers, &params);
    // 2 blocks x 5 steps x 3 walkers sweeps; one measurement per sweep.
    assert_eq!(res.samples, 30);
    assert_eq!(res.energy.len(), 30);
}

#[test]
fn dmc_warmup_excluded_from_statistics() {
    let (mut eng, pos) = engine(3, 5);
    let mut walkers = initial_population::<f64>(&pos, 4, 19);
    let params = DmcParams {
        steps: 10,
        warmup: 4,
        tau: 0.02,
        target_population: 4,
        recompute_every: 0,
        seed: 21,
        ..Default::default()
    };
    let res = run_dmc(&mut eng, &mut walkers, &params);
    // Only steps 4..10 contribute estimator samples.
    assert_eq!(res.energy.len(), 6);
    assert_eq!(res.population.len(), 10);
}
