// fixture-path: crates/qmcsched/src/lib.rs
// fixture-silences: schedule-coverage
//! Miniature of the schedule-exploration crate: the named case the
//! registry points `parallel_generation` at, still (transitively)
//! reaching its registered witness `run_dmc_parallel`.

/// Explores the parallel DMC driver across the schedule set.
pub fn explore_dmc_parallel(cfg: &HarnessConfig) -> DriverParity {
    drive(cfg)
}

/// The hop between case and witness keeps the lookup honestly transitive.
fn drive(cfg: &HarnessConfig) -> DriverParity {
    run_dmc_parallel(cfg)
}
