//! # qmclint — QMC project-invariant analyzer
//!
//! The paper's three riskiest transformations — mixed precision (§7.2),
//! forward-update distance tables and compute-on-the-fly Jastrow factors —
//! trade stored state for recomputation and narrower types, so their
//! correctness rests on invariants the type system cannot see: where
//! `f32↔f64` casts are allowed, which paths must stay allocation- and
//! panic-free, and which kernels must feed the timer taxonomy the run
//! report is built from. `qmclint` enforces those invariants mechanically:
//!
//! 1. **precision-cast** — raw `as f32`/`as f64` casts and suffixed float
//!    literals in physics crates are only legal in designated
//!    mixed-precision modules.
//! 2. **hot-path** — kernel functions must not allocate or panic.
//! 3. **unsafe-comment** — every `unsafe` carries a `// SAFETY:` comment.
//! 4. **timer-coverage** — `mw_*` entry points are timed, and every
//!    `Kernel` variant is referenced by some instrumentation site.
//! 5. **determinism** — no wall clocks, OS entropy, or hash-map iteration
//!    in physics crates.
//!
//! v2 adds a workspace [`model`] (function table + call graph over the
//! token-tree parse) and three inter-procedural rules on top of it
//! ([`graph_rules`]):
//!
//! 6. **hot-path-call** — allocation/panic anywhere in the transitive
//!    callee set of a kernel entry point, reported with the call chain.
//! 7. **precision-flow** — `f32` locals/returns folded into `f64`
//!    accumulators without a designated promotion site.
//! 8. **lock-order** — inconsistent lock-acquisition order among the
//!    functions reachable from the crowd scheduler.
//!
//! v3 grows the model into an effect system: every function gets a
//! mutation-effect set over walker/RNG/buffer state (draw sites, stream
//! re-keys, buffer-cursor mutations, tracked-field writes), closed
//! transitively over the call graph, plus struct models with named
//! fields. Three rules ride on it ([`effect_rules`]):
//!
//! 9. **serialization-purity** — paths reachable from pure roots
//!    (serializers, digests, estimator readers, `Clone` impls) must have
//!    an empty mutation-effect set; the PR-7 checkpoint bugs are the
//!    archetypes and live on as fixtures.
//! 10. **rng-discipline** — draw sites confined to sanctioned
//!     driver/branch/move territory; re-keys confined to explicit
//!     migration markers.
//! 11. **state-coverage** — every field of a registered checkpointed
//!     struct must be carried by serialize, deserialize, digest and
//!     clone, so the `qmc-checkpoint/1` codec can never silently drop
//!     state.
//!
//! v4 models every parallel section (`scope.spawn` closures,
//! `par_chunks_mut`/`par_iter` `for_each` bodies) — captures, mutations,
//! RNG draws — and runs four concurrency rules on it ([`par_rules`]),
//! ahead of the sharded executor:
//!
//! 12. **shared-mutable-capture** — mutation of a capture aliased across
//!     concurrently-spawned closures; task-local bindings and lock-guarded
//!     chains are sanctioned.
//! 13. **parallel-reduction-order** — bare float `+=` accumulation in a
//!     function with parallel sections; reductions must flow through
//!     `qmc_drivers::reduce::det_sum*` (fixed-shape pairwise tree) so the
//!     bits cannot follow the thread schedule.
//! 14. **rng-capture** — an RNG stream borrowed across a spawn boundary
//!     instead of per-task ownership.
//! 15. **schedule-coverage** — every parallel entry point in a physics
//!     crate is registered with a named `qmcsched` case, cross-checked
//!     registry-with-witness style like timer-coverage.
//!
//! Dependency-free by necessity (the registry is unreachable): the lexer
//! is hand-rolled, and the configuration lives in [`config`] rather than a
//! toml file. Exceptions are justified in-source via
//! `// qmclint: allow(<rule>) — <reason>` markers; a marker without a
//! reason is itself a diagnostic.

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod effect_rules;
pub mod graph_rules;
pub mod lexer;
pub mod model;
pub mod par_rules;
pub mod rules;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

pub use config::{classify, FileClass};
pub use diag::{
    render_json, Diagnostic, EffectsSummary, ParSummary, Rule, ALL_RULES, EFFECT_RULES,
    GRAPH_RULES, PAR_RULES,
};
pub use model::WorkspaceModel;
pub use rules::{check_kernel_coverage, lint_source, KernelUsage};

/// Result of linting a whole workspace tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by (file, line).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files actually scanned (exempt files excluded).
    pub files_scanned: usize,
    /// Effect-inference inventory for the `effects` block.
    pub effects: EffectsSummary,
    /// Parallel-section inventory for the `qmclint/3` `par` block.
    pub par: ParSummary,
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>, visited: &mut BTreeSet<PathBuf>) {
    // Symlink-cycle guard: a directory is only descended once, identified
    // by its canonical path.
    let Ok(canon) = std::fs::canonicalize(dir) else {
        return;
    };
    if !visited.insert(canon) {
        return;
    }
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if config::SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_rs_files(&path, out, visited);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Reads every `.rs` file under `root` (skipping [`config::SKIP_DIRS`] and
/// symlink cycles) as `(repo-relative path, source)` pairs, exempt files
/// included — callers classify. Public so audits (e.g. the
/// `forbid(unsafe_code)` sweep test) can reuse the walker.
pub fn collect_sources(root: &Path) -> Vec<(String, String)> {
    let mut files = Vec::new();
    let mut visited = BTreeSet::new();
    collect_rs_files(root, &mut files, &mut visited);
    files
        .into_iter()
        .filter_map(|path| {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let src = std::fs::read_to_string(&path).ok()?;
            Some((rel, src))
        })
        .collect()
}

/// Lints a set of `(repo-relative path, source)` files: the per-file
/// lexical rules on each, then the workspace model and the graph rules
/// over all of them together. [`lint_workspace`] feeds it the real tree;
/// the multi-file graph fixtures feed it synthetic ones.
pub fn lint_files(files: &[(String, String)]) -> LintReport {
    let mut report = LintReport::default();
    let mut usage = KernelUsage::default();
    let mut timer: Option<(String, String)> = None;
    let mut model_input: Vec<(String, String, FileClass)> = Vec::new();

    for (rel, src) in files {
        let class = classify(rel);
        if class.exempt {
            continue;
        }
        if rel == "crates/instrument/src/timer.rs" {
            timer = Some((rel.clone(), src.clone()));
        }
        report.files_scanned += 1;
        lint_source(rel, src, class, &mut report.diagnostics, &mut usage);
        model_input.push((rel.clone(), src.clone(), class));
    }

    if let Some((rel, src)) = &timer {
        check_kernel_coverage(rel, src, &usage, &mut report.diagnostics);
    }

    let model = WorkspaceModel::build(&model_input);
    graph_rules::check_graph(&model, &mut report.diagnostics);
    report.effects = effect_rules::check_effects(&model, &mut report.diagnostics);
    report.par = par_rules::check_par(&model, &mut report.diagnostics);

    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
}

/// Lints every non-exempt `.rs` file under `root` (the repo checkout),
/// runs the workspace-level kernel-coverage cross-check and the v2 graph
/// rules.
pub fn lint_workspace(root: &Path) -> LintReport {
    lint_files(&collect_sources(root))
}
