//! Ablation of the paper's optimization ladder (§7 steps) on NiO-32:
//!
//!   Ref  ->  Ref+MP  ->  SoA(double)  ->  Current  ->  Current+delayed
//!
//! isolating the contribution of (i) expanded single precision, (ii) the
//! SoA/forward-update/compute-on-the-fly transformation, (iii) their
//! combination, and (iv) the §8.4 delayed determinant updates. The paper
//! only reports Ref / Ref+MP / Current ("other intermediate steps ... can
//! be measured using different build options and miniapps" — this binary
//! is that measurement).

use qmc_bench::{mib, run_best, run_best_batched, HarnessConfig};
use qmc_workloads::{Batching, Benchmark, CodeVersion};

fn main() {
    let cfg = HarnessConfig::from_env();
    let w = cfg.workload(Benchmark::NiO32);
    println!(
        "== Ablation ladder, {} ({} electrons), {} threads ==\n",
        w.spec.name,
        w.num_electrons(),
        cfg.threads
    );
    let ladder = [
        CodeVersion::Ref,
        CodeVersion::RefMp,
        CodeVersion::SoaDouble,
        CodeVersion::Current,
        CodeVersion::CurrentDelayed(8),
        CodeVersion::CurrentDelayed(32),
    ];
    println!(
        "{:<18} {:>12} {:>9} {:>9} {:>12} {:>10}",
        "version", "samp/s", "vs Ref", "vs prev", "walker MiB", "energy"
    );

    let (mut base, mut prev) = (0.0f64, 0.0f64);
    for code in ladder {
        let out = run_best(&w, code, &cfg);
        let thr = out.throughput();
        if base == 0.0 {
            base = thr;
            prev = thr;
        }
        println!(
            "{:<18} {:>12.1} {:>8.2}x {:>8.2}x {:>12.2} {:>10.2}",
            out.label,
            thr,
            thr / base,
            thr / prev,
            mib(out.walker_bytes),
            out.energy.0
        );
        prev = thr;
    }

    // Final rung: the same Current code driven in lock-step crowds (the
    // batched mw_* kernel path) instead of walker-at-a-time. Statistics
    // are bitwise identical to the Current row; only scheduling changes.
    let crowd = cfg.walkers.max(1);
    let out = run_best_batched(&w, CodeVersion::Current, &cfg, Batching::Crowd(crowd));
    let thr = out.throughput();
    println!(
        "{:<18} {:>12.1} {:>8.2}x {:>8.2}x {:>12.2} {:>10.2}",
        format!("{}+crowd({crowd})", out.label),
        thr,
        thr / base,
        thr / prev,
        mib(out.walker_bytes),
        out.energy.0
    );
    println!(
        "\n(each rung should be >= the previous, with the biggest jumps from\n\
         the SoA transformation and its combination with single precision;\n\
         delayed updates only pay off once DetUpdate dominates, i.e. at\n\
         larger N than the scaled default.)"
    );
}
