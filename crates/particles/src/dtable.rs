//! Distance tables: the paper's primary hot spot (Fig. 2).
//!
//! Four implementations mirror the optimization ladder:
//!
//! * [`DistTableAARef`] — electron-electron (AA, symmetric) table with the
//!   baseline *packed upper-triangle* storage and AoS displacements
//!   (Fig. 6(a)): minimal memory, but unaligned strided updates that defeat
//!   auto-vectorization.
//! * [`DistTableAASoA`] — the optimized table (Fig. 6(b) plus §7.5): full
//!   `N x Np` aligned rows in SoA layout, *forward update* on acceptance
//!   (only the contiguous row is written), and *compute-on-the-fly* row
//!   refresh before each move (no strided column updates at all).
//! * [`DistTableABRef`] / [`DistTableABSoA`] — electron-ion (AB) tables in
//!   the corresponding layouts; ion positions are fixed for the whole run.
//!
//! Row convention: `dr[i][j] = min_image(r_j - r_i)`, `dist[i][j] = |dr|`.

use crate::lattice::CrystalLattice;
use qmc_containers::{AlignedVec, Matrix, Pos, Real, TinyVector, VectorSoaContainer};
use qmc_instrument::{add_flops_bytes, time_kernel, Kernel};
use qmc_kernels::Backend;

/// Data layout / algorithm selector for distance tables (and the components
/// built on them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// Baseline array-of-structures storage and algorithms.
    Aos,
    /// Optimized structure-of-arrays storage with forward updates.
    Soa,
}

/// Packed index of pair `(i, j)` with `i < j` in the upper triangle.
#[inline]
fn tri_index(i: usize, j: usize) -> usize {
    debug_assert!(i < j);
    j * (j - 1) / 2 + i
}

// ---------------------------------------------------------------------------
// AA (electron-electron) reference table: packed triangle, AoS.
// ---------------------------------------------------------------------------

/// Baseline symmetric distance table (Fig. 6(a)).
pub struct DistTableAARef<T: Real> {
    n: usize,
    lattice: CrystalLattice<T>,
    /// Packed upper-triangle distances, `N(N-1)/2` scalars.
    dist: Vec<T>,
    /// Packed upper-triangle displacements (AoS).
    disp: Vec<Pos<T>>,
    /// Candidate distances to every particle (index = partner).
    temp_dist: Vec<T>,
    /// Candidate displacements `r_j - r_cand`.
    temp_disp: Vec<Pos<T>>,
}

impl<T: Real> DistTableAARef<T> {
    /// Allocates a table for `n` particles.
    pub fn new(n: usize, lattice: CrystalLattice<T>) -> Self {
        Self {
            n,
            lattice,
            dist: vec![T::ZERO; n * (n - 1) / 2],
            disp: vec![TinyVector::zero(); n * (n - 1) / 2],
            temp_dist: vec![T::ZERO; n],
            temp_disp: vec![TinyVector::zero(); n],
        }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the table covers no particles.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Full rebuild from AoS positions (scalar pair loop).
    pub fn evaluate(&mut self, r: &[Pos<T>]) {
        assert_eq!(r.len(), self.n);
        time_kernel(Kernel::DistTableAA, || {
            for j in 1..self.n {
                for i in 0..j {
                    let dr = self.lattice.min_image(r[j] - r[i]);
                    let idx = tri_index(i, j);
                    self.disp[idx] = dr;
                    self.dist[idx] = dr.norm();
                }
            }
        });
        let pairs = (self.n * (self.n - 1) / 2) as u64;
        add_flops_bytes(
            Kernel::DistTableAA,
            18 * pairs,
            7 * std::mem::size_of::<T>() as u64 * pairs,
        );
    }

    /// Computes candidate distances from `newpos` to every particle.
    pub fn move_candidate(&mut self, r: &[Pos<T>], iat: usize, newpos: Pos<T>) {
        time_kernel(Kernel::DistTableAA, || {
            for j in 0..self.n {
                if j == iat {
                    self.temp_dist[j] = T::ZERO;
                    self.temp_disp[j] = TinyVector::zero();
                    continue;
                }
                let dr = self.lattice.min_image(r[j] - newpos);
                self.temp_disp[j] = dr;
                self.temp_dist[j] = dr.norm();
            }
        });
        add_flops_bytes(
            Kernel::DistTableAA,
            18 * self.n as u64,
            7 * std::mem::size_of::<T>() as u64 * self.n as u64,
        );
    }

    /// Commits the candidate move of particle `iat`: scatters the temp row
    /// into the packed triangle (the strided update of Fig. 6(a)).
    pub fn accept(&mut self, iat: usize) {
        time_kernel(Kernel::DistTableAA, || {
            for i in 0..iat {
                let idx = tri_index(i, iat);
                // disp convention: r_iat - r_i = -(r_i - r_new)
                self.dist[idx] = self.temp_dist[i];
                self.disp[idx] = -self.temp_disp[i];
            }
            for j in iat + 1..self.n {
                let idx = tri_index(iat, j);
                self.dist[idx] = self.temp_dist[j];
                self.disp[idx] = self.temp_disp[j];
            }
        });
    }

    /// Current distance between particles `i` and `j` (`i != j`).
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> T {
        if i < j {
            self.dist[tri_index(i, j)]
        } else {
            self.dist[tri_index(j, i)]
        }
    }

    /// Current displacement `r_j - r_i`.
    #[inline]
    pub fn displ(&self, i: usize, j: usize) -> Pos<T> {
        if i < j {
            self.disp[tri_index(i, j)]
        } else {
            -self.disp[tri_index(j, i)]
        }
    }

    /// Candidate distances from the proposed position (index = partner).
    pub fn temp_dist(&self) -> &[T] {
        &self.temp_dist
    }

    /// Candidate displacements `r_j - r_cand`.
    pub fn temp_displ(&self) -> &[Pos<T>] {
        &self.temp_disp
    }

    /// Bytes of storage (for the memory ledger).
    pub fn bytes(&self) -> usize {
        self.dist.len() * std::mem::size_of::<T>()
            + self.disp.len() * std::mem::size_of::<Pos<T>>()
            + self.temp_dist.len() * std::mem::size_of::<T>()
            + self.temp_disp.len() * std::mem::size_of::<Pos<T>>()
    }
}

// ---------------------------------------------------------------------------
// AA SoA table: full padded rows, forward update, compute-on-the-fly.
// ---------------------------------------------------------------------------

/// Optimized symmetric distance table (Fig. 6(b) + §7.5).
pub struct DistTableAASoA<T: Real> {
    n: usize,
    lattice: CrystalLattice<T>,
    /// Full `N x Np` distances (padding holds +inf so cutoff tests fail).
    dist: Matrix<T>,
    /// Displacement components, one `N x Np` matrix per dimension.
    disp: [Matrix<T>; 3],
    /// Candidate row.
    temp_dist: AlignedVec<T>,
    temp_disp: [AlignedVec<T>; 3],
    /// Kernel backend captured at construction (see `qmc_kernels::Backend`).
    backend: Backend,
}

/// Computes one SoA distance row: distances/displacements from `pos` to all
/// positions in `rsoa`, minimum-imaged. The loops themselves live in
/// `qmc-kernels::distance` behind the backend seam; every backend is
/// bitwise identical here (branch-free min-image arithmetic, no
/// cross-partner reduction).
#[inline]
fn compute_row<T: Real>(
    backend: Backend,
    lattice: &CrystalLattice<T>,
    rsoa: &VectorSoaContainer<T, 3>,
    pos: Pos<T>,
    n: usize,
    out_dist: &mut [T],
    out_disp: [&mut [T]; 3],
) {
    qmc_kernels::distance::distance_row(
        backend,
        lattice,
        rsoa.dim(0),
        rsoa.dim(1),
        rsoa.dim(2),
        [pos[0], pos[1], pos[2]],
        n,
        out_dist,
        out_disp,
    );
}

impl<T: Real> DistTableAASoA<T> {
    /// Allocates a table for `n` particles with padded aligned rows.
    pub fn new(n: usize, lattice: CrystalLattice<T>) -> Self {
        let mut dist = Matrix::zeros(n, n);
        // Poison padding so cutoff comparisons on full padded rows fail.
        let stride = dist.stride();
        for i in 0..n {
            let row = dist.row_padded_mut(i);
            for x in &mut row[n..stride] {
                *x = T::from_f64(f64::MAX);
            }
        }
        Self {
            n,
            lattice,
            dist,
            disp: [
                Matrix::zeros(n, n),
                Matrix::zeros(n, n),
                Matrix::zeros(n, n),
            ],
            temp_dist: AlignedVec::zeros(qmc_containers::padded_len::<T>(n)),
            temp_disp: [
                AlignedVec::zeros(qmc_containers::padded_len::<T>(n)),
                AlignedVec::zeros(qmc_containers::padded_len::<T>(n)),
                AlignedVec::zeros(qmc_containers::padded_len::<T>(n)),
            ],
            backend: Backend::current(),
        }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the table covers no particles.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Full rebuild: every row recomputed with the vectorized kernel.
    pub fn evaluate(&mut self, rsoa: &VectorSoaContainer<T, 3>) {
        assert_eq!(rsoa.len(), self.n);
        let backend = self.backend;
        let Self {
            n,
            lattice,
            dist,
            disp,
            ..
        } = self;
        let n = *n;
        time_kernel(Kernel::DistTableAA, || {
            for i in 0..n {
                let pos = rsoa.get(i);
                let [a, b, c] = disp;
                let d = dist.row_mut(i);
                compute_row(
                    backend,
                    lattice,
                    rsoa,
                    pos,
                    n,
                    d,
                    [a.row_mut(i), b.row_mut(i), c.row_mut(i)],
                );
                d[i] = T::from_f64(f64::MAX); // self-distance sentinel
            }
        });
        add_flops_bytes(
            Kernel::DistTableAA,
            18 * (n * n) as u64,
            7 * std::mem::size_of::<T>() as u64 * (n * n) as u64,
        );
    }

    /// Compute-on-the-fly refresh of row `iat` against current positions
    /// (§7.5: "compute the row k with the current position r_k before
    /// making the move" — this removes the strided column updates).
    pub fn prepare_move(&mut self, rsoa: &VectorSoaContainer<T, 3>, iat: usize) {
        let backend = self.backend;
        let Self {
            n,
            lattice,
            dist,
            disp,
            ..
        } = self;
        let n = *n;
        time_kernel(Kernel::DistTableAA, || {
            let pos = rsoa.get(iat);
            let [a, b, c] = disp;
            let d = dist.row_mut(iat);
            compute_row(
                backend,
                lattice,
                rsoa,
                pos,
                n,
                d,
                [a.row_mut(iat), b.row_mut(iat), c.row_mut(iat)],
            );
            d[iat] = T::from_f64(f64::MAX);
        });
        add_flops_bytes(
            Kernel::DistTableAA,
            18 * self.n as u64,
            7 * std::mem::size_of::<T>() as u64 * self.n as u64,
        );
    }

    /// Computes the candidate row for a proposed position of `iat`.
    pub fn move_candidate(&mut self, rsoa: &VectorSoaContainer<T, 3>, iat: usize, newpos: Pos<T>) {
        time_kernel(Kernel::DistTableAA, || {
            let n = self.n;
            let d = &mut self.temp_dist.as_mut_slice()[..n];
            let [a, b, c] = &mut self.temp_disp;
            compute_row(
                self.backend,
                &self.lattice,
                rsoa,
                newpos,
                n,
                d,
                [
                    &mut a.as_mut_slice()[..n],
                    &mut b.as_mut_slice()[..n],
                    &mut c.as_mut_slice()[..n],
                ],
            );
            d[iat] = T::from_f64(f64::MAX);
        });
        add_flops_bytes(
            Kernel::DistTableAA,
            18 * self.n as u64,
            7 * std::mem::size_of::<T>() as u64 * self.n as u64,
        );
    }

    /// Crowd-batched [`Self::prepare_move`]: refreshes row `iat` of every
    /// walker's table back-to-back under **one** timer scope. Per walker
    /// this runs the identical `compute_row` call, so results are bitwise
    /// identical to the per-walker path — what changes is the schedule:
    /// the tiny row kernels of a crowd are no longer interleaved with each
    /// walker's (much larger) wavefunction working set, which is where the
    /// crowd-vs-per-walker DistTable-AA regression came from.
    pub fn mw_prepare(tables: &mut [&mut Self], rsoas: &[&VectorSoaContainer<T, 3>], iat: usize) {
        assert_eq!(tables.len(), rsoas.len());
        let nw = tables.len();
        let total: u64 = tables.iter().map(|t| t.n as u64).sum();
        time_kernel(Kernel::DistTableAA, || {
            for w in 0..nw {
                let t = &mut *tables[w];
                let backend = t.backend;
                let n = t.n;
                let pos = rsoas[w].get(iat);
                let [a, b, c] = &mut t.disp;
                let d = t.dist.row_mut(iat);
                compute_row(
                    backend,
                    &t.lattice,
                    rsoas[w],
                    pos,
                    n,
                    d,
                    [a.row_mut(iat), b.row_mut(iat), c.row_mut(iat)],
                );
                d[iat] = T::from_f64(f64::MAX);
            }
        });
        add_flops_bytes(
            Kernel::DistTableAA,
            18 * total,
            7 * std::mem::size_of::<T>() as u64 * total,
        );
    }

    /// Crowd-batched [`Self::move_candidate`]: computes every walker's
    /// candidate row for its own proposed position under **one** timer
    /// scope, each into that walker's own `temp` row. Bitwise identical
    /// per walker to the scalar call.
    pub fn mw_move_candidates(
        tables: &mut [&mut Self],
        rsoas: &[&VectorSoaContainer<T, 3>],
        iat: usize,
        newpos: &[Pos<T>],
    ) {
        assert_eq!(tables.len(), rsoas.len());
        assert_eq!(tables.len(), newpos.len());
        let nw = tables.len();
        let total: u64 = tables.iter().map(|t| t.n as u64).sum();
        time_kernel(Kernel::DistTableAA, || {
            for w in 0..nw {
                let t = &mut *tables[w];
                let n = t.n;
                let d = &mut t.temp_dist.as_mut_slice()[..n];
                let [a, b, c] = &mut t.temp_disp;
                compute_row(
                    t.backend,
                    &t.lattice,
                    rsoas[w],
                    newpos[w],
                    n,
                    d,
                    [
                        &mut a.as_mut_slice()[..n],
                        &mut b.as_mut_slice()[..n],
                        &mut c.as_mut_slice()[..n],
                    ],
                );
                d[iat] = T::from_f64(f64::MAX);
            }
        });
        add_flops_bytes(
            Kernel::DistTableAA,
            18 * total,
            7 * std::mem::size_of::<T>() as u64 * total,
        );
    }

    /// Forward update (Fig. 6(b)): the accepted candidate row is copied into
    /// the aligned row storage; columns are *not* touched.
    pub fn accept(&mut self, iat: usize) {
        time_kernel(Kernel::DistTableAA, || {
            let n = self.n;
            self.dist
                .row_mut(iat)
                .copy_from_slice(&self.temp_dist.as_slice()[..n]);
            for d in 0..3 {
                self.disp[d]
                    .row_mut(iat)
                    .copy_from_slice(&self.temp_disp[d].as_slice()[..n]);
            }
            self.dist[(iat, iat)] = T::from_f64(f64::MAX);
        });
    }

    /// Current distances from particle `i` to all others (row `i`; entry
    /// `i` itself holds a large sentinel).
    #[inline]
    pub fn dist_row(&self, i: usize) -> &[T] {
        self.dist.row(i)
    }

    /// Displacement-component row `d` of particle `i`.
    #[inline]
    pub fn disp_row(&self, d: usize, i: usize) -> &[T] {
        self.disp[d].row(i)
    }

    /// Candidate distances (row for the proposed position).
    pub fn temp_dist(&self) -> &[T] {
        &self.temp_dist.as_slice()[..self.n]
    }

    /// Candidate displacement component `d`.
    pub fn temp_disp(&self, d: usize) -> &[T] {
        &self.temp_disp[d].as_slice()[..self.n]
    }

    /// Bytes of storage (for the memory ledger).
    pub fn bytes(&self) -> usize {
        self.dist.bytes()
            + self
                .disp
                .iter()
                .map(qmc_containers::Matrix::bytes)
                .sum::<usize>()
    }
}

// ---------------------------------------------------------------------------
// Multi-walker (crowd) candidate rows.
// ---------------------------------------------------------------------------

/// Walker-major SoA staging buffer for batched candidate distance rows.
///
/// One crowd-sized batch of proposed single-particle moves produces one
/// candidate row per walker; the rows are stored contiguously per walker
/// (walker-major) in padded aligned storage, so the per-walker row is
/// exactly the slab a scalar `move_candidate` would have produced.
pub struct MwRowStage<T: Real> {
    n: usize,
    stride: usize,
    walkers: usize,
    dist: AlignedVec<T>,
    disp: [AlignedVec<T>; 3],
}

impl<T: Real> MwRowStage<T> {
    /// Allocates staging rows of `n` partners for `walkers` walkers.
    pub fn new(n: usize, walkers: usize) -> Self {
        let stride = qmc_containers::padded_len::<T>(n);
        let total = stride * walkers.max(1);
        Self {
            n,
            stride,
            walkers,
            dist: AlignedVec::zeros(total),
            disp: [
                AlignedVec::zeros(total),
                AlignedVec::zeros(total),
                AlignedVec::zeros(total),
            ],
        }
    }

    /// Number of partners per row.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when rows have no partners.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of walker slots.
    pub fn num_walkers(&self) -> usize {
        self.walkers
    }

    /// Candidate distances of walker `w`.
    #[inline]
    pub fn dist_row(&self, w: usize) -> &[T] {
        &self.dist.as_slice()[w * self.stride..w * self.stride + self.n]
    }

    /// Candidate displacement component `d` of walker `w` (`r_j - r_cand`).
    #[inline]
    pub fn disp_row(&self, d: usize, w: usize) -> &[T] {
        &self.disp[d].as_slice()[w * self.stride..w * self.stride + self.n]
    }

    /// Bytes of staging storage (memory ledger).
    pub fn bytes(&self) -> usize {
        (self.dist.len()
            + self
                .disp
                .iter()
                .map(qmc_containers::AlignedVec::len)
                .sum::<usize>())
            * std::mem::size_of::<T>()
    }
}

/// Batched candidate-row computation: for each walker `w`, computes the
/// distances/displacements from `newpos[w]` to every position in
/// `sources[w]`, writing walker `w`'s row of `stage`. Elementwise identical
/// to calling the scalar `move_candidate` per walker; the batch shares one
/// timer scope and streams the walker-major staging buffer.
///
/// `poison_self = Some(iat)` writes the self-distance sentinel used by AA
/// tables into column `iat`; pass `None` for AB (electron-ion) rows.
/// `kernel` attributes the timing (AA or AB distance-table kernel).
pub fn mw_candidate_rows<T: Real>(
    lattice: &CrystalLattice<T>,
    sources: &[&VectorSoaContainer<T, 3>],
    newpos: &[Pos<T>],
    poison_self: Option<usize>,
    kernel: Kernel,
    stage: &mut MwRowStage<T>,
) {
    let nw = sources.len();
    assert_eq!(newpos.len(), nw);
    assert!(nw <= stage.num_walkers());
    let n = stage.n;
    let stride = stage.stride;
    let backend = Backend::current();
    time_kernel(kernel, || {
        for w in 0..nw {
            assert_eq!(sources[w].len(), n);
            let base = w * stride;
            let d = &mut stage.dist.as_mut_slice()[base..base + n];
            let [a, b, c] = &mut stage.disp;
            compute_row(
                backend,
                lattice,
                sources[w],
                newpos[w],
                n,
                d,
                [
                    &mut a.as_mut_slice()[base..base + n],
                    &mut b.as_mut_slice()[base..base + n],
                    &mut c.as_mut_slice()[base..base + n],
                ],
            );
            if let Some(iat) = poison_self {
                d[iat] = T::from_f64(f64::MAX);
            }
        }
    });
    add_flops_bytes(
        kernel,
        18 * (nw * n) as u64,
        7 * std::mem::size_of::<T>() as u64 * (nw * n) as u64,
    );
}

// ---------------------------------------------------------------------------
// AB (electron-ion) tables.
// ---------------------------------------------------------------------------

/// Baseline electron-ion table: AoS rows, scalar loops.
pub struct DistTableABRef<T: Real> {
    nel: usize,
    nion: usize,
    lattice: CrystalLattice<T>,
    /// Fixed ion positions (AoS copy).
    ions: Vec<Pos<T>>,
    /// `nel x nion` distances (unpadded) and AoS displacements.
    dist: Matrix<T>,
    disp: Vec<Pos<T>>,
    temp_dist: Vec<T>,
    temp_disp: Vec<Pos<T>>,
}

impl<T: Real> DistTableABRef<T> {
    /// Builds a table from fixed ion positions for `nel` electrons.
    pub fn new(nel: usize, ions: &[Pos<T>], lattice: CrystalLattice<T>) -> Self {
        let nion = ions.len();
        Self {
            nel,
            nion,
            lattice,
            ions: ions.to_vec(),
            dist: Matrix::zeros_unpadded(nel, nion),
            disp: vec![TinyVector::zero(); nel * nion],
            temp_dist: vec![T::ZERO; nion],
            temp_disp: vec![TinyVector::zero(); nion],
        }
    }

    /// Number of electrons (rows).
    pub fn num_electrons(&self) -> usize {
        self.nel
    }

    /// Number of ions (columns).
    pub fn num_ions(&self) -> usize {
        self.nion
    }

    /// The fixed ion (source) positions this table was built against.
    // qmclint: cold — setup-time accessor used when wiring the Hamiltonian
    // to its ion set, not called inside the Monte Carlo loop.
    pub fn source_positions(&self) -> Vec<Pos<T>> {
        self.ions.clone()
    }

    /// Full rebuild from electron positions.
    pub fn evaluate(&mut self, r: &[Pos<T>]) {
        assert_eq!(r.len(), self.nel);
        time_kernel(Kernel::DistTableAB, || {
            for i in 0..self.nel {
                for a in 0..self.nion {
                    let dr = self.lattice.min_image(self.ions[a] - r[i]);
                    self.disp[i * self.nion + a] = dr;
                    self.dist[(i, a)] = dr.norm();
                }
            }
        });
        add_flops_bytes(
            Kernel::DistTableAB,
            18 * (self.nel * self.nion) as u64,
            7 * std::mem::size_of::<T>() as u64 * (self.nel * self.nion) as u64,
        );
    }

    /// Candidate distances from a proposed electron position to every ion.
    pub fn move_candidate(&mut self, iat: usize, newpos: Pos<T>) {
        let _ = iat;
        time_kernel(Kernel::DistTableAB, || {
            for a in 0..self.nion {
                let dr = self.lattice.min_image(self.ions[a] - newpos);
                self.temp_disp[a] = dr;
                self.temp_dist[a] = dr.norm();
            }
        });
        add_flops_bytes(
            Kernel::DistTableAB,
            18 * self.nion as u64,
            7 * std::mem::size_of::<T>() as u64 * self.nion as u64,
        );
    }

    /// Commits the candidate row for electron `iat`.
    pub fn accept(&mut self, iat: usize) {
        time_kernel(Kernel::DistTableAB, || {
            self.dist.row_mut(iat).copy_from_slice(&self.temp_dist);
            self.disp[iat * self.nion..(iat + 1) * self.nion].copy_from_slice(&self.temp_disp);
        });
    }

    /// Current distance from electron `i` to ion `a`.
    #[inline]
    pub fn dist(&self, i: usize, a: usize) -> T {
        self.dist[(i, a)]
    }

    /// Current displacement `r_ion - r_el`.
    #[inline]
    pub fn displ(&self, i: usize, a: usize) -> Pos<T> {
        self.disp[i * self.nion + a]
    }

    /// Candidate distances.
    pub fn temp_dist(&self) -> &[T] {
        &self.temp_dist
    }

    /// Candidate displacements.
    pub fn temp_displ(&self) -> &[Pos<T>] {
        &self.temp_disp
    }

    /// Bytes of storage.
    pub fn bytes(&self) -> usize {
        self.dist.bytes()
            + self.disp.len() * std::mem::size_of::<Pos<T>>()
            + self.temp_dist.len() * std::mem::size_of::<T>()
            + self.temp_disp.len() * std::mem::size_of::<Pos<T>>()
    }
}

/// Optimized electron-ion table: SoA ion storage, padded aligned rows.
pub struct DistTableABSoA<T: Real> {
    nel: usize,
    nion: usize,
    lattice: CrystalLattice<T>,
    /// Fixed ion positions in SoA layout (reused for the entire run).
    ions_soa: VectorSoaContainer<T, 3>,
    dist: Matrix<T>,
    disp: [Matrix<T>; 3],
    temp_dist: AlignedVec<T>,
    temp_disp: [AlignedVec<T>; 3],
    /// Kernel backend captured at construction (see `qmc_kernels::Backend`).
    backend: Backend,
}

impl<T: Real> DistTableABSoA<T> {
    /// Builds a table from fixed ion positions for `nel` electrons.
    pub fn new(nel: usize, ions: &[Pos<T>], lattice: CrystalLattice<T>) -> Self {
        let nion = ions.len();
        let mut ions_soa = VectorSoaContainer::new(nion);
        ions_soa.copy_from_aos(ions);
        let np = qmc_containers::padded_len::<T>(nion);
        let mut dist = Matrix::zeros(nel, nion);
        let stride = dist.stride();
        for i in 0..nel {
            let row = dist.row_padded_mut(i);
            for x in &mut row[nion..stride] {
                *x = T::from_f64(f64::MAX);
            }
        }
        Self {
            nel,
            nion,
            lattice,
            ions_soa,
            dist,
            disp: [
                Matrix::zeros(nel, nion),
                Matrix::zeros(nel, nion),
                Matrix::zeros(nel, nion),
            ],
            temp_dist: AlignedVec::zeros(np),
            temp_disp: [
                AlignedVec::zeros(np),
                AlignedVec::zeros(np),
                AlignedVec::zeros(np),
            ],
            backend: Backend::current(),
        }
    }

    /// Number of electrons (rows).
    pub fn num_electrons(&self) -> usize {
        self.nel
    }

    /// Number of ions (columns).
    pub fn num_ions(&self) -> usize {
        self.nion
    }

    /// The fixed ion (source) positions this table was built against
    /// (reconstructed from the SoA copy).
    // qmclint: cold — setup-time accessor used when wiring the Hamiltonian
    // to its ion set, not called inside the Monte Carlo loop.
    pub fn source_positions(&self) -> Vec<Pos<T>> {
        (0..self.nion).map(|a| self.ions_soa.get(a)).collect()
    }

    /// Full rebuild from electron SoA positions.
    pub fn evaluate(&mut self, rsoa: &VectorSoaContainer<T, 3>) {
        assert_eq!(rsoa.len(), self.nel);
        let backend = self.backend;
        let Self {
            nel,
            nion,
            lattice,
            ions_soa,
            dist,
            disp,
            ..
        } = self;
        let (nel, nion) = (*nel, *nion);
        time_kernel(Kernel::DistTableAB, || {
            for i in 0..nel {
                let pos = rsoa.get(i);
                let [a, b, c] = disp;
                compute_row(
                    backend,
                    lattice,
                    ions_soa,
                    pos,
                    nion,
                    dist.row_mut(i),
                    [a.row_mut(i), b.row_mut(i), c.row_mut(i)],
                );
            }
        });
        add_flops_bytes(
            Kernel::DistTableAB,
            18 * (nel * nion) as u64,
            7 * std::mem::size_of::<T>() as u64 * (nel * nion) as u64,
        );
    }

    /// Candidate row from a proposed electron position (vectorized).
    pub fn move_candidate(&mut self, iat: usize, newpos: Pos<T>) {
        let _ = iat;
        time_kernel(Kernel::DistTableAB, || {
            let nion = self.nion;
            let d = &mut self.temp_dist.as_mut_slice()[..nion];
            let [a, b, c] = &mut self.temp_disp;
            compute_row(
                self.backend,
                &self.lattice,
                &self.ions_soa,
                newpos,
                nion,
                d,
                [
                    &mut a.as_mut_slice()[..nion],
                    &mut b.as_mut_slice()[..nion],
                    &mut c.as_mut_slice()[..nion],
                ],
            );
        });
        add_flops_bytes(
            Kernel::DistTableAB,
            18 * self.nion as u64,
            7 * std::mem::size_of::<T>() as u64 * self.nion as u64,
        );
    }

    /// Crowd-batched [`Self::move_candidate`]: every walker's candidate
    /// electron-ion row computed back-to-back under **one** timer scope.
    /// Bitwise identical per walker to the scalar call.
    pub fn mw_move_candidates(tables: &mut [&mut Self], newpos: &[Pos<T>]) {
        assert_eq!(tables.len(), newpos.len());
        let nw = tables.len();
        let total: u64 = tables.iter().map(|t| t.nion as u64).sum();
        time_kernel(Kernel::DistTableAB, || {
            for w in 0..nw {
                let t = &mut *tables[w];
                let nion = t.nion;
                let d = &mut t.temp_dist.as_mut_slice()[..nion];
                let [a, b, c] = &mut t.temp_disp;
                compute_row(
                    t.backend,
                    &t.lattice,
                    &t.ions_soa,
                    newpos[w],
                    nion,
                    d,
                    [
                        &mut a.as_mut_slice()[..nion],
                        &mut b.as_mut_slice()[..nion],
                        &mut c.as_mut_slice()[..nion],
                    ],
                );
            }
        });
        add_flops_bytes(
            Kernel::DistTableAB,
            18 * total,
            7 * std::mem::size_of::<T>() as u64 * total,
        );
    }

    /// Forward update: contiguous row copy.
    pub fn accept(&mut self, iat: usize) {
        time_kernel(Kernel::DistTableAB, || {
            self.dist
                .row_mut(iat)
                .copy_from_slice(&self.temp_dist.as_slice()[..self.nion]);
            for d in 0..3 {
                self.disp[d]
                    .row_mut(iat)
                    .copy_from_slice(&self.temp_disp[d].as_slice()[..self.nion]);
            }
        });
    }

    /// Distances from electron `i` to all ions.
    #[inline]
    pub fn dist_row(&self, i: usize) -> &[T] {
        self.dist.row(i)
    }

    /// Displacement component `d` from electron `i` to all ions.
    #[inline]
    pub fn disp_row(&self, d: usize, i: usize) -> &[T] {
        self.disp[d].row(i)
    }

    /// Candidate distances.
    pub fn temp_dist(&self) -> &[T] {
        &self.temp_dist.as_slice()[..self.nion]
    }

    /// Candidate displacement component `d`.
    pub fn temp_disp(&self, d: usize) -> &[T] {
        &self.temp_disp[d].as_slice()[..self.nion]
    }

    /// Bytes of storage.
    pub fn bytes(&self) -> usize {
        self.dist.bytes()
            + self
                .disp
                .iter()
                .map(qmc_containers::Matrix::bytes)
                .sum::<usize>()
            + self.ions_soa.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions(n: usize, l: f64, seed: u64) -> Vec<Pos<f64>> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| TinyVector([next() * l, next() * l, next() * l]))
            .collect()
    }

    fn soa_of(r: &[Pos<f64>]) -> VectorSoaContainer<f64, 3> {
        let mut s = VectorSoaContainer::new(r.len());
        s.copy_from_aos(r);
        s
    }

    #[test]
    fn aa_ref_matches_brute_force() {
        let l = 8.0;
        let lat = CrystalLattice::<f64>::cubic(l);
        let r = positions(13, l, 3);
        let mut t = DistTableAARef::new(13, lat.clone());
        t.evaluate(&r);
        for i in 0..13 {
            for j in 0..13 {
                if i == j {
                    continue;
                }
                let expect = lat.min_image(r[j] - r[i]).norm();
                assert!((t.dist(i, j) - expect).abs() < 1e-12);
                assert!((t.displ(i, j).norm() - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn aa_soa_matches_ref() {
        let l = 7.0;
        let lat = CrystalLattice::<f64>::cubic(l);
        let n = 17;
        let r = positions(n, l, 5);
        let rsoa = soa_of(&r);
        let mut tref = DistTableAARef::new(n, lat.clone());
        let mut tsoa = DistTableAASoA::new(n, lat);
        tref.evaluate(&r);
        tsoa.evaluate(&rsoa);
        for i in 0..n {
            let row = tsoa.dist_row(i);
            for j in 0..n {
                if i == j {
                    continue;
                }
                assert!(
                    (row[j] - tref.dist(i, j)).abs() < 1e-12,
                    "({i},{j}): {} vs {}",
                    row[j],
                    tref.dist(i, j)
                );
                // Displacement sign: dr = r_j - r_i.
                let dj = TinyVector([
                    tsoa.disp_row(0, i)[j],
                    tsoa.disp_row(1, i)[j],
                    tsoa.disp_row(2, i)[j],
                ]);
                assert!((dj - tref.displ(i, j)).norm() < 1e-12);
            }
        }
    }

    #[test]
    fn move_accept_cycle_consistent() {
        let l = 6.0;
        let lat = CrystalLattice::<f64>::cubic(l);
        let n = 9;
        let mut r = positions(n, l, 7);
        let mut rsoa = soa_of(&r);
        let mut tref = DistTableAARef::new(n, lat.clone());
        let mut tsoa = DistTableAASoA::new(n, lat.clone());
        tref.evaluate(&r);
        tsoa.evaluate(&rsoa);

        let iat = 4;
        let newpos = TinyVector([0.5, 5.9, 3.3]);
        tref.move_candidate(&r, iat, newpos);
        tsoa.move_candidate(&rsoa, iat, newpos);
        for j in 0..n {
            if j == iat {
                continue;
            }
            assert!((tref.temp_dist()[j] - tsoa.temp_dist()[j]).abs() < 1e-12);
        }

        // Accept and check ref table fully consistent with brute force.
        tref.accept(iat);
        tsoa.accept(iat);
        r[iat] = newpos;
        rsoa.set(iat, newpos);
        for j in 0..n {
            if j == iat {
                continue;
            }
            let expect = lat.min_image(r[j] - r[iat]).norm();
            assert!((tref.dist(iat, j) - expect).abs() < 1e-12);
            assert!((tsoa.dist_row(iat)[j] - expect).abs() < 1e-12);
        }

        // Forward update: row iat is fresh; other rows of the SoA table may
        // be stale (their column iat was deliberately not updated) until
        // prepare_move refreshes them.
        tsoa.prepare_move(&rsoa, 2);
        let expect = lat.min_image(r[iat] - r[2]).norm();
        assert!((tsoa.dist_row(2)[iat] - expect).abs() < 1e-12);
    }

    #[test]
    fn ab_tables_match_each_other_and_brute_force() {
        let l = 9.0;
        let lat = CrystalLattice::<f64>::cubic(l);
        let nel = 11;
        let nion = 5;
        let r = positions(nel, l, 11);
        let ions = positions(nion, l, 13);
        let rsoa = soa_of(&r);
        let mut tref = DistTableABRef::new(nel, &ions, lat.clone());
        let mut tsoa = DistTableABSoA::new(nel, &ions, lat.clone());
        tref.evaluate(&r);
        tsoa.evaluate(&rsoa);
        for i in 0..nel {
            for a in 0..nion {
                let expect = lat.min_image(ions[a] - r[i]).norm();
                assert!((tref.dist(i, a) - expect).abs() < 1e-12);
                assert!((tsoa.dist_row(i)[a] - expect).abs() < 1e-12);
            }
        }
        // Move/accept cycle.
        let newpos = TinyVector([1.0, 2.0, 3.0]);
        tref.move_candidate(3, newpos);
        tsoa.move_candidate(3, newpos);
        for a in 0..nion {
            assert!((tref.temp_dist()[a] - tsoa.temp_dist()[a]).abs() < 1e-12);
            let expect = lat.min_image(ions[a] - newpos).norm();
            assert!((tref.temp_dist()[a] - expect).abs() < 1e-12);
        }
        tref.accept(3);
        tsoa.accept(3);
        assert!((tref.dist(3, 0) - tsoa.dist_row(3)[0]).abs() < 1e-12);
    }

    #[test]
    fn mw_candidate_rows_bitwise_match_scalar() {
        let l = 7.5;
        let lat = CrystalLattice::<f64>::cubic(l);
        let n = 12;
        let iat = 5;
        // Three walkers with distinct configurations and proposals.
        let configs: Vec<Vec<Pos<f64>>> = (0..3).map(|w| positions(n, l, 31 + w as u64)).collect();
        let soas: Vec<VectorSoaContainer<f64, 3>> = configs.iter().map(|r| soa_of(r)).collect();
        let proposals = [
            TinyVector([0.3, 6.1, 2.2]),
            TinyVector([5.5, 0.9, 7.1]),
            TinyVector([3.3, 3.3, 0.1]),
        ];
        let mut stage = MwRowStage::new(n, 3);
        let refs: Vec<&VectorSoaContainer<f64, 3>> = soas.iter().collect();
        mw_candidate_rows(
            &lat,
            &refs,
            &proposals,
            Some(iat),
            Kernel::DistTableAA,
            &mut stage,
        );
        for w in 0..3 {
            let mut t = DistTableAASoA::new(n, lat.clone());
            t.evaluate(&soas[w]);
            t.move_candidate(&soas[w], iat, proposals[w]);
            for j in 0..n {
                assert_eq!(
                    stage.dist_row(w)[j],
                    t.temp_dist()[j],
                    "walker {w} partner {j} dist"
                );
                for d in 0..3 {
                    assert_eq!(
                        stage.disp_row(d, w)[j],
                        t.temp_disp(d)[j],
                        "walker {w} partner {j} disp {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn mw_stage_without_poison_keeps_self_row() {
        let lat = CrystalLattice::<f64>::cubic(5.0);
        let ions = positions(4, 5.0, 3);
        let isoa = soa_of(&ions);
        let newpos = [TinyVector([1.0, 2.0, 3.0])];
        let mut stage = MwRowStage::new(4, 1);
        mw_candidate_rows(
            &lat,
            &[&isoa],
            &newpos,
            None,
            Kernel::DistTableAB,
            &mut stage,
        );
        let mut t = DistTableABSoA::new(1, &ions, lat);
        t.move_candidate(0, newpos[0]);
        for a in 0..4 {
            assert_eq!(stage.dist_row(0)[a], t.temp_dist()[a]);
        }
    }

    #[test]
    fn soa_padding_is_poisoned() {
        let lat = CrystalLattice::<f64>::cubic(5.0);
        let t = DistTableAASoA::new(5, lat);
        let full = t.dist.row_padded(0);
        assert!(full[5..].iter().all(|&x| x > 1e300));
    }

    #[test]
    fn tri_index_layout() {
        // (0,1)=0, (0,2)=1, (1,2)=2, (0,3)=3 ...
        assert_eq!(tri_index(0, 1), 0);
        assert_eq!(tri_index(0, 2), 1);
        assert_eq!(tri_index(1, 2), 2);
        assert_eq!(tri_index(0, 3), 3);
        assert_eq!(tri_index(2, 3), 5);
    }

    #[test]
    fn f32_soa_tracks_f64() {
        let l = 6.0;
        let lat64 = CrystalLattice::<f64>::cubic(l);
        let lat32: CrystalLattice<f32> = lat64.cast();
        let n = 8;
        let r = positions(n, l, 17);
        let r32: Vec<Pos<f32>> = r.iter().map(qmc_containers::TinyVector::cast).collect();
        let rsoa = soa_of(&r);
        let mut rsoa32 = VectorSoaContainer::<f32, 3>::new(n);
        rsoa32.copy_from_aos(&r32);
        let mut t64 = DistTableAASoA::new(n, lat64);
        let mut t32 = DistTableAASoA::new(n, lat32);
        t64.evaluate(&rsoa);
        t32.evaluate(&rsoa32);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                assert!(
                    (t64.dist_row(i)[j] - t32.dist_row(i)[j] as f64).abs() < 1e-5,
                    "({i},{j})"
                );
            }
        }
    }
}
