//! Building a custom QMC system from the low-level API: a hydrogen-like
//! diatomic toy crystal with B-spline orbitals, one- and two-body Jastrow
//! factors, full Coulomb interactions and a model pseudopotential —
//! everything the bundled workloads do, assembled by hand.
//!
//! This is the template to adapt for your own materials.
//!
//! ```text
//! cargo run --release --example custom_system
//! ```

use qmc::bspline::{CubicBspline1D, MultiBspline3D};
use qmc::prelude::*;
use std::sync::Arc;

fn main() {
    // --- geometry: two "ions" in a cubic cell --------------------------
    let l = 8.0;
    let lattice = CrystalLattice::<f64>::cubic(l);
    let ion_positions = vec![TinyVector([2.0, 4.0, 4.0]), TinyVector([6.0, 4.0, 4.0])];
    let ions = ParticleSet::new(
        "ion0",
        lattice.clone(),
        vec![(
            Species {
                name: "X".into(),
                charge: 2.0,
            },
            ion_positions.clone(),
        )],
    );

    // --- electrons: 2 up + 2 down, seeded near the ions ----------------
    let e_init = vec![
        TinyVector([2.3, 4.2, 3.8]),
        TinyVector([5.7, 3.9, 4.1]),
        TinyVector([1.8, 3.7, 4.3]),
        TinyVector([6.2, 4.4, 3.9]),
    ];
    let mut electrons = ParticleSet::new(
        "e",
        lattice.clone(),
        vec![
            (
                Species {
                    name: "u".into(),
                    charge: -1.0,
                },
                e_init[..2].to_vec(),
            ),
            (
                Species {
                    name: "d".into(),
                    charge: -1.0,
                },
                e_init[2..].to_vec(),
            ),
        ],
    );
    let h_aa = electrons.add_table_aa(Layout::Soa);
    let h_ab = electrons.add_table_ab(&ions, Layout::Soa);

    // --- orbitals: an interpolating spline table (2 orbitals) ----------
    // Smooth bonding/antibonding-like periodic functions sampled on a grid.
    let grid = [16, 16, 16];
    let table = Arc::new(MultiBspline3D::<f64>::interpolating(
        grid,
        2,
        |ix, iy, iz, s| {
            use std::f64::consts::TAU;
            let (x, y, z) = (
                ix as f64 / grid[0] as f64,
                iy as f64 / grid[1] as f64,
                iz as f64 / grid[2] as f64,
            );
            let bond = ((TAU * x).cos() + 1.5) * ((TAU * y).cos() * 0.3 + 1.0);
            match s {
                0 => bond * ((TAU * z).cos() * 0.2 + 1.0),
                _ => (TAU * x).sin() * ((TAU * z).cos() * 0.4 + 1.2),
            }
        },
    ));

    // --- wavefunction: Slater-Jastrow ----------------------------------
    let mut psi = TrialWaveFunction::new();
    let pair = PairFunctors::new(2, |a, b| {
        let (amp, cusp) = if a == b { (0.3, -0.25) } else { (0.45, -0.5) };
        CubicBspline1D::fit(move |r| amp * (1.0 - r / 3.5).powi(3), cusp, 3.5, 8)
    });
    psi.add(Box::new(J2Soa::new(&electrons, h_aa, pair)));
    let j1 = vec![CubicBspline1D::fit(
        |r| -0.4 * (1.0 - r / 3.0).powi(2),
        0.0,
        3.0,
        8,
    )];
    psi.add(Box::new(J1Soa::new(&electrons, &ions, h_ab, j1)));
    for (first, nel) in [(0usize, 2usize), (2, 2)] {
        psi.add(Box::new(DiracDeterminant::new(
            Box::new(BsplineSpo::new(
                Arc::clone(&table),
                lattice.clone(),
                SpoLayout::Soa,
            )),
            first,
            nel,
            DetUpdateMode::ShermanMorrison,
        )));
    }

    // --- hamiltonian: Coulomb + a model non-local pseudopotential -------
    use qmc::hamiltonian::{PpChannel, PseudoSpecies};
    let nlpp = NonLocalPP::new(
        h_ab,
        &ions,
        vec![PseudoSpecies {
            channels: vec![PpChannel {
                l: 0,
                v0: 1.0,
                alpha: 2.0,
            }],
            r_cut: 1.5,
        }],
    );
    let ham = HamiltonianSet::new(
        Some(CoulombEE::new(h_aa)),
        Some(CoulombEI::new(h_ab, &ions)),
        Some(&ions),
        Some(nlpp),
    );

    // --- run -------------------------------------------------------------
    let mut engine = QmcEngine::new(electrons, psi, ham);
    println!("custom system: {}", engine.psi.describe());
    let mut walkers = initial_population::<f64>(&e_init, 6, 19);
    let res = run_dmc(
        &mut engine,
        &mut walkers,
        &DmcParams {
            steps: 30,
            warmup: 8,
            tau: 0.01,
            target_population: 6,
            recompute_every: 10,
            seed: 5,
            ..Default::default()
        },
    );
    let (e, err, _) = res.energy.blocking();
    println!(
        "DMC energy {e:.4} +- {err:.4} hartree, acceptance {:.2}, population {}",
        res.acceptance,
        walkers.len()
    );
    assert!(e.is_finite());
    println!("custom-system walkthrough completed.");
}
