//! NLPP integration tests: quadrature exactness against a flat
//! wavefunction and state-invariance of the ratio-evaluation protocol.

use qmc_containers::{Pos, TinyVector};
use qmc_hamiltonian::{NonLocalPP, PpChannel, PseudoSpecies};
use qmc_particles::{CrystalLattice, Layout, ParticleSet, Species};
use qmc_wavefunction::TrialWaveFunction;
use rand::rngs::StdRng;
use rand::SeedableRng;

const L: f64 = 10.0;

fn ions() -> ParticleSet<f64> {
    ParticleSet::new(
        "ion0",
        CrystalLattice::cubic(L),
        vec![(
            Species {
                name: "X".into(),
                charge: 4.0,
            },
            vec![TinyVector([5.0, 5.0, 5.0])],
        )],
    )
}

fn electrons(pos: Vec<Pos<f64>>) -> ParticleSet<f64> {
    ParticleSet::new(
        "e",
        CrystalLattice::cubic(L),
        vec![(
            Species {
                name: "u".into(),
                charge: -1.0,
            },
            pos,
        )],
    )
}

#[test]
fn flat_wavefunction_isolates_l0_channel() {
    // With Psi = const every ratio is 1, so the angular sums become
    // sum_q P_l / Nq = delta_{l,0} exactly (the icosahedral rule is exact
    // through l = 5). The NLPP value must equal sum over in-range
    // electrons of v_0(r), with the l=1 channel contributing nothing.
    let ions = ions();
    let mut e = electrons(vec![
        TinyVector([5.8, 5.0, 5.0]), // r = 0.8, inside cutoff
        TinyVector([5.0, 6.1, 5.0]), // r = 1.1, inside
        TinyVector([1.0, 1.0, 1.0]), // far outside
    ]);
    let h_ab = e.add_table_ab(&ions, Layout::Soa);
    e.add_table_aa(Layout::Soa);

    let nlpp = NonLocalPP::new(
        h_ab,
        &ions,
        vec![PseudoSpecies {
            channels: vec![
                PpChannel {
                    l: 0,
                    v0: 2.0,
                    alpha: 0.5,
                },
                PpChannel {
                    l: 1,
                    v0: -5.0,
                    alpha: 0.3,
                },
            ],
            r_cut: 1.5,
        }],
    );
    // Empty trial wavefunction: log Psi = 0 everywhere, ratio = 1.
    let mut psi = TrialWaveFunction::new();
    let mut rng = StdRng::seed_from_u64(3);
    let v = nlpp.evaluate(&mut e, &mut psi, &mut rng);

    let v0 = |r: f64| 2.0 * (-0.5 * r * r).exp();
    let expected = v0(0.8) + v0(1.1); // l=1 integrates to zero
    assert!(
        (v - expected).abs() < 1e-10,
        "nlpp {v} vs expected {expected}"
    );
}

#[test]
fn evaluation_leaves_state_untouched() {
    let ions = ions();
    let mut e = electrons(vec![
        TinyVector([5.5, 5.2, 4.9]),
        TinyVector([4.6, 5.0, 5.4]),
    ]);
    let h_ab = e.add_table_ab(&ions, Layout::Soa);
    let nlpp = NonLocalPP::new(
        h_ab,
        &ions,
        vec![PseudoSpecies {
            channels: vec![PpChannel {
                l: 0,
                v0: 1.0,
                alpha: 1.0,
            }],
            r_cut: 2.0,
        }],
    );
    let before: Vec<Pos<f64>> = (0..2).map(|i| e.pos(i)).collect();
    let row_before: Vec<f64> = e.table(h_ab).as_ab_soa().dist_row(0).to_vec();

    let mut psi = TrialWaveFunction::new();
    let mut rng = StdRng::seed_from_u64(9);
    let v1 = nlpp.evaluate(&mut e, &mut psi, &mut rng);
    assert!(v1.is_finite());

    for (i, b) in before.iter().enumerate().take(2) {
        assert_eq!(e.pos(i), *b, "electron {i} moved");
    }
    assert_eq!(
        e.table(h_ab).as_ab_soa().dist_row(0),
        &row_before[..],
        "stored table row changed"
    );
    assert!(e.active_pos().is_none(), "dangling active move");
}

#[test]
fn random_rotation_does_not_bias_l0() {
    // Different RNG streams must give the identical value for a flat
    // wavefunction (the rotation only matters for l >= 1 anisotropy).
    let ions = ions();
    let build = || {
        let mut e = electrons(vec![TinyVector([5.9, 5.0, 5.0])]);
        let h = e.add_table_ab(&ions, Layout::Aos);
        (e, h)
    };
    let (mut e1, h1) = build();
    let (mut e2, h2) = build();
    let sp = vec![PseudoSpecies {
        channels: vec![PpChannel {
            l: 0,
            v0: 3.0,
            alpha: 0.7,
        }],
        r_cut: 1.6,
    }];
    let n1 = NonLocalPP::new(h1, &ions, sp.clone());
    let n2 = NonLocalPP::new(h2, &ions, sp);
    let mut psi = TrialWaveFunction::new();
    let a = n1.evaluate(&mut e1, &mut psi, &mut StdRng::seed_from_u64(1));
    let b = n2.evaluate(&mut e2, &mut psi, &mut StdRng::seed_from_u64(999));
    assert!((a - b).abs() < 1e-10, "{a} vs {b}");
}

#[test]
fn ab_layouts_give_same_nlpp() {
    let ions = ions();
    let pos = vec![TinyVector([5.7, 5.1, 5.2]), TinyVector([4.4, 4.9, 5.0])];
    let sp = vec![PseudoSpecies {
        channels: vec![PpChannel {
            l: 0,
            v0: 1.5,
            alpha: 0.9,
        }],
        r_cut: 1.8,
    }];
    let mut e_a = electrons(pos.clone());
    let h_a = e_a.add_table_ab(&ions, Layout::Aos);
    let mut e_s = electrons(pos);
    let h_s = e_s.add_table_ab(&ions, Layout::Soa);
    let n_a = NonLocalPP::new(h_a, &ions, sp.clone());
    let n_s = NonLocalPP::new(h_s, &ions, sp);
    let mut psi = TrialWaveFunction::new();
    let a = n_a.evaluate(&mut e_a, &mut psi, &mut StdRng::seed_from_u64(4));
    let s = n_s.evaluate(&mut e_s, &mut psi, &mut StdRng::seed_from_u64(4));
    assert!((a - s).abs() < 1e-10);
}
