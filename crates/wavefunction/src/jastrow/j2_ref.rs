//! Baseline two-body Jastrow: store-everything policy.
//!
//! Keeps the full `N x N` matrices of pair values `U(i,j)`, AoS gradients
//! `dU(i,j)` and Laplacian terms `d2U(i,j)` — exactly the
//! `5 N^2 sizeof(T)` per-walker storage the paper calls out in §6.1 — and
//! updates both the row and the column of the moved electron on acceptance.
//! All loops are scalar over AoS data, reproducing the baseline's poor SIMD
//! efficiency.

// qmclint: allow-file(precision-cast) — the reference (AoS) Jastrow accumulates G/L in
// f64 by the paper's mixed-precision design: double accumulators over T-valued terms.
use super::PairFunctors;
use crate::buffer::WalkerBuffer;
use crate::traits::WaveFunctionComponent;
use qmc_containers::{Matrix, Pos, Real, TinyVector};
use qmc_instrument::{add_flops_bytes, time_kernel, Kernel};
use qmc_particles::ParticleSet;

/// Reference (AoS, stored) two-body Jastrow factor.
pub struct J2Ref<T: Real> {
    table: usize,
    functors: PairFunctors<T>,
    n: usize,
    /// Pair values `u(r_ij)`.
    u: Matrix<T>,
    /// Pair gradients `grad_i u(r_ij)` (AoS).
    du: Vec<Pos<T>>,
    /// Pair Laplacian terms `u'' + 2u'/r`.
    d2u: Matrix<T>,
    // Candidate row state filled by `ratio`/`ratio_grad`.
    cur_u: Vec<T>,
    cur_du: Vec<Pos<T>>,
    cur_d2u: Vec<T>,
    cur_delta: f64,
    log_value: f64,
}

impl<T: Real> J2Ref<T> {
    /// Builds the factor over the AA distance table `table` (AoS layout).
    pub fn new(p: &ParticleSet<T>, table: usize, functors: PairFunctors<T>) -> Self {
        assert_eq!(functors.ngroups(), p.num_groups());
        let n = p.len();
        Self {
            table,
            functors,
            n,
            u: Matrix::zeros_unpadded(n, n),
            du: vec![TinyVector::zero(); n * n],
            d2u: Matrix::zeros_unpadded(n, n),
            cur_u: vec![T::ZERO; n],
            cur_du: vec![TinyVector::zero(); n],
            cur_d2u: vec![T::ZERO; n],
            cur_delta: 0.0,
            log_value: 0.0,
        }
    }

    /// Fills the candidate row from the table's temp distances.
    fn compute_candidate(&mut self, p: &ParticleSet<T>, iat: usize) {
        let t = p.table(self.table).as_aa_ref();
        let gk = p.group_of(iat);
        let dists = t.temp_dist();
        let disps = t.temp_displ();
        let mut delta = 0.0f64;
        for j in 0..self.n {
            if j == iat {
                self.cur_u[j] = T::ZERO;
                self.cur_du[j] = TinyVector::zero();
                self.cur_d2u[j] = T::ZERO;
                continue;
            }
            let f = self.functors.get(gk, p.group_of(j));
            let d = dists[j];
            if d < f.r_cut() {
                let (v, dv, d2v) = f.evaluate_vgl(d);
                let inv_d = T::ONE / d;
                self.cur_u[j] = v;
                // grad_k u = u' (r_k' - r_j)/d = -(u'/d) * temp_displ[j]
                self.cur_du[j] = -(disps[j] * (dv * inv_d));
                self.cur_d2u[j] = d2v + T::from_f64(2.0) * dv * inv_d;
            } else {
                self.cur_u[j] = T::ZERO;
                self.cur_du[j] = TinyVector::zero();
                self.cur_d2u[j] = T::ZERO;
            }
            delta += (self.cur_u[j] - self.u[(iat, j)]).to_f64();
        }
        self.cur_delta = delta;
    }
}

impl<T: Real> WaveFunctionComponent<T> for J2Ref<T> {
    fn name(&self) -> &'static str {
        "J2-ref"
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn evaluate_log(&mut self, p: &mut ParticleSet<T>) -> f64 {
        let n = self.n;
        time_kernel(Kernel::J2, || {
            let t = p.table(self.table).as_aa_ref();
            let mut logpsi = 0.0f64;
            for i in 0..n {
                for j in i + 1..n {
                    let f = self.functors.get(p.group_of(i), p.group_of(j));
                    let d = t.dist(i, j);
                    let (v, dv, d2v) = if d < f.r_cut() {
                        f.evaluate_vgl(d)
                    } else {
                        (T::ZERO, T::ZERO, T::ZERO)
                    };
                    let inv_d = T::ONE / d;
                    let lapt = d2v + T::from_f64(2.0) * dv * inv_d;
                    self.u[(i, j)] = v;
                    self.u[(j, i)] = v;
                    // grad_i u = -(u'/d) * displ(i,j) with displ = r_j - r_i
                    let g = t.displ(i, j) * (dv * inv_d);
                    self.du[i * n + j] = -g;
                    self.du[j * n + i] = g;
                    self.d2u[(i, j)] = lapt;
                    self.d2u[(j, i)] = lapt;
                    logpsi -= v.to_f64();
                }
            }
            // Accumulate gradient/Laplacian of log psi.
            for i in 0..n {
                let mut g = TinyVector::<f64, 3>::zero();
                let mut l = 0.0f64;
                for j in 0..n {
                    if j == i {
                        continue;
                    }
                    let dij: Pos<f64> = self.du[i * n + j].cast();
                    g -= dij;
                    l -= self.d2u[(i, j)].to_f64();
                }
                p.g[i] += g;
                p.l[i] += l;
            }
            self.log_value = logpsi;
            logpsi
        })
    }

    fn ratio(&mut self, p: &ParticleSet<T>, iat: usize) -> f64 {
        time_kernel(Kernel::J2, || {
            self.compute_candidate(p, iat);
            add_flops_bytes(
                Kernel::J2,
                (self.n * 20) as u64,
                (self.n * 10 * std::mem::size_of::<T>()) as u64,
            );
            (-self.cur_delta).exp()
        })
    }

    fn ratio_grad(&mut self, p: &ParticleSet<T>, iat: usize, grad: &mut Pos<f64>) -> f64 {
        time_kernel(Kernel::J2, || {
            self.compute_candidate(p, iat);
            let mut g = TinyVector::<f64, 3>::zero();
            for j in 0..self.n {
                let d: Pos<f64> = self.cur_du[j].cast();
                g -= d;
            }
            *grad += g;
            (-self.cur_delta).exp()
        })
    }

    fn eval_grad(&mut self, p: &ParticleSet<T>, iat: usize) -> Pos<f64> {
        let _ = p;
        let mut g = TinyVector::<f64, 3>::zero();
        for j in 0..self.n {
            let d: Pos<f64> = self.du[iat * self.n + j].cast();
            g -= d;
        }
        g
    }

    fn accept_move(&mut self, _p: &ParticleSet<T>, iat: usize) {
        time_kernel(Kernel::J2, || {
            let n = self.n;
            self.log_value -= self.cur_delta;
            for j in 0..n {
                if j == iat {
                    continue;
                }
                self.u[(iat, j)] = self.cur_u[j];
                self.u[(j, iat)] = self.cur_u[j];
                self.du[iat * n + j] = self.cur_du[j];
                self.du[j * n + iat] = -self.cur_du[j];
                self.d2u[(iat, j)] = self.cur_d2u[j];
                self.d2u[(j, iat)] = self.cur_d2u[j];
            }
        });
    }

    fn restore(&mut self, _iat: usize) {}

    fn accumulate_gl(&mut self, p: &mut ParticleSet<T>) {
        let n = self.n;
        for i in 0..n {
            let mut g = TinyVector::<f64, 3>::zero();
            let mut l = 0.0f64;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let dij: Pos<f64> = self.du[i * n + j].cast();
                g -= dij;
                l -= self.d2u[(i, j)].to_f64();
            }
            p.g[i] += g;
            p.l[i] += l;
        }
    }

    fn save_state(&mut self, buf: &mut WalkerBuffer<T>) {
        buf.put_matrix(&self.u);
        for d in 0..3 {
            for p in &self.du {
                buf.put_slice(&[p[d]]);
            }
        }
        buf.put_matrix(&self.d2u);
        buf.put_f64(self.log_value);
    }

    fn load_state(&mut self, buf: &mut WalkerBuffer<T>) {
        buf.get_matrix(&mut self.u);
        let mut x = [T::ZERO; 1];
        for d in 0..3 {
            for p in &mut self.du {
                buf.get_slice(&mut x);
                p[d] = x[0];
            }
        }
        buf.get_matrix(&mut self.d2u);
        self.log_value = buf.get_f64();
    }

    fn log_value(&self) -> f64 {
        self.log_value
    }

    fn bytes(&self) -> usize {
        self.u.bytes()
            + self.du.len() * std::mem::size_of::<Pos<T>>()
            + self.d2u.bytes()
            + self.cur_u.len() * std::mem::size_of::<T>() * 2
            + self.cur_du.len() * std::mem::size_of::<Pos<T>>()
    }
}
