//! Figure 2: normalized hot-spot profiles of the NiO benchmarks, Ref vs
//! Current.
//!
//! As in the paper, the Current profile is plotted on the Ref time axis
//! ("Current version profiles accommodate the speedup wrt. Ref"): each
//! Current kernel share is scaled by `T_current / T_ref`, so shrinking
//! bars show where the time went.

use qmc_bench::{run_report, run_report_batched, HarnessConfig};
use qmc_instrument::ALL_KERNELS;
use qmc_workloads::{Batching, Benchmark, CodeVersion};

fn main() {
    let cfg = HarnessConfig::from_env();
    for b in [Benchmark::NiO32, Benchmark::NiO64] {
        let w = cfg.workload(b);
        println!(
            "\n== Fig 2: hot-spot profile, {} ({} electrons) ==",
            w.spec.name,
            w.num_electrons()
        );

        let ref_out = run_report(&w, CodeVersion::Ref, &cfg);
        let cur_out = run_report(&w, CodeVersion::Current, &cfg);
        let speed = ref_out.seconds / cur_out.seconds;

        let t_ref = ref_out.profile.total_seconds();
        let t_cur = cur_out.profile.total_seconds();
        println!(
            "wall: Ref {:.3}s, Current {:.3}s  ->  speedup {:.2}x",
            ref_out.seconds, cur_out.seconds, speed
        );
        println!(
            "{:<14} {:>12} {:>18} {:>12}",
            "kernel", "Ref share", "Current (Ref axis)", "kernel speedup"
        );
        for &k in &ALL_KERNELS {
            let sr = ref_out.profile.get(k).seconds();
            let sc = cur_out.profile.get(k).seconds();
            if sr < 1e-6 && sc < 1e-6 {
                continue;
            }
            let share_ref = sr / t_ref * 100.0;
            // Scale Current shares onto the Ref axis.
            let share_cur_on_ref = sc / t_cur * (t_cur / t_ref) * 100.0;
            let kspeed = if sc > 0.0 { sr / sc } else { f64::INFINITY };
            println!(
                "{:<14} {:>11.1}% {:>17.1}% {:>11.2}x",
                k.label(),
                share_ref,
                share_cur_on_ref,
                kspeed
            );
        }

        // Crowd-batched Current: the lock-step path routes SPO work through
        // the fused multi-walker kernel, so `Bspline-mw-vgl` is live here
        // (it is structurally zero in the per-walker profiles above).
        let crowd = cfg.walkers.clamp(1, 4);
        let crowd_out = run_report_batched(&w, CodeVersion::Current, &cfg, Batching::Crowd(crowd));
        let t_crowd = crowd_out.profile.total_seconds();
        println!("\nCurrent, crowd({crowd}) batching — batched-kernel shares:");
        for &k in &ALL_KERNELS {
            let s = crowd_out.profile.get(k).seconds();
            if s < 1e-6 {
                continue;
            }
            println!("{:<14} {:>11.1}%", k.label(), s / t_crowd * 100.0);
        }
    }
    println!(
        "\n(expected shape per the paper: DistTable+J2 dominate Ref and shrink\n\
         the most; DetUpdate's share grows in Current, motivating §8.4.)"
    );
}
