//! Classical Ewald summation for periodic Coulomb interactions.
//!
//! QMCPACK evaluates the periodic Coulomb interaction with an optimized
//! breakup; the minimum-image sums in [`crate::CoulombEE`] are the fast
//! substitute used by the performance benchmarks (see DESIGN.md). This
//! module provides the *accurate* alternative — textbook Ewald with
//! real-space, reciprocal-space, self and neutralizing-background terms —
//! so physics-focused users are not limited by the substitution, and so the
//! substitution itself can be validated (the Madelung tests below).
//!
//! For a neutral collection of point charges `q_i` in a periodic cell of
//! volume `V`:
//!
//! ```text
//! E = 1/2 sum_{i,j,R}' q_i q_j erfc(a |r_ij + R|)/|r_ij + R|
//!   + (2 pi / V) sum_{k != 0} exp(-k^2/(4 a^2))/k^2 |rho(k)|^2
//!   - a/sqrt(pi) sum_i q_i^2
//! ```
//!
//! with `rho(k) = sum_i q_i exp(i k . r_i)` and the prime excluding the
//! i = j, R = 0 self term.

// qmclint: allow-file(precision-cast) — Ewald/Madelung lattice sums are conditionally
// convergent and deliberately evaluated in f64 regardless of the walker precision T.
use qmc_containers::{Pos, Real};
use qmc_particles::{CrystalLattice, ParticleSet};

/// Complementary error function (Abramowitz & Stegun 7.1.26, |eps| < 1.5e-7).
pub fn erfc(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))))
        * (-x * x).exp();
    if sign > 0.0 {
        y
    } else {
        2.0 - y
    }
}

/// Ewald summation engine for a fixed orthorhombic cell.
pub struct Ewald {
    cell: [f64; 3],
    volume: f64,
    /// Splitting parameter.
    alpha: f64,
    /// Real-space cutoff (in units of cell images).
    real_images: i32,
    /// Reciprocal vectors `(kx, ky, kz, prefactor)`.
    kvecs: Vec<(f64, f64, f64, f64)>,
}

impl Ewald {
    /// Builds an Ewald engine for an orthorhombic lattice with accuracy
    /// governed by `alpha` (default heuristic: `5 / L_min`) and enough
    /// k-vectors for ~1e-6 relative accuracy.
    pub fn new<T: Real>(lattice: &CrystalLattice<T>) -> Self {
        let lat: CrystalLattice<f64> = lattice.cast();
        assert!(
            lat.is_orthorhombic(),
            "Ewald engine supports orthorhombic cells"
        );
        let cell = {
            let e = lat.edges();
            [e[0], e[1], e[2]]
        };
        let volume = cell[0] * cell[1] * cell[2];
        let lmin = cell[0].min(cell[1]).min(cell[2]);
        let alpha = 5.0 / lmin;
        // k-space cutoff: exp(-k^2/(4 a^2)) < 1e-12  =>  k < 2 a sqrt(27.6)
        let kcut = 2.0 * alpha * (27.6f64).sqrt();
        use std::f64::consts::TAU;
        let nmax = [
            (kcut * cell[0] / TAU).ceil() as i32,
            (kcut * cell[1] / TAU).ceil() as i32,
            (kcut * cell[2] / TAU).ceil() as i32,
        ];
        let mut kvecs = Vec::new();
        for nx in -nmax[0]..=nmax[0] {
            for ny in -nmax[1]..=nmax[1] {
                for nz in -nmax[2]..=nmax[2] {
                    if nx == 0 && ny == 0 && nz == 0 {
                        continue;
                    }
                    let kx = TAU * nx as f64 / cell[0];
                    let ky = TAU * ny as f64 / cell[1];
                    let kz = TAU * nz as f64 / cell[2];
                    let k2 = kx * kx + ky * ky + kz * kz;
                    if k2.sqrt() > kcut {
                        continue;
                    }
                    let pref = (TAU / volume) * (-k2 / (4.0 * alpha * alpha)).exp() / k2;
                    kvecs.push((kx, ky, kz, pref));
                }
            }
        }
        Self {
            cell,
            volume,
            alpha,
            real_images: 1,
            kvecs,
        }
    }

    /// Number of reciprocal vectors in the sum.
    pub fn num_kvecs(&self) -> usize {
        self.kvecs.len()
    }

    /// Total Ewald energy of charges `q` at positions `r` (must be neutral
    /// for the background term to vanish; a net charge adds the standard
    /// compensating-background correction).
    pub fn energy(&self, r: &[Pos<f64>], q: &[f64]) -> f64 {
        assert_eq!(r.len(), q.len());
        let n = r.len();
        let a = self.alpha;
        use std::f64::consts::PI;

        // Real-space sum over minimum image plus neighbouring shells.
        let mut e_real = 0.0;
        let m = self.real_images;
        for i in 0..n {
            for j in i + 1..n {
                for ix in -m..=m {
                    for iy in -m..=m {
                        for iz in -m..=m {
                            let dx = r[j][0] - r[i][0] + ix as f64 * self.cell[0];
                            let dy = r[j][1] - r[i][1] + iy as f64 * self.cell[1];
                            let dz = r[j][2] - r[i][2] + iz as f64 * self.cell[2];
                            let d = (dx * dx + dy * dy + dz * dz).sqrt();
                            if d > 1e-12 {
                                e_real += q[i] * q[j] * erfc(a * d) / d;
                            }
                        }
                    }
                }
            }
            // Self-interaction with its own periodic images.
            for ix in -m..=m {
                for iy in -m..=m {
                    for iz in -m..=m {
                        if ix == 0 && iy == 0 && iz == 0 {
                            continue;
                        }
                        let dx = ix as f64 * self.cell[0];
                        let dy = iy as f64 * self.cell[1];
                        let dz = iz as f64 * self.cell[2];
                        let d = (dx * dx + dy * dy + dz * dz).sqrt();
                        e_real += 0.5 * q[i] * q[i] * erfc(a * d) / d;
                    }
                }
            }
        }

        // Reciprocal-space sum.
        let mut e_recip = 0.0;
        for &(kx, ky, kz, pref) in &self.kvecs {
            let (mut re, mut im) = (0.0f64, 0.0f64);
            for i in 0..n {
                let phase = kx * r[i][0] + ky * r[i][1] + kz * r[i][2];
                let (s, c) = phase.sin_cos();
                re += q[i] * c;
                im += q[i] * s;
            }
            e_recip += pref * (re * re + im * im);
        }

        // Self term.
        let e_self: f64 = -a / PI.sqrt() * q.iter().map(|x| x * x).sum::<f64>();
        // Neutralizing background for non-neutral systems.
        let qtot: f64 = q.iter().sum();
        let e_bg = -PI / (2.0 * a * a * self.volume) * qtot * qtot;

        e_real + e_recip + e_self + e_bg
    }

    /// Ewald energy of all charged particles in a [`ParticleSet`].
    pub fn energy_of_set<T: Real>(&self, p: &ParticleSet<T>) -> f64 {
        let n = p.len();
        let mut r = vec![qmc_containers::TinyVector::zero(); n];
        p.store_positions(&mut r);
        let q: Vec<f64> = (0..n).map(|i| p.charge_of(i)).collect();
        self.energy(&r, &q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmc_containers::TinyVector;

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_7).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
    }

    /// The NaCl (rock-salt) Madelung constant: the Ewald energy per ion
    /// pair of a +-1 rock-salt lattice with nearest-neighbour distance d
    /// is -M/d with M = 1.747565.
    #[test]
    fn nacl_madelung_constant() {
        let a = 2.0; // cube edge; nearest-neighbour distance d = 1.0
        let lat = CrystalLattice::<f64>::cubic(a);
        let ewald = Ewald::new(&lat);
        // 8 ions of the rock-salt cube: charge (-1)^(x+y+z).
        let mut r = Vec::new();
        let mut q = Vec::new();
        for x in 0..2 {
            for y in 0..2 {
                for z in 0..2 {
                    r.push(TinyVector([x as f64, y as f64, z as f64]));
                    q.push(if (x + y + z) % 2 == 0 { 1.0 } else { -1.0 });
                }
            }
        }
        let e = ewald.energy(&r, &q);
        // Total lattice energy is -N M / (2 d): each ion contributes
        // -M q^2/d and the half corrects double counting.
        let madelung = -2.0 * e / r.len() as f64; // d = 1
        assert!(
            (madelung - 1.747_565).abs() < 2e-3,
            "Madelung constant {madelung}"
        );
    }

    /// The CsCl-structure Madelung constant (M = 1.762675 w.r.t. the
    /// nearest-neighbour distance).
    #[test]
    fn cscl_madelung_constant() {
        let a = 1.0;
        let lat = CrystalLattice::<f64>::cubic(a);
        let ewald = Ewald::new(&lat);
        let r = vec![TinyVector([0.0, 0.0, 0.0]), TinyVector([0.5, 0.5, 0.5])];
        let q = vec![1.0, -1.0];
        let e = ewald.energy(&r, &q);
        let d = 0.75f64.sqrt(); // nearest-neighbour distance
        let madelung = -e * d / 2.0 * 2.0; // per ion pair: E = -M/d per ion... E_total = 2 ions
                                           // energy per ion = E/2; M = -(E/2) * d ... combine:
        let m = -e / 2.0 * d * 2.0;
        assert!(
            (m - 1.762_675).abs() < 2e-3,
            "CsCl Madelung {m} (raw E {e}, check {madelung})"
        );
    }

    #[test]
    fn energy_independent_of_alpha_partitioning() {
        // Same configuration, two different cells sizes scaled together:
        // Coulomb energy scales as 1/L.
        let r1 = vec![TinyVector([0.0, 0.0, 0.0]), TinyVector([1.0, 1.0, 1.0])];
        let q = vec![1.0, -1.0];
        let e1 = Ewald::new(&CrystalLattice::<f64>::cubic(4.0)).energy(&r1, &q);
        let r2: Vec<_> = r1.iter().map(|p| *p * 2.0).collect();
        let e2 = Ewald::new(&CrystalLattice::<f64>::cubic(8.0)).energy(&r2, &q);
        assert!(
            (e1 - 2.0 * e2).abs() < 1e-4 * e1.abs(),
            "scaling: {e1} vs {}",
            2.0 * e2
        );
    }

    #[test]
    fn translation_invariance() {
        let lat = CrystalLattice::<f64>::cubic(5.0);
        let ewald = Ewald::new(&lat);
        let r = vec![
            TinyVector([1.0, 2.0, 3.0]),
            TinyVector([4.0, 0.5, 2.5]),
            TinyVector([2.2, 4.4, 0.6]),
        ];
        let q = vec![2.0, -1.0, -1.0];
        let e0 = ewald.energy(&r, &q);
        let shift = TinyVector([0.7, -1.3, 2.9]);
        let rs: Vec<_> = r.iter().map(|p| *p + shift).collect();
        let e1 = ewald.energy(&rs, &q);
        assert!((e0 - e1).abs() < 1e-8 * (1.0 + e0.abs()), "{e0} vs {e1}");
    }

    #[test]
    fn kvector_count_reasonable() {
        let ewald = Ewald::new(&CrystalLattice::<f64>::cubic(10.0));
        assert!(ewald.num_kvecs() > 100);
        assert!(ewald.num_kvecs() < 500_000);
    }
}
