//! # qmc-bench
//!
//! Benchmark harness: one binary per figure/table of the paper's
//! evaluation (§8) plus Criterion kernel benches. Each binary prints the
//! data series the corresponding paper figure plots; `--full` switches
//! from the scaled default to paper-sized problems.

#![forbid(unsafe_code)]

use qmc_workloads::{Benchmark, CodeVersion, RunConfig, Size, Workload};

/// Common harness configuration parsed from `std::env::args`.
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Paper-sized problems instead of scaled ones.
    pub full: bool,
    /// Worker threads for single-node runs.
    pub threads: usize,
    /// Target walker population.
    pub walkers: usize,
    /// Measured DMC generations.
    pub steps: usize,
    /// Master seed.
    pub seed: u64,
    /// Repetitions per measurement; the best (max-throughput) rep is
    /// reported to suppress noisy-neighbour variance on shared hosts.
    pub reps: usize,
}

impl HarnessConfig {
    /// Parses `--full`, `--threads N`, `--walkers N`, `--steps N`,
    /// `--seed N` from the process arguments.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let get = |key: &str, default: usize| -> usize {
            args.iter()
                .position(|a| a == key)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        let full = args.iter().any(|a| a == "--full");
        let default_threads = std::thread::available_parallelism().map_or(2, |n| n.get().min(8));
        Self {
            full,
            threads: get("--threads", default_threads),
            walkers: get("--walkers", 8),
            steps: get("--steps", if full { 10 } else { 8 }),
            seed: get("--seed", 42) as u64,
            reps: get("--reps", 2),
        }
    }

    /// Problem size implied by `--full`.
    pub fn size(&self) -> Size {
        if self.full {
            Size::Full
        } else {
            Size::Scaled
        }
    }

    /// Run configuration for [`qmc_workloads::run_dmc_benchmark`].
    pub fn run_config(&self) -> RunConfig {
        RunConfig {
            threads: self.threads,
            walkers: self.walkers,
            steps: self.steps,
            warmup: (self.steps / 4).max(1),
            tau: 0.005,
            seed: self.seed,
            ..Default::default()
        }
    }

    /// Builds the workload for a benchmark at the configured size.
    pub fn workload(&self, b: Benchmark) -> Workload {
        Workload::new(b, self.size(), self.seed)
    }
}

/// Runs a benchmark `cfg.reps` times and returns the best-throughput
/// outcome (timing noise suppression; statistics/memory are identical
/// across reps because the Monte Carlo streams are seeded).
pub fn run_best(
    workload: &Workload,
    code: CodeVersion,
    cfg: &HarnessConfig,
) -> qmc_workloads::RunOutcome {
    run_best_batched(workload, code, cfg, qmc_workloads::Batching::PerWalker)
}

/// [`run_best`] with an explicit walker-batching mode, for comparing the
/// per-walker drive against lock-step crowds of the same population.
pub fn run_best_batched(
    workload: &Workload,
    code: CodeVersion,
    cfg: &HarnessConfig,
    batching: qmc_workloads::Batching,
) -> qmc_workloads::RunOutcome {
    let rc = RunConfig {
        batching,
        // The bench harness measures the batched code path, so crowd runs
        // opt into the fused block refresh — this is what keeps the
        // `Bspline-mw-vgl` column live in the snapshots.
        fused_refresh: matches!(batching, qmc_workloads::Batching::Crowd(_)),
        ..cfg.run_config()
    };
    let mut best: Option<qmc_workloads::RunOutcome> = None;
    for _ in 0..cfg.reps.max(1) {
        let out = qmc_workloads::run_dmc_benchmark(workload, code, &rc);
        let better = match &best {
            Some(b) => out.throughput() > b.throughput(),
            None => true,
        };
        if better {
            best = Some(out);
        }
    }
    best.unwrap()
}

/// Runs a benchmark like [`run_best`] and returns the structured
/// [`qmc_instrument::RunReport`] — the same aggregate `miniqmc --profile
/// json` emits, so every figure/table binary reports from one source of
/// truth instead of private counters.
pub fn run_report(
    workload: &Workload,
    code: CodeVersion,
    cfg: &HarnessConfig,
) -> qmc_instrument::RunReport {
    run_report_batched(workload, code, cfg, qmc_workloads::Batching::PerWalker)
}

/// [`run_report`] with an explicit walker-batching mode.
pub fn run_report_batched(
    workload: &Workload,
    code: CodeVersion,
    cfg: &HarnessConfig,
    batching: qmc_workloads::Batching,
) -> qmc_instrument::RunReport {
    let rc = RunConfig {
        batching,
        fused_refresh: matches!(batching, qmc_workloads::Batching::Crowd(_)),
        ..cfg.run_config()
    };
    run_best_batched(workload, code, cfg, batching).report(workload, &rc)
}

/// GiB formatting helper.
pub fn gib(bytes: usize) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}

/// MiB formatting helper.
pub fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1u64 << 20) as f64
}

/// Runs a simulated multi-rank DMC for any code version (precision
/// dispatch), returning `(seconds, samples, throughput)`.
pub fn multi_rank_throughput(
    workload: &Workload,
    code: CodeVersion,
    ranks: usize,
    total_population: usize,
    steps: usize,
    seed: u64,
) -> qmc_drivers::MultiRankResult {
    use qmc_drivers::{run_multi_rank, MultiRankParams};
    let params = MultiRankParams {
        ranks,
        total_population,
        steps,
        warmup: (steps / 4).max(1),
        tau: 0.005,
        seed,
    };
    let init = workload.initial_positions();
    if code.single_precision() {
        run_multi_rank(|_rank| workload.build_engine_f32(code), init, &params)
    } else {
        run_multi_rank(|_rank| workload.build_engine_f64(code), init, &params)
    }
}
