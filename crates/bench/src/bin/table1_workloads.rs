//! Table 1: "Workloads used in this work and their key properties."
//!
//! Reproduces the paper's table from the workload specifications, and
//! additionally reports the properties of the instances this repository
//! actually constructs (at full and scaled size) with the measured size of
//! the synthetic B-spline tables.

use qmc_bench::gib;
use qmc_workloads::{Benchmark, Size, Workload};

fn main() {
    println!("== Table 1: workload properties (paper values) ==\n");
    let specs: Vec<_> = Benchmark::all().iter().map(|b| b.spec()).collect();
    let row = |label: &str, f: &dyn Fn(&qmc_workloads::WorkloadSpec) -> String| {
        print!("{label:<22}");
        for s in &specs {
            print!("{:>14}", f(s));
        }
        println!();
    };
    row("", &|s| s.name.to_string());
    row("N", &|s| s.paper_n.to_string());
    row("N_ion", &|s| s.paper_nion.to_string());
    row("N_ion/unit cell", &|s| s.paper_ions_per_cell.to_string());
    row("# of unit cells", &|s| s.paper_num_cells.to_string());
    row("Ion types (Z*)", &|s| s.paper_ion_types.to_string());
    row("# of unique SPOs", &|s| s.paper_unique_spos.to_string());
    row("FFT grid", &|s| s.paper_fft_grid.to_string());
    row("B-spline (GB)", &|s| format!("{:.1}", s.paper_bspline_gb));

    println!("\n== Constructed instances (this repository) ==\n");
    for size in [Size::Full, Size::Scaled] {
        println!("-- {size:?} --");
        println!(
            "{:<10} {:>6} {:>7} {:>10} {:>14} {:>16}",
            "name", "N", "N_ion", "orbitals", "grid", "B-spline f32(GB)"
        );
        for b in Benchmark::all() {
            let w = Workload::new(b, size, 1);
            let g = w.spec.grid(size);
            println!(
                "{:<10} {:>6} {:>7} {:>10} {:>14} {:>16.3}",
                w.spec.name,
                w.num_electrons(),
                w.num_ions(),
                w.num_orbitals(),
                format!("{}x{}x{}", g[0], g[1], g[2]),
                gib(w.table_bytes(true)),
            );
        }
        println!();
    }
    println!(
        "note: the constructed tables hold N/2 orbitals per spin (determinant\n\
         requirement); the paper's 'unique SPOs' counts primitive-cell orbitals\n\
         before tiling, reproduced above as metadata."
    );
}
