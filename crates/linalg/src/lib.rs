//! # qmc-linalg
//!
//! Dense linear-algebra substrate for the determinant part of the
//! Slater–Jastrow wavefunction: BLAS-like kernels, LU factorization for
//! from-scratch (re)inversion, the Sherman–Morrison rank-1 inverse update
//! driven by the matrix determinant lemma (Eq. 6 of the paper), and the
//! delayed Woodbury update engine the paper proposes as future work (§8.4).

#![forbid(unsafe_code)]
// Indexed loops over multiple parallel slices are the deliberate idiom in
// the SIMD kernels (mirrors the paper's C++ and keeps the auto-vectorizer's
// job obvious); iterator zips would obscure them.
#![allow(clippy::needless_range_loop)]

pub mod blas;
pub mod delayed;
pub mod lu;
pub mod updates;

pub use blas::{axpy, dot, gemm, gemm_nt, gemm_tn, gemv, gemv_t, ger, scal};
pub use delayed::DelayedInverse;
pub use lu::{invert_with_log_det, LuFactor, SingularMatrix};
pub use updates::{det_ratio_row, sherman_morrison_update, transposed_inverse_log_det};
