//! 1D cubic B-splines on a uniform grid: the basis of the Jastrow functors.
//!
//! §3 of the paper: "The one-dimensional cubic B-spline is extensively used
//! in QMCPACK because of its generality and computational efficiency". Each
//! Jastrow functor `U(r)` (Fig. 3) is such a spline with a finite cutoff
//! `r_cut`; beyond the cutoff the functor and its derivatives vanish, which
//! is the branch condition the paper notes slightly lowers the SIMD
//! efficiency of the Jastrow kernels.

use qmc_containers::{Matrix, Real};

// The 4-point stencil weights moved into the kernel library with the 3D
// evaluation kernels (one definition shared by the 1D functors and every
// tricubic backend); re-exported here so existing imports keep working.
pub use qmc_kernels::bspline_weights;

/// A cubic B-spline functor `U(r)` on `[0, r_cut)` with uniform knots.
///
/// The functor evaluates to exactly zero (value and derivatives) for
/// `r >= r_cut`, matching QMCPACK's `BsplineFunctor`.
#[derive(Clone, Debug)]
pub struct CubicBspline1D<T: Real> {
    /// Control coefficients, `n_knots + 2` of them.
    coefs: Vec<T>,
    /// Cutoff radius.
    r_cut: T,
    /// Inverse grid spacing `(n_knots - 1) / r_cut`.
    inv_h: T,
}

impl<T: Real> CubicBspline1D<T> {
    /// Builds a functor from raw control coefficients (`n_knots + 2` values
    /// for `n_knots` uniform knots on `[0, r_cut]`).
    pub fn from_coefficients(coefs: Vec<T>, r_cut: T) -> Self {
        assert!(coefs.len() >= 4, "need at least 4 coefficients");
        assert!(r_cut > T::ZERO);
        let n_knots = coefs.len() - 2;
        let inv_h = T::from_usize(n_knots - 1) / r_cut;
        Self {
            coefs,
            r_cut,
            inv_h,
        }
    }

    /// Fits the spline to interpolate `f` at the knots with a prescribed
    /// derivative (cusp) at `r = 0` and zero derivative at `r = r_cut`.
    ///
    /// The fit solves the `(n+2) x (n+2)` collocation system with dense LU;
    /// functors are tiny (10-20 knots) so this costs nothing.
    // qmclint: cold — coefficient fitting is functor construction at setup,
    // not a per-step kernel (10-20 knot systems, solved once).
    pub fn fit(f: impl Fn(f64) -> f64, cusp: f64, r_cut: f64, n_knots: usize) -> Self {
        assert!(n_knots >= 4);
        let n = n_knots;
        let h = r_cut / (n as f64 - 1.0);
        let dim = n + 2;
        // Unknowns c[0..n+2]; spline(knot j) uses c[j], c[j+1], c[j+2] with
        // weights (1/6, 4/6, 1/6); derivative weights (-1/2h, 0, 1/2h).
        let mut a = Matrix::<f64>::zeros(dim, dim);
        let mut b = vec![0.0f64; dim];
        // Interpolation rows.
        for j in 0..n {
            a[(j, j)] = 1.0 / 6.0;
            a[(j, j + 1)] = 4.0 / 6.0;
            a[(j, j + 2)] = 1.0 / 6.0;
            b[j] = f(j as f64 * h);
        }
        // Cusp condition at r=0.
        a[(n, 0)] = -0.5 / h;
        a[(n, 2)] = 0.5 / h;
        b[n] = cusp;
        // Zero slope at cutoff.
        a[(n + 1, n - 1)] = -0.5 / h;
        a[(n + 1, n + 1)] = 0.5 / h;
        b[n + 1] = 0.0;

        let lu = qmc_linalg::LuFactor::new(&a).expect("collocation matrix singular");
        lu.solve_in_place(&mut b);
        let coefs = b.iter().map(|&x| T::from_f64(x)).collect();
        Self::from_coefficients(coefs, T::from_f64(r_cut))
    }

    /// Cutoff radius beyond which the functor vanishes.
    #[inline]
    pub fn r_cut(&self) -> T {
        self.r_cut
    }

    /// Number of control coefficients.
    pub fn num_coefficients(&self) -> usize {
        self.coefs.len()
    }

    /// Value `U(r)`; zero at and beyond the cutoff.
    #[inline]
    pub fn evaluate(&self, r: T) -> T {
        if r >= self.r_cut {
            return T::ZERO;
        }
        let t = r * self.inv_h;
        let i = t.floor();
        let u = t - i;
        // Clamp: in reduced precision `r < r_cut` can still round the
        // interval index onto the last knot.
        let i = (i.to_f64() as usize).min(self.coefs.len() - 4);
        let (w, _, _) = bspline_weights(u);
        let c = &self.coefs[i..i + 4];
        w[0].mul_add(c[0], w[1].mul_add(c[1], w[2].mul_add(c[2], w[3] * c[3])))
    }

    /// Value, first and second radial derivative at `r`.
    #[inline]
    pub fn evaluate_vgl(&self, r: T) -> (T, T, T) {
        if r >= self.r_cut {
            return (T::ZERO, T::ZERO, T::ZERO);
        }
        let t = r * self.inv_h;
        let i = t.floor();
        let u = t - i;
        let i = (i.to_f64() as usize).min(self.coefs.len() - 4);
        let (w, dw, d2w) = bspline_weights(u);
        let c = &self.coefs[i..i + 4];
        let v = w[0].mul_add(c[0], w[1].mul_add(c[1], w[2].mul_add(c[2], w[3] * c[3])));
        let dv = dw[0].mul_add(c[0], dw[1].mul_add(c[1], dw[2].mul_add(c[2], dw[3] * c[3])));
        let d2v = d2w[0].mul_add(
            c[0],
            d2w[1].mul_add(c[1], d2w[2].mul_add(c[2], d2w[3] * c[3])),
        );
        (v, dv * self.inv_h, d2v * self.inv_h * self.inv_h)
    }

    /// Sum of `U(d)` over a slice of distances; the vectorizable inner loop
    /// of the compute-on-the-fly two-body Jastrow. Entries with `skip ==
    /// Some(i)` index (the active electron itself) are excluded.
    pub fn sum_batch(&self, distances: &[T], skip: Option<usize>) -> T {
        let mut acc = T::ZERO;
        for (i, &d) in distances.iter().enumerate() {
            if Some(i) == skip {
                continue;
            }
            if d < self.r_cut {
                acc += self.evaluate(d);
            }
        }
        acc
    }

    /// Casts the functor to another precision.
    // qmclint: cold — one-time precision conversion of the functor table at
    // setup (the paper's f64-fit, f32-evaluate pipeline).
    pub fn cast<U: Real>(&self) -> CubicBspline1D<U> {
        CubicBspline1D {
            coefs: self.coefs.iter().map(|c| U::from_f64(c.to_f64())).collect(),
            r_cut: U::from_f64(self.r_cut.to_f64()),
            inv_h: U::from_f64(self.inv_h.to_f64()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_partition_of_unity() {
        for &u in &[0.0f64, 0.25, 0.5, 0.75, 0.999] {
            let (w, dw, d2w) = bspline_weights(u);
            let sw: f64 = w.iter().sum();
            let sdw: f64 = dw.iter().sum();
            let sd2w: f64 = d2w.iter().sum();
            assert!((sw - 1.0).abs() < 1e-14, "sum w = {sw}");
            assert!(sdw.abs() < 1e-14);
            assert!(sd2w.abs() < 1e-13);
        }
    }

    #[test]
    fn weights_reproduce_linear_function() {
        // Control points c_i = i make the spline exactly f(t) = t at u
        // offset: value at local u with points (k-1..k+2) is k + u.
        for &u in &[0.0f64, 0.3, 0.7] {
            let (w, dw, _) = bspline_weights(u);
            let c = [0.0, 1.0, 2.0, 3.0];
            let v: f64 = w.iter().zip(&c).map(|(a, b)| a * b).sum();
            let dv: f64 = dw.iter().zip(&c).map(|(a, b)| a * b).sum();
            assert!((v - (1.0 + u)).abs() < 1e-14);
            assert!((dv - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn fit_interpolates_at_knots() {
        let f = |r: f64| (-0.8 * r).exp() * (1.0 + 0.2 * r);
        let sp = CubicBspline1D::<f64>::fit(f, -0.8 + 0.2, 3.0, 12);
        let h = 3.0 / 11.0;
        for j in 0..11 {
            let r = j as f64 * h;
            assert!(
                (sp.evaluate(r) - f(r)).abs() < 1e-10,
                "knot {j}: {} vs {}",
                sp.evaluate(r),
                f(r)
            );
        }
    }

    #[test]
    fn cusp_condition_enforced() {
        let f = |r: f64| 0.5 * (-r).exp();
        let cusp = -0.25;
        let sp = CubicBspline1D::<f64>::fit(f, cusp, 2.5, 10);
        let (_, du, _) = sp.evaluate_vgl(0.0);
        assert!((du - cusp).abs() < 1e-10, "du(0) = {du}");
    }

    #[test]
    fn vanishes_beyond_cutoff() {
        let sp = CubicBspline1D::<f64>::fit(|r| 1.0 - r / 2.0, -0.5, 2.0, 8);
        let (v, d, d2) = sp.evaluate_vgl(2.0);
        assert_eq!((v, d, d2), (0.0, 0.0, 0.0));
        assert_eq!(sp.evaluate(5.0), 0.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let f = |r: f64| (-(r * r) / 2.0).exp();
        let sp = CubicBspline1D::<f64>::fit(f, 0.0, 4.0, 40);
        let eps = 1e-5;
        for &r in &[0.5f64, 1.3, 2.1, 3.4] {
            let (v, dv, d2v) = sp.evaluate_vgl(r);
            let vp = sp.evaluate(r + eps);
            let vm = sp.evaluate(r - eps);
            assert!((dv - (vp - vm) / (2.0 * eps)).abs() < 1e-6, "dv at {r}");
            assert!(
                (d2v - (vp - 2.0 * v + vm) / (eps * eps)).abs() < 1e-4,
                "d2v at {r}"
            );
        }
    }

    #[test]
    fn f32_tracks_f64() {
        let f = |r: f64| (-0.5 * r).exp();
        let sp64 = CubicBspline1D::<f64>::fit(f, -0.5, 3.0, 16);
        let sp32: CubicBspline1D<f32> = sp64.cast();
        for i in 0..30 {
            let r = i as f64 * 0.1;
            let d = (sp64.evaluate(r) - sp32.evaluate(r as f32) as f64).abs();
            assert!(d < 1e-6, "r={r}: diff {d}");
        }
    }

    #[test]
    fn sum_batch_matches_scalar_loop() {
        let sp = CubicBspline1D::<f64>::fit(|r| 1.0 / (1.0 + r), -1.0, 2.0, 8);
        let ds = [0.1, 0.5, 2.5, 1.0, 0.9];
        let manual: f64 = ds
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 2)
            .map(|(_, &d)| sp.evaluate(d))
            .sum();
        // index 2 is beyond cutoff anyway; also test skip semantics
        assert!((sp.sum_batch(&ds, None) - manual).abs() < 1e-14);
        let manual_skip: f64 = manual - sp.evaluate(0.1);
        assert!((sp.sum_batch(&ds, Some(0)) - manual_skip).abs() < 1e-14);
    }
}
