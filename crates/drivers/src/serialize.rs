//! Walker wire serialization.
//!
//! The paper's load balancing performs "send/recv of serialized Walker
//! objects" (§8), and one quantified win of the memory work is that "the
//! memory-reduction algorithms in Jastrow reduce the Walker message size by
//! 22.5 MB for the NiO-64 problem". This module provides that
//! serialization: a walker packs to a flat byte message (positions,
//! properties, anonymous buffer with its read cursors, raw RNG state) and
//! unpacks bit-exactly.
//!
//! **RNG policy.** Serialization is a pure function of the walker: the
//! exact xoshiro256** state words go on the wire, so serializing never
//! perturbs the source walker and a deserialized walker continues its
//! stream bitwise — the property checkpoint/restart is built on. Migration
//! between ranks wants the *opposite* statistical contract (decorrelated
//! streams on arrival, since two ranks must never replay one stream), so
//! re-keying is its own explicit step: call [`reseed_for_migration`]
//! before serializing a walker that is leaving for another rank.

use crate::walker::Walker;
use qmc_containers::{Pos, Real, TinyVector};
use qmc_wavefunction::WalkerBuffer;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Error decoding a walker wire message: offset and what was expected.
/// Checked decoding exists so a truncated or corrupt checkpoint surfaces
/// as a clean error instead of a slice-index panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset at which decoding failed.
    pub at: usize,
    /// What the decoder was reading.
    pub what: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "walker message invalid at byte {}: {}",
            self.at, self.what
        )
    }
}

impl std::error::Error for WireError {}

/// Checked little-endian reader over a wire message.
pub(crate) struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn err(&self, what: &str) -> WireError {
        WireError {
            at: self.pos,
            what: what.to_string(),
        }
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        let end = self.pos.checked_add(8).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(self.err(&format!("truncated while reading {what}")));
        };
        let v = u64::from_le_bytes(self.buf[self.pos..end].try_into().expect("8-byte slice"));
        self.pos = end;
        Ok(v)
    }

    pub(crate) fn f64(&mut self, what: &str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// A `u64` count that must also be plausible: the remaining bytes must
    /// be able to hold `count * elem_bytes`. Guards against corrupt length
    /// prefixes requesting absurd allocations.
    pub(crate) fn count(&mut self, what: &str, elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u64(what)?;
        let need = (n as u128) * (elem_bytes as u128);
        if need > (self.buf.len() - self.pos) as u128 {
            return Err(self.err(&format!(
                "length prefix for {what} ({n} elements) exceeds remaining {} bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(usize::try_from(n).expect("count bounded by buffer length"))
    }

    /// Takes `n` raw bytes (length typically pre-validated via [`Self::count`]).
    pub(crate) fn bytes(&mut self, what: &str, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(self.err(&format!("truncated while reading {what}")));
        };
        let b = &self.buf[self.pos..end];
        self.pos = end;
        Ok(b)
    }

    pub(crate) fn finish(self, what: &str) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError {
                at: self.pos,
                what: format!("{} trailing bytes after {what}", self.buf.len() - self.pos),
            })
        }
    }

    pub(crate) fn offset(&self) -> usize {
        self.pos
    }
}

pub(crate) fn push_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

pub(crate) fn push_f64(out: &mut Vec<u8>, x: f64) {
    out.extend_from_slice(&x.to_bits().to_le_bytes());
}

/// Serializes a walker into a flat byte message. Side-effect-free: the
/// same walker serializes to the same bytes every time, and a mid-block
/// snapshot leaves the buffer read cursors untouched.
///
/// Layout: `n_particles, positions (3 f64 each), weight, multiplicity,
/// age, e_local, log_psi, rng state (4 u64), n_reals, reals (widened to
/// f64), r_cursor, n_doubles, doubles, d_cursor`.
pub fn serialize_walker<T: Real>(w: &Walker<T>) -> Vec<u8> {
    let mut out = Vec::with_capacity(w.bytes() + 128);
    push_u64(&mut out, w.r.len() as u64);
    for p in &w.r {
        for d in 0..3 {
            push_f64(&mut out, p[d]);
        }
    }
    push_f64(&mut out, w.weight);
    push_f64(&mut out, w.multiplicity);
    push_u64(&mut out, w.age as u64);
    push_f64(&mut out, w.e_local);
    push_f64(&mut out, w.log_psi);
    for s in w.rng.state() {
        push_u64(&mut out, s);
    }

    // Anonymous buffer: cursor-independent snapshot plus the cursors
    // themselves, so a walker checkpointed mid-consumption restores
    // mid-consumption.
    let (r_cursor, d_cursor) = w.buffer.cursors();
    let reals = w.buffer.reals();
    push_u64(&mut out, reals.len() as u64);
    for x in reals {
        push_f64(&mut out, x.to_f64());
    }
    push_u64(&mut out, r_cursor as u64);
    let doubles = w.buffer.doubles();
    push_u64(&mut out, doubles.len() as u64);
    for x in doubles {
        push_f64(&mut out, *x);
    }
    push_u64(&mut out, d_cursor as u64);
    out
}

/// Re-keys a walker's RNG stream in place: draws a fresh seed from the
/// walker's own stream and restarts from it. This is the statistical
/// contract rank migration wants (decorrelated streams on arrival, as MPI
/// codes re-key because raw generator state is implementation-defined) —
/// call it before [`serialize_walker`] when the walker is leaving for
/// another rank. Checkpointing deliberately does *not* re-key.
pub fn reseed_for_migration<T: Real>(w: &mut Walker<T>) {
    let reseed: u64 = w.rng.random();
    w.rng = StdRng::seed_from_u64(reseed);
}

/// Checked deserialization of a walker message produced by
/// [`serialize_walker`]: returns a clean [`WireError`] on truncated or
/// trailing bytes instead of panicking.
pub fn try_deserialize_walker<T: Real>(msg: &[u8]) -> Result<Walker<T>, WireError> {
    let mut r = WireReader::new(msg);
    let w = decode_walker(&mut r)?;
    r.finish("walker message")?;
    Ok(w)
}

/// Decodes one walker from the reader's current position (shared by the
/// single-message path and the checkpoint codec, which concatenates
/// walker records).
pub(crate) fn decode_walker<T: Real>(r: &mut WireReader<'_>) -> Result<Walker<T>, WireError> {
    let n = r.count("particle count", 24)?;
    let mut pos: Vec<Pos<f64>> = Vec::with_capacity(n);
    for _ in 0..n {
        let x = r.f64("position")?;
        let y = r.f64("position")?;
        let z = r.f64("position")?;
        pos.push(TinyVector([x, y, z]));
    }
    let weight = r.f64("weight")?;
    let multiplicity = r.f64("multiplicity")?;
    let age = r.u64("age")? as usize;
    let e_local = r.f64("e_local")?;
    let log_psi = r.f64("log_psi")?;
    let mut state = [0u64; 4];
    for s in &mut state {
        *s = r.u64("rng state")?;
    }

    let nr = r.count("buffer reals", 8)?;
    let mut buffer = WalkerBuffer::new();
    let mut reals: Vec<T> = Vec::with_capacity(nr);
    for _ in 0..nr {
        reals.push(T::from_f64(r.f64("buffer real")?));
    }
    buffer.put_slice(&reals);
    let r_cursor = r.u64("real cursor")?;
    let nd = r.count("buffer doubles", 8)?;
    for _ in 0..nd {
        buffer.put_f64(r.f64("buffer double")?);
    }
    let d_cursor = r.u64("double cursor")?;
    if r_cursor > nr as u64 || d_cursor > nd as u64 {
        return Err(WireError {
            at: r.offset(),
            what: format!("buffer cursors ({r_cursor}, {d_cursor}) past stream ends ({nr}, {nd})"),
        });
    }
    // Bounded by the stream lengths just checked, so the casts are exact.
    buffer.set_cursors(r_cursor as usize, d_cursor as usize);

    let mut w = Walker::new(pos, 0);
    w.weight = weight;
    w.multiplicity = multiplicity;
    w.age = age;
    w.e_local = e_local;
    w.log_psi = log_psi;
    w.rng = StdRng::from_state(state);
    w.buffer = buffer;
    Ok(w)
}

/// Deserializes a walker, panicking on malformed input. Rank migration
/// uses this (its messages come straight from [`serialize_walker`] in the
/// same process); anything reading from disk goes through
/// [`try_deserialize_walker`].
pub fn deserialize_walker<T: Real>(msg: &[u8]) -> Walker<T> {
    try_deserialize_walker(msg).unwrap_or_else(|e| panic!("invalid walker message: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walker::zero_positions;
    use rand::Rng;

    fn rich_walker() -> Walker<f32> {
        let mut w = Walker::<f32>::new(
            vec![TinyVector([1.0, 2.0, 3.0]), TinyVector([-4.5, 0.25, 9.125])],
            7,
        );
        w.weight = 1.75;
        w.multiplicity = 2.0;
        w.age = 3;
        w.e_local = -12.5;
        w.log_psi = -3.25;
        w.buffer.put_slice(&[1.5f32, -2.5, 0.125]);
        w.buffer.put_f64(99.0);
        w
    }

    #[test]
    fn roundtrip_preserves_everything_including_rng() {
        let mut w = rich_walker();
        let msg = serialize_walker(&w);
        let mut back: Walker<f32> = deserialize_walker(&msg);
        assert_eq!(back.r, w.r);
        assert_eq!(back.weight, 1.75);
        assert_eq!(back.multiplicity, 2.0);
        assert_eq!(back.age, 3);
        assert_eq!(back.e_local, -12.5);
        assert_eq!(back.log_psi, -3.25);
        // Buffer contents bit-exact.
        back.buffer.rewind();
        let mut s = [0.0f32; 3];
        back.buffer.get_slice(&mut s);
        assert_eq!(s, [1.5, -2.5, 0.125]);
        assert_eq!(back.buffer.get_f64(), 99.0);
        assert!(back.buffer.fully_consumed());
        // The RNG stream continues bitwise: restore is exact, not re-keyed.
        for _ in 0..100 {
            assert_eq!(w.rng.next_u64(), back.rng.next_u64());
        }
    }

    #[test]
    fn double_serialize_is_bitwise_equal_and_side_effect_free() {
        let w = rich_walker();
        let rng_before = w.rng.state();
        let cursors_before = w.buffer.cursors();
        let a = serialize_walker(&w);
        let b = serialize_walker(&w);
        assert_eq!(a, b, "serializing twice must produce identical bytes");
        assert_eq!(w.rng.state(), rng_before, "serialize drew from the RNG");
        assert_eq!(w.buffer.cursors(), cursors_before);
    }

    #[test]
    fn mid_consumption_snapshot_preserves_and_restores_cursors() {
        // Regression for the old `buffer_contents` rewinding the cursor:
        // serializing a walker mid-block must neither disturb the source
        // cursor nor lose the position on restore.
        let mut w = Walker::<f64>::new(zero_positions(1), 5);
        w.buffer.put_slice(&[10.0, 20.0, 30.0]);
        w.buffer.put_f64(-1.0);
        w.buffer.put_f64(-2.0);
        w.buffer.rewind();
        let mut one = [0.0f64; 1];
        w.buffer.get_slice(&mut one);
        assert_eq!(w.buffer.get_f64(), -1.0);
        let mid = w.buffer.cursors();

        let msg = serialize_walker(&w);
        assert_eq!(w.buffer.cursors(), mid, "snapshot moved the cursor");
        // Source continues where it left off.
        w.buffer.get_slice(&mut one);
        assert_eq!(one[0], 20.0);

        // Restored walker resumes from the same mid-consumption position.
        let mut back: Walker<f64> = deserialize_walker(&msg);
        assert_eq!(back.buffer.cursors(), mid);
        back.buffer.get_slice(&mut one);
        assert_eq!(one[0], 20.0);
        back.buffer.get_slice(&mut one);
        assert_eq!(one[0], 30.0);
        assert_eq!(back.buffer.get_f64(), -2.0);
        assert!(back.buffer.fully_consumed());
    }

    #[test]
    fn reseed_for_migration_rekeys_the_stream() {
        let mut a = Walker::<f64>::new(zero_positions(1), 9);
        let b = Walker::<f64>::new(zero_positions(1), 9);
        assert_eq!(a.rng.state(), b.rng.state());
        reseed_for_migration(&mut a);
        assert_ne!(a.rng.state(), b.rng.state(), "migration must decorrelate");
        // And the re-key shows up on the wire (unlike pure serialization).
        assert_ne!(serialize_walker(&a), serialize_walker(&b));
    }

    #[test]
    fn truncated_message_is_an_error_not_a_panic() {
        let w = rich_walker();
        let msg = serialize_walker(&w);
        for cut in [0, 1, 7, 8, 60, msg.len() - 1] {
            let err = try_deserialize_walker::<f32>(&msg[..cut]);
            assert!(err.is_err(), "cut at {cut} must fail");
        }
        // Trailing garbage is rejected too.
        let mut long = msg.clone();
        long.extend_from_slice(&[0u8; 4]);
        assert!(try_deserialize_walker::<f32>(&long).is_err());
    }

    #[test]
    fn absurd_length_prefix_is_rejected() {
        // A corrupt count must not drive a huge allocation.
        let mut msg = Vec::new();
        push_u64(&mut msg, u64::MAX);
        let err = try_deserialize_walker::<f64>(&msg).unwrap_err();
        assert!(err.what.contains("length prefix"), "{err}");
    }

    #[test]
    fn message_size_tracks_buffer_precision_payload() {
        // The message is dominated by the buffer for realistic walkers:
        // this is the "22.5 MB smaller Walker message" effect in miniature
        // (note the wire format widens reals to f64, so the f32 advantage
        // on the wire comes from the 5N^2 -> 5N payload reduction).
        let mut small = Walker::<f32>::new(zero_positions(4), 1);
        small.buffer.put_slice(&vec![0.0f32; 100]);
        let mut big = Walker::<f32>::new(zero_positions(4), 1);
        big.buffer.put_slice(&vec![0.0f32; 10_000]);
        let m_small = serialize_walker(&small).len();
        let m_big = serialize_walker(&big).len();
        assert!(m_big > m_small + 9_000 * 8);
    }

    #[test]
    fn empty_buffer_roundtrip() {
        let w = Walker::<f64>::new(zero_positions(1), 3);
        let msg = serialize_walker(&w);
        let back: Walker<f64> = deserialize_walker(&msg);
        assert_eq!(back.r.len(), 1);
        assert_eq!(back.buffer.bytes(), 0);
    }
}
