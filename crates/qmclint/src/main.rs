//! `qmclint` CLI: lints the workspace and exits nonzero on findings.
//!
//! ```text
//! qmclint [--root PATH] [--json]
//! ```
//!
//! Human output is one `file:line: [rule] message` block per finding;
//! `--json` emits the `qmclint/3` machine-readable report on stdout
//! (diagnostics still summarized on stderr). Exit codes: 0 clean,
//! 1 findings, 2 bad usage.

use std::path::PathBuf;

fn main() {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => {
                if let Some(p) = args.next() {
                    root = PathBuf::from(p);
                } else {
                    eprintln!("qmclint: --root requires a path");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: qmclint [--root PATH] [--json]");
                std::process::exit(0);
            }
            other => {
                eprintln!("qmclint: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    let report = qmclint::lint_workspace(&root);
    if json {
        println!(
            "{}",
            qmclint::render_json(
                &report.diagnostics,
                report.files_scanned,
                &report.effects,
                &report.par
            )
        );
    } else {
        for d in &report.diagnostics {
            println!("{}", d.render_human());
        }
    }
    eprintln!(
        "qmclint: {} files scanned, {} diagnostic{}",
        report.files_scanned,
        report.diagnostics.len(),
        if report.diagnostics.len() == 1 {
            ""
        } else {
            "s"
        }
    );
    if !report.diagnostics.is_empty() {
        std::process::exit(1);
    }
}
