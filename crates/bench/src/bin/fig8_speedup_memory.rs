//! Figure 8: "Speedup and memory-usage reduction of NiO benchmarks" —
//! throughput (normalized to Ref) and memory usage for NiO-32 and NiO-64
//! across the paper's three code versions (Ref, Ref+MP, Current).
//!
//! The memory model is the paper's: shared read-only spline table +
//! per-thread engine state + per-walker buffers
//! (`gamma (N_th + N_w) N^2` + table).

use qmc_bench::{mib, run_best, HarnessConfig};
use qmc_workloads::{Benchmark, CodeVersion};

fn main() {
    let cfg = HarnessConfig::from_env();
    for b in [Benchmark::NiO32, Benchmark::NiO64] {
        let w = cfg.workload(b);
        println!(
            "\n== Fig 8: {} ({} electrons), {} threads, {} walkers ==",
            w.spec.name,
            w.num_electrons(),
            cfg.threads,
            cfg.walkers
        );
        println!(
            "{:<10} {:>14} {:>10} {:>12} {:>12} {:>12} {:>12}",
            "version", "samp/s", "speedup", "table MiB", "engine MiB", "walker MiB", "total MiB"
        );

        let mut base = 0.0f64;
        for code in CodeVersion::paper_ladder() {
            let out = run_best(&w, code, &cfg);
            let thr = out.throughput();
            if base == 0.0 {
                base = thr;
            }
            let total = out.total_bytes(cfg.threads, cfg.walkers);
            println!(
                "{:<10} {:>14.1} {:>9.2}x {:>12.1} {:>12.2} {:>12.2} {:>12.1}",
                out.label,
                thr,
                thr / base,
                mib(out.table_bytes),
                mib(out.engine_bytes),
                mib(out.walker_bytes),
                mib(total)
            );
        }
    }
    println!(
        "\n(expected shape per the paper: Ref+MP gains more on the larger,\n\
         bandwidth-bound NiO-64; Current more than doubles Ref+MP; memory\n\
         decreases monotonically down the ladder.)"
    );
}
