//! # qmcsched — deterministic schedule checker for the QMC drivers
//!
//! The lock-step crowd drivers and the per-walker thread crews claim a
//! strong property: results are **bitwise independent of the thread
//! schedule**, because every walker carries its own RNG stream and every
//! cross-walker reduction happens sequentially in walker order after the
//! parallel section. PR 1's tests exercised that claim only under the
//! schedules the OS happened to produce. This crate makes the claim a
//! checked artifact, loom-style but sized to our in-tree shims: the rayon
//! shim's work distribution is replaced by an explicitly enumerated /
//! seeded set of thread interleavings (`rayon::schedule`), the same run is
//! repeated under each, and every per-walker result must come out
//! identical to the bit.
//!
//! Two layers consume it:
//!
//! * `cargo test -p qmcsched` — the parity tests CI gates on.
//! * the `qmcsched` binary — emits a `qmcsched/1` JSON report (same
//!   hand-rolled writer as the run report) for the observability pipeline.

#![forbid(unsafe_code)]

use qmc_containers::Real;
use qmc_crowd::{run_dmc_crowd, CrowdScheduler};
use qmc_drivers::{
    initial_population, run_dmc_parallel, run_vmc_parallel, Batching, DmcParams, QmcEngine,
    VmcParams, Walker,
};
use qmc_instrument::json::JsonWriter;
use qmc_workloads::{Benchmark, CodeVersion, Size, Workload};
use rayon::schedule::{with_schedule, Order, Schedule};

/// The explored schedule set: one free-running control plus serialized and
/// staggered permutations of the task order. Ten schedules, all with
/// distinct labels; the serialized orders are pairwise-distinct
/// permutations for any task count ≥ 4 (asserted in the tests).
pub fn schedules() -> Vec<Schedule> {
    vec![
        Schedule::Concurrent,
        Schedule::Serial(Order::Forward),
        Schedule::Serial(Order::Reverse),
        Schedule::Serial(Order::Rotate(1)),
        Schedule::Serial(Order::Rotate(3)),
        Schedule::Serial(Order::EvenOdd),
        Schedule::Serial(Order::Shuffle(0xA5A5)),
        Schedule::Serial(Order::Shuffle(0x0FF1CE)),
        Schedule::Staggered(Order::Reverse),
        Schedule::Staggered(Order::Shuffle(0xBEEF)),
    ]
}

// The FNV-1a digest machinery started here and moved into
// `qmc_drivers::fingerprint` when checkpoint/restart needed it too; the
// schedule harness keeps its public names via re-export. The full-state
// variants (`walker_digest_full`, `population_digest`) additionally fold
// the raw RNG state words — serialization no longer perturbs the walker,
// so digesting the stream is free.
pub use qmc_drivers::fingerprint::{population_digest, walker_digest, walker_digest_full, Fnv};

/// Outcome of one driver run under one schedule: per-walker digests plus
/// the driver's scalar outputs (all compared bitwise).
#[derive(Clone, Debug, PartialEq)]
pub struct RunFingerprint {
    /// Schedule label the run executed under.
    pub schedule: String,
    /// One digest per surviving walker, in walker order.
    pub walkers: Vec<u64>,
    /// Driver scalar outputs folded into one digest (energy mean bits,
    /// acceptance bits, sample count).
    pub scalars: u64,
}

/// Parity verdict for one driver across the whole schedule set.
#[derive(Clone, Debug)]
pub struct DriverParity {
    /// Driver label (`vmc-parallel`, `dmc-parallel`, `dmc-crowd`).
    pub driver: String,
    /// One fingerprint per explored schedule.
    pub runs: Vec<RunFingerprint>,
}

impl DriverParity {
    /// True when every run produced bitwise-identical per-walker digests
    /// and scalar outputs.
    pub fn parity(&self) -> bool {
        self.runs
            .windows(2)
            .all(|w| w[0].walkers == w[1].walkers && w[0].scalars == w[1].scalars)
    }
}

/// Harness problem size: small enough for CI, uneven enough to exercise
/// ragged chunking (walkers not divisible by threads or crowd size).
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Worker threads (tasks per scope — the unit the schedules permute).
    pub threads: usize,
    /// Walker population.
    pub walkers: usize,
    /// DMC generations / VMC blocks.
    pub steps: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            walkers: 7,
            steps: 4,
            seed: 99,
        }
    }
}

fn workload(seed: u64) -> Workload {
    Workload::new(Benchmark::Graphite, Size::Scaled, seed)
}

/// Runs the parallel VMC driver once under each schedule.
pub fn explore_vmc(cfg: &HarnessConfig) -> DriverParity {
    let w = workload(cfg.seed);
    let params = VmcParams {
        blocks: cfg.steps,
        steps_per_block: 3,
        tau: 0.3,
        measure_every: 1,
        batching: Batching::PerWalker,
    };
    let runs = schedules()
        .into_iter()
        .map(|sched| {
            with_schedule(sched, || {
                let mut engines: Vec<QmcEngine<f32>> = (0..cfg.threads)
                    .map(|_| w.build_engine_f32(CodeVersion::Current))
                    .collect();
                let mut walkers = initial_population(w.initial_positions(), cfg.walkers, cfg.seed);
                let res = run_vmc_parallel(&mut engines, &mut walkers, &params);
                let mut scalars = Fnv::new();
                scalars.f64(res.energy.mean());
                scalars.f64(res.acceptance);
                scalars.u64(res.samples);
                RunFingerprint {
                    schedule: sched.label(),
                    walkers: walkers.iter().map(walker_digest).collect(),
                    scalars: scalars.value(),
                }
            })
        })
        .collect();
    DriverParity {
        driver: "vmc-parallel".into(),
        runs,
    }
}

fn dmc_params(cfg: &HarnessConfig, batching: Batching) -> DmcParams {
    DmcParams {
        steps: cfg.steps,
        warmup: 1,
        tau: 0.003,
        target_population: cfg.walkers,
        recompute_every: 2,
        seed: cfg.seed ^ 0xD00D,
        batching,
    }
}

fn dmc_fingerprint<T: Real>(
    sched: Schedule,
    walkers: &[Walker<T>],
    res: &qmc_drivers::DmcResult,
) -> RunFingerprint {
    let mut scalars = Fnv::new();
    scalars.f64(res.energy.mean());
    scalars.f64(res.acceptance);
    scalars.f64(res.e_trial);
    scalars.u64(res.samples);
    for &p in &res.population {
        scalars.u64(p as u64);
    }
    RunFingerprint {
        schedule: sched.label(),
        walkers: walkers.iter().map(walker_digest).collect(),
        scalars: scalars.value(),
    }
}

/// Runs the per-walker parallel DMC driver once under each schedule.
pub fn explore_dmc_parallel(cfg: &HarnessConfig) -> DriverParity {
    let w = workload(cfg.seed);
    let params = dmc_params(cfg, Batching::PerWalker);
    let runs = schedules()
        .into_iter()
        .map(|sched| {
            with_schedule(sched, || {
                let mut engines: Vec<QmcEngine<f32>> = (0..cfg.threads)
                    .map(|_| w.build_engine_f32(CodeVersion::Current))
                    .collect();
                let mut walkers = initial_population(w.initial_positions(), cfg.walkers, cfg.seed);
                let (res, _profile) = run_dmc_parallel(&mut engines, &mut walkers, &params);
                dmc_fingerprint(sched, &walkers, &res)
            })
        })
        .collect();
    DriverParity {
        driver: "dmc-parallel".into(),
        runs,
    }
}

/// Runs the lock-step crowd DMC driver once under each schedule.
pub fn explore_dmc_crowd(cfg: &HarnessConfig) -> DriverParity {
    let w = workload(cfg.seed);
    let params = dmc_params(cfg, Batching::Crowd(2));
    let runs = schedules()
        .into_iter()
        .map(|sched| {
            with_schedule(sched, || {
                let scheduler = CrowdScheduler::new(cfg.threads, 2);
                let mut crowds =
                    scheduler.build_crowds(|| w.build_engine_f32(CodeVersion::Current));
                let mut walkers = initial_population(w.initial_positions(), cfg.walkers, cfg.seed);
                let (res, _profile) = run_dmc_crowd(&mut crowds, &mut walkers, &params);
                dmc_fingerprint(sched, &walkers, &res)
            })
        })
        .collect();
    DriverParity {
        driver: "dmc-crowd".into(),
        runs,
    }
}

/// Runs the parallel VMC driver once per kernel backend and compares the
/// trajectories per walker. The kernel library's verification contract
/// (`qmc-kernels`) documents `reference` and `soa` as bitwise-identical
/// on every kernel family, so the whole VMC trajectory must digest
/// equal to the bit — this case turns that documented contract into a
/// gated artifact. `simd` is deliberately excluded: its J2 kernel only
/// promises a tolerance, so trajectories may legitimately diverge.
pub fn explore_backends(cfg: &HarnessConfig) -> DriverParity {
    let w = workload(cfg.seed);
    let params = VmcParams {
        blocks: cfg.steps,
        steps_per_block: 3,
        tau: 0.3,
        measure_every: 1,
        batching: Batching::PerWalker,
    };
    let prev = qmc_kernels::Backend::current();
    let runs = [qmc_kernels::Backend::Reference, qmc_kernels::Backend::Soa]
        .into_iter()
        .map(|backend| {
            // Engines capture the backend at construction, so it must be
            // pinned before the build.
            qmc_kernels::set_backend(backend);
            let mut engines: Vec<QmcEngine<f32>> = (0..cfg.threads)
                .map(|_| w.build_engine_f32(CodeVersion::Current))
                .collect();
            let mut walkers = initial_population(w.initial_positions(), cfg.walkers, cfg.seed);
            let res = run_vmc_parallel(&mut engines, &mut walkers, &params);
            let mut scalars = Fnv::new();
            scalars.f64(res.energy.mean());
            scalars.f64(res.acceptance);
            scalars.u64(res.samples);
            RunFingerprint {
                schedule: format!("backend:{}", backend.label()),
                walkers: walkers.iter().map(walker_digest).collect(),
                scalars: scalars.value(),
            }
        })
        .collect();
    qmc_kernels::set_backend(prev);
    DriverParity {
        driver: "vmc-backends".into(),
        runs,
    }
}

/// Outcome of the f32-rung tolerance case: the `simd` backend's VMC
/// energy versus the `reference` backend's, with the window the gate
/// allows. `simd` is the one backend with a documented *tolerance* (not
/// bitwise) contract — its lane-split J2 reductions may round differently
/// — so a whole trajectory may legitimately diverge once an accept
/// decision flips. The runs stay statistically equivalent, so the gate
/// compares energies against the combined statistical error rather than
/// bits.
#[derive(Clone, Debug)]
pub struct SimdToleranceCase {
    /// Energy mean of the `reference`-backend run.
    pub reference_energy: f64,
    /// Energy mean of the `simd`-backend run.
    pub simd_energy: f64,
    /// Allowed |difference|: six combined standard errors plus a relative
    /// floor of 1e-6 (the bitwise-identical-trajectory fast path).
    pub tolerance: f64,
}

impl SimdToleranceCase {
    /// True when the simd energy sits inside the documented window.
    pub fn within_tolerance(&self) -> bool {
        (self.reference_energy - self.simd_energy).abs() <= self.tolerance
    }
}

/// The f32 rung of the backend parity ladder: runs the parallel VMC
/// driver (f32 engines) under the `reference` and `simd` kernel backends
/// and compares energies within [`SimdToleranceCase::tolerance`] — the
/// tolerance-contract companion to [`explore_backends`]' bitwise gate.
pub fn explore_simd_tolerance(cfg: &HarnessConfig) -> SimdToleranceCase {
    let w = workload(cfg.seed);
    let params = VmcParams {
        blocks: cfg.steps,
        steps_per_block: 3,
        tau: 0.3,
        measure_every: 1,
        batching: Batching::PerWalker,
    };
    let prev = qmc_kernels::Backend::current();
    let run = |backend: qmc_kernels::Backend| {
        qmc_kernels::set_backend(backend);
        let mut engines: Vec<QmcEngine<f32>> = (0..cfg.threads)
            .map(|_| w.build_engine_f32(CodeVersion::Current))
            .collect();
        let mut walkers = initial_population(w.initial_positions(), cfg.walkers, cfg.seed);
        let res = run_vmc_parallel(&mut engines, &mut walkers, &params);
        (res.energy.mean(), res.energy.variance(), res.samples)
    };
    let (e_ref, var_ref, n_ref) = run(qmc_kernels::Backend::Reference);
    let (e_simd, var_simd, n_simd) = run(qmc_kernels::Backend::Simd);
    qmc_kernels::set_backend(prev);
    let sem2 = var_ref / n_ref.max(1) as f64 + var_simd / n_simd.max(1) as f64;
    SimdToleranceCase {
        reference_energy: e_ref,
        simd_energy: e_simd,
        tolerance: 6.0 * sem2.sqrt() + 1e-6 * e_ref.abs(),
    }
}

/// Runs every driver exploration at the default harness size.
pub fn explore_all(cfg: &HarnessConfig) -> Vec<DriverParity> {
    vec![
        explore_vmc(cfg),
        explore_dmc_parallel(cfg),
        explore_dmc_crowd(cfg),
        explore_backends(cfg),
    ]
}

/// Renders the exploration outcome as a `qmcsched/1` JSON report (the same
/// hand-rolled writer the run report uses).
pub fn render_json(results: &[DriverParity]) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("schema").str_val("qmcsched/1");
    w.key("parity")
        .bool_val(results.iter().all(DriverParity::parity));
    w.key("drivers").begin_arr();
    for r in results {
        w.begin_obj();
        w.key("driver").str_val(&r.driver);
        w.key("schedules_explored").u64_val(r.runs.len() as u64);
        w.key("parity").bool_val(r.parity());
        w.key("runs").begin_arr();
        for run in &r.runs {
            w.begin_obj();
            w.key("schedule").str_val(&run.schedule);
            w.key("walkers").u64_val(run.walkers.len() as u64);
            let mut digest = Fnv::new();
            for &d in &run.walkers {
                digest.u64(d);
            }
            digest.u64(run.scalars);
            w.key("fingerprint")
                .str_val(&format!("{:016x}", digest.value()));
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_order_sensitive() {
        let mut a = Fnv::new();
        a.f64(1.0);
        a.f64(2.0);
        let mut b = Fnv::new();
        b.f64(2.0);
        b.f64(1.0);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn schedule_labels_are_distinct() {
        let s = schedules();
        assert!(s.len() >= 8, "need at least 8 explored schedules");
        let mut labels: Vec<String> = s.iter().map(|s| s.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), s.len(), "duplicate schedule labels");
    }

    #[test]
    fn reference_and_soa_backends_agree_bitwise() {
        // The kernel library documents reference <-> soa as bitwise on
        // every kernel family; a whole VMC trajectory must therefore
        // digest equal per walker.
        let p = explore_backends(&HarnessConfig::default());
        assert_eq!(p.runs.len(), 2);
        assert!(
            p.parity(),
            "reference vs soa backend trajectories diverged: {:?}",
            p.runs
                .iter()
                .map(|r| (&r.schedule, r.scalars))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn simd_backend_energy_within_documented_tolerance() {
        // The simd backend's J2 reductions carry a tolerance contract, not
        // a bitwise one, so the f32-rung gate is statistical: the VMC
        // energy must land within six combined standard errors of the
        // reference-backend run (and in the common case where no accept
        // decision flips, the trajectories are nearly identical and the
        // difference is ~0).
        let case = explore_simd_tolerance(&HarnessConfig::default());
        assert!(
            case.reference_energy.is_finite() && case.simd_energy.is_finite(),
            "non-finite energies: {case:?}"
        );
        assert!(
            case.within_tolerance(),
            "simd backend energy outside the documented f32-rung window: {case:?}"
        );
    }

    #[test]
    fn serial_orders_are_distinct_permutations_at_harness_width() {
        // The harness spawns `threads` (default 4) tasks per scope plus
        // ragged chunk counts; the serialized orders must be genuinely
        // different interleavings at those widths.
        for n in [4usize, 5, 6] {
            let mut perms: Vec<Vec<usize>> = schedules()
                .into_iter()
                .filter_map(|s| match s {
                    Schedule::Serial(o) => Some(o.permutation(n)),
                    _ => None,
                })
                .collect();
            let total = perms.len();
            perms.sort();
            perms.dedup();
            assert_eq!(perms.len(), total, "colliding serial orders at n={n}");
        }
    }
}
