//! Multi-file graph-rule fixtures.
//!
//! Each directory under `tests/fixtures/graph/` is one workspace-in-
//! miniature: every `.rs` file in it declares its synthetic repo path on
//! the first line (`// fixture-path: crates/...`), the whole set is fed
//! to [`qmclint::lint_files`] together (per-file lexical rules AND the
//! call-graph rules), and `//~ <rule-id>` / `//~v <rule-id>` expectations
//! must match the produced diagnostics exactly — rule, file and line, in
//! both directions. Cases with no expectations assert cleanliness.

use qmclint::{lint_files, Rule};
use std::path::{Path, PathBuf};

fn case_dirs() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/graph");
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(root)
        .expect("graph fixture directory exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    assert!(!dirs.is_empty(), "no cases under tests/fixtures/graph");
    dirs
}

/// Loads one case: `(fixture-path, source)` pairs plus
/// `(fixture-path, line, rule)` expectations.
#[allow(clippy::type_complexity)]
fn load_case(dir: &Path) -> (Vec<(String, String)>, Vec<(String, u32, Rule)>) {
    let mut files = Vec::new();
    let mut expected = Vec::new();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("case dir readable")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "{}: empty graph case", dir.display());
    for path in paths {
        let src = std::fs::read_to_string(&path).expect("fixture readable");
        let fixture_path = src
            .lines()
            .next()
            .and_then(|l| l.split_once("fixture-path:"))
            .unwrap_or_else(|| panic!("{} missing `// fixture-path:` header", path.display()))
            .1
            .trim()
            .to_string();
        for (idx, line) in src.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let Some(pos) = line.find("//~") else {
                continue;
            };
            let rest = &line[pos + 3..];
            let (target, rest) = match rest.strip_prefix('v') {
                Some(r) => (lineno + 1, r),
                None => (lineno, rest),
            };
            let id = rest.split_whitespace().next().unwrap_or("");
            let rule = Rule::from_id(id)
                .unwrap_or_else(|| panic!("{}:{lineno}: unknown rule `{id}`", path.display()));
            expected.push((fixture_path.clone(), target, rule));
        }
        files.push((fixture_path, src));
    }
    (files, expected)
}

#[test]
fn graph_cases_report_exact_files_and_lines() {
    for dir in case_dirs() {
        let (files, mut expected) = load_case(&dir);
        let report = lint_files(&files);
        let mut got: Vec<(String, u32, Rule)> = report
            .diagnostics
            .iter()
            .map(|d| (d.file.clone(), d.line, d.rule))
            .collect();
        got.sort();
        expected.sort();
        assert_eq!(
            got,
            expected,
            "{}: diagnostics do not match expectations.\nactual: {:#?}",
            dir.display(),
            report.diagnostics
        );
    }
}

#[test]
fn every_graph_rule_has_a_violation_case() {
    let mut seen = Vec::new();
    for dir in case_dirs() {
        let (_, expected) = load_case(&dir);
        seen.extend(expected.into_iter().map(|(_, _, r)| r));
    }
    for rule in qmclint::GRAPH_RULES {
        assert!(
            seen.contains(&rule),
            "no graph fixture exercises rule `{}`",
            rule.id()
        );
    }
}

#[test]
fn hot_path_call_diagnostics_carry_the_chain() {
    for dir in case_dirs() {
        let (files, _) = load_case(&dir);
        for d in lint_files(&files).diagnostics {
            if d.rule == Rule::HotPathCall {
                assert!(
                    d.chain.len() >= 2,
                    "hot-path-call without a printed chain: {d:#?}"
                );
                return;
            }
        }
    }
    panic!("no hot-path-call diagnostic produced by any graph case");
}
