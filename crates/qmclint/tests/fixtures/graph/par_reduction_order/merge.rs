// fixture-path: crates/instrument/src/par_merge_fixture.rs
//! Seeded bug: two schedule-ordered float reductions. Inside the closure,
//! per-task partials are folded into a shared accumulator in completion
//! order (the lock serializes the accesses but not the association
//! order); after the join, partials are folded with a bare sequential
//! `+=` whose shape differs from the deterministic tree. Either one lets
//! the thread schedule reach the trajectory bits.

/// Merges per-chunk energy partials the order-dependent way, twice.
pub fn merged_energy(parts: &[f64], chunks: Vec<Chunk>, sink: &Mutex<Acc>) -> f64 {
    rayon::scope(|scope| {
        for chunk in chunks {
            scope.spawn(move || {
                let part: f64 = chunk.local_sum();
                let mut s = sink.lock();
                s.esum += part; //~ parallel-reduction-order
            });
        }
    });
    let mut esum = 0.0;
    for &p in parts {
        esum += p; //~ parallel-reduction-order
    }
    esum
}
