//! Delayed determinant-inverse updates (Woodbury identity).
//!
//! §8.4 of the paper identifies `DetUpdate` as the emerging bottleneck and
//! points to delayed-update schemes (McDaniel et al., the paper's ref. 30) based on the
//! Woodbury matrix identity: accumulate up to `delay` accepted row
//! replacements and apply them to the inverse in one blocked (BLAS3-shaped)
//! flush, while answering ratio queries against the *virtually updated*
//! inverse in `O(delay * N)`.
//!
//! Derivation used here (transposed-inverse storage `M = (A^{-1})^T`, base
//! inverse kept unflushed): after accepting replacements of distinct rows
//! `k_a` by vectors `v_a` (a = 0..m), Woodbury gives for any row `r` of the
//! current transposed inverse
//!
//! ```text
//! M'.row(r) = M.row(r) - sum_a y[a] * M.row(k_a),   S y = c,
//! S[a][b]   = dot(M.row(k_b), v_a),
//! c[a]      = dot(M.row(r), v_a) - [k_a == r]
//! ```
//!
//! so a ratio costs one `O(mN)` correction plus a dot product, and the flush
//! applies the same correction to all rows with three `m x N` GEMMs.

use crate::blas::{axpy, dot};
use crate::lu::LuFactor;
use qmc_containers::{Matrix, Real};

/// Inverse of a Slater matrix with delayed (Woodbury) row updates.
pub struct DelayedInverse<T: Real> {
    /// Transposed inverse of the *base* matrix (excludes pending updates).
    minv_t: Matrix<T>,
    /// Maximum number of accepted updates buffered before a flush.
    delay: usize,
    /// Rows replaced in the current window (distinct by construction).
    ks: Vec<usize>,
    /// Accepted replacement rows, one per entry of `ks`.
    vs: Matrix<T>,
    /// Window Gram matrix `S[a][b] = dot(M.row(k_b), v_a)` in f64.
    s: Matrix<f64>,
}

impl<T: Real> DelayedInverse<T> {
    /// Wraps an existing transposed inverse with a delay window of `delay`
    /// accepted moves (`delay == 1` degenerates to rank-1 behaviour).
    pub fn new(minv_t: Matrix<T>, delay: usize) -> Self {
        assert!(delay >= 1, "delay must be at least 1");
        assert_eq!(minv_t.rows(), minv_t.cols());
        let n = minv_t.rows();
        Self {
            minv_t,
            delay,
            ks: Vec::with_capacity(delay),
            vs: Matrix::zeros(delay, n),
            s: Matrix::zeros(delay, delay),
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.minv_t.rows()
    }

    /// Number of accepted-but-unflushed updates.
    pub fn pending(&self) -> usize {
        self.ks.len()
    }

    /// Computes row `r` of the *current* (virtually updated) transposed
    /// inverse into `out`. `O(pending * N)`.
    pub fn inv_row(&self, r: usize, out: &mut [T]) {
        let n = self.n();
        assert_eq!(out.len(), n);
        out.copy_from_slice(self.minv_t.row(r));
        let m = self.ks.len();
        if m == 0 {
            return;
        }
        let mut c = vec![0.0f64; m];
        for (a, ca) in c.iter_mut().enumerate() {
            *ca = dot(self.minv_t.row(r), self.vs.row(a)).to_f64();
            if self.ks[a] == r {
                *ca -= 1.0;
            }
        }
        let y = self.solve_window(&c);
        for (a, &ya) in y.iter().enumerate() {
            axpy(T::from_f64(-ya), self.minv_t.row(self.ks[a]), out);
        }
    }

    /// Determinant ratio for replacing row `r` with `v`, against the current
    /// virtually updated inverse. Also returns the inverse row so callers
    /// can compute gradient ratios without a second correction pass.
    pub fn ratio_with_inv_row(&self, r: usize, v: &[T], inv_row: &mut [T]) -> T {
        self.inv_row(r, inv_row);
        dot(inv_row, v)
    }

    /// Accepts the replacement of row `r` by `v`. Flushes automatically when
    /// the window fills or when `r` is already in the window (same-row
    /// updates cannot share a Woodbury window).
    pub fn accept(&mut self, r: usize, v: &[T]) {
        assert_eq!(v.len(), self.n());
        if self.ks.len() == self.delay || self.ks.contains(&r) {
            self.flush();
        }
        let m = self.ks.len();
        // Extend the Gram matrix: S[a][m] and S[m][b].
        for a in 0..m {
            self.s[(a, m)] = dot(self.minv_t.row(r), self.vs.row(a)).to_f64();
            self.s[(m, a)] = dot(self.minv_t.row(self.ks[a]), v).to_f64();
        }
        self.s[(m, m)] = dot(self.minv_t.row(r), v).to_f64();
        self.vs.row_mut(m).copy_from_slice(v);
        self.ks.push(r);
        if self.ks.len() == self.delay {
            self.flush();
        }
    }

    /// Applies all pending updates to the base inverse with blocked
    /// (GEMM-shaped) arithmetic and clears the window.
    pub fn flush(&mut self) {
        let m = self.ks.len();
        if m == 0 {
            return;
        }
        let n = self.n();

        // W[a][j] = dot(M.row(j), v_a) - [k_a == j]   (m x N)
        let mut w = Matrix::<f64>::zeros(m, n);
        for a in 0..m {
            let va = self.vs.row(a);
            let wa = w.row_mut(a);
            for j in 0..n {
                wa[j] = dot(self.minv_t.row(j), va).to_f64();
            }
            wa[self.ks[a]] -= 1.0;
        }

        // D = S^{-1} W  (m x N), solved column-block-wise via LU of S.
        let s_small = Matrix::from_fn(m, m, |a, b| self.s[(a, b)]);
        let lu = LuFactor::new(&s_small).expect("delayed-update window matrix singular");
        let mut d = Matrix::<f64>::zeros(m, n);
        let mut col = vec![0.0f64; m];
        for j in 0..n {
            for a in 0..m {
                col[a] = w[(a, j)];
            }
            lu.solve_in_place(&mut col);
            for a in 0..m {
                d[(a, j)] = col[a];
            }
        }

        // K[a] = copy of base M.row(k_a) before modification.
        let mut k = Matrix::<T>::zeros(m, n);
        for a in 0..m {
            k.row_mut(a).copy_from_slice(self.minv_t.row(self.ks[a]));
        }

        // M.row(j) -= sum_a D[a][j] * K[a]
        for j in 0..n {
            let row = self.minv_t.row_mut(j);
            for a in 0..m {
                // Split borrow: `k` and `minv_t` are distinct matrices.
                let coeff = T::from_f64(-d[(a, j)]);
                axpy(coeff, k.row(a), row);
            }
        }

        self.ks.clear();
    }

    /// Flushed transposed inverse. Panics if updates are pending; call
    /// [`Self::flush`] first.
    pub fn minv_t(&self) -> &Matrix<T> {
        assert!(self.ks.is_empty(), "pending delayed updates; flush first");
        &self.minv_t
    }

    /// Replaces the base inverse (e.g. after a from-scratch recompute) and
    /// discards any pending window.
    pub fn reset(&mut self, minv_t: Matrix<T>) {
        assert_eq!(minv_t.rows(), self.n());
        self.minv_t = minv_t;
        self.ks.clear();
    }

    fn solve_window(&self, c: &[f64]) -> Vec<f64> {
        let m = c.len();
        if m == 1 {
            return vec![c[0] / self.s[(0, 0)]];
        }
        let s_small = Matrix::from_fn(m, m, |a, b| self.s[(a, b)]);
        let lu = LuFactor::new(&s_small).expect("delayed-update window matrix singular");
        let mut y = c.to_vec();
        lu.solve_in_place(&mut y);
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::updates::{det_ratio_row, sherman_morrison_update, transposed_inverse_log_det};

    fn test_matrix(n: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        Matrix::from_fn(n, n, |i, j| next() + if i == j { 3.0 } else { 0.0 })
    }

    fn new_row(n: usize, k: usize, shift: f64) -> Vec<f64> {
        (0..n)
            .map(|j| 0.07 * (j as f64 + shift) + if j == k { 2.0 } else { 0.3 })
            .collect()
    }

    #[test]
    fn matches_sherman_morrison_through_window_boundaries() {
        let n = 12;
        let a = test_matrix(n, 7);
        let (minv_t, _, _) = transposed_inverse_log_det(&a).unwrap();
        let mut sm = minv_t.clone();
        let mut delayed = DelayedInverse::new(minv_t, 4);

        let mut inv_row = vec![0.0f64; n];
        // Sweep: move every electron once, accepting most; window flushes
        // inside the sweep (delay 4 < 12 moves).
        for k in 0..n {
            let v = new_row(n, k, k as f64);
            let r_sm = det_ratio_row(&sm, k, &v);
            let r_dl = delayed.ratio_with_inv_row(k, &v, &mut inv_row);
            assert!(
                (r_sm - r_dl).abs() < 1e-9 * r_sm.abs().max(1.0),
                "k={k}: {r_sm} vs {r_dl}"
            );
            if k % 3 != 2 {
                // accept
                sherman_morrison_update(&mut sm, k, &v, r_sm);
                delayed.accept(k, &v);
            }
        }
        delayed.flush();
        assert!(delayed.minv_t().max_abs_diff(&sm) < 1e-8);
    }

    #[test]
    fn inv_row_mid_window_matches_rank1_chain() {
        let n = 10;
        let a = test_matrix(n, 11);
        let (minv_t, _, _) = transposed_inverse_log_det(&a).unwrap();
        let mut sm = minv_t.clone();
        let mut delayed = DelayedInverse::new(minv_t, 8);

        for k in [1usize, 4, 6] {
            let v = new_row(n, k, 0.5);
            let r = det_ratio_row(&sm, k, &v);
            sherman_morrison_update(&mut sm, k, &v, r);
            delayed.accept(k, &v);
        }
        assert_eq!(delayed.pending(), 3);
        let mut row = vec![0.0f64; n];
        for r in 0..n {
            delayed.inv_row(r, &mut row);
            for j in 0..n {
                assert!(
                    (row[j] - sm[(r, j)]).abs() < 1e-9,
                    "row {r} col {j}: {} vs {}",
                    row[j],
                    sm[(r, j)]
                );
            }
        }
    }

    #[test]
    fn flush_against_lu_reinversion() {
        let n = 8;
        let mut a = test_matrix(n, 23);
        let (minv_t, _, _) = transposed_inverse_log_det(&a).unwrap();
        let mut delayed = DelayedInverse::new(minv_t, 3);
        for k in [0usize, 5, 2, 7, 3] {
            let v = new_row(n, k, 1.0 + k as f64);
            delayed.accept(k, &v);
            a.row_mut(k).copy_from_slice(&v);
        }
        delayed.flush();
        let (fresh, _, _) = transposed_inverse_log_det(&a).unwrap();
        assert!(delayed.minv_t().max_abs_diff(&fresh) < 1e-8);
    }

    #[test]
    fn same_row_twice_forces_flush() {
        let n = 6;
        let a = test_matrix(n, 31);
        let (minv_t, _, _) = transposed_inverse_log_det(&a).unwrap();
        let mut delayed = DelayedInverse::new(minv_t, 4);
        let v1 = new_row(n, 2, 0.0);
        let v2 = new_row(n, 2, 9.0);
        delayed.accept(2, &v1);
        assert_eq!(delayed.pending(), 1);
        delayed.accept(2, &v2); // must flush the first before buffering
        assert_eq!(delayed.pending(), 1);
        delayed.flush();

        let mut a2 = a.clone();
        a2.row_mut(2).copy_from_slice(&v2);
        let (fresh, _, _) = transposed_inverse_log_det(&a2).unwrap();
        assert!(delayed.minv_t().max_abs_diff(&fresh) < 1e-9);
    }

    #[test]
    fn delay_one_equals_immediate_updates() {
        let n = 5;
        let a = test_matrix(n, 41);
        let (minv_t, _, _) = transposed_inverse_log_det(&a).unwrap();
        let mut sm = minv_t.clone();
        let mut delayed = DelayedInverse::new(minv_t, 1);
        for k in 0..n {
            let v = new_row(n, k, k as f64 * 0.2);
            let r = det_ratio_row(&sm, k, &v);
            sherman_morrison_update(&mut sm, k, &v, r);
            delayed.accept(k, &v);
        }
        delayed.flush();
        assert!(delayed.minv_t().max_abs_diff(&sm) < 1e-10);
    }
}
