//! Optimized two-body Jastrow: compute-on-the-fly with SoA accumulators.
//!
//! §7.5 of the paper: once the distance-table rows are SoA and the batch
//! kernels vectorize, it is cheaper to recompute pair terms than to store
//! and shuffle the `5 N^2` matrices. This implementation keeps only the
//! per-electron accumulators (value, gradient, Laplacian of `log psi`),
//! `5 N sizeof(T)` per walker, maintained by forward updates on acceptance.
//!
//! The functor batch evaluations stay here (cutoff branch + group
//! dispatch); the row reductions and forward-update slabs run in
//! `qmc_kernels::jastrow` behind the backend seam captured at
//! construction.

use super::{evaluate_v_batch, evaluate_vgl_batch, PairFunctors};
use crate::buffer::WalkerBuffer;
use crate::traits::WaveFunctionComponent;
use qmc_containers::{padded_len, AlignedVec, Pos, Real, TinyVector, VectorSoaContainer};
use qmc_instrument::{add_flops_bytes, time_kernel, Kernel};
use qmc_kernels::jastrow::{
    j2_accept_grad_row, j2_accept_value_rows, j2_row_sum, j2_row_vg, j2_row_vgl,
};
use qmc_kernels::Backend;
use qmc_particles::ParticleSet;

/// Optimized (SoA, compute-on-the-fly) two-body Jastrow factor.
pub struct J2Soa<T: Real> {
    table: usize,
    functors: PairFunctors<T>,
    n: usize,
    /// Per-electron value sums `sum_j u(r_ij)`.
    vat: AlignedVec<T>,
    /// Per-electron gradient of `log psi` (SoA).
    gat: VectorSoaContainer<T, 3>,
    /// Per-electron Laplacian of `log psi`.
    lat: AlignedVec<T>,
    // Scratch rows (padded).
    cur_u: AlignedVec<T>,
    cur_dud: AlignedVec<T>,
    cur_lap: AlignedVec<T>,
    old_u: AlignedVec<T>,
    old_dud: AlignedVec<T>,
    old_lap: AlignedVec<T>,
    cur_vat: f64,
    cur_has_grad: bool,
    log_value: f64,
    /// Kernel backend captured at construction (see `qmc_kernels::Backend`).
    backend: Backend,
}

impl<T: Real> J2Soa<T> {
    /// Builds the factor over the AA distance table `table` (SoA layout).
    pub fn new(p: &ParticleSet<T>, table: usize, functors: PairFunctors<T>) -> Self {
        assert_eq!(functors.ngroups(), p.num_groups());
        let n = p.len();
        let np = padded_len::<T>(n);
        Self {
            table,
            functors,
            n,
            vat: AlignedVec::zeros(n),
            gat: VectorSoaContainer::new(n),
            lat: AlignedVec::zeros(n),
            cur_u: AlignedVec::zeros(np),
            cur_dud: AlignedVec::zeros(np),
            cur_lap: AlignedVec::zeros(np),
            old_u: AlignedVec::zeros(np),
            old_dud: AlignedVec::zeros(np),
            old_lap: AlignedVec::zeros(np),
            cur_vat: 0.0,
            cur_has_grad: false,
            log_value: 0.0,
            backend: Backend::current(),
        }
    }

    /// Group-wise vectorized VGL batch over a distance row into the given
    /// scratch arrays.
    fn batch_vgl(
        functors: &PairFunctors<T>,
        p: &ParticleSet<T>,
        gk: usize,
        dists: &[T],
        u: &mut [T],
        dud: &mut [T],
        lap: &mut [T],
    ) {
        for g2 in 0..p.num_groups() {
            let r = p.group_range(g2);
            let (lo, hi) = (r.start, r.end);
            let f = functors.get(gk, g2);
            evaluate_vgl_batch(
                f,
                &dists[lo..hi],
                &mut u[lo..hi],
                &mut dud[lo..hi],
                &mut lap[lo..hi],
            );
        }
    }

    fn batch_v(
        functors: &PairFunctors<T>,
        p: &ParticleSet<T>,
        gk: usize,
        dists: &[T],
        u: &mut [T],
    ) {
        for g2 in 0..p.num_groups() {
            let r = p.group_range(g2);
            let f = functors.get(gk, g2);
            evaluate_v_batch(f, &dists[r.start..r.end], &mut u[r]);
        }
    }
}

impl<T: Real> WaveFunctionComponent<T> for J2Soa<T> {
    fn name(&self) -> &'static str {
        "J2-soa"
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn evaluate_log(&mut self, p: &mut ParticleSet<T>) -> f64 {
        let n = self.n;
        time_kernel(Kernel::J2, || {
            let t = p.table(self.table).as_aa_soa();
            let mut logpsi: f64 = 0.0;
            for i in 0..n {
                let gk = p.group_of(i);
                let dists = t.dist_row(i);
                Self::batch_vgl(
                    &self.functors,
                    p,
                    gk,
                    dists,
                    &mut self.cur_u.as_mut_slice()[..n],
                    &mut self.cur_dud.as_mut_slice()[..n],
                    &mut self.cur_lap.as_mut_slice()[..n],
                );
                let (dx, dy, dz) = (t.disp_row(0, i), t.disp_row(1, i), t.disp_row(2, i));
                let row = j2_row_vgl(
                    self.backend,
                    self.cur_u.as_slice(),
                    self.cur_dud.as_slice(),
                    self.cur_lap.as_slice(),
                    dx,
                    dy,
                    dz,
                    n,
                );
                self.vat[i] = row.v;
                self.gat.set(i, TinyVector(row.g));
                self.lat[i] = -row.l;
                logpsi -= 0.5 * row.v.to_f64();
            }
            add_flops_bytes(
                Kernel::J2,
                (n * n * 26) as u64,
                (n * n * 6 * std::mem::size_of::<T>()) as u64,
            );
            for i in 0..n {
                let g: Pos<f64> = self.gat.get(i).cast();
                p.g[i] += g;
                p.l[i] += self.lat[i].to_f64();
            }
            self.log_value = logpsi;
            logpsi
        })
    }

    fn ratio(&mut self, p: &ParticleSet<T>, iat: usize) -> f64 {
        time_kernel(Kernel::J2, || {
            let t = p.table(self.table).as_aa_soa();
            let gk = p.group_of(iat);
            Self::batch_v(
                &self.functors,
                p,
                gk,
                t.temp_dist(),
                &mut self.cur_u.as_mut_slice()[..self.n],
            );
            let v = j2_row_sum(self.backend, self.cur_u.as_slice(), self.n);
            self.cur_vat = v.to_f64();
            self.cur_has_grad = false;
            add_flops_bytes(
                Kernel::J2,
                (self.n * 14) as u64,
                (self.n * 2 * std::mem::size_of::<T>()) as u64,
            );
            (-(self.cur_vat - self.vat[iat].to_f64())).exp()
        })
    }

    fn ratio_grad(&mut self, p: &ParticleSet<T>, iat: usize, grad: &mut Pos<f64>) -> f64 {
        time_kernel(Kernel::J2, || {
            let t = p.table(self.table).as_aa_soa();
            let gk = p.group_of(iat);
            let n = self.n;
            Self::batch_vgl(
                &self.functors,
                p,
                gk,
                t.temp_dist(),
                &mut self.cur_u.as_mut_slice()[..n],
                &mut self.cur_dud.as_mut_slice()[..n],
                &mut self.cur_lap.as_mut_slice()[..n],
            );
            let (tx, ty, tz) = (t.temp_disp(0), t.temp_disp(1), t.temp_disp(2));
            let (v, g) = j2_row_vg(
                self.backend,
                self.cur_u.as_slice(),
                self.cur_dud.as_slice(),
                tx,
                ty,
                tz,
                n,
            );
            self.cur_vat = v.to_f64();
            self.cur_has_grad = true;
            *grad += TinyVector([g[0].to_f64(), g[1].to_f64(), g[2].to_f64()]);
            add_flops_bytes(
                Kernel::J2,
                (n * 26) as u64,
                (n * 6 * std::mem::size_of::<T>()) as u64,
            );
            (-(self.cur_vat - self.vat[iat].to_f64())).exp()
        })
    }

    fn eval_grad(&mut self, _p: &ParticleSet<T>, iat: usize) -> Pos<f64> {
        self.gat.get(iat).cast()
    }

    fn accept_move(&mut self, p: &ParticleSet<T>, iat: usize) {
        time_kernel(Kernel::J2, || {
            let n = self.n;
            let t = p.table(self.table).as_aa_soa();
            let gk = p.group_of(iat);
            if !self.cur_has_grad {
                Self::batch_vgl(
                    &self.functors,
                    p,
                    gk,
                    t.temp_dist(),
                    &mut self.cur_u.as_mut_slice()[..n],
                    &mut self.cur_dud.as_mut_slice()[..n],
                    &mut self.cur_lap.as_mut_slice()[..n],
                );
            }
            // Old row terms against the current (pre-accept) positions.
            Self::batch_vgl(
                &self.functors,
                p,
                gk,
                t.dist_row(iat),
                &mut self.old_u.as_mut_slice()[..n],
                &mut self.old_dud.as_mut_slice()[..n],
                &mut self.old_lap.as_mut_slice()[..n],
            );
            self.log_value -= self.cur_vat - self.vat[iat].to_f64();

            let (tx, ty, tz) = (t.temp_disp(0), t.temp_disp(1), t.temp_disp(2));
            let (ox, oy, oz) = (t.disp_row(0, iat), t.disp_row(1, iat), t.disp_row(2, iat));
            let cu = &self.cur_u.as_slice()[..n];
            let cd = &self.cur_dud.as_slice()[..n];
            let cl = &self.cur_lap.as_slice()[..n];
            let ou = &self.old_u.as_slice()[..n];
            let od = &self.old_dud.as_slice()[..n];
            let ol = &self.old_lap.as_slice()[..n];

            // Forward update of neighbour accumulators (vectorized slabs in
            // the kernel library; slab updates bitwise on every backend).
            let backend = self.backend;
            let (kv, kl) = j2_accept_value_rows(
                backend,
                cu,
                ou,
                cl,
                ol,
                self.vat.as_mut_slice(),
                self.lat.as_mut_slice(),
                n,
            );
            let kx = j2_accept_grad_row(backend, od, ox, cd, tx, self.gat.dim_mut(0), n);
            let ky = j2_accept_grad_row(backend, od, oy, cd, ty, self.gat.dim_mut(1), n);
            let kz = j2_accept_grad_row(backend, od, oz, cd, tz, self.gat.dim_mut(2), n);
            // The moved electron's accumulators from the new row.
            self.vat[iat] = kv;
            self.gat.set(iat, TinyVector([kx, ky, kz]));
            self.lat[iat] = -kl;
            add_flops_bytes(
                Kernel::J2,
                (n * 40) as u64,
                (n * 14 * std::mem::size_of::<T>()) as u64,
            );
        });
    }

    fn restore(&mut self, _iat: usize) {
        self.cur_has_grad = false;
    }

    fn accumulate_gl(&mut self, p: &mut ParticleSet<T>) {
        for i in 0..self.n {
            let g: Pos<f64> = self.gat.get(i).cast();
            p.g[i] += g;
            p.l[i] += self.lat[i].to_f64();
        }
    }

    fn save_state(&mut self, buf: &mut WalkerBuffer<T>) {
        buf.put_slice(self.vat.as_slice());
        for d in 0..3 {
            buf.put_slice(self.gat.dim(d));
        }
        buf.put_slice(self.lat.as_slice());
        buf.put_f64(self.log_value);
    }

    fn load_state(&mut self, buf: &mut WalkerBuffer<T>) {
        buf.get_slice(self.vat.as_mut_slice());
        for d in 0..3 {
            buf.get_slice(self.gat.dim_mut(d));
        }
        buf.get_slice(self.lat.as_mut_slice());
        self.log_value = buf.get_f64();
    }

    fn log_value(&self) -> f64 {
        self.log_value
    }

    fn bytes(&self) -> usize {
        // The 5N store: vat + 3 gat slabs + lat (scratch rows excluded as in
        // the paper's accounting of per-walker state).
        self.vat.len() * std::mem::size_of::<T>()
            + self.gat.bytes()
            + self.lat.len() * std::mem::size_of::<T>()
    }
}
