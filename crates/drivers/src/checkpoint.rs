//! Bitwise checkpoint/restart: the `qmc-checkpoint/1` format.
//!
//! A checkpoint is the complete state of a run at a generation/block
//! boundary: the driver state ([`DmcState`] / [`VmcState`] — counters,
//! estimator series, branch controller with its private RNG) plus every
//! walker serialized through the exact-state wire codec
//! ([`crate::serialize`]). Because the walker wire format carries the raw
//! xoshiro256** state words and the buffer read cursors, a restored run
//! re-enters the generation loop with *identical* bits everywhere the
//! next floating-point operation can see — restore is bitwise, asserted
//! by the FNV-1a walker digests in [`crate::fingerprint`], not merely
//! statistically equivalent.
//!
//! File layout (all little-endian):
//!
//! ```text
//! magic          u64        "QMCCKPT1"
//! schema         u64 + utf8 "qmc-checkpoint/1"
//! driver         u64        0 = vmc, 1 = dmc
//! precision      u64        size_of::<T>() of the walker buffers (4 | 8)
//! <driver state> ...        see write_dmc_checkpoint / write_vmc_checkpoint
//! walker count   u64
//! walker record  u64 + bytes  (length-prefixed serialize_walker message)
//! checksum       u64        FNV-1a over every preceding byte
//! ```
//!
//! The checksum makes corruption detection explicit, and the write is
//! atomic (temp file + rename), so a job killed mid-checkpoint leaves the
//! previous checkpoint intact rather than a torn file. Decoding goes
//! through the checked [`crate::serialize::WireError`] path throughout:
//! a truncated or corrupt file is a clean [`CheckpointError`], never a
//! panic.
//!
//! **RNG policy note.** Checkpointing serializes exact RNG state (restore
//! must replay the very same stream); rank *migration* re-keys streams
//! first via [`crate::serialize::reseed_for_migration`] (two ranks must
//! never share a stream). Same codec, explicitly different policies.

use crate::dmc::{DmcParams, DmcState};
use crate::fingerprint::Fnv;
use crate::serialize::{
    decode_walker, push_f64, push_u64, serialize_walker, WireError, WireReader,
};
use crate::vmc::{VmcParams, VmcState};
use crate::walker::Walker;
use crate::BranchController;
use qmc_containers::Real;
use qmc_instrument::BlockEvent;

/// Schema tag of the checkpoint format.
pub const CHECKPOINT_SCHEMA: &str = "qmc-checkpoint/1";

/// File magic: `b"QMCCKPT1"` as a little-endian `u64`.
const MAGIC: u64 = u64::from_le_bytes(*b"QMCCKPT1");

/// Which driver wrote a checkpoint. The tag is stored in the file so a
/// DMC resume cannot silently consume a VMC checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverKind {
    /// Variational Monte Carlo (block-based).
    Vmc,
    /// Diffusion Monte Carlo (generation-based).
    Dmc,
}

impl DriverKind {
    fn tag(self) -> u64 {
        match self {
            DriverKind::Vmc => 0,
            DriverKind::Dmc => 1,
        }
    }

    fn from_tag(tag: u64) -> Option<Self> {
        match tag {
            0 => Some(DriverKind::Vmc),
            1 => Some(DriverKind::Dmc),
            _ => None,
        }
    }

    /// Human-readable driver name.
    pub fn label(self) -> &'static str {
        match self {
            DriverKind::Vmc => "vmc",
            DriverKind::Dmc => "dmc",
        }
    }
}

/// Why a checkpoint could not be read. Every variant renders as a clear
/// one-line message; nothing in the decode path panics on bad input.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error reading or writing the checkpoint.
    Io(std::io::Error),
    /// File shorter than the fixed header + checksum.
    TooShort(usize),
    /// FNV-1a checksum over the payload does not match the stored value.
    ChecksumMismatch,
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// Schema tag is not [`CHECKPOINT_SCHEMA`].
    BadSchema(String),
    /// Checkpoint was written by a different driver than the resume asked
    /// for.
    DriverMismatch {
        /// Driver the resume expected.
        expected: DriverKind,
        /// Driver recorded in the file.
        found: DriverKind,
    },
    /// Walker working precision in the file differs from the run's.
    PrecisionMismatch {
        /// `size_of::<T>()` of the resuming run.
        expected: usize,
        /// Precision bytes recorded in the file.
        found: u64,
    },
    /// Structurally invalid payload (truncation inside a record, absurd
    /// length prefix, trailing bytes, ...).
    Malformed(WireError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::TooShort(n) => {
                write!(f, "not a checkpoint: file is only {n} bytes")
            }
            CheckpointError::ChecksumMismatch => {
                write!(f, "checkpoint is corrupt: FNV-1a checksum mismatch")
            }
            CheckpointError::BadMagic => write!(f, "not a qmc-checkpoint file (bad magic)"),
            CheckpointError::BadSchema(s) => {
                write!(
                    f,
                    "unsupported checkpoint schema '{s}' (expected {CHECKPOINT_SCHEMA})"
                )
            }
            CheckpointError::DriverMismatch { expected, found } => write!(
                f,
                "checkpoint was written by the {} driver, resume requested {}",
                found.label(),
                expected.label()
            ),
            CheckpointError::PrecisionMismatch { expected, found } => write!(
                f,
                "checkpoint carries {found}-byte walker precision, this run expects {expected}-byte"
            ),
            CheckpointError::Malformed(e) => write!(f, "malformed checkpoint: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> Self {
        CheckpointError::Malformed(e)
    }
}

/// Where and how often to checkpoint: parsed from the CLI's
/// `--checkpoint PATH[:EVERY]` (every defaults to 1 — after every
/// generation/block).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Checkpoint file path (atomically replaced on each write).
    pub path: String,
    /// Write after every `every` completed generations/blocks.
    pub every: usize,
}

impl CheckpointSpec {
    /// Parses `PATH[:EVERY]`. A trailing `:N` with numeric `N` is the
    /// cadence; any other colon stays part of the path.
    pub fn parse(arg: &str) -> Result<Self, String> {
        if let Some((path, every)) = arg.rsplit_once(':') {
            if let Ok(every) = every.parse::<usize>() {
                if every == 0 {
                    return Err("checkpoint cadence must be >= 1".to_string());
                }
                if path.is_empty() {
                    return Err("checkpoint needs a path: --checkpoint PATH[:EVERY]".to_string());
                }
                return Ok(Self {
                    path: path.to_string(),
                    every,
                });
            }
        }
        if arg.is_empty() {
            return Err("checkpoint needs a path: --checkpoint PATH[:EVERY]".to_string());
        }
        Ok(Self {
            path: arg.to_string(),
            every: 1,
        })
    }

    /// True when a checkpoint is due after `completed` generations/blocks.
    pub fn due(&self, completed: usize) -> bool {
        completed > 0 && completed.is_multiple_of(self.every)
    }
}

/// Per-run control hooks threaded through the driver variants: periodic
/// checkpointing and a per-block observer (the streaming-telemetry sink).
/// [`RunControl::none`] is the plain uncontrolled run.
///
/// A checkpoint *write* failure panics with the path and cause: a
/// production job that silently stops checkpointing has lost its
/// fault-tolerance guarantee, which must be loud.
#[derive(Default)]
pub struct RunControl<'a> {
    /// Periodic checkpointing, if any.
    pub checkpoint: Option<CheckpointSpec>,
    /// Called after every completed generation/block.
    pub on_block: Option<&'a mut dyn FnMut(&BlockEvent)>,
}

impl RunControl<'_> {
    /// No checkpointing, no observer.
    pub fn none() -> Self {
        Self::default()
    }

    /// Hook the DMC drivers call after [`DmcState::finish_generation`].
    pub fn after_dmc_generation<T: Real>(
        &mut self,
        state: &DmcState,
        walkers: &[Walker<T>],
        params: &DmcParams,
        e_block: f64,
        wsum: f64,
    ) {
        if let Some(spec) = &self.checkpoint {
            if spec.due(state.step) {
                write_dmc_checkpoint(&spec.path, state, walkers)
                    .unwrap_or_else(|e| panic!("cannot write checkpoint to {}: {e}", spec.path));
            }
        }
        if let Some(cb) = self.on_block.as_mut() {
            cb(&BlockEvent {
                driver: "dmc",
                step: state.step as u64,
                steps_total: params.steps as u64,
                population: walkers.len() as u64,
                samples: state.samples,
                accepted: state.accepted as u64,
                attempted: state.attempted as u64,
                e_block,
                e_trial: state.branch.e_trial,
                weight: wsum,
            });
        }
    }

    /// Hook the VMC drivers call after each completed block.
    /// `samples_before` is the estimator length before the block, so the
    /// block's own energy mean can be reported as the delta.
    pub fn after_vmc_block<T: Real>(
        &mut self,
        state: &VmcState,
        walkers: &[Walker<T>],
        params: &VmcParams,
        samples_before: usize,
    ) {
        if let Some(spec) = &self.checkpoint {
            if spec.due(state.block) {
                write_vmc_checkpoint(&spec.path, state, walkers)
                    .unwrap_or_else(|e| panic!("cannot write checkpoint to {}: {e}", spec.path));
            }
        }
        if let Some(cb) = self.on_block.as_mut() {
            let fresh = &state.energy.samples()[samples_before..];
            let e_block = if fresh.is_empty() {
                f64::NAN
            } else {
                // qmclint: allow(precision-cast) — sample counts convert exactly to f64 for statistics.
                fresh.iter().sum::<f64>() / fresh.len() as f64
            };
            cb(&BlockEvent {
                driver: "vmc",
                step: state.block as u64,
                steps_total: params.blocks as u64,
                population: walkers.len() as u64,
                samples: state.samples,
                accepted: state.accepted as u64,
                attempted: state.attempted as u64,
                e_block,
                e_trial: f64::NAN,
                weight: f64::NAN,
            });
        }
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn push_series(out: &mut Vec<u8>, xs: &[f64]) {
    push_u64(out, xs.len() as u64);
    for &x in xs {
        push_f64(out, x);
    }
}

fn header<T: Real>(driver: DriverKind) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    push_u64(&mut out, MAGIC);
    push_str(&mut out, CHECKPOINT_SCHEMA);
    push_u64(&mut out, driver.tag());
    push_u64(&mut out, std::mem::size_of::<T>() as u64);
    out
}

fn push_walkers<T: Real>(out: &mut Vec<u8>, walkers: &[Walker<T>]) {
    push_u64(out, walkers.len() as u64);
    for w in walkers {
        let msg = serialize_walker(w);
        push_u64(out, msg.len() as u64);
        out.extend_from_slice(&msg);
    }
}

/// Appends the FNV-1a checksum and writes the file atomically: the bytes
/// land in `PATH.tmp` first and are renamed over `PATH`, so a crash mid
/// write can never leave a torn checkpoint behind.
fn seal_and_write(path: &str, mut bytes: Vec<u8>) -> std::io::Result<()> {
    let mut h = Fnv::new();
    h.bytes(&bytes);
    push_u64(&mut bytes, h.value());
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)
}

/// Writes a DMC checkpoint: header, [`DmcState`], walkers, checksum.
pub fn write_dmc_checkpoint<T: Real>(
    path: &str,
    state: &DmcState,
    walkers: &[Walker<T>],
) -> std::io::Result<()> {
    let mut out = header::<T>(DriverKind::Dmc);
    push_u64(&mut out, state.step as u64);
    push_u64(&mut out, state.samples);
    push_u64(&mut out, state.accepted as u64);
    push_u64(&mut out, state.attempted as u64);
    push_f64(&mut out, state.e0);
    push_series(&mut out, state.energy.samples());
    push_series(&mut out, state.energy.weights());
    push_u64(&mut out, state.population.len() as u64);
    for &p in &state.population {
        push_u64(&mut out, p as u64);
    }
    push_series(&mut out, &state.e_trial_trace);
    push_u64(&mut out, state.branch.target_population as u64);
    push_f64(&mut out, state.branch.e_trial);
    push_f64(&mut out, state.branch.feedback);
    push_f64(&mut out, state.branch.tau);
    push_u64(&mut out, state.branch.max_age as u64);
    for s in state.branch.rng_state() {
        push_u64(&mut out, s);
    }
    push_walkers(&mut out, walkers);
    seal_and_write(path, out)
}

/// Writes a VMC checkpoint: header, [`VmcState`], walkers, checksum.
pub fn write_vmc_checkpoint<T: Real>(
    path: &str,
    state: &VmcState,
    walkers: &[Walker<T>],
) -> std::io::Result<()> {
    let mut out = header::<T>(DriverKind::Vmc);
    push_u64(&mut out, state.block as u64);
    push_u64(&mut out, state.samples);
    push_u64(&mut out, state.accepted as u64);
    push_u64(&mut out, state.attempted as u64);
    push_series(&mut out, state.energy.samples());
    push_series(&mut out, state.energy.weights());
    push_walkers(&mut out, walkers);
    seal_and_write(path, out)
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Reads the file, verifies the trailing checksum, and returns the
/// payload (everything before the checksum).
fn load_payload(path: &str) -> Result<Vec<u8>, CheckpointError> {
    let data = std::fs::read(path)?;
    if data.len() < 8 + 8 {
        return Err(CheckpointError::TooShort(data.len()));
    }
    let (payload, tail) = data.split_at(data.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte checksum tail"));
    let mut h = Fnv::new();
    h.bytes(payload);
    if h.value() != stored {
        return Err(CheckpointError::ChecksumMismatch);
    }
    Ok(payload.to_vec())
}

fn take_str(r: &mut WireReader<'_>, what: &str) -> Result<String, CheckpointError> {
    let n = r.count(what, 1)?;
    let bytes = r.bytes(what, n)?;
    Ok(String::from_utf8_lossy(bytes).into_owned())
}

fn check_header<T: Real>(
    r: &mut WireReader<'_>,
    expected: DriverKind,
) -> Result<(), CheckpointError> {
    if r.u64("magic").map_err(CheckpointError::Malformed)? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let schema = take_str(r, "schema")?;
    if schema != CHECKPOINT_SCHEMA {
        return Err(CheckpointError::BadSchema(schema));
    }
    let tag = r.u64("driver tag")?;
    let Some(found) = DriverKind::from_tag(tag) else {
        return Err(CheckpointError::Malformed(WireError {
            at: 0,
            what: format!("unknown driver tag {tag}"),
        }));
    };
    if found != expected {
        return Err(CheckpointError::DriverMismatch { expected, found });
    }
    let precision = r.u64("precision")?;
    if precision != std::mem::size_of::<T>() as u64 {
        return Err(CheckpointError::PrecisionMismatch {
            expected: std::mem::size_of::<T>(),
            found: precision,
        });
    }
    Ok(())
}

fn read_series(r: &mut WireReader<'_>, what: &str) -> Result<Vec<f64>, CheckpointError> {
    let n = r.count(what, 8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.f64(what)?);
    }
    Ok(out)
}

fn read_walkers<T: Real>(r: &mut WireReader<'_>) -> Result<Vec<Walker<T>>, CheckpointError> {
    let count = r.count("walker count", 8)?;
    let mut walkers = Vec::with_capacity(count);
    for _ in 0..count {
        let len = r.count("walker record length", 1)?;
        let before = r.offset();
        let w = decode_walker::<T>(r)?;
        let consumed = r.offset() - before;
        if consumed != len {
            return Err(CheckpointError::Malformed(WireError {
                at: r.offset(),
                what: format!("walker record consumed {consumed} bytes, prefix said {len}"),
            }));
        }
        walkers.push(w);
    }
    Ok(walkers)
}

/// Reads a DMC checkpoint written by [`write_dmc_checkpoint`].
pub fn read_dmc_checkpoint<T: Real>(
    path: &str,
) -> Result<(DmcState, Vec<Walker<T>>), CheckpointError> {
    let payload = load_payload(path)?;
    let mut r = WireReader::new(&payload);
    check_header::<T>(&mut r, DriverKind::Dmc)?;
    let step = r.u64("step")? as usize;
    let samples = r.u64("samples")?;
    let accepted = r.u64("accepted")? as usize;
    let attempted = r.u64("attempted")? as usize;
    let e0 = r.f64("e0")?;
    let e_samples = read_series(&mut r, "energy samples")?;
    let e_weights = read_series(&mut r, "energy weights")?;
    if e_samples.len() != e_weights.len() {
        return Err(CheckpointError::Malformed(WireError {
            at: r.offset(),
            what: format!(
                "estimator series lengths differ: {} samples vs {} weights",
                e_samples.len(),
                e_weights.len()
            ),
        }));
    }
    let mut energy = crate::ScalarEstimator::new();
    for (&x, &w) in e_samples.iter().zip(&e_weights) {
        energy.push(x, w);
    }
    let npop = r.count("population trace", 8)?;
    let mut population = Vec::with_capacity(npop);
    for _ in 0..npop {
        population.push(r.u64("population value")? as usize);
    }
    let e_trial_trace = read_series(&mut r, "e_trial trace")?;
    let target_population = r.u64("target population")? as usize;
    let e_trial = r.f64("e_trial")?;
    let feedback = r.f64("feedback")?;
    let tau = r.f64("branch tau")?;
    let max_age = r.u64("max_age")? as usize;
    let mut rng_state = [0u64; 4];
    for s in &mut rng_state {
        *s = r.u64("branch rng state")?;
    }
    let branch = BranchController::restore(
        target_population,
        e_trial,
        feedback,
        tau,
        max_age,
        rng_state,
    );
    let walkers = read_walkers::<T>(&mut r)?;
    r.finish("dmc checkpoint")
        .map_err(CheckpointError::Malformed)?;
    Ok((
        DmcState {
            branch,
            energy,
            population,
            e_trial_trace,
            accepted,
            attempted,
            samples,
            step,
            e0,
        },
        walkers,
    ))
}

/// Reads a VMC checkpoint written by [`write_vmc_checkpoint`].
pub fn read_vmc_checkpoint<T: Real>(
    path: &str,
) -> Result<(VmcState, Vec<Walker<T>>), CheckpointError> {
    let payload = load_payload(path)?;
    let mut r = WireReader::new(&payload);
    check_header::<T>(&mut r, DriverKind::Vmc)?;
    let block = r.u64("block")? as usize;
    let samples = r.u64("samples")?;
    let accepted = r.u64("accepted")? as usize;
    let attempted = r.u64("attempted")? as usize;
    let e_samples = read_series(&mut r, "energy samples")?;
    let e_weights = read_series(&mut r, "energy weights")?;
    if e_samples.len() != e_weights.len() {
        return Err(CheckpointError::Malformed(WireError {
            at: r.offset(),
            what: format!(
                "estimator series lengths differ: {} samples vs {} weights",
                e_samples.len(),
                e_weights.len()
            ),
        }));
    }
    let mut energy = crate::ScalarEstimator::new();
    for (&x, &w) in e_samples.iter().zip(&e_weights) {
        energy.push(x, w);
    }
    let walkers = read_walkers::<T>(&mut r)?;
    r.finish("vmc checkpoint")
        .map_err(CheckpointError::Malformed)?;
    Ok((
        VmcState {
            energy,
            accepted,
            attempted,
            samples,
            block,
        },
        walkers,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::population_digest;
    use crate::walker::{initial_population, zero_positions};

    fn temp_path(name: &str) -> String {
        let p = std::env::temp_dir().join(name);
        p.to_str().expect("utf-8 temp path").to_string()
    }

    fn sample_dmc_state() -> (DmcState, Vec<crate::walker::Walker<f32>>) {
        let params = DmcParams {
            steps: 8,
            target_population: 6,
            ..DmcParams::default()
        };
        let mut walkers = initial_population::<f32>(&zero_positions(2), 6, 42);
        for (i, w) in walkers.iter_mut().enumerate() {
            w.weight = 1.0 + 0.1 * i as f64;
            w.e_local = -1.0 - 0.01 * i as f64;
            w.buffer.put_slice(&[0.5f32, -0.25]);
            w.buffer.put_f64(3.5);
        }
        let mut state = DmcState::fresh(-1.05, &params);
        // Advance past a couple of generations' worth of bookkeeping so the
        // state is not trivially fresh.
        state.energy.push(-1.04, 5.9);
        state.energy.push(-1.06, 6.1);
        state.population.extend([6, 7]);
        state.e_trial_trace.extend([-1.03, -1.07]);
        state.branch.branch(&mut walkers); // advance the private stream
        state.accepted = 123;
        state.attempted = 456;
        state.samples = 13;
        state.step = 2;
        (state, walkers)
    }

    #[test]
    fn dmc_checkpoint_roundtrips_bitwise() {
        let (state, walkers) = sample_dmc_state();
        let path = temp_path("qmc_ck_dmc_roundtrip.qmc");
        write_dmc_checkpoint(&path, &state, &walkers).expect("write");
        let (back, back_walkers) = read_dmc_checkpoint::<f32>(&path).expect("read");
        assert_eq!(back.step, state.step);
        assert_eq!(back.samples, state.samples);
        assert_eq!(back.accepted, state.accepted);
        assert_eq!(back.attempted, state.attempted);
        assert_eq!(back.e0.to_bits(), state.e0.to_bits());
        assert_eq!(back.energy.samples(), state.energy.samples());
        assert_eq!(back.energy.weights(), state.energy.weights());
        assert_eq!(back.population, state.population);
        assert_eq!(back.e_trial_trace, state.e_trial_trace);
        assert_eq!(
            back.branch.e_trial.to_bits(),
            state.branch.e_trial.to_bits()
        );
        assert_eq!(back.branch.rng_state(), state.branch.rng_state());
        // The walker population restores bitwise, RNG streams included.
        assert_eq!(
            population_digest(&back_walkers),
            population_digest(&walkers)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn vmc_checkpoint_roundtrips_bitwise() {
        let mut walkers = initial_population::<f64>(&zero_positions(3), 4, 7);
        for w in &mut walkers {
            w.buffer.put_f64(-9.0);
        }
        let mut state = VmcState::fresh();
        state.energy.push(-0.5, 1.0);
        state.energy.push(-0.4, 1.0);
        state.accepted = 17;
        state.attempted = 20;
        state.samples = 8;
        state.block = 2;
        let path = temp_path("qmc_ck_vmc_roundtrip.qmc");
        write_vmc_checkpoint(&path, &state, &walkers).expect("write");
        let (back, back_walkers) = read_vmc_checkpoint::<f64>(&path).expect("read");
        assert_eq!(back.block, 2);
        assert_eq!(back.samples, 8);
        assert_eq!(back.accepted, 17);
        assert_eq!(back.attempted, 20);
        assert_eq!(back.energy.samples(), state.energy.samples());
        assert_eq!(
            population_digest(&back_walkers),
            population_digest(&walkers)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_byte_is_checksum_mismatch_not_panic() {
        let (state, walkers) = sample_dmc_state();
        let path = temp_path("qmc_ck_corrupt.qmc");
        write_dmc_checkpoint(&path, &state, &walkers).expect("write");
        let mut bytes = std::fs::read(&path).expect("read bytes");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("rewrite");
        match read_dmc_checkpoint::<f32>(&path) {
            Err(CheckpointError::ChecksumMismatch) => {}
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_a_clean_error() {
        let (state, walkers) = sample_dmc_state();
        let path = temp_path("qmc_ck_truncated.qmc");
        write_dmc_checkpoint(&path, &state, &walkers).expect("write");
        let bytes = std::fs::read(&path).expect("read bytes");
        for cut in [0, 5, 16, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).expect("rewrite");
            let err = read_dmc_checkpoint::<f32>(&path);
            assert!(err.is_err(), "cut at {cut} must fail");
            // Every failure formats as a clear message, no panic anywhere.
            let msg = format!("{}", err.unwrap_err());
            assert!(!msg.is_empty());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_garbage_fails_cleanly() {
        let path = temp_path("qmc_ck_garbage.qmc");
        std::fs::write(&path, b"this is not a checkpoint at all, sorry....").expect("write");
        assert!(matches!(
            read_dmc_checkpoint::<f32>(&path),
            Err(CheckpointError::ChecksumMismatch)
        ));
        std::fs::write(&path, b"tiny").expect("write");
        assert!(matches!(
            read_dmc_checkpoint::<f32>(&path),
            Err(CheckpointError::TooShort(4))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_with_valid_checksum_is_bad_magic() {
        let path = temp_path("qmc_ck_badmagic.qmc");
        let mut out = Vec::new();
        push_u64(&mut out, MAGIC ^ 0xFF);
        push_str(&mut out, CHECKPOINT_SCHEMA);
        seal_and_write(&path, out).expect("write");
        assert!(matches!(
            read_dmc_checkpoint::<f32>(&path),
            Err(CheckpointError::BadMagic)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_schema_is_reported_by_name() {
        let path = temp_path("qmc_ck_badschema.qmc");
        let mut out = Vec::new();
        push_u64(&mut out, MAGIC);
        push_str(&mut out, "qmc-checkpoint/99");
        seal_and_write(&path, out).expect("write");
        match read_dmc_checkpoint::<f32>(&path) {
            Err(CheckpointError::BadSchema(s)) => assert_eq!(s, "qmc-checkpoint/99"),
            other => panic!("expected BadSchema, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn driver_and_precision_mismatches_are_detected() {
        let (state, walkers) = sample_dmc_state();
        let path = temp_path("qmc_ck_mismatch.qmc");
        write_dmc_checkpoint(&path, &state, &walkers).expect("write");
        // A VMC resume must refuse a DMC checkpoint.
        match read_vmc_checkpoint::<f32>(&path) {
            Err(CheckpointError::DriverMismatch { expected, found }) => {
                assert_eq!(expected, DriverKind::Vmc);
                assert_eq!(found, DriverKind::Dmc);
            }
            other => panic!("expected DriverMismatch, got {other:?}"),
        }
        // An f64 run must refuse an f32 checkpoint.
        match read_dmc_checkpoint::<f64>(&path) {
            Err(CheckpointError::PrecisionMismatch { expected, found }) => {
                assert_eq!(expected, 8);
                assert_eq!(found, 4);
            }
            other => panic!("expected PrecisionMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_dmc_checkpoint::<f32>("/nonexistent/qmc_ck_nope.qmc"),
            Err(CheckpointError::Io(_))
        ));
    }

    #[test]
    fn spec_parses_path_and_cadence() {
        assert_eq!(
            CheckpointSpec::parse("ck.qmc").unwrap(),
            CheckpointSpec {
                path: "ck.qmc".to_string(),
                every: 1
            }
        );
        assert_eq!(
            CheckpointSpec::parse("out/ck.qmc:5").unwrap(),
            CheckpointSpec {
                path: "out/ck.qmc".to_string(),
                every: 5
            }
        );
        // A non-numeric suffix after ':' stays part of the path.
        assert_eq!(
            CheckpointSpec::parse("dir:with:colons").unwrap(),
            CheckpointSpec {
                path: "dir:with:colons".to_string(),
                every: 1
            }
        );
        assert!(CheckpointSpec::parse("ck.qmc:0").is_err());
        assert!(CheckpointSpec::parse("").is_err());
        assert!(CheckpointSpec::parse(":3").is_err());
    }

    #[test]
    fn spec_cadence_gates_writes() {
        let spec = CheckpointSpec {
            path: "x".to_string(),
            every: 3,
        };
        assert!(!spec.due(0));
        assert!(!spec.due(1));
        assert!(spec.due(3));
        assert!(!spec.due(4));
        assert!(spec.due(6));
        let every_block = CheckpointSpec {
            path: "x".to_string(),
            every: 1,
        };
        assert!(!every_block.due(0));
        assert!(every_block.due(1));
    }

    #[test]
    fn atomic_write_leaves_no_tmp_behind() {
        let (state, walkers) = sample_dmc_state();
        let path = temp_path("qmc_ck_atomic.qmc");
        write_dmc_checkpoint(&path, &state, &walkers).expect("write");
        assert!(!std::path::Path::new(&format!("{path}.tmp")).exists());
        // Overwriting an existing checkpoint also goes through the rename.
        write_dmc_checkpoint(&path, &state, &walkers).expect("rewrite");
        assert!(read_dmc_checkpoint::<f32>(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }
}
