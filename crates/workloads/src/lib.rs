//! # qmc-workloads
//!
//! The paper's benchmark workloads (Table 1): Graphite, Be-64, NiO-32 and
//! NiO-64, built as synthetic orthorhombic supercells with seeded random
//! spline tables (the miniQMC strategy), NiO-like Jastrow functors (Fig. 3)
//! and model pseudopotentials — plus the engine factory implementing the
//! paper's code-version ladder (`Ref` → `Ref+MP` → `Current`, §6-§7) and a
//! shared DMC benchmark runner reporting throughput, kernel profiles and
//! memory accounting.

#![forbid(unsafe_code)]

pub mod build;
pub mod run;
pub mod spec;

pub use build::{CodeVersion, Workload};
pub use qmc_drivers::Batching;
pub use run::{
    checkpoint_step, run_dmc_benchmark, run_dmc_benchmark_controlled, BenchControl, RunConfig,
    RunOutcome,
};
pub use spec::{Benchmark, IonSpec, Size, WorkloadSpec};
