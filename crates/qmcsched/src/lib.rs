//! # qmcsched — deterministic schedule checker for the QMC drivers
//!
//! The lock-step crowd drivers and the per-walker thread crews claim a
//! strong property: results are **bitwise independent of the thread
//! schedule**, because every walker carries its own RNG stream and every
//! cross-walker reduction happens sequentially in walker order after the
//! parallel section. PR 1's tests exercised that claim only under the
//! schedules the OS happened to produce. This crate makes the claim a
//! checked artifact, loom-style but sized to our in-tree shims: the rayon
//! shim's work distribution is replaced by an explicitly enumerated /
//! seeded set of thread interleavings (`rayon::schedule`), the same run is
//! repeated under each, and every per-walker result must come out
//! identical to the bit.
//!
//! Two layers consume it:
//!
//! * `cargo test -p qmcsched` — the parity tests CI gates on.
//! * the `qmcsched` binary — emits a `qmcsched/1` JSON report (same
//!   hand-rolled writer as the run report) for the observability pipeline.

#![forbid(unsafe_code)]

use qmc_containers::Real;
use qmc_crowd::{run_dmc_crowd, run_vmc_crowd, CrowdScheduler};
use qmc_drivers::{
    initial_population, run_dmc_parallel, run_multi_rank, run_vmc_parallel, Batching, DmcParams,
    MultiRankParams, QmcEngine, VmcParams, Walker,
};
use qmc_instrument::json::JsonWriter;
use qmc_workloads::{Benchmark, CodeVersion, Size, Workload};
use rayon::schedule::{with_schedule, Order, Schedule};

/// The explored schedule set: one free-running control plus serialized and
/// staggered permutations of the task order. Ten schedules, all with
/// distinct labels; the serialized orders are pairwise-distinct
/// permutations for any task count ≥ 4 (asserted in the tests).
pub fn schedules() -> Vec<Schedule> {
    vec![
        Schedule::Concurrent,
        Schedule::Serial(Order::Forward),
        Schedule::Serial(Order::Reverse),
        Schedule::Serial(Order::Rotate(1)),
        Schedule::Serial(Order::Rotate(3)),
        Schedule::Serial(Order::EvenOdd),
        Schedule::Serial(Order::Shuffle(0xA5A5)),
        Schedule::Serial(Order::Shuffle(0x0FF1CE)),
        Schedule::Staggered(Order::Reverse),
        Schedule::Staggered(Order::Shuffle(0xBEEF)),
    ]
}

// The FNV-1a digest machinery started here and moved into
// `qmc_drivers::fingerprint` when checkpoint/restart needed it too; the
// schedule harness keeps its public names via re-export. The full-state
// variants (`walker_digest_full`, `population_digest`) additionally fold
// the raw RNG state words — serialization no longer perturbs the walker,
// so digesting the stream is free.
pub use qmc_drivers::fingerprint::{population_digest, walker_digest, walker_digest_full, Fnv};

/// Outcome of one driver run under one schedule: per-walker digests plus
/// the driver's scalar outputs (all compared bitwise).
#[derive(Clone, Debug, PartialEq)]
pub struct RunFingerprint {
    /// Schedule label the run executed under.
    pub schedule: String,
    /// One digest per surviving walker, in walker order.
    pub walkers: Vec<u64>,
    /// Driver scalar outputs folded into one digest (energy mean bits,
    /// acceptance bits, sample count).
    pub scalars: u64,
}

/// Parity verdict for one driver across the whole schedule set.
#[derive(Clone, Debug)]
pub struct DriverParity {
    /// Driver label (`vmc-parallel`, `dmc-parallel`, `dmc-crowd`).
    pub driver: String,
    /// One fingerprint per explored schedule.
    pub runs: Vec<RunFingerprint>,
}

impl DriverParity {
    /// True when every run produced bitwise-identical per-walker digests
    /// and scalar outputs.
    pub fn parity(&self) -> bool {
        self.runs
            .windows(2)
            .all(|w| w[0].walkers == w[1].walkers && w[0].scalars == w[1].scalars)
    }
}

/// Harness problem size: small enough for CI, uneven enough to exercise
/// ragged chunking (walkers not divisible by threads or crowd size).
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Worker threads (tasks per scope — the unit the schedules permute).
    pub threads: usize,
    /// Walker population.
    pub walkers: usize,
    /// DMC generations / VMC blocks.
    pub steps: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            walkers: 7,
            steps: 4,
            seed: 99,
        }
    }
}

fn workload(seed: u64) -> Workload {
    Workload::new(Benchmark::Graphite, Size::Scaled, seed)
}

/// Runs the parallel VMC driver once under each schedule.
pub fn explore_vmc(cfg: &HarnessConfig) -> DriverParity {
    let w = workload(cfg.seed);
    let params = VmcParams {
        blocks: cfg.steps,
        steps_per_block: 3,
        tau: 0.3,
        measure_every: 1,
        batching: Batching::PerWalker,
    };
    let runs = schedules()
        .into_iter()
        .map(|sched| {
            with_schedule(sched, || {
                let mut engines: Vec<QmcEngine<f32>> = (0..cfg.threads)
                    .map(|_| w.build_engine_f32(CodeVersion::Current))
                    .collect();
                let mut walkers = initial_population(w.initial_positions(), cfg.walkers, cfg.seed);
                let res = run_vmc_parallel(&mut engines, &mut walkers, &params);
                vmc_fingerprint(sched.label(), &walkers, &res)
            })
        })
        .collect();
    DriverParity {
        driver: "vmc-parallel".into(),
        runs,
    }
}

fn dmc_params(cfg: &HarnessConfig, batching: Batching) -> DmcParams {
    DmcParams {
        steps: cfg.steps,
        warmup: 1,
        tau: 0.003,
        target_population: cfg.walkers,
        recompute_every: 2,
        seed: cfg.seed ^ 0xD00D,
        batching,
    }
}

fn dmc_fingerprint<T: Real>(
    label: String,
    walkers: &[Walker<T>],
    res: &qmc_drivers::DmcResult,
) -> RunFingerprint {
    let mut scalars = Fnv::new();
    scalars.f64(res.energy.mean());
    scalars.f64(res.acceptance);
    scalars.f64(res.e_trial);
    scalars.u64(res.samples);
    for &p in &res.population {
        scalars.u64(p as u64);
    }
    RunFingerprint {
        schedule: label,
        walkers: walkers.iter().map(walker_digest).collect(),
        scalars: scalars.value(),
    }
}

fn vmc_fingerprint<T: Real>(
    label: String,
    walkers: &[Walker<T>],
    res: &qmc_drivers::VmcResult,
) -> RunFingerprint {
    let mut scalars = Fnv::new();
    scalars.f64(res.energy.mean());
    scalars.f64(res.acceptance);
    scalars.u64(res.samples);
    RunFingerprint {
        schedule: label,
        walkers: walkers.iter().map(walker_digest).collect(),
        scalars: scalars.value(),
    }
}

/// Runs the per-walker parallel DMC driver once under each schedule.
pub fn explore_dmc_parallel(cfg: &HarnessConfig) -> DriverParity {
    let w = workload(cfg.seed);
    let params = dmc_params(cfg, Batching::PerWalker);
    let runs = schedules()
        .into_iter()
        .map(|sched| {
            with_schedule(sched, || {
                let mut engines: Vec<QmcEngine<f32>> = (0..cfg.threads)
                    .map(|_| w.build_engine_f32(CodeVersion::Current))
                    .collect();
                let mut walkers = initial_population(w.initial_positions(), cfg.walkers, cfg.seed);
                let (res, _profile) = run_dmc_parallel(&mut engines, &mut walkers, &params);
                dmc_fingerprint(sched.label(), &walkers, &res)
            })
        })
        .collect();
    DriverParity {
        driver: "dmc-parallel".into(),
        runs,
    }
}

/// Runs the lock-step crowd DMC driver once under each schedule.
pub fn explore_dmc_crowd(cfg: &HarnessConfig) -> DriverParity {
    let w = workload(cfg.seed);
    let params = dmc_params(cfg, Batching::Crowd(2));
    let runs = schedules()
        .into_iter()
        .map(|sched| {
            with_schedule(sched, || {
                let scheduler = CrowdScheduler::new(cfg.threads, 2);
                let mut crowds =
                    scheduler.build_crowds(|| w.build_engine_f32(CodeVersion::Current));
                let mut walkers = initial_population(w.initial_positions(), cfg.walkers, cfg.seed);
                let (res, _profile) = run_dmc_crowd(&mut crowds, &mut walkers, &params);
                dmc_fingerprint(sched.label(), &walkers, &res)
            })
        })
        .collect();
    DriverParity {
        driver: "dmc-crowd".into(),
        runs,
    }
}

/// Runs the parallel VMC driver once per kernel backend and compares the
/// trajectories per walker. The kernel library's verification contract
/// (`qmc-kernels`) documents `reference` and `soa` as bitwise-identical
/// on every kernel family, so the whole VMC trajectory must digest
/// equal to the bit — this case turns that documented contract into a
/// gated artifact. `simd` is deliberately excluded: its J2 kernel only
/// promises a tolerance, so trajectories may legitimately diverge.
pub fn explore_backends(cfg: &HarnessConfig) -> DriverParity {
    let w = workload(cfg.seed);
    let params = VmcParams {
        blocks: cfg.steps,
        steps_per_block: 3,
        tau: 0.3,
        measure_every: 1,
        batching: Batching::PerWalker,
    };
    let prev = qmc_kernels::Backend::current();
    let runs = [qmc_kernels::Backend::Reference, qmc_kernels::Backend::Soa]
        .into_iter()
        .map(|backend| {
            // Engines capture the backend at construction, so it must be
            // pinned before the build.
            qmc_kernels::set_backend(backend);
            let mut engines: Vec<QmcEngine<f32>> = (0..cfg.threads)
                .map(|_| w.build_engine_f32(CodeVersion::Current))
                .collect();
            let mut walkers = initial_population(w.initial_positions(), cfg.walkers, cfg.seed);
            let res = run_vmc_parallel(&mut engines, &mut walkers, &params);
            let mut scalars = Fnv::new();
            scalars.f64(res.energy.mean());
            scalars.f64(res.acceptance);
            scalars.u64(res.samples);
            RunFingerprint {
                schedule: format!("backend:{}", backend.label()),
                walkers: walkers.iter().map(walker_digest).collect(),
                scalars: scalars.value(),
            }
        })
        .collect();
    qmc_kernels::set_backend(prev);
    DriverParity {
        driver: "vmc-backends".into(),
        runs,
    }
}

/// Outcome of the f32-rung tolerance case: the `simd` backend's VMC
/// energy versus the `reference` backend's, with the window the gate
/// allows. `simd` is the one backend with a documented *tolerance* (not
/// bitwise) contract — its lane-split J2 reductions may round differently
/// — so a whole trajectory may legitimately diverge once an accept
/// decision flips. The runs stay statistically equivalent, so the gate
/// compares energies against the combined statistical error rather than
/// bits.
#[derive(Clone, Debug)]
pub struct SimdToleranceCase {
    /// Energy mean of the `reference`-backend run.
    pub reference_energy: f64,
    /// Energy mean of the `simd`-backend run.
    pub simd_energy: f64,
    /// Allowed |difference|: six combined standard errors plus a relative
    /// floor of 1e-6 (the bitwise-identical-trajectory fast path).
    pub tolerance: f64,
}

impl SimdToleranceCase {
    /// True when the simd energy sits inside the documented window.
    pub fn within_tolerance(&self) -> bool {
        (self.reference_energy - self.simd_energy).abs() <= self.tolerance
    }
}

/// The f32 rung of the backend parity ladder: runs the parallel VMC
/// driver (f32 engines) under the `reference` and `simd` kernel backends
/// and compares energies within [`SimdToleranceCase::tolerance`] — the
/// tolerance-contract companion to [`explore_backends`]' bitwise gate.
pub fn explore_simd_tolerance(cfg: &HarnessConfig) -> SimdToleranceCase {
    let w = workload(cfg.seed);
    let params = VmcParams {
        blocks: cfg.steps,
        steps_per_block: 3,
        tau: 0.3,
        measure_every: 1,
        batching: Batching::PerWalker,
    };
    let prev = qmc_kernels::Backend::current();
    let run = |backend: qmc_kernels::Backend| {
        qmc_kernels::set_backend(backend);
        let mut engines: Vec<QmcEngine<f32>> = (0..cfg.threads)
            .map(|_| w.build_engine_f32(CodeVersion::Current))
            .collect();
        let mut walkers = initial_population(w.initial_positions(), cfg.walkers, cfg.seed);
        let res = run_vmc_parallel(&mut engines, &mut walkers, &params);
        (res.energy.mean(), res.energy.variance(), res.samples)
    };
    let (e_ref, var_ref, n_ref) = run(qmc_kernels::Backend::Reference);
    let (e_simd, var_simd, n_simd) = run(qmc_kernels::Backend::Simd);
    qmc_kernels::set_backend(prev);
    let sem2 = var_ref / n_ref.max(1) as f64 + var_simd / n_simd.max(1) as f64;
    SimdToleranceCase {
        reference_energy: e_ref,
        simd_energy: e_simd,
        tolerance: 6.0 * sem2.sqrt() + 1e-6 * e_ref.abs(),
    }
}

/// Thread-count sweep: runs the VMC and DMC drivers at 1, 2 and 4 worker
/// threads (and, for VMC, additionally under crowd batching) and demands
/// bitwise parity of every per-walker digest and every scalar output.
///
/// The schedule sweeps ([`explore_vmc`] &c.) vary the interleaving at a
/// *fixed* thread count; this case varies the thread count itself, which
/// also moves every chunk boundary. It holds because per-walker
/// trajectories are walker-owned (own RNG stream, state loaded/stored per
/// walker) and every cross-walker reduction either drains sample buffers
/// sequentially in walker order or goes through
/// `qmc_drivers::reduce::det_sum*`, whose fixed-shape pairwise tree
/// depends only on the term count — never on thread count or chunking.
pub fn explore_thread_sweep(cfg: &HarnessConfig) -> Vec<DriverParity> {
    let w = workload(cfg.seed);
    let threads = [1usize, 2, 4];

    // VMC, per-walker batching at each thread count, plus the crowd-
    // batched driver: both are documented bitwise identical to the
    // single-engine `run_vmc`, so one parity set covers both batchings.
    let vmc_params = VmcParams {
        blocks: cfg.steps,
        steps_per_block: 3,
        tau: 0.3,
        measure_every: 1,
        batching: Batching::PerWalker,
    };
    let mut vmc_runs: Vec<RunFingerprint> = threads
        .iter()
        .map(|&t| {
            let mut engines: Vec<QmcEngine<f32>> = (0..t)
                .map(|_| w.build_engine_f32(CodeVersion::Current))
                .collect();
            let mut walkers = initial_population(w.initial_positions(), cfg.walkers, cfg.seed);
            let res = run_vmc_parallel(&mut engines, &mut walkers, &vmc_params);
            vmc_fingerprint(format!("threads:{t}"), &walkers, &res)
        })
        .collect();
    {
        let crowd_params = VmcParams {
            batching: Batching::Crowd(2),
            ..vmc_params
        };
        let mut crowds =
            CrowdScheduler::new(1, 2).build_crowds(|| w.build_engine_f32(CodeVersion::Current));
        let mut walkers = initial_population(w.initial_positions(), cfg.walkers, cfg.seed);
        let res = run_vmc_crowd(&mut crowds[0], &mut walkers, &crowd_params);
        vmc_runs.push(vmc_fingerprint("crowd:2".into(), &walkers, &res));
    }

    // DMC, per-walker batching: generation merges flow through
    // `det_sum_by` over walker-indexed terms, so moving the chunk
    // boundaries must not move a single bit.
    let dmc_pw = dmc_params(cfg, Batching::PerWalker);
    let dmc_runs: Vec<RunFingerprint> = threads
        .iter()
        .map(|&t| {
            let mut engines: Vec<QmcEngine<f32>> = (0..t)
                .map(|_| w.build_engine_f32(CodeVersion::Current))
                .collect();
            let mut walkers = initial_population(w.initial_positions(), cfg.walkers, cfg.seed);
            let (res, _profile) = run_dmc_parallel(&mut engines, &mut walkers, &dmc_pw);
            dmc_fingerprint(format!("threads:{t}"), &walkers, &res)
        })
        .collect();

    // DMC, crowd batching: the thread count sets how many crowds the
    // scheduler fans the generation over.
    let dmc_cw = dmc_params(cfg, Batching::Crowd(2));
    let crowd_runs: Vec<RunFingerprint> = threads
        .iter()
        .map(|&t| {
            let scheduler = CrowdScheduler::new(t, 2);
            let mut crowds = scheduler.build_crowds(|| w.build_engine_f32(CodeVersion::Current));
            let mut walkers = initial_population(w.initial_positions(), cfg.walkers, cfg.seed);
            let (res, _profile) = run_dmc_crowd(&mut crowds, &mut walkers, &dmc_cw);
            dmc_fingerprint(format!("threads:{t}"), &walkers, &res)
        })
        .collect();

    vec![
        DriverParity {
            driver: "vmc-thread-sweep".into(),
            runs: vmc_runs,
        },
        DriverParity {
            driver: "dmc-thread-sweep".into(),
            runs: dmc_runs,
        },
        DriverParity {
            driver: "dmc-crowd-thread-sweep".into(),
            runs: crowd_runs,
        },
    ]
}

/// Repeats the simulated multi-rank DMC run and demands bitwise-identical
/// outputs. OS thread scheduling genuinely varies between repeats, so this
/// is a live nondeterminism probe of the allreduce: it holds because each
/// rank writes its `(Σ wE, Σ w)` partial into a rank-indexed slot and rank
/// 0 reduces the slots with `det_sum_by` — barrier arrival order cannot
/// reach the bits.
///
/// Two ranks exactly: with two ranks at most one rank can hold a surplus
/// in any generation (both above the average population is impossible),
/// so the serialized-walker exchange pool has a single writer between
/// barriers and walker migration is deterministic too. Wider rank counts
/// would race concurrent surplus pushes for pool order — a real (benign)
/// nondeterminism in walker *placement* this case deliberately leaves out
/// of scope.
pub fn explore_multi_rank(cfg: &HarnessConfig) -> DriverParity {
    let w = workload(cfg.seed);
    let params = MultiRankParams {
        ranks: 2,
        total_population: cfg.walkers.max(4),
        steps: cfg.steps,
        warmup: 1,
        tau: 0.003,
        seed: cfg.seed ^ 0x5EED,
    };
    let runs = (0..3)
        .map(|rep| {
            let res = run_multi_rank(
                |_rank| w.build_engine_f32(CodeVersion::Current),
                w.initial_positions(),
                &params,
            );
            let mut scalars = Fnv::new();
            scalars.f64(res.energy);
            scalars.u64(res.samples);
            scalars.u64(res.exchanged);
            scalars.u64(res.bytes_exchanged);
            RunFingerprint {
                schedule: format!("repeat:{rep}"),
                walkers: Vec::new(),
                scalars: scalars.value(),
            }
        })
        .collect();
    DriverParity {
        driver: "multi-rank".into(),
        runs,
    }
}

/// Runs the tiled B-spline `evaluate_v_parallel` (a `par_chunks_mut` +
/// `par_iter` zip over output tiles) under every schedule and against the
/// serial `evaluate_v`, comparing the output coefficients to the bit.
/// Tiles write disjoint output chunks, so any interleaving — and the
/// serial path — must produce identical bits.
pub fn explore_tiled_spline(cfg: &HarnessConfig) -> DriverParity {
    // Ragged on purpose: 19 splines over tile width 4 leaves a short
    // final tile, so chunk boundaries are exercised, not just round ones.
    let spline = qmc_bspline::TiledMultiBspline3D::<f32>::random([5, 5, 5], 19, 4, cfg.seed);
    let u = [0.31f32, 0.57, 0.83];
    let digest = |psi: &[f32]| {
        let mut d = Fnv::new();
        for &x in psi {
            d.u64(u64::from(x.to_bits()));
        }
        d.value()
    };
    let mut runs = vec![{
        let mut psi = vec![0.0f32; spline.num_splines()];
        spline.evaluate_v(u, &mut psi);
        RunFingerprint {
            schedule: "serial".into(),
            walkers: Vec::new(),
            scalars: digest(&psi),
        }
    }];
    runs.extend(schedules().into_iter().map(|sched| {
        with_schedule(sched, || {
            let mut psi = vec![0.0f32; spline.num_splines()];
            spline.evaluate_v_parallel(u, &mut psi);
            RunFingerprint {
                schedule: sched.label(),
                walkers: Vec::new(),
                scalars: digest(&psi),
            }
        })
    }));
    DriverParity {
        driver: "tiled-spline".into(),
        runs,
    }
}

/// Runs every driver exploration at the default harness size.
pub fn explore_all(cfg: &HarnessConfig) -> Vec<DriverParity> {
    let mut out = vec![
        explore_vmc(cfg),
        explore_dmc_parallel(cfg),
        explore_dmc_crowd(cfg),
        explore_backends(cfg),
    ];
    out.extend(explore_thread_sweep(cfg));
    out.push(explore_multi_rank(cfg));
    out.push(explore_tiled_spline(cfg));
    out
}

/// Renders the exploration outcome as a `qmcsched/1` JSON report (the same
/// hand-rolled writer the run report uses).
pub fn render_json(results: &[DriverParity]) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("schema").str_val("qmcsched/1");
    w.key("parity")
        .bool_val(results.iter().all(DriverParity::parity));
    w.key("drivers").begin_arr();
    for r in results {
        w.begin_obj();
        w.key("driver").str_val(&r.driver);
        w.key("schedules_explored").u64_val(r.runs.len() as u64);
        w.key("parity").bool_val(r.parity());
        w.key("runs").begin_arr();
        for run in &r.runs {
            w.begin_obj();
            w.key("schedule").str_val(&run.schedule);
            w.key("walkers").u64_val(run.walkers.len() as u64);
            let mut digest = Fnv::new();
            for &d in &run.walkers {
                digest.u64(d);
            }
            digest.u64(run.scalars);
            w.key("fingerprint")
                .str_val(&format!("{:016x}", digest.value()));
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_order_sensitive() {
        let mut a = Fnv::new();
        a.f64(1.0);
        a.f64(2.0);
        let mut b = Fnv::new();
        b.f64(2.0);
        b.f64(1.0);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn schedule_labels_are_distinct() {
        let s = schedules();
        assert!(s.len() >= 8, "need at least 8 explored schedules");
        let mut labels: Vec<String> = s.iter().map(|s| s.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), s.len(), "duplicate schedule labels");
    }

    #[test]
    fn reference_and_soa_backends_agree_bitwise() {
        // The kernel library documents reference <-> soa as bitwise on
        // every kernel family; a whole VMC trajectory must therefore
        // digest equal per walker.
        let p = explore_backends(&HarnessConfig::default());
        assert_eq!(p.runs.len(), 2);
        assert!(
            p.parity(),
            "reference vs soa backend trajectories diverged: {:?}",
            p.runs
                .iter()
                .map(|r| (&r.schedule, r.scalars))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn simd_backend_energy_within_documented_tolerance() {
        // The simd backend's J2 reductions carry a tolerance contract, not
        // a bitwise one, so the f32-rung gate is statistical: the VMC
        // energy must land within six combined standard errors of the
        // reference-backend run (and in the common case where no accept
        // decision flips, the trajectories are nearly identical and the
        // difference is ~0).
        let case = explore_simd_tolerance(&HarnessConfig::default());
        assert!(
            case.reference_energy.is_finite() && case.simd_energy.is_finite(),
            "non-finite energies: {case:?}"
        );
        assert!(
            case.within_tolerance(),
            "simd backend energy outside the documented f32-rung window: {case:?}"
        );
    }

    #[test]
    fn thread_sweep_is_bitwise_across_1_2_4_threads() {
        // The acceptance claim of the deterministic reduction work: VMC
        // and DMC trajectories, per-walker and crowd batching, must not
        // move a bit when the worker-thread count (and with it every
        // chunk boundary) changes.
        for parity in explore_thread_sweep(&HarnessConfig::default()) {
            assert!(parity.runs.len() >= 3, "{}: too few runs", parity.driver);
            assert!(
                parity.parity(),
                "{} diverged across thread counts: {:?}",
                parity.driver,
                parity
                    .runs
                    .iter()
                    .map(|r| (&r.schedule, r.scalars))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn multi_rank_repeats_are_bitwise() {
        let p = explore_multi_rank(&HarnessConfig::default());
        assert_eq!(p.runs.len(), 3);
        assert!(
            p.parity(),
            "multi-rank allreduce leaked schedule into the bits: {:?}",
            p.runs
                .iter()
                .map(|r| (&r.schedule, r.scalars))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn tiled_spline_parallel_eval_matches_serial_under_every_schedule() {
        let p = explore_tiled_spline(&HarnessConfig::default());
        assert!(p.runs.len() > schedules().len());
        assert!(
            p.parity(),
            "tiled spline evaluation depends on the schedule: {:?}",
            p.runs
                .iter()
                .map(|r| (&r.schedule, r.scalars))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn thread_sweep_would_catch_an_injected_bare_merge() {
        // Negative control for the sweep: re-create the exact defect the
        // `parallel-reduction-order` rule and `det_sum` exist to prevent —
        // per-chunk partial folds merged in chunk-completion order — and
        // show the 1/2/4-thread fingerprints diverge, while the
        // deterministic tree over the same terms does not. If this test
        // ever starts failing on the `injected` side, the harness has
        // lost its teeth.
        let terms: Vec<f64> = (0..1000)
            .map(|i| {
                let s = if i % 3 == 0 { -1.0 } else { 1.0 };
                s * (1.0 + i as f64 * 1e-3) * 10f64.powi((i % 7) - 3)
            })
            .collect();
        let injected: Vec<u64> = [1usize, 3, 4]
            .iter()
            .map(|&threads| {
                let per = terms.len().div_ceil(threads);
                let mut acc = 0.0; // the bare `+=` merge under test
                for chunk in terms.chunks(per) {
                    acc += chunk.iter().sum::<f64>();
                }
                acc.to_bits()
            })
            .collect();
        assert_ne!(
            injected[0], injected[2],
            "term series too tame to expose the bare merge"
        );
        let det: Vec<u64> = [1usize, 3, 4]
            .iter()
            .map(|_| qmc_drivers::det_sum(&terms).to_bits())
            .collect();
        assert!(det.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn serial_orders_are_distinct_permutations_at_harness_width() {
        // The harness spawns `threads` (default 4) tasks per scope plus
        // ragged chunk counts; the serialized orders must be genuinely
        // different interleavings at those widths.
        for n in [4usize, 5, 6] {
            let mut perms: Vec<Vec<usize>> = schedules()
                .into_iter()
                .filter_map(|s| match s {
                    Schedule::Serial(o) => Some(o.permutation(n)),
                    _ => None,
                })
                .collect();
            let total = perms.len();
            perms.sort();
            perms.dedup();
            assert_eq!(perms.len(), total, "colliding serial orders at n={n}");
        }
    }
}
